(* minicc — the diversifying MiniC compiler, as a command-line tool.

   The full paper workflow is expressible from the shell:

     minicc compile prog.mc -o prog.bin           # undiversified build
     minicc compile prog.mc -c -o prog.o          # relocatable object unit
     minicc link prog.o -o prog.bin               # compose objects + runtime
     minicc compile prog.mc -O0                   # pick the opt level
     minicc compile prog.mc --passes simplify-cfg,constfold,copyprop,dce \
            --verify-each                         # custom pipeline ("O2
                                                  # minus CSE"), IR checked
                                                  # after every pass
     minicc compile prog.mc --pass-stats          # per-pass time/size table
     minicc compile prog.mc --pass-stats=json     # same, machine-readable
     minicc run prog.bin --args 5,10              # simulate
     minicc run prog.bin --args 5,10 --sim-profile
                                                  # + pprof-style runtime
                                                  # profile (per-function
                                                  # insns/NOPs/cycles)
     minicc run prog.bin --args 5,10 --sim-profile=json
     minicc compile prog.mc --trace compile.trace # Chrome trace-event
                                                  # spans (any command)
     minicc profile prog.mc --args 5,10 -o prog.prof
     minicc profile record prog.div.bin --args 5,10 -o prog.psdprof
                                                  # sampled production
                                                  # profile of whatever
                                                  # binary actually runs
     minicc profile merge -o fleet.psdprof a.psdprof b.psdprof
     minicc profile show fleet.psdprof --top 10
     minicc profile diff fleet.psdprof prog.prof  # staleness vs fresh
     minicc diversify prog.mc --profile prog.prof --config p0-30 \
            --variant 3 -o prog.div.bin
     minicc diversify prog.mc --sampled-profile fleet.psdprof \
            --config p0-30 -o prog.div2.bin       # the closed PGO loop
     minicc gadgets prog.bin                      # gadget census
     minicc survivor prog.bin prog.div.bin        # Survivor comparison
     minicc attack prog.bin --scanner ropgadget   # feasibility check
     minicc disas prog.bin                        # disassembly listing
     minicc workload 473.astar --ref              # run a suite program *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let parse_args s =
  if String.trim s = "" then []
  else
    List.map
      (fun tok ->
        match Int32.of_string_opt (String.trim tok) with
        | Some v -> v
        | None -> failwith ("bad integer argument: " ^ tok))
      (String.split_on_char ',' s)

let parse_config name =
  (* paper names, "off"/"baseline", "uniform:P" and "range:LO:HI" —
     the same spec grammar serve requests carry over the wire. *)
  match Config.of_spec name with Ok c -> c | Error e -> failwith e

(* How to build: an optimization pipeline plus verification policy,
   assembled from --opt-level / -O0/-O1/-O2 / --passes / --verify-each. *)
type build = { descr : Pipeline.descr; verify_each : bool }

let compile_source ~build path =
  Driver.compile ~passes:build.descr ~verify_each:build.verify_each
    ~name:(Filename.basename path) (read_file path)

(* ---- common arguments ---- *)

let source_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"SOURCE")

let output_arg ~default =
  Arg.(value & opt string default & info [ "o"; "output" ] ~docv:"FILE")

let args_arg =
  Arg.(
    value & opt string ""
    & info [ "args" ] ~docv:"INTS" ~doc:"Comma-separated program arguments.")

let build_term =
  let level_conv =
    let parse s =
      match Pipeline.level_of_string s with
      | Some l -> Ok l
      | None ->
          Error
            (`Msg
              (Printf.sprintf
                 "unknown optimization level %S (expected O0, O1 or O2)" s))
    in
    let print ppf l = Format.pp_print_string ppf (Pipeline.level_name l) in
    Arg.conv (parse, print)
  in
  let descr_conv =
    let parse s =
      match Pipeline.descr_of_string s with
      | Ok d -> Ok d
      | Error e -> Error (`Msg e)
    in
    let print ppf d = Format.pp_print_string ppf (Pipeline.descr_to_string d) in
    Arg.conv (parse, print)
  in
  let opt_level_arg =
    (* "O" first makes -O0 / -O1 / -O2 work as glued short options. *)
    Arg.(
      value
      & opt (some level_conv) None
      & info [ "O"; "opt-level"; "opt" ] ~docv:"LEVEL"
          ~doc:"Optimization level ($(b,O0), $(b,O1), $(b,O2); default O2).")
  in
  let passes_arg =
    Arg.(
      value
      & opt (some descr_conv) None
      & info [ "passes" ] ~docv:"PASSES"
          ~doc:
            (Printf.sprintf
               "Explicit IR pass pipeline, overriding the -O level: \
                comma-separated pass names, optionally $(b,@N) to bound the \
                fixpoint rounds (e.g. %S). Known passes: %s."
               "constfold,dce@1"
               (String.concat ", " Pipeline.pass_names)))
  in
  let verify_each_arg =
    Arg.(
      value & flag
      & info [ "verify-each" ]
          ~doc:"Re-verify the IR after every optimization pass run.")
  in
  let make opt_level passes verify_each =
    let descr =
      match passes with
      | Some d -> d
      | None ->
          Pipeline.of_level (Option.value opt_level ~default:Pipeline.O2)
    in
    { descr; verify_each }
  in
  Term.(const make $ opt_level_arg $ passes_arg $ verify_each_arg)

(* ---- tracing: every command accepts --trace=FILE and exports the
   spans the driver opened (compile, train, diversify, link, simulate)
   as Chrome trace-event JSON. ---- *)

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record begin/end spans for every toolchain stage and write \
           them to $(docv) in Chrome trace-event JSON (load in \
           chrome://tracing or Perfetto).")

let with_trace trace_file f =
  match trace_file with
  | None -> f ()
  | Some file ->
      Trace.start ();
      Fun.protect
        ~finally:(fun () ->
          Trace.stop ();
          Trace.write file;
          Format.eprintf "trace: %d events written to %s@."
            (Trace.event_count ()) file)
        f

let pass_stats_arg =
  Arg.(
    value
    & opt ~vopt:(Some `Table) (some (enum [ ("table", `Table); ("json", `Json) ])) None
    & info [ "pass-stats" ] ~docv:"FORMAT"
        ~doc:
          "Print per-pass statistics (wall time, size deltas, fixpoint \
           runs, emitted bytes) as a $(b,table) (default) or $(b,json).")

let print_pass_stats fmt (c : Driver.compiled) =
  match fmt with
  | None -> ()
  | Some `Table -> Format.printf "%a" Cctx.pp_table c.Driver.cctx
  | Some `Json -> print_endline (Cctx.to_json c.Driver.cctx)

(* ---- commands ---- *)

let compile_cmd =
  let object_arg =
    Arg.(
      value & flag
      & info [ "c"; "object" ]
          ~doc:
            "Emit a relocatable object unit (one object per function, \
             unresolved relocations) instead of a linked image; feed the \
             result to $(b,minicc link).  Default output: $(b,a.o).")
  in
  let run source output emit_object build stats trace =
    with_trace trace (fun () ->
        let c = compile_source ~build source in
        if emit_object then begin
          let output = if output = "a.bin" then "a.o" else output in
          let unit =
            {
              Objfile.uname = Filename.basename source;
              funcs = c.Driver.objects;
              globals = c.Driver.modul.Ir.globals;
            }
          in
          Objfile.save unit output;
          Format.printf "%s: %d functions, %d relocatable bytes@." output
            (List.length unit.Objfile.funcs)
            (List.fold_left
               (fun n o -> n + Objfile.code_size o)
               0 unit.Objfile.funcs)
        end
        else begin
          let image = Driver.link_baseline c in
          Link.save image output;
          Format.printf "%s: %d bytes of .text, %d functions@." output
            (String.length image.Link.text)
            (List.length image.Link.symbols)
        end;
        print_pass_stats stats c)
  in
  Cmd.v
    (Cmd.info "compile"
       ~doc:
         "Compile MiniC to an undiversified binary image (or, with $(b,-c), \
          a relocatable object unit).")
    Term.(
      const run $ source_arg $ output_arg ~default:"a.bin" $ object_arg
      $ build_term $ pass_stats_arg $ trace_arg)

let link_cmd =
  let objects_arg =
    Arg.(non_empty & pos_all file [] & info [] ~docv:"OBJECT")
  in
  let run objects output trace =
    with_trace trace (fun () ->
        let units, image =
          try
            let units = List.map Objfile.load objects in
            let funcs = List.concat_map (fun u -> u.Objfile.funcs) units in
            let globals =
              List.concat_map (fun u -> u.Objfile.globals) units
            in
            (units, Link.link_objects ~objects:funcs ~globals ())
          with Failure msg ->
            Format.eprintf "minicc: %s@." msg;
            exit 1
        in
        Link.save image output;
        Format.printf "%s: linked %d unit(s), %d bytes of .text, %d functions@."
          output (List.length units)
          (String.length image.Link.text)
          (List.length image.Link.symbols))
  in
  Cmd.v
    (Cmd.info "link"
       ~doc:
         "Link relocatable object units (from $(b,compile -c)) against the \
          fixed runtime into an executable image.")
    Term.(const run $ objects_arg $ output_arg ~default:"a.bin" $ trace_arg)

let sim_profile_arg =
  Arg.(
    value
    & opt ~vopt:(Some `Table)
        (some (enum [ ("table", `Table); ("json", `Json) ]))
        None
    & info [ "sim-profile" ] ~docv:"FORMAT"
        ~doc:
          "Collect a runtime execution profile (per-function and \
           per-block retired instructions, retired candidate NOPs and \
           modeled cycles) and print it as a pprof-style $(b,table) \
           (default) or $(b,json).")

let sample_arg =
  Arg.(
    value
    & opt ~vopt:(Some Sim.default_sample_period) (some int) None
    & info [ "sim-profile-sample" ] ~docv:"PERIOD"
        ~doc:
          (Printf.sprintf
             "Record a PC sample every $(docv) retired cycles (default \
              %d) — production-style profiling with a modeled overhead — \
              and print the back-mapped (function, block) sample table. \
              Use $(b,minicc profile record) to persist the recording."
             Sim.default_sample_period))

let top_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "top" ] ~docv:"N"
        ~doc:"Truncate profile tables to the $(docv) hottest rows.")

let engine_arg =
  Arg.(
    value
    & opt
        (enum [ ("block", Sim.Block); ("interp", Sim.Interp) ])
        Sim.default_engine
    & info [ "engine" ] ~docv:"ENGINE"
        ~doc:
          "Execution engine: $(b,block) (default) pre-decodes .text into \
           a block cache and executes compiled entries; $(b,interp) is \
           the reference fetch-decode-execute interpreter, kept as the \
           differential oracle.  Every observable — output, cycles, \
           profiles, faults — is identical either way.")

let die fmt =
  Format.kasprintf
    (fun msg ->
      Format.eprintf "minicc: %s@." msg;
      exit 1)
    fmt

(* Reject a non-positive sampling period here rather than letting
   [Sim.run] raise an uncaught Invalid_argument. *)
let validate_period = function
  | Some n when n <= 0 -> die "sample period must be positive (got %d)" n
  | p -> p

let load_image path =
  try Link.load path
  with Failure msg ->
    Format.eprintf "minicc: %s@." msg;
    exit 1

let print_sampled ?top image binary (r : Sim.result) =
  match r.Sim.sample_profile with
  | None -> ()
  | Some sp ->
      let sprof =
        Sprof.of_run ~image ~workload:(Filename.basename binary) r
      in
      Format.printf
        "[sampled: %Ld samples at period %.0f, overhead %.3f%%]@."
        sp.Sim.samples_taken sp.Sim.period
        (100.0 *. sp.Sim.sample_overhead_cycles
        /. Float.max 1.0 (r.Sim.cycles -. sp.Sim.sample_overhead_cycles));
      Format.printf "%a" (Sprof.pp ?top) sprof

let run_cmd =
  let run binary args sim_profile sample engine top trace =
    with_trace trace (fun () ->
        let image = load_image binary in
        let r =
          try
            Driver.run_image image
              ~profile:(sim_profile <> None)
              ?sample_period:(validate_period sample)
              ~engine
              ~args:(parse_args args)
          with Sim.Fault msg ->
            Format.eprintf "minicc: fault: %s@." msg;
            exit 1
        in
        print_string r.Sim.output;
        Format.printf "[status %ld, %Ld instructions, %.0f cycles]@."
          r.Sim.status r.Sim.instructions r.Sim.cycles;
        (match sim_profile with
        | None -> ()
        | Some fmt -> (
            let prof = Simprof.of_result image r in
            match fmt with
            | `Table -> Format.printf "%a" (Simprof.pp_flat ?top) prof
            | `Json -> print_endline (Simprof.to_json ?top prof)));
        print_sampled ?top image binary r)
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Execute a binary image in the CPU simulator.")
    Term.(
      const run $ source_arg $ args_arg $ sim_profile_arg $ sample_arg
      $ engine_arg $ top_arg $ trace_arg)

(* ---- the profile group: the exact training path (default command) and
   the sampled production path (record / merge / show / diff) ---- *)

let psdprof_output_arg = output_arg ~default:"a.psdprof"

let period_arg =
  Arg.(
    value
    & opt int Sim.default_sample_period
    & info [ "period" ] ~docv:"CYCLES"
        ~doc:
          (Printf.sprintf "Cycles between PC samples (default %d)."
             Sim.default_sample_period))

let load_sprof path =
  try Sprof.load path
  with Failure msg ->
    Format.eprintf "minicc: %s@." msg;
    exit 1

let profile_train_term =
  let run source output args build trace =
    with_trace trace (fun () ->
        let c = compile_source ~build source in
        let profile = Driver.train c ~args:(parse_args args) in
        let oc = open_out output in
        output_string oc (Profile.to_string profile);
        close_out oc;
        Format.printf "%s: max block count %Ld@." output
          (Profile.max_count profile))
  in
  Term.(
    const run $ source_arg $ output_arg ~default:"a.prof" $ args_arg
    $ build_term $ trace_arg)

let profile_record_cmd =
  let workload_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "workload" ] ~docv:"NAME"
          ~doc:
            "Workload name recorded in the provenance (default: the \
             binary's basename).")
  in
  let config_arg =
    Arg.(
      value & opt string ""
      & info [ "config" ] ~docv:"NAME"
          ~doc:"Diversification config recorded in the provenance.")
  in
  let seed_arg =
    Arg.(
      value & opt int64 0L
      & info [ "seed" ] ~docv:"SEED"
          ~doc:"Diversification seed recorded in the provenance.")
  in
  let run binary output args period workload config seed trace =
    with_trace trace (fun () ->
        let image = load_image binary in
        let workload =
          Option.value workload ~default:(Filename.basename binary)
        in
        let period =
          Option.get (validate_period (Some period))
        in
        let sprof, r =
          try
            Driver.record_profile ~sample_period:period ~config ~seed image
              ~workload ~args:(parse_args args)
          with Sim.Fault msg ->
            Format.eprintf "minicc: fault: %s@." msg;
            exit 1
        in
        print_string r.Sim.output;
        Sprof.save sprof output;
        let sp = Option.get r.Sim.sample_profile in
        Format.printf
          "%s: %Ld samples at period %.0f (overhead %.3f%%), %d rows@."
          output sp.Sim.samples_taken sp.Sim.period
          (100.0 *. sp.Sim.sample_overhead_cycles
          /. Float.max 1.0 (r.Sim.cycles -. sp.Sim.sample_overhead_cycles))
          (Hashtbl.length sprof.Sprof.rows))
  in
  Cmd.v
    (Cmd.info "record"
       ~doc:
         "Run a binary (diversified or not) with cycle-sampled profiling \
          and write the back-mapped recording as a $(b,.psdprof) file.")
    Term.(
      const run $ source_arg $ psdprof_output_arg $ args_arg $ period_arg
      $ workload_arg $ config_arg $ seed_arg $ trace_arg)

let profile_merge_cmd =
  let inputs_arg =
    Arg.(non_empty & pos_all file [] & info [] ~docv:"PSDPROF")
  in
  let weights_arg =
    Arg.(
      value & opt string ""
      & info [ "weights" ] ~docv:"FLOATS"
          ~doc:
            "Comma-separated per-input merge weights (default: 1 for \
             every input).")
  in
  let run inputs output weights =
    let weights =
      if String.trim weights = "" then List.map (fun _ -> 1.0) inputs
      else
        List.map
          (fun tok ->
            match float_of_string_opt (String.trim tok) with
            | Some w when w >= 0.0 -> w
            | _ -> die "bad --weights value: %s" tok)
          (String.split_on_char ',' weights)
    in
    if List.length weights <> List.length inputs then
      die "--weights count (%d) must match the number of inputs (%d)"
        (List.length weights) (List.length inputs);
    let merged =
      List.fold_left2
        (fun acc path w -> Sprof.merge acc (load_sprof path) ~weight:w)
        Sprof.empty inputs weights
    in
    Sprof.save merged output;
    Format.printf "%s: merged %d recording(s), %d rows@." output
      (List.length merged.Sprof.sources)
      (Hashtbl.length merged.Sprof.rows)
  in
  Cmd.v
    (Cmd.info "merge"
       ~doc:
         "Merge sampled recordings (optionally weighted) into one \
          $(b,.psdprof), preserving every source's provenance.")
    Term.(const run $ inputs_arg $ psdprof_output_arg $ weights_arg)

let profile_show_cmd =
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Machine-readable output.")
  in
  let run path top json =
    let sprof = load_sprof path in
    if json then print_endline (Sprof.to_json ?top sprof)
    else Format.printf "%a" (Sprof.pp ?top) sprof
  in
  Cmd.v
    (Cmd.info "show"
       ~doc:"Print a sampled recording: provenance, then the mass table.")
    Term.(const run $ source_arg $ top_arg $ json_arg)

let profile_diff_cmd =
  let fresh_arg =
    Arg.(required & pos 1 (some file) None & info [] ~docv:"FRESH")
  in
  let run path fresh_path =
    let sprof = load_sprof path in
    (* The reference side is either an exact training profile (the text
       format `minicc profile` writes) or another sampled recording. *)
    let fresh =
      try Sprof.to_profile (Sprof.load fresh_path)
      with Failure _ -> (
        try Profile.of_string (read_file fresh_path)
        with Failure msg ->
          Format.eprintf "minicc: %s: %s@." fresh_path msg;
          exit 1)
    in
    Format.printf "%a" Sprof.pp_staleness (Sprof.staleness ~fresh sprof)
  in
  Cmd.v
    (Cmd.info "diff"
       ~doc:
         "Staleness of a sampled recording against a reference profile \
          (exact $(b,.prof) or sampled $(b,.psdprof)): block coverage, \
          weighted hot-set overlap, per-function drift.")
    Term.(const run $ source_arg $ fresh_arg)

let profile_train_cmd =
  Cmd.v
    (Cmd.info "train"
       ~doc:
         "Run the training input under the instrumented interpreter and \
          write the exact execution profile (also the default when \
          $(b,SOURCE) is given directly).")
    profile_train_term

let profile_subcommands = [ "train"; "record"; "merge"; "show"; "diff" ]

let profile_cmd =
  Cmd.group ~default:profile_train_term
    (Cmd.info "profile"
       ~doc:
         "Training profiles: run the training input and write the exact \
          execution profile (default), or $(b,record)/$(b,merge)/\
          $(b,show)/$(b,diff) sampled production profiles.")
    [ profile_train_cmd; profile_record_cmd; profile_merge_cmd;
      profile_show_cmd; profile_diff_cmd ]

let diversify_cmd =
  let profile_arg =
    Arg.(
      value & opt (some file) None
      & info [ "profile" ] ~docv:"FILE" ~doc:"Execution profile (from $(b,profile)).")
  in
  let config_arg =
    Arg.(
      value & opt string "p0-30"
      & info [ "config" ] ~docv:"NAME"
          ~doc:"Configuration: p50 p30 p25-50 p10-50 p0-30, uniform:P, range:LO:HI.")
  in
  let version_arg =
    Arg.(value & opt int 0 & info [ "n"; "variant" ] ~docv:"N" ~doc:"Version index (seed).")
  in
  let sampled_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "sampled-profile" ] ~docv:"FILE"
          ~doc:
            "Sampled production recording (from $(b,profile record) / \
             $(b,profile merge)) to train from instead of an exact \
             $(b,--profile) — the closed PGO loop.")
  in
  let run source output profile_path sampled_path config version build stats
      trace =
    with_trace trace (fun () ->
        let c = compile_source ~build source in
        let profile =
          match (sampled_path, profile_path) with
          | Some sp, _ -> Driver.train_from_profile c (load_sprof sp)
          | None, Some p -> Profile.of_string (read_file p)
          | None, None -> Profile.empty
        in
        let config = parse_config config in
        (match config.Config.strategy with
        | Config.Profiled _ when Profile.is_empty profile ->
            Format.eprintf
              "warning: profile-guided config without --profile; everything \
               is cold@."
        | _ -> ());
        let image, nstats = Driver.diversify c ~config ~profile ~version in
        Link.save image output;
        Format.printf "%s: inserted %d NOPs over %d instructions (%d bytes)@."
          output nstats.Nop_insert.nops_inserted nstats.Nop_insert.insns_seen
          nstats.Nop_insert.bytes_added;
        print_pass_stats stats c)
  in
  Cmd.v
    (Cmd.info "diversify" ~doc:"Build one diversified version of a program.")
    Term.(
      const run $ source_arg $ output_arg ~default:"a.div.bin" $ profile_arg
      $ sampled_arg $ config_arg $ version_arg $ build_term $ pass_stats_arg
      $ trace_arg)

let gadgets_cmd =
  let run binary =
    let image = Link.load binary in
    let gadgets = Finder.scan image.Link.text in
    Format.printf "%d gadgets in %d bytes of .text@." (List.length gadgets)
      (String.length image.Link.text);
    let in_libc =
      List.length
        (List.filter
           (fun (g : Finder.t) -> g.offset < image.Link.user_start)
           gadgets)
    in
    Format.printf "  %d in the fixed runtime, %d in user code@." in_libc
      (List.length gadgets - in_libc)
  in
  Cmd.v
    (Cmd.info "gadgets" ~doc:"Count ROP gadgets in a binary image.")
    Term.(const run $ source_arg)

let survivor_cmd =
  let div_arg =
    Arg.(required & pos 1 (some file) None & info [] ~docv:"DIVERSIFIED")
  in
  let run original diversified =
    let o = Link.load original in
    let d = Link.load diversified in
    let outcome =
      Survivor.compare_sections ~original:o.Link.text
        ~diversified:d.Link.text ()
    in
    Format.printf "baseline gadgets: %d@." outcome.Survivor.baseline_gadgets;
    Format.printf "surviving:        %d (%.2f%%)@." outcome.Survivor.surviving
      (100.0
      *. float_of_int outcome.Survivor.surviving
      /. float_of_int (max 1 outcome.Survivor.baseline_gadgets))
  in
  Cmd.v
    (Cmd.info "survivor"
       ~doc:"Count gadgets surviving diversification (paper 5.2).")
    Term.(const run $ source_arg $ div_arg)

let attack_cmd =
  let scanner_arg =
    Arg.(
      value
      & opt (enum [ ("ropgadget", Attack.Ropgadget); ("micro", Attack.Microgadgets) ])
          Attack.Ropgadget
      & info [ "scanner" ] ~docv:"NAME" ~doc:"ropgadget or micro.")
  in
  let run binary scanner =
    let image = Link.load binary in
    let v = Attack.attack scanner image.Link.text in
    Format.printf "scanner: %s@." (Attack.scanner_name v.Attack.scanner);
    List.iter
      (fun (c, n) ->
        Format.printf "  %-14s %d gadgets@." (Attack.show_gadget_class c) n)
      (List.sort compare v.Attack.classes_found);
    if v.Attack.feasible then Format.printf "attack FEASIBLE@."
    else begin
      Format.printf "attack infeasible; missing:";
      List.iter
        (fun c -> Format.printf " %s" (Attack.show_gadget_class c))
        v.Attack.missing;
      Format.printf "@."
    end
  in
  Cmd.v
    (Cmd.info "attack" ~doc:"Judge ROP-attack feasibility against a binary.")
    Term.(const run $ source_arg $ scanner_arg)

let disas_cmd =
  let run binary =
    let image = Link.load binary in
    List.iter
      (fun (name, off) -> Format.printf "%8x  <%s>@." off name)
      (List.sort (fun (_, a) (_, b) -> compare a b) image.Link.symbols);
    Format.printf "@.";
    Decode.pp_listing Format.std_formatter image.Link.text
  in
  Cmd.v
    (Cmd.info "disas" ~doc:"Disassemble a binary image.")
    Term.(const run $ source_arg)

let workload_cmd =
  let name_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"NAME")
  in
  let ref_arg =
    Arg.(value & flag & info [ "ref" ] ~doc:"Use the ref input (default: train).")
  in
  let run name use_ref sim_profile sample engine top trace =
    with_trace trace (fun () ->
        let w = Workloads.find name in
        let c = Driver.compile ~name:w.Workload.name w.source in
        let args = if use_ref then w.ref_args else w.train_args in
        let image = Driver.link_baseline c in
        let r =
          Driver.run_image image
            ~profile:(sim_profile <> None)
            ?sample_period:(validate_period sample)
            ~engine ~args
        in
        print_string r.Sim.output;
        Format.printf "[%s %s: status %ld, %Ld instructions]@." w.name
          (if use_ref then "ref" else "train")
          r.Sim.status r.Sim.instructions;
        (match sim_profile with
        | None -> ()
        | Some fmt -> (
            let prof = Simprof.of_result image r in
            match fmt with
            | `Table -> Format.printf "%a" (Simprof.pp_flat ?top) prof
            | `Json -> print_endline (Simprof.to_json ?top prof)));
        print_sampled ?top image w.name r)
  in
  Cmd.v
    (Cmd.info "workload" ~doc:"Run a benchmark-suite program by name.")
    Term.(
      const run $ name_arg $ ref_arg $ sim_profile_arg $ sample_arg
      $ engine_arg $ top_arg $ trace_arg)

let jobs_conv =
  Arg.conv
    ( (fun s ->
        match Pool.jobs_of_string s with
        | Ok j -> Ok j
        | Error msg -> Error (`Msg msg)),
      fun ppf j -> Format.pp_print_string ppf (Pool.jobs_to_string j) )

let fuzz_cmd =
  let count_arg =
    Arg.(
      value & opt int 100
      & info [ "count" ] ~docv:"N" ~doc:"Number of programs to generate.")
  in
  let seed_arg =
    Arg.(
      value & opt int64 1L
      & info [ "seed" ] ~docv:"SEED"
          ~doc:
            "Campaign seed. The whole campaign — programs, verdicts, \
             reproducers — is a pure function of it.")
  in
  let shrink_arg =
    Arg.(
      value & flag
      & info [ "shrink" ]
          ~doc:
            "Minimize each divergence by delta-debugging the generator's \
             decision trace before reporting it.")
  in
  let out_arg =
    Arg.(
      value & opt (some string) None
      & info [ "out" ] ~docv:"DIR"
          ~doc:"Write $(b,<name>.repro.mc) reproducer files to $(docv).")
  in
  let versions_arg =
    Arg.(
      value & opt int 3
      & info [ "versions" ] ~docv:"N"
          ~doc:"Diversified versions per configuration (default 3).")
  in
  let jobs_arg =
    Arg.(
      value
      & opt jobs_conv (Pool.Jobs 1)
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Worker processes for the campaign ($(docv) or $(b,auto)); the \
             campaign is byte-identical at every setting.")
  in
  let run count seed shrink out_dir versions jobs trace =
    with_trace trace (fun () ->
        let log line = Format.eprintf "fuzz: %s@." line in
        let campaign =
          Fuzz.run ~versions ~shrink ?out_dir ~log ~jobs ~seed ~count ()
        in
        Format.printf
          "fuzz: %d programs, %d executions, %d skips (documented \
           asymmetries), %d divergences@."
          campaign.Fuzz.checked campaign.Fuzz.runs campaign.Fuzz.skips
          (List.length campaign.Fuzz.findings);
        List.iter
          (fun (f : Fuzz.finding) ->
            match f.Fuzz.report.Oracle.divergence with
            | Some d ->
                Format.printf "DIVERGENCE %s: %s vs %s — %s@."
                  f.Fuzz.report.Oracle.program.Gen.name d.Oracle.left
                  d.Oracle.right d.Oracle.detail
            | None -> ())
          campaign.Fuzz.findings;
        List.iter
          (fun (index, msg) ->
            Format.printf "ERROR program %d: %s@." index msg)
          campaign.Fuzz.errors;
        if campaign.Fuzz.findings <> [] || campaign.Fuzz.errors <> [] then
          exit 1)
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Differentially fuzz the toolchain: random MiniC programs checked \
          across interpreter, simulator and diversified variants.")
    Term.(
      const run $ count_arg $ seed_arg $ shrink_arg $ out_arg $ versions_arg
      $ jobs_arg $ trace_arg)

(* ---- the variant-serving daemon and its load generator ---- *)

let socket_arg =
  Arg.(
    value
    & opt string "psd-serve.sock"
    & info [ "s"; "socket" ] ~docv:"ADDR"
        ~doc:
          "Socket address: a Unix-domain socket path (default \
           $(b,psd-serve.sock)) or $(b,tcp:HOST:PORT).")

let parse_addr spec =
  match Sdaemon.addr_of_spec spec with Ok a -> a | Error e -> die "%s" e

let serve_cmd =
  let jobs_arg =
    Arg.(
      value
      & opt jobs_conv (Pool.Jobs 1)
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Worker processes for the per-batch variant fan-out ($(docv) \
             or $(b,auto)); returned digests are byte-identical at every \
             setting.")
  in
  let queue_cap_arg =
    Arg.(
      value & opt int 64
      & info [ "queue-cap" ] ~docv:"N"
          ~doc:
            "Bounded-queue capacity: requests arriving beyond $(docv) \
             pending are shed immediately with a Shed reply.")
  in
  let batch_arg =
    Arg.(
      value & opt int 16
      & info [ "batch" ] ~docv:"N"
          ~doc:"Max requests prepared and fanned out per pool run.")
  in
  let timeout_arg =
    Arg.(
      value & opt float 30.0
      & info [ "timeout" ] ~docv:"SECONDS"
          ~doc:
            "Shed any request that waited longer than $(docv) in the \
             queue ($(b,0) disables).")
  in
  let quiet_arg =
    Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"No per-event log lines.")
  in
  let run socket jobs queue_cap batch timeout quiet trace =
    with_trace trace (fun () ->
        let addr = parse_addr socket in
        let cfg =
          {
            (Sdaemon.default_cfg addr) with
            Sdaemon.jobs;
            queue_cap;
            batch;
            timeout_s = timeout;
            log =
              (if quiet then ignore
               else fun line -> Format.eprintf "serve: %s@." line);
          }
        in
        try Sdaemon.run cfg
        with Unix.Unix_error (e, fn, arg) ->
          die "cannot serve on %s: %s (%s %s)" socket (Unix.error_message e)
            fn arg)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the variant-serving daemon: a long-lived process that keeps \
          the function store and training profiles warm and answers \
          (workload, config, seed-range) requests with freshly-seeded \
          diversified images.")
    Term.(
      const run $ socket_arg $ jobs_arg $ queue_cap_arg $ batch_arg
      $ timeout_arg $ quiet_arg $ trace_arg)

let serve_client_cmd =
  let requests_arg =
    Arg.(
      value & opt int 10
      & info [ "requests" ] ~docv:"N" ~doc:"Trace length (default 10).")
  in
  let versions_arg =
    Arg.(
      value & opt int 5
      & info [ "versions-per-request" ] ~docv:"N"
          ~doc:"Width of each request's version window (default 5).")
  in
  let space_arg =
    Arg.(
      value & opt int 100
      & info [ "version-space" ] ~docv:"N"
          ~doc:
            "Version windows are drawn from $(b,0..N-1); smaller spaces \
             revisit versions more, exercising the warm path (default \
             100).")
  in
  let workloads_arg =
    Arg.(
      value
      & opt string "473.astar,401.bzip2"
      & info [ "workloads" ] ~docv:"NAMES"
          ~doc:"Comma-separated workload names the trace draws from.")
  in
  let config_arg =
    Arg.(
      value & opt string "p0-30"
      & info [ "config" ] ~docv:"SPEC"
          ~doc:"Configuration spec sent with every request.")
  in
  let seed_arg =
    Arg.(
      value & opt int64 1L
      & info [ "seed" ] ~docv:"SEED"
          ~doc:"Trace seed: the whole request trace is a function of it.")
  in
  let verify_arg =
    Arg.(
      value & flag
      & info [ "verify" ]
          ~doc:
            "Check every returned digest against a serial in-process \
             oracle build, and decode + re-hash any returned image.")
  in
  let images_arg =
    Arg.(
      value & flag
      & info [ "images" ] ~doc:"Request full images, not just digests.")
  in
  let dump_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "dump" ] ~docv:"DIR"
          ~doc:
            "With $(b,--images), write each returned image to \
             $(docv)/<workload>.v<version>.bin — files $(b,minicc run) \
             executes directly.")
  in
  let stats_arg =
    Arg.(
      value & flag
      & info [ "stats" ] ~doc:"Print daemon statistics after the replay.")
  in
  let shutdown_arg =
    Arg.(
      value & flag
      & info [ "shutdown" ] ~doc:"Ask the daemon to exit when done.")
  in
  let run socket requests versions_per_request version_space workloads config
      seed verify images dump stats shutdown trace =
    with_trace trace (fun () ->
        let addr = parse_addr socket in
        let fd =
          try Sclient.connect ~retry_for:10.0 addr
          with Unix.Unix_error (e, _, _) ->
            die "cannot connect to %s: %s" socket (Unix.error_message e)
        in
        Fun.protect
          ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
          (fun () ->
            let trace_reqs =
              if requests = 0 then []
              else
                Sclient.trace ~seed
                  ~workloads:
                    (List.filter
                       (fun s -> s <> "")
                       (List.map String.trim
                          (String.split_on_char ',' workloads)))
                  ~config ~requests ~versions_per_request ~version_space
                  ~want_images:(images || dump <> None)
            in
            (match dump with
            | Some dir when not (Sys.file_exists dir) ->
                Unix.mkdir dir 0o755
            | _ -> ());
            let on_built (b : Sproto.built) =
              match dump with
              | None -> ()
              | Some dir ->
                  List.iter
                    (fun (v : Sproto.variant) ->
                      match v.Sproto.image with
                      | None -> ()
                      | Some bytes ->
                          let path =
                            Filename.concat dir
                              (Printf.sprintf "%s.v%d.bin" b.Sproto.workload
                                 v.Sproto.version)
                          in
                          let oc = open_out_bin path in
                          output_string oc bytes;
                          close_out oc)
                    b.Sproto.variants
            in
            let report =
              try Sclient.replay ~verify ~on_built fd trace_reqs
              with Failure msg -> die "%s" msg
            in
            Format.printf
              "replayed %d request(s): %d built (%d variants), %d shed, %d \
               errors in %.2fs@."
              report.Sclient.requests report.Sclient.built
              report.Sclient.variants report.Sclient.shed
              report.Sclient.errors report.Sclient.wall_s;
            Format.printf
              "  lowering runs %d, store hits %d, store misses %d@."
              report.Sclient.lowering_runs report.Sclient.store_hits
              report.Sclient.store_misses;
            if verify then
              if report.Sclient.digest_mismatches = 0 then
                Format.printf "  digests match the serial oracle@."
              else begin
                Format.printf "  %d DIGEST MISMATCH(ES) vs the oracle@."
                  report.Sclient.digest_mismatches;
                exit 1
              end;
            if stats then begin
              let s = try Sclient.stats fd with Failure msg -> die "%s" msg in
              Format.printf
                "daemon: %Ld requests, %Ld variants built, %Ld shed, %Ld \
                 errors@."
                s.Sproto.requests s.Sproto.built_variants s.Sproto.shed
                s.Sproto.errors;
              List.iteri
                (fun i (sh : Store.shard_stats) ->
                  if sh.Store.entries > 0 || sh.Store.hits > 0 then
                    Format.printf
                      "  shard %2d: %d entries, %d hits, %d misses, %d \
                       evictions@."
                      i sh.Store.entries sh.Store.hits sh.Store.misses
                      sh.Store.evicts)
                s.Sproto.shards
            end;
            if shutdown then
              try Sclient.shutdown fd with Failure msg -> die "%s" msg))
  in
  Cmd.v
    (Cmd.info "serve-client"
       ~doc:
         "Replay a seeded request trace against a running $(b,minicc \
          serve) daemon, optionally verifying every returned digest \
          against a serial in-process oracle.")
    Term.(
      const run $ socket_arg $ requests_arg $ versions_arg $ space_arg
      $ workloads_arg $ config_arg $ seed_arg $ verify_arg $ images_arg
      $ dump_arg $ stats_arg $ shutdown_arg $ trace_arg)

let () =
  let doc = "profile-guided software diversity compiler (CGO'13 reproduction)" in
  let info = Cmd.info "minicc" ~version:"1.0" ~doc in
  (* Back-compat: `minicc profile prog.mc ...` predates the subcommand
     group; rewrite it to `profile train prog.mc ...` so the group
     doesn't mistake the source file for a subcommand name. *)
  let argv =
    let argv = Sys.argv in
    if
      Array.length argv >= 3
      && String.equal argv.(1) "profile"
      && String.length argv.(2) > 0
      && argv.(2).[0] <> '-'
      && not (List.mem argv.(2) profile_subcommands)
    then
      Array.concat
        [
          [| argv.(0); "profile"; "train" |];
          Array.sub argv 2 (Array.length argv - 2);
        ]
    else argv
  in
  exit
    (Cmd.eval ~argv
       (Cmd.group info
          [
            compile_cmd; link_cmd; run_cmd; profile_cmd; diversify_cmd;
            gadgets_cmd; survivor_cmd; attack_cmd; disas_cmd; workload_cmd;
            fuzz_cmd; serve_cmd; serve_client_cmd;
          ]))
