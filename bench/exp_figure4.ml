(* Figure 4: SPEC CPU 2006 performance overhead of NOP insertion — the
   slowdown of each configuration relative to the undiversified baseline,
   per benchmark plus the geometric mean.

   Protocol (paper §5.1): profile on the train input, measure on ref,
   average several randomized versions.  The paper uses 5 versions x 3
   runs on hardware; our simulator is deterministic so each version runs
   once. *)

type row = { bench : string; overheads : (string * float) list }

let measure_row p =
  let w = p.Suite.workload in
  let base = Driver.run_image p.baseline ~args:w.ref_args in
  let overheads =
    List.map
      (fun (cname, config) ->
        let cycles =
          List.init !Suite.perf_versions (fun v ->
              let r = Suite.run_version p config v ~args:w.ref_args in
              if r.Sim.output <> base.Sim.output then
                failwith
                  (Printf.sprintf "figure4: %s/%s version %d output mismatch"
                     w.name cname v);
              r.Sim.cycles)
        in
        let avg = Stats.mean cycles in
        (cname, Suite.pct ((avg /. base.Sim.cycles) -. 1.0)))
      Suite.configs
  in
  { bench = w.name; overheads }

let run () =
  Format.printf
    "@.Figure 4: SPEC CPU 2006 performance overhead of NOP insertion \
     (slowdown %%)@.";
  Suite.hr Format.std_formatter;
  Format.printf "%-16s" "Benchmark";
  List.iter (fun c -> Format.printf "%10s" c) Suite.config_names;
  Format.printf "@.";
  let rows =
    List.map
      (fun w ->
        let p = Suite.prepared w in
        let row = measure_row p in
        Format.printf "%-16s" row.bench;
        List.iter (fun (_, o) -> Format.printf "%9.2f%%" o) row.overheads;
        Format.printf "@.";
        row)
      (Suite.workloads ())
  in
  (* Geometric mean of the slowdown factors, reported as overhead %. *)
  Format.printf "%-16s" "Geometric Mean";
  List.iter
    (fun cname ->
      let factors =
        List.map
          (fun r -> 1.0 +. (List.assoc cname r.overheads /. 100.0))
          rows
      in
      Format.printf "%9.2f%%" (Suite.pct (Stats.geomean_ratio factors -. 1.0)))
    Suite.config_names;
  Format.printf "@."
