(* Incremental builds: what the content-addressed function store buys.

   Protocol, per workload: build a 25-variant population twice.  Cold —
   every cache dropped, so the build pays isel/liveness/regalloc/emit
   for each function before diversifying.  Warm — program-level memos
   dropped but the function store kept (the separate-compilation
   scenario: same sources, new driver process), so the build must be
   pure store hits: zero lowering-stage runs, only NOP insertion and
   relink.  Wall-clock and per-stage Metrics deltas for both runs land
   in BENCH_PR5.json; the warm run's populations are digest-compared
   against the cold run's, so the speedup is for byte-identical output.

   Runs serially (never on the pool): the protocol clears process-wide
   caches between runs and measures wall-clock, both of which parallel
   workers would scramble. *)

let stages = [ "isel"; "liveness"; "regalloc"; "emit" ]

let stage_counts () =
  List.map
    (fun s ->
      (s, Metrics.counter_value (Metrics.counter ("machine." ^ s ^ ".runs"))))
    stages

let store_counts () =
  List.map
    (fun s -> (s, Metrics.counter_value (Metrics.counter ("obj.store." ^ s))))
    [ "hit"; "miss" ]

let delta before after =
  List.map2
    (fun (s, b) (s', a) ->
      assert (s = s');
      (s, Int64.to_int (Int64.sub a b)))
    before after

type run = {
  wall_s : float;
  stage_runs : (string * int) list;
  store : (string * int) list;
  texts : string list;  (* population .text digests, for cold/warm compare *)
}

let build_population (w : Workload.t) ~config =
  let s0 = stage_counts () and st0 = store_counts () in
  let t0 = Unix.gettimeofday () in
  let c = Driver.compile ~name:w.Workload.name w.Workload.source in
  let imgs =
    Driver.population c ~config ~profile:Profile.empty
      ~n:Suite.security_population
  in
  let wall_s = Unix.gettimeofday () -. t0 in
  {
    wall_s;
    stage_runs = delta s0 (stage_counts ());
    store = delta st0 (store_counts ());
    texts =
      List.map
        (fun (i : Link.image) -> Digest.to_hex (Digest.string i.Link.text))
        imgs;
  }

let measure (w : Workload.t) ~config =
  Driver.clear_caches ();
  let cold = build_population w ~config in
  Driver.clear_caches ~store:false ();
  let warm = build_population w ~config in
  (* The warm build must not lower anything... *)
  List.iter
    (fun stage ->
      let runs = List.assoc stage warm.stage_runs in
      if runs <> 0 then
        Suite.record_failure
          ~cell:("incremental/" ^ w.Workload.name)
          (Printf.sprintf "warm build ran machine.%s %d time(s)" stage runs))
    stages;
  (* ...or change a single byte of output. *)
  if cold.texts <> warm.texts then
    Suite.record_failure
      ~cell:("incremental/" ^ w.Workload.name)
      "warm population differs from cold population";
  (cold, warm)

let run_json (r : run) =
  Jsonw.Obj
    [
      ("wall_s", Jsonw.Float r.wall_s);
      ( "stage_runs",
        Jsonw.Obj (List.map (fun (s, n) -> (s, Jsonw.int n)) r.stage_runs) );
      ( "store",
        Jsonw.Obj (List.map (fun (s, n) -> (s, Jsonw.int n)) r.store) );
    ]

let run () =
  let config = List.assoc "p0-30" Suite.configs in
  Format.printf
    "@.Incremental builds: cold vs warm %d-variant population (config \
     p0-30);@.warm keeps the function store, so it must do zero \
     isel/liveness/regalloc@."
    Suite.security_population;
  Suite.hr Format.std_formatter;
  Format.printf "%-16s %9s %9s %8s %11s %11s@." "workload" "cold-s" "warm-s"
    "speedup" "cold-lowers" "warm-hits";
  let rows =
    List.map
      (fun (w : Workload.t) ->
        let cold, warm = measure w ~config in
        Format.printf "%-16s %9.3f %9.3f %7.1fx %11d %11d@." w.Workload.name
          cold.wall_s warm.wall_s
          (cold.wall_s /. Float.max warm.wall_s 1e-9)
          (List.assoc "isel" cold.stage_runs)
          (List.assoc "hit" warm.store);
        (w, cold, warm))
      (Suite.workloads ())
  in
  Suite.hr Format.std_formatter;
  let total f = List.fold_left (fun a (_, c, w) -> a +. f c w) 0.0 rows in
  let cold_total = total (fun c _ -> c.wall_s)
  and warm_total = total (fun _ w -> w.wall_s) in
  Format.printf "total: cold %.3fs, warm %.3fs (%.1fx)@." cold_total warm_total
    (cold_total /. Float.max warm_total 1e-9);
  let json =
    Jsonw.Obj
      [
        ("schema", Jsonw.Str "psd-bench-incremental/1");
        ("population", Jsonw.int Suite.security_population);
        ("config", Jsonw.Str "p0-30");
        ( "workloads",
          Jsonw.List
            (List.map
               (fun ((w : Workload.t), cold, warm) ->
                 Jsonw.Obj
                   [
                     ("name", Jsonw.Str w.Workload.name);
                     ("cold", run_json cold);
                     ("warm", run_json warm);
                     ( "speedup",
                       Jsonw.Float (cold.wall_s /. Float.max warm.wall_s 1e-9)
                     );
                   ])
               rows) );
        ( "totals",
          Jsonw.Obj
            [
              ("cold_wall_s", Jsonw.Float cold_total);
              ("warm_wall_s", Jsonw.Float warm_total);
              ( "speedup",
                Jsonw.Float (cold_total /. Float.max warm_total 1e-9) );
            ] );
        ("metrics", Metrics.dump ());
      ]
  in
  let out = !Suite.incremental_out in
  let oc = open_out out in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> Jsonw.to_channel oc json);
  Format.printf "incremental report written to %s@." out
