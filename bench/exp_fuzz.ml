(* Fuzz coverage: how much of the toolchain does the random program
   generator actually exercise?

   Generates a deterministic batch of programs, compiles each at -O2,
   and tallies (a) every IR opcode and terminator the batch produces
   (through the [fuzz.ir.*] / [fuzz.term.*] Metrics counters) and
   (b) every (stage, pass) pair the pipeline ran, from the compilation
   contexts.  A small slice of the batch then goes through the reduced
   differential-oracle matrix so the report also carries live
   execution/skip counts.  The point of the report is the *gaps*: an
   opcode or pass the generator never reaches is a hole in what the
   fuzzer can falsify. *)

let batch_size = 60
let oracle_slice = 10
let seed = 1L

(* Every opcode the IR can express, so the report shows gaps, not just
   hits.  Known gap: [bin.shr] — MiniC's int is signed and `>>` lowers to
   Sar, so logical shift right is unreachable from source (it exists for
   the optimizer's benefit). *)
let all_instr_ops =
  List.map
    (fun b -> "bin." ^ Ir.binop_name b)
    [
      Ir.Add; Ir.Sub; Ir.Mul; Ir.Div; Ir.Rem; Ir.And; Ir.Or; Ir.Xor; Ir.Shl;
      Ir.Shr; Ir.Sar;
    ]
  @ List.map
      (fun r -> "cmp." ^ Ir.relop_name r)
      [ Ir.Eq; Ir.Ne; Ir.Lt; Ir.Le; Ir.Gt; Ir.Ge ]
  @ [ "neg"; "not"; "copy"; "load"; "store"; "global_addr"; "stack_addr";
      "call" ]

let all_term_ops = [ "ret"; "jmp"; "cbr"; "cbr_nz" ]

let run () =
  Format.printf "## fuzz generator coverage (%d programs, seed %Ld)@.@."
    batch_size seed;
  let stages = Hashtbl.create 32 in
  let compiled =
    List.init batch_size (fun index ->
        let p = Gen.generate ~seed ~index in
        let c = Driver.compile ~name:p.Gen.name p.Gen.source in
        Fuzz.record_coverage c;
        List.iter
          (fun (s : Cctx.stat) ->
            Hashtbl.replace stages (s.Cctx.stage, s.Cctx.pass) ())
          (Cctx.stats c.Driver.cctx);
        (p, c))
  in
  let count name = Metrics.counter_value (Metrics.counter name) in
  let report title names prefix =
    let hit =
      List.filter (fun n -> Int64.compare (count (prefix ^ n)) 0L > 0) names
    in
    Format.printf "%s: %d/%d exercised@." title (List.length hit)
      (List.length names);
    List.iter
      (fun n -> Format.printf "  %-16s %Ld@." n (count (prefix ^ n)))
      names;
    let missing = List.filter (fun n -> not (List.mem n hit)) names in
    if missing <> [] then
      Format.printf "  MISSING: %s@." (String.concat " " missing)
  in
  report "IR opcodes" all_instr_ops "fuzz.ir.";
  Format.printf "@.";
  report "terminators" all_term_ops "fuzz.term.";
  Format.printf "@.pipeline (stage, pass) pairs exercised: %d@."
    (Hashtbl.length stages);
  let pairs =
    Hashtbl.fold (fun (s, p) () acc -> (s ^ "/" ^ p) :: acc) stages []
    |> List.sort compare
  in
  List.iter (fun sp -> Format.printf "  %s@." sp) pairs;
  (* A live slice through the reduced oracle matrix: execution counts and
     documented skips, and — the whole point — zero divergences. *)
  let runs = ref 0 and skips = ref 0 and divergences = ref 0 in
  List.iteri
    (fun i (p, _) ->
      if i < oracle_slice then begin
        let r =
          Oracle.check ~levels:[ Pipeline.O0; Pipeline.O2 ] ~versions:1 p
        in
        runs := !runs + r.Oracle.runs;
        skips := !skips + List.length r.Oracle.skips;
        if r.Oracle.divergence <> None then incr divergences
      end)
    compiled;
  Format.printf
    "@.oracle slice: %d programs, %d executions, %d skips, %d divergences@."
    oracle_slice !runs !skips !divergences;
  ignore compiled
