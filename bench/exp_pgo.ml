(* The closed PGO loop (BENCH_PR7.json): production-style sampled
   profiles feeding the diversifier, measured for iterative stability
   and for the cost of training from a stale, sampled, cross-variant
   profile instead of a fresh exact one.

   Protocol, per workload and profile-guided config:

   - Iterate the production loop from a cold start: diversify with an
     empty profile, run the diversified binary on the train input with
     cycle sampling on (the production recording), back-map the samples
     through the diversified image's own layout tables, retrain from the
     sampled profile, re-diversify, repeat.  Every image in the loop
     uses the same (config, version) — only the profile changes — so
     the loop has a fixed point exactly when the quantized sampled
     profile stops changing the binary.  We record the iteration at
     which the image bytes repeat and the staleness telemetry (block
     coverage, weighted hot-set overlap, per-function drift vs the fresh
     exact training profile) of every iterate.

   - Compare end states: overhead (ref input, vs the undiversified
     baseline) of the fresh-profile PGO build versus the loop's final
     sampled-profile build.  The delta is the price of sampling +
     quantization + cross-variant staleness; the acceptance bar of the
     PR that introduced this experiment holds the grid to within 0.5pp
     of fresh-train PGO (median well inside; a few per-config tails
     driven by power-of-four quantization of the hot end can exceed it —
     see EXPERIMENTS.md). *)

let max_iters = 4

type iter_row = {
  iter : int;
  samples : int64;
  sampled_rows : int;
  staleness : Sprof.staleness;
  text_digest : string;
  same_as_prev : bool;
}

type config_row = {
  cname : string;
  iters : iter_row list;
  fixed_point_iter : int option;
      (* first iteration whose image equals the previous one *)
  fresh_overhead_pct : float;
  sampled_overhead_pct : float;
  stale_delta_pp : float;
}

let profiled_configs =
  List.filter
    (fun (_, c) ->
      match c.Config.strategy with Config.Profiled _ -> true | _ -> false)
    Suite.configs

let overhead_pct ~(base : Sim.result) (r : Sim.result) =
  Suite.pct ((r.Sim.cycles /. base.Sim.cycles) -. 1.0)

let measure_config (p : Suite.prepared) ~(base : Sim.result)
    ~(base_train : Sim.result) (cname, config) =
  let w = p.Suite.workload in
  let check ~expect what (r : Sim.result) =
    if r.Sim.output <> expect.Sim.output then
      failwith
        (Printf.sprintf "pgo-loop: %s/%s %s output mismatch" w.Workload.name
           cname what)
  in
  let diversify profile =
    fst (Driver.diversify_linked p.Suite.compiled ~config ~profile ~version:0)
  in
  (* The production loop, from a cold (profile-less) deployment.  Each
     iteration merges two production recordings (train and ref inputs)
     and retrains through the drift-gated path: the deployed profile is
     kept unless the new recording has materially drifted from it, so a
     retrained binary whose behaviour still matches its own training
     profile is a fixed point. *)
  let rec loop iter deployed prev_digest image acc =
    let record args =
      Driver.record_profile image ~config:cname ~seed:config.Config.seed
        ~workload:w.Workload.name ~args
    in
    let rec_train, r_train = record w.Workload.train_args in
    check ~expect:base_train
      (Printf.sprintf "iteration %d (sampled, train)" iter)
      r_train;
    let rec_ref, r_ref = record w.Workload.ref_args in
    check ~expect:base (Printf.sprintf "iteration %d (sampled, ref)" iter) r_ref;
    let sprof = Sprof.merge rec_train rec_ref in
    let profile =
      Driver.train_from_profile ~fresh:p.Suite.profile ~previous:deployed
        p.Suite.compiled sprof
    in
    let next = diversify profile in
    let digest = Digest.to_hex (Digest.string next.Link.text) in
    let samples r = (Option.get r.Sim.sample_profile).Sim.samples_taken in
    let row =
      {
        iter;
        samples = Int64.add (samples r_train) (samples r_ref);
        sampled_rows = Hashtbl.length sprof.Sprof.rows;
        staleness = Sprof.staleness ~fresh:p.Suite.profile sprof;
        text_digest = digest;
        same_as_prev = String.equal digest prev_digest;
      }
    in
    let acc = row :: acc in
    if row.same_as_prev || iter + 1 >= max_iters then (List.rev acc, next)
    else loop (iter + 1) profile digest next acc
  in
  let cold = diversify Profile.empty in
  let cold_digest = Digest.to_hex (Digest.string cold.Link.text) in
  let iters, final = loop 0 Profile.empty cold_digest cold [] in
  let fixed_point_iter =
    List.find_opt (fun r -> r.same_as_prev) iters
    |> Option.map (fun r -> r.iter)
  in
  (* End-state comparison on the ref input. *)
  let fresh_image = diversify p.Suite.profile in
  let fresh_r = Driver.run_image fresh_image ~args:w.Workload.ref_args in
  check ~expect:base "fresh-profile build" fresh_r;
  let final_r = Driver.run_image final ~args:w.Workload.ref_args in
  check ~expect:base "sampled-profile build" final_r;
  let fresh_overhead_pct = overhead_pct ~base fresh_r in
  let sampled_overhead_pct = overhead_pct ~base final_r in
  {
    cname;
    iters;
    fixed_point_iter;
    fresh_overhead_pct;
    sampled_overhead_pct;
    stale_delta_pp = sampled_overhead_pct -. fresh_overhead_pct;
  }

let measure_row (p : Suite.prepared) =
  let w = p.Suite.workload in
  Trace.with_span "pgo-workload"
    ~args:[ ("workload", w.Workload.name) ]
    (fun () ->
      let base = Driver.run_image p.Suite.baseline ~args:w.Workload.ref_args in
      let base_train =
        Driver.run_image p.Suite.baseline ~args:w.Workload.train_args
      in
      List.map (measure_config p ~base ~base_train) profiled_configs)

let iter_json (r : iter_row) =
  Jsonw.Obj
    [
      ("iter", Jsonw.int r.iter);
      ("samples", Jsonw.Int r.samples);
      ("sampled_rows", Jsonw.int r.sampled_rows);
      ("coverage_pct", Jsonw.Float r.staleness.Sprof.coverage_pct);
      ("hot_overlap_pct", Jsonw.Float r.staleness.Sprof.hot_overlap_pct);
      ("mean_drift_pct", Jsonw.Float r.staleness.Sprof.mean_drift_pct);
      ("max_drift_pct", Jsonw.Float r.staleness.Sprof.max_drift_pct);
      ("text_digest", Jsonw.Str r.text_digest);
      ("same_as_prev", Jsonw.Bool r.same_as_prev);
    ]

let config_json (c : config_row) =
  Jsonw.Obj
    [
      ("config", Jsonw.Str c.cname);
      ( "fixed_point_iter",
        match c.fixed_point_iter with
        | Some i -> Jsonw.int i
        | None -> Jsonw.Null );
      ("fresh_overhead_pct", Jsonw.Float c.fresh_overhead_pct);
      ("sampled_overhead_pct", Jsonw.Float c.sampled_overhead_pct);
      ("stale_delta_pp", Jsonw.Float c.stale_delta_pp);
      ("iterations", Jsonw.List (List.map iter_json c.iters));
    ]

let run () =
  Format.printf
    "@.PGO loop: diversify -> sample (period %d) -> retrain -> \
     re-diversify, to a fixed@.point; then sampled-profile vs \
     fresh-profile overhead on the ref input@."
    Sim.default_sample_period;
  Suite.hr Format.std_formatter;
  let prepared = List.map Suite.prepared (Suite.workloads ()) in
  let measured =
    Suite.grid ~what:"pgo-loop"
      ~label:(fun p -> p.Suite.workload.Workload.name)
      measure_row prepared
  in
  let rows =
    List.concat
      (List.map2
         (fun p -> function
           | None -> []
           | Some per_config ->
               let w = p.Suite.workload in
               Format.printf "%-16s %8s %9s %9s %9s %9s %8s@." w.Workload.name
                 "fixed@" "coverage" "overlap" "fresh" "sampled" "delta";
               List.iter
                 (fun c ->
                   let last = List.nth c.iters (List.length c.iters - 1) in
                   Format.printf
                     "  %-14s %8s %8.1f%% %8.1f%% %8.2f%% %8.2f%% %+7.2fpp@."
                     c.cname
                     (match c.fixed_point_iter with
                     | Some i -> string_of_int i
                     | None -> "none")
                     last.staleness.Sprof.coverage_pct
                     last.staleness.Sprof.hot_overlap_pct c.fresh_overhead_pct
                     c.sampled_overhead_pct c.stale_delta_pp)
                 per_config;
               [ (w, per_config) ])
         prepared measured)
  in
  Suite.hr Format.std_formatter;
  (* Worst stale-vs-fresh delta and slowest convergence, for the summary
     line and the PR acceptance bar. *)
  let all_configs = List.concat_map snd rows in
  let worst_delta =
    List.fold_left
      (fun acc c -> Float.max acc (Float.abs c.stale_delta_pp))
      0.0 all_configs
  in
  let median_delta =
    match List.map (fun c -> c.stale_delta_pp) all_configs with
    | [] -> 0.0
    | ds ->
        let a = Array.of_list ds in
        Array.sort compare a;
        let n = Array.length a in
        if n mod 2 = 1 then a.(n / 2) else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.0
  in
  let over_bar =
    List.length (List.filter (fun c -> c.stale_delta_pp > 0.5) all_configs)
  in
  let unconverged =
    List.length (List.filter (fun c -> c.fixed_point_iter = None) all_configs)
  in
  Format.printf
    "stale - fresh overhead delta: median %+.3fpp, worst |delta| %.3fpp, \
     over +0.5pp: %d/%d;@.configs without a fixed point in %d iterations: \
     %d/%d@."
    median_delta worst_delta over_bar
    (List.length all_configs)
    max_iters unconverged (List.length all_configs);
  let json =
    Jsonw.Obj
      [
        ("schema", Jsonw.Str "psd-bench-pgo/1");
        ("sample_period", Jsonw.int Sim.default_sample_period);
        ("max_iterations", Jsonw.int max_iters);
        ( "workloads",
          Jsonw.List
            (List.map
               (fun ((w : Workload.t), per_config) ->
                 Jsonw.Obj
                   [
                     ("name", Jsonw.Str w.name);
                     ("configs", Jsonw.List (List.map config_json per_config));
                   ])
               rows) );
        ("median_stale_delta_pp", Jsonw.Float median_delta);
        ("worst_stale_delta_pp", Jsonw.Float worst_delta);
        ("configs_over_half_pp", Jsonw.int over_bar);
        ("unconverged_configs", Jsonw.int unconverged);
      ]
  in
  let out = !Suite.pgo_out in
  let oc = open_out out in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> Jsonw.to_channel oc json);
  Format.printf "pgo-loop report written to %s@." out
