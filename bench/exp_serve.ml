(* serve: throughput and correctness of the variant-serving daemon
   (BENCH_PR9.json).

   Per worker count in the grid, the experiment forks one daemon with a
   *cold* cache state (the child drops every driver cache before
   serving) and replays the same seeded request trace twice:

     cold — the daemon pays compile + train + lowering for each
            workload the trace touches, then diversifies;
     warm — every artifact is memoized, so serving is NOP insertion and
            relink only, and the Built replies must report exactly zero
            lowering runs.

   Both replays collect the returned digests; they must be identical
   (warm output is byte-for-byte the cold output), and a third replay
   with the serial in-process oracle enabled pins every digest at every
   -j to ground truth.  Timing excludes the oracle: the timed replays
   do nothing but RPC.

   The headline is [warm_cold_ratio] — warm variants/sec over cold
   variants/sec at -j 1 — which the CI perf gate floors
   (min_warm_variants_per_sec_ratio in test/perf_baseline.json): if the
   store or the driver memos stop being warm, the ratio collapses
   toward 1 and the gate trips.

   The report closes with the population-at-scale run: the paper's
   25-version Table 3 survivor analysis regrown to --serve-population
   (default 1000) variants through the pool, with the paper's
   thresholds both absolute (2, 5, 12) and rescaled to the same
   fractions of the population (8%, 20%, 48% of n). *)

let jobs_grid = [ 1; 2; 4 ]
let requests = 24
let versions_per_request = 10
let version_space = 150
let trace_seed = 9L

let socket_path () =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "psd-serve-bench-%d.sock" (Unix.getpid ()))

(* The daemon child: drop every inherited cache so the first replay is
   genuinely cold, then serve until the client's Shutdown. *)
let fork_daemon ~socket ~jobs =
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
      let code =
        try
          Driver.clear_caches ();
          Sdaemon.run
            {
              (Sdaemon.default_cfg (Sdaemon.Unix_sock socket)) with
              Sdaemon.jobs = Pool.Jobs jobs;
              queue_cap = 256;
              batch = 32;
            };
          0
        with _ -> 1
      in
      Unix._exit code
  | pid -> pid

type replay = {
  wall_s : float;
  variants : int;
  vps : float;
  lowering_runs : int;
  digests : string list;
}

let timed_replay fd reqs =
  let digests = ref [] in
  let r =
    Sclient.replay
      ~on_built:(fun (b : Sproto.built) ->
        List.iter
          (fun (v : Sproto.variant) -> digests := v.Sproto.digest :: !digests)
          b.Sproto.variants)
      fd reqs
  in
  if r.Sclient.shed > 0 || r.Sclient.errors > 0 then
    failwith
      (Printf.sprintf "replay: %d shed, %d error replies" r.Sclient.shed
         r.Sclient.errors);
  {
    wall_s = r.Sclient.wall_s;
    variants = r.Sclient.variants;
    vps = float_of_int r.Sclient.variants /. Float.max r.Sclient.wall_s 1e-9;
    lowering_runs = r.Sclient.lowering_runs;
    digests = List.rev !digests;
  }

type cell = {
  jobs : int;
  cold : replay;
  warm : replay;
  mismatches : int;  (* vs the serial oracle *)
  shards_used : int;
}

let measure ~reqs jobs =
  let socket = socket_path () in
  let pid = fork_daemon ~socket ~jobs in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
      ignore (Unix.waitpid [] pid))
    (fun () ->
      let fd = Sclient.connect ~retry_for:20.0 (Sdaemon.Unix_sock socket) in
      Fun.protect
        ~finally:(fun () ->
          try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          let cold = timed_replay fd reqs in
          let warm = timed_replay fd reqs in
          (* Untimed oracle pass: every digest, at this -j, against a
             serial in-process build. *)
          let oracle = Sclient.replay ~verify:true fd reqs in
          let stats = Sclient.stats fd in
          Sclient.shutdown fd;
          {
            jobs;
            cold;
            warm;
            mismatches = oracle.Sclient.digest_mismatches;
            shards_used =
              List.length
                (List.filter
                   (fun (s : Store.shard_stats) -> s.Store.entries > 0)
                   stats.Sproto.shards);
          }))

let check_cell (c : cell) =
  let cell = Printf.sprintf "serve/-j%d" c.jobs in
  if c.warm.lowering_runs <> 0 then
    Suite.record_failure ~cell
      (Printf.sprintf "warm replay reported %d lowering run(s), want 0"
         c.warm.lowering_runs);
  if c.cold.digests <> c.warm.digests then
    Suite.record_failure ~cell "warm digests differ from cold digests";
  if c.mismatches <> 0 then
    Suite.record_failure ~cell
      (Printf.sprintf "%d digest mismatch(es) vs the serial oracle"
         c.mismatches)

(* ---- population at scale ---- *)

let population_thresholds n =
  let frac pct = max 2 (n * pct / 100) in
  List.sort_uniq compare ([ 2; 5; 12 ] @ [ frac 8; frac 20; frac 48 ])

let population_at_scale (p : Suite.prepared) ~n =
  let thresholds = population_thresholds n in
  let t0 = Unix.gettimeofday () in
  (* One pool task per variant: diversify, scan, return the plain
     (offset, sequence) keys — build and census fan out together. *)
  let outcomes =
    Pool.run ~jobs:!Suite.jobs
      (List.init n (fun version () ->
           let image, _ =
             Driver.diversify_linked p.Suite.compiled
               ~config:(List.assoc "p0-30" Suite.configs)
               ~profile:p.Suite.profile ~version
           in
           Population.section_keys image.Link.text))
  in
  let keys =
    List.map
      (function
        | Pool.Done k -> k
        | o -> failwith ("population task: " ^ Pool.outcome_to_string o))
      outcomes
  in
  let report = Population.of_keys ~thresholds keys in
  (report, Unix.gettimeofday () -. t0)

(* ---- the experiment ---- *)

let replay_json (r : replay) =
  Jsonw.Obj
    [
      ("wall_s", Jsonw.Float r.wall_s);
      ("variants", Jsonw.int r.variants);
      ("variants_per_sec", Jsonw.Float r.vps);
      ("lowering_runs", Jsonw.int r.lowering_runs);
    ]

let run () =
  let workloads =
    List.map (fun (w : Workload.t) -> w.Workload.name) (Suite.workloads ())
  in
  let reqs =
    Sclient.trace ~seed:trace_seed ~workloads ~config:"p0-30" ~requests
      ~versions_per_request ~version_space ~want_images:false
  in
  Format.printf
    "@.Variant serving: %d-request trace (%d variants), cold vs warm \
     daemon@."
    requests
    (requests * versions_per_request);
  Suite.hr Format.std_formatter;
  Format.printf "%-6s %12s %12s %10s %12s %8s@." "jobs" "cold-v/s" "warm-v/s"
    "ratio" "warm-lowers" "shards";
  let cells =
    List.map
      (fun jobs ->
        let c = measure ~reqs jobs in
        check_cell c;
        Format.printf "%-6d %12.1f %12.1f %9.1fx %12d %8d@." c.jobs c.cold.vps
          c.warm.vps (c.warm.vps /. Float.max c.cold.vps 1e-9)
          c.warm.lowering_runs c.shards_used;
        c)
      jobs_grid
  in
  Suite.hr Format.std_formatter;
  let ratio_at_j1 =
    match cells with
    | c :: _ -> c.warm.vps /. Float.max c.cold.vps 1e-9
    | [] -> 0.0
  in
  Format.printf "warm/cold throughput ratio at -j 1: %.1fx@." ratio_at_j1;
  (* The population-at-scale survivor curve. *)
  let n = !Suite.serve_population in
  let p = Suite.prepared (List.hd (Suite.workloads ())) in
  let report, pop_wall = population_at_scale p ~n in
  Format.printf
    "@.Survivor curve, %s, %d versions (p0-30), built through the pool in \
     %.1fs:@."
    p.Suite.workload.Workload.name n pop_wall;
  List.iter
    (fun (k, count) -> Format.printf "  >=%4d of %d: %6d gadgets@." k n count)
    report.Population.at_least;
  let json =
    Jsonw.Obj
      [
        ("schema", Jsonw.Str "psd-bench-serve/1");
        ("config", Jsonw.Str "p0-30");
        ("workloads", Jsonw.List (List.map (fun w -> Jsonw.Str w) workloads));
        ("requests", Jsonw.int requests);
        ("versions_per_request", Jsonw.int versions_per_request);
        ("version_space", Jsonw.int version_space);
        ("trace_seed", Jsonw.Str (Int64.to_string trace_seed));
        ( "grid",
          Jsonw.List
            (List.map
               (fun c ->
                 Jsonw.Obj
                   [
                     ("jobs", Jsonw.int c.jobs);
                     ("cold", replay_json c.cold);
                     ("warm", replay_json c.warm);
                     ( "warm_cold_ratio",
                       Jsonw.Float (c.warm.vps /. Float.max c.cold.vps 1e-9) );
                     ("digest_mismatches", Jsonw.int c.mismatches);
                     ( "warm_matches_cold",
                       Jsonw.Bool (c.cold.digests = c.warm.digests) );
                     ("shards_used", Jsonw.int c.shards_used);
                   ])
               cells) );
        ("warm_cold_ratio", Jsonw.Float ratio_at_j1);
        ( "population",
          Jsonw.Obj
            [
              ("workload", Jsonw.Str p.Suite.workload.Workload.name);
              ("n", Jsonw.int report.Population.population);
              ("wall_s", Jsonw.Float pop_wall);
              ( "at_least",
                Jsonw.List
                  (List.map
                     (fun (k, count) ->
                       Jsonw.Obj
                         [ ("k", Jsonw.int k); ("gadgets", Jsonw.int count) ])
                     report.Population.at_least) );
            ] );
        ("metrics", Metrics.dump ());
      ]
  in
  let out = !Suite.serve_out in
  let oc = open_out out in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> Jsonw.to_channel oc json);
  Format.printf "serve report written to %s@." out
