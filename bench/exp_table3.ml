(* Table 3: gadgets surviving at the same location in at least 2, 5, and
   12 of the 25 diversified versions, per configuration — the
   attack-a-subset analysis.  The original binary is not part of the
   population. *)

let thresholds = [ 2; 5; 12 ]

let run () =
  Format.printf
    "@.Table 3: gadgets surviving in at least k of %d versions@."
    Suite.security_population;
  Suite.hr Format.std_formatter;
  Format.printf "%-16s" "Benchmark";
  List.iter
    (fun k ->
      List.iter
        (fun c -> Format.printf "%10s" (Printf.sprintf ">=%d %s" k c))
        Suite.config_names)
    thresholds;
  Format.printf "@.";
  List.iter
    (fun w ->
      let p = Suite.prepared w in
      let reports =
        List.map
          (fun (cname, config) ->
            let texts =
              Suite.texts_of_population p config Suite.security_population
            in
            (cname, Population.analyze ~thresholds texts))
          Suite.configs
      in
      Format.printf "%-16s" w.Workload.name;
      List.iter
        (fun k ->
          List.iter
            (fun cname ->
              let report = List.assoc cname reports in
              Format.printf "%10d" (List.assoc k report.Population.at_least))
            Suite.config_names)
        thresholds;
      Format.printf "@.")
    (Suite.workloads ())
