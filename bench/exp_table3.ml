(* Table 3: gadgets surviving at the same location in at least 2, 5, and
   12 of the 25 diversified versions, per configuration — the
   attack-a-subset analysis.  The original binary is not part of the
   population. *)

let thresholds = [ 2; 5; 12 ]

let run () =
  Format.printf
    "@.Table 3: gadgets surviving in at least k of %d versions@."
    Suite.security_population;
  Suite.hr Format.std_formatter;
  Format.printf "%-16s" "Benchmark";
  List.iter
    (fun k ->
      List.iter
        (fun c -> Format.printf "%10s" (Printf.sprintf ">=%d %s" k c))
        Suite.config_names)
    thresholds;
  Format.printf "@.";
  (* One pool task per workload row; Population.analyze stays serial
     inside the task (nested pools are rejected), which is the right
     grain anyway — a row diversifies and scans 25 versions per config. *)
  let prepared = List.map Suite.prepared (Suite.workloads ()) in
  let measured =
    Suite.grid ~what:"table3"
      ~label:(fun p -> p.Suite.workload.Workload.name)
      (fun p ->
        List.map
          (fun (cname, config) ->
            let texts =
              Suite.texts_of_population p config Suite.security_population
            in
            (cname, (Population.analyze ~thresholds texts).Population.at_least))
          Suite.configs)
      prepared
  in
  List.iter2
    (fun p -> function
      | None -> ()
      | Some reports ->
          Format.printf "%-16s" p.Suite.workload.Workload.name;
          List.iter
            (fun k ->
              List.iter
                (fun cname ->
                  let at_least = List.assoc cname reports in
                  Format.printf "%10d" (List.assoc k at_least))
                Suite.config_names)
            thresholds;
          Format.printf "@.")
    prepared measured
