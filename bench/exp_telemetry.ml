(* Telemetry: the machine-readable perf trajectory (BENCH_PR2.json) plus
   a direct quantification of the paper's central claim (§3.2, Fig. 4) —
   that profile-guided insertion pushes NOPs *out of hot code*.

   Protocol, per workload: run the undiversified baseline on the ref
   input with the simulator's runtime-profile hook and classify basic
   blocks as hot (the smallest set covering >= 90% of baseline retired
   instructions) or cold.  Then, per configuration and version, run the
   diversified binary the same way and attribute every *retired*
   candidate NOP to the hot or cold side through the (function, block
   label) key — labels survive diversification, so baseline and
   diversified profiles align exactly.  A uniform config retires NOPs
   where the program spends its time (hot); the profile-guided configs
   should show the NOP mass migrating to the cold side while overhead
   drops.

   The JSON report carries per-config overhead and attribution per
   workload, the geometric-mean overhead per config, and the process
   metrics registry (cache hit rates, simulator totals) — the trajectory
   format future PRs extend. *)

let hot_share_target = 0.90

type attribution = {
  overhead_pct : float;
  nops_retired : float;  (* mean over versions *)
  hot_nop_share_pct : float;  (* share of retired NOPs landing in hot blocks *)
  hot_density_pct : float;  (* retired NOPs per retired insn inside hot blocks *)
  cold_density_pct : float;
}

(* (function, label) -> baseline-hot?  Blocks the baseline never executed
   are cold by definition. *)
let hot_blocks (prof : Simprof.t) =
  let all =
    List.concat_map
      (fun (r : Simprof.func_row) ->
        List.map
          (fun (b : Simprof.block_row) -> ((r.fname, b.label), b.b_insns))
          r.blocks)
      prof.rows
  in
  let sorted =
    List.sort (fun (_, a) (_, b) -> Int64.compare b a) all
  in
  let target =
    Int64.to_float prof.total_insns *. hot_share_target
  in
  let hot = Hashtbl.create 64 in
  let covered = ref 0.0 in
  List.iter
    (fun (key, insns) ->
      if !covered < target then begin
        Hashtbl.replace hot key ();
        covered := !covered +. Int64.to_float insns
      end)
    sorted;
  hot

let split_by_hotness hot (prof : Simprof.t) =
  (* (hot insns, hot nops, cold insns, cold nops) of a diversified run. *)
  List.fold_left
    (fun acc (r : Simprof.func_row) ->
      List.fold_left
        (fun (hi, hn, ci, cn) (b : Simprof.block_row) ->
          if Hashtbl.mem hot (r.fname, b.label) then
            (Int64.add hi b.b_insns, Int64.add hn b.b_nops, ci, cn)
          else (hi, hn, Int64.add ci b.b_insns, Int64.add cn b.b_nops))
        acc r.blocks)
    (0L, 0L, 0L, 0L) prof.rows

let i64f = Int64.to_float

let measure_config p ~(base : Sim.result) ~hot (cname, config) =
  let w = p.Suite.workload in
  let versions = !Suite.perf_versions in
  let acc_overhead = ref 0.0
  and acc_nops = ref 0.0
  and acc_hot_share = ref 0.0
  and acc_hot_density = ref 0.0
  and acc_cold_density = ref 0.0 in
  for version = 0 to versions - 1 do
    let image, _ =
      Driver.diversify p.Suite.compiled ~config ~profile:p.Suite.profile
        ~version
    in
    let r = Driver.run_image image ~profile:true ~args:w.Workload.ref_args in
    if r.Sim.output <> base.Sim.output then
      failwith
        (Printf.sprintf "telemetry: %s/%s version %d output mismatch" w.name
           cname version);
    let prof = Simprof.of_result image r in
    let hi, hn, ci, cn = split_by_hotness hot prof in
    acc_overhead := !acc_overhead +. ((r.Sim.cycles /. base.Sim.cycles) -. 1.0);
    acc_nops := !acc_nops +. i64f r.Sim.nops_retired;
    acc_hot_share :=
      !acc_hot_share
      +. (if Int64.compare r.Sim.nops_retired 0L > 0 then
            i64f hn /. i64f r.Sim.nops_retired
          else 0.0);
    acc_hot_density :=
      !acc_hot_density
      +. (if Int64.compare hi 0L > 0 then i64f hn /. i64f hi else 0.0);
    acc_cold_density :=
      !acc_cold_density
      +. (if Int64.compare ci 0L > 0 then i64f cn /. i64f ci else 0.0)
  done;
  let n = float_of_int versions in
  {
    overhead_pct = Suite.pct (!acc_overhead /. n);
    nops_retired = !acc_nops /. n;
    hot_nop_share_pct = Suite.pct (!acc_hot_share /. n);
    hot_density_pct = Suite.pct (!acc_hot_density /. n);
    cold_density_pct = Suite.pct (!acc_cold_density /. n);
  }

let attribution_json (cname, (a : attribution)) =
  Jsonw.Obj
    [
      ("config", Jsonw.Str cname);
      ("overhead_pct", Jsonw.Float a.overhead_pct);
      ("nops_retired", Jsonw.Float a.nops_retired);
      ("hot_nop_share_pct", Jsonw.Float a.hot_nop_share_pct);
      ("cold_nop_share_pct", Jsonw.Float (100.0 -. a.hot_nop_share_pct));
      ("hot_nop_density_pct", Jsonw.Float a.hot_density_pct);
      ("cold_nop_density_pct", Jsonw.Float a.cold_density_pct);
    ]

(* One workload's measurement, run as a pool task: everything it needs
   (the prepared artifacts) is built in the parent beforehand, and all it
   sends back is plain data — the baseline result and the per-config
   attributions.  No printing in here: the parent renders rows in
   workload order so the report is byte-identical at any -j. *)
let measure_row (p : Suite.prepared) =
  let w = p.Suite.workload in
  Trace.with_span "telemetry-workload"
    ~args:[ ("workload", w.Workload.name) ]
    (fun () ->
      let base =
        Driver.run_image p.Suite.baseline ~profile:true ~args:w.Workload.ref_args
      in
      let base_prof = Simprof.of_result p.Suite.baseline base in
      let hot = hot_blocks base_prof in
      (* Production profiling cost: the same baseline run with cycle
         sampling on at the deployment period.  Sampling only ever adds
         [sample_cost] cycles per sample, so its overhead is exactly the
         recorded [sample_overhead_cycles] — modeled, deterministic, and
         pinned by the perf gate. *)
      let sampled =
        Driver.run_image p.Suite.baseline
          ~sample_period:Sim.default_sample_period ~args:w.Workload.ref_args
      in
      let sampling_overhead_pct =
        let sp = Option.get sampled.Sim.sample_profile in
        Suite.pct
          (sp.Sim.sample_overhead_cycles
          /. (sampled.Sim.cycles -. sp.Sim.sample_overhead_cycles))
      in
      let per_config =
        List.map (fun c -> (fst c, measure_config p ~base ~hot c)) Suite.configs
      in
      (base, sampling_overhead_pct, per_config))

let run () =
  Format.printf
    "@.Telemetry: per-config overhead and hot-vs-cold NOP attribution (hot \
     = blocks covering %.0f%%@.of baseline retired instructions; share = \
     %% of retired NOPs landing in hot blocks)@."
    (100.0 *. hot_share_target);
  Suite.hr Format.std_formatter;
  (* Prepare (compile + train + baseline link) in the parent so workers
     inherit a warm artifact cache and the cache-hit counters match the
     serial run exactly. *)
  let prepared = List.map Suite.prepared (Suite.workloads ()) in
  let measured =
    Suite.grid ~what:"telemetry"
      ~label:(fun p -> p.Suite.workload.Workload.name)
      measure_row prepared
  in
  let rows =
    List.concat
      (List.map2
         (fun p -> function
           | None -> []
           | Some (base, sampling_overhead_pct, per_config) ->
               let w = p.Suite.workload in
               Format.printf "%-16s %10s %10s %10s %10s %10s@." w.Workload.name
                 "overhead" "nops" "hot-share" "hot-dens" "cold-dens";
               List.iter
                 (fun (cname, a) ->
                   Format.printf
                     "  %-14s %9.2f%% %10.0f %9.2f%% %9.2f%% %9.2f%%@." cname
                     a.overhead_pct a.nops_retired a.hot_nop_share_pct
                     a.hot_density_pct a.cold_density_pct)
                 per_config;
               Format.printf "  %-14s %9.3f%%@." "sampling" sampling_overhead_pct;
               [ (w, base, sampling_overhead_pct, per_config) ])
         prepared measured)
  in
  Suite.hr Format.std_formatter;
  (* Geometric-mean overhead per config across workloads. *)
  let geomeans =
    List.map
      (fun cname ->
        let factors =
          List.map
            (fun (_, _, _, per_config) ->
              1.0 +. ((List.assoc cname per_config).overhead_pct /. 100.0))
            rows
        in
        (cname, Suite.pct (Stats.geomean_ratio factors -. 1.0)))
      Suite.config_names
  in
  Format.printf "%-16s" "Geometric Mean";
  List.iter (fun (_, o) -> Format.printf "%9.2f%%" o) geomeans;
  Format.printf "@.";
  let json =
    Jsonw.Obj
      [
        ("schema", Jsonw.Str "psd-bench-telemetry/2");
        ("versions", Jsonw.int !Suite.perf_versions);
        ("hot_insn_share_target", Jsonw.Float hot_share_target);
        ("sample_period", Jsonw.int Sim.default_sample_period);
        ( "workloads",
          Jsonw.List
            (List.map
               (fun
                 ((w : Workload.t), (base : Sim.result), sampling, per_config)
               ->
                 Jsonw.Obj
                   [
                     ("name", Jsonw.Str w.name);
                     ( "baseline",
                       Jsonw.Obj
                         [
                           ("instructions", Jsonw.Int base.Sim.instructions);
                           ("cycles", Jsonw.Float base.Sim.cycles);
                           ( "icache_misses",
                             Jsonw.Int base.Sim.icache_misses );
                           ("sampling_overhead_pct", Jsonw.Float sampling);
                         ] );
                     ( "configs",
                       Jsonw.List (List.map attribution_json per_config) );
                   ])
               rows) );
        ( "geomean_overhead_pct",
          Jsonw.Obj (List.map (fun (c, o) -> (c, Jsonw.Float o)) geomeans) );
        ("metrics", Metrics.dump ());
      ]
  in
  let out = !Suite.telemetry_out in
  let oc = open_out out in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> Jsonw.to_channel oc json);
  Format.printf "telemetry written to %s@." out
