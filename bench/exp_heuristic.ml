(* §3.1 in-text analysis: why the logarithmic heuristic.  Reports the
   execution-count distribution of each profiled benchmark (max, median —
   the paper quotes 14M-4G maxima and astar's median of 117,635 vs a 2G
   max) and compares the probability each heuristic assigns to the median
   block of every program. *)

let run () =
  Format.printf "@.Heuristic analysis (paper 3.1): linear vs logarithmic@.";
  Suite.hr Format.std_formatter;
  Format.printf "%-16s%14s%14s%12s%12s@." "Benchmark" "max count" "median"
    "p(lin)" "p(log)";
  List.iter
    (fun w ->
      let p = Suite.prepared w in
      let xmax = Profile.max_count p.Suite.profile in
      let median = Profile.median_nonzero p.Suite.profile in
      let prob shape =
        Heuristic.pnop shape ~pmin:0.10 ~pmax:0.50
          ~count:(Int64.of_float median) ~max_count:xmax
      in
      Format.printf "%-16s%14Ld%14.0f%11.1f%%%11.1f%%@." w.Workload.name xmax
        median
        (Suite.pct (prob Heuristic.Linear))
        (Suite.pct (prob Heuristic.Logarithmic)))
    (Suite.workloads ());
  Format.printf
    "@.paper's 473.astar worked example (median 117,635 of max 2e9, range \
     10-50%%):@.";
  Format.printf "  linear    -> %.2f%% (polarized toward pmax)@."
    (Suite.pct
       (Heuristic.pnop Heuristic.Linear ~pmin:0.10 ~pmax:0.50 ~count:117_635L
          ~max_count:2_000_000_000L));
  Format.printf "  logarithmic -> %.2f%% (the paper computes ~30%%)@."
    (Suite.pct (Heuristic.paper_astar_example ()))
