(* sim-speedup: the wall-clock differential benchmark of the block-cached
   execution engine against the interpreter oracle (BENCH_PR8.json).

   Per workload: run the undiversified baseline on the ref input under
   both engines, assert the full observable tuple is identical (status,
   output, retired instructions/NOPs, icache misses, and cycles bit for
   bit), then time [runs] runs of each engine and keep the median wall
   clock.  Speedup = interp median / block median; the headline is the
   geometric mean across workloads, which the CI perf gate floors
   (min_block_speedup in test/perf_baseline.json).

   Timing is always serial — one run at a time in the parent process,
   whatever --jobs says — because concurrent workers sharing cores would
   corrupt the wall-clock readings.  The identity checks don't care, but
   the numbers do.

   The report ends with one scaled-up run: a workload input sized far
   beyond the ref set (470.lbm at 25x the ref timestep count), executed
   under the block engine only.  At interpreter speed this input costs
   minutes; under the block engine it's an affordable bench cell — that
   is the capability the speedup buys, so the report records it. *)

let runs = 3

(* The scaled-up input: 470.lbm's second argument is the timestep count
   (ref input: 20 steps).  500 steps is ~25x the ref work. *)
let scaled_name = "470.lbm"
let scaled_args = [ 71l; 500l ]

let time_once ~engine image ~args =
  let t0 = Unix.gettimeofday () in
  let r = Driver.run_image ~engine image ~args in
  (r, Unix.gettimeofday () -. t0)

let median xs =
  let a = Array.of_list xs in
  Array.sort compare a;
  a.(Array.length a / 2)

let check_identical ~what (i : Sim.result) (b : Sim.result) =
  let fail fmt =
    Printf.ksprintf
      (fun m -> failwith (Printf.sprintf "sim-speedup: %s: %s" what m))
      fmt
  in
  if b.Sim.status <> i.Sim.status then
    fail "status mismatch (interp %ld, block %ld)" i.Sim.status b.Sim.status;
  if b.Sim.output <> i.Sim.output then fail "output mismatch";
  if b.Sim.instructions <> i.Sim.instructions then
    fail "instruction count mismatch (interp %Ld, block %Ld)"
      i.Sim.instructions b.Sim.instructions;
  if b.Sim.nops_retired <> i.Sim.nops_retired then
    fail "nops_retired mismatch (interp %Ld, block %Ld)" i.Sim.nops_retired
      b.Sim.nops_retired;
  if b.Sim.icache_misses <> i.Sim.icache_misses then
    fail "icache_misses mismatch (interp %Ld, block %Ld)" i.Sim.icache_misses
      b.Sim.icache_misses;
  if Int64.bits_of_float b.Sim.cycles <> Int64.bits_of_float i.Sim.cycles then
    fail "cycles not bit-identical (interp %h, block %h)" i.Sim.cycles
      b.Sim.cycles

type row = {
  name : string;
  instructions : int64;
  interp_s : float;
  block_s : float;
  speedup : float;
  block_minsn_s : float;  (* block engine throughput, M insns/s *)
}

let measure_row (p : Suite.prepared) =
  let w = p.Suite.workload in
  Trace.with_span "sim-speedup-workload"
    ~args:[ ("workload", w.Workload.name) ]
    (fun () ->
      let args = w.Workload.ref_args in
      (* Warm-up runs double as the identity check; the block run also
         builds (or re-finds) the image's block cache, so the timed runs
         below measure steady-state execution, not decode. *)
      let ri, _ = time_once ~engine:Sim.Interp p.Suite.baseline ~args in
      let rb, _ = time_once ~engine:Sim.Block p.Suite.baseline ~args in
      check_identical ~what:w.Workload.name ri rb;
      let timed engine =
        median
          (List.init runs (fun _ ->
               snd (time_once ~engine p.Suite.baseline ~args)))
      in
      let interp_s = timed Sim.Interp in
      let block_s = timed Sim.Block in
      {
        name = w.Workload.name;
        instructions = ri.Sim.instructions;
        interp_s;
        block_s;
        speedup = interp_s /. block_s;
        block_minsn_s = Int64.to_float rb.Sim.instructions /. block_s /. 1e6;
      })

let run_scaled () =
  match
    List.find_opt
      (fun (w : Workload.t) -> w.name = scaled_name)
      (Suite.workloads ())
  with
  | None -> None (* --workloads excluded it; skip the scaled cell *)
  | Some w ->
      let p = Suite.prepared w in
      let r, wall = time_once ~engine:Sim.Block p.Suite.baseline ~args:scaled_args in
      Some (r, wall)

let run () =
  Format.printf
    "@.Sim speedup: block-cached engine vs the interpreter oracle (median \
     of %d runs@.per engine, ref inputs, serial timing)@."
    runs;
  Suite.hr Format.std_formatter;
  let prepared = List.map Suite.prepared (Suite.workloads ()) in
  Format.printf "%-16s %12s %10s %10s %8s %10s@." "workload" "insns"
    "interp-s" "block-s" "speedup" "Minsn/s";
  let rows =
    List.filter_map
      (fun p ->
        match measure_row p with
        | row ->
            Format.printf "%-16s %12Ld %10.3f %10.4f %7.1fx %10.1f@." row.name
              row.instructions row.interp_s row.block_s row.speedup
              row.block_minsn_s;
            Some row
        | exception e ->
            Suite.record_failure
              ~cell:("sim-speedup/" ^ p.Suite.workload.Workload.name)
              (Printexc.to_string e);
            None)
      prepared
  in
  Suite.hr Format.std_formatter;
  let geomean = Stats.geomean_ratio (List.map (fun r -> r.speedup) rows) in
  Format.printf "%-16s %52.1fx@." "Geometric Mean" geomean;
  let scaled = run_scaled () in
  (match scaled with
  | None -> Format.printf "(scaled run skipped: %s not selected)@." scaled_name
  | Some (r, wall) ->
      Format.printf
        "scaled: %s x%ld steps — %Ld insns in %.2fs under the block engine \
         (est. %.0fs under interp)@."
        scaled_name
        (List.nth scaled_args 1)
        r.Sim.instructions wall (wall *. geomean));
  let json =
    Jsonw.Obj
      [
        ("schema", Jsonw.Str "psd-bench-sim-speedup/1");
        ("runs_per_engine", Jsonw.int runs);
        ( "workloads",
          Jsonw.List
            (List.map
               (fun row ->
                 Jsonw.Obj
                   [
                     ("name", Jsonw.Str row.name);
                     ("instructions", Jsonw.Int row.instructions);
                     ("interp_wall_s", Jsonw.Float row.interp_s);
                     ("block_wall_s", Jsonw.Float row.block_s);
                     ("speedup", Jsonw.Float row.speedup);
                     ("block_minsn_per_s", Jsonw.Float row.block_minsn_s);
                   ])
               rows) );
        ("geomean_speedup", Jsonw.Float geomean);
        ( "scaled",
          match scaled with
          | None -> Jsonw.Null
          | Some (r, wall) ->
              Jsonw.Obj
                [
                  ("name", Jsonw.Str scaled_name);
                  ( "args",
                    Jsonw.List
                      (List.map
                         (fun a -> Jsonw.int (Int32.to_int a))
                         scaled_args) );
                  ("instructions", Jsonw.Int r.Sim.instructions);
                  ("cycles", Jsonw.Float r.Sim.cycles);
                  ("block_wall_s", Jsonw.Float wall);
                  ("est_interp_wall_s", Jsonw.Float (wall *. geomean));
                ] );
        ("metrics", Metrics.dump ());
      ]
  in
  let out = !Suite.speedup_out in
  let oc = open_out out in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> Jsonw.to_channel oc json);
  Format.printf "sim-speedup report written to %s@." out
