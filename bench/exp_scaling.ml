(* parallel-scaling: wall-clock of the three pooled grids — bench cells,
   population scans, fuzz campaigns — at -j 1/2/4 (and auto when it
   differs), with a determinism check: every parallel run must digest
   identically to its serial run.  Writes BENCH_PR4.json (see
   --scaling-out).

   Speedups are honest about the machine: the report records the core
   count, and on a single-core container every speedup is ~1x by
   construction — the interesting signal there is the determinism column
   and the fork/marshal overhead staying small. *)

type grid_run = {
  g_jobs : int;  (* what the setting resolved to *)
  g_auto : bool;  (* the -j auto row *)
  g_seconds : float;
  g_identical : bool;  (* digests equal to the serial run's *)
}

let time f =
  let t = Unix.gettimeofday () in
  let v = f () in
  (v, Unix.gettimeofday () -. t)

(* Structural digest of a grid's full result — witness that a parallel
   run produced exactly the serial artifacts.  No_sharing matters:
   results that crossed a worker pipe lose physical sharing (each task's
   strings are fresh copies), and the default marshal format encodes
   sharing, so without it two structurally equal result sets digest
   differently. *)
let digest v =
  Digest.to_hex (Digest.string (Marshal.to_string v [ Marshal.No_sharing ]))

let job_settings () =
  let auto = Pool.auto_jobs () in
  let fixed = [ Pool.Jobs 1; Pool.Jobs 2; Pool.Jobs 4 ] in
  let settings = List.map (fun j -> (j, false)) fixed in
  if List.mem auto [ 1; 2; 4 ] then settings
  else settings @ [ (Pool.Auto, true) ]

let resolve = function Pool.Auto -> Pool.auto_jobs () | Pool.Jobs n -> n

(* Run one grid at every jobs setting; the serial (first) digest is the
   reference the others are compared against. *)
let measure ~name ~tasks (runner : Pool.jobs -> string) =
  let runs, _ =
    List.fold_left
      (fun (acc, reference) (jobs, is_auto) ->
        let d, seconds = time (fun () -> runner jobs) in
        let reference = match reference with None -> Some d | r -> r in
        let row =
          {
            g_jobs = resolve jobs;
            g_auto = is_auto;
            g_seconds = seconds;
            g_identical = Some d = reference;
          }
        in
        (row :: acc, reference))
      ([], None) (job_settings ())
  in
  (name, tasks, List.rev runs)

let fail_cell o = failwith ("parallel-scaling: " ^ Pool.outcome_to_string o)
let cell = function Pool.Done v -> v | o -> fail_cell o

(* Grid 1 — bench cells: one task per workload, each running the
   baseline plus one diversified version per config on the ref input. *)
let bench_grid prepared jobs =
  digest
    (List.map cell
       (Pool.map ~jobs
          (fun p ->
            let w = p.Suite.workload in
            let base =
              Driver.run_image p.Suite.baseline ~args:w.Workload.ref_args
            in
            let per_config =
              List.map
                (fun (cname, config) ->
                  let r =
                    Suite.run_version p config 0 ~args:w.Workload.ref_args
                  in
                  (cname, r.Sim.cycles, r.Sim.nops_retired))
                Suite.configs
            in
            (w.Workload.name, base.Sim.cycles, per_config))
          prepared))

(* Grid 2 — population scan: one task per diversified version
   (diversify + link + gadget scan), merged in the parent. *)
let population_grid p jobs =
  let config = List.assoc "p0-30" Suite.configs in
  let keyed =
    List.map cell
      (Pool.map ~jobs
         (fun version ->
           let image, _ =
             Driver.diversify p.Suite.compiled ~config
               ~profile:p.Suite.profile ~version
           in
           Population.section_keys image.Link.text)
         (List.init Suite.security_population Fun.id))
  in
  digest (Population.of_keys ~thresholds:[ 2; 5; 12 ] keyed)

(* Grid 3 — fuzz campaign: one task per generated program. *)
let fuzz_grid jobs =
  let c = Fuzz.run ~jobs ~shrink:false ~seed:2024L ~count:40 () in
  digest
    ( c.Fuzz.checked,
      c.Fuzz.runs,
      c.Fuzz.skips,
      List.map Fuzz.reproducer c.Fuzz.findings,
      c.Fuzz.errors )

let run_json (r : grid_run) =
  Jsonw.Obj
    [
      ("jobs", Jsonw.int r.g_jobs);
      ("auto", Jsonw.Bool r.g_auto);
      ("seconds", Jsonw.Float r.g_seconds);
      ("identical_to_serial", Jsonw.Bool r.g_identical);
    ]

let run () =
  let cores = Pool.auto_jobs () in
  Format.printf
    "@.Parallel scaling: the three pooled grids at each -j (backend %s, \
     %d core%s)@."
    (Pool.backend_name ()) cores
    (if cores = 1 then "" else "s");
  Suite.hr Format.std_formatter;
  let prepared = List.map Suite.prepared (Suite.workloads ()) in
  let grids =
    [
      measure ~name:"bench"
        ~tasks:(List.length prepared)
        (bench_grid prepared);
      measure ~name:"population" ~tasks:Suite.security_population
        (population_grid (List.hd prepared));
      measure ~name:"fuzz" ~tasks:40 fuzz_grid;
    ]
  in
  let serial_seconds runs =
    match runs with r :: _ -> r.g_seconds | [] -> 0.0
  in
  List.iter
    (fun (name, tasks, runs) ->
      let s1 = serial_seconds runs in
      Format.printf "%-12s (%d tasks)@." name tasks;
      List.iter
        (fun r ->
          Format.printf "  -j %d%-5s %8.2fs  x%.2f  %s@." r.g_jobs
            (if r.g_auto then " auto" else "")
            r.g_seconds
            (if r.g_seconds > 0.0 then s1 /. r.g_seconds else 1.0)
            (if r.g_identical then "identical" else "DIVERGED"))
        runs)
    grids;
  let diverged =
    List.exists
      (fun (_, _, runs) -> List.exists (fun r -> not r.g_identical) runs)
      grids
  in
  if diverged then
    Suite.record_failure ~cell:"parallel-scaling/determinism"
      "parallel run diverged from serial";
  let json =
    Jsonw.Obj
      [
        ("schema", Jsonw.Str "psd-bench-scaling/1");
        ("cores", Jsonw.int cores);
        ("backend", Jsonw.Str (Pool.backend_name ()));
        ("workloads", Jsonw.int (List.length prepared));
        ( "grids",
          Jsonw.List
            (List.map
               (fun (name, tasks, runs) ->
                 let s1 = serial_seconds runs in
                 Jsonw.Obj
                   [
                     ("name", Jsonw.Str name);
                     ("tasks", Jsonw.int tasks);
                     ( "runs",
                       Jsonw.List
                         (List.map
                            (fun r ->
                              match run_json r with
                              | Jsonw.Obj fields ->
                                  Jsonw.Obj
                                    (fields
                                    @ [
                                        ( "speedup_vs_serial",
                                          Jsonw.Float
                                            (if r.g_seconds > 0.0 then
                                               s1 /. r.g_seconds
                                             else 1.0) );
                                      ])
                              | j -> j)
                            runs) );
                   ])
               grids) );
      ]
  in
  let out = !Suite.scaling_out in
  let oc = open_out out in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> Jsonw.to_channel oc json);
  Format.printf "parallel-scaling report written to %s@." out
