(* Table 2: surviving gadgets on SPEC binaries — the average number of
   gadgets surviving (same offset, equivalent after NOP normalization)
   over 25 diversified versions, per configuration; plus the paper's two
   derived columns: Extra%% (p0-30 vs p50, best-to-worst) and Surviving%%
   (p0-30 vs the undiversified baseline). *)

type row = {
  bench : string;
  baseline_gadgets : int;
  averages : (string * float) list;
}

let measure_row p =
  let w = p.Suite.workload in
  let original = p.Suite.baseline.Link.text in
  let baseline_gadgets = Finder.count original in
  let averages =
    List.map
      (fun (cname, config) ->
        let texts =
          Suite.texts_of_population p config Suite.security_population
        in
        let survivors =
          List.map
            (fun diversified ->
              float_of_int
                (Survivor.compare_sections ~original ~diversified ())
                  .Survivor.surviving)
            texts
        in
        (cname, Stats.mean survivors))
      Suite.configs
  in
  { bench = w.name; baseline_gadgets; averages }

let run () =
  Format.printf
    "@.Table 2: surviving gadgets on SPEC binaries (average over %d \
     versions)@."
    Suite.security_population;
  Suite.hr Format.std_formatter;
  Format.printf "%-16s%10s" "Benchmark" "Baseline";
  List.iter (fun c -> Format.printf "%9s" c) Suite.config_names;
  Format.printf "%8s%11s@." "Extra%" "Surviving%";
  (* Prepare in the parent (warm cache for workers), then one pool task
     per workload row; failed cells are recorded and dropped. *)
  let prepared = List.map Suite.prepared (Suite.workloads ()) in
  let rows =
    List.filter_map Fun.id
      (Suite.grid ~what:"table2"
         ~label:(fun p -> p.Suite.workload.Workload.name)
         measure_row prepared)
  in
  (* The paper sorts by baseline gadget count. *)
  let rows =
    List.sort (fun a b -> compare a.baseline_gadgets b.baseline_gadgets) rows
  in
  List.iter
    (fun r ->
      let avg name = List.assoc name r.averages in
      let p50 = avg "p50" and p030 = avg "p0-30" in
      let extra =
        if p50 > 0.0 then Suite.pct ((p030 -. p50) /. p50) else 0.0
      in
      let surviving =
        if r.baseline_gadgets > 0 then
          Suite.pct (p030 /. float_of_int r.baseline_gadgets)
        else 0.0
      in
      Format.printf "%-16s%10d" r.bench r.baseline_gadgets;
      List.iter (fun c -> Format.printf "%9.2f" (avg c)) Suite.config_names;
      Format.printf "%7.0f%%%10.2f%%@." extra surviving)
    rows
