(* The evaluation harness: regenerates every table and figure of the
   paper's evaluation, plus heuristic analysis, ablations, telemetry and
   Bechamel microbenchmarks of the underlying kernels.

     dune exec bench/main.exe                 # everything
     dune exec bench/main.exe -- figure4      # one experiment
     dune exec bench/main.exe -- --versions 5 figure4
     dune exec bench/main.exe -- --workloads 429.mcf,470.lbm telemetry
     dune exec bench/main.exe -- --jobs auto telemetry
     dune exec bench/main.exe -- --trace bench.trace telemetry

   Experiments: table1 figure4 table2 table3 php-attack heuristic
   ablation micro fuzz-coverage telemetry parallel-scaling incremental
   pgo-loop serve.
   The telemetry experiment writes the machine-readable report (default
   BENCH_PR2.json, see --out); parallel-scaling writes its own (default
   BENCH_PR4.json, see --scaling-out); incremental writes the cold/warm
   rebuild report (default BENCH_PR5.json, see --incremental-out);
   pgo-loop writes the closed-loop stability report (default
   BENCH_PR7.json, see --pgo-out); sim-speedup times the block-cached
   engine against the interpreter oracle (default BENCH_PR8.json, see
   --speedup-out; timing is serial regardless of --jobs).
   --jobs N|auto runs each
   experiment's workload grid on the parallel pool — reports are
   byte-identical at every -j.  Any failed cell or experiment is
   reported at the end and makes the exit status nonzero. *)

let experiments =
  [
    ("table1", Exp_table1.run);
    ("heuristic", Exp_heuristic.run);
    ("figure4", Exp_figure4.run);
    ("table2", Exp_table2.run);
    ("table3", Exp_table3.run);
    ("php-attack", Exp_php.run);
    ("ablation", Exp_ablation.run);
    ("micro", Exp_micro.run);
    ("fuzz-coverage", Exp_fuzz.run);
    ("telemetry", Exp_telemetry.run);
    ("parallel-scaling", Exp_scaling.run);
    ("incremental", Exp_incremental.run);
    ("pgo-loop", Exp_pgo.run);
    ("sim-speedup", Exp_simspeed.run);
    ("serve", Exp_serve.run);
  ]

let usage () =
  Format.printf
    "usage: main.exe [--versions N] [--workloads A,B,..] [--jobs N|auto] \
     [--trace FILE] [--out FILE] [--scaling-out FILE] [--incremental-out \
     FILE] [--pgo-out FILE] [--speedup-out FILE] [--serve-out FILE] \
     [--serve-population N] [experiment...]@.";
  Format.printf "experiments: %s@."
    (String.concat " " (List.map fst experiments));
  exit 1

let () =
  let trace_file = ref None in
  let args = List.tl (Array.to_list Sys.argv) in
  let rec parse selected = function
    | [] -> List.rev selected
    | "--versions" :: n :: rest -> (
        match int_of_string_opt n with
        | Some v when v > 0 ->
            Suite.perf_versions := v;
            parse selected rest
        | _ -> usage ())
    | "--workloads" :: names :: rest -> (
        match
          List.map Workloads.find (String.split_on_char ',' names)
        with
        | ws ->
            Suite.selected_workloads := ws;
            parse selected rest
        | exception Not_found ->
            Format.printf "unknown workload in %S@." names;
            usage ())
    | "--jobs" :: j :: rest -> (
        match Pool.jobs_of_string j with
        | Ok jobs ->
            Suite.jobs := jobs;
            parse selected rest
        | Error msg ->
            Format.printf "--jobs: %s@." msg;
            usage ())
    | "--trace" :: file :: rest ->
        trace_file := Some file;
        parse selected rest
    | "--out" :: file :: rest ->
        Suite.telemetry_out := file;
        parse selected rest
    | "--scaling-out" :: file :: rest ->
        Suite.scaling_out := file;
        parse selected rest
    | "--incremental-out" :: file :: rest ->
        Suite.incremental_out := file;
        parse selected rest
    | "--pgo-out" :: file :: rest ->
        Suite.pgo_out := file;
        parse selected rest
    | "--speedup-out" :: file :: rest ->
        Suite.speedup_out := file;
        parse selected rest
    | "--serve-out" :: file :: rest ->
        Suite.serve_out := file;
        parse selected rest
    | "--serve-population" :: n :: rest -> (
        match int_of_string_opt n with
        | Some v when v > 0 ->
            Suite.serve_population := v;
            parse selected rest
        | _ -> usage ())
    | ("-h" | "--help") :: _ -> usage ()
    | name :: rest ->
        if List.mem_assoc name experiments then parse (name :: selected) rest
        else begin
          Format.printf "unknown experiment %S@." name;
          usage ()
        end
  in
  let selected = parse [] args in
  let to_run =
    match selected with [] -> List.map fst experiments | l -> l
  in
  if !trace_file <> None then Trace.start ();
  let t0 = Unix.gettimeofday () in
  (* An experiment that raises must not take the harness (or the other
     experiments) with it — record it and keep going; the failure
     summary below turns any recorded failure into a nonzero exit, which
     is what CI keys on. *)
  List.iter
    (fun name ->
      let t = Unix.gettimeofday () in
      (try
         Trace.with_span "experiment" ~args:[ ("name", name) ] (fun () ->
             (List.assoc name experiments) ())
       with e ->
         Suite.record_failure ~cell:name
           (Printexc.to_string e ^ "\n" ^ Printexc.get_backtrace ()));
      Format.printf "[%s finished in %.1fs]@." name (Unix.gettimeofday () -. t))
    to_run;
  Format.printf "@.total: %.1fs@." (Unix.gettimeofday () -. t0);
  (match !trace_file with
  | None -> ()
  | Some file ->
      Trace.stop ();
      Trace.write file;
      Format.printf "trace: %d events written to %s@." (Trace.event_count ())
        file);
  match List.rev !Suite.failures with
  | [] -> ()
  | failures ->
      Format.printf "@.%d FAILED cell(s):@." (List.length failures);
      List.iter
        (fun (cell, msg) -> Format.printf "  %s: %s@." cell msg)
        failures;
      exit 1
