(* Shared plumbing for the evaluation harness: compile-and-profile each
   workload through the staged driver's artifact cache (one compile, one
   training run and one baseline link per workload, shared across every
   experiment), and provide the paper's parameters. *)

type prepared = {
  workload : Workload.t;
  compiled : Driver.compiled;
  profile : Profile.t;
  baseline : Link.image;
}

let prepare (w : Workload.t) =
  let compiled = Driver.compile_cached ~name:w.name w.source in
  {
    workload = w;
    compiled;
    profile = Driver.train_cached compiled ~args:w.train_args;
    baseline = Driver.link_baseline_cached compiled;
  }

let prepared = prepare

let configs = Config.paper_configs
let config_names = List.map fst configs

(* The paper builds 25 versions for the security tables and 5 for the
   performance figure (3 runs each; our simulator is deterministic, so
   re-running a version is pointless and we run each once). *)
let security_population = 25
let perf_versions = ref 3

(* Which workloads the workload-sweeping experiments cover: all 19 by
   default, restrictable with bench's --workloads flag (the CI smoke run
   keeps a full experiment cheap by selecting two small programs). *)
let selected_workloads = ref Workloads.all
let workloads () = !selected_workloads

(* Where the telemetry experiment writes its machine-readable report. *)
let telemetry_out = ref "BENCH_PR2.json"

(* Where the parallel-scaling experiment writes its report. *)
let scaling_out = ref "BENCH_PR4.json"

(* Where the incremental-build experiment writes its report. *)
let incremental_out = ref "BENCH_PR5.json"

(* Where the PGO-loop experiment writes its report. *)
let pgo_out = ref "BENCH_PR7.json"

(* Where the sim-speedup experiment writes its report. *)
let speedup_out = ref "BENCH_PR8.json"

(* Where the variant-serving experiment writes its report, and how many
   versions its population-at-scale survivor run builds. *)
let serve_out = ref "BENCH_PR9.json"
let serve_population = ref 1000

(* Worker count for the experiment grids (bench's --jobs flag).  Serial
   by default; the pool's serial path is the reference semantics, so
   "--jobs 1" and "--jobs N" produce byte-identical reports. *)
let jobs = ref (Pool.Jobs 1)

(* Cell failures, accumulated across experiments: an experiment skips
   the failed cell and carries on, and bench's main exits nonzero if
   anything landed here — the CI perf gate depends on that exit code. *)
let failures : (string * string) list ref = ref []
let record_failure ~cell msg = failures := (cell, msg) :: !failures

(* Run one experiment grid on the pool: one task per item, results in
   item order, failed cells logged and returned as None.  Items must be
   prepared (see [prepared]) in the parent first when they share driver
   caches — workers inherit the warm cache, keeping cache-hit metrics
   identical at every -j. *)
let grid ~what ~label f items =
  let outcomes = Pool.map ~jobs:!jobs f items in
  List.map2
    (fun item -> function
      | Pool.Done v -> Some v
      | o ->
          record_failure
            ~cell:(what ^ "/" ^ label item)
            (Pool.outcome_to_string o);
          None)
    items outcomes

let run_version p config version ~args =
  let image, _ =
    Driver.diversify_linked p.compiled ~config ~profile:p.profile ~version
  in
  Driver.run_image image ~args

let texts_of_population p config n =
  List.map
    (fun (img : Link.image) -> img.Link.text)
    (Driver.population p.compiled ~config ~profile:p.profile ~n)

let pct x = x *. 100.0

let hr ppf = Format.fprintf ppf "%s@." (String.make 78 '-')
