lib/sim/timing.mli: Insn
