lib/sim/sim.mli: Link Timing
