lib/sim/timing.ml: Insn Nops
