lib/sim/sim.ml: Array Buffer Char Cond Decode Format Insn Int32 Int64 Libc Link List Nops Printf Reg String Timing
