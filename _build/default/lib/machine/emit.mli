(** Expansion of register-allocated machine IR into symbolic assembly.

    Every MIR instruction expands to a short, self-contained x86 sequence.
    EAX, ECX and EDX are expansion scratch (never allocated), which makes
    memory-to-memory cases expressible without a second allocation pass.
    The frame layout is:

    {v
        [ebp + 8 + 4i]  incoming argument i
        [ebp + 4]       return address
        [ebp]           saved EBP
        [ebp - 4 .. ]   saved callee-saved registers (EBX/ESI/EDI, if used)
        ...             spill slots
        ...             source-level stack slots (local arrays)
    v}

    Calling convention: cdecl — arguments pushed right to left, caller
    cleans up, result in EAX. *)

val func : Mir.func -> Regalloc.assignment -> Asm.func
(** Expand one function, including prologue and epilogue. *)

val compile_func : Ir.func -> Asm.func
(** Convenience pipeline: instruction selection, register allocation,
    expansion. *)
