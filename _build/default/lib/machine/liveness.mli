(** Backward liveness analysis over machine-IR virtual registers.

    Standard iterative dataflow on the block CFG:
    [live_in(b) = use(b) ∪ (live_out(b) \ def(b))],
    [live_out(b) = ∪ live_in(succ)].  Physical registers are ignored —
    they only occur inside single-instruction expansions and never carry
    values across instructions. *)

module ISet : Set.S with type elt = int

type t

val analyze : Mir.func -> t
val live_in : t -> Ir.label -> ISet.t
val live_out : t -> Ir.label -> ISet.t

val virt_uses : Mir.minsn -> int list
(** Virtual registers read by one instruction. *)

val virt_defs : Mir.minsn -> int list
val term_virt_uses : Mir.mterm -> int list
