(** Instruction selection: IR to machine IR.

    Each IR temp becomes the virtual register with the same number; fresh
    virtual registers are allocated above [Ir.func.next_temp] for
    intermediates.  Blocks and labels are preserved one-to-one, so
    per-basic-block profile counts remain valid on the machine IR.

    Incoming parameters are loaded from the caller's frame into their
    virtual registers at function entry. *)

val func : Ir.func -> Mir.func
val modul : Ir.modul -> Mir.func list
