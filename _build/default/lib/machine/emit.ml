open Insn

(* Where a value lives after register allocation. *)
type vloc = Vreg of Reg.t | Vmem of Insn.mem

type frame = {
  assignment : Regalloc.assignment;
  saved : Reg.t list;  (* callee-saved registers written by this function *)
  slot_disp : (int * int32) list;  (* slot id -> ebp-relative displacement *)
  frame_bytes : int;  (* bytes to subtract from ESP after saves *)
}

let ebp_mem disp = Insn.mem_base ~disp Reg.EBP

let build_frame (f : Mir.func) (assignment : Regalloc.assignment) =
  let saved = assignment.used_callee_saved in
  let ns = List.length saved in
  (* Saves occupy [ebp-4 .. ebp-4*ns]; spills follow; slots after that. *)
  let spill_base = 4 * ns in
  let slot_start = spill_base + (4 * assignment.spill_count) in
  let slot_disp, slot_end =
    List.fold_left
      (fun (acc, off) (s : Ir.slot) ->
        let off = off + (4 * s.size_words) in
        ((s.slot_id, Int32.of_int (-off)) :: acc, off))
      ([], slot_start) f.slots
  in
  (* The frame must cover saves, spills and slots; [slot_end] already
     accumulates all three areas. *)
  { assignment; saved; slot_disp; frame_bytes = slot_end }

let spill_mem frame k =
  let ns = List.length frame.saved in
  ebp_mem (Int32.of_int (-(4 * ns) - (4 * (k + 1))))

let param_mem i = ebp_mem (Int32.of_int (8 + (4 * i)))

let slot_disp frame s =
  match List.assoc_opt s frame.slot_disp with
  | Some d -> d
  | None -> failwith (Printf.sprintf "Emit: unknown slot %d" s)

let vloc frame (r : Mir.reg) =
  match r with
  | Mir.Phys p -> Vreg p
  | Mir.Virt v -> (
      match Regalloc.loc_of frame.assignment v with
      | Regalloc.Lreg p -> Vreg p
      | Regalloc.Lspill k -> Vmem (spill_mem frame k))

let rm_of_vloc = function Vreg r -> Reg r | Vmem m -> Mem m

(* Move a machine operand into a specific scratch register. *)
let to_scratch frame scratch (op : Mir.mop) : Insn.t list =
  match op with
  | Mir.I imm -> [ Mov_r_imm (scratch, imm) ]
  | Mir.R r -> (
      match vloc frame r with
      | Vreg p when Reg.equal p scratch -> []
      | Vreg p -> [ Mov_r_rm (scratch, Reg p) ]
      | Vmem m -> [ Mov_r_rm (scratch, Mem m) ])

(* Store a scratch register into a destination location. *)
let from_scratch frame scratch (dst : Mir.reg) : Insn.t list =
  match vloc frame dst with
  | Vreg p when Reg.equal p scratch -> []
  | Vreg p -> [ Mov_r_rm (p, Reg scratch) ]
  | Vmem m -> [ Mov_rm_r (Mem m, scratch) ]

let cond_of_relop : Ir.relop -> Cond.t = function
  | Ir.Eq -> Cond.E
  | Ir.Ne -> Cond.NE
  | Ir.Lt -> Cond.L
  | Ir.Le -> Cond.LE
  | Ir.Gt -> Cond.G
  | Ir.Ge -> Cond.GE

let alu_of : Mir.alu -> Insn.alu = function
  | Mir.Aadd -> Add
  | Mir.Asub -> Sub
  | Mir.Aand -> And
  | Mir.Aor -> Or
  | Mir.Axor -> Xor

let shift_of : Mir.shift -> Insn.shift = function
  | Mir.Sshl -> Shl
  | Mir.Sshr -> Shr
  | Mir.Ssar -> Sar

(* Emit "cmp a, b" (so that the flags reflect a-b), using scratch EAX/EDX
   for memory-memory and immediate-first cases. *)
let emit_cmp frame (a : Mir.mop) (b : Mir.mop) : Insn.t list =
  match (a, b) with
  | Mir.I ia, Mir.I ib ->
      [ Mov_r_imm (Reg.EAX, ia); Alu_rm_imm (Cmp, Reg Reg.EAX, ib) ]
  | Mir.I ia, Mir.R rb ->
      Mov_r_imm (Reg.EAX, ia)
      :: (match vloc frame rb with
         | Vreg p -> [ Alu_r_rm (Cmp, Reg.EAX, Reg p) ]
         | Vmem m -> [ Alu_r_rm (Cmp, Reg.EAX, Mem m) ])
  | Mir.R ra, Mir.I ib -> [ Alu_rm_imm (Cmp, rm_of_vloc (vloc frame ra), ib) ]
  | Mir.R ra, Mir.R rb -> (
      match (vloc frame ra, vloc frame rb) with
      | la, Vreg pb -> [ Alu_rm_r (Cmp, rm_of_vloc la, pb) ]
      | Vreg pa, Vmem mb -> [ Alu_r_rm (Cmp, pa, Mem mb) ]
      | Vmem ma, Vmem mb ->
          [ Mov_r_rm (Reg.EDX, Mem mb); Alu_rm_r (Cmp, Mem ma, Reg.EDX) ])

(* The address held in a MIR register, as an x86 memory operand; spilled
   addresses bounce through EDX. *)
let addr_operand frame (r : Mir.reg) : Insn.t list * Insn.mem =
  match vloc frame r with
  | Vreg p -> ([], Insn.mem_base p)
  | Vmem m -> ([ Mov_r_rm (Reg.EDX, Mem m) ], Insn.mem_base Reg.EDX)

let expand frame (mi : Mir.minsn) : Insn.t list =
  match mi with
  | Mir.Mov (d, s) -> (
      match (vloc frame d, s) with
      | Vreg p, Mir.I imm -> [ Mov_r_imm (p, imm) ]
      | Vmem m, Mir.I imm -> [ Mov_rm_imm (Mem m, imm) ]
      | dl, Mir.R sr -> (
          match (dl, vloc frame sr) with
          | Vreg dp, Vreg sp ->
              if Reg.equal dp sp then [] else [ Mov_r_rm (dp, Reg sp) ]
          | Vreg dp, Vmem sm -> [ Mov_r_rm (dp, Mem sm) ]
          | Vmem dm, Vreg sp -> [ Mov_rm_r (Mem dm, sp) ]
          | Vmem dm, Vmem sm ->
              if Insn.equal_mem dm sm then []
              else [ Mov_r_rm (Reg.EAX, Mem sm); Mov_rm_r (Mem dm, Reg.EAX) ]))
  | Mir.Load (d, a) -> (
      let pre, mem =
        match a with
        | Mir.Areg r -> addr_operand frame r
        | Mir.Aslot s -> ([], ebp_mem (slot_disp frame s))
        | Mir.Aparam i -> ([], param_mem i)
      in
      match vloc frame d with
      | Vreg p -> pre @ [ Mov_r_rm (p, Mem mem) ]
      | Vmem dm -> pre @ [ Mov_r_rm (Reg.EAX, Mem mem); Mov_rm_r (Mem dm, Reg.EAX) ])
  | Mir.Store (a, s) -> (
      let pre, mem =
        match a with
        | Mir.Areg r -> addr_operand frame r
        | Mir.Aslot sl -> ([], ebp_mem (slot_disp frame sl))
        | Mir.Aparam i -> ([], param_mem i)
      in
      match s with
      | Mir.I imm -> pre @ [ Mov_rm_imm (Mem mem, imm) ]
      | Mir.R r -> (
          match vloc frame r with
          | Vreg p -> pre @ [ Mov_rm_r (Mem mem, p) ]
          | Vmem sm ->
              pre @ [ Mov_r_rm (Reg.EAX, Mem sm); Mov_rm_r (Mem mem, Reg.EAX) ]))
  | Mir.Alu (op, d, s) -> (
      let alu = alu_of op in
      match (vloc frame d, s) with
      | dl, Mir.I imm -> [ Alu_rm_imm (alu, rm_of_vloc dl, imm) ]
      | dl, Mir.R sr -> (
          match (dl, vloc frame sr) with
          | dl, Vreg sp -> [ Alu_rm_r (alu, rm_of_vloc dl, sp) ]
          | Vreg dp, Vmem sm -> [ Alu_r_rm (alu, dp, Mem sm) ]
          | Vmem dm, Vmem sm ->
              [ Mov_r_rm (Reg.EAX, Mem sm); Alu_rm_r (alu, Mem dm, Reg.EAX) ]))
  | Mir.Imul (d, s) -> (
      match vloc frame d with
      | Vreg dp -> (
          match s with
          | Mir.I imm -> [ Mov_r_imm (Reg.ECX, imm); Imul_r_rm (dp, Reg Reg.ECX) ]
          | Mir.R sr -> [ Imul_r_rm (dp, rm_of_vloc (vloc frame sr)) ])
      | Vmem dm ->
          Mov_r_rm (Reg.EAX, Mem dm)
          ::
          (match s with
          | Mir.I imm -> [ Mov_r_imm (Reg.ECX, imm); Imul_r_rm (Reg.EAX, Reg Reg.ECX) ]
          | Mir.R sr -> [ Imul_r_rm (Reg.EAX, rm_of_vloc (vloc frame sr)) ])
          @ [ Mov_rm_r (Mem dm, Reg.EAX) ])
  | Mir.Neg d -> [ Neg (rm_of_vloc (vloc frame d)) ]
  | Mir.Not d -> [ Not (rm_of_vloc (vloc frame d)) ]
  | Mir.Shift (sh, d, s) -> (
      let shift = shift_of sh in
      let d_rm = rm_of_vloc (vloc frame d) in
      match s with
      | Mir.I imm -> [ Shift_imm (shift, d_rm, Int32.to_int imm land 31) ]
      | Mir.R _ -> to_scratch frame Reg.ECX s @ [ Shift_cl (shift, d_rm) ])
  | Mir.Div { dst; dividend; divisor; want_rem } ->
      let div_insns =
        match divisor with
        | Mir.I imm -> [ Mov_r_imm (Reg.ECX, imm); Idiv (Reg Reg.ECX) ]
        | Mir.R r -> [ Idiv (rm_of_vloc (vloc frame r)) ]
      in
      to_scratch frame Reg.EAX dividend
      @ [ Cdq ] @ div_insns
      @ from_scratch frame (if want_rem then Reg.EDX else Reg.EAX) dst
  | Mir.Set (rel, d, a, b) ->
      emit_cmp frame a b
      @ [ Setcc (cond_of_relop rel, Reg.AL) ]
      @ (match vloc frame d with
        | Vreg p -> [ Movzx_r_r8 (p, Reg.AL) ]
        | Vmem m -> [ Movzx_r_r8 (Reg.EAX, Reg.AL); Mov_rm_r (Mem m, Reg.EAX) ])
  | Mir.Lea_slot (d, s) -> (
      let m = ebp_mem (slot_disp frame s) in
      match vloc frame d with
      | Vreg p -> [ Lea (p, m) ]
      | Vmem dm -> [ Lea (Reg.EAX, m); Mov_rm_r (Mem dm, Reg.EAX) ])
  | Mir.Lea_global _ -> assert false (* handled at the item level *)
  | Mir.Call _ -> assert false (* handled at the item level *)

(* Instructions that expand to symbolic items (relocations) rather than
   plain instructions. *)
let expand_items frame (mi : Mir.minsn) : Asm.item list =
  match mi with
  | Mir.Lea_global (d, g) -> (
      match vloc frame d with
      | Vreg p -> [ Asm.Mov_sym (p, g) ]
      | Vmem m ->
          [ Asm.Mov_sym (Reg.EAX, g); Asm.Ins (Mov_rm_r (Mem m, Reg.EAX)) ])
  | Mir.Call { dst; callee; args } ->
      let pushes =
        List.concat_map
          (fun (arg : Mir.mop) ->
            match arg with
            | Mir.I imm -> [ Asm.Ins (Push_imm imm) ]
            | Mir.R r -> (
                match vloc frame r with
                | Vreg p -> [ Asm.Ins (Push_r p) ]
                | Vmem m ->
                    [
                      Asm.Ins (Mov_r_rm (Reg.EAX, Mem m));
                      Asm.Ins (Push_r Reg.EAX);
                    ]))
          (List.rev args)
      in
      let cleanup =
        if args = [] then []
        else
          [
            Asm.Ins
              (Alu_rm_imm (Add, Reg Reg.ESP, Int32.of_int (4 * List.length args)));
          ]
      in
      let result =
        match dst with
        | None -> []
        | Some d -> List.map (fun i -> Asm.Ins i) (from_scratch frame Reg.EAX d)
      in
      pushes @ [ Asm.Call_sym callee ] @ cleanup @ result
  | _ -> List.map (fun i -> Asm.Ins i) (expand frame mi)

let prologue frame =
  let saves =
    List.mapi
      (fun i r -> Mov_rm_r (Mem (ebp_mem (Int32.of_int (-4 * (i + 1)))), r))
      frame.saved
  in
  [ Push_r Reg.EBP; Mov_rm_r (Reg Reg.EBP, Reg.ESP) ]
  @ (if frame.frame_bytes > 0 then
       [ Alu_rm_imm (Sub, Reg Reg.ESP, Int32.of_int frame.frame_bytes) ]
     else [])
  @ saves

let epilogue frame =
  let restores =
    List.mapi
      (fun i r -> Mov_r_rm (r, Mem (ebp_mem (Int32.of_int (-4 * (i + 1))))))
      frame.saved
  in
  restores
  @ [ Mov_rm_r (Reg Reg.ESP, Reg.EBP); Pop_r Reg.EBP; Ret ]

let terminator frame ~next (t : Mir.mterm) : Asm.item list =
  match t with
  | Mir.Tret v ->
      let load =
        match v with
        | None -> [ Mov_r_imm (Reg.EAX, 0l) ]
        | Some op -> (
            match to_scratch frame Reg.EAX op with
            | [] -> [] (* value already in EAX — cannot happen for vregs *)
            | l -> l)
      in
      List.map (fun i -> Asm.Ins i) (load @ epilogue frame)
  | Mir.Tjmp l -> if next = Some l then [] else [ Asm.Jmp_sym l ]
  | Mir.Tjcc (rel, a, b, l1, l2) ->
      let cmp = List.map (fun i -> Asm.Ins i) (emit_cmp frame a b) in
      let jcc = Asm.Jcc_sym (cond_of_relop rel, l1) in
      let tail = if next = Some l2 then [] else [ Asm.Jmp_sym l2 ] in
      cmp @ (jcc :: tail)

let func (f : Mir.func) (assignment : Regalloc.assignment) : Asm.func =
  let frame = build_frame f assignment in
  let rec blocks = function
    | [] -> []
    | (b : Mir.block) :: rest ->
        let next =
          match rest with nb :: _ -> Some nb.Mir.label | [] -> None
        in
        let body = List.concat_map (expand_items frame) b.insns in
        (Asm.Label b.label :: body)
        @ terminator frame ~next b.term
        @ blocks rest
  in
  let items =
    match f.blocks with
    | [] -> []
    | entry :: _ ->
        (* Prologue precedes the entry block body but sits under its
           label so profile attribution is correct. *)
        let all = blocks f.blocks in
        let rec inject = function
          | Asm.Label l :: rest when l = entry.Mir.label ->
              Asm.Label l
              :: (List.map (fun i -> Asm.Ins i) (prologue frame) @ rest)
          | item :: rest -> item :: inject rest
          | [] -> []
        in
        inject all
  in
  { Asm.name = f.name; items }

let compile_func irf =
  let mf = Isel.func irf in
  let assignment = Regalloc.allocate mf in
  func mf assignment
