lib/machine/emit.pp.mli: Asm Ir Mir Regalloc
