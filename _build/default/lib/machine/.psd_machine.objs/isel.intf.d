lib/machine/isel.pp.mli: Ir Mir
