lib/machine/liveness.pp.ml: Int List Map Mir Set
