lib/machine/mir.pp.ml: Format Ir List Option Ppx_deriving_runtime Reg
