lib/machine/asm.pp.mli: Cond Format Insn Ir Reg
