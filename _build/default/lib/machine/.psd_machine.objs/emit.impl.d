lib/machine/emit.pp.ml: Asm Cond Insn Int32 Ir Isel List Mir Printf Reg Regalloc
