lib/machine/isel.pp.ml: Ir List Mir Option
