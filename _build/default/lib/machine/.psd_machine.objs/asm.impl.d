lib/machine/asm.pp.ml: Buffer Cond Encode Format Hashtbl Insn Int32 Ir List Printf Reg
