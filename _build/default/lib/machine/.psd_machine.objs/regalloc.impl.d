lib/machine/regalloc.pp.ml: Hashtbl List Liveness Mir Option Printf Reg
