lib/machine/regalloc.pp.mli: Hashtbl Mir Reg
