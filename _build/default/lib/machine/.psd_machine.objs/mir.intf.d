lib/machine/mir.pp.mli: Format Ir Ppx_deriving_runtime Reg
