lib/machine/liveness.pp.mli: Ir Mir Set
