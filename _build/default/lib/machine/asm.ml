type item =
  | Label of Ir.label
  | Ins of Insn.t
  | Jmp_sym of Ir.label
  | Jcc_sym of Cond.t * Ir.label
  | Call_sym of string
  | Mov_sym of Reg.t * string

type func = { name : string; items : item list }

type reloc = Rel32 of int * string | Abs32 of int * string

type assembled = {
  bytes : string;
  relocs : reloc list;
  label_offsets : (Ir.label * int) list;
}

let item_size = function
  | Label _ -> 0
  | Ins i -> Encode.length i
  | Jmp_sym _ -> 5 (* E9 rel32 *)
  | Jcc_sym _ -> 6 (* 0F 8x rel32 *)
  | Call_sym _ -> 5 (* E8 rel32 *)
  | Mov_sym _ -> 5 (* B8+r imm32 *)

let func_size f = List.fold_left (fun acc i -> acc + item_size i) 0 f.items

let assemble f =
  (* Pass 1: label offsets. *)
  let offsets = Hashtbl.create 16 in
  let labels_in_order = ref [] in
  let pos = ref 0 in
  List.iter
    (fun item ->
      (match item with
      | Label l ->
          Hashtbl.replace offsets l !pos;
          labels_in_order := (l, !pos) :: !labels_in_order
      | _ -> ());
      pos := !pos + item_size item)
    f.items;
  let target l =
    match Hashtbl.find_opt offsets l with
    | Some o -> o
    | None -> failwith (Printf.sprintf "Asm.assemble: unknown label L%d in %s" l f.name)
  in
  (* Pass 2: bytes.  Branch displacements are relative to the end of the
     branch instruction. *)
  let buf = Buffer.create 256 in
  let relocs = ref [] in
  List.iter
    (fun item ->
      let here = Buffer.length buf in
      match item with
      | Label _ -> ()
      | Ins i -> Encode.insn_into buf i
      | Jmp_sym l ->
          Encode.insn_into buf (Insn.Jmp_rel (Int32.of_int (target l - (here + 5))))
      | Jcc_sym (c, l) ->
          Encode.insn_into buf (Insn.Jcc (c, Int32.of_int (target l - (here + 6))))
      | Call_sym sym ->
          relocs := Rel32 (here + 1, sym) :: !relocs;
          Encode.insn_into buf (Insn.Call_rel 0l)
      | Mov_sym (r, sym) ->
          relocs := Abs32 (here + 1, sym) :: !relocs;
          Encode.insn_into buf (Insn.Mov_r_imm (r, 0l)))
    f.items;
  {
    bytes = Buffer.contents buf;
    relocs = List.rev !relocs;
    label_offsets = List.rev !labels_in_order;
  }

let map_insns fn f =
  let current = ref None in
  let items =
    List.concat_map
      (fun item ->
        (match item with Label l -> current := Some l | _ -> ());
        fn !current item)
      f.items
  in
  { f with items }

let insns f =
  List.filter_map (function Ins i -> Some i | _ -> None) f.items

let pp ppf f =
  Format.fprintf ppf "%s:@." f.name;
  List.iter
    (fun item ->
      match item with
      | Label l -> Format.fprintf ppf "L%d:@." l
      | Ins i -> Format.fprintf ppf "  %a@." Insn.pp i
      | Jmp_sym l -> Format.fprintf ppf "  jmp L%d@." l
      | Jcc_sym (c, l) -> Format.fprintf ppf "  j%s L%d@." (Cond.name c) l
      | Call_sym s -> Format.fprintf ppf "  call %s@." s
      | Mov_sym (r, s) -> Format.fprintf ppf "  mov $%s, %%%s@." s (Reg.name r))
    f.items
