(** Symbolic assembly: the final pre-layout program representation.

    A function is a flat list of items — concrete x86 instructions
    interleaved with basic-block label markers, unresolved intra-function
    branches, and relocatable references to symbols (calls, global
    addresses).  This is the exact stage of the paper's Figure 3 where NOP
    insertion happens: instructions are final machine instructions, but
    branch displacements are not yet fixed, so inserted bytes displace all
    following code for free.

    All unresolved branches use fixed-size encodings ([JMP rel32 = 5]
    bytes, [Jcc rel32 = 6], [CALL rel32 = 5], [MOV r32,imm32 = 5]), so
    layout needs a single sizing pass. *)

type item =
  | Label of Ir.label  (** basic-block boundary marker (emits nothing) *)
  | Ins of Insn.t  (** a concrete instruction *)
  | Jmp_sym of Ir.label  (** unconditional branch to a local block *)
  | Jcc_sym of Cond.t * Ir.label  (** conditional branch to a local block *)
  | Call_sym of string  (** call to a function symbol (reloc) *)
  | Mov_sym of Reg.t * string  (** load a global's absolute address (reloc) *)

type func = { name : string; items : item list }

type reloc =
  | Rel32 of int * string  (** patch site offset (of the disp32 field), target function *)
  | Abs32 of int * string  (** patch site offset (of the imm32 field), target global *)

type assembled = {
  bytes : string;  (** encoded body; reloc fields still zero *)
  relocs : reloc list;  (** offsets relative to the function start *)
  label_offsets : (Ir.label * int) list;  (** block starts, function-relative *)
}

val item_size : item -> int
(** Encoded size in bytes ([Label] is 0). *)

val func_size : func -> int

val assemble : func -> assembled
(** Resolve local branches and lay out the bytes.  Raises [Failure] on a
    branch to an unknown label. *)

val map_insns : (Ir.label option -> item -> item list) -> func -> func
(** [map_insns f fn] rewrites the item stream; [f] receives the current
    basic-block label (from the most recent [Label] marker) and the item.
    This is the hook the NOP-insertion pass uses. *)

val insns : func -> Insn.t list
(** Just the concrete instructions, in order (labels and symbolic items
    skipped) — for instruction-level statistics. *)

val pp : Format.formatter -> func -> unit
