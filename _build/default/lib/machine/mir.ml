type reg = Virt of int | Phys of Reg.t [@@deriving eq, ord, show]
type mop = R of reg | I of int32 [@@deriving eq, ord, show]

type addr = Areg of reg | Aslot of int | Aparam of int
[@@deriving eq, ord, show]

type alu = Aadd | Asub | Aand | Aor | Axor [@@deriving eq, ord, show]
type shift = Sshl | Sshr | Ssar [@@deriving eq, ord, show]

type minsn =
  | Mov of reg * mop
  | Load of reg * addr
  | Store of addr * mop
  | Alu of alu * reg * mop
  | Imul of reg * mop
  | Neg of reg
  | Not of reg
  | Shift of shift * reg * mop
  | Div of { dst : reg; dividend : mop; divisor : mop; want_rem : bool }
  | Set of Ir.relop * reg * mop * mop
  | Lea_slot of reg * int
  | Lea_global of reg * string
  | Call of { dst : reg option; callee : string; args : mop list }
[@@deriving eq, ord, show]

type mterm =
  | Tret of mop option
  | Tjmp of Ir.label
  | Tjcc of Ir.relop * mop * mop * Ir.label * Ir.label
[@@deriving eq, ord, show]

type block = {
  label : Ir.label;
  mutable insns : minsn list;
  mutable term : mterm;
}

type func = {
  name : string;
  n_params : int;
  mutable blocks : block list;
  slots : Ir.slot list;
  mutable next_virt : int;
}

let mop_regs = function R r -> [ r ] | I _ -> []
let addr_regs = function Areg r -> [ r ] | Aslot _ | Aparam _ -> []

let defs = function
  | Mov (d, _)
  | Load (d, _)
  | Alu (_, d, _)
  | Imul (d, _)
  | Neg d
  | Not d
  | Shift (_, d, _)
  | Div { dst = d; _ }
  | Set (_, d, _, _)
  | Lea_slot (d, _)
  | Lea_global (d, _) ->
      [ d ]
  | Store _ -> []
  | Call { dst; _ } -> Option.to_list dst

let uses = function
  | Mov (_, s) -> mop_regs s
  | Load (_, a) -> addr_regs a
  | Store (a, s) -> addr_regs a @ mop_regs s
  (* Two-address forms read their destination too. *)
  | Alu (_, d, s) | Imul (d, s) | Shift (_, d, s) -> d :: mop_regs s
  | Neg d | Not d -> [ d ]
  | Div { dividend; divisor; _ } -> mop_regs dividend @ mop_regs divisor
  | Set (_, _, a, b) -> mop_regs a @ mop_regs b
  | Lea_slot _ | Lea_global _ -> []
  | Call { args; _ } -> List.concat_map mop_regs args

let term_uses = function
  | Tret (Some op) -> mop_regs op
  | Tret None -> []
  | Tjmp _ -> []
  | Tjcc (_, a, b, _, _) -> mop_regs a @ mop_regs b

let successors = function
  | Tret _ -> []
  | Tjmp l -> [ l ]
  | Tjcc (_, _, _, l1, l2) -> if l1 = l2 then [ l1 ] else [ l1; l2 ]

let map_regs f insn =
  let g = f in
  let mop = function R r -> R (g r) | I _ as i -> i in
  let addr = function Areg r -> Areg (g r) | a -> a in
  match insn with
  | Mov (d, s) -> Mov (g d, mop s)
  | Load (d, a) -> Load (g d, addr a)
  | Store (a, s) -> Store (addr a, mop s)
  | Alu (op, d, s) -> Alu (op, g d, mop s)
  | Imul (d, s) -> Imul (g d, mop s)
  | Neg d -> Neg (g d)
  | Not d -> Not (g d)
  | Shift (sh, d, s) -> Shift (sh, g d, mop s)
  | Div { dst; dividend; divisor; want_rem } ->
      Div { dst = g dst; dividend = mop dividend; divisor = mop divisor; want_rem }
  | Set (rel, d, a, b) -> Set (rel, g d, mop a, mop b)
  | Lea_slot (d, s) -> Lea_slot (g d, s)
  | Lea_global (d, s) -> Lea_global (g d, s)
  | Call { dst; callee; args } ->
      Call { dst = Option.map g dst; callee; args = List.map mop args }

let pp_reg ppf = function
  | Virt v -> Format.fprintf ppf "v%d" v
  | Phys r -> Format.fprintf ppf "%%%s" (Reg.name r)

let pp_mop ppf = function
  | R r -> pp_reg ppf r
  | I i -> Format.fprintf ppf "$%ld" i

let pp_addr ppf = function
  | Areg r -> Format.fprintf ppf "[%a]" pp_reg r
  | Aslot s -> Format.fprintf ppf "[slot%d]" s
  | Aparam i -> Format.fprintf ppf "[param%d]" i

let alu_name = function
  | Aadd -> "add"
  | Asub -> "sub"
  | Aand -> "and"
  | Aor -> "or"
  | Axor -> "xor"

let shift_name = function Sshl -> "shl" | Sshr -> "shr" | Ssar -> "sar"

let pp_minsn ppf i =
  let p fmt = Format.fprintf ppf fmt in
  match i with
  | Mov (d, s) -> p "mov %a, %a" pp_reg d pp_mop s
  | Load (d, a) -> p "load %a, %a" pp_reg d pp_addr a
  | Store (a, s) -> p "store %a, %a" pp_addr a pp_mop s
  | Alu (op, d, s) -> p "%s %a, %a" (alu_name op) pp_reg d pp_mop s
  | Imul (d, s) -> p "imul %a, %a" pp_reg d pp_mop s
  | Neg d -> p "neg %a" pp_reg d
  | Not d -> p "not %a" pp_reg d
  | Shift (sh, d, s) -> p "%s %a, %a" (shift_name sh) pp_reg d pp_mop s
  | Div { dst; dividend; divisor; want_rem } ->
      p "%s %a, %a, %a"
        (if want_rem then "rem" else "div")
        pp_reg dst pp_mop dividend pp_mop divisor
  | Set (rel, d, a, b) ->
      p "set.%s %a, %a, %a" (Ir.relop_name rel) pp_reg d pp_mop a pp_mop b
  | Lea_slot (d, s) -> p "lea %a, slot%d" pp_reg d s
  | Lea_global (d, g) -> p "lea %a, &%s" pp_reg d g
  | Call { dst; callee; args } ->
      (match dst with Some d -> p "%a <- " pp_reg d | None -> ());
      p "call %s(%a)" callee
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           pp_mop)
        args

let pp_mterm ppf t =
  let p fmt = Format.fprintf ppf fmt in
  match t with
  | Tret None -> p "ret"
  | Tret (Some op) -> p "ret %a" pp_mop op
  | Tjmp l -> p "jmp L%d" l
  | Tjcc (rel, a, b, l1, l2) ->
      p "j.%s %a, %a ? L%d : L%d" (Ir.relop_name rel) pp_mop a pp_mop b l1 l2

let pp_func ppf f =
  Format.fprintf ppf "mfunc %s (%d params, %d virts):@." f.name f.n_params
    f.next_virt;
  List.iter
    (fun b ->
      Format.fprintf ppf "L%d:@." b.label;
      List.iter (fun i -> Format.fprintf ppf "  %a@." pp_minsn i) b.insns;
      Format.fprintf ppf "  %a@." pp_mterm b.term)
    f.blocks
