(** The machine IR ("LR" in the paper's terminology, Figure 3).

    Register-abstract x86: two-address arithmetic, explicit loads and
    stores, pseudo-instructions for the operations with fixed register
    constraints (division, calls), and fused compare-and-branch
    terminators.  Instruction selection produces it; the register
    allocator replaces virtual registers with physical registers or spill
    slots; {!Emit} expands each instruction into concrete x86.

    Blocks correspond one-to-one to IR blocks and keep their labels — this
    carries basic-block profile counts through to the NOP-insertion pass,
    which is the property the paper's §4 implementation relies on. *)

type reg = Virt of int | Phys of Reg.t [@@deriving eq, ord, show]

type mop = R of reg | I of int32 [@@deriving eq, ord, show]
(** Register-or-immediate operand. *)

type addr =
  | Areg of reg  (** \[reg\] — computed address *)
  | Aslot of int  (** source-level stack slot (local array) *)
  | Aparam of int  (** i-th incoming argument *)
[@@deriving eq, ord, show]

type alu = Aadd | Asub | Aand | Aor | Axor [@@deriving eq, ord, show]
type shift = Sshl | Sshr | Ssar [@@deriving eq, ord, show]

type minsn =
  | Mov of reg * mop
  | Load of reg * addr
  | Store of addr * mop
  | Alu of alu * reg * mop  (** dst := dst op src *)
  | Imul of reg * mop
  | Neg of reg
  | Not of reg
  | Shift of shift * reg * mop  (** count: immediate, or register (via CL) *)
  | Div of { dst : reg; dividend : mop; divisor : mop; want_rem : bool }
      (** signed division pseudo-op; expands to the EAX/EDX/IDIV dance *)
  | Set of Ir.relop * reg * mop * mop  (** dst := (a rel b) as 0/1 *)
  | Lea_slot of reg * int  (** dst := address of slot *)
  | Lea_global of reg * string  (** dst := address of global (relocated) *)
  | Call of { dst : reg option; callee : string; args : mop list }
[@@deriving eq, ord, show]

type mterm =
  | Tret of mop option
  | Tjmp of Ir.label
  | Tjcc of Ir.relop * mop * mop * Ir.label * Ir.label
      (** if (a rel b) goto first else second *)
[@@deriving eq, ord, show]

type block = {
  label : Ir.label;
  mutable insns : minsn list;
  mutable term : mterm;
}

type func = {
  name : string;
  n_params : int;
  mutable blocks : block list;
  slots : Ir.slot list;  (** source-level slots, from the IR function *)
  mutable next_virt : int;  (** virtual register counter *)
}

val defs : minsn -> reg list
(** Registers written by an instruction (virtual or physical). *)

val uses : minsn -> reg list
(** Registers read by an instruction. *)

val term_uses : mterm -> reg list

val successors : mterm -> Ir.label list

val map_regs : (reg -> reg) -> minsn -> minsn
(** Rewrite every register occurrence (used by the allocator to apply its
    assignment). *)

val pp_func : Format.formatter -> func -> unit
