module ISet = Set.Make (Int)
module IMap = Map.Make (Int)

type t = { ins : ISet.t IMap.t; outs : ISet.t IMap.t }

let virts regs =
  List.filter_map (function Mir.Virt v -> Some v | Mir.Phys _ -> None) regs

let virt_uses i = virts (Mir.uses i)
let virt_defs i = virts (Mir.defs i)
let term_virt_uses t = virts (Mir.term_uses t)

(* Block-local gen/kill: [use] is the set of virts read before any write
   in the block; [def] is everything written. *)
let block_use_def (b : Mir.block) =
  let use = ref ISet.empty and def = ref ISet.empty in
  List.iter
    (fun i ->
      List.iter
        (fun v -> if not (ISet.mem v !def) then use := ISet.add v !use)
        (virt_uses i);
      List.iter (fun v -> def := ISet.add v !def) (virt_defs i))
    b.insns;
  List.iter
    (fun v -> if not (ISet.mem v !def) then use := ISet.add v !use)
    (term_virt_uses b.term);
  (!use, !def)

let analyze (f : Mir.func) =
  let use_def =
    List.fold_left
      (fun m b -> IMap.add b.Mir.label (block_use_def b) m)
      IMap.empty f.blocks
  in
  let succs =
    List.fold_left
      (fun m b -> IMap.add b.Mir.label (Mir.successors b.Mir.term) m)
      IMap.empty f.blocks
  in
  let ins = ref IMap.empty and outs = ref IMap.empty in
  List.iter
    (fun b ->
      ins := IMap.add b.Mir.label ISet.empty !ins;
      outs := IMap.add b.Mir.label ISet.empty !outs)
    f.blocks;
  let changed = ref true in
  while !changed do
    changed := false;
    (* Reverse layout order converges quickly for reducible CFGs. *)
    List.iter
      (fun b ->
        let l = b.Mir.label in
        let out =
          List.fold_left
            (fun acc s -> ISet.union acc (IMap.find s !ins))
            ISet.empty (IMap.find l succs)
        in
        let use, def = IMap.find l use_def in
        let inn = ISet.union use (ISet.diff out def) in
        if not (ISet.equal out (IMap.find l !outs)) then begin
          outs := IMap.add l out !outs;
          changed := true
        end;
        if not (ISet.equal inn (IMap.find l !ins)) then begin
          ins := IMap.add l inn !ins;
          changed := true
        end)
      (List.rev f.blocks)
  done;
  { ins = !ins; outs = !outs }

let live_in t l = IMap.find l t.ins
let live_out t l = IMap.find l t.outs
