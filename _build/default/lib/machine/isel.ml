let mop_of_operand : Ir.operand -> Mir.mop = function
  | Ir.Temp t -> Mir.R (Mir.Virt t)
  | Ir.Const c -> Mir.I c

let alu_of_binop : Ir.binop -> Mir.alu option = function
  | Ir.Add -> Some Mir.Aadd
  | Ir.Sub -> Some Mir.Asub
  | Ir.And -> Some Mir.Aand
  | Ir.Or -> Some Mir.Aor
  | Ir.Xor -> Some Mir.Axor
  | _ -> None

let shift_of_binop : Ir.binop -> Mir.shift option = function
  | Ir.Shl -> Some Mir.Sshl
  | Ir.Shr -> Some Mir.Sshr
  | Ir.Sar -> Some Mir.Ssar
  | _ -> None

type ctx = { mutable next_virt : int }

let fresh ctx =
  let v = ctx.next_virt in
  ctx.next_virt <- v + 1;
  Mir.Virt v

(* Lower [dst := a op b] for two-address ALU-style ops.  The destination
   is initialized from [a] first, so when [b] names the same virtual
   register as [dst] we must go through a scratch virtual register. *)
let two_address ctx ~dst ~a ~b ~(mk : Mir.reg -> Mir.mop -> Mir.minsn) =
  let d = Mir.Virt dst in
  let b_mop = mop_of_operand b in
  let conflict =
    match b with Ir.Temp t -> t = dst | Ir.Const _ -> false
  in
  if conflict then begin
    let tmp = fresh ctx in
    [ Mir.Mov (tmp, mop_of_operand a); mk tmp b_mop; Mir.Mov (d, Mir.R tmp) ]
  end
  else [ Mir.Mov (d, mop_of_operand a); mk d b_mop ]

let instr ctx (i : Ir.instr) : Mir.minsn list =
  match i with
  | Ir.Bin (op, dst, a, b) -> (
      match (alu_of_binop op, shift_of_binop op) with
      | Some alu, _ ->
          two_address ctx ~dst ~a ~b ~mk:(fun d s -> Mir.Alu (alu, d, s))
      | None, Some sh ->
          two_address ctx ~dst ~a ~b ~mk:(fun d s -> Mir.Shift (sh, d, s))
      | None, None -> (
          match op with
          | Ir.Mul ->
              two_address ctx ~dst ~a ~b ~mk:(fun d s -> Mir.Imul (d, s))
          | Ir.Div | Ir.Rem ->
              [
                Mir.Div
                  {
                    dst = Mir.Virt dst;
                    dividend = mop_of_operand a;
                    divisor = mop_of_operand b;
                    want_rem = (op = Ir.Rem);
                  };
              ]
          | _ -> assert false))
  | Ir.Neg (dst, a) -> [ Mir.Mov (Mir.Virt dst, mop_of_operand a); Mir.Neg (Mir.Virt dst) ]
  | Ir.Not (dst, a) -> [ Mir.Mov (Mir.Virt dst, mop_of_operand a); Mir.Not (Mir.Virt dst) ]
  | Ir.Cmp (rel, dst, a, b) ->
      [ Mir.Set (rel, Mir.Virt dst, mop_of_operand a, mop_of_operand b) ]
  | Ir.Copy (dst, a) -> [ Mir.Mov (Mir.Virt dst, mop_of_operand a) ]
  | Ir.Load (dst, addr) -> (
      match addr with
      | Ir.Temp t -> [ Mir.Load (Mir.Virt dst, Mir.Areg (Mir.Virt t)) ]
      | Ir.Const c ->
          let tmp = fresh ctx in
          [ Mir.Mov (tmp, Mir.I c); Mir.Load (Mir.Virt dst, Mir.Areg tmp) ])
  | Ir.Store (addr, v) -> (
      match addr with
      | Ir.Temp t -> [ Mir.Store (Mir.Areg (Mir.Virt t), mop_of_operand v) ]
      | Ir.Const c ->
          let tmp = fresh ctx in
          [ Mir.Mov (tmp, Mir.I c); Mir.Store (Mir.Areg tmp, mop_of_operand v) ])
  | Ir.Global_addr (dst, g) -> [ Mir.Lea_global (Mir.Virt dst, g) ]
  | Ir.Stack_addr (dst, s) -> [ Mir.Lea_slot (Mir.Virt dst, s) ]
  | Ir.Call (dst, callee, args) ->
      [
        Mir.Call
          {
            dst = Option.map (fun t -> Mir.Virt t) dst;
            callee;
            args = List.map mop_of_operand args;
          };
      ]

let term (t : Ir.terminator) : Mir.mterm =
  match t with
  | Ir.Ret v -> Mir.Tret (Option.map mop_of_operand v)
  | Ir.Jmp l -> Mir.Tjmp l
  | Ir.Cbr (rel, a, b, l1, l2) ->
      Mir.Tjcc (rel, mop_of_operand a, mop_of_operand b, l1, l2)
  | Ir.Cbr_nz (a, l1, l2) -> Mir.Tjcc (Ir.Ne, mop_of_operand a, Mir.I 0l, l1, l2)

let func (f : Ir.func) : Mir.func =
  let ctx = { next_virt = f.next_temp } in
  let blocks =
    List.map
      (fun (b : Ir.block) ->
        {
          Mir.label = b.label;
          insns = List.concat_map (instr ctx) b.instrs;
          term = term b.term;
        })
      f.blocks
  in
  (* Parameters materialize at the top of the entry block. *)
  let param_loads =
    List.mapi (fun i t -> Mir.Load (Mir.Virt t, Mir.Aparam i)) f.params
  in
  (match blocks with
  | entry :: _ -> entry.Mir.insns <- param_loads @ entry.Mir.insns
  | [] -> ());
  {
    Mir.name = f.name;
    n_params = List.length f.params;
    blocks;
    slots = f.slots;
    next_virt = ctx.next_virt;
  }

let modul (m : Ir.modul) = List.map func m.funcs
