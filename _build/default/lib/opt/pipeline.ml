type level = O0 | O1 | O2

let level_of_string = function
  | "O0" | "o0" | "0" -> Some O0
  | "O1" | "o1" | "1" -> Some O1
  | "O2" | "o2" | "2" -> Some O2
  | _ -> None

let level_name = function O0 -> "O0" | O1 -> "O1" | O2 -> "O2"

let round (f : Ir.func) =
  (* Order matters mildly: folding exposes copies, copies expose common
     subexpressions, CSE exposes dead code, and a cleaner CFG feeds the
     next round.  Each returns whether it changed anything. *)
  let a = Simplify_cfg.run f in
  let b = Constfold.run f in
  let c = Copyprop.run f in
  let d = Cse.run f in
  let e = Dce.run f in
  a || b || c || d || e

(* Fixpoint bound: optimization must terminate even if a pass pair were to
   oscillate; ten rounds is far beyond what real inputs need. *)
let max_rounds = 10

let optimize_func ?(level = O2) (f : Ir.func) =
  match level with
  | O0 -> ()
  | O1 -> ignore (round f)
  | O2 ->
      let n = ref 0 in
      while round f && !n < max_rounds do
        incr n
      done

let optimize ?(level = O2) ?(check = true) (m : Ir.modul) =
  List.iter (optimize_func ~level) m.funcs;
  if check then Verify.check_exn m;
  m
