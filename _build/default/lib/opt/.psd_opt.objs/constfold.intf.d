lib/opt/constfold.mli: Ir
