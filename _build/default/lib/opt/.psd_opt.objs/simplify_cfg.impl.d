lib/opt/simplify_cfg.ml: Cfg Ir List
