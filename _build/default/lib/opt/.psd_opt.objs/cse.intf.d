lib/opt/cse.mli: Ir
