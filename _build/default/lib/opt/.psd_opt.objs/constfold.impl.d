lib/opt/constfold.ml: Int32 Ir List
