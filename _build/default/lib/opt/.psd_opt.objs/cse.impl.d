lib/opt/cse.ml: Hashtbl Ir List
