lib/opt/pipeline.ml: Constfold Copyprop Cse Dce Ir List Simplify_cfg Verify
