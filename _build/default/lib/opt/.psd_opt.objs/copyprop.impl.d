lib/opt/copyprop.ml: Hashtbl Ir List
