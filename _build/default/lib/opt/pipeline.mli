(** The optimization pass manager.

    Runs the standard pass sequence (CFG simplification, constant folding,
    copy propagation, CSE, DCE) to a fixpoint, per function, in the order
    a conventional [-O2] pipeline would.  The module is verified after
    each round when [check] is set. *)

type level = O0 | O1 | O2
(** [O0]: no optimization.  [O1]: one round.  [O2]: iterate to fixpoint
    (bounded). *)

val level_of_string : string -> level option
val level_name : level -> string

val optimize_func : ?level:level -> Ir.func -> unit
(** Optimize one function in place (default [O2]). *)

val optimize : ?level:level -> ?check:bool -> Ir.modul -> Ir.modul
(** Optimize every function in place and return the module.  With
    [check] (default [true]), re-verifies the module after optimizing and
    raises [Failure] if a pass broke structural invariants. *)
