type stats = { insns_seen : int; nops_inserted : int; bytes_added : int }

let zero = { insns_seen = 0; nops_inserted = 0; bytes_added = 0 }

let add a b =
  {
    insns_seen = a.insns_seen + b.insns_seen;
    nops_inserted = a.nops_inserted + b.nops_inserted;
    bytes_added = a.bytes_added + b.bytes_added;
  }

(* Is this item an instruction for the purposes of Algorithm 1?  Labels
   emit no bytes; everything else is a machine instruction. *)
let is_insn = function Asm.Label _ -> false | _ -> true

(* Labels for the jumped-over dummy blocks of the §6 extension.  Real
   block labels come from the IR builder and stay small; this range
   cannot collide. *)
let shift_label_base = 1_000_000

(* Basic-block shifting (paper §6): prepend "jmp past; <sled>; past:" to
   the function, displacing everything in it — including its first
   instructions, which plain NOP insertion barely moves. *)
let shift_function ~rng ~candidates (f : Asm.func) =
  let target = 1 + Rng.int rng 15 in
  let rec sled acc len =
    if len >= target then acc
    else
      let nop = Rng.choose rng candidates in
      sled (Asm.Ins nop :: acc) (len + Encode.length nop)
  in
  let sled_items = sled [] 0 in
  let bytes =
    List.fold_left
      (fun acc item -> acc + Asm.item_size item)
      0 sled_items
  in
  let skip = shift_label_base in
  ( {
      f with
      Asm.items =
        (Asm.Jmp_sym skip :: sled_items) @ (Asm.Label skip :: f.Asm.items);
    },
    5 + bytes (* the jmp and the sled *) )

let run_with_xmax ~config ~profile ~rng ~xmax (f : Asm.func) =
  let candidates =
    if config.Config.use_xchg then Nops.with_xchg else Nops.default
  in
  let f, shift_bytes =
    if config.Config.bb_shift then shift_function ~rng ~candidates f
    else (f, 0)
  in
  let prob_of_block label =
    match config.Config.strategy with
    | Config.Off -> 0.0
    | Config.Uniform p -> p
    | Config.Profiled { pmin; pmax; shape; scope } ->
        let count =
          match label with
          | Some l -> Profile.block_count profile ~func:f.Asm.name l
          | None -> 0L
        in
        let max_count =
          match scope with
          | `Program -> xmax
          | `Function -> Profile.max_count_func profile f.Asm.name
        in
        Heuristic.pnop shape ~pmin ~pmax ~count ~max_count
  in
  let stats = ref { zero with bytes_added = shift_bytes } in
  let diversified =
    Asm.map_insns
      (fun label item ->
        if not (is_insn item) then [ item ]
        else begin
          stats := add !stats { zero with insns_seen = 1 };
          let p = prob_of_block label in
          (* Two sources of randomness (§3): whether to insert, and which
             candidate to insert. *)
          if Rng.bernoulli rng p then begin
            let nop = Rng.choose rng candidates in
            stats :=
              add !stats
                {
                  insns_seen = 0;
                  nops_inserted = 1;
                  bytes_added = Encode.length nop;
                };
            [ Asm.Ins nop; item ]
          end
          else [ item ]
        end)
      f
  in
  (diversified, !stats)

let run ~config ~profile ~rng f =
  match config.Config.strategy with
  | Config.Off -> (f, zero)
  | _ ->
      run_with_xmax ~config ~profile ~rng ~xmax:(Profile.max_count profile) f

let run_program ~config ~profile ~rng funcs =
  match config.Config.strategy with
  | Config.Off -> (funcs, zero)
  | _ ->
      let xmax = Profile.max_count profile in
      let total = ref zero in
      let out =
        List.map
          (fun f ->
            let f', s = run_with_xmax ~config ~profile ~rng ~xmax f in
            total := add !total s;
            f')
          funcs
      in
      (out, !total)
