(** The end-to-end diversifying compiler.

    Ties the whole system together the way the paper's modified LLVM
    does: MiniC source → IR → [-O2] optimization → instruction selection →
    register allocation → symbolic assembly → {b NOP insertion} → layout
    and linking against the fixed runtime.

    The profiling round-trip mirrors §3.1: compile once, run the program
    on a training input under the instrumented (reference) interpreter,
    and feed the collected block counts to subsequent diversified
    builds. *)

type compiled = {
  name : string;  (** program name (seed label and reporting key) *)
  modul : Ir.modul;  (** the optimized IR *)
  asm : Asm.func list;  (** undiversified user functions *)
  main_arity : int;
}

val compile : ?opt:Pipeline.level -> name:string -> string -> compiled
(** Compile MiniC source (default [-O2]).  Raises [Failure] on frontend
    errors or if [main] is missing. *)

val train : compiled -> args:int32 list -> Profile.t
(** One profiling run on a training input. *)

val train_many : compiled -> args_list:int32 list list -> Profile.t
(** Accumulated profile over several training inputs. *)

val link_baseline : compiled -> Link.image
(** The undiversified binary. *)

val diversify :
  compiled ->
  config:Config.t ->
  profile:Profile.t ->
  version:int ->
  Link.image * Nop_insert.stats
(** Build one diversified version.  The RNG stream is derived from
    (config seed, program name, config name, version), so the same triple
    always reproduces the same binary and distinct versions are
    independent. *)

val population :
  compiled ->
  config:Config.t ->
  profile:Profile.t ->
  n:int ->
  Link.image list
(** [n] independent versions (the paper builds 25 for Tables 2 and 3). *)

val run_ir : compiled -> args:int32 list -> Interp.result
(** Execute the optimized IR under the reference interpreter. *)

val run_image : ?fuel:int64 -> Link.image -> args:int32 list -> Sim.result
(** Execute a linked binary under the CPU simulator. *)
