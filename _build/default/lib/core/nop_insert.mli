(** The NOP-insertion pass — Algorithm 1 of the paper, extended with the
    profile-guided probability of §3.1.

    Runs over the symbolic assembly stream (the lowered representation,
    after all optimizations and register allocation, immediately before
    layout — the stage the paper selects in §4).  For every instruction a
    Bernoulli trial with the current block's pNOP decides whether to
    prepend a NOP; on success one of the candidate NOPs (Table 1) is
    picked uniformly.  Two independent randomness sources, exactly as in
    §3.

    Block labels in the stream carry the profile attribution: the
    probability changes at each [Asm.Label] marker. *)

type stats = {
  insns_seen : int;  (** instructions eligible for a preceding NOP *)
  nops_inserted : int;
  bytes_added : int;
}

val shift_label_base : int
(** Labels at or above this value mark the jumped-over dummy blocks the
    §6 basic-block-shifting extension inserts; they never collide with
    IR block labels. *)

val run :
  config:Config.t ->
  profile:Profile.t ->
  rng:Rng.t ->
  Asm.func ->
  Asm.func * stats
(** Diversify one function.  With [Config.Off] the function is returned
    unchanged.  The profile is consulted only for [Profiled] strategies;
    blocks absent from it count as cold ([pmax]). *)

val run_program :
  config:Config.t ->
  profile:Profile.t ->
  rng:Rng.t ->
  Asm.func list ->
  Asm.func list * stats
(** Diversify all user functions with a shared program-wide [x_max] (the
    paper normalizes by the maximum execution count in the program). *)
