lib/core/heuristic.mli:
