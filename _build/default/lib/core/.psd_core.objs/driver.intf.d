lib/core/driver.mli: Asm Config Interp Ir Link Nop_insert Pipeline Profile Sim
