lib/core/driver.ml: Asm Config Emit Interp Ir Link List Minic Nop_insert Pipeline Profile Rng Sim
