lib/core/config.ml: Heuristic Printf
