lib/core/heuristic.ml: Float Int64 Printf
