lib/core/nop_insert.mli: Asm Config Profile Rng
