lib/core/nop_insert.ml: Asm Config Encode Heuristic List Nops Profile Rng
