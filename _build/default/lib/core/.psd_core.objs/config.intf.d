lib/core/config.mli: Heuristic
