type compiled = {
  name : string;
  modul : Ir.modul;
  asm : Asm.func list;
  main_arity : int;
}

let compile ?(opt = Pipeline.O2) ~name src =
  let modul = Minic.compile_exn src in
  let modul = Pipeline.optimize ~level:opt modul in
  let main =
    match Ir.find_func modul "main" with
    | f -> f
    | exception Not_found -> failwith ("Driver.compile: " ^ name ^ " has no main")
  in
  let asm = List.map Emit.compile_func modul.funcs in
  { name; modul; asm; main_arity = List.length main.params }

let train c ~args = Profile.collect c.modul ~entry:"main" ~args
let train_many c ~args_list = Profile.collect_many c.modul ~entry:"main" ~args_list

let link_baseline c =
  Link.link ~funcs:c.asm ~globals:c.modul.globals ~main_arity:c.main_arity

let diversify c ~config ~profile ~version =
  let rng =
    Rng.of_labels config.Config.seed
      [ c.name; Config.name config; string_of_int version ]
  in
  let funcs, stats = Nop_insert.run_program ~config ~profile ~rng c.asm in
  ( Link.link ~funcs ~globals:c.modul.globals ~main_arity:c.main_arity,
    stats )

let population c ~config ~profile ~n =
  List.init n (fun version ->
      fst (diversify c ~config ~profile ~version))

let run_ir c ~args = Interp.run c.modul ~entry:"main" ~args
let run_image ?fuel image ~args = Sim.run ?fuel image ~args
