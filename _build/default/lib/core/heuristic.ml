type shape = Linear | Logarithmic

let check_range ~pmin ~pmax =
  if pmin < 0.0 || pmax > 1.0 || pmin > pmax then
    invalid_arg
      (Printf.sprintf "Heuristic.pnop: invalid range [%g, %g]" pmin pmax)

let pnop shape ~pmin ~pmax ~count ~max_count =
  check_range ~pmin ~pmax;
  if Int64.compare max_count 0L <= 0 then pmax
  else
    let x = Int64.to_float (max 0L count) in
    let xmax = Int64.to_float max_count in
    let fraction =
      match shape with
      | Linear -> x /. xmax
      | Logarithmic -> log (1.0 +. x) /. log (1.0 +. xmax)
    in
    let p = pmax -. ((pmax -. pmin) *. fraction) in
    Float.min pmax (Float.max pmin p)

let paper_astar_example () =
  pnop Logarithmic ~pmin:0.10 ~pmax:0.50 ~count:117_635L
    ~max_count:2_000_000_000L
