(** The per-block NOP-insertion probability (paper §3.1).

    Hot blocks get low probabilities, cold blocks high ones.  Two
    interpolation shapes between [p_max] (coldest) and [p_min] (hottest):

    {ul
    {- {b linear}:
       [p(x) = pmax - (pmax - pmin) * x / xmax].  Execution counts grow
       multiplicatively with loop nesting, so a linear map polarizes
       almost every block toward [p_max];}
    {- {b logarithmic} (the paper's choice):
       [p(x) = pmax - (pmax - pmin) * log(1+x) / log(1+xmax)], which
       spreads intermediate counts across the whole interval.}}

    Blocks with no profile data (count 0) get [p_max]: no evidence of heat
    means free to diversify. *)

type shape = Linear | Logarithmic

val pnop :
  shape -> pmin:float -> pmax:float -> count:int64 -> max_count:int64 -> float
(** Probabilities are in [0;1].  [max_count <= 0] (no profile at all)
    yields [pmax].  The result is clamped to [pmin;pmax] against rounding
    slop.  Raises [Invalid_argument] if [pmin > pmax] or either is outside
    [0;1]. *)

val paper_astar_example : unit -> float
(** The worked example from §3.1: range 10–50%, count 117,635 of a 2
    billion maximum, log heuristic — approximately 30%.  Exercised by the
    test suite against the paper's arithmetic. *)
