lib/link/link.ml: Asm Bytes Char Fun Hashtbl Int32 Ir Libc List Marshal Printf String
