lib/link/link.mli: Asm Ir
