lib/link/libc.ml: Asm Cond Insn Int32 List Printf Reg
