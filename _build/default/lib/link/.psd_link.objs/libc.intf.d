lib/link/libc.mli: Asm
