(** The runtime library, as fixed machine code.

    These functions play the role of the C library and crt0 in the paper's
    binaries: they are linked into every program, are {e never}
    diversified, and are placed at fixed offsets at the front of the
    [.text] section.  The paper attributes the ~40 gadgets that survive in
    half of all diversified versions exactly to such undiversified library
    objects; keeping ours fixed reproduces that floor.

    Syscall convention (executed via [INT 0x80], handled by the
    simulator): EAX=1 — exit with status EBX; EAX=4 — write the low byte
    of EBX to stdout. *)

val start_symbol : string
(** "_start": the process entry point.  Loads [main]'s arguments from the
    [__argv] global array (populated by the simulator before execution),
    calls [main], and exits with its return value. *)

val argv_symbol : string
(** "__argv": the global array _start reads arguments from. *)

val argv_words : int
(** Capacity of [__argv] (maximum supported arity of [main]). *)

val start : main:string -> main_arity:int -> Asm.func
(** Build the crt0 entry stub for a program whose [main] takes
    [main_arity] arguments.  Raises [Invalid_argument] if the arity
    exceeds {!argv_words}. *)

val funcs : Asm.func list
(** The library functions, in their fixed link order: [print_int],
    [put_char], [exit], and the word-wise utility routines ([wmemcpy],
    [wmemset], [wmemcmp], [wsum], [labs_], [lmin], [lmax]) that real
    binaries drag in and that contribute the surviving-gadget floor. *)

val names : string list
(** Names of everything provided (including the entry stub's symbol). *)
