open Insn
open Reg

let start_symbol = "_start"
let argv_symbol = "__argv"
let argv_words = 8

let ins i = Asm.Ins i
let esp_mem disp = Insn.mem_base ~disp ESP
let ebp_mem disp = Insn.mem_base ~disp EBP

(* crt0: load main's arguments from __argv (left to right in memory,
   pushed right to left), call main, exit(main's result). *)
let start ~main ~main_arity =
  if main_arity > argv_words then
    invalid_arg
      (Printf.sprintf "Libc.start: main takes %d args (max %d)" main_arity
         argv_words);
  let arg_pushes =
    List.concat
      (List.init main_arity (fun k ->
           (* Push argv[arity-1-k]. *)
           let i = main_arity - 1 - k in
           [
             Asm.Mov_sym (EAX, argv_symbol);
             ins (Mov_r_rm (EDX, Mem (mem_base ~disp:(Int32.of_int (4 * i)) EAX)));
             ins (Push_r EDX);
           ]))
  in
  {
    Asm.name = start_symbol;
    items =
      (Asm.Label 0 :: arg_pushes)
      @ [ Asm.Call_sym main ]
      @ [
          ins (Mov_rm_r (Reg EBX, EAX));
          ins (Mov_r_imm (EAX, 1l));
          ins (Int 0x80);
          ins Hlt (* unreachable: the exit syscall never returns *);
        ];
  }

(* print_int(v): decimal representation of a signed 32-bit value, then a
   newline.  Digits are produced by repeated signed division so INT_MIN
   needs no special case; they are pushed and popped to reverse order. *)
let print_int =
  let l_loop = 1 and l_store = 2 and l_emit = 3 in
  {
    Asm.name = "print_int";
    items =
      [
        Asm.Label 0;
        ins (Push_r EBP);
        ins (Mov_rm_r (Reg EBP, ESP));
        ins (Push_r EBX);
        ins (Push_r ESI);
        ins (Mov_r_rm (EAX, Mem (ebp_mem 8l)));
        ins (Mov_r_imm (ESI, 0l));
        ins (Alu_rm_imm (Cmp, Reg EAX, 0l));
        Asm.Jcc_sym (Cond.GE, l_loop);
        (* negative: emit '-' *)
        ins (Push_r EAX);
        ins (Mov_r_imm (EAX, 4l));
        ins (Mov_r_imm (EBX, 45l));
        ins (Int 0x80);
        ins (Pop_r EAX);
        Asm.Label l_loop;
        ins Cdq;
        ins (Mov_r_imm (ECX, 10l));
        ins (Idiv (Reg ECX));
        (* digit = |remainder| *)
        ins (Alu_rm_imm (Cmp, Reg EDX, 0l));
        Asm.Jcc_sym (Cond.GE, l_store);
        ins (Neg (Reg EDX));
        Asm.Label l_store;
        ins (Alu_rm_imm (Add, Reg EDX, 48l));
        ins (Push_r EDX);
        ins (Inc_r ESI);
        ins (Test_rm_r (Reg EAX, EAX));
        Asm.Jcc_sym (Cond.NE, l_loop);
        Asm.Label l_emit;
        ins (Pop_r EBX);
        ins (Mov_r_imm (EAX, 4l));
        ins (Int 0x80);
        ins (Dec_r ESI);
        ins (Test_rm_r (Reg ESI, ESI));
        Asm.Jcc_sym (Cond.NE, l_emit);
        (* newline *)
        ins (Mov_r_imm (EAX, 4l));
        ins (Mov_r_imm (EBX, 10l));
        ins (Int 0x80);
        ins (Mov_r_imm (EAX, 0l));
        ins (Pop_r ESI);
        ins (Pop_r EBX);
        ins (Pop_r EBP);
        ins Ret;
      ];
  }

(* put_char(c): write one byte.  EBX is callee-saved, so preserve it. *)
let put_char =
  {
    Asm.name = "put_char";
    items =
      [
        Asm.Label 0;
        ins (Push_r EBX);
        ins (Mov_r_rm (EBX, Mem (esp_mem 8l)));
        ins (Mov_r_imm (EAX, 4l));
        ins (Int 0x80);
        ins (Mov_r_imm (EAX, 0l));
        ins (Pop_r EBX);
        ins Ret;
      ];
  }

let exit_ =
  {
    Asm.name = "exit";
    items =
      [
        Asm.Label 0;
        ins (Mov_r_rm (EBX, Mem (esp_mem 4l)));
        ins (Mov_r_imm (EAX, 1l));
        ins (Int 0x80);
        ins Hlt;
      ];
  }

(* ------------------------------------------------------------------ *)
(* Utility routines.  Real toolchains link in a pile of library code the
   program may never call; these give our binaries the same fixed,
   undiversified code mass (word-wise because the machine language is
   word-oriented). *)

(* wmemcpy(dst, src, n): copy n words. *)
let wmemcpy =
  let l_loop = 1 and l_done = 2 in
  {
    Asm.name = "wmemcpy";
    items =
      [
        Asm.Label 0;
        ins (Push_r EBX);
        ins (Push_r ESI);
        ins (Push_r EDI);
        ins (Mov_r_rm (EDI, Mem (esp_mem 16l)));
        ins (Mov_r_rm (ESI, Mem (esp_mem 20l)));
        ins (Mov_r_rm (ECX, Mem (esp_mem 24l)));
        Asm.Label l_loop;
        ins (Test_rm_r (Reg ECX, ECX));
        Asm.Jcc_sym (Cond.E, l_done);
        ins (Mov_r_rm (EAX, Mem (mem_base ESI)));
        ins (Mov_rm_r (Mem (mem_base EDI), EAX));
        ins (Alu_rm_imm (Add, Reg ESI, 4l));
        ins (Alu_rm_imm (Add, Reg EDI, 4l));
        ins (Dec_r ECX);
        Asm.Jmp_sym l_loop;
        Asm.Label l_done;
        ins (Mov_r_rm (EAX, Mem (esp_mem 16l)));
        ins (Pop_r EDI);
        ins (Pop_r ESI);
        ins (Pop_r EBX);
        ins Ret;
      ];
  }

(* wmemset(dst, v, n): fill n words. *)
let wmemset =
  let l_loop = 1 and l_done = 2 in
  {
    Asm.name = "wmemset";
    items =
      [
        Asm.Label 0;
        ins (Push_r EDI);
        ins (Mov_r_rm (EDI, Mem (esp_mem 8l)));
        ins (Mov_r_rm (EDX, Mem (esp_mem 12l)));
        ins (Mov_r_rm (ECX, Mem (esp_mem 16l)));
        Asm.Label l_loop;
        ins (Test_rm_r (Reg ECX, ECX));
        Asm.Jcc_sym (Cond.E, l_done);
        ins (Mov_rm_r (Mem (mem_base EDI), EDX));
        ins (Alu_rm_imm (Add, Reg EDI, 4l));
        ins (Dec_r ECX);
        Asm.Jmp_sym l_loop;
        Asm.Label l_done;
        ins (Mov_r_rm (EAX, Mem (esp_mem 8l)));
        ins (Pop_r EDI);
        ins Ret;
      ];
  }

(* wmemcmp(a, b, n): first difference as a-b, else 0. *)
let wmemcmp =
  let l_loop = 1 and l_done = 2 and l_diff = 3 in
  {
    Asm.name = "wmemcmp";
    items =
      [
        Asm.Label 0;
        ins (Push_r ESI);
        ins (Push_r EDI);
        ins (Mov_r_rm (ESI, Mem (esp_mem 12l)));
        ins (Mov_r_rm (EDI, Mem (esp_mem 16l)));
        ins (Mov_r_rm (ECX, Mem (esp_mem 20l)));
        Asm.Label l_loop;
        ins (Test_rm_r (Reg ECX, ECX));
        Asm.Jcc_sym (Cond.E, l_done);
        ins (Mov_r_rm (EAX, Mem (mem_base ESI)));
        ins (Mov_r_rm (EDX, Mem (mem_base EDI)));
        ins (Alu_rm_r (Cmp, Reg EAX, EDX));
        Asm.Jcc_sym (Cond.NE, l_diff);
        ins (Alu_rm_imm (Add, Reg ESI, 4l));
        ins (Alu_rm_imm (Add, Reg EDI, 4l));
        ins (Dec_r ECX);
        Asm.Jmp_sym l_loop;
        Asm.Label l_diff;
        ins (Alu_rm_r (Sub, Reg EAX, EDX));
        ins (Pop_r EDI);
        ins (Pop_r ESI);
        ins Ret;
        Asm.Label l_done;
        ins (Mov_r_imm (EAX, 0l));
        ins (Pop_r EDI);
        ins (Pop_r ESI);
        ins Ret;
      ];
  }

(* wsum(p, n): sum of n words. *)
let wsum =
  let l_loop = 1 and l_done = 2 in
  {
    Asm.name = "wsum";
    items =
      [
        Asm.Label 0;
        ins (Push_r ESI);
        ins (Mov_r_rm (ESI, Mem (esp_mem 8l)));
        ins (Mov_r_rm (ECX, Mem (esp_mem 12l)));
        ins (Mov_r_imm (EAX, 0l));
        Asm.Label l_loop;
        ins (Test_rm_r (Reg ECX, ECX));
        Asm.Jcc_sym (Cond.E, l_done);
        ins (Mov_r_rm (EDX, Mem (mem_base ESI)));
        ins (Alu_rm_r (Add, Reg EAX, EDX));
        ins (Alu_rm_imm (Add, Reg ESI, 4l));
        ins (Dec_r ECX);
        Asm.Jmp_sym l_loop;
        Asm.Label l_done;
        ins (Pop_r ESI);
        ins Ret;
      ];
  }

(* labs_(v), lmin(a,b), lmax(a,b): small leaf routines. *)
let labs_ =
  let l_done = 1 in
  {
    Asm.name = "labs_";
    items =
      [
        Asm.Label 0;
        ins (Mov_r_rm (EAX, Mem (esp_mem 4l)));
        ins (Alu_rm_imm (Cmp, Reg EAX, 0l));
        Asm.Jcc_sym (Cond.GE, l_done);
        ins (Neg (Reg EAX));
        Asm.Label l_done;
        ins Ret;
      ];
  }

let lmin =
  let l_done = 1 in
  {
    Asm.name = "lmin";
    items =
      [
        Asm.Label 0;
        ins (Mov_r_rm (EAX, Mem (esp_mem 4l)));
        ins (Mov_r_rm (EDX, Mem (esp_mem 8l)));
        ins (Alu_rm_r (Cmp, Reg EAX, EDX));
        Asm.Jcc_sym (Cond.LE, l_done);
        ins (Mov_rm_r (Reg EAX, EDX));
        Asm.Label l_done;
        ins Ret;
      ];
  }

let lmax =
  let l_done = 1 in
  {
    Asm.name = "lmax";
    items =
      [
        Asm.Label 0;
        ins (Mov_r_rm (EAX, Mem (esp_mem 4l)));
        ins (Mov_r_rm (EDX, Mem (esp_mem 8l)));
        ins (Alu_rm_r (Cmp, Reg EAX, EDX));
        Asm.Jcc_sym (Cond.GE, l_done);
        ins (Mov_rm_r (Reg EAX, EDX));
        Asm.Label l_done;
        ins Ret;
      ];
  }

let funcs =
  [ print_int; put_char; exit_; wmemcpy; wmemset; wmemcmp; wsum; labs_; lmin; lmax ]

let names = start_symbol :: List.map (fun (f : Asm.func) -> f.name) funcs
