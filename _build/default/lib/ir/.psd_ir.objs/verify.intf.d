lib/ir/verify.pp.mli: Ir
