lib/ir/cfg.pp.ml: Int Ir List Map Option Set
