lib/ir/interp.pp.ml: Array Buffer Char Format Fun Hashtbl Int32 Int64 Ir List Option String
