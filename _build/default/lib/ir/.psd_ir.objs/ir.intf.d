lib/ir/ir.pp.mli: Format Ppx_deriving_runtime
