lib/ir/cfg.pp.mli: Ir
