lib/ir/interp.pp.mli: Hashtbl Ir
