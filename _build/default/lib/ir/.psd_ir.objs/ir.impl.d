lib/ir/ir.pp.ml: Format Int32 List Ppx_deriving_runtime String
