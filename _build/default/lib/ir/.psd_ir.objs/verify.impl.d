lib/ir/verify.pp.ml: Array Format Hashtbl Ir List Printf String
