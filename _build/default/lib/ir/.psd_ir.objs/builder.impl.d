lib/ir/builder.pp.ml: Fun Ir List Printf
