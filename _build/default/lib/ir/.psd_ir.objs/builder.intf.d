lib/ir/builder.pp.mli: Ir
