(** Structural well-formedness checks for IR modules.

    Run after the frontend and after each optimization pass (the pass
    manager does this in debug mode); catching a malformed module here is
    vastly cheaper than debugging the code generator downstream. *)

type error = { func : string; message : string }

val check_func : known_funcs:(string * int) list -> Ir.func -> error list
(** [known_funcs] maps every callable name (module functions and builtins)
    to its arity.  Checks performed: duplicate block labels; terminator
    targets exist; temps used before any definition (conservative:
    a temp must be a parameter or defined somewhere in the function);
    calls have known callees with matching arity; stack slots referenced
    exist; slot sizes positive. *)

val check_modul : Ir.modul -> error list
(** Checks every function, plus global-name uniqueness, positive global
    sizes, initializer sizes, and [Global_addr] referring to declared
    globals.  Builtin arities are taken from {!builtin_arity}. *)

val builtin_arity : (string * int) list
(** The runtime builtins every program may call: [print_int/1],
    [put_char/1], [exit/1]. *)

val check_exn : Ir.modul -> unit
(** Raise [Failure] with a readable message if {!check_modul} reports
    anything. *)
