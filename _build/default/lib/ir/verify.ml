type error = { func : string; message : string }

let builtin_arity = [ ("print_int", 1); ("put_char", 1); ("exit", 1) ]

let err func fmt = Format.kasprintf (fun message -> { func; message }) fmt

let check_func ~known_funcs (f : Ir.func) =
  let errors = ref [] in
  let add e = errors := e :: !errors in
  (* Duplicate labels. *)
  let labels = List.map (fun b -> b.Ir.label) f.blocks in
  let rec dups = function
    | [] -> ()
    | l :: rest ->
        if List.mem l rest then add (err f.name "duplicate block label L%d" l);
        dups rest
  in
  dups labels;
  if f.blocks = [] then add (err f.name "function has no blocks");
  (* Terminator targets. *)
  List.iter
    (fun b ->
      List.iter
        (fun s ->
          if not (List.mem s labels) then
            add (err f.name "L%d branches to undefined label L%d" b.Ir.label s))
        (Ir.successors b.Ir.term))
    f.blocks;
  (* Defined temps. *)
  let defined = Hashtbl.create 64 in
  List.iter (fun t -> Hashtbl.replace defined t ()) f.params;
  List.iter
    (fun b ->
      List.iter
        (fun i ->
          match Ir.def_temp i with
          | Some t -> Hashtbl.replace defined t ()
          | None -> ())
        b.Ir.instrs)
    f.blocks;
  let check_operand where = function
    | Ir.Const _ -> ()
    | Ir.Temp t ->
        if not (Hashtbl.mem defined t) then
          add (err f.name "%s uses undefined temp t%d" where t)
  in
  let slot_ids = List.map (fun s -> s.Ir.slot_id) f.slots in
  List.iter
    (fun (s : Ir.slot) ->
      if s.Ir.size_words <= 0 then
        add (err f.name "slot%d has non-positive size" s.Ir.slot_id))
    f.slots;
  List.iter
    (fun b ->
      let where = Printf.sprintf "L%d" b.Ir.label in
      List.iter
        (fun i ->
          List.iter (check_operand where) (Ir.instr_uses i);
          (match i with
          | Ir.Stack_addr (_, s) when not (List.mem s slot_ids) ->
              add (err f.name "%s references undefined slot%d" where s)
          | Ir.Call (_, callee, args) -> (
              match List.assoc_opt callee known_funcs with
              | None -> add (err f.name "%s calls unknown function %s" where callee)
              | Some arity ->
                  if List.length args <> arity then
                    add
                      (err f.name "%s calls %s with %d args (expected %d)"
                         where callee (List.length args) arity))
          | _ -> ()))
        b.Ir.instrs;
      List.iter (check_operand where) (Ir.term_uses b.Ir.term))
    f.blocks;
  List.rev !errors

let check_modul (m : Ir.modul) =
  let errors = ref [] in
  let add e = errors := e :: !errors in
  let rec dups = function
    | [] -> ()
    | (g : Ir.global) :: rest ->
        if List.exists (fun (h : Ir.global) -> String.equal g.gname h.gname) rest
        then add (err "<module>" "duplicate global %s" g.gname);
        dups rest
  in
  dups m.globals;
  List.iter
    (fun (g : Ir.global) ->
      if g.size_words <= 0 then
        add (err "<module>" "global %s has non-positive size" g.gname);
      match g.init with
      | Some a when Array.length a > g.size_words ->
          add (err "<module>" "global %s initializer too large" g.gname)
      | _ -> ())
    m.globals;
  let known_funcs =
    builtin_arity
    @ List.map (fun (f : Ir.func) -> (f.name, List.length f.params)) m.funcs
  in
  let rec fdups = function
    | [] -> ()
    | (f : Ir.func) :: rest ->
        if List.exists (fun (g : Ir.func) -> String.equal f.name g.name) rest
        then add (err "<module>" "duplicate function %s" f.name);
        fdups rest
  in
  fdups m.funcs;
  let gnames = List.map (fun g -> g.Ir.gname) m.globals in
  let func_errors =
    List.concat_map
      (fun (f : Ir.func) ->
        let es = check_func ~known_funcs f in
        let ges =
          List.concat_map
            (fun b ->
              List.filter_map
                (function
                  | Ir.Global_addr (_, g) when not (List.mem g gnames) ->
                      Some (err f.name "references undefined global %s" g)
                  | _ -> None)
                b.Ir.instrs)
            f.blocks
        in
        es @ ges)
      m.funcs
  in
  List.rev !errors @ func_errors

let check_exn m =
  match check_modul m with
  | [] -> ()
  | errs ->
      let msg =
        String.concat "\n"
          (List.map (fun e -> Printf.sprintf "%s: %s" e.func e.message) errs)
      in
      failwith ("IR verification failed:\n" ^ msg)
