type temp = int [@@deriving eq, ord, show]
type label = int [@@deriving eq, ord, show]
type operand = Temp of temp | Const of int32 [@@deriving eq, ord, show]

type binop = Add | Sub | Mul | Div | Rem | And | Or | Xor | Shl | Shr | Sar
[@@deriving eq, ord, show]

type relop = Eq | Ne | Lt | Le | Gt | Ge [@@deriving eq, ord, show]

type instr =
  | Bin of binop * temp * operand * operand
  | Neg of temp * operand
  | Not of temp * operand
  | Cmp of relop * temp * operand * operand
  | Copy of temp * operand
  | Load of temp * operand
  | Store of operand * operand
  | Global_addr of temp * string
  | Stack_addr of temp * int
  | Call of temp option * string * operand list
[@@deriving eq, ord, show]

type terminator =
  | Ret of operand option
  | Jmp of label
  | Cbr of relop * operand * operand * label * label
  | Cbr_nz of operand * label * label
[@@deriving eq, ord, show]

type block = {
  label : label;
  mutable instrs : instr list;
  mutable term : terminator;
}

type slot = { slot_id : int; size_words : int }

type func = {
  name : string;
  params : temp list;
  mutable blocks : block list;
  mutable slots : slot list;
  mutable next_temp : int;
  mutable next_label : int;
}

type global = { gname : string; size_words : int; init : int32 array option }
type modul = { funcs : func list; globals : global list }

let def_temp = function
  | Bin (_, t, _, _)
  | Neg (t, _)
  | Not (t, _)
  | Cmp (_, t, _, _)
  | Copy (t, _)
  | Load (t, _)
  | Global_addr (t, _)
  | Stack_addr (t, _) ->
      Some t
  | Store _ -> None
  | Call (dst, _, _) -> dst

let instr_uses = function
  | Bin (_, _, a, b) | Cmp (_, _, a, b) | Store (a, b) -> [ a; b ]
  | Neg (_, a) | Not (_, a) | Copy (_, a) | Load (_, a) -> [ a ]
  | Global_addr _ | Stack_addr _ -> []
  | Call (_, _, args) -> args

let term_uses = function
  | Ret (Some a) -> [ a ]
  | Ret None | Jmp _ -> []
  | Cbr (_, a, b, _, _) -> [ a; b ]
  | Cbr_nz (a, _, _) -> [ a ]

let has_side_effect = function
  | Store _ | Call _ -> true
  | Bin _ | Neg _ | Not _ | Cmp _ | Copy _ | Load _ | Global_addr _
  | Stack_addr _ ->
      false

let successors = function
  | Ret _ -> []
  | Jmp l -> [ l ]
  | Cbr (_, _, _, l1, l2) | Cbr_nz (_, l1, l2) -> [ l1; l2 ]

let map_term_labels f = function
  | Ret _ as t -> t
  | Jmp l -> Jmp (f l)
  | Cbr (r, a, b, l1, l2) -> Cbr (r, a, b, f l1, f l2)
  | Cbr_nz (a, l1, l2) -> Cbr_nz (a, f l1, f l2)

let find_block func label = List.find (fun b -> b.label = label) func.blocks
let find_func m name = List.find (fun f -> String.equal f.name name) m.funcs

let eval_binop op a b =
  let open Int32 in
  match op with
  | Add -> Some (add a b)
  | Sub -> Some (sub a b)
  | Mul -> Some (mul a b)
  | Div ->
      if b = 0l || (a = min_int && b = -1l) then None else Some (div a b)
  | Rem ->
      if b = 0l || (a = min_int && b = -1l) then None else Some (rem a b)
  | And -> Some (logand a b)
  | Or -> Some (logor a b)
  | Xor -> Some (logxor a b)
  | Shl ->
      let n = to_int b in
      if n < 0 || n > 31 then None else Some (shift_left a n)
  | Shr ->
      let n = to_int b in
      if n < 0 || n > 31 then None else Some (shift_right_logical a n)
  | Sar ->
      let n = to_int b in
      if n < 0 || n > 31 then None else Some (shift_right a n)

let eval_relop rel a b =
  match rel with
  | Eq -> Int32.equal a b
  | Ne -> not (Int32.equal a b)
  | Lt -> Int32.compare a b < 0
  | Le -> Int32.compare a b <= 0
  | Gt -> Int32.compare a b > 0
  | Ge -> Int32.compare a b >= 0

(* -------------------------------------------------------------- *)
(* Printing *)

let binop_name = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Div -> "div"
  | Rem -> "rem"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Shl -> "shl"
  | Shr -> "shr"
  | Sar -> "sar"

let relop_name = function
  | Eq -> "eq"
  | Ne -> "ne"
  | Lt -> "lt"
  | Le -> "le"
  | Gt -> "gt"
  | Ge -> "ge"

let pp_operand ppf = function
  | Temp t -> Format.fprintf ppf "t%d" t
  | Const c -> Format.fprintf ppf "%ld" c

let pp_instr ppf i =
  let p fmt = Format.fprintf ppf fmt in
  let o = pp_operand in
  match i with
  | Bin (op, t, a, b) -> p "t%d <- %s %a, %a" t (binop_name op) o a o b
  | Neg (t, a) -> p "t%d <- neg %a" t o a
  | Not (t, a) -> p "t%d <- not %a" t o a
  | Cmp (rel, t, a, b) -> p "t%d <- cmp.%s %a, %a" t (relop_name rel) o a o b
  | Copy (t, a) -> p "t%d <- %a" t o a
  | Load (t, a) -> p "t%d <- load [%a]" t o a
  | Store (a, v) -> p "store [%a] <- %a" o a o v
  | Global_addr (t, g) -> p "t%d <- &%s" t g
  | Stack_addr (t, s) -> p "t%d <- &slot%d" t s
  | Call (dst, f, args) ->
      (match dst with Some t -> p "t%d <- " t | None -> ());
      p "call %s(%a)" f
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           o)
        args

let pp_term ppf t =
  let p fmt = Format.fprintf ppf fmt in
  let o = pp_operand in
  match t with
  | Ret None -> p "ret"
  | Ret (Some a) -> p "ret %a" o a
  | Jmp l -> p "jmp L%d" l
  | Cbr (rel, a, b, l1, l2) ->
      p "br.%s %a, %a ? L%d : L%d" (relop_name rel) o a o b l1 l2
  | Cbr_nz (a, l1, l2) -> p "br.nz %a ? L%d : L%d" o a l1 l2

let pp_func ppf f =
  Format.fprintf ppf "func %s(%a):@." f.name
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       (fun ppf t -> Format.fprintf ppf "t%d" t))
    f.params;
  List.iter
    (fun s -> Format.fprintf ppf "  slot%d[%d]@." s.slot_id s.size_words)
    f.slots;
  List.iter
    (fun b ->
      Format.fprintf ppf "L%d:@." b.label;
      List.iter (fun i -> Format.fprintf ppf "  %a@." pp_instr i) b.instrs;
      Format.fprintf ppf "  %a@." pp_term b.term)
    f.blocks

let pp_modul ppf m =
  List.iter
    (fun g -> Format.fprintf ppf "global %s[%d]@." g.gname g.size_words)
    m.globals;
  List.iter (fun f -> Format.fprintf ppf "@.%a" pp_func f) m.funcs
