type t = {
  func : Ir.func;
  mutable cur : Ir.block option;
  mutable rev_instrs : Ir.instr list;
  mutable opened : Ir.label list;
  mutable next_slot : int;
}

let create ~name ~n_params =
  let func =
    {
      Ir.name;
      params = List.init n_params Fun.id;
      blocks = [];
      slots = [];
      next_temp = n_params;
      next_label = 1;
    }
  in
  let entry = { Ir.label = 0; instrs = []; term = Ir.Ret None } in
  {
    func;
    cur = Some entry;
    rev_instrs = [];
    opened = [ 0 ];
    next_slot = 0;
  }

let params t = t.func.params

let fresh_temp t =
  let n = t.func.next_temp in
  t.func.next_temp <- n + 1;
  n

let fresh_label t =
  let n = t.func.next_label in
  t.func.next_label <- n + 1;
  n

let alloc_slot t ~size_words =
  let id = t.next_slot in
  t.next_slot <- id + 1;
  t.func.slots <- t.func.slots @ [ { Ir.slot_id = id; size_words } ];
  id

let emit t i =
  match t.cur with
  | None -> failwith "Builder.emit: no open block"
  | Some _ -> t.rev_instrs <- i :: t.rev_instrs

let terminate t term =
  match t.cur with
  | None -> failwith "Builder.terminate: no open block"
  | Some b ->
      b.instrs <- List.rev t.rev_instrs;
      b.term <- term;
      t.func.blocks <- t.func.blocks @ [ b ];
      t.cur <- None;
      t.rev_instrs <- []

let start_block t label =
  (match t.cur with
  | Some _ -> failwith "Builder.start_block: previous block still open"
  | None -> ());
  if List.mem label t.opened then
    failwith (Printf.sprintf "Builder.start_block: label L%d reused" label);
  t.opened <- label :: t.opened;
  t.cur <- Some { Ir.label; instrs = []; term = Ir.Ret None }

let in_block t = t.cur <> None

let finish t =
  (match t.cur with
  | Some b ->
      failwith
        (Printf.sprintf "Builder.finish: block L%d not terminated" b.Ir.label)
  | None -> ());
  (* Every label referenced by a terminator must name a real block. *)
  let have = List.map (fun b -> b.Ir.label) t.func.blocks in
  List.iter
    (fun b ->
      List.iter
        (fun l ->
          if not (List.mem l have) then
            failwith
              (Printf.sprintf
                 "Builder.finish: block L%d jumps to missing label L%d"
                 b.Ir.label l))
        (Ir.successors b.Ir.term))
    t.func.blocks;
  t.func
