(** Reference interpreter for IR modules.

    This is the ground-truth semantics of the system: the x86 backend is
    correct when the simulator's observable behaviour (return value and
    output) matches this interpreter's.  It is also the profiling oracle —
    it counts every basic-block execution and every CFG-edge traversal, so
    the profile machinery and the optimal-counter-placement reconstruction
    can be validated against exact counts.

    Memory model: one flat 32-bit byte-addressed space.  Globals are laid
    out from a fixed base; stack slots are carved from a downward-growing
    stack.  Word accesses must be 4-aligned.  This mirrors the machine
    backend's layout so address arithmetic behaves identically. *)

type counts = {
  blocks : (string * Ir.label, int64) Hashtbl.t;
      (** executions of each basic block, keyed by (function, label) *)
  edges : (string * Ir.label * Ir.label, int64) Hashtbl.t;
      (** traversals of each CFG edge *)
  calls : (string, int64) Hashtbl.t;  (** invocations per function *)
}

type result = {
  ret : int32;  (** return value of the entry function (or exit code) *)
  output : string;  (** everything written by print builtins *)
  steps : int64;  (** IR instructions + terminators executed *)
  counts : counts;
}

exception Trap of string
(** Runtime error: division by zero, out-of-bounds or unaligned access,
    unknown callee, or fuel exhaustion. *)

val run :
  ?fuel:int64 -> ?mem_words:int -> Ir.modul -> entry:string ->
  args:int32 list -> result
(** [run m ~entry ~args] executes [entry] with [args].  [fuel] bounds the
    step count (default [2^40]); exceeding it raises {!Trap}.
    [mem_words] sizes the address space (default 1 Mi words = 4 MiB). *)
