module IMap = Map.Make (Int)
module ISet = Set.Make (Int)

type t = {
  entry : Ir.label;
  order : Ir.label list;
  succs : Ir.label list IMap.t;
  preds : Ir.label list IMap.t;
  reach : ISet.t;
  rpo : Ir.label list;
}

let dedup xs =
  List.rev
    (List.fold_left (fun acc x -> if List.mem x acc then acc else x :: acc) [] xs)

let of_func (f : Ir.func) =
  let entry =
    match f.blocks with
    | [] -> invalid_arg "Cfg.of_func: function has no blocks"
    | b :: _ -> b.Ir.label
  in
  let order = List.map (fun b -> b.Ir.label) f.blocks in
  let succs =
    List.fold_left
      (fun m b -> IMap.add b.Ir.label (dedup (Ir.successors b.Ir.term)) m)
      IMap.empty f.blocks
  in
  let preds =
    List.fold_left
      (fun m b ->
        List.fold_left
          (fun m s ->
            let old = Option.value (IMap.find_opt s m) ~default:[] in
            IMap.add s (old @ [ b.Ir.label ]) m)
          m
          (Option.value (IMap.find_opt b.Ir.label succs) ~default:[]))
      IMap.empty f.blocks
  in
  (* DFS postorder from the entry, then reverse. *)
  let visited = ref ISet.empty in
  let post = ref [] in
  let rec dfs l =
    if not (ISet.mem l !visited) then begin
      visited := ISet.add l !visited;
      List.iter dfs (Option.value (IMap.find_opt l succs) ~default:[]);
      post := l :: !post
    end
  in
  dfs entry;
  { entry; order; succs; preds; reach = !visited; rpo = !post }

let entry t = t.entry
let labels t = t.order
let succs t l = Option.value (IMap.find_opt l t.succs) ~default:[]
let preds t l = Option.value (IMap.find_opt l t.preds) ~default:[]

let edges t =
  List.concat_map (fun l -> List.map (fun s -> (l, s)) (succs t l)) t.order

let reverse_postorder t = t.rpo
let reachable t l = ISet.mem l t.reach
let num_blocks t = List.length t.order
