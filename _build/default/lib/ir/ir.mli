(** The mid-level intermediate representation.

    A conventional three-address, CFG-based IR (not SSA): functions are
    lists of basic blocks; each block is a list of straight-line
    instructions ended by exactly one terminator.  Virtual registers
    ("temps") are function-local and may be redefined.  This is the level
    at which optimization and edge profiling happen — mirroring the role
    LLVM IR plays in the paper — before instruction selection lowers each
    block one-for-one into machine code.

    Memory model: scalars live in temps; addressable storage consists of
    named global word arrays and per-function stack slots.  Addresses are
    first-class 32-bit values produced by {!constructor:Global_addr} /
    {!constructor:Stack_addr} and ordinary arithmetic, consumed by
    {!constructor:Load} / {!constructor:Store} (word-sized, like the rest
    of the machine). *)

type temp = int [@@deriving eq, ord, show]
(** Virtual register, function-local, allocated by {!Builder}. *)

type label = int [@@deriving eq, ord, show]
(** Basic-block identifier, function-local. *)

type operand = Temp of temp | Const of int32 [@@deriving eq, ord, show]

type binop =
  | Add
  | Sub
  | Mul
  | Div  (** signed; traps on zero divisor like the hardware *)
  | Rem  (** signed remainder *)
  | And
  | Or
  | Xor
  | Shl
  | Shr  (** logical right shift *)
  | Sar  (** arithmetic right shift *)
[@@deriving eq, ord, show]

type relop = Eq | Ne | Lt | Le | Gt | Ge  (** signed comparisons *)
[@@deriving eq, ord, show]

type instr =
  | Bin of binop * temp * operand * operand  (** [t <- a op b] *)
  | Neg of temp * operand
  | Not of temp * operand  (** bitwise complement *)
  | Cmp of relop * temp * operand * operand  (** [t <- a rel b] as 0/1 *)
  | Copy of temp * operand
  | Load of temp * operand  (** [t <- mem\[addr\]] (word) *)
  | Store of operand * operand  (** [mem\[addr\] <- v] (word) *)
  | Global_addr of temp * string  (** address of a global array *)
  | Stack_addr of temp * int  (** address of stack slot [i] *)
  | Call of temp option * string * operand list
      (** call a function or builtin; result in the temp if any *)
[@@deriving eq, ord, show]

type terminator =
  | Ret of operand option
  | Jmp of label
  | Cbr of relop * operand * operand * label * label
      (** fused compare-and-branch: if [a rel b] then first else second *)
  | Cbr_nz of operand * label * label  (** branch if operand non-zero *)
[@@deriving eq, ord, show]

type block = {
  label : label;
  mutable instrs : instr list;
  mutable term : terminator;
}

type slot = { slot_id : int; size_words : int }
(** A stack-allocated array of [size_words] 32-bit words. *)

type func = {
  name : string;
  params : temp list;  (** parameter temps, in order *)
  mutable blocks : block list;  (** entry block first *)
  mutable slots : slot list;
  mutable next_temp : int;
  mutable next_label : int;
}

type global = {
  gname : string;
  size_words : int;
  init : int32 array option;  (** [None] zero-initializes *)
}

type modul = { funcs : func list; globals : global list }

val def_temp : instr -> temp option
(** The temp defined by an instruction, if any. *)

val instr_uses : instr -> operand list
(** Operands read by an instruction. *)

val term_uses : terminator -> operand list

val has_side_effect : instr -> bool
(** Stores and calls; everything else is pure and removable when its
    result is unused. *)

val successors : terminator -> label list
(** Successor labels in branch order ([Cbr]: taken first). *)

val map_term_labels : (label -> label) -> terminator -> terminator

val find_block : func -> label -> block
(** Raises [Not_found] if no block carries the label. *)

val find_func : modul -> string -> func
val eval_binop : binop -> int32 -> int32 -> int32 option
(** Constant evaluation; [None] for division by zero (or
    [min_int / -1]) and for shift counts outside 0-31, which the
    optimizer must leave to runtime. *)

val eval_relop : relop -> int32 -> int32 -> bool

val binop_name : binop -> string
val relop_name : relop -> string
val pp_operand : Format.formatter -> operand -> unit
val pp_instr : Format.formatter -> instr -> unit
val pp_term : Format.formatter -> terminator -> unit
val pp_func : Format.formatter -> func -> unit
val pp_modul : Format.formatter -> modul -> unit
