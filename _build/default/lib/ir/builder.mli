(** Imperative construction of IR functions.

    The frontend and the tests build functions through this interface: open
    a block, emit instructions into it, seal it with a terminator, repeat.
    {!finish} checks that every opened block was sealed exactly once. *)

type t

val create : name:string -> n_params:int -> t
(** Start a function with [n_params] parameter temps (numbered 0..n-1); an
    entry block is opened automatically with label 0. *)

val params : t -> Ir.temp list
val fresh_temp : t -> Ir.temp
val fresh_label : t -> Ir.label
(** Reserve a label for a block to be opened later (forward
    references). *)

val alloc_slot : t -> size_words:int -> int
(** Allocate a stack slot; returns its id. *)

val emit : t -> Ir.instr -> unit
(** Append to the currently open block.  Raises [Failure] if no block is
    open (i.e. after a terminator and before [start_block]). *)

val terminate : t -> Ir.terminator -> unit
(** Seal the current block.  Raises [Failure] if no block is open. *)

val start_block : t -> Ir.label -> unit
(** Open a previously reserved label as the current block.  Raises
    [Failure] if a block is still open or the label was already used. *)

val in_block : t -> bool
(** Is a block currently open? *)

val finish : t -> Ir.func
(** Close construction.  Raises [Failure] if a block is still open or any
    reserved label was never opened but is referenced. *)
