(** Control-flow-graph queries over an IR function.

    A snapshot: compute it once per pass, after any structural mutation it
    must be recomputed. *)

type t

val of_func : Ir.func -> t
val entry : t -> Ir.label
val labels : t -> Ir.label list
(** All block labels, in function (layout) order. *)

val succs : t -> Ir.label -> Ir.label list
val preds : t -> Ir.label -> Ir.label list

val edges : t -> (Ir.label * Ir.label) list
(** All CFG edges (src, dst), deduplicated, in deterministic order.  A
    [Cbr] with both arms equal contributes one edge. *)

val reverse_postorder : t -> Ir.label list
(** RPO from the entry; unreachable blocks are excluded. *)

val reachable : t -> Ir.label -> bool

val num_blocks : t -> int
