lib/front/minic.pp.mli: Ir
