lib/front/parser.pp.mli: Ast
