lib/front/minic.pp.ml: Ast Lexer Lower Parser Printf Sema Verify
