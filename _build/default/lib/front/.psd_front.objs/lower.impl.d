lib/front/lower.pp.ml: Array Ast Builder Hashtbl Ir List Option
