lib/front/sema.pp.ml: Ast Format Hashtbl List Option String
