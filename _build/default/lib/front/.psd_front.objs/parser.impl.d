lib/front/parser.pp.ml: Ast Format Int32 Lexer List
