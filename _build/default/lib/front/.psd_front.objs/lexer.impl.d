lib/front/lexer.pp.ml: Ast Char Format Int32 List Ppx_deriving_runtime String
