lib/front/ast.pp.mli: Ppx_deriving_runtime
