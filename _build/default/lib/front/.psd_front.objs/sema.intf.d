lib/front/sema.pp.mli: Ast
