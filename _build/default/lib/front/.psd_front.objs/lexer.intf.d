lib/front/lexer.pp.mli: Ast Ppx_deriving_runtime
