lib/front/lower.pp.mli: Ast Ir
