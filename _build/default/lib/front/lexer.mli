(** Hand-written lexer for MiniC. *)

type token =
  | NUM of int32
  | IDENT of string
  | KW_INT | KW_IF | KW_ELSE | KW_WHILE | KW_FOR | KW_RETURN
  | KW_BREAK | KW_CONTINUE | KW_GLOBAL
  | LPAREN | RPAREN | LBRACE | RBRACE | LBRACKET | RBRACKET
  | SEMI | COMMA
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | AMP | PIPE | CARET | TILDE | BANG
  | LTLT | GTGT
  | EQ  (** [=] *)
  | EQEQ | NEQ | LT | LE | GT | GE
  | AMPAMP | PIPEPIPE
  | EOF
[@@deriving eq, show]

exception Error of string * Ast.pos
(** Lexical error with position. *)

val tokenize : string -> (token * Ast.pos) list
(** Whole-input tokenization.  Comments ([// ...] and [/* ... */]) and
    whitespace are skipped; character literals ['c'] (with [\n], [\t],
    [\\], [\'], [\0] escapes) lex as their code point, as NUM. *)
