(** Semantic analysis for MiniC.

    Name resolution and shape checking over the AST; all errors carry
    source positions.  Checks: no redeclaration within a scope; every
    variable use resolves; arrays are only used indexed and scalars never
    indexed; assignment targets are scalars (or array elements); calls
    resolve to a function or builtin with the right arity; [break] /
    [continue] appear only inside loops; array and global sizes are
    positive; global initializers fit. *)

exception Error of string * Ast.pos

val check : Ast.program -> unit
(** Raises {!Error} on the first violation. *)

val builtins : (string * int) list
(** Name and arity of the runtime builtins callable from MiniC. *)
