(** Recursive-descent parser for MiniC.

    Operator precedence follows C (tightest first): unary; [* / %];
    [+ -]; [<< >>]; relational; equality; [&]; [^]; [|]; [&&]; [||].
    All binary operators are left-associative. *)

exception Error of string * Ast.pos

val parse : string -> Ast.program
(** Parse a full translation unit.  Raises {!Error} or {!Lexer.Error} on
    malformed input. *)

val parse_expr : string -> Ast.expr
(** Parse a single expression (for tests and the REPL-ish tooling). *)
