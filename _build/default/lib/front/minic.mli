(** Frontend facade: MiniC source text to a verified IR module. *)

type error = { message : string; line : int; col : int }

val compile : string -> (Ir.modul, error) result
(** Lex, parse, check, lower, and verify.  All frontend failures are
    reported as positioned {!error}s rather than exceptions. *)

val compile_exn : string -> Ir.modul
(** Like {!compile} but raises [Failure] with a formatted message — the
    convenient form for tests and tools operating on known-good
    sources. *)
