exception Error of string * Ast.pos

let builtins = [ ("print_int", 1); ("put_char", 1); ("exit", 1) ]
let error pos fmt = Format.kasprintf (fun m -> raise (Error (m, pos))) fmt

type shape = Scalar | Array

(* Lexical scopes: innermost first.  Each scope maps a name to its
   shape. *)
type env = {
  funcs : (string * int) list;
  mutable scopes : (string, shape) Hashtbl.t list;
  mutable loop_depth : int;
}

let push_scope env = env.scopes <- Hashtbl.create 8 :: env.scopes
let pop_scope env = env.scopes <- List.tl env.scopes

let declare env pos name shape =
  match env.scopes with
  | scope :: _ ->
      if Hashtbl.mem scope name then
        error pos "redeclaration of '%s' in the same scope" name;
      Hashtbl.replace scope name shape
  | [] -> assert false

let lookup env name =
  let rec find = function
    | [] -> None
    | scope :: rest -> (
        match Hashtbl.find_opt scope name with
        | Some s -> Some s
        | None -> find rest)
  in
  find env.scopes

let rec check_expr env (e : Ast.expr) =
  match e.desc with
  | Ast.Num _ -> ()
  | Ast.Var name -> (
      match lookup env name with
      | Some Scalar -> ()
      | Some Array ->
          error e.pos "array '%s' used as a scalar (index it instead)" name
      | None -> error e.pos "undeclared variable '%s'" name)
  | Ast.Index (name, idx) -> (
      check_expr env idx;
      match lookup env name with
      | Some Array -> ()
      | Some Scalar -> error e.pos "scalar '%s' cannot be indexed" name
      | None -> error e.pos "undeclared array '%s'" name)
  | Ast.Bin (_, a, b) ->
      check_expr env a;
      check_expr env b
  | Ast.Un (_, a) -> check_expr env a
  | Ast.Call (name, args) -> (
      List.iter (check_expr env) args;
      match List.assoc_opt name env.funcs with
      | None -> error e.pos "call to undeclared function '%s'" name
      | Some arity ->
          if List.length args <> arity then
            error e.pos "'%s' expects %d argument(s), got %d" name arity
              (List.length args))

let rec check_stmt env (s : Ast.stmt) =
  match s.sdesc with
  | Ast.Decl (name, size, init) ->
      (match size with
      | Some n when n <= 0 ->
          error s.spos "array '%s' must have positive size" name
      | _ -> ());
      Option.iter (check_expr env) init;
      declare env s.spos name (if size = None then Scalar else Array)
  | Ast.Assign (name, e) -> (
      check_expr env e;
      match lookup env name with
      | Some Scalar -> ()
      | Some Array -> error s.spos "cannot assign to array '%s'" name
      | None -> error s.spos "assignment to undeclared variable '%s'" name)
  | Ast.Assign_index (name, idx, e) -> (
      check_expr env idx;
      check_expr env e;
      match lookup env name with
      | Some Array -> ()
      | Some Scalar -> error s.spos "scalar '%s' cannot be indexed" name
      | None -> error s.spos "undeclared array '%s'" name)
  | Ast.If (cond, then_, else_) ->
      check_expr env cond;
      check_stmt_scoped env then_;
      Option.iter (check_stmt_scoped env) else_
  | Ast.While (cond, body) ->
      check_expr env cond;
      env.loop_depth <- env.loop_depth + 1;
      check_stmt_scoped env body;
      env.loop_depth <- env.loop_depth - 1
  | Ast.For (init, cond, step, body) ->
      push_scope env;
      Option.iter (check_stmt env) init;
      Option.iter (check_expr env) cond;
      env.loop_depth <- env.loop_depth + 1;
      check_stmt_scoped env body;
      Option.iter (check_stmt env) step;
      env.loop_depth <- env.loop_depth - 1;
      pop_scope env
  | Ast.Return e -> Option.iter (check_expr env) e
  | Ast.Break ->
      if env.loop_depth = 0 then error s.spos "'break' outside a loop"
  | Ast.Continue ->
      if env.loop_depth = 0 then error s.spos "'continue' outside a loop"
  | Ast.Expr e -> check_expr env e
  | Ast.Block stmts ->
      push_scope env;
      List.iter (check_stmt env) stmts;
      pop_scope env

(* A sub-statement of if/while/for opens its own scope even when it is not
   syntactically a block, so "if (c) int x = 1;" cannot leak x. *)
and check_stmt_scoped env s =
  push_scope env;
  check_stmt env s;
  pop_scope env

let check (prog : Ast.program) =
  (* Global names must be unique. *)
  let rec gdups = function
    | [] -> ()
    | (g : Ast.global) :: rest ->
        if List.exists (fun (h : Ast.global) -> String.equal g.gname h.gname) rest
        then error g.gpos "duplicate global '%s'" g.gname;
        if g.gsize <= 0 then
          error g.gpos "global '%s' must have positive size" g.gname;
        (match g.ginit with
        | Some vals when List.length vals > g.gsize ->
            error g.gpos "initializer of '%s' longer than its size" g.gname
        | _ -> ());
        gdups rest
  in
  gdups prog.globals;
  let rec fdups = function
    | [] -> ()
    | (f : Ast.func) :: rest ->
        if List.exists (fun (g : Ast.func) -> String.equal f.fname g.fname) rest
        then error f.fpos "duplicate function '%s'" f.fname;
        if List.mem_assoc f.fname builtins then
          error f.fpos "'%s' shadows a builtin" f.fname;
        fdups rest
  in
  fdups prog.funcs;
  let funcs =
    builtins
    @ List.map
        (fun (f : Ast.func) -> (f.fname, List.length f.fparams))
        prog.funcs
  in
  let global_scope = Hashtbl.create 16 in
  List.iter
    (fun (g : Ast.global) ->
      Hashtbl.replace global_scope g.gname
        (if g.garray then Array else Scalar))
    prog.globals;
  List.iter
    (fun (f : Ast.func) ->
      let env = { funcs; scopes = [ global_scope ]; loop_depth = 0 } in
      push_scope env;
      let rec pdups = function
        | [] -> ()
        | p :: rest ->
            if List.mem p rest then
              error f.fpos "duplicate parameter '%s' in '%s'" p f.fname;
            pdups rest
      in
      pdups f.fparams;
      List.iter (fun p -> declare env f.fpos p Scalar) f.fparams;
      List.iter (check_stmt env) f.fbody)
    prog.funcs
