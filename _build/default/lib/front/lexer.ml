type token =
  | NUM of int32
  | IDENT of string
  | KW_INT | KW_IF | KW_ELSE | KW_WHILE | KW_FOR | KW_RETURN
  | KW_BREAK | KW_CONTINUE | KW_GLOBAL
  | LPAREN | RPAREN | LBRACE | RBRACE | LBRACKET | RBRACKET
  | SEMI | COMMA
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | AMP | PIPE | CARET | TILDE | BANG
  | LTLT | GTGT
  | EQ
  | EQEQ | NEQ | LT | LE | GT | GE
  | AMPAMP | PIPEPIPE
  | EOF
[@@deriving eq, show]

exception Error of string * Ast.pos

let keywords =
  [
    ("int", KW_INT); ("if", KW_IF); ("else", KW_ELSE); ("while", KW_WHILE);
    ("for", KW_FOR); ("return", KW_RETURN); ("break", KW_BREAK);
    ("continue", KW_CONTINUE); ("global", KW_GLOBAL);
  ]

type state = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable col : int;
}

let here st = { Ast.line = st.line; col = st.col }
let error st fmt = Format.kasprintf (fun m -> raise (Error (m, here st))) fmt
let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let peek2 st =
  if st.pos + 1 < String.length st.src then Some st.src.[st.pos + 1] else None

let advance st =
  (match peek st with
  | Some '\n' ->
      st.line <- st.line + 1;
      st.col <- 1
  | Some _ -> st.col <- st.col + 1
  | None -> ());
  st.pos <- st.pos + 1

let is_digit c = c >= '0' && c <= '9'
let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || is_digit c

let rec skip_trivia st =
  match (peek st, peek2 st) with
  | Some (' ' | '\t' | '\r' | '\n'), _ ->
      advance st;
      skip_trivia st
  | Some '/', Some '/' ->
      while peek st <> None && peek st <> Some '\n' do
        advance st
      done;
      skip_trivia st
  | Some '/', Some '*' ->
      advance st;
      advance st;
      let rec close () =
        match (peek st, peek2 st) with
        | Some '*', Some '/' ->
            advance st;
            advance st
        | Some _, _ ->
            advance st;
            close ()
        | None, _ -> error st "unterminated block comment"
      in
      close ();
      skip_trivia st
  | _ -> ()

let lex_number st =
  let start = st.pos in
  let hex =
    peek st = Some '0' && (peek2 st = Some 'x' || peek2 st = Some 'X')
  in
  if hex then begin
    advance st;
    advance st;
    while
      match peek st with
      | Some c ->
          is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
      | None -> false
    do
      advance st
    done
  end
  else
    while match peek st with Some c -> is_digit c | None -> false do
      advance st
    done;
  let text = String.sub st.src start (st.pos - start) in
  match Int32.of_string_opt text with
  | Some v -> NUM v
  | None -> error st "number out of 32-bit range: %s" text

let lex_char st =
  advance st (* opening quote *);
  let code =
    match peek st with
    | Some '\\' -> (
        advance st;
        let c =
          match peek st with
          | Some 'n' -> 10
          | Some 't' -> 9
          | Some '\\' -> 92
          | Some '\'' -> 39
          | Some '0' -> 0
          | Some c -> error st "unknown escape \\%c" c
          | None -> error st "unterminated character literal"
        in
        advance st;
        c)
    | Some c ->
        advance st;
        Char.code c
    | None -> error st "unterminated character literal"
  in
  (match peek st with
  | Some '\'' -> advance st
  | _ -> error st "unterminated character literal");
  NUM (Int32.of_int code)

let lex_ident st =
  let start = st.pos in
  while match peek st with Some c -> is_ident_char c | None -> false do
    advance st
  done;
  let text = String.sub st.src start (st.pos - start) in
  match List.assoc_opt text keywords with Some kw -> kw | None -> IDENT text

let tokenize src =
  let st = { src; pos = 0; line = 1; col = 1 } in
  let toks = ref [] in
  let push tok pos = toks := (tok, pos) :: !toks in
  let two tok =
    advance st;
    advance st;
    tok
  in
  let one tok =
    advance st;
    tok
  in
  let rec loop () =
    skip_trivia st;
    let pos = here st in
    match peek st with
    | None -> push EOF pos
    | Some c ->
        let tok =
          match (c, peek2 st) with
          | '&', Some '&' -> two AMPAMP
          | '|', Some '|' -> two PIPEPIPE
          | '<', Some '<' -> two LTLT
          | '>', Some '>' -> two GTGT
          | '<', Some '=' -> two LE
          | '>', Some '=' -> two GE
          | '=', Some '=' -> two EQEQ
          | '!', Some '=' -> two NEQ
          | '(', _ -> one LPAREN
          | ')', _ -> one RPAREN
          | '{', _ -> one LBRACE
          | '}', _ -> one RBRACE
          | '[', _ -> one LBRACKET
          | ']', _ -> one RBRACKET
          | ';', _ -> one SEMI
          | ',', _ -> one COMMA
          | '+', _ -> one PLUS
          | '-', _ -> one MINUS
          | '*', _ -> one STAR
          | '/', _ -> one SLASH
          | '%', _ -> one PERCENT
          | '&', _ -> one AMP
          | '|', _ -> one PIPE
          | '^', _ -> one CARET
          | '~', _ -> one TILDE
          | '!', _ -> one BANG
          | '=', _ -> one EQ
          | '<', _ -> one LT
          | '>', _ -> one GT
          | '\'', _ -> lex_char st
          | c, _ when is_digit c -> lex_number st
          | c, _ when is_ident_start c -> lex_ident st
          | c, _ -> error st "unexpected character %C" c
        in
        push tok pos;
        if not (equal_token tok EOF) then loop ()
  in
  loop ();
  List.rev !toks
