type pos = { line : int; col : int } [@@deriving eq, show]

type binop =
  | Add | Sub | Mul | Div | Rem
  | Band | Bor | Bxor | Shl | Shr
  | Eq | Ne | Lt | Le | Gt | Ge
  | Land | Lor
[@@deriving eq, show]

type unop = Neg | Lnot | Bnot [@@deriving eq, show]

type expr = { desc : expr_desc; pos : pos } [@@deriving eq, show]

and expr_desc =
  | Num of int32
  | Var of string
  | Index of string * expr
  | Bin of binop * expr * expr
  | Un of unop * expr
  | Call of string * expr list
[@@deriving eq, show]

type stmt = { sdesc : stmt_desc; spos : pos } [@@deriving eq, show]

and stmt_desc =
  | Decl of string * int option * expr option
  | Assign of string * expr
  | Assign_index of string * expr * expr
  | If of expr * stmt * stmt option
  | While of expr * stmt
  | For of stmt option * expr option * stmt option * stmt
  | Return of expr option
  | Break
  | Continue
  | Expr of expr
  | Block of stmt list
[@@deriving eq, show]

type func = {
  fname : string;
  fparams : string list;
  fbody : stmt list;
  fpos : pos;
}
[@@deriving eq, show]

type global = {
  gname : string;
  gsize : int;
  garray : bool;
  ginit : int32 list option;
  gpos : pos;
}
[@@deriving eq, show]

type program = { globals : global list; funcs : func list }
[@@deriving eq, show]
