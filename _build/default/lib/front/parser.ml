exception Error of string * Ast.pos

type state = { mutable toks : (Lexer.token * Ast.pos) list }

let peek st =
  match st.toks with
  | (tok, pos) :: _ -> (tok, pos)
  | [] -> (Lexer.EOF, { Ast.line = 0; col = 0 })

let pos_of st = snd (peek st)

let error st fmt =
  Format.kasprintf (fun m -> raise (Error (m, pos_of st))) fmt

let advance st =
  match st.toks with _ :: rest -> st.toks <- rest | [] -> ()

let expect st tok what =
  let got, _ = peek st in
  if Lexer.equal_token got tok then advance st
  else error st "expected %s, found %s" what (Lexer.show_token got)

let expect_ident st =
  match peek st with
  | Lexer.IDENT name, _ ->
      advance st;
      name
  | got, _ -> error st "expected identifier, found %s" (Lexer.show_token got)

let expect_num st =
  match peek st with
  | Lexer.NUM v, _ ->
      advance st;
      v
  | got, _ -> error st "expected number, found %s" (Lexer.show_token got)

let accept st tok =
  let got, _ = peek st in
  if Lexer.equal_token got tok then begin
    advance st;
    true
  end
  else false

(* Binary operator precedence, loosest binding = level 0. *)
let binop_of_token = function
  | Lexer.PIPEPIPE -> Some (0, Ast.Lor)
  | Lexer.AMPAMP -> Some (1, Ast.Land)
  | Lexer.PIPE -> Some (2, Ast.Bor)
  | Lexer.CARET -> Some (3, Ast.Bxor)
  | Lexer.AMP -> Some (4, Ast.Band)
  | Lexer.EQEQ -> Some (5, Ast.Eq)
  | Lexer.NEQ -> Some (5, Ast.Ne)
  | Lexer.LT -> Some (6, Ast.Lt)
  | Lexer.LE -> Some (6, Ast.Le)
  | Lexer.GT -> Some (6, Ast.Gt)
  | Lexer.GE -> Some (6, Ast.Ge)
  | Lexer.LTLT -> Some (7, Ast.Shl)
  | Lexer.GTGT -> Some (7, Ast.Shr)
  | Lexer.PLUS -> Some (8, Ast.Add)
  | Lexer.MINUS -> Some (8, Ast.Sub)
  | Lexer.STAR -> Some (9, Ast.Mul)
  | Lexer.SLASH -> Some (9, Ast.Div)
  | Lexer.PERCENT -> Some (9, Ast.Rem)
  | _ -> None

let rec parse_expr_prec st min_prec =
  let lhs = parse_unary st in
  let rec loop lhs =
    match binop_of_token (fst (peek st)) with
    | Some (prec, op) when prec >= min_prec ->
        let pos = pos_of st in
        advance st;
        (* Left associativity: the right operand binds one level
           tighter. *)
        let rhs = parse_expr_prec st (prec + 1) in
        loop { Ast.desc = Ast.Bin (op, lhs, rhs); pos }
    | _ -> lhs
  in
  loop lhs

and parse_unary st =
  let tok, pos = peek st in
  match tok with
  | Lexer.MINUS ->
      advance st;
      { Ast.desc = Ast.Un (Ast.Neg, parse_unary st); pos }
  | Lexer.BANG ->
      advance st;
      { Ast.desc = Ast.Un (Ast.Lnot, parse_unary st); pos }
  | Lexer.TILDE ->
      advance st;
      { Ast.desc = Ast.Un (Ast.Bnot, parse_unary st); pos }
  | _ -> parse_primary st

and parse_primary st =
  let tok, pos = peek st in
  match tok with
  | Lexer.NUM v ->
      advance st;
      { Ast.desc = Ast.Num v; pos }
  | Lexer.LPAREN ->
      advance st;
      let e = parse_expr_prec st 0 in
      expect st Lexer.RPAREN ")";
      e
  | Lexer.IDENT name -> (
      advance st;
      match fst (peek st) with
      | Lexer.LPAREN ->
          advance st;
          let args =
            if accept st Lexer.RPAREN then []
            else
              let rec more acc =
                let e = parse_expr_prec st 0 in
                if accept st Lexer.COMMA then more (e :: acc)
                else begin
                  expect st Lexer.RPAREN ")";
                  List.rev (e :: acc)
                end
              in
              more []
          in
          { Ast.desc = Ast.Call (name, args); pos }
      | Lexer.LBRACKET ->
          advance st;
          let idx = parse_expr_prec st 0 in
          expect st Lexer.RBRACKET "]";
          { Ast.desc = Ast.Index (name, idx); pos }
      | _ -> { Ast.desc = Ast.Var name; pos })
  | tok -> error st "expected expression, found %s" (Lexer.show_token tok)

let parse_expression st = parse_expr_prec st 0

(* A "simple statement" is what may appear in for-headers: a declaration,
   an assignment, or an expression statement — without the trailing
   semicolon. *)
let parse_simple st =
  let tok, pos = peek st in
  match tok with
  | Lexer.KW_INT ->
      advance st;
      let name = expect_ident st in
      let size =
        if accept st Lexer.LBRACKET then begin
          let n = expect_num st in
          expect st Lexer.RBRACKET "]";
          Some (Int32.to_int n)
        end
        else None
      in
      let init =
        if accept st Lexer.EQ then Some (parse_expression st) else None
      in
      if size <> None && init <> None then
        error st "array declarations cannot have initializers";
      { Ast.sdesc = Ast.Decl (name, size, init); spos = pos }
  | Lexer.IDENT name -> (
      advance st;
      match fst (peek st) with
      | Lexer.EQ ->
          advance st;
          { Ast.sdesc = Ast.Assign (name, parse_expression st); spos = pos }
      | Lexer.LBRACKET -> (
          advance st;
          let idx = parse_expression st in
          expect st Lexer.RBRACKET "]";
          match fst (peek st) with
          | Lexer.EQ ->
              advance st;
              {
                Ast.sdesc = Ast.Assign_index (name, idx, parse_expression st);
                spos = pos;
              }
          | _ ->
              (* It was an expression after all: a[i] as a value.  Only
                 useful composed into a larger expression, which we do not
                 support at statement position; report it clearly. *)
              error st "expected '=' after index expression")
      | Lexer.LPAREN ->
          (* Function call statement: re-parse from the identifier. *)
          advance st;
          let args =
            if accept st Lexer.RPAREN then []
            else
              let rec more acc =
                let e = parse_expression st in
                if accept st Lexer.COMMA then more (e :: acc)
                else begin
                  expect st Lexer.RPAREN ")";
                  List.rev (e :: acc)
                end
              in
              more []
          in
          { Ast.sdesc = Ast.Expr { desc = Ast.Call (name, args); pos }; spos = pos }
      | tok -> error st "expected statement, found %s" (Lexer.show_token tok))
  | tok -> error st "expected statement, found %s" (Lexer.show_token tok)

let rec parse_stmt st =
  let tok, pos = peek st in
  match tok with
  | Lexer.LBRACE ->
      advance st;
      let rec items acc =
        if accept st Lexer.RBRACE then List.rev acc
        else items (parse_stmt st :: acc)
      in
      { Ast.sdesc = Ast.Block (items []); spos = pos }
  | Lexer.KW_IF ->
      advance st;
      expect st Lexer.LPAREN "(";
      let cond = parse_expression st in
      expect st Lexer.RPAREN ")";
      let then_ = parse_stmt st in
      let else_ =
        if accept st Lexer.KW_ELSE then Some (parse_stmt st) else None
      in
      { Ast.sdesc = Ast.If (cond, then_, else_); spos = pos }
  | Lexer.KW_WHILE ->
      advance st;
      expect st Lexer.LPAREN "(";
      let cond = parse_expression st in
      expect st Lexer.RPAREN ")";
      let body = parse_stmt st in
      { Ast.sdesc = Ast.While (cond, body); spos = pos }
  | Lexer.KW_FOR ->
      advance st;
      expect st Lexer.LPAREN "(";
      let init =
        if Lexer.equal_token (fst (peek st)) Lexer.SEMI then None
        else Some (parse_simple st)
      in
      expect st Lexer.SEMI ";";
      let cond =
        if Lexer.equal_token (fst (peek st)) Lexer.SEMI then None
        else Some (parse_expression st)
      in
      expect st Lexer.SEMI ";";
      let step =
        if Lexer.equal_token (fst (peek st)) Lexer.RPAREN then None
        else Some (parse_simple st)
      in
      expect st Lexer.RPAREN ")";
      let body = parse_stmt st in
      { Ast.sdesc = Ast.For (init, cond, step, body); spos = pos }
  | Lexer.KW_RETURN ->
      advance st;
      let v =
        if Lexer.equal_token (fst (peek st)) Lexer.SEMI then None
        else Some (parse_expression st)
      in
      expect st Lexer.SEMI ";";
      { Ast.sdesc = Ast.Return v; spos = pos }
  | Lexer.KW_BREAK ->
      advance st;
      expect st Lexer.SEMI ";";
      { Ast.sdesc = Ast.Break; spos = pos }
  | Lexer.KW_CONTINUE ->
      advance st;
      expect st Lexer.SEMI ";";
      { Ast.sdesc = Ast.Continue; spos = pos }
  | _ ->
      let s = parse_simple st in
      expect st Lexer.SEMI ";";
      s

let parse_global st pos =
  (* "global" already consumed. *)
  expect st Lexer.KW_INT "int";
  let name = expect_ident st in
  let size, garray =
    if accept st Lexer.LBRACKET then begin
      let n = expect_num st in
      expect st Lexer.RBRACKET "]";
      (Int32.to_int n, true)
    end
    else (1, false)
  in
  let init =
    if accept st Lexer.EQ then begin
      expect st Lexer.LBRACE "{";
      let rec more acc =
        let v = expect_num st in
        if accept st Lexer.COMMA then more (v :: acc)
        else begin
          expect st Lexer.RBRACE "}";
          List.rev (v :: acc)
        end
      in
      Some (more [])
    end
    else None
  in
  expect st Lexer.SEMI ";";
  { Ast.gname = name; gsize = size; garray; ginit = init; gpos = pos }

let parse_func st pos =
  (* "int" already consumed. *)
  let name = expect_ident st in
  expect st Lexer.LPAREN "(";
  let params =
    if accept st Lexer.RPAREN then []
    else
      let rec more acc =
        expect st Lexer.KW_INT "int";
        let p = expect_ident st in
        if accept st Lexer.COMMA then more (p :: acc)
        else begin
          expect st Lexer.RPAREN ")";
          List.rev (p :: acc)
        end
      in
      more []
  in
  expect st Lexer.LBRACE "{";
  let rec items acc =
    if accept st Lexer.RBRACE then List.rev acc
    else items (parse_stmt st :: acc)
  in
  { Ast.fname = name; fparams = params; fbody = items []; fpos = pos }

let parse src =
  let st = { toks = Lexer.tokenize src } in
  let rec toplevel globals funcs =
    let tok, pos = peek st in
    match tok with
    | Lexer.EOF -> { Ast.globals = List.rev globals; funcs = List.rev funcs }
    | Lexer.KW_GLOBAL ->
        advance st;
        toplevel (parse_global st pos :: globals) funcs
    | Lexer.KW_INT ->
        advance st;
        toplevel globals (parse_func st pos :: funcs)
    | tok -> error st "expected declaration, found %s" (Lexer.show_token tok)
  in
  toplevel [] []

let parse_expr src =
  let st = { toks = Lexer.tokenize src } in
  let e = parse_expression st in
  expect st Lexer.EOF "end of input";
  e
