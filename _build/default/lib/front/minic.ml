type error = { message : string; line : int; col : int }

let of_pos (p : Ast.pos) message = { message; line = p.line; col = p.col }

let compile src =
  match
    let ast = Parser.parse src in
    Sema.check ast;
    let m = Lower.program ast in
    Verify.check_exn m;
    m
  with
  | m -> Ok m
  | exception Lexer.Error (msg, pos) -> Error (of_pos pos ("lexical error: " ^ msg))
  | exception Parser.Error (msg, pos) -> Error (of_pos pos ("syntax error: " ^ msg))
  | exception Sema.Error (msg, pos) -> Error (of_pos pos msg)
  | exception Failure msg -> Error { message = msg; line = 0; col = 0 }

let compile_exn src =
  match compile src with
  | Ok m -> m
  | Error e ->
      failwith (Printf.sprintf "%d:%d: %s" e.line e.col e.message)
