type binding =
  | Scalar_temp of Ir.temp
  | Local_array of int  (* stack slot id *)
  | Global_scalar of string
  | Global_array of string

type env = {
  mutable scopes : (string, binding) Hashtbl.t list;
  (* (continue target, break target), innermost loop first *)
  mutable loops : (Ir.label * Ir.label) list;
}

let push_scope env = env.scopes <- Hashtbl.create 8 :: env.scopes
let pop_scope env = env.scopes <- List.tl env.scopes

let bind env name b =
  match env.scopes with
  | scope :: _ -> Hashtbl.replace scope name b
  | [] -> assert false

let lookup env name =
  let rec find = function
    | [] -> failwith ("Lower: unresolved name " ^ name)
    | scope :: rest -> (
        match Hashtbl.find_opt scope name with
        | Some b -> b
        | None -> find rest)
  in
  find env.scopes

(* Ensure a block is open before emitting: statements after a return (or
   break/continue) land in a fresh unreachable block that CFG
   simplification later deletes. *)
let ensure_block b =
  if not (Builder.in_block b) then Builder.start_block b (Builder.fresh_label b)

let binop_ir : Ast.binop -> Ir.binop option = function
  | Ast.Add -> Some Ir.Add
  | Ast.Sub -> Some Ir.Sub
  | Ast.Mul -> Some Ir.Mul
  | Ast.Div -> Some Ir.Div
  | Ast.Rem -> Some Ir.Rem
  | Ast.Band -> Some Ir.And
  | Ast.Bor -> Some Ir.Or
  | Ast.Bxor -> Some Ir.Xor
  | Ast.Shl -> Some Ir.Shl
  | Ast.Shr -> Some Ir.Sar (* C's >> on int is arithmetic *)
  | _ -> None

let relop_ir : Ast.binop -> Ir.relop option = function
  | Ast.Eq -> Some Ir.Eq
  | Ast.Ne -> Some Ir.Ne
  | Ast.Lt -> Some Ir.Lt
  | Ast.Le -> Some Ir.Le
  | Ast.Gt -> Some Ir.Gt
  | Ast.Ge -> Some Ir.Ge
  | _ -> None

(* The address of element [idx] of the array bound to [name]:
   base + (idx << 2). *)
let rec element_addr b env name idx =
  let base = Builder.fresh_temp b in
  (match lookup env name with
  | Local_array slot -> Builder.emit b (Ir.Stack_addr (base, slot))
  | Global_array g -> Builder.emit b (Ir.Global_addr (base, g))
  | Scalar_temp _ | Global_scalar _ ->
      failwith ("Lower: " ^ name ^ " is not an array"));
  let iv = lower_expr b env idx in
  let scaled = Builder.fresh_temp b in
  Builder.emit b (Ir.Bin (Ir.Shl, scaled, iv, Ir.Const 2l));
  let addr = Builder.fresh_temp b in
  Builder.emit b (Ir.Bin (Ir.Add, addr, Ir.Temp base, Ir.Temp scaled));
  addr

and lower_expr b env (e : Ast.expr) : Ir.operand =
  match e.desc with
  | Ast.Num v -> Ir.Const v
  | Ast.Var name -> (
      match lookup env name with
      | Scalar_temp t -> Ir.Temp t
      | Global_scalar g ->
          let addr = Builder.fresh_temp b in
          Builder.emit b (Ir.Global_addr (addr, g));
          let v = Builder.fresh_temp b in
          Builder.emit b (Ir.Load (v, Ir.Temp addr));
          Ir.Temp v
      | Local_array _ | Global_array _ ->
          failwith ("Lower: array " ^ name ^ " used as scalar"))
  | Ast.Index (name, idx) ->
      let addr = element_addr b env name idx in
      let v = Builder.fresh_temp b in
      Builder.emit b (Ir.Load (v, Ir.Temp addr));
      Ir.Temp v
  | Ast.Un (Ast.Neg, a) ->
      let va = lower_expr b env a in
      let t = Builder.fresh_temp b in
      Builder.emit b (Ir.Neg (t, va));
      Ir.Temp t
  | Ast.Un (Ast.Bnot, a) ->
      let va = lower_expr b env a in
      let t = Builder.fresh_temp b in
      Builder.emit b (Ir.Not (t, va));
      Ir.Temp t
  | Ast.Un (Ast.Lnot, a) ->
      let va = lower_expr b env a in
      let t = Builder.fresh_temp b in
      Builder.emit b (Ir.Cmp (Ir.Eq, t, va, Ir.Const 0l));
      Ir.Temp t
  | Ast.Bin ((Ast.Land | Ast.Lor), _, _) ->
      (* Value position: materialize 0/1 through the short-circuit
         branch structure. *)
      let t = Builder.fresh_temp b in
      let true_l = Builder.fresh_label b in
      let false_l = Builder.fresh_label b in
      let merge_l = Builder.fresh_label b in
      lower_cond b env e ~if_true:true_l ~if_false:false_l;
      Builder.start_block b true_l;
      Builder.emit b (Ir.Copy (t, Ir.Const 1l));
      Builder.terminate b (Ir.Jmp merge_l);
      Builder.start_block b false_l;
      Builder.emit b (Ir.Copy (t, Ir.Const 0l));
      Builder.terminate b (Ir.Jmp merge_l);
      Builder.start_block b merge_l;
      Ir.Temp t
  | Ast.Bin (op, x, y) -> (
      match (binop_ir op, relop_ir op) with
      | Some irop, _ ->
          let vx = lower_expr b env x in
          let vy = lower_expr b env y in
          let t = Builder.fresh_temp b in
          Builder.emit b (Ir.Bin (irop, t, vx, vy));
          Ir.Temp t
      | None, Some rel ->
          let vx = lower_expr b env x in
          let vy = lower_expr b env y in
          let t = Builder.fresh_temp b in
          Builder.emit b (Ir.Cmp (rel, t, vx, vy));
          Ir.Temp t
      | None, None -> assert false)
  | Ast.Call (name, args) ->
      let vals = List.map (lower_expr b env) args in
      let t = Builder.fresh_temp b in
      Builder.emit b (Ir.Call (Some t, name, vals));
      Ir.Temp t

(* Lower [e] in condition position: seal the current block with a branch
   to [if_true]/[if_false]. *)
and lower_cond b env (e : Ast.expr) ~if_true ~if_false =
  match e.desc with
  | Ast.Bin (Ast.Land, x, y) ->
      let mid = Builder.fresh_label b in
      lower_cond b env x ~if_true:mid ~if_false;
      Builder.start_block b mid;
      lower_cond b env y ~if_true ~if_false
  | Ast.Bin (Ast.Lor, x, y) ->
      let mid = Builder.fresh_label b in
      lower_cond b env x ~if_true ~if_false:mid;
      Builder.start_block b mid;
      lower_cond b env y ~if_true ~if_false
  | Ast.Un (Ast.Lnot, x) ->
      lower_cond b env x ~if_true:if_false ~if_false:if_true
  | Ast.Bin (op, x, y) when relop_ir op <> None ->
      let rel = Option.get (relop_ir op) in
      let vx = lower_expr b env x in
      let vy = lower_expr b env y in
      Builder.terminate b (Ir.Cbr (rel, vx, vy, if_true, if_false))
  | _ ->
      let v = lower_expr b env e in
      Builder.terminate b (Ir.Cbr_nz (v, if_true, if_false))

let rec lower_stmt b env (s : Ast.stmt) =
  ensure_block b;
  match s.sdesc with
  | Ast.Decl (name, None, init) ->
      let v =
        match init with
        | Some e -> lower_expr b env e
        | None -> Ir.Const 0l
      in
      let t = Builder.fresh_temp b in
      Builder.emit b (Ir.Copy (t, v));
      bind env name (Scalar_temp t)
  | Ast.Decl (name, Some n, _) ->
      let slot = Builder.alloc_slot b ~size_words:n in
      bind env name (Local_array slot)
  | Ast.Assign (name, e) -> (
      let v = lower_expr b env e in
      match lookup env name with
      | Scalar_temp t -> Builder.emit b (Ir.Copy (t, v))
      | Global_scalar g ->
          let addr = Builder.fresh_temp b in
          Builder.emit b (Ir.Global_addr (addr, g));
          Builder.emit b (Ir.Store (Ir.Temp addr, v))
      | Local_array _ | Global_array _ ->
          failwith ("Lower: cannot assign to array " ^ name))
  | Ast.Assign_index (name, idx, e) ->
      let addr = element_addr b env name idx in
      let v = lower_expr b env e in
      Builder.emit b (Ir.Store (Ir.Temp addr, v))
  | Ast.If (cond, then_, else_) -> (
      let then_l = Builder.fresh_label b in
      let merge_l = Builder.fresh_label b in
      match else_ with
      | None ->
          lower_cond b env cond ~if_true:then_l ~if_false:merge_l;
          Builder.start_block b then_l;
          lower_stmt_scoped b env then_;
          if Builder.in_block b then Builder.terminate b (Ir.Jmp merge_l);
          Builder.start_block b merge_l
      | Some else_stmt ->
          let else_l = Builder.fresh_label b in
          lower_cond b env cond ~if_true:then_l ~if_false:else_l;
          Builder.start_block b then_l;
          lower_stmt_scoped b env then_;
          if Builder.in_block b then Builder.terminate b (Ir.Jmp merge_l);
          Builder.start_block b else_l;
          lower_stmt_scoped b env else_stmt;
          if Builder.in_block b then Builder.terminate b (Ir.Jmp merge_l);
          Builder.start_block b merge_l)
  | Ast.While (cond, body) ->
      let cond_l = Builder.fresh_label b in
      let body_l = Builder.fresh_label b in
      let exit_l = Builder.fresh_label b in
      Builder.terminate b (Ir.Jmp cond_l);
      Builder.start_block b cond_l;
      lower_cond b env cond ~if_true:body_l ~if_false:exit_l;
      Builder.start_block b body_l;
      env.loops <- (cond_l, exit_l) :: env.loops;
      lower_stmt_scoped b env body;
      env.loops <- List.tl env.loops;
      if Builder.in_block b then Builder.terminate b (Ir.Jmp cond_l);
      Builder.start_block b exit_l
  | Ast.For (init, cond, step, body) ->
      push_scope env;
      Option.iter (lower_stmt b env) init;
      let cond_l = Builder.fresh_label b in
      let body_l = Builder.fresh_label b in
      let step_l = Builder.fresh_label b in
      let exit_l = Builder.fresh_label b in
      Builder.terminate b (Ir.Jmp cond_l);
      Builder.start_block b cond_l;
      (match cond with
      | Some c -> lower_cond b env c ~if_true:body_l ~if_false:exit_l
      | None -> Builder.terminate b (Ir.Jmp body_l));
      Builder.start_block b body_l;
      env.loops <- (step_l, exit_l) :: env.loops;
      lower_stmt_scoped b env body;
      env.loops <- List.tl env.loops;
      if Builder.in_block b then Builder.terminate b (Ir.Jmp step_l);
      Builder.start_block b step_l;
      Option.iter (lower_stmt b env) step;
      if Builder.in_block b then Builder.terminate b (Ir.Jmp cond_l);
      pop_scope env;
      Builder.start_block b exit_l
  | Ast.Return e ->
      let v = Option.map (lower_expr b env) e in
      Builder.terminate b (Ir.Ret v)
  | Ast.Break -> (
      match env.loops with
      | (_, break_l) :: _ -> Builder.terminate b (Ir.Jmp break_l)
      | [] -> failwith "Lower: break outside loop")
  | Ast.Continue -> (
      match env.loops with
      | (continue_l, _) :: _ -> Builder.terminate b (Ir.Jmp continue_l)
      | [] -> failwith "Lower: continue outside loop")
  | Ast.Expr { desc = Ast.Call (name, args); _ } ->
      (* Call in statement position: discard the result. *)
      let vals = List.map (lower_expr b env) args in
      Builder.emit b (Ir.Call (None, name, vals))
  | Ast.Expr e -> ignore (lower_expr b env e)
  | Ast.Block stmts ->
      push_scope env;
      List.iter (lower_stmt b env) stmts;
      pop_scope env

and lower_stmt_scoped b env s =
  push_scope env;
  lower_stmt b env s;
  pop_scope env

let lower_func global_scope (f : Ast.func) =
  let b = Builder.create ~name:f.fname ~n_params:(List.length f.fparams) in
  let env = { scopes = [ global_scope ]; loops = [] } in
  push_scope env;
  List.iteri
    (fun i name -> bind env name (Scalar_temp (List.nth (Builder.params b) i)))
    f.fparams;
  List.iter (lower_stmt b env) f.fbody;
  (* Fall off the end: implicit return 0. *)
  if Builder.in_block b then Builder.terminate b (Ir.Ret (Some (Ir.Const 0l)));
  Builder.finish b

let program (prog : Ast.program) =
  let global_scope = Hashtbl.create 16 in
  List.iter
    (fun (g : Ast.global) ->
      Hashtbl.replace global_scope g.gname
        (if g.garray then Global_array g.gname else Global_scalar g.gname))
    prog.globals;
  let globals =
    List.map
      (fun (g : Ast.global) ->
        {
          Ir.gname = g.gname;
          size_words = g.gsize;
          init = Option.map Array.of_list g.ginit;
        })
      prog.globals
  in
  let funcs = List.map (lower_func global_scope) prog.funcs in
  { Ir.funcs; globals }
