(** Lowering from the MiniC AST to the IR.

    Scalars (parameters and local [int]s) become IR temps; local arrays
    become stack slots; globals become module globals accessed through
    address/load/store instructions.  Short-circuit [&&]/[||] lower to
    control flow, both in condition position (into the branch structure)
    and in value position (via a 0/1 merge temp), so side effects in the
    right operand are correctly skipped.

    The input must have passed {!Sema.check}; lowering resolves names
    under the same scope rules. *)

val program : Ast.program -> Ir.modul
(** Lower a checked program.  Every function ends with an implicit
    [return 0] on paths that fall off the end. *)
