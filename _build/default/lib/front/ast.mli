(** Abstract syntax of MiniC.

    MiniC is the integer subset of C this system compiles: 32-bit [int]
    scalars and fixed-size [int] arrays (global or local), functions,
    structured control flow, and the three runtime builtins
    ([print_int], [put_char], [exit]).  It is deliberately small but
    expressive enough to write real workload kernels — compression,
    graph search, simulation, interpreters — with the hot-loop/cold-path
    structure the paper's evaluation depends on. *)

type pos = { line : int; col : int } [@@deriving eq, show]

type binop =
  | Add | Sub | Mul | Div | Rem
  | Band | Bor | Bxor | Shl | Shr
  | Eq | Ne | Lt | Le | Gt | Ge
  | Land | Lor  (** short-circuit logical and/or *)
[@@deriving eq, show]

type unop = Neg | Lnot  (** logical not *) | Bnot  (** bitwise not *)
[@@deriving eq, show]

type expr = { desc : expr_desc; pos : pos } [@@deriving eq, show]

and expr_desc =
  | Num of int32
  | Var of string
  | Index of string * expr  (** [a\[i\]] *)
  | Bin of binop * expr * expr
  | Un of unop * expr
  | Call of string * expr list
[@@deriving eq, show]

type stmt = { sdesc : stmt_desc; spos : pos } [@@deriving eq, show]

and stmt_desc =
  | Decl of string * int option * expr option
      (** [int x;] / [int a\[n\];] / [int x = e;] *)
  | Assign of string * expr
  | Assign_index of string * expr * expr  (** [a\[i\] = e] *)
  | If of expr * stmt * stmt option
  | While of expr * stmt
  | For of stmt option * expr option * stmt option * stmt
      (** init and step are restricted to assignments/decls by the
          parser *)
  | Return of expr option
  | Break
  | Continue
  | Expr of expr  (** expression statement, e.g. a call *)
  | Block of stmt list
[@@deriving eq, show]

type func = {
  fname : string;
  fparams : string list;
  fbody : stmt list;
  fpos : pos;
}
[@@deriving eq, show]

type global = {
  gname : string;
  gsize : int;  (** 1 for scalars *)
  garray : bool;  (** declared with brackets; a 1-element array is not a scalar *)
  ginit : int32 list option;
  gpos : pos;
}
[@@deriving eq, show]

type program = { globals : global list; funcs : func list }
[@@deriving eq, show]
