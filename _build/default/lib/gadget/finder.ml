type t = { offset : int; insns : Insn.t list; bytes : string }

let pp ppf g =
  Format.fprintf ppf "@[<h>0x%x: %a@]" g.offset
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ; ")
       Insn.pp)
    g.insns

type params = { max_insns : int; max_back_bytes : int }

let default_params = { max_insns = 8; max_back_bytes = 30 }

let free_branch_sites text =
  let sites = ref [] in
  for pos = String.length text - 1 downto 0 do
    match Decode.insn ~pos text with
    | Some (i, len) when Insn.is_free_branch i -> sites := (pos, len) :: !sites
    | _ -> ()
  done;
  !sites

(* Does the sequence starting at [start] decode into straight-line code
   ending exactly with the free branch at [branch] (of length
   [branch_len])?  Returns the instructions on success. *)
(* Software interrupts do not break the straight-line property: execution
   resumes at the next instruction, and "int 0x80; ret" is the canonical
   syscall gadget every scanner looks for. *)
let breaks_gadget i =
  Insn.is_control_flow i && (match i with Insn.Int _ -> false | _ -> true)

let sequence_into text ~params ~start ~branch ~branch_len =
  let rec walk pos n acc =
    if pos = branch then
      match Decode.insn ~pos text with
      | Some (i, _) when Insn.is_free_branch i -> Some (List.rev (i :: acc))
      | _ -> None
    else if pos > branch || n > params.max_insns then None
    else
      match Decode.insn ~pos text with
      | Some (i, len) when not (breaks_gadget i) ->
          walk (pos + len) (n + 1) (i :: acc)
      | _ -> None
  in
  if start = branch then
    (* The branch alone is a (degenerate) one-instruction gadget. *)
    match Decode.insn ~pos:branch text with
    | Some (i, len) when Insn.is_free_branch i && len = branch_len ->
        Some [ i ]
    | _ -> None
  else
    (* Start at 2: the free branch itself occupies one of the
       [max_insns] positions. *)
    walk start 2 []

let scan ?(params = default_params) text =
  let sites = free_branch_sites text in
  (* For each start offset keep the gadget into the nearest branch. *)
  let found = Hashtbl.create 256 in
  List.iter
    (fun (branch, branch_len) ->
      let lo = max 0 (branch - params.max_back_bytes) in
      for start = lo to branch do
        if not (Hashtbl.mem found start) then
          match sequence_into text ~params ~start ~branch ~branch_len with
          | Some insns ->
              let bytes = String.sub text start (branch + branch_len - start) in
              Hashtbl.replace found start { offset = start; insns; bytes }
          | None -> ()
      done)
    sites;
  Hashtbl.fold (fun _ g acc -> g :: acc) found []
  |> List.sort (fun a b -> compare a.offset b.offset)

let count ?params text = List.length (scan ?params text)
