type outcome = { baseline_gadgets : int; surviving : int }

let normalize insns = Nops.strip insns

(* Decode a straight-line free-branch-terminated sequence at a fixed
   offset of the diversified section, mirroring the finder's validity
   rule.  The diversified sequence may be longer than the original's
   (inserted NOPs), so search within the scanner depth. *)
let sequence_at ?(params = Finder.default_params) text offset =
  let rec walk pos n acc =
    if n > params.max_insns + params.max_back_bytes then None
    else
      match Decode.insn ~pos text with
      | Some (i, len) ->
          if Insn.is_free_branch i then Some (List.rev (i :: acc))
          else if Finder.breaks_gadget i then None
          else if pos + len - offset > params.max_back_bytes + 1 then None
          else walk (pos + len) (n + 1) (i :: acc)
      | None -> None
  in
  walk offset 1 []

let survivors ?params ~original ~diversified () =
  let gadgets = Finder.scan ?params original in
  List.filter
    (fun (g : Finder.t) ->
      match sequence_at ?params diversified g.offset with
      | None -> false
      | Some div_insns ->
          (* Normalizing both sides may only increase similarity — the
             deliberate overestimate. *)
          let a = normalize g.insns and b = normalize div_insns in
          a <> [] && List.equal Insn.equal a b)
    gadgets

let compare_sections ?params ~original ~diversified () =
  let baseline = Finder.scan ?params original in
  let surviving =
    List.length (survivors ?params ~original ~diversified ())
  in
  { baseline_gadgets = List.length baseline; surviving }

let surviving_offsets ?params ~original ~diversified () =
  List.map
    (fun (g : Finder.t) -> g.offset)
    (survivors ?params ~original ~diversified ())
