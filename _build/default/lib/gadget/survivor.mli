(** The Survivor comparison algorithm (paper §5.2).

    Given the [.text] of an original binary and of a diversified binary,
    count the gadgets that remain {e functionally equivalent at the same
    section offset}.  For each candidate pair — two valid straight-line
    sequences at identical offsets, each ending in a free branch — both
    sequences are normalized by deleting every potentially-inserted NOP
    (Table 1 candidates), then compared.  Deleting NOPs can only make the
    sequences more alike, so the count conservatively {e overestimates}
    survival, exactly as the paper argues.

    Offsets, not absolute addresses, are compared, which makes the
    analysis independent of ASLR-style base randomization. *)

type outcome = {
  baseline_gadgets : int;  (** gadgets in the original section *)
  surviving : int;  (** candidates equal after normalization *)
}

val normalize : Insn.t list -> Insn.t list
(** Strip every Table-1 NOP candidate. *)

val compare_sections :
  ?params:Finder.params -> original:string -> diversified:string -> unit -> outcome

val surviving_offsets :
  ?params:Finder.params ->
  original:string ->
  diversified:string ->
  unit ->
  int list
(** The offsets of the surviving gadgets (for attack-surface analysis on
    the surviving set). *)
