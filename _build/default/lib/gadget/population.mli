(** Population survival analysis — paper Table 3.

    An attacker content to compromise a {e subset} of targets looks for
    gadgets common to as many diversified versions as possible, ignoring
    the original binary.  The unit of agreement is the pair
    (offset, normalized instruction sequence): the same logical gadget
    displaced to different offsets in different versions counts once per
    offset, which is why the paper observes {e more} gadgets in "≥2 of
    25" than in the original. *)

type report = {
  population : int;  (** number of versions analyzed *)
  at_least : (int * int) list;
      (** (k, number of (offset, gadget) pairs present in ≥ k versions) *)
}

val analyze :
  ?params:Finder.params -> thresholds:int list -> string list -> report
(** [analyze ~thresholds sections] scans every version's [.text] and
    counts, for each threshold [k], the distinct (offset, normalized
    sequence) pairs appearing in at least [k] versions. *)
