lib/gadget/finder.pp.mli: Format Insn
