lib/gadget/attack.pp.mli: Finder Insn Ppx_deriving_runtime
