lib/gadget/finder.pp.ml: Decode Format Hashtbl Insn List String
