lib/gadget/survivor.pp.ml: Decode Finder Insn List Nops
