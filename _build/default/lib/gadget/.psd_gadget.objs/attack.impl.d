lib/gadget/attack.pp.ml: Finder Hashtbl Insn List Option Ppx_deriving_runtime Reg String
