lib/gadget/population.pp.mli: Finder
