lib/gadget/survivor.pp.mli: Finder Insn
