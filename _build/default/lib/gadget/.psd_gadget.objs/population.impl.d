lib/gadget/population.pp.ml: Finder Hashtbl Insn List Option String Survivor
