type gadget_class =
  | Load_const
  | Mem_read
  | Mem_write
  | Arith
  | Move
  | Stack_pivot
  | Syscall
[@@deriving show]

(* A gadget is useful for a class when one of its non-branch instructions
   performs the operation and no later instruction clobbers the effect in
   an obviously fatal way.  Like real scanners we classify optimistically:
   the attacker can often tolerate side effects. *)
let classify (insns : Insn.t list) : gadget_class list =
  let classes = ref [] in
  let add c = if not (List.mem c !classes) then classes := c :: !classes in
  List.iter
    (fun (i : Insn.t) ->
      match i with
      | Insn.Pop_r r -> if Reg.equal r Reg.ESP then add Stack_pivot else add Load_const
      | Insn.Mov_r_rm (_, Insn.Mem _) -> add Mem_read
      | Insn.Mov_rm_r (Insn.Mem _, _) -> add Mem_write
      | Insn.Mov_rm_imm (Insn.Mem _, _) -> add Mem_write
      | Insn.Mov_rm_r (Insn.Reg d, _) ->
          if Reg.equal d Reg.ESP then add Stack_pivot else add Move
      | Insn.Mov_r_rm (d, Insn.Reg _) ->
          if Reg.equal d Reg.ESP then add Stack_pivot else add Move
      | Insn.Alu_rm_r (op, Insn.Reg d, _)
      | Insn.Alu_r_rm (op, d, Insn.Reg _) -> (
          match op with
          | Insn.Cmp -> ()
          | _ -> if Reg.equal d Reg.ESP then add Stack_pivot else add Arith)
      | Insn.Alu_rm_imm (op, Insn.Reg d, _) -> (
          match op with
          | Insn.Cmp -> ()
          | _ -> if Reg.equal d Reg.ESP then add Stack_pivot else add Arith)
      | Insn.Alu_rm_r (op, Insn.Mem _, _) | Insn.Alu_rm_imm (op, Insn.Mem _, _)
        -> (
          match op with Insn.Cmp -> () | _ -> add Mem_write)
      | Insn.Alu_r_rm (op, _, Insn.Mem _) -> (
          match op with Insn.Cmp -> () | _ -> add Mem_read)
      | Insn.Inc_r r | Insn.Dec_r r ->
          if Reg.equal r Reg.ESP then add Stack_pivot else add Arith
      | Insn.Neg (Insn.Reg _) | Insn.Not (Insn.Reg _) -> add Arith
      | Insn.Imul_r_rm _ | Insn.Mul _ | Insn.Idiv _ -> add Arith
      | Insn.Shift_imm (_, Insn.Reg _, _) | Insn.Shift_cl (_, Insn.Reg _) ->
          add Arith
      | Insn.Xchg_rm_r (Insn.Reg a, b) ->
          if Reg.equal a b then () (* a pure NOP *)
          else if Reg.equal a Reg.ESP || Reg.equal b Reg.ESP then
            add Stack_pivot
          else add Move
      | Insn.Xchg_rm_r (Insn.Mem _, _) ->
          add Mem_read;
          add Mem_write
      | Insn.Int 0x80 -> add Syscall
      | Insn.Lea (d, _) -> if Reg.equal d Reg.ESP then add Stack_pivot else add Arith
      | Insn.Movzx_r_r8 _ | Insn.Setcc _ -> add Move
      | _ -> ())
    insns;
  List.rev !classes

type scanner = Ropgadget | Microgadgets

let scanner_name = function
  | Ropgadget -> "ROPgadget"
  | Microgadgets -> "microgadgets"

let micro_max_bytes = 3

let scan scanner text =
  match scanner with
  | Ropgadget -> Finder.scan text
  | Microgadgets ->
      (* Microgadgets: sequences of at most 2-3 bytes in total, i.e. one
         very short instruction plus the return. *)
      let all =
        Finder.scan
          ~params:{ Finder.max_insns = 2; max_back_bytes = micro_max_bytes }
          text
      in
      List.filter
        (fun (g : Finder.t) -> String.length g.bytes <= micro_max_bytes + 1)
        all

type verdict = {
  scanner : scanner;
  classes_found : (gadget_class * int) list;
  missing : gadget_class list;
  feasible : bool;
}

let required = [ Load_const; Mem_write; Arith; Syscall ]

let attack_on_gadgets scanner gadgets =
  let tally = Hashtbl.create 8 in
  List.iter
    (fun (g : Finder.t) ->
      List.iter
        (fun c ->
          let old = Option.value (Hashtbl.find_opt tally c) ~default:0 in
          Hashtbl.replace tally c (old + 1))
        (classify g.insns))
    gadgets;
  let classes_found = Hashtbl.fold (fun c n acc -> (c, n) :: acc) tally [] in
  let missing =
    List.filter (fun c -> not (Hashtbl.mem tally c)) required
  in
  { scanner; classes_found; missing; feasible = missing = [] }

let attack scanner text = attack_on_gadgets scanner (scan scanner text)
