(** Attack construction against a gadget set (paper §5.2, PHP case study).

    The paper verifies diversification by running two independent gadget
    scanners against the target and asking whether the gadgets they find
    still provide the operations a real payload needs.  We reproduce that
    check with a semantic classifier: each gadget is sorted into the
    operation classes of the ROP virtual machine, and an attack is deemed
    feasible when every {e required} class is populated.

    Required classes for the canonical "write payload, then invoke the
    system" attack: load-constant (e.g. [pop r; ret]), memory-write
    (e.g. [mov \[r\], r'; ret]), arithmetic, and syscall
    ([int 0x80] reachable inside a gadget). *)

type gadget_class =
  | Load_const  (** pop into a register *)
  | Mem_read  (** load from memory into a register *)
  | Mem_write  (** store a register to memory *)
  | Arith  (** register arithmetic (add/sub/xor/...) *)
  | Move  (** register-to-register transfer *)
  | Stack_pivot  (** ESP manipulation *)
  | Syscall  (** reaches INT 0x80 *)
[@@deriving show]

val classify : Insn.t list -> gadget_class list
(** All classes a single gadget provides (possibly several; often
    none). *)

type scanner = Ropgadget | Microgadgets

val scanner_name : scanner -> string

val scan : scanner -> string -> Finder.t list
(** The two scanners of the paper: [Ropgadget] uses conventional depth
    (5 instructions / 20 bytes); [Microgadgets] keeps only gadgets of at
    most 2–3 bytes total, which are far more numerous in ordinary code
    than long gadgets. *)

type verdict = {
  scanner : scanner;
  classes_found : (gadget_class * int) list;  (** class -> gadget count *)
  missing : gadget_class list;  (** required classes not found *)
  feasible : bool;
}

val required : gadget_class list

val attack : scanner -> string -> verdict
(** Scan a [.text] section and judge feasibility. *)

val attack_on_gadgets : scanner -> Finder.t list -> verdict
(** Judge feasibility of a pre-restricted gadget set (e.g. only the
    gadgets that survived diversification). *)
