type report = { population : int; at_least : (int * int) list }

let analyze ?params ~thresholds sections =
  (* How many versions contain each (offset, normalized bytes) pair?  The
     normalized sequence is keyed by its rendering, which is injective
     enough for machine instructions and avoids a polymorphic-compare
     hash of the AST. *)
  let counts : (int * string, int) Hashtbl.t = Hashtbl.create 1024 in
  List.iter
    (fun text ->
      let gadgets = Finder.scan ?params text in
      (* Within one version, count each pair once. *)
      let seen = Hashtbl.create 256 in
      List.iter
        (fun (g : Finder.t) ->
          let normalized = Survivor.normalize g.insns in
          if normalized <> [] then begin
            let key =
              ( g.offset,
                String.concat ";" (List.map Insn.to_string normalized) )
            in
            if not (Hashtbl.mem seen key) then begin
              Hashtbl.replace seen key ();
              let old = Option.value (Hashtbl.find_opt counts key) ~default:0 in
              Hashtbl.replace counts key (old + 1)
            end
          end)
        gadgets)
    sections;
  let at_least =
    List.map
      (fun k ->
        let n =
          Hashtbl.fold (fun _ c acc -> if c >= k then acc + 1 else acc) counts 0
        in
        (k, n))
      thresholds
  in
  { population = List.length sections; at_least }
