(** ROP gadget discovery over a [.text] section.

    A gadget is an instruction sequence that (i) starts at {e any} byte
    offset — including offsets inside intended instructions, which is
    where most gadgets hide (paper Figure 2), (ii) decodes to valid
    straight-line code with no control flow in the middle, and (iii) ends
    in a {e free branch}: [RET], [RET imm16], an indirect [CALL], or an
    indirect [JMP].

    This models the scanning strategy of ROPgadget-class tools: walk
    backward from every free-branch byte pattern, keeping every prefix
    start that decodes cleanly into the branch. *)

type t = {
  offset : int;  (** start offset of the sequence within the section *)
  insns : Insn.t list;  (** decoded instructions, free branch last *)
  bytes : string;  (** raw bytes of the sequence *)
}

val pp : Format.formatter -> t -> unit

type params = {
  max_insns : int;  (** maximum instructions per gadget, branch included *)
  max_back_bytes : int;  (** how far before the branch to try starts *)
}

val default_params : params
(** 8 instructions, 30 bytes — comparable to ROPgadget's default search
    depth. *)

val breaks_gadget : Insn.t -> bool
(** Control flow that may not appear inside a gadget body.  Software
    interrupts are allowed: execution falls through them, and
    [int 0x80; ret] is the canonical syscall gadget. *)

val free_branch_sites : string -> (int * int) list
(** Offsets (and lengths) of every decodable free-branch instruction in
    the section, at any alignment. *)

val scan : ?params:params -> string -> t list
(** All gadgets in a section, sorted by offset; at most one gadget per
    start offset (the shortest ending in the nearest free branch). *)

val count : ?params:params -> string -> int
(** [List.length (scan s)] without keeping the gadgets. *)
