(** Optimal edge-counter placement (Knuth; Ball & Larus; the scheme behind
    LLVM's profiling instrumentation that the paper builds on, §3.1/§4).

    Counters are needed only on the edges {e not} in a spanning tree of
    the CFG (extended with a virtual edge from a synthetic exit node back
    to the entry): the flow-conservation equations — every block's inflow
    equals its outflow — then determine every uninstrumented edge count
    exactly.  Choosing a {e maximum} spanning tree under (estimated or
    measured) edge frequencies puts the counters on the coldest edges,
    minimizing instrumentation overhead.

    The virtual exit node is represented by the label {!exit_label}. *)

val exit_label : Ir.label
(** -1; never a real block label. *)

type edge = Ir.label * Ir.label

type placement = {
  func : string;
  edges : edge list;  (** every edge of the extended CFG *)
  tree : edge list;  (** spanning-tree edges (no counters) *)
  instrumented : edge list;  (** edges that receive counters *)
}

val place : ?weights:(edge -> int64) -> Ir.func -> placement
(** Compute the placement.  [weights] orders edges for the maximum
    spanning tree (measured frequencies when available); the default is
    uniform, which still yields a valid (if not overhead-optimal)
    placement. *)

val reconstruct :
  placement -> measured:(edge -> int64) -> (edge * int64) list
(** Given counter values for the instrumented edges only, solve the flow
    equations and return counts for {e every} edge.  Raises [Failure] if
    the system is not solvable (which would indicate a non-tree
    structure — a bug). *)

val block_counts_of_edges :
  Ir.func -> (edge * int64) list -> (Ir.label * int64) list
(** Per-block execution counts: the inflow of each block (the entry's
    inflow arrives via the virtual exit-to-entry edge). *)
