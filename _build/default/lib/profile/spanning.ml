let exit_label : Ir.label = -1

type edge = Ir.label * Ir.label

type placement = {
  func : string;
  edges : edge list;
  tree : edge list;
  instrumented : edge list;
}

(* The extended CFG: all intra-function edges, one edge to the virtual
   exit per returning block, and the virtual exit->entry edge that carries
   the invocation count. *)
let extended_edges (f : Ir.func) : edge list =
  let cfg = Cfg.of_func f in
  let real = Cfg.edges cfg in
  let exits =
    List.filter_map
      (fun (b : Ir.block) ->
        match b.term with
        | Ir.Ret _ -> Some (b.label, exit_label)
        | _ -> None)
      f.blocks
  in
  ((exit_label, Cfg.entry cfg) :: real) @ exits

(* Union-find for Kruskal. *)
let find parent x =
  let rec go x = if parent.(x) = x then x else go parent.(x) in
  go x

let union parent a b =
  let ra = find parent a and rb = find parent b in
  if ra = rb then false
  else begin
    parent.(ra) <- rb;
    true
  end

let place ?(weights = fun _ -> 1L) (f : Ir.func) =
  let edges = extended_edges f in
  (* Map labels (including -1) to dense indices. *)
  let nodes =
    List.sort_uniq compare
      (List.concat_map (fun (a, b) -> [ a; b ]) edges)
  in
  let index = Hashtbl.create 16 in
  List.iteri (fun i l -> Hashtbl.replace index l i) nodes;
  let parent = Array.init (List.length nodes) Fun.id in
  (* Maximum spanning tree: sort by weight, heaviest first; ties broken by
     edge order for determinism. *)
  let weighted = List.map (fun e -> (weights e, e)) edges in
  let sorted =
    List.sort (fun (wa, ea) (wb, eb) -> compare (wb, ea) (wa, eb)) weighted
  in
  let tree =
    List.filter_map
      (fun (_, (a, b)) ->
        if union parent (Hashtbl.find index a) (Hashtbl.find index b) then
          Some (a, b)
        else None)
      sorted
  in
  let instrumented = List.filter (fun e -> not (List.mem e tree)) edges in
  { func = f.name; edges; tree; instrumented }

let reconstruct (p : placement) ~measured =
  let known : (edge, int64) Hashtbl.t = Hashtbl.create 32 in
  List.iter (fun e -> Hashtbl.replace known e (measured e)) p.instrumented;
  (* Incidence lists over all extended edges. *)
  let nodes =
    List.sort_uniq compare (List.concat_map (fun (a, b) -> [ a; b ]) p.edges)
  in
  let incident n =
    List.filter (fun (a, b) -> a = n || b = n) p.edges
  in
  (* Worklist: repeatedly find a node with exactly one unknown incident
     edge; flow conservation (inflow = outflow) determines it. *)
  let remaining = ref (List.length p.tree) in
  let progress = ref true in
  while !remaining > 0 && !progress do
    progress := false;
    List.iter
      (fun n ->
        let inc = incident n in
        let unknown = List.filter (fun e -> not (Hashtbl.mem known e)) inc in
        match unknown with
        | [ ((a, b) as e) ] ->
            (* inflow(n) - outflow(n) = 0; solve for e. *)
            let signed (src, dst) v =
              (* +v if the edge enters n, -v if it leaves n.  A self loop
                 contributes zero and cannot be the unknown (a self loop
                 is never a tree edge). *)
              if dst = n && src <> n then v
              else if src = n && dst <> n then Int64.neg v
              else 0L
            in
            let balance =
              List.fold_left
                (fun acc e' ->
                  if e' = e then acc
                  else Int64.add acc (signed e' (Hashtbl.find known e')))
                0L inc
            in
            (* balance + signed(e) * count = 0 *)
            let count = if b = n && a <> n then Int64.neg balance else balance in
            if Int64.compare count 0L < 0 then
              failwith
                (Printf.sprintf
                   "Spanning.reconstruct: negative flow on (%d,%d) in %s" a b
                   p.func);
            Hashtbl.replace known e count;
            decr remaining;
            progress := true
        | _ -> ())
      nodes
  done;
  if !remaining > 0 then
    failwith ("Spanning.reconstruct: unsolvable system in " ^ p.func);
  List.map (fun e -> (e, Hashtbl.find known e)) p.edges

let block_counts_of_edges (f : Ir.func) (edge_counts : (edge * int64) list) =
  List.map
    (fun (b : Ir.block) ->
      let inflow =
        List.fold_left
          (fun acc ((_, dst), v) ->
            if dst = b.label then Int64.add acc v else acc)
          0L edge_counts
      in
      (b.label, inflow))
    f.blocks
