lib/profile/spanning.mli: Ir
