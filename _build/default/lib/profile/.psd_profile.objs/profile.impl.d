lib/profile/profile.ml: Hashtbl Int64 Interp Ir List Option Printf Stats String
