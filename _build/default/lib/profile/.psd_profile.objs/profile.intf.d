lib/profile/profile.mli: Hashtbl Ir
