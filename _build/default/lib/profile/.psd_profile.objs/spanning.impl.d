lib/profile/spanning.ml: Array Cfg Fun Hashtbl Int64 Ir List Printf
