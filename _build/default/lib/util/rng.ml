type t = { mutable state : int64 }

(* SplitMix64 constants (Steele, Lea & Flood, OOPSLA 2014). *)
let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create seed = { state = seed }
let copy t = { state = t.state }

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let s = next_int64 t in
  (* Mix once more so the child stream starts far from the parent's. *)
  { state = mix64 s }

(* FNV-1a over the label bytes, folded into the seed.  Good enough to give
   independent SplitMix64 starting points; we only need collision
   resistance across the handful of labels a build uses. *)
let fnv1a64 init s =
  let h = ref init in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001B3L)
    s;
  !h

let of_labels seed labels =
  let h =
    List.fold_left
      (fun acc label ->
        (* Separate labels with an out-of-band byte so ["ab";"c"] and
           ["a";"bc"] hash differently. *)
        fnv1a64 (Int64.add acc 0xFFL) label)
      (mix64 seed) labels
  in
  create (mix64 h)

let bits t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 34)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  if bound > 1 lsl 29 then invalid_arg "Rng.int: bound too large";
  (* Rejection sampling for exact uniformity. *)
  let mask = (1 lsl 30) - 1 in
  let limit = mask / bound * bound in
  let rec loop () =
    let r = bits t in
    if r < limit then r mod bound else loop ()
  in
  loop ()

let float t bound =
  (* 53 random bits scaled into [0,1), then into [0,bound). *)
  let r53 = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  r53 /. 9007199254740992.0 *. bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

let bernoulli t p =
  if p <= 0.0 then false
  else if p >= 1.0 then true
  else float t 1.0 < p

let choose t arr =
  if Array.length arr = 0 then invalid_arg "Rng.choose: empty array";
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
