let mean = function
  | [] -> nan
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let geomean = function
  | [] -> nan
  | xs ->
      let log_sum =
        List.fold_left
          (fun acc x ->
            if x <= 0.0 then invalid_arg "Stats.geomean: non-positive value";
            acc +. log x)
          0.0 xs
      in
      exp (log_sum /. float_of_int (List.length xs))

let geomean_ratio = geomean

let sorted xs = List.sort compare xs

let median xs =
  match sorted xs with
  | [] -> nan
  | s ->
      let a = Array.of_list s in
      let n = Array.length a in
      if n mod 2 = 1 then a.(n / 2) else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.0

let percentile p xs =
  match sorted xs with
  | [] -> nan
  | s ->
      let a = Array.of_list s in
      let n = Array.length a in
      if n = 1 then a.(0)
      else
        let rank = p /. 100.0 *. float_of_int (n - 1) in
        let lo = int_of_float (Float.floor rank) in
        let hi = min (lo + 1) (n - 1) in
        let frac = rank -. float_of_int lo in
        (a.(lo) *. (1.0 -. frac)) +. (a.(hi) *. frac)

let stddev xs =
  let n = List.length xs in
  if n < 2 then 0.0
  else
    let m = mean xs in
    let ss = List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs in
    sqrt (ss /. float_of_int (n - 1))

let min_max = function
  | [] -> invalid_arg "Stats.min_max: empty list"
  | x :: rest ->
      List.fold_left (fun (lo, hi) v -> (min lo v, max hi v)) (x, x) rest

let histogram ~bins xs =
  if bins <= 0 then invalid_arg "Stats.histogram: bins must be positive";
  match xs with
  | [] -> invalid_arg "Stats.histogram: empty list"
  | _ ->
      let lo, hi = min_max xs in
      let width = if hi > lo then (hi -. lo) /. float_of_int bins else 1.0 in
      let counts = Array.make bins 0 in
      List.iter
        (fun x ->
          let i = int_of_float ((x -. lo) /. width) in
          let i = if i >= bins then bins - 1 else if i < 0 then 0 else i in
          counts.(i) <- counts.(i) + 1)
        xs;
      Array.mapi
        (fun i c ->
          let blo = lo +. (float_of_int i *. width) in
          (blo, blo +. width, c))
        counts
