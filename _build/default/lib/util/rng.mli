(** Deterministic pseudo-random number generation for diversification.

    Every diversified program version must be reproducible from a seed, and
    versions of the same program must be statistically independent.  We use
    SplitMix64 (Steele, Lea & Flood, OOPSLA 2014): a tiny, well-mixed,
    splittable generator whose state is a single [int64].  The compiler
    derives one independent stream per (program, configuration, version)
    triple via {!val:split} and {!val:of_labels}. *)

type t
(** Mutable generator state. *)

val create : int64 -> t
(** [create seed] makes a fresh generator.  Equal seeds yield equal
    streams. *)

val copy : t -> t
(** [copy t] duplicates the current state; the copy evolves
    independently. *)

val split : t -> t
(** [split t] draws from [t] and returns a new generator whose stream is
    statistically independent of the remainder of [t]'s stream. *)

val of_labels : int64 -> string list -> t
(** [of_labels seed labels] derives a generator from a base seed and a list
    of textual labels (e.g. benchmark name, configuration name, version
    index).  Distinct label lists give independent streams; the derivation
    is stable across runs and platforms. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val bits : t -> int
(** 30 uniformly random bits, as a non-negative [int]. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  [bound] must be positive.
    Uses rejection sampling, so the result is exactly uniform. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** A fair coin. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p].  [p] outside [0;1] is
    clamped. *)

val choose : t -> 'a array -> 'a
(** [choose t arr] picks a uniformly random element.  Raises
    [Invalid_argument] on an empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
