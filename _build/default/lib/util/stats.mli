(** Small statistics toolkit used by the evaluation harness.

    The paper reports averages over repeated randomized builds, geometric
    means across benchmarks, and medians of execution-count distributions;
    these helpers centralize those computations. *)

val mean : float list -> float
(** Arithmetic mean.  [nan] on the empty list. *)

val geomean : float list -> float
(** Geometric mean of positive values.  [nan] on the empty list; raises
    [Invalid_argument] if any value is non-positive. *)

val geomean_ratio : float list -> float
(** Geometric mean suited to slowdown factors that may dip slightly below
    zero overhead: values are ratios (e.g. 1.013 = 1.3% slowdown) and must
    be positive. Alias of {!geomean} with a clearer call-site name. *)

val median : float list -> float
(** Median (average of the two central elements for even lengths).  [nan]
    on the empty list. *)

val percentile : float -> float list -> float
(** [percentile p xs] for [p] in [0;100], nearest-rank with linear
    interpolation.  [nan] on the empty list. *)

val stddev : float list -> float
(** Sample standard deviation (n-1 denominator); [0.] for lists shorter
    than 2. *)

val min_max : float list -> float * float
(** Smallest and largest element.  Raises [Invalid_argument] on []. *)

val histogram : bins:int -> float list -> (float * float * int) array
(** [histogram ~bins xs] buckets [xs] into [bins] equal-width bins over
    [min;max]; each cell is (lo, hi, count).  Raises on [] or [bins <= 0]. *)
