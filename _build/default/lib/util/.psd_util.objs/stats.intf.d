lib/util/stats.mli:
