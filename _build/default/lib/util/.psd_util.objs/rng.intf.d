lib/util/rng.mli:
