(* 464.h264ref analogue: motion estimation plus residual coding.  SAD
   block search of a "current" frame against a reference over a search
   window, then a 4x4 integer transform, quantization and zig-zag
   run-length cost of each best residual — the encoder's two hot
   kernels. *)

let workload =
  {
    Workload.name = "464.h264ref";
    description = "SAD motion search + 4x4 transform/quantize/RL coding";
    train_args = [ 68l; 1l ];
    ref_args = [ 67l; 1l ];
    source =
      Workload.prng_helpers
      ^ {|
  global int cur[4096];   // 64 x 64 current frame
  global int refr[4096];  // 64 x 64 reference frame
  global int best_rx;
  global int best_ry;

  int sad8(int cx, int cy, int rx, int ry) {
    int acc = 0;
    for (int y = 0; y < 8; y = y + 1) {
      int crow = (cy + y) * 64 + cx;
      int rrow = (ry + y) * 64 + rx;
      for (int x = 0; x < 8; x = x + 1) {
        int d = cur[crow + x] - refr[rrow + x];
        if (d < 0) d = 0 - d;
        acc = acc + d;
      }
    }
    return acc;
  }

  int best_match(int cx, int cy) {
    int best = 1000000000;
    best_rx = cx;
    best_ry = cy;
    // +/- 3 pixel search window, clamped to the frame
    for (int dy = 0 - 3; dy <= 3; dy = dy + 1) {
      for (int dx = 0 - 3; dx <= 3; dx = dx + 1) {
        int rx = cx + dx;
        int ry = cy + dy;
        if (rx >= 0 && ry >= 0 && rx <= 56 && ry <= 56) {
          int s = sad8(cx, cy, rx, ry);
          if (s < best) { best = s; best_rx = rx; best_ry = ry; }
        }
      }
    }
    return best;
  }

  // ---- residual coding path ----

  global int blk[16];
  global int coef[16];

  // H.264-style 4x4 integer transform (butterfly rows then columns).
  int transform4x4() {
    for (int r = 0; r < 4; r = r + 1) {
      int a = blk[r * 4] + blk[r * 4 + 3];
      int b = blk[r * 4 + 1] + blk[r * 4 + 2];
      int c = blk[r * 4 + 1] - blk[r * 4 + 2];
      int d = blk[r * 4] - blk[r * 4 + 3];
      coef[r * 4] = a + b;
      coef[r * 4 + 1] = 2 * d + c;
      coef[r * 4 + 2] = a - b;
      coef[r * 4 + 3] = d - 2 * c;
    }
    for (int k = 0; k < 4; k = k + 1) {
      int a = coef[k] + coef[12 + k];
      int b = coef[4 + k] + coef[8 + k];
      int c = coef[4 + k] - coef[8 + k];
      int d = coef[k] - coef[12 + k];
      coef[k] = a + b;
      coef[4 + k] = 2 * d + c;
      coef[8 + k] = a - b;
      coef[12 + k] = d - 2 * c;
    }
    return coef[0];
  }

  int quantize(int qp) {
    int nonzero = 0;
    for (int i = 0; i < 16; i = i + 1) {
      coef[i] = coef[i] / (qp + 1);
      if (coef[i] != 0) nonzero = nonzero + 1;
    }
    return nonzero;
  }

  // Zig-zag run-length cost: long zero runs are cheap, like CAVLC.
  global int zigzag[16] = {0, 1, 4, 8, 5, 2, 3, 6, 9, 12, 13, 10, 7, 11, 14, 15};

  int rl_cost() {
    int cost = 0;
    int run = 0;
    for (int i = 0; i < 16; i = i + 1) {
      int v = coef[zigzag[i]];
      if (v == 0) run = run + 1;
      else {
        cost = cost + 4 + run;
        if (v < 0) v = 0 - v;
        while (v > 0) { cost = cost + 1; v = v >> 1; }
        run = 0;
      }
    }
    return cost;
  }

  int residual_cost(int cx, int cy, int rx, int ry) {
    // top-left 4x4 of the residual block
    for (int y = 0; y < 4; y = y + 1)
      for (int x = 0; x < 4; x = x + 1)
        blk[y * 4 + x] =
          cur[(cy + y) * 64 + cx + x] - refr[(ry + y) * 64 + rx + x];
    transform4x4();
    quantize(6);
    return rl_cost();
  }

  int main(int seed, int frames) {
    rnd_init(seed);
    int checksum = 0;
    for (int i = 0; i < 4096; i = i + 1) refr[i] = rnd() % 256;
    for (int f = 0; f < frames; f = f + 1) {
      // current frame = shifted reference plus noise: realistic motion
      int sx = rnd() % 5;
      int sy = rnd() % 5;
      for (int y = 0; y < 64; y = y + 1)
        for (int x = 0; x < 64; x = x + 1) {
          int rx = x + sx; if (rx > 63) rx = 63;
          int ry = y + sy; if (ry > 63) ry = 63;
          cur[y * 64 + x] = (refr[ry * 64 + rx] + rnd() % 9 - 4) & 255;
        }
      for (int by = 0; by <= 56; by = by + 8)
        for (int bx = 0; bx <= 56; bx = bx + 8) {
          checksum = checksum + best_match(bx, by);
          checksum = checksum + residual_cost(bx, by, best_rx, best_ry);
        }
    }
    print_int(checksum);
    return checksum & 127;
  }
|};
  }
