(* 433.milc analogue: lattice field update.  Sweeps a 2D periodic lattice
   applying a neighbor stencil with integer "link" weights — the
   structured, regular array traversal of lattice QCD. *)

let workload =
  {
    Workload.name = "433.milc";
    description = "periodic-lattice stencil sweeps with link weights";
    train_args = [ 3l; 2l ];
    ref_args = [ 3l; 8l ];
    source =
      Workload.prng_helpers
      ^ {|
  global int field[4096];   // 64 x 64 lattice
  global int links[4096];
  global int next[4096];

  int main(int seed, int sweeps) {
    rnd_init(seed);
    int dim = 64;
    int n = dim * dim;
    for (int i = 0; i < n; i = i + 1) {
      field[i] = rnd() % 17 - 8;
      links[i] = 1 + rnd() % 3;
    }
    for (int s = 0; s < sweeps; s = s + 1) {
      for (int y = 0; y < dim; y = y + 1) {
        int up = ((y + dim - 1) % dim) * dim;
        int down = ((y + 1) % dim) * dim;
        int row = y * dim;
        for (int x = 0; x < dim; x = x + 1) {
          int l = row + (x + dim - 1) % dim;
          int r = row + (x + 1) % dim;
          int acc = field[up + x] + field[down + x] + field[l] + field[r];
          next[row + x] = (acc * links[row + x] + field[row + x]) >> 2;
        }
      }
      for (int i = 0; i < n; i = i + 1) field[i] = next[i];
    }
    int checksum = 0;
    for (int i = 0; i < n; i = i + 1) checksum = checksum ^ (field[i] + i);
    print_int(checksum);
    return checksum & 127;
  }
|};
  }
