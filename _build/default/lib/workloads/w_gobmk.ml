(* 445.gobmk analogue: Go-board group analysis.  Generates random board
   positions and flood-fills stone groups to count their liberties — the
   branchy, irregular board scanning that dominates gobmk. *)

let workload =
  {
    Workload.name = "445.gobmk";
    description = "flood-fill group and liberty counting on random boards";
    train_args = [ 29l; 5l ];
    ref_args = [ 29l; 36l ];
    source =
      Workload.prng_helpers
      ^ {|
  global int board[441];    // 21 x 21, border ring of -1
  global int mark[441];
  global int queue[441];

  int liberties(int start, int color, int dim) {
    int head = 0;
    int tail = 0;
    int libs = 0;
    queue[tail] = start; tail = tail + 1;
    mark[start] = 1;
    while (head < tail) {
      int pos = queue[head]; head = head + 1;
      int d = 0;
      while (d < 4) {
        int nb = pos;
        if (d == 0) nb = pos - dim;
        if (d == 1) nb = pos + dim;
        if (d == 2) nb = pos - 1;
        if (d == 3) nb = pos + 1;
        if (mark[nb] == 0) {
          if (board[nb] == 0) { libs = libs + 1; mark[nb] = 1; }
          else if (board[nb] == color) {
            mark[nb] = 1;
            queue[tail] = nb; tail = tail + 1;
          }
        }
        d = d + 1;
      }
    }
    return libs;
  }

  // 3x3 pattern matcher: scores known local shapes (hane, cut, tiger's
  // mouth analogues) around each point, like gobmk's pattern database.
  int pattern_score(int pos, int dim) {
    int c = board[pos];
    if (c <= 0) return 0;
    int friends = 0;
    int enemies = 0;
    int edges = 0;
    for (int dy = 0 - 1; dy <= 1; dy = dy + 1)
      for (int dx = 0 - 1; dx <= 1; dx = dx + 1)
        if (dy != 0 || dx != 0) {
          int nb = board[pos + dy * dim + dx];
          if (nb == c) friends = friends + 1;
          else if (nb > 0) enemies = enemies + 1;
          else if (nb < 0) edges = edges + 1;
        }
    if (friends >= 2 && enemies == 0) return 3;       // solid shape
    if (enemies >= 3 && friends == 0) return 0 - 2;   // surrounded
    if (edges >= 3) return 1;                         // corner/edge shape
    return friends - enemies;
  }

  // Influence propagation: each stone radiates falling influence in the
  // four directions; three damping sweeps, like a dilation function.
  global int influence[441];

  int spread_influence(int dim) {
    for (int i = 0; i < 441; i = i + 1) {
      if (board[i] == 1) influence[i] = 64;
      else if (board[i] == 2) influence[i] = 0 - 64;
      else influence[i] = 0;
    }
    for (int sweep = 0; sweep < 3; sweep = sweep + 1) {
      for (int y = 1; y < 20; y = y + 1)
        for (int x = 1; x < 20; x = x + 1) {
          int pos = y * dim + x;
          int acc = influence[pos] * 4 + influence[pos - 1]
                  + influence[pos + 1] + influence[pos - dim]
                  + influence[pos + dim];
          influence[pos] = acc / 8;
        }
    }
    int territory = 0;
    for (int y = 1; y < 20; y = y + 1)
      for (int x = 1; x < 20; x = x + 1) {
        int v = influence[y * dim + x];
        if (v > 8) territory = territory + 1;
        else if (v < 0 - 8) territory = territory - 1;
      }
    return territory;
  }

  int main(int seed, int positions) {
    rnd_init(seed);
    int dim = 21;
    int checksum = 0;
    for (int p = 0; p < positions; p = p + 1) {
      for (int i = 0; i < 441; i = i + 1) { board[i] = 0 - 1; mark[i] = 0; }
      for (int y = 1; y < 20; y = y + 1)
        for (int x = 1; x < 20; x = x + 1)
          board[y * dim + x] = rnd() % 3;   // 0 empty, 1 black, 2 white
      for (int y = 1; y < 20; y = y + 1) {
        for (int x = 1; x < 20; x = x + 1) {
          int pos = y * dim + x;
          int c = board[pos];
          if (c > 0 && mark[pos] == 0) {
            int libs = liberties(pos, c, dim);
            if (libs == 0) checksum = checksum + 100;  // captured group
            else checksum = checksum + libs * c;
          }
          checksum = checksum + pattern_score(pos, dim);
        }
      }
      checksum = checksum + spread_influence(dim) * 10;
    }
    print_int(checksum);
    return checksum & 127;
  }
|};
  }
