(* 453.povray analogue: ray casting.  Integer ray-sphere intersection over
   a small scene rendered to a buffer, with an integer square root in the
   shading path — the per-pixel geometric arithmetic of a ray tracer. *)

let workload =
  {
    Workload.name = "453.povray";
    description = "integer ray-sphere casting with isqrt shading";
    train_args = [ 48l; 1l ];
    ref_args = [ 47l; 1l ];
    source =
      Workload.prng_helpers
      ^ {|
  global int sx[16];
  global int sy[16];
  global int sz[16];
  global int sr2[16];
  global int frame[4096];   // 64 x 64

  int isqrt(int v) {
    if (v <= 0) return 0;
    // Monotone Newton descent: strictly decreasing until convergence,
    // which avoids the classic two-value oscillation of the naive form.
    int r = v;
    int next = (r + 1) >> 1;
    while (next < r) {
      r = next;
      next = (r + v / r) >> 1;
    }
    return r;
  }

  int trace(int ox, int oy, int nspheres) {
    int best = 1000000000;
    int hit = 0 - 1;
    for (int s = 0; s < nspheres; s = s + 1) {
      int dx = ox - sx[s];
      int dy = oy - sy[s];
      int d2 = dx * dx + dy * dy;
      if (d2 < sr2[s]) {
        // depth of intersection along z
        int depth = sz[s] - isqrt(sr2[s] - d2);
        if (depth < best) { best = depth; hit = s; }
      }
    }
    if (hit < 0) return 0;
    int shade = 255 - best / 4;
    if (shade < 0) shade = 0;
    return shade + hit;
  }

  // Checkerboard ground plane: rays missing all spheres hit the plane
  // and get the classic two-tone pattern, with distance fog.
  int plane_shade(int ox, int oy) {
    int tile = ((ox / 80) + (oy / 80)) & 1;
    int base = 40 + tile * 60;
    int fog = (ox + oy) / 32;
    if (fog > base) return 0;
    return base - fog;
  }

  // 2x2 supersampling: average four sub-pixel traces (anti-aliasing).
  int sample_aa(int px, int py, int nspheres) {
    int acc = 0;
    for (int sy_ = 0; sy_ < 2; sy_ = sy_ + 1)
      for (int sx_ = 0; sx_ < 2; sx_ = sx_ + 1) {
        int v = trace(px + sx_ * 5, py + sy_ * 5, nspheres);
        if (v == 0) v = plane_shade(px + sx_ * 5, py + sy_ * 5);
        acc = acc + v;
      }
    return acc / 4;
  }

  // Median-cut-lite palette quantization of the rendered frame: map
  // shades onto 16 buckets chosen from the frame's own histogram.
  global int histogram[256];
  global int palette[16];

  int quantize_frame() {
    for (int i = 0; i < 256; i = i + 1) histogram[i] = 0;
    for (int i = 0; i < 4096; i = i + 1) {
      int v = frame[i] & 255;
      histogram[v] = histogram[v] + 1;
    }
    // pick the 16 evenly-spaced population quantiles as the palette
    int total = 4096;
    int per = total / 16;
    int acc = 0;
    int next = 0;
    for (int v = 0; v < 256 && next < 16; v = v + 1) {
      acc = acc + histogram[v];
      while (next < 16 && acc > next * per) {
        palette[next] = v;
        next = next + 1;
      }
    }
    while (next < 16) { palette[next] = 255; next = next + 1; }
    // remap each pixel to its nearest palette entry
    int err = 0;
    for (int i = 0; i < 4096; i = i + 1) {
      int v = frame[i] & 255;
      int best = 0;
      int bestd = 1000;
      for (int p = 0; p < 16; p = p + 1) {
        int d = v - palette[p];
        if (d < 0) d = 0 - d;
        if (d < bestd) { bestd = d; best = p; }
      }
      frame[i] = best;
      err = err + bestd;
    }
    return err;
  }

  int main(int seed, int frames) {
    rnd_init(seed);
    int nspheres = 16;
    int checksum = 0;
    for (int f = 0; f < frames; f = f + 1) {
      for (int s = 0; s < nspheres; s = s + 1) {
        sx[s] = rnd() % 640;
        sy[s] = rnd() % 640;
        sz[s] = 100 + rnd() % 800;
        int r = 20 + rnd() % 120;
        sr2[s] = r * r;
      }
      for (int y = 0; y < 64; y = y + 1)
        for (int x = 0; x < 64; x = x + 1) {
          int v = trace(x * 10, y * 10, nspheres);
          if (v == 0) v = plane_shade(x * 10, y * 10);
          frame[y * 64 + x] = v;
        }
      // adaptive anti-aliasing: only pixels on a shading edge get the
      // 2x2 supersampling treatment
      for (int y = 1; y < 63; y = y + 1)
        for (int x = 1; x < 63; x = x + 1) {
          int here = frame[y * 64 + x];
          int d = here - frame[y * 64 + x - 1];
          if (d < 0) d = 0 - d;
          int d2 = here - frame[(y - 1) * 64 + x];
          if (d2 < 0) d2 = 0 - d2;
          if (d > 16 || d2 > 16)
            frame[y * 64 + x] = sample_aa(x * 10, y * 10, nspheres);
        }
      checksum = checksum + quantize_frame();
      for (int i = 0; i < 4096; i = i + 64) checksum = checksum + frame[i];
    }
    print_int(checksum);
    return checksum & 127;
  }
|};
  }
