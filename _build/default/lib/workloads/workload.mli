(** The benchmark-program abstraction.

    Each workload stands in for one SPEC CPU 2006 program in the paper's
    evaluation: MiniC source with the hot-loop/cold-path structure of its
    namesake's kernel, a small [train] input (profiling, §5.1) and a
    larger [ref] input (measurement).  Every program prints a checksum, so
    correctness of each diversified binary is checked for free during
    benchmarking. *)

type t = {
  name : string;  (** SPEC-style name, e.g. "473.astar" *)
  description : string;  (** what the kernel does *)
  source : string;  (** MiniC source text *)
  train_args : int32 list;  (** profiling input *)
  ref_args : int32 list;  (** measurement input *)
}

val prng_helpers : string
(** MiniC snippet providing the deterministic LCG every workload uses to
    synthesize its input data from a seed argument ([rnd_init], [rnd]):
    SPEC programs read input files; ours generate equivalent data. *)
