type t = {
  name : string;
  description : string;
  source : string;
  train_args : int32 list;
  ref_args : int32 list;
}

let prng_helpers =
  {|
  global int rnd_state;
  int rnd_init(int seed) { rnd_state = seed * 0x9E3779B1 + 1; return 0; }
  int rnd() {
    rnd_state = rnd_state * 1103515245 + 12345;
    return (rnd_state >> 16) & 32767;
  }
|}
