(** The benchmark suite: 19 SPEC CPU 2006 analogues (the programs of the
    paper's Figure 4 and Tables 2-3) plus the PHP-analogue interpreter of
    the §5.2 attack study. *)

val all : Workload.t list
(** The 19 SPEC analogues, in the paper's Figure-4 order. *)

val names : string list
val find : string -> Workload.t
(** Lookup by name ("473.astar") or by suffix ("astar").  Raises
    [Not_found]. *)

val phpvm : Workload.t
(** The interpreter of the attack case study. *)

val php_profiles : Phpvm.profile_program list
(** The seven Benchmarks-Game-analogue profiling workloads for the
    interpreter. *)
