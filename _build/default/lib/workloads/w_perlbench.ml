(* 400.perlbench analogue: a script interpreter.  A synthetic "script" of
   register ops is generated from the seed, then interpreted many times in
   a dispatch loop — the hot code is the opcode dispatch, as in a real
   language runtime. *)

let workload =
  {
    Workload.name = "400.perlbench";
    description = "bytecode interpreter with opcode dispatch loop";
    train_args = [ 11l; 15l ];
    ref_args = [ 11l; 75l ];
    source =
      Workload.prng_helpers
      ^ {|
  global int script[512];
  global int regs[8];
  global int memory[256];

  int gen_script(int len) {
    for (int i = 0; i < len; i = i + 1) {
      int op = rnd() % 9;
      int a = rnd() % 8;
      int b = rnd() % 8;
      int imm = rnd() % 256;
      script[i] = op * 1000000 + a * 10000 + b * 100 + (imm % 100);
    }
    return len;
  }

  int interp(int len, int rounds) {
    int checksum = 0;
    for (int r = 0; r < rounds; r = r + 1) {
      for (int pc = 0; pc < len; pc = pc + 1) {
        int packed = script[pc];
        int op = packed / 1000000;
        int a = (packed / 10000) % 100;
        int b = (packed / 100) % 100;
        int imm = packed % 100;
        if (op == 0) regs[a] = imm;
        else if (op == 1) regs[a] = regs[a] + regs[b];
        else if (op == 2) regs[a] = regs[a] - regs[b];
        else if (op == 3) regs[a] = regs[a] ^ regs[b];
        else if (op == 4) regs[a] = regs[a] & (regs[b] | 1);
        else if (op == 5) memory[(regs[b] + imm) & 255] = regs[a];
        else if (op == 6) regs[a] = memory[(regs[b] + imm) & 255];
        else if (op == 7) regs[a] = regs[a] << (imm & 7);
        else regs[a] = regs[a] >> (imm & 7);
      }
      checksum = checksum + regs[0] + regs[7];
    }
    return checksum;
  }

  // --- the "compile" phase a language runtime performs before the
  //     dispatch loop gets hot ---

  // Symbol interning: open-addressed hash table of identifiers (ints).
  global int sym_keys[128];
  global int sym_used[128];

  int intern(int key) {
    int h = (key * 2057) & 127;
    while (sym_used[h]) {
      if (sym_keys[h] == key) return h;
      h = (h + 1) & 127;
    }
    sym_used[h] = 1;
    sym_keys[h] = key;
    return h;
  }

  // Regex-lite: does pattern (with 0 as single-char wildcard) occur in
  // the subject array?  Classic nested-loop matcher.
  int rmatch(int sub_off, int sub_len, int pat_off, int pat_len) {
    for (int s = 0; s + pat_len <= sub_len; s = s + 1) {
      int ok = 1;
      for (int p = 0; p < pat_len && ok; p = p + 1) {
        int pc = memory[(pat_off + p) & 255];
        int sc = memory[(sub_off + s + p) & 255];
        if (pc != 0 && pc != sc) ok = 0;
      }
      if (ok) return s;
    }
    return 0 - 1;
  }

  // Peephole over the script: fold "load a, imm ; shl a, k" pairs into a
  // preshifted load, like a bytecode optimizer.
  int peephole(int len) {
    int folded = 0;
    for (int i = 0; i + 1 < len; i = i + 1) {
      int op1 = script[i] / 1000000;
      int op2 = script[i + 1] / 1000000;
      int a1 = (script[i] / 10000) % 100;
      int a2 = (script[i + 1] / 10000) % 100;
      if (op1 == 0 && op2 == 7 && a1 == a2) {
        int imm = script[i] % 100;
        int k = script[i + 1] % 100 & 7;
        // replace the pair with "load a, (imm << k) % 100 ; load a, same":
        // the second becomes redundant but keeps the script length fixed.
        int pre = (imm << k) % 100;
        script[i] = a1 * 10000 + pre;
        script[i + 1] = a2 * 10000 + pre;
        folded = folded + 1;
      }
    }
    return folded;
  }

  int main(int seed, int rounds) {
    rnd_init(seed);
    if (rounds <= 0) {
      // cold error path, mirrors a usage message
      put_char('e'); put_char('r'); put_char('r'); put_char(10);
      exit(1);
    }
    int len = gen_script(512);
    // compile phase: intern "identifiers", pattern-scan the data area,
    // and run the bytecode peephole once.
    int syms = 0;
    for (int i = 0; i < 128; i = i + 1) { sym_used[i] = 0; sym_keys[i] = 0; }
    for (int i = 0; i < 200; i = i + 1) syms = syms + intern(rnd() % 97);
    for (int i = 0; i < 256; i = i + 1) memory[i] = rnd() % 7;
    int matches = 0;
    for (int q = 0; q < 24; q = q + 1) {
      if (rmatch(q * 8, 64, 128 + q, 3 + (q % 3)) >= 0) matches = matches + 1;
    }
    int folded = peephole(len);
    int checksum = interp(len, rounds);
    print_int(checksum + syms + matches * 100 + folded);
    return checksum & 127;
  }
|};
  }
