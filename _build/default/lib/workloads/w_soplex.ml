(* 450.soplex analogue: dense linear solving.  Gaussian elimination with
   partial pivoting over integers modulo a prime — the row-reduction
   pivot loops of an LP solver's basis factorization. *)

let workload =
  {
    Workload.name = "450.soplex";
    description = "modular Gaussian elimination with partial pivoting";
    train_args = [ 41l; 1l ];
    ref_args = [ 41l; 2l ];
    source =
      Workload.prng_helpers
      ^ {|
  global int mat[1600];   // 40 x 40
  global int piv_count;

  int mod_p(int v) {
    int p = 10007;
    int r = v % p;
    if (r < 0) r = r + p;
    return r;
  }

  // a^(p-2) mod p: modular inverse by fast exponentiation.
  int mod_inv(int a) {
    int p = 10007;
    int e = p - 2;
    int base = mod_p(a);
    int acc = 1;
    while (e > 0) {
      if (e & 1) acc = mod_p(acc * base);
      base = mod_p(base * base);
      e = e >> 1;
    }
    return acc;
  }

  int eliminate(int n) {
    int det = 1;
    for (int k = 0; k < n; k = k + 1) {
      // partial pivot: first nonzero at or below k
      int prow = 0 - 1;
      for (int r = k; r < n && prow < 0; r = r + 1)
        if (mat[r * n + k] != 0) prow = r;
      if (prow < 0) return 0;   // singular (cold path)
      if (prow != k) {
        for (int c = 0; c < n; c = c + 1) {
          int tmp = mat[k * n + c];
          mat[k * n + c] = mat[prow * n + c];
          mat[prow * n + c] = tmp;
        }
        det = mod_p(0 - det);
        piv_count = piv_count + 1;
      }
      int inv = mod_inv(mat[k * n + k]);
      det = mod_p(det * mat[k * n + k]);
      for (int r = k + 1; r < n; r = r + 1) {
        int factor = mod_p(mat[r * n + k] * inv);
        if (factor != 0)
          for (int c = k; c < n; c = c + 1)
            mat[r * n + c] = mod_p(mat[r * n + c] - factor * mat[k * n + c]);
      }
    }
    return det;
  }

  int main(int seed, int systems) {
    rnd_init(seed);
    int n = 40;
    int checksum = 0;
    piv_count = 0;
    for (int s = 0; s < systems; s = s + 1) {
      for (int i = 0; i < n * n; i = i + 1) mat[i] = rnd() % 10007;
      checksum = checksum + eliminate(n);
    }
    print_int(checksum);
    print_int(piv_count);
    return checksum & 127;
  }
|};
  }
