(* 473.astar analogue: grid pathfinding.  A* with Manhattan heuristic on
   random obstacle maps, open set as a linear-scan priority array — the
   open/closed-list management and neighbor expansion of 473.astar. *)

let workload =
  {
    Workload.name = "473.astar";
    description = "A* grid pathfinding over random obstacle maps";
    train_args = [ 80l; 1l ];
    ref_args = [ 81l; 2l ];
    source =
      Workload.prng_helpers
      ^ {|
  global int grid[1024];     // 32 x 32: 1 = blocked
  global int gscore[1024];
  global int state[1024];    // 0 unseen, 1 open, 2 closed
  global int fscore[1024];   // cached g + h for open-list scans

  int heur(int pos, int goal) {
    int dim = 32;
    int dx = pos % dim - goal % dim;
    int dy = pos / dim - goal / dim;
    if (dx < 0) dx = 0 - dx;
    if (dy < 0) dy = 0 - dy;
    return dx + dy;
  }

  int astar(int start, int goal) {
    int dim = 32;
    int n = dim * dim;
    for (int i = 0; i < n; i = i + 1) { gscore[i] = 1000000000; state[i] = 0; }
    gscore[start] = 0;
    fscore[start] = heur(start, goal);
    state[start] = 1;
    int expanded = 0;
    while (1) {
      // pick the open node with smallest f = g + h
      int best = 0 - 1;
      int bestf = 1000000000;
      for (int i = 0; i < n; i = i + 1)
        if (state[i] == 1 && fscore[i] < bestf) { bestf = fscore[i]; best = i; }
      if (best < 0) return 0 - expanded;        // unreachable
      if (expanded > 250) return expanded;      // search horizon reached
      if (best == goal) return gscore[goal] * 1000 + expanded;
      state[best] = 2;
      expanded = expanded + 1;
      int x = best % dim;
      int y = best / dim;
      for (int d = 0; d < 4; d = d + 1) {
        int nx = x; int ny = y;
        if (d == 0) nx = x - 1;
        if (d == 1) nx = x + 1;
        if (d == 2) ny = y - 1;
        if (d == 3) ny = y + 1;
        if (nx >= 0 && nx < dim && ny >= 0 && ny < dim) {
          int np = ny * dim + nx;
          if (grid[np] == 0 && state[np] != 2) {
            int cand = gscore[best] + 1;
            if (cand < gscore[np]) {
              gscore[np] = cand;
              fscore[np] = cand + heur(np, goal);
              state[np] = 1;
            }
          }
        }
      }
    }
  }

  int main(int seed, int maps) {
    rnd_init(seed);
    int checksum = 0;
    for (int m = 0; m < maps; m = m + 1) {
      for (int i = 0; i < 1024; i = i + 1) grid[i] = (rnd() % 100) < 25;
      grid[0] = 0;
      grid[1023] = 0;
      checksum = checksum + astar(0, 1023);
    }
    print_int(checksum);
    return checksum & 127;
  }
|};
  }
