lib/workloads/workloads.mli: Phpvm Workload
