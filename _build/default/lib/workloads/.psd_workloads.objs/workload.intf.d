lib/workloads/workload.mli:
