lib/workloads/w_libquantum.ml: Workload
