lib/workloads/w_xalanc.ml: Workload
