lib/workloads/phpvm.ml: Workload
