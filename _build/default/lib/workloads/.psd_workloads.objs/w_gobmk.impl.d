lib/workloads/w_gobmk.ml: Workload
