lib/workloads/w_milc.ml: Workload
