lib/workloads/w_soplex.ml: Workload
