lib/workloads/w_astar.ml: Workload
