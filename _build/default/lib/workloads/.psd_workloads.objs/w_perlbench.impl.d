lib/workloads/w_perlbench.ml: Workload
