lib/workloads/w_sjeng.ml: Workload
