lib/workloads/w_dealii.ml: Workload
