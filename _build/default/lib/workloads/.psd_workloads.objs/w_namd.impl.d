lib/workloads/w_namd.ml: Workload
