lib/workloads/w_h264ref.ml: Workload
