lib/workloads/w_sphinx3.ml: Workload
