lib/workloads/w_hmmer.ml: Workload
