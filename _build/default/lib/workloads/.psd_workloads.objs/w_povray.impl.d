lib/workloads/w_povray.ml: Workload
