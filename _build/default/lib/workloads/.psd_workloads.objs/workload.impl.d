lib/workloads/workload.ml:
