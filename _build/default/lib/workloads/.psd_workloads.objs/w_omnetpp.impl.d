lib/workloads/w_omnetpp.ml: Workload
