lib/workloads/w_lbm.ml: Workload
