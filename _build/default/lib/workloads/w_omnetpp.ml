(* 471.omnetpp analogue: discrete-event simulation.  A binary-heap future
   event set drives a queueing network of stations; every event schedules
   followers — the heap churn and pointer-style indirection of a network
   simulator. *)

let workload =
  {
    Workload.name = "471.omnetpp";
    description = "discrete-event queueing network over a binary heap";
    train_args = [ 73l; 300l ];
    ref_args = [ 73l; 2500l ];
    source =
      Workload.prng_helpers
      ^ {|
  global int heap_time[8192];
  global int heap_data[8192];
  global int heap_size;
  global int station_busy[32];
  global int station_queue[32];
  global int processed;

  int heap_push(int time, int data) {
    int i = heap_size;
    heap_size = heap_size + 1;
    heap_time[i] = time;
    heap_data[i] = data;
    while (i > 0) {
      int parent = (i - 1) / 2;
      if (heap_time[parent] <= heap_time[i]) break;
      int tt = heap_time[parent]; heap_time[parent] = heap_time[i]; heap_time[i] = tt;
      int td = heap_data[parent]; heap_data[parent] = heap_data[i]; heap_data[i] = td;
      i = parent;
    }
    return heap_size;
  }

  int heap_pop() {
    int top = heap_data[0];
    heap_size = heap_size - 1;
    heap_time[0] = heap_time[heap_size];
    heap_data[0] = heap_data[heap_size];
    int i = 0;
    while (1) {
      int l = 2 * i + 1;
      int r = l + 1;
      int smallest = i;
      if (l < heap_size && heap_time[l] < heap_time[smallest]) smallest = l;
      if (r < heap_size && heap_time[r] < heap_time[smallest]) smallest = r;
      if (smallest == i) break;
      int tt = heap_time[smallest]; heap_time[smallest] = heap_time[i]; heap_time[i] = tt;
      int td = heap_data[smallest]; heap_data[smallest] = heap_data[i]; heap_data[i] = td;
      i = smallest;
    }
    return top;
  }

  // Per-station service statistics: count and fixed-point running mean
  // of inter-arrival gaps, like a simulator's signal recorders.
  global int stat_count[32];
  global int stat_mean[32];   // scaled by 256
  global int stat_last[32];

  int record_arrival(int station, int now) {
    int gap = now - stat_last[station];
    stat_last[station] = now;
    stat_count[station] = stat_count[station] + 1;
    // exponential moving average, alpha = 1/8
    int scaled = gap << 8;
    stat_mean[station] = stat_mean[station]
                       + (scaled - stat_mean[station]) / 8;
    return stat_mean[station];
  }

  // Static routing table: all-pairs shortest hops over a ring-with-chords
  // topology of the 32 stations, computed once at startup
  // (Floyd-Warshall).
  global int hops[1024];

  int build_routes() {
    for (int i = 0; i < 32; i = i + 1)
      for (int j = 0; j < 32; j = j + 1) {
        int d = 99;
        if (i == j) d = 0;
        if ((i + 1) % 32 == j || (j + 1) % 32 == i) d = 1;  // ring
        if ((i ^ j) == 16) d = 1;                            // chords
        hops[i * 32 + j] = d;
      }
    for (int k = 0; k < 32; k = k + 1)
      for (int i = 0; i < 32; i = i + 1)
        for (int j = 0; j < 32; j = j + 1) {
          int via = hops[i * 32 + k] + hops[k * 32 + j];
          if (via < hops[i * 32 + j]) hops[i * 32 + j] = via;
        }
    int total = 0;
    for (int i = 0; i < 1024; i = i + 1) total = total + hops[i];
    return total;
  }

  int main(int seed, int events) {
    rnd_init(seed);
    heap_size = 0;
    processed = 0;
    int route_sum = build_routes();
    for (int s = 0; s < 32; s = s + 1) {
      station_busy[s] = 0;
      station_queue[s] = 0;
      stat_count[s] = 0;
      stat_mean[s] = 0;
      stat_last[s] = 0;
    }
    // prime the event set
    for (int k = 0; k < 16; k = k + 1) heap_push(rnd() % 100, rnd() % 32);
    int now = 0;
    int checksum = 0;
    while (processed < events && heap_size > 0) {
      int station = heap_pop();
      processed = processed + 1;
      now = now + 1;
      record_arrival(station, now);
      if (station_busy[station]) {
        station_queue[station] = station_queue[station] + 1;
        // requeue for later (cold when the network is uncongested)
        if (heap_size < 8000) heap_push(now + 13 + rnd() % 37, station);
      } else {
        station_busy[station] = 1;
        checksum = checksum + station;
        int hops = 1 + rnd() % 3;
        for (int h = 0; h < hops && heap_size < 8000; h = h + 1)
          heap_push(now + 1 + rnd() % 97, rnd() % 32);
        station_busy[station] = 0;
        if (station_queue[station] > 0)
          station_queue[station] = station_queue[station] - 1;
      }
    }
    // fold the recorded statistics and routing table into the output
    int stat_sum = 0;
    for (int s = 0; s < 32; s = s + 1)
      stat_sum = stat_sum + stat_mean[s] / 256 + stat_count[s];
    print_int(checksum);
    print_int(processed);
    print_int(stat_sum + route_sum);
    return checksum & 127;
  }
|};
  }
