(* 447.dealII analogue: sparse linear algebra.  Assembles a CSR matrix
   from a 2D grid Laplacian and runs Jacobi iterations — sparse
   matrix-vector products with indirect indexing, dealII's inner loop. *)

let workload =
  {
    Workload.name = "447.dealII";
    description = "CSR Laplacian assembly and Jacobi sweeps";
    train_args = [ 31l; 2l ];
    ref_args = [ 31l; 10l ];
    source =
      Workload.prng_helpers
      ^ {|
  global int row_start[1025];
  global int col[5120];
  global int val[5120];
  global int x[1024];
  global int b[1024];
  global int xn[1024];

  // 32x32 grid Laplacian: diagonal 4, neighbors -1 (scaled by 256 for
  // fixed-point).
  int assemble(int dim) {
    int nz = 0;
    for (int r = 0; r < dim * dim; r = r + 1) {
      row_start[r] = nz;
      int y = r / dim;
      int xx = r % dim;
      if (y > 0)      { col[nz] = r - dim; val[nz] = 0 - 256; nz = nz + 1; }
      if (xx > 0)     { col[nz] = r - 1;   val[nz] = 0 - 256; nz = nz + 1; }
      col[nz] = r; val[nz] = 1024 + 256; nz = nz + 1;
      if (xx < dim - 1) { col[nz] = r + 1;   val[nz] = 0 - 256; nz = nz + 1; }
      if (y < dim - 1)  { col[nz] = r + dim; val[nz] = 0 - 256; nz = nz + 1; }
    }
    row_start[dim * dim] = nz;
    return nz;
  }

  int main(int seed, int iters) {
    rnd_init(seed);
    int dim = 32;
    int n = dim * dim;
    assemble(dim);
    for (int i = 0; i < n; i = i + 1) {
      b[i] = rnd() % 512;
      x[i] = 0;
    }
    for (int it = 0; it < iters; it = it + 1) {
      for (int r = 0; r < n; r = r + 1) {
        int acc = 0;
        int diag = 1;
        for (int k = row_start[r]; k < row_start[r + 1]; k = k + 1) {
          if (col[k] == r) diag = val[k];
          else acc = acc + val[k] * x[col[k]] / 256;
        }
        xn[r] = ((b[i_fix(r)] << 8) - (acc << 8)) / diag;
      }
      for (int r = 0; r < n; r = r + 1) x[r] = xn[r];
    }
    int checksum = 0;
    for (int r = 0; r < n; r = r + 1) checksum = checksum + x[r] * (r & 7);
    print_int(checksum);
    return checksum & 127;
  }

  // dealII-style indirection layer (identity here, but keeps the memory
  // access pattern honest through a call in the hot loop).
  int i_fix(int r) { return r; }
|};
  }
