(* 444.namd analogue: pairwise force computation.  Fixed-point N-body
   forces with a distance cutoff — the O(n^2) inner pair loop dominated by
   multiply-heavy arithmetic, like namd's nonbonded kernel. *)

let workload =
  {
    Workload.name = "444.namd";
    description = "fixed-point pairwise forces with cutoff";
    train_args = [ 17l; 1l ];
    ref_args = [ 17l; 2l ];
    source =
      Workload.prng_helpers
      ^ {|
  global int px[256];
  global int py[256];
  global int pz[256];
  global int fx[256];
  global int fy[256];
  global int fz[256];

  int main(int seed, int steps) {
    rnd_init(seed);
    int n = 256;
    for (int i = 0; i < n; i = i + 1) {
      px[i] = rnd() % 1000;
      py[i] = rnd() % 1000;
      pz[i] = rnd() % 1000;
    }
    int cutoff2 = 90000;
    int checksum = 0;
    for (int s = 0; s < steps; s = s + 1) {
      for (int i = 0; i < n; i = i + 1) { fx[i] = 0; fy[i] = 0; fz[i] = 0; }
      for (int i = 0; i < n; i = i + 1) {
        for (int j = i + 1; j < n; j = j + 1) {
          int dx = px[i] - px[j];
          int dy = py[i] - py[j];
          int dz = pz[i] - pz[j];
          int r2 = dx * dx + dy * dy + dz * dz;
          if (r2 < cutoff2 && r2 > 0) {
            // fixed-point inverse-square-ish kernel
            int f = 1000000 / (r2 + 16);
            fx[i] = fx[i] + dx * f; fx[j] = fx[j] - dx * f;
            fy[i] = fy[i] + dy * f; fy[j] = fy[j] - dy * f;
            fz[i] = fz[i] + dz * f; fz[j] = fz[j] - dz * f;
          }
        }
      }
      for (int i = 0; i < n; i = i + 1) {
        px[i] = px[i] + (fx[i] >> 12);
        py[i] = py[i] + (fy[i] >> 12);
        pz[i] = pz[i] + (fz[i] >> 12);
        checksum = checksum + fx[i] - fz[i];
      }
    }
    print_int(checksum);
    return checksum & 127;
  }
|};
  }
