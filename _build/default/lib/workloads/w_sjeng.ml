(* 458.sjeng analogue: game-tree search.  Alpha-beta minimax over a
   synthetic game whose move values derive from a hash of the path — the
   deeply recursive, branchy searching of a chess engine. *)

let workload =
  {
    Workload.name = "458.sjeng";
    description = "alpha-beta minimax over a synthetic game tree";
    train_args = [ 59l; 2l ];
    ref_args = [ 59l; 13l ];
    source =
      Workload.prng_helpers
      ^ {|
  global int nodes_visited;
  global int cutoffs;

  int move_value(int state, int move) {
    int h = state * 0x9E3779B1 + move * 40503;
    h = h ^ (h >> 13);
    return h;
  }

  // History heuristic table: moves that caused cutoffs before get a
  // bonus so they are tried first.
  global int history[256];

  int record_cutoff(int move, int depth) {
    history[move & 255] = history[move & 255] + depth * depth;
    return 0;
  }

  // Static evaluation with a "piece-square" table — centre squares score
  // higher, pieces placed by the state hash, as in a real engine.
  global int psq[64];

  int init_psq() {
    for (int sq = 0; sq < 64; sq = sq + 1) {
      int file = sq & 7;
      int rank = sq >> 3;
      int cf = file; if (cf > 3) cf = 7 - file;
      int cr = rank; if (cr > 3) cr = 7 - rank;
      psq[sq] = (cf + cr) * 5;
    }
    return 0;
  }

  int static_eval(int state) {
    int score = 0;
    int h = state;
    // six "pieces" placed by hash bits
    for (int p = 0; p < 6; p = p + 1) {
      score = score + psq[h & 63] * (1 + (p & 1));
      h = h >> 5;
    }
    score = score + move_value(state, 0) % 512;
    return score % 2001 - 1000;
  }

  int search(int state, int depth, int alpha, int beta, int maximizing) {
    nodes_visited = nodes_visited + 1;
    if (depth == 0) return static_eval(state);
    int branching = 2 + (state & 3);
    if (maximizing) {
      int best = 0 - 1000000;
      for (int m = 0; m < branching; m = m + 1) {
        int child = move_value(state, m);
        int v = search(child, depth - 1, alpha, beta, 0);
        if (v > best) best = v;
        if (best > alpha) alpha = best;
        if (alpha >= beta) {
          cutoffs = cutoffs + 1;
          record_cutoff(child, depth);
          break;
        }
      }
      return best;
    } else {
      int best = 1000000;
      for (int m = 0; m < branching; m = m + 1) {
        int child = move_value(state, m);
        int v = search(child, depth - 1, alpha, beta, 1);
        if (v < best) best = v;
        if (best < beta) beta = best;
        if (alpha >= beta) {
          cutoffs = cutoffs + 1;
          record_cutoff(child, depth);
          break;
        }
      }
      return best;
    }
  }

  int main(int seed, int positions) {
    rnd_init(seed);
    nodes_visited = 0;
    cutoffs = 0;
    init_psq();
    for (int i = 0; i < 256; i = i + 1) history[i] = 0;
    int checksum = 0;
    for (int p = 0; p < positions; p = p + 1) {
      int root = rnd() * 31337 + p;
      checksum = checksum + search(root, 7, 0 - 1000000, 1000000, 1);
    }
    int hist_sum = 0;
    for (int i = 0; i < 256; i = i + 1) hist_sum = hist_sum + history[i];
    print_int(checksum);
    print_int(nodes_visited);
    print_int(cutoffs);
    print_int(hist_sum);
    return checksum & 127;
  }
|};
  }
