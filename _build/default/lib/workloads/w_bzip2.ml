(* 401.bzip2 analogue: block compression.  Run-length encodes a
   pseudo-random buffer after a move-to-front transform, then decodes and
   verifies the round trip — compress and decompress are both hot. *)

let workload =
  {
    Workload.name = "401.bzip2";
    description = "move-to-front + run-length compression round trip";
    train_args = [ 23l; 1l ];
    ref_args = [ 23l; 2l ];
    source =
      Workload.prng_helpers
      ^ {|
  global int input[4096];
  global int mtf[64];
  global int encoded[8192];
  global int decoded[4096];

  int mtf_reset() {
    for (int i = 0; i < 64; i = i + 1) mtf[i] = i;
    return 0;
  }

  int mtf_encode(int sym) {
    int idx = 0;
    while (mtf[idx] != sym) idx = idx + 1;
    for (int j = idx; j > 0; j = j - 1) mtf[j] = mtf[j - 1];
    mtf[0] = sym;
    return idx;
  }

  int mtf_decode(int idx) {
    int sym = mtf[idx];
    for (int j = idx; j > 0; j = j - 1) mtf[j] = mtf[j - 1];
    mtf[0] = sym;
    return sym;
  }

  int compress(int n) {
    mtf_reset();
    int out = 0;
    int i = 0;
    while (i < n) {
      int v = mtf_encode(input[i]);
      int run = 1;
      while (i + run < n && input[i + run] == input[i] && run < 255) run = run + 1;
      encoded[out] = v; encoded[out + 1] = run;
      out = out + 2;
      i = i + run;
    }
    return out;
  }

  int decompress(int m) {
    mtf_reset();
    int pos = 0;
    for (int k = 0; k < m; k = k + 2) {
      int sym = mtf_decode(encoded[k]);
      for (int r = 0; r < encoded[k + 1]; r = r + 1) {
        decoded[pos] = sym;
        pos = pos + 1;
      }
    }
    return pos;
  }

  int main(int seed, int blocks) {
    rnd_init(seed);
    int checksum = 0;
    for (int b = 0; b < blocks; b = b + 1) {
      // runs of repeated symbols make the data compressible
      int i = 0;
      while (i < 4096) {
        int sym = rnd() % 64;
        int run = 1 + rnd() % 7;
        for (int r = 0; r < run && i < 4096; r = r + 1) {
          input[i] = sym;
          i = i + 1;
        }
      }
      int m = compress(4096);
      int n2 = decompress(m);
      if (n2 != 4096) { put_char('B'); put_char('A'); put_char('D'); exit(1); }
      for (int k = 0; k < 4096; k = k + 128)
        if (decoded[k] != input[k]) { put_char('!'); exit(2); }
      checksum = checksum + m;
    }
    print_int(checksum);
    return checksum & 127;
  }
|};
  }
