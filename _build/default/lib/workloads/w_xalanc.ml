(* 483.xalancbmk analogue: document-tree transformation.  Builds a large
   random "document" tree in arrays, then runs several distinct passes —
   pattern matching, attribute rewriting, subtree statistics, and
   serialization — the many-small-functions shape of an XSLT processor.
   Deliberately the largest program of the suite, as 483.xalancbmk is in
   the paper. *)

let workload =
  {
    Workload.name = "483.xalancbmk";
    description = "tree build, match, rewrite and serialize passes";
    train_args = [ 89l; 3l ];
    ref_args = [ 89l; 14l ];
    source =
      Workload.prng_helpers
      ^ {|
  global int tag[8192];
  global int first_child[8192];
  global int next_sibling[8192];
  global int attr[8192];
  global int node_count;
  global int out_count;

  int new_node(int t, int a) {
    int id = node_count;
    node_count = node_count + 1;
    tag[id] = t;
    attr[id] = a;
    first_child[id] = 0 - 1;
    next_sibling[id] = 0 - 1;
    return id;
  }

  int build(int depth, int fanout) {
    int id = new_node(rnd() % 12, rnd() % 100);
    if (depth > 0 && node_count < 8000) {
      int prev = 0 - 1;
      int kids = 1 + rnd() % fanout;
      for (int k = 0; k < kids; k = k + 1) {
        if (node_count >= 8000) break;
        int child = build(depth - 1, fanout);
        if (prev < 0) first_child[id] = child;
        else next_sibling[prev] = child;
        prev = child;
      }
    }
    return id;
  }

  // Count nodes matching a (tag, ancestor-tag) pattern, like an XPath
  // "a//b" query.
  int match_pattern(int id, int want, int ancestor_tag, int seen_ancestor) {
    int hits = 0;
    if (tag[id] == ancestor_tag) seen_ancestor = 1;
    if (seen_ancestor && tag[id] == want) hits = 1;
    int c = first_child[id];
    while (c >= 0) {
      hits = hits + match_pattern(c, want, ancestor_tag, seen_ancestor);
      c = next_sibling[c];
    }
    return hits;
  }

  // Rewrite attributes bottom-up: each node's attribute becomes a hash of
  // its subtree, like computing template keys.
  int rewrite(int id) {
    int h = tag[id] * 31 + attr[id];
    int c = first_child[id];
    while (c >= 0) {
      h = h * 37 + rewrite(c);
      c = next_sibling[c];
    }
    attr[id] = h & 65535;
    return attr[id];
  }

  // Subtree statistics: depth of the deepest leaf.
  int depth_of(int id) {
    int best = 0;
    int c = first_child[id];
    while (c >= 0) {
      int d = depth_of(c);
      if (d > best) best = d;
      c = next_sibling[c];
    }
    return best + 1;
  }

  // Serialization: append tags to an output stream (counted only).
  int serialize(int id) {
    out_count = out_count + 1;
    int c = first_child[id];
    while (c >= 0) {
      serialize(c);
      c = next_sibling[c];
    }
    out_count = out_count + 1;  // closing tag
    return out_count;
  }

  // Namespace resolution: tags 0-11 map through a prefix table that is
  // itself remapped per document, like xmlns scoping.
  global int ns_table[12];

  int resolve_namespaces(int id, int depth) {
    int resolved = ns_table[tag[id]];
    tag[id] = resolved % 12;
    int count = 1;
    int c = first_child[id];
    while (c >= 0) {
      count = count + resolve_namespaces(c, depth + 1);
      c = next_sibling[c];
    }
    return count;
  }

  // Build an id index: bucket nodes by attribute hash so getElementById
  // style lookups are O(1); collisions chain through node order.
  global int id_buckets[64];
  global int id_chain[8192];

  int index_ids(int root) {
    for (int b = 0; b < 64; b = b + 1) id_buckets[b] = 0 - 1;
    int filled = 0;
    for (int id = 0; id < node_count; id = id + 1) {
      int h = (attr[id] * 31 + tag[id]) & 63;
      id_chain[id] = id_buckets[h];
      id_buckets[h] = id;
      filled = filled + 1;
    }
    return filled;
  }

  int lookup_id(int a, int t) {
    int h = (a * 31 + t) & 63;
    int id = id_buckets[h];
    while (id >= 0) {
      if (attr[id] == a && tag[id] == t) return id;
      id = id_chain[id];
    }
    return 0 - 1;
  }

  // Validation: a document is well-formed for our "schema" when no tag-7
  // node is nested inside another tag-7 node (like nested <a> in HTML).
  int validate(int id, int inside7) {
    if (tag[id] == 7 && inside7) return 1;
    int violations = 0;
    int now7 = inside7;
    if (tag[id] == 7) now7 = 1;
    int c = first_child[id];
    while (c >= 0) {
      violations = violations + validate(c, now7);
      c = next_sibling[c];
    }
    return violations;
  }

  // Entity escaping cost estimate: counts characters a serializer would
  // need to escape, modelled as attribute digits in a given class.
  int escape_cost(int id) {
    int cost = 0;
    int a = attr[id];
    while (a > 0) {
      int digit = a % 10;
      if (digit == 3 || digit == 8) cost = cost + 5;
      else cost = cost + 1;
      a = a / 10;
    }
    int c = first_child[id];
    while (c >= 0) {
      cost = cost + escape_cost(c);
      c = next_sibling[c];
    }
    return cost;
  }

  int transform(int root) {
    int total = 0;
    for (int i = 0; i < 12; i = i + 1) ns_table[i] = (i * 7 + 3) % 12;
    total = total + resolve_namespaces(root, 0);
    for (int want = 0; want < 12; want = want + 3)
      total = total + match_pattern(root, want, (want + 5) % 12, 0);
    total = total + rewrite(root);
    index_ids(root);
    // a handful of keyed lookups, some missing (cold path)
    for (int q = 0; q < 20; q = q + 1) {
      int hit = lookup_id((q * 1237) & 65535, q % 12);
      if (hit >= 0) total = total + tag[hit];
    }
    total = total + validate(root, 0) * 10000;
    total = total + escape_cost(root);
    total = total + depth_of(root) * 1000;
    serialize(root);
    return total;
  }

  int main(int seed, int documents) {
    rnd_init(seed);
    int checksum = 0;
    out_count = 0;
    for (int doc = 0; doc < documents; doc = doc + 1) {
      node_count = 0;
      int root = build(6, 4);
      checksum = checksum ^ transform(root);
    }
    checksum = checksum + out_count;
    print_int(checksum);
    return checksum & 127;
  }
|};
  }
