(* 462.libquantum analogue: quantum register simulation.  Applies gate
   sequences (X, controlled-NOT, phase bookkeeping) to a state table of
   basis indices and integer amplitudes — libquantum's bit-twiddling over
   a large state array. *)

let workload =
  {
    Workload.name = "462.libquantum";
    description = "gate application over a simulated quantum register";
    train_args = [ 61l; 6l ];
    ref_args = [ 61l; 35l ];
    source =
      Workload.prng_helpers
      ^ {|
  global int basis[4096];
  global int amp[4096];

  int apply_x(int n, int target) {
    int bit = 1 << target;
    for (int i = 0; i < n; i = i + 1) basis[i] = basis[i] ^ bit;
    return 0;
  }

  int apply_cnot(int n, int control, int target) {
    int cbit = 1 << control;
    int tbit = 1 << target;
    for (int i = 0; i < n; i = i + 1)
      if (basis[i] & cbit) basis[i] = basis[i] ^ tbit;
    return 0;
  }

  int apply_phase(int n, int target, int k) {
    int bit = 1 << target;
    for (int i = 0; i < n; i = i + 1)
      if (basis[i] & bit) amp[i] = amp[i] * k % 65521;
    return 0;
  }

  int main(int seed, int gates) {
    rnd_init(seed);
    int n = 4096;
    int qubits = 12;
    for (int i = 0; i < n; i = i + 1) { basis[i] = i; amp[i] = 1 + i % 7; }
    for (int g = 0; g < gates; g = g + 1) {
      int kind = rnd() % 3;
      int t = rnd() % qubits;
      if (kind == 0) apply_x(n, t);
      else if (kind == 1) {
        int c = rnd() % qubits;
        if (c == t) c = (c + 1) % qubits;
        apply_cnot(n, c, t);
      }
      else apply_phase(n, t, 3 + rnd() % 64);
    }
    int checksum = 0;
    for (int i = 0; i < n; i = i + 1) checksum = checksum ^ basis[i] + amp[i];
    print_int(checksum);
    return checksum & 127;
  }
|};
  }
