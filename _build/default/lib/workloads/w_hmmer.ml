(* 456.hmmer analogue: profile HMM scoring.  Viterbi-style max-plus
   dynamic programming of random sequences against a random profile —
   the dense DP recurrence that dominates hmmer. *)

let workload =
  {
    Workload.name = "456.hmmer";
    description = "Viterbi max-plus dynamic programming";
    train_args = [ 53l; 1l ];
    ref_args = [ 53l; 3l ];
    source =
      Workload.prng_helpers
      ^ {|
  global int emit[512];      // 128 states x 4 symbols
  global int trans[128];     // state advance scores
  global int dp_m[129];      // match row
  global int dp_i[129];      // insert row
  global int seq[256];

  int score_sequence(int states, int len) {
    int neg = 0 - 100000000;
    for (int k = 0; k <= states; k = k + 1) { dp_m[k] = neg; dp_i[k] = neg; }
    dp_m[0] = 0;
    for (int pos = 0; pos < len; pos = pos + 1) {
      int sym = seq[pos];
      int prev_m = dp_m[0];
      int prev_i = dp_i[0];
      dp_m[0] = neg;
      dp_i[0] = prev_i - 3;
      if (prev_m - 5 > dp_i[0]) dp_i[0] = prev_m - 5;
      for (int k = 1; k <= states; k = k + 1) {
        int cur_m = dp_m[k];
        int cur_i = dp_i[k];
        // match: from previous column's k-1 match or insert
        int from_m = prev_m + trans[k - 1];
        int from_i = prev_i - 2;
        int best = from_m;
        if (from_i > best) best = from_i;
        dp_m[k] = best + emit[(k - 1) * 4 + sym];
        // insert: stay in k
        int stay = cur_i - 3;
        int open = cur_m - 7;
        if (open > stay) dp_i[k] = open;
        else dp_i[k] = stay;
        prev_m = cur_m;
        prev_i = cur_i;
      }
    }
    int best = neg;
    for (int k = 0; k <= states; k = k + 1)
      if (dp_m[k] > best) best = dp_m[k];
    return best;
  }

  int main(int seed, int sequences) {
    rnd_init(seed);
    int states = 128;
    for (int i = 0; i < states * 4; i = i + 1) emit[i] = rnd() % 11 - 5;
    for (int i = 0; i < states; i = i + 1) trans[i] = rnd() % 5 - 1;
    int checksum = 0;
    for (int s = 0; s < sequences; s = s + 1) {
      int len = 128 + rnd() % 128;
      for (int i = 0; i < len; i = i + 1) seq[i] = rnd() % 4;
      checksum = checksum + score_sequence(states, len);
    }
    print_int(checksum);
    return checksum & 127;
  }
|};
  }
