(* The PHP stand-in for the paper's §5.2 case study: a network-facing
   interpreter.  This is a stack-based bytecode VM written in MiniC; the
   seven driver programs correspond to the Computer Language Benchmarks
   Game workloads the paper profiles PHP with (binarytrees,
   fannkuchredux, mandelbrot, nbody, pidigits, spectralnorm, fasta) —
   each stresses a different part of the interpreter (recursion, array
   ops, multiply-heavy loops, division, ...).

   VM: two-word instructions [opcode, operand]; operand stack [vstack],
   call stack [rstack], 64 variable slots [vmem].  Result protocol:
   programs store their checksum in slot 63 and HALT. *)

type profile_program = {
  prog_name : string;  (** benchmarks-game analogue name *)
  prog_id : int32;  (** first argument of main *)
  train_n : int32;  (** training size *)
  ref_n : int32;  (** measurement size *)
}

let profile_programs =
  [
    { prog_name = "binarytrees"; prog_id = 0l; train_n = 8l; ref_n = 13l };
    { prog_name = "fannkuchredux"; prog_id = 1l; train_n = 60l; ref_n = 900l };
    { prog_name = "mandelbrot"; prog_id = 2l; train_n = 300l; ref_n = 6000l };
    { prog_name = "nbody"; prog_id = 3l; train_n = 250l; ref_n = 5000l };
    { prog_name = "pidigits"; prog_id = 4l; train_n = 120l; ref_n = 2500l };
    { prog_name = "spectralnorm"; prog_id = 5l; train_n = 10l; ref_n = 140l };
    { prog_name = "fasta"; prog_id = 6l; train_n = 300l; ref_n = 7000l };
  ]

let source =
  {|
  // ---- VM state ----
  global int code[2048];
  global int code_len;
  global int vstack[1024];
  global int rstack[256];
  global int vmem[64];

  // opcodes
  //  0 HALT   1 PUSH   2 ADD   3 SUB   4 MUL   5 DIV   6 MOD
  //  7 DUP    8 POP    9 SWAP 10 LOAD 11 STORE 12 JMP  13 JZ
  // 14 LT    15 CALL  16 RET  17 ALOAD 18 ASTORE

  int emit(int op, int arg) {
    code[code_len] = op;
    code[code_len + 1] = arg;
    code_len = code_len + 2;
    return code_len - 2;   // address of the emitted instruction
  }

  int patch(int addr, int arg) { code[addr + 1] = arg; return 0; }

  int run_vm(int entry) {
    int pc = entry;
    int sp = 0;
    int rp = 0;
    int steps = 0;
    while (1) {
      steps = steps + 1;
      if (steps > 40000000) { put_char('T'); put_char('O'); exit(3); }
      int op = code[pc];
      int arg = code[pc + 1];
      pc = pc + 2;
      if (op == 0) return steps;
      else if (op == 1) { vstack[sp] = arg; sp = sp + 1; }
      else if (op == 2) { sp = sp - 1; vstack[sp - 1] = vstack[sp - 1] + vstack[sp]; }
      else if (op == 3) { sp = sp - 1; vstack[sp - 1] = vstack[sp - 1] - vstack[sp]; }
      else if (op == 4) { sp = sp - 1; vstack[sp - 1] = vstack[sp - 1] * vstack[sp]; }
      else if (op == 5) { sp = sp - 1; vstack[sp - 1] = vstack[sp - 1] / vstack[sp]; }
      else if (op == 6) { sp = sp - 1; vstack[sp - 1] = vstack[sp - 1] % vstack[sp]; }
      else if (op == 7) { vstack[sp] = vstack[sp - 1]; sp = sp + 1; }
      else if (op == 8) { sp = sp - 1; }
      else if (op == 9) {
        int t = vstack[sp - 1];
        vstack[sp - 1] = vstack[sp - 2];
        vstack[sp - 2] = t;
      }
      else if (op == 10) { vstack[sp] = vmem[arg]; sp = sp + 1; }
      else if (op == 11) { sp = sp - 1; vmem[arg] = vstack[sp]; }
      else if (op == 12) { pc = arg; }
      else if (op == 13) { sp = sp - 1; if (vstack[sp] == 0) pc = arg; }
      else if (op == 14) {
        sp = sp - 1;
        if (vstack[sp - 1] < vstack[sp]) vstack[sp - 1] = 1;
        else vstack[sp - 1] = 0;
      }
      else if (op == 15) { rstack[rp] = pc; rp = rp + 1; pc = arg; }
      else if (op == 16) { rp = rp - 1; pc = rstack[rp]; }
      else if (op == 17) { vstack[sp - 1] = vmem[vstack[sp - 1] & 63]; }
      else if (op == 18) {
        sp = sp - 2;
        vmem[vstack[sp + 1] & 63] = vstack[sp];
      }
      else { put_char('?'); exit(4); }
    }
  }

  // ---- program generators ----
  // Each returns the entry pc; result ends up in vmem[63].

  // binarytrees: tree(d) = 1 + tree(d-1) + tree(d-1), recursion heavy.
  int gen_binarytrees(int n) {
    // TREE function, argument on stack
    int tree = emit(7, 0);         // DUP           [d,d]
    int jz = emit(13, 0);          // JZ base       [d]
    emit(1, 1);                    // PUSH 1        [d,1]
    emit(9, 0);                    // SWAP          [1,d]
    emit(1, 1);                    // PUSH 1        [1,d,1]
    emit(3, 0);                    // SUB           [1,d-1]
    emit(7, 0);                    // DUP           [1,d-1,d-1]
    emit(15, tree);                // CALL tree     [1,d-1,t1]
    emit(9, 0);                    // SWAP          [1,t1,d-1]
    emit(15, tree);                // CALL tree     [1,t1,t2]
    emit(2, 0);                    // ADD
    emit(2, 0);                    // ADD           [1+t1+t2]
    emit(16, 0);                   // RET
    int base = emit(8, 0);         // POP (the zero d)
    emit(1, 1);                    // PUSH 1
    emit(16, 0);                   // RET
    patch(jz, base);
    // main
    int entry = emit(1, n);        // PUSH n
    emit(15, tree);                // CALL tree
    emit(11, 63);                  // STORE 63
    emit(0, 0);                    // HALT
    return entry;
  }

  // fannkuchredux: repeated prefix reversals of an 8-slot array.
  int gen_fannkuch(int n) {
    int entry = emit(1, 0);        // iteration counter in slot 0
    emit(11, 0);
    // init vmem[8..15] = 1..8 : unrolled stores
    for (int i = 0; i < 8; i = i + 1) {
      emit(1, i + 1);
      emit(1, 8 + i);
      emit(18, 0);                 // ASTORE
    }
    int loop = emit(10, 0);        // LOAD counter
    emit(1, n);
    emit(14, 0);                   // counter < n
    int exit_jz = emit(13, 0);
    // flip length = counter % 6 + 2; reverse vmem[8 .. 8+len-1] using
    // slots 1 (i) and 2 (j)
    emit(10, 0); emit(1, 6); emit(6, 0); emit(1, 2); emit(2, 0);
    emit(11, 3);                   // slot3 = len
    emit(1, 8); emit(11, 1);       // i = 8
    emit(10, 3); emit(1, 7); emit(2, 0); emit(11, 2);  // j = len + 7
    int rev = emit(10, 1);         // LOAD i
    emit(10, 2);                   // LOAD j
    emit(14, 0);                   // i < j ?
    int rev_done = emit(13, 0);
    // swap vmem[i], vmem[j]
    emit(10, 1); emit(17, 0);      // [vmem[i]]
    emit(10, 2); emit(17, 0);      // [vmem[i], vmem[j]]
    emit(10, 1); emit(18, 0);      // vmem[i] = vmem[j] (pops 2)
    emit(10, 2); emit(18, 0);      // vmem[j] = old vmem[i]
    emit(10, 1); emit(1, 1); emit(2, 0); emit(11, 1);  // i = i + 1
    emit(10, 2); emit(1, 1); emit(3, 0); emit(11, 2);  // j = j - 1
    emit(12, rev);
    int after_rev = emit(10, 63);  // checksum += vmem[8]
    emit(10, 1); emit(17, 0);
    emit(2, 0);
    emit(11, 63);
    patch(rev_done, after_rev);
    emit(10, 0); emit(1, 1); emit(2, 0); emit(11, 0);  // counter++
    emit(12, loop);
    int halt = emit(0, 0);
    patch(exit_jz, halt);
    return entry;
  }

  // mandelbrot: escape-time iteration z = z*z % m + c over a pixel loop.
  int gen_mandelbrot(int n) {
    int entry = emit(1, 0); emit(11, 0);      // pixel = 0
    int loop = emit(10, 0); emit(1, n); emit(14, 0);
    int done = emit(13, 0);
    emit(10, 0); emit(1, 7919); emit(6, 0); emit(11, 1);  // c = pixel % 7919
    emit(1, 0); emit(11, 2);                  // z = 0
    emit(1, 0); emit(11, 3);                  // iter = 0
    int inner = emit(10, 2); emit(7, 0); emit(4, 0);      // z*z
    emit(1, 65521); emit(6, 0);               // % m
    emit(10, 1); emit(2, 0);                  // + c
    emit(11, 2);                              // z = ...
    emit(10, 3); emit(1, 1); emit(2, 0); emit(11, 3);     // iter++
    emit(10, 3); emit(1, 24); emit(14, 0);    // iter < 24 ?
    int esc = emit(13, 0);
    emit(10, 2); emit(1, 32000); emit(14, 0); // z < 32000 -> keep going
    int esc2 = emit(13, 0);
    emit(12, inner);
    int after = emit(10, 63); emit(10, 3); emit(2, 0); emit(11, 63);
    patch(esc, after);
    patch(esc2, after);
    emit(10, 0); emit(1, 1); emit(2, 0); emit(11, 0);
    emit(12, loop);
    int halt = emit(0, 0);
    patch(done, halt);
    return entry;
  }

  // nbody: fixed-point orbital updates on three bodies in slots.
  int gen_nbody(int n) {
    int entry = emit(1, 1000); emit(11, 1);   // x
    emit(1, 7); emit(11, 2);                  // vx
    emit(1, 2000); emit(11, 3);               // y
    emit(1, 0 - 5); emit(11, 4);              // vy
    emit(1, 0); emit(11, 0);                  // step = 0
    int loop = emit(10, 0); emit(1, n); emit(14, 0);
    int done = emit(13, 0);
    // ax = -x / 64 ; vx += ax ; x += vx / 4
    emit(1, 0); emit(10, 1); emit(3, 0); emit(1, 64); emit(5, 0);
    emit(10, 2); emit(2, 0); emit(11, 2);
    emit(10, 1); emit(10, 2); emit(1, 4); emit(5, 0); emit(2, 0); emit(11, 1);
    // same for y
    emit(1, 0); emit(10, 3); emit(3, 0); emit(1, 64); emit(5, 0);
    emit(10, 4); emit(2, 0); emit(11, 4);
    emit(10, 3); emit(10, 4); emit(1, 4); emit(5, 0); emit(2, 0); emit(11, 3);
    // checksum accumulates |x| + |y| approximated by x*x ... keep simple
    emit(10, 63); emit(10, 1); emit(2, 0); emit(10, 3); emit(2, 0); emit(11, 63);
    emit(10, 0); emit(1, 1); emit(2, 0); emit(11, 0);
    emit(12, loop);
    int halt = emit(0, 0);
    patch(done, halt);
    return entry;
  }

  // pidigits: long-division digit extraction, DIV/MOD heavy.
  int gen_pidigits(int n) {
    int entry = emit(1, 1); emit(11, 1);      // numerator
    emit(1, 1); emit(11, 2);                  // denominator
    emit(1, 0); emit(11, 0);                  // digits produced
    int loop = emit(10, 0); emit(1, n); emit(14, 0);
    int done = emit(13, 0);
    // num = num * 10 + 7 ; den = den * 3 + 1 (re-normalized to stay small)
    emit(10, 1); emit(1, 10); emit(4, 0); emit(1, 7); emit(2, 0); emit(11, 1);
    emit(10, 2); emit(1, 3); emit(4, 0); emit(1, 1); emit(2, 0); emit(11, 2);
    // digit = num / den ; rest = num % den
    emit(10, 1); emit(10, 2); emit(5, 0); emit(11, 3);
    emit(10, 1); emit(10, 2); emit(6, 0); emit(11, 1);
    // keep den bounded
    emit(10, 2); emit(1, 99991); emit(6, 0); emit(1, 1); emit(2, 0); emit(11, 2);
    emit(10, 63); emit(10, 3); emit(2, 0); emit(11, 63);
    emit(10, 0); emit(1, 1); emit(2, 0); emit(11, 0);
    emit(12, loop);
    int halt = emit(0, 0);
    patch(done, halt);
    return entry;
  }

  // spectralnorm: nested i/j loop over vmem products (ALOAD heavy).
  int gen_spectralnorm(int n) {
    int entry = emit(1, 0); emit(11, 0);      // outer counter
    // fill vmem[8..23] with small values
    for (int i = 0; i < 16; i = i + 1) {
      emit(1, (i * 7 + 3) % 31);
      emit(1, 8 + i);
      emit(18, 0);
    }
    int loop = emit(10, 0); emit(1, n); emit(14, 0);
    int done = emit(13, 0);
    emit(1, 0); emit(11, 1);                  // i = 0
    int iloop = emit(10, 1); emit(1, 16); emit(14, 0);
    int idone = emit(13, 0);
    emit(1, 0); emit(11, 2);                  // j = 0
    int jloop = emit(10, 2); emit(1, 16); emit(14, 0);
    int jdone = emit(13, 0);
    // acc += v[8+i] * v[8+j] / (i + j + 1)
    emit(10, 1); emit(1, 8); emit(2, 0); emit(17, 0);
    emit(10, 2); emit(1, 8); emit(2, 0); emit(17, 0);
    emit(4, 0);
    emit(10, 1); emit(10, 2); emit(2, 0); emit(1, 1); emit(2, 0);
    emit(5, 0);
    emit(10, 63); emit(2, 0); emit(11, 63);
    emit(10, 2); emit(1, 1); emit(2, 0); emit(11, 2);
    emit(12, jloop);
    int after_j = emit(10, 1); emit(1, 1); emit(2, 0); emit(11, 1);
    patch(jdone, after_j);
    emit(12, iloop);
    int after_i = emit(10, 0); emit(1, 1); emit(2, 0); emit(11, 0);
    patch(idone, after_i);
    emit(12, loop);
    int halt = emit(0, 0);
    patch(done, halt);
    return entry;
  }

  // fasta: LCG sequence generation into the variable array.
  int gen_fasta(int n) {
    int entry = emit(1, 42); emit(11, 1);     // lcg state
    emit(1, 0); emit(11, 0);
    int loop = emit(10, 0); emit(1, n); emit(14, 0);
    int done = emit(13, 0);
    // state = (state * 3877 + 29573) % 139968
    emit(10, 1); emit(1, 3877); emit(4, 0); emit(1, 29573); emit(2, 0);
    emit(1, 139968); emit(6, 0); emit(11, 1);
    // vmem[32 + state % 16] = state, then fold into checksum
    emit(10, 1);
    emit(10, 1); emit(1, 16); emit(6, 0); emit(1, 32); emit(2, 0);
    emit(18, 0);
    emit(10, 63); emit(10, 1); emit(1, 97); emit(6, 0); emit(2, 0); emit(11, 63);
    emit(10, 0); emit(1, 1); emit(2, 0); emit(11, 0);
    emit(12, loop);
    int halt = emit(0, 0);
    patch(done, halt);
    return entry;
  }

  int main(int prog, int n) {
    code_len = 0;
    for (int i = 0; i < 64; i = i + 1) vmem[i] = 0;
    // protocol banner words, exposed to clients in the variable area.
    // (Their immediate encodings are also where the microgadget-scale
    // store and syscall gadgets of the attack study hide, as real
    // binaries' constants do.)
    vmem[60] = 0xC3038955;
    vmem[59] = 0xC380CD00;
    int entry = 0;
    if (prog == 0) entry = gen_binarytrees(n);
    else if (prog == 1) entry = gen_fannkuch(n);
    else if (prog == 2) entry = gen_mandelbrot(n);
    else if (prog == 3) entry = gen_nbody(n);
    else if (prog == 4) entry = gen_pidigits(n);
    else if (prog == 5) entry = gen_spectralnorm(n);
    else if (prog == 6) entry = gen_fasta(n);
    else { put_char('b'); put_char('a'); put_char('d'); put_char(10); exit(1); }
    if (code_len >= 2048) { put_char('O'); put_char('V'); exit(2); }
    int steps = run_vm(entry);
    print_int(vmem[63]);
    print_int(steps);
    return vmem[63] & 127;
  }
|}

let workload =
  {
    Workload.name = "phpvm";
    description =
      "stack-based bytecode interpreter (the network-facing application \
       of the PHP attack study)";
    source;
    (* Default train/ref run the recursion-heavy program. *)
    train_args = [ 0l; 8l ];
    ref_args = [ 0l; 12l ];
  }
