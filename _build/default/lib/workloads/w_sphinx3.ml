(* 482.sphinx3 analogue: acoustic scoring.  Per-frame Gaussian-mixture
   style scoring: for every frame and every senone, accumulate weighted
   squared distances over feature dimensions and track the best — the
   dense multiply-accumulate scoring loop of a speech recognizer. *)

let workload =
  {
    Workload.name = "482.sphinx3";
    description = "GMM-style senone scoring of feature frames";
    train_args = [ 83l; 8l ];
    ref_args = [ 83l; 40l ];
    source =
      Workload.prng_helpers
      ^ {|
  global int means[2048];    // 64 senones x 32 dims
  global int vars_[2048];
  global int feat[32];
  global int best_senone[512];

  int score_frame(int frame_idx) {
    int best = 0 - 1000000000;
    int arg = 0;
    for (int s = 0; s < 64; s = s + 1) {
      int acc = 0;
      int base = s * 32;
      for (int d = 0; d < 32; d = d + 1) {
        int diff = feat[d] - means[base + d];
        acc = acc - diff * diff / (vars_[base + d] + 1);
      }
      if (acc > best) { best = acc; arg = s; }
    }
    best_senone[frame_idx & 511] = arg;
    return best;
  }

  int main(int seed, int frames) {
    rnd_init(seed);
    for (int i = 0; i < 2048; i = i + 1) {
      means[i] = rnd() % 256 - 128;
      vars_[i] = 1 + rnd() % 31;
    }
    int checksum = 0;
    for (int f = 0; f < frames; f = f + 1) {
      // synthesize a frame that drifts over time, like real speech
      for (int d = 0; d < 32; d = d + 1)
        feat[d] = (rnd() % 64) + (f % 128) - 96;
      checksum = checksum + score_frame(f);
      // cold path: silence detection resets the feature vector
      if (checksum % 9973 == 0) {
        for (int d = 0; d < 32; d = d + 1) feat[d] = 0;
        checksum = checksum + score_frame(f);
      }
    }
    print_int(checksum);
    return checksum & 127;
  }
|};
  }
