(* 403.gcc analogue: expression-tree constant folding.  Builds random
   binary expression trees in parallel arrays and repeatedly folds them
   bottom-up — pointer-chasing tree walks with an explicit work stack,
   like a compiler's IR passes. *)

let workload =
  {
    Workload.name = "403.gcc";
    description = "expression-tree construction and constant folding";
    train_args = [ 5l; 10l ];
    ref_args = [ 5l; 115l ];
    source =
      Workload.prng_helpers
      ^ {|
  global int kind[2048];   // 0 = leaf, 1 = add, 2 = sub, 3 = mul, 4 = and
  global int left[2048];
  global int right[2048];
  global int value[2048];
  global int stack[4096];
  global int node_count;

  int new_node(int k, int l, int r, int v) {
    int id = node_count;
    node_count = node_count + 1;
    kind[id] = k; left[id] = l; right[id] = r; value[id] = v;
    return id;
  }

  int build(int depth) {
    if (depth == 0 || rnd() % 4 == 0) return new_node(0, 0, 0, rnd() % 100);
    int k = 1 + rnd() % 4;
    int l = build(depth - 1);
    int r = build(depth - 1);
    return new_node(k, l, r, 0);
  }

  // Iterative post-order fold with an explicit stack; second visits are
  // marked by negating the pushed id (offset by one to keep zero safe).
  int fold(int root) {
    int sp = 0;
    stack[sp] = root + 1; sp = sp + 1;
    while (sp > 0) {
      sp = sp - 1;
      int entry = stack[sp];
      if (entry > 0) {
        int id = entry - 1;
        if (kind[id] == 0) value[id] = value[id];
        else {
          stack[sp] = 0 - entry; sp = sp + 1;
          stack[sp] = left[id] + 1; sp = sp + 1;
          stack[sp] = right[id] + 1; sp = sp + 1;
        }
      } else {
        int id = (0 - entry) - 1;
        int a = value[left[id]];
        int b = value[right[id]];
        if (kind[id] == 1) value[id] = a + b;
        else if (kind[id] == 2) value[id] = a - b;
        else if (kind[id] == 3) value[id] = a * b;
        else if (kind[id] == 5) value[id] = a << (b & 31);
        else value[id] = a & b;
        kind[id] = 0;
      }
    }
    return value[root];
  }

  // Strength reduction: multiplications by a power of two become shifts
  // (kind 5).  Returns the number of rewrites, like a pass statistic.
  int is_pow2(int v) { return v > 0 && (v & (v - 1)) == 0; }

  int log2_(int v) {
    int n = 0;
    while (v > 1) { v = v >> 1; n = n + 1; }
    return n;
  }

  int strength_reduce(int id) {
    int rewrites = 0;
    if (kind[id] != 0) {
      rewrites = strength_reduce(left[id]) + strength_reduce(right[id]);
      if (kind[id] == 3 && kind[right[id]] == 0 && is_pow2(value[right[id]])) {
        kind[id] = 5;   // shift-left node
        value[right[id]] = log2_(value[right[id]]);
        rewrites = rewrites + 1;
      }
    }
    return rewrites;
  }

  // Structural hashing (GVN-lite): count how many subtrees share a hash
  // with an earlier one — candidates for common-subexpression reuse.
  global int hash_seen[256];

  int subtree_hash(int id) {
    if (kind[id] == 0) return value[id] * 2 + 1;
    int h = kind[id] * 65599 + subtree_hash(left[id]);
    h = h * 65599 + subtree_hash(right[id]);
    return h;
  }

  int count_shared(int root) {
    for (int i = 0; i < 256; i = i + 1) hash_seen[i] = 0;
    int shared = 0;
    for (int id = 0; id < node_count; id = id + 1) {
      if (kind[id] != 0) {
        int h = subtree_hash(id) & 255;
        if (hash_seen[h]) shared = shared + 1;
        hash_seen[h] = 1;
      }
    }
    return shared;
  }

  // Instruction scheduling estimate: a postorder walk computing
  // Sethi-Ullman register need of each tree.
  int regs_needed(int id) {
    if (kind[id] == 0) return 1;
    int l = regs_needed(left[id]);
    int r = regs_needed(right[id]);
    if (l == r) return l + 1;
    if (l > r) return l;
    return r;
  }

  int main(int seed, int trees) {
    rnd_init(seed);
    int checksum = 0;
    int rewrites = 0;
    int spills = 0;
    for (int t = 0; t < trees; t = t + 1) {
      node_count = 0;
      int root = build(9);
      if (node_count >= 2048) { put_char('O'); put_char('V'); exit(1); }
      rewrites = rewrites + strength_reduce(root);
      checksum = checksum + count_shared(root);
      int need = regs_needed(root);
      if (need > 6) spills = spills + need - 6;   // beyond x86's GPRs
      checksum = checksum ^ fold(root) + node_count;
    }
    print_int(checksum);
    print_int(rewrites);
    print_int(spills);
    return checksum & 127;
  }
|};
  }
