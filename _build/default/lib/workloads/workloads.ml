let all =
  [
    W_perlbench.workload;
    W_bzip2.workload;
    W_gcc.workload;
    W_mcf.workload;
    W_milc.workload;
    W_namd.workload;
    W_gobmk.workload;
    W_dealii.workload;
    W_soplex.workload;
    W_povray.workload;
    W_hmmer.workload;
    W_sjeng.workload;
    W_libquantum.workload;
    W_h264ref.workload;
    W_lbm.workload;
    W_omnetpp.workload;
    W_astar.workload;
    W_sphinx3.workload;
    W_xalanc.workload;
  ]

let names = List.map (fun (w : Workload.t) -> w.name) all

let find name =
  let suffix_matches (w : Workload.t) =
    w.name = name
    ||
    match String.index_opt w.name '.' with
    | Some i -> String.sub w.name (i + 1) (String.length w.name - i - 1) = name
    | None -> false
  in
  List.find suffix_matches all

let phpvm = Phpvm.workload
let php_profiles = Phpvm.profile_programs
