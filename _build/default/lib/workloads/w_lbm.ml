(* 470.lbm analogue: lattice-Boltzmann relaxation.  A small D2Q5
   streaming-and-collision kernel in fixed point; deliberately the tiniest
   program of the suite, as 470.lbm is in the paper (its binary is mostly
   C library code). *)

let workload =
  {
    Workload.name = "470.lbm";
    description = "D2Q5 lattice-Boltzmann streaming and collision";
    train_args = [ 71l; 5l ];
    ref_args = [ 71l; 20l ];
    source =
      {|
  global int f0[1024];   // 32 x 32, rest density
  global int fn_[1024];
  global int fe[1024];
  global int fs[1024];
  global int fw[1024];

  int main(int seed, int steps) {
    int dim = 32;
    int n = dim * dim;
    for (int i = 0; i < n; i = i + 1) {
      f0[i] = 1000 + (i * seed) % 97;
      fn_[i] = 250; fe[i] = 250; fs[i] = 250; fw[i] = 250;
    }
    int checksum = 0;
    for (int s = 0; s < steps; s = s + 1) {
      for (int y = 0; y < dim; y = y + 1) {
        int row = y * dim;
        int up = ((y + dim - 1) % dim) * dim;
        int dn = ((y + 1) % dim) * dim;
        for (int x = 0; x < dim; x = x + 1) {
          int lf = row + (x + dim - 1) % dim;
          int rt = row + (x + 1) % dim;
          int rho = f0[row + x] + fn_[up + x] + fe[lf] + fs[dn + x] + fw[rt];
          int eq = rho / 5;
          // single-relaxation-time collision toward equilibrium
          f0[row + x] = f0[row + x] + (eq - f0[row + x]) / 2;
          fn_[row + x] = fn_[up + x] + (eq - fn_[up + x]) / 2;
          fe[row + x] = fe[lf] + (eq - fe[lf]) / 2;
          fs[row + x] = fs[dn + x] + (eq - fs[dn + x]) / 2;
          fw[row + x] = fw[rt] + (eq - fw[rt]) / 2;
        }
      }
      checksum = checksum + f0[s % 1024];
    }
    print_int(checksum);
    return checksum & 127;
  }
|};
  }
