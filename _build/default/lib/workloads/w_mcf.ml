(* 429.mcf analogue: single-source shortest paths (Bellman-Ford) on a
   random sparse graph stored in edge arrays — the memory-bound relaxation
   sweep is the hot loop, as in mcf's network simplex. *)

let workload =
  {
    Workload.name = "429.mcf";
    description = "Bellman-Ford shortest paths on a sparse random graph";
    train_args = [ 7l; 40l ];
    ref_args = [ 7l; 500l ];
    source =
      Workload.prng_helpers
      ^ {|
  global int edge_src[4096];
  global int edge_dst[4096];
  global int edge_w[4096];
  global int dist[512];

  int main(int seed, int nodes) {
    rnd_init(seed);
    if (nodes > 512) nodes = 512;
    int edges = nodes * 8;
    if (edges > 4096) edges = 4096;
    for (int e = 0; e < edges; e = e + 1) {
      edge_src[e] = rnd() % nodes;
      edge_dst[e] = rnd() % nodes;
      edge_w[e] = 1 + rnd() % 100;
    }
    int inf = 1000000000;
    for (int v = 0; v < nodes; v = v + 1) dist[v] = inf;
    dist[0] = 0;
    // Bellman-Ford: nodes-1 relaxation rounds with early exit.
    for (int round = 0; round < nodes - 1; round = round + 1) {
      int changed = 0;
      for (int e = 0; e < edges; e = e + 1) {
        int du = dist[edge_src[e]];
        if (du != inf) {
          int cand = du + edge_w[e];
          if (cand < dist[edge_dst[e]]) {
            dist[edge_dst[e]] = cand;
            changed = 1;
          }
        }
      }
      if (changed == 0) break;
    }
    int checksum = 0;
    int unreachable = 0;
    for (int v = 0; v < nodes; v = v + 1) {
      if (dist[v] == inf) unreachable = unreachable + 1;
      else checksum = checksum + dist[v];
    }
    print_int(checksum);
    print_int(unreachable);
    return checksum & 127;
  }
|};
  }
