type candidate = {
  insn : Insn.t;
  encoding : string;
  second_byte_decoding : string option;
  locks_bus : bool;
}

let mk ?second ?(locks_bus = false) insn =
  { insn; encoding = Encode.insn insn; second_byte_decoding = second; locks_bus }

let all =
  let open Insn in
  let open Reg in
  [
    mk Nop;
    mk (Mov_rm_r (Reg ESP, ESP)) ~second:"IN";
    mk (Mov_rm_r (Reg EBP, EBP)) ~second:"IN";
    mk (Lea (ESI, mem_base ESI)) ~second:"SS:";
    mk (Lea (EDI, mem_base EDI)) ~second:"AAS";
    mk (Xchg_rm_r (Reg ESP, ESP)) ~second:"IN" ~locks_bus:true;
    mk (Xchg_rm_r (Reg EBP, EBP)) ~second:"IN" ~locks_bus:true;
  ]

let default =
  Array.of_list
    (List.filter_map
       (fun c -> if c.locks_bus then None else Some c.insn)
       all)

let with_xchg = Array.of_list (List.map (fun c -> c.insn) all)

let is_candidate i = List.exists (fun c -> Insn.equal c.insn i) all
let strip insns = List.filter (fun i -> not (is_candidate i)) insns

let pp_table ppf () =
  Format.fprintf ppf "%-18s %-8s %s@." "Instruction" "Encoding" "Second Byte";
  List.iter
    (fun c ->
      let hex =
        String.concat " "
          (List.init (String.length c.encoding) (fun i ->
               Printf.sprintf "%02X" (Char.code c.encoding.[i])))
      in
      Format.fprintf ppf "%-18s %-8s %s@." (Insn.to_string c.insn) hex
        (Option.value c.second_byte_decoding ~default:"-"))
    all
