(** x86-32 general-purpose registers.

    The eight 32-bit registers, in hardware encoding order (the 3-bit value
    used in ModRM/SIB fields and in short-form opcodes such as
    [PUSH r32 = 50+rd]). *)

type t = EAX | ECX | EDX | EBX | ESP | EBP | ESI | EDI
[@@deriving eq, ord, show]

type r8 = AL | CL | DL | BL [@@deriving eq, ord, show]
(** The four 8-bit low registers we need (for [SETcc]).  Their hardware
    encodings coincide with the corresponding 32-bit registers. *)

val encode : t -> int
(** 3-bit hardware number, 0-7. *)

val decode : int -> t
(** Inverse of {!encode}.  Raises [Invalid_argument] outside 0-7. *)

val encode8 : r8 -> int
val decode8 : int -> r8 option
(** [decode8 n] is [None] for encodings 4-7 (AH/CH/DH/BH, unsupported). *)

val name : t -> string
(** Conventional lowercase mnemonic, e.g. ["eax"]. *)

val name8 : r8 -> string
val all : t list
(** All eight registers in encoding order. *)

val allocatable : t list
(** Registers available to the register allocator: everything except [ESP]
    and [EBP], which are reserved for the stack and frame pointers. *)

val caller_saved : t list
(** Clobbered across calls under our calling convention
    (EAX, ECX, EDX). *)

val callee_saved : t list
(** Preserved across calls (EBX, ESI, EDI). *)

val to_r8 : t -> r8 option
(** Low byte of a register, when addressable without REX (EAX-EBX). *)

val of_r8 : r8 -> t
(** The 32-bit register containing an 8-bit register. *)
