type t = EAX | ECX | EDX | EBX | ESP | EBP | ESI | EDI
[@@deriving eq, ord, show]

type r8 = AL | CL | DL | BL [@@deriving eq, ord, show]

let encode = function
  | EAX -> 0
  | ECX -> 1
  | EDX -> 2
  | EBX -> 3
  | ESP -> 4
  | EBP -> 5
  | ESI -> 6
  | EDI -> 7

let decode = function
  | 0 -> EAX
  | 1 -> ECX
  | 2 -> EDX
  | 3 -> EBX
  | 4 -> ESP
  | 5 -> EBP
  | 6 -> ESI
  | 7 -> EDI
  | n -> invalid_arg (Printf.sprintf "Reg.decode: %d" n)

let encode8 = function AL -> 0 | CL -> 1 | DL -> 2 | BL -> 3

let decode8 = function
  | 0 -> Some AL
  | 1 -> Some CL
  | 2 -> Some DL
  | 3 -> Some BL
  | _ -> None

let name = function
  | EAX -> "eax"
  | ECX -> "ecx"
  | EDX -> "edx"
  | EBX -> "ebx"
  | ESP -> "esp"
  | EBP -> "ebp"
  | ESI -> "esi"
  | EDI -> "edi"

let name8 = function AL -> "al" | CL -> "cl" | DL -> "dl" | BL -> "bl"
let all = [ EAX; ECX; EDX; EBX; ESP; EBP; ESI; EDI ]
let allocatable = [ EAX; ECX; EDX; EBX; ESI; EDI ]
let caller_saved = [ EAX; ECX; EDX ]
let callee_saved = [ EBX; ESI; EDI ]

let to_r8 = function
  | EAX -> Some AL
  | ECX -> Some CL
  | EDX -> Some DL
  | EBX -> Some BL
  | ESP | EBP | ESI | EDI -> None

let of_r8 = function AL -> EAX | CL -> ECX | DL -> EDX | BL -> EBX
