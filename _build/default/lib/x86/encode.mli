(** IA-32 machine-code encoder.

    Serializes {!Insn.t} values into their real hardware byte encodings
    (ModRM/SIB/displacement/immediate).  The encoder is {e canonical}: it
    always picks the shortest displacement/immediate width, so
    [Decode.insn (encode i) = i] for every representable instruction
    (verified by property test). *)

val insn : Insn.t -> string
(** [insn i] is the byte encoding of [i].  Raises [Invalid_argument] on
    unencodable operands (LEA with a register operand is excluded by
    construction; immediates out of range for [Ret_imm]/[Int]/shift
    counts). *)

val insn_into : Buffer.t -> Insn.t -> unit
(** Append the encoding of one instruction to a buffer. *)

val program : Insn.t list -> string
(** Concatenated encodings, in order. *)

val length : Insn.t -> int
(** [length i = String.length (insn i)] without building the string twice;
    used by layout to compute branch displacements. *)
