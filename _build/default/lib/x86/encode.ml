open Insn

let fits_int8 (v : int32) = v >= -128l && v <= 127l

let byte buf n = Buffer.add_char buf (Char.chr (n land 0xFF))

let int32_le buf (v : int32) =
  let v = Int32.to_int v in
  byte buf v;
  byte buf (v asr 8);
  byte buf (v asr 16);
  byte buf (v asr 24)

let int16_le buf v =
  byte buf v;
  byte buf (v asr 8)

let scale_bits = function S1 -> 0 | S2 -> 1 | S4 -> 2 | S8 -> 3

(* ModRM byte: mod(7:6) reg(5:3) rm(2:0); SIB: scale(7:6) index(5:3)
   base(2:0).  [reg_field] is either a register number or an opcode
   extension digit. *)
let modrm buf ~reg_field operand =
  let mrm md rm = byte buf ((md lsl 6) lor (reg_field lsl 3) lor rm) in
  match operand with
  | Reg r -> mrm 0b11 (Reg.encode r)
  | Mem { base; index; disp } -> (
      let sib ~index_bits ~base_bits =
        let scale, idx =
          match index_bits with
          | None -> (0, 0b100)
          | Some (i, s) -> (scale_bits s, Reg.encode i)
        in
        byte buf ((scale lsl 6) lor (idx lsl 3) lor base_bits)
      in
      match (base, index) with
      | None, None ->
          (* Absolute [disp32]: mod=00, rm=101. *)
          mrm 0b00 0b101;
          int32_le buf disp
      | None, Some (i, s) ->
          if Reg.equal i Reg.ESP then
            invalid_arg "Encode: ESP cannot be an index register";
          (* Index without base: mod=00 rm=100, SIB base=101, disp32. *)
          mrm 0b00 0b100;
          sib ~index_bits:(Some (i, s)) ~base_bits:0b101;
          int32_le buf disp
      | Some b, idx ->
          (match idx with
          | Some (i, _) when Reg.equal i Reg.ESP ->
              invalid_arg "Encode: ESP cannot be an index register"
          | _ -> ());
          let needs_sib = idx <> None || Reg.equal b Reg.ESP in
          let base_bits = Reg.encode b in
          (* mod=00 with base EBP means [disp32] instead, so EBP always
             carries an explicit displacement. *)
          let md =
            if disp = 0l && not (Reg.equal b Reg.EBP) then 0b00
            else if fits_int8 disp then 0b01
            else 0b10
          in
          if needs_sib then (
            mrm md 0b100;
            sib ~index_bits:idx ~base_bits)
          else mrm md base_bits;
          if md = 0b01 then byte buf (Int32.to_int disp)
          else if md = 0b10 then int32_le buf disp)

let alu_digit = function
  | Add -> 0
  | Or -> 1
  | Adc -> 2
  | Sbb -> 3
  | And -> 4
  | Sub -> 5
  | Xor -> 6
  | Cmp -> 7

let shift_digit = function Shl -> 4 | Shr -> 5 | Sar -> 7

let insn_into buf i =
  match i with
  | Mov_rm_r (d, s) ->
      byte buf 0x89;
      modrm buf ~reg_field:(Reg.encode s) d
  | Mov_r_rm (d, s) ->
      byte buf 0x8B;
      modrm buf ~reg_field:(Reg.encode d) s
  | Mov_r_imm (d, imm) ->
      byte buf (0xB8 + Reg.encode d);
      int32_le buf imm
  | Mov_rm_imm (d, imm) ->
      byte buf 0xC7;
      modrm buf ~reg_field:0 d;
      int32_le buf imm
  | Alu_rm_r (op, d, s) ->
      byte buf ((alu_digit op lsl 3) lor 0x01);
      modrm buf ~reg_field:(Reg.encode s) d
  | Alu_r_rm (op, d, s) ->
      byte buf ((alu_digit op lsl 3) lor 0x03);
      modrm buf ~reg_field:(Reg.encode d) s
  | Alu_rm_imm (op, d, imm) ->
      if fits_int8 imm then (
        byte buf 0x83;
        modrm buf ~reg_field:(alu_digit op) d;
        byte buf (Int32.to_int imm))
      else (
        byte buf 0x81;
        modrm buf ~reg_field:(alu_digit op) d;
        int32_le buf imm)
  | Test_rm_r (d, s) ->
      byte buf 0x85;
      modrm buf ~reg_field:(Reg.encode s) d
  | Lea (d, m) ->
      byte buf 0x8D;
      modrm buf ~reg_field:(Reg.encode d) (Mem m)
  | Inc_r r -> byte buf (0x40 + Reg.encode r)
  | Dec_r r -> byte buf (0x48 + Reg.encode r)
  | Neg o ->
      byte buf 0xF7;
      modrm buf ~reg_field:3 o
  | Not o ->
      byte buf 0xF7;
      modrm buf ~reg_field:2 o
  | Imul_r_rm (d, s) ->
      byte buf 0x0F;
      byte buf 0xAF;
      modrm buf ~reg_field:(Reg.encode d) s
  | Mul o ->
      byte buf 0xF7;
      modrm buf ~reg_field:4 o
  | Idiv o ->
      byte buf 0xF7;
      modrm buf ~reg_field:7 o
  | Cdq -> byte buf 0x99
  | Shift_imm (sh, o, n) ->
      if n < 0 || n > 31 then invalid_arg "Encode: shift count out of range";
      byte buf 0xC1;
      modrm buf ~reg_field:(shift_digit sh) o;
      byte buf n
  | Shift_cl (sh, o) ->
      byte buf 0xD3;
      modrm buf ~reg_field:(shift_digit sh) o
  | Push_r r -> byte buf (0x50 + Reg.encode r)
  | Push_imm imm ->
      byte buf 0x68;
      int32_le buf imm
  | Pop_r r -> byte buf (0x58 + Reg.encode r)
  | Ret -> byte buf 0xC3
  | Ret_imm n ->
      if n < 0 || n > 0xFFFF then invalid_arg "Encode: ret imm16 out of range";
      byte buf 0xC2;
      int16_le buf n
  | Call_rel d ->
      byte buf 0xE8;
      int32_le buf d
  | Call_rm o ->
      byte buf 0xFF;
      modrm buf ~reg_field:2 o
  | Jmp_rel d ->
      byte buf 0xE9;
      int32_le buf d
  | Jmp_rel8 d ->
      if d < -128 || d > 127 then invalid_arg "Encode: rel8 out of range";
      byte buf 0xEB;
      byte buf d
  | Jmp_rm o ->
      byte buf 0xFF;
      modrm buf ~reg_field:4 o
  | Jcc (c, d) ->
      byte buf 0x0F;
      byte buf (0x80 + Cond.encode c);
      int32_le buf d
  | Jcc8 (c, d) ->
      if d < -128 || d > 127 then invalid_arg "Encode: rel8 out of range";
      byte buf (0x70 + Cond.encode c);
      byte buf d
  | Setcc (c, r) ->
      byte buf 0x0F;
      byte buf (0x90 + Cond.encode c);
      byte buf (0b11000000 lor Reg.encode8 r)
  | Movzx_r_r8 (d, s) ->
      byte buf 0x0F;
      byte buf 0xB6;
      byte buf (0b11000000 lor (Reg.encode d lsl 3) lor Reg.encode8 s)
  | Xchg_rm_r (d, s) ->
      byte buf 0x87;
      modrm buf ~reg_field:(Reg.encode s) d
  | Int n ->
      if n < 0 || n > 0xFF then invalid_arg "Encode: int imm8 out of range";
      byte buf 0xCD;
      byte buf n
  | Nop -> byte buf 0x90
  | Hlt -> byte buf 0xF4

let insn i =
  let buf = Buffer.create 8 in
  insn_into buf i;
  Buffer.contents buf

let program insns =
  let buf = Buffer.create 256 in
  List.iter (insn_into buf) insns;
  Buffer.contents buf

let scratch = Buffer.create 16

let length i =
  Buffer.clear scratch;
  insn_into scratch i;
  Buffer.length scratch
