type t = O | NO | B | AE | E | NE | BE | A | S | NS | P | NP | L | GE | LE | G
[@@deriving eq, ord, show]

let encode = function
  | O -> 0
  | NO -> 1
  | B -> 2
  | AE -> 3
  | E -> 4
  | NE -> 5
  | BE -> 6
  | A -> 7
  | S -> 8
  | NS -> 9
  | P -> 10
  | NP -> 11
  | L -> 12
  | GE -> 13
  | LE -> 14
  | G -> 15

let decode = function
  | 0 -> O
  | 1 -> NO
  | 2 -> B
  | 3 -> AE
  | 4 -> E
  | 5 -> NE
  | 6 -> BE
  | 7 -> A
  | 8 -> S
  | 9 -> NS
  | 10 -> P
  | 11 -> NP
  | 12 -> L
  | 13 -> GE
  | 14 -> LE
  | 15 -> G
  | n -> invalid_arg (Printf.sprintf "Cond.decode: %d" n)

let negate c = decode (encode c lxor 1)

let name = function
  | O -> "o"
  | NO -> "no"
  | B -> "b"
  | AE -> "ae"
  | E -> "e"
  | NE -> "ne"
  | BE -> "be"
  | A -> "a"
  | S -> "s"
  | NS -> "ns"
  | P -> "p"
  | NP -> "np"
  | L -> "l"
  | GE -> "ge"
  | LE -> "le"
  | G -> "g"
