open Insn

(* A tiny cursor over the input; decoding failures are expressed with
   [option] end to end, so scanning arbitrary bytes never raises. *)
type cursor = { bytes : string; mutable pos : int }

let ( let* ) = Option.bind

let u8 c =
  if c.pos >= String.length c.bytes then None
  else begin
    let b = Char.code c.bytes.[c.pos] in
    c.pos <- c.pos + 1;
    Some b
  end

let i8 c =
  let* b = u8 c in
  Some (if b >= 128 then b - 256 else b)

let u16 c =
  let* lo = u8 c in
  let* hi = u8 c in
  Some ((hi lsl 8) lor lo)

let i32 c =
  let* b0 = u8 c in
  let* b1 = u8 c in
  let* b2 = u8 c in
  let* b3 = u8 c in
  let open Int32 in
  Some
    (logor
       (of_int (b0 lor (b1 lsl 8) lor (b2 lsl 16)))
       (shift_left (of_int b3) 24))

let scale_of_bits = function
  | 0 -> S1
  | 1 -> S2
  | 2 -> S4
  | _ -> S8

(* Decode a ModRM byte (and any SIB/displacement).  Returns the reg/digit
   field and the r/m operand. *)
let modrm c =
  let* b = u8 c in
  let md = b lsr 6 and reg = (b lsr 3) land 7 and rm = b land 7 in
  if md = 0b11 then Some (reg, Reg (Reg.decode rm))
  else
    let* base, index =
      if rm = 0b100 then
        (* SIB byte follows. *)
        let* s = u8 c in
        let sc = s lsr 6 and idx = (s lsr 3) land 7 and bse = s land 7 in
        let index =
          if idx = 0b100 then None else Some (Reg.decode idx, scale_of_bits sc)
        in
        if bse = 0b101 && md = 0b00 then Some (None, index)
        else Some (Some (Reg.decode bse), index)
      else if md = 0b00 && rm = 0b101 then Some (None, None)
      else Some (Some (Reg.decode rm), None)
    in
    let* disp =
      match md with
      | 0b01 ->
          let* d = i8 c in
          Some (Int32.of_int d)
      | 0b10 -> i32 c
      | _ ->
          (* mod=00: no displacement unless the operand is the
             absolute/base-less form, which carries disp32. *)
          if base = None then i32 c else Some 0l
    in
    Some (reg, Mem { base; index; disp })

(* Opcodes 01..3B: the ALU matrix.  Row = operation, column 1 = rm,r and
   column 3 = r,rm. *)
let alu_of_row = function
  | 0 -> Some Add
  | 1 -> Some Or
  | 2 -> Some Adc
  | 3 -> Some Sbb
  | 4 -> Some And
  | 5 -> Some Sub
  | 6 -> Some Xor
  | 7 -> Some Cmp
  | _ -> None

let alu_of_digit = alu_of_row

let shift_of_digit = function
  | 4 -> Some Shl
  | 5 -> Some Shr
  | 7 -> Some Sar
  | _ -> None

let decode_0f c =
  let* op2 = u8 c in
  if op2 >= 0x80 && op2 <= 0x8F then
    let* d = i32 c in
    Some (Jcc (Cond.decode (op2 - 0x80), d))
  else if op2 >= 0x90 && op2 <= 0x9F then
    let* b = u8 c in
    if b lsr 6 <> 0b11 then None
    else
      let* r8 = Reg.decode8 (b land 7) in
      Some (Setcc (Cond.decode (op2 - 0x90), r8))
  else if op2 = 0xAF then
    let* reg, rm = modrm c in
    Some (Imul_r_rm (Reg.decode reg, rm))
  else if op2 = 0xB6 then
    let* b = u8 c in
    if b lsr 6 <> 0b11 then None
    else
      let* r8 = Reg.decode8 (b land 7) in
      Some (Movzx_r_r8 (Reg.decode ((b lsr 3) land 7), r8))
  else None

let decode_one c =
  let* op = u8 c in
  match op with
  | 0x0F -> decode_0f c
  | _ when op land 0xC7 = 0x01 && op <= 0x39 ->
      (* 01/09/11/19/21/29/31/39: ALU r/m, r *)
      let* alu = alu_of_row (op lsr 3) in
      let* reg, rm = modrm c in
      Some (Alu_rm_r (alu, rm, Reg.decode reg))
  | _ when op land 0xC7 = 0x03 && op <= 0x3B ->
      let* alu = alu_of_row (op lsr 3) in
      let* reg, rm = modrm c in
      Some (Alu_r_rm (alu, Reg.decode reg, rm))
  | _ when op >= 0x40 && op <= 0x47 -> Some (Inc_r (Reg.decode (op - 0x40)))
  | _ when op >= 0x48 && op <= 0x4F -> Some (Dec_r (Reg.decode (op - 0x48)))
  | _ when op >= 0x50 && op <= 0x57 -> Some (Push_r (Reg.decode (op - 0x50)))
  | _ when op >= 0x58 && op <= 0x5F -> Some (Pop_r (Reg.decode (op - 0x58)))
  | 0x68 ->
      let* imm = i32 c in
      Some (Push_imm imm)
  | _ when op >= 0x70 && op <= 0x7F ->
      let* d = i8 c in
      Some (Jcc8 (Cond.decode (op - 0x70), d))
  | 0x81 ->
      let* digit, rm = modrm c in
      let* alu = alu_of_digit digit in
      let* imm = i32 c in
      Some (Alu_rm_imm (alu, rm, imm))
  | 0x83 ->
      let* digit, rm = modrm c in
      let* alu = alu_of_digit digit in
      let* imm = i8 c in
      Some (Alu_rm_imm (alu, rm, Int32.of_int imm))
  | 0x85 ->
      let* reg, rm = modrm c in
      Some (Test_rm_r (rm, Reg.decode reg))
  | 0x87 ->
      let* reg, rm = modrm c in
      Some (Xchg_rm_r (rm, Reg.decode reg))
  | 0x89 ->
      let* reg, rm = modrm c in
      Some (Mov_rm_r (rm, Reg.decode reg))
  | 0x8B ->
      let* reg, rm = modrm c in
      Some (Mov_r_rm (Reg.decode reg, rm))
  | 0x8D -> (
      let* reg, rm = modrm c in
      (* LEA requires a memory operand. *)
      match rm with
      | Mem m -> Some (Lea (Reg.decode reg, m))
      | Reg _ -> None)
  | 0x90 -> Some Nop
  | 0x99 -> Some Cdq
  | _ when op >= 0xB8 && op <= 0xBF ->
      let* imm = i32 c in
      Some (Mov_r_imm (Reg.decode (op - 0xB8), imm))
  | 0xC1 ->
      let* digit, rm = modrm c in
      let* sh = shift_of_digit digit in
      let* n = u8 c in
      if n > 31 then None else Some (Shift_imm (sh, rm, n))
  | 0xC2 ->
      let* n = u16 c in
      Some (Ret_imm n)
  | 0xC3 -> Some Ret
  | 0xC7 ->
      let* digit, rm = modrm c in
      if digit <> 0 then None
      else
        let* imm = i32 c in
        Some (Mov_rm_imm (rm, imm))
  | 0xCD ->
      let* n = u8 c in
      Some (Int n)
  | 0xD3 ->
      let* digit, rm = modrm c in
      let* sh = shift_of_digit digit in
      Some (Shift_cl (sh, rm))
  | 0xE8 ->
      let* d = i32 c in
      Some (Call_rel d)
  | 0xE9 ->
      let* d = i32 c in
      Some (Jmp_rel d)
  | 0xEB ->
      let* d = i8 c in
      Some (Jmp_rel8 d)
  | 0xF4 -> Some Hlt
  | 0xF7 -> (
      let* digit, rm = modrm c in
      match digit with
      | 2 -> Some (Not rm)
      | 3 -> Some (Neg rm)
      | 4 -> Some (Mul rm)
      | 7 -> Some (Idiv rm)
      | _ -> None)
  | 0xFF -> (
      let* digit, rm = modrm c in
      match digit with
      | 2 -> Some (Call_rm rm)
      | 4 -> Some (Jmp_rm rm)
      | _ -> None)
  | _ -> None

let insn ?(pos = 0) bytes =
  if pos < 0 || pos >= String.length bytes then None
  else
    let c = { bytes; pos } in
    let* i = decode_one c in
    Some (i, c.pos - pos)

let sequence ?(pos = 0) ?max bytes =
  let rec loop pos n acc =
    let stop = match max with Some m -> n >= m | None -> false in
    if stop || pos >= String.length bytes then List.rev acc
    else
      match insn ~pos bytes with
      | None -> List.rev acc
      | Some (i, len) -> loop (pos + len) (n + 1) ((i, pos) :: acc)
  in
  loop pos 0 []

let all bytes = List.map (fun (i, off) -> (off, i)) (sequence bytes)

let pp_listing ppf bytes =
  let n = String.length bytes in
  let rec loop pos =
    if pos < n then
      match insn ~pos bytes with
      | Some (i, len) ->
          let hex = String.sub bytes pos len in
          let hex =
            String.concat " "
              (List.init len (fun k -> Printf.sprintf "%02x" (Char.code hex.[k])))
          in
          Format.fprintf ppf "%6x  %-24s %a@." pos hex Insn.pp i;
          loop (pos + len)
      | None ->
          Format.fprintf ppf "%6x  %02x (bad)@." pos (Char.code bytes.[pos]);
          loop (pos + 1)
  in
  loop 0
