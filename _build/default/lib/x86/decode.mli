(** IA-32 linear-sweep decoder.

    The inverse of {!Encode}, plus graceful handling of arbitrary byte
    streams: gadget scanners decode at {e every} offset of a [.text]
    section, including mid-instruction offsets, so the decoder must never
    raise — bytes that are not a valid instruction of our machine language
    yield [None].

    Non-canonical but architecturally valid encodings (e.g. a 32-bit
    displacement that would have fitted in 8 bits) are accepted; this
    mirrors a real disassembler and matters for gadget scanning, where the
    interesting instruction streams start inside other instructions. *)

val insn : ?pos:int -> string -> (Insn.t * int) option
(** [insn ?pos bytes] decodes one instruction starting at byte offset
    [pos] (default 0).  Returns the instruction and its encoded length, or
    [None] if the bytes at [pos] are not a valid instruction (unknown
    opcode, invalid ModRM digit, or truncated). *)

val sequence : ?pos:int -> ?max:int -> string -> (Insn.t * int) list
(** [sequence ?pos ?max bytes] linear-sweeps from [pos], returning
    [(insn, offset)] pairs, stopping at the first undecodable byte, after
    [max] instructions (default: unbounded), or at the end of the
    buffer. *)

val all : string -> (int * Insn.t) list
(** Decode a whole section front to back (offset, instruction); stops at
    the first invalid byte.  Intended for encoder-produced sections, where
    it consumes every byte. *)

val pp_listing : Format.formatter -> string -> unit
(** Hex-dump disassembly listing of a section, one instruction per line
    ("[offset]  [bytes]  [mnemonic]"); undecodable tail bytes are shown as
    [(bad)]. *)
