type scale = S1 | S2 | S4 | S8 [@@deriving eq, ord, show]

type mem = {
  base : Reg.t option;
  index : (Reg.t * scale) option;
  disp : int32;
}
[@@deriving eq, ord, show]

type operand = Reg of Reg.t | Mem of mem [@@deriving eq, ord, show]

type alu = Add | Or | Adc | Sbb | And | Sub | Xor | Cmp
[@@deriving eq, ord, show]

type shift = Shl | Shr | Sar [@@deriving eq, ord, show]

type t =
  | Mov_rm_r of operand * Reg.t
  | Mov_r_rm of Reg.t * operand
  | Mov_r_imm of Reg.t * int32
  | Mov_rm_imm of operand * int32
  | Alu_rm_r of alu * operand * Reg.t
  | Alu_r_rm of alu * Reg.t * operand
  | Alu_rm_imm of alu * operand * int32
  | Test_rm_r of operand * Reg.t
  | Lea of Reg.t * mem
  | Inc_r of Reg.t
  | Dec_r of Reg.t
  | Neg of operand
  | Not of operand
  | Imul_r_rm of Reg.t * operand
  | Mul of operand
  | Idiv of operand
  | Cdq
  | Shift_imm of shift * operand * int
  | Shift_cl of shift * operand
  | Push_r of Reg.t
  | Push_imm of int32
  | Pop_r of Reg.t
  | Ret
  | Ret_imm of int
  | Call_rel of int32
  | Call_rm of operand
  | Jmp_rel of int32
  | Jmp_rel8 of int
  | Jmp_rm of operand
  | Jcc of Cond.t * int32
  | Jcc8 of Cond.t * int
  | Setcc of Cond.t * Reg.r8
  | Movzx_r_r8 of Reg.t * Reg.r8
  | Xchg_rm_r of operand * Reg.t
  | Int of int
  | Nop
  | Hlt
[@@deriving eq, ord, show]

let mem_abs disp = { base = None; index = None; disp }
let mem_base ?(disp = 0l) base = { base = Some base; index = None; disp }

let mem_index ?(disp = 0l) ~base ~index scale =
  if Reg.equal index Reg.ESP then
    invalid_arg "Insn.mem_index: ESP cannot be an index register";
  { base = Some base; index = Some (index, scale); disp }

let is_free_branch = function
  | Ret | Ret_imm _ | Call_rm _ | Jmp_rm _ -> true
  | _ -> false

let is_control_flow = function
  | Ret | Ret_imm _ | Call_rel _ | Call_rm _ | Jmp_rel _ | Jmp_rel8 _
  | Jmp_rm _ | Jcc _ | Jcc8 _ | Int _ | Hlt ->
      true
  | _ -> false

let is_terminator = function
  | Ret | Ret_imm _ | Jmp_rel _ | Jmp_rel8 _ | Jmp_rm _ | Hlt -> true
  | _ -> false

let writes_memory = function
  | Mov_rm_r (Mem _, _)
  | Mov_rm_imm (Mem _, _)
  | Alu_rm_r (_, Mem _, _)
  | Alu_rm_imm (_, Mem _, _)
  | Neg (Mem _)
  | Not (Mem _)
  | Shift_imm (_, Mem _, _)
  | Shift_cl (_, Mem _)
  | Xchg_rm_r (Mem _, _)
  | Push_r _ | Push_imm _ | Call_rel _ | Call_rm _ ->
      true
  | _ -> false

let alu_name = function
  | Add -> "add"
  | Or -> "or"
  | Adc -> "adc"
  | Sbb -> "sbb"
  | And -> "and"
  | Sub -> "sub"
  | Xor -> "xor"
  | Cmp -> "cmp"

let shift_name = function Shl -> "shl" | Shr -> "shr" | Sar -> "sar"
let scale_int = function S1 -> 1 | S2 -> 2 | S4 -> 4 | S8 -> 8

let pp_mem ppf { base; index; disp } =
  if disp <> 0l || (base = None && index = None) then
    Format.fprintf ppf "0x%lx" disp;
  (match (base, index) with
  | None, None -> ()
  | Some b, None -> Format.fprintf ppf "(%%%s)" (Reg.name b)
  | Some b, Some (i, s) ->
      Format.fprintf ppf "(%%%s,%%%s,%d)" (Reg.name b) (Reg.name i)
        (scale_int s)
  | None, Some (i, s) ->
      Format.fprintf ppf "(,%%%s,%d)" (Reg.name i) (scale_int s));
  ()

let pp_operand ppf = function
  | Reg r -> Format.fprintf ppf "%%%s" (Reg.name r)
  | Mem m -> pp_mem ppf m

let pp ppf insn =
  let p fmt = Format.fprintf ppf fmt in
  let rm = pp_operand and mem = pp_mem in
  match insn with
  | Mov_rm_r (d, s) -> p "mov %%%s, %a" (Reg.name s) rm d
  | Mov_r_rm (d, s) -> p "mov %a, %%%s" rm s (Reg.name d)
  | Mov_r_imm (d, i) -> p "mov $0x%lx, %%%s" i (Reg.name d)
  | Mov_rm_imm (d, i) -> p "movl $0x%lx, %a" i rm d
  | Alu_rm_r (op, d, s) -> p "%s %%%s, %a" (alu_name op) (Reg.name s) rm d
  | Alu_r_rm (op, d, s) -> p "%s %a, %%%s" (alu_name op) rm s (Reg.name d)
  | Alu_rm_imm (op, d, i) -> p "%sl $0x%lx, %a" (alu_name op) i rm d
  | Test_rm_r (d, s) -> p "test %%%s, %a" (Reg.name s) rm d
  | Lea (d, m) -> p "lea %a, %%%s" mem m (Reg.name d)
  | Inc_r r -> p "inc %%%s" (Reg.name r)
  | Dec_r r -> p "dec %%%s" (Reg.name r)
  | Neg o -> p "negl %a" rm o
  | Not o -> p "notl %a" rm o
  | Imul_r_rm (d, s) -> p "imul %a, %%%s" rm s (Reg.name d)
  | Mul o -> p "mull %a" rm o
  | Idiv o -> p "idivl %a" rm o
  | Cdq -> p "cdq"
  | Shift_imm (sh, o, n) -> p "%sl $%d, %a" (shift_name sh) n rm o
  | Shift_cl (sh, o) -> p "%sl %%cl, %a" (shift_name sh) rm o
  | Push_r r -> p "push %%%s" (Reg.name r)
  | Push_imm i -> p "push $0x%lx" i
  | Pop_r r -> p "pop %%%s" (Reg.name r)
  | Ret -> p "ret"
  | Ret_imm n -> p "ret $%d" n
  | Call_rel d -> p "call .%+ld" d
  | Call_rm o -> p "call *%a" rm o
  | Jmp_rel d -> p "jmp .%+ld" d
  | Jmp_rel8 d -> p "jmp .%+d" d
  | Jmp_rm o -> p "jmp *%a" rm o
  | Jcc (c, d) -> p "j%s .%+ld" (Cond.name c) d
  | Jcc8 (c, d) -> p "j%s .%+d" (Cond.name c) d
  | Setcc (c, r) -> p "set%s %%%s" (Cond.name c) (Reg.name8 r)
  | Movzx_r_r8 (d, s) -> p "movzx %%%s, %%%s" (Reg.name8 s) (Reg.name d)
  | Xchg_rm_r (d, s) -> p "xchg %%%s, %a" (Reg.name s) rm d
  | Int n -> p "int $0x%x" n
  | Nop -> p "nop"
  | Hlt -> p "hlt"

let to_string insn = Format.asprintf "%a" pp insn
