(** The x86-32 machine language understood by this system.

    This is the set of instructions our code generator emits, our encoder
    serializes, our decoder recognizes, and our CPU simulator executes.  It
    is a self-consistent subset of IA-32: every instruction here has its
    real hardware encoding (verified by the test suite against the Intel
    SDM byte patterns quoted in the paper, e.g. [RET = C3],
    [MOV ESP,ESP = 89 E4]).

    Design note: relative branches carry their displacement (not a target
    label) because this layer sits *below* layout — the NOP-insertion pass
    of the paper operates on a machine IR with labels
    (see {!module:Psd_machine.Mir}) and displacement patching happens at
    emission. *)

type scale = S1 | S2 | S4 | S8 [@@deriving eq, ord, show]

type mem = {
  base : Reg.t option;
  index : (Reg.t * scale) option;  (** index register may not be ESP *)
  disp : int32;
}
[@@deriving eq, ord, show]
(** A memory operand [disp(base, index, scale)]. *)

type operand = Reg of Reg.t | Mem of mem [@@deriving eq, ord, show]
(** A ModRM "r/m" operand: register or memory. *)

(** ALU group operations, in hardware [/digit] order (the [reg] field of
    the [80]-[83] opcodes and the row of the [00]-[3B] opcode matrix). *)
type alu = Add | Or | Adc | Sbb | And | Sub | Xor | Cmp
[@@deriving eq, ord, show]

type shift = Shl | Shr | Sar [@@deriving eq, ord, show]

type t =
  | Mov_rm_r of operand * Reg.t  (** [89 /r] — MOV r/m32, r32 *)
  | Mov_r_rm of Reg.t * operand  (** [8B /r] — MOV r32, r/m32 *)
  | Mov_r_imm of Reg.t * int32  (** [B8+rd id] — MOV r32, imm32 *)
  | Mov_rm_imm of operand * int32  (** [C7 /0 id] — MOV r/m32, imm32 *)
  | Alu_rm_r of alu * operand * Reg.t  (** [01/09/.../39 /r] *)
  | Alu_r_rm of alu * Reg.t * operand  (** [03/0B/.../3B /r] *)
  | Alu_rm_imm of alu * operand * int32  (** [81 /n id] or [83 /n ib] *)
  | Test_rm_r of operand * Reg.t  (** [85 /r] *)
  | Lea of Reg.t * mem  (** [8D /r] *)
  | Inc_r of Reg.t  (** [40+rd] *)
  | Dec_r of Reg.t  (** [48+rd] *)
  | Neg of operand  (** [F7 /3] *)
  | Not of operand  (** [F7 /2] *)
  | Imul_r_rm of Reg.t * operand  (** [0F AF /r] *)
  | Mul of operand  (** [F7 /4] — EDX:EAX <- EAX * r/m *)
  | Idiv of operand  (** [F7 /7] — signed divide EDX:EAX *)
  | Cdq  (** [99] — sign-extend EAX into EDX *)
  | Shift_imm of shift * operand * int  (** [C1 /n ib] *)
  | Shift_cl of shift * operand  (** [D3 /n] *)
  | Push_r of Reg.t  (** [50+rd] *)
  | Push_imm of int32  (** [68 id] *)
  | Pop_r of Reg.t  (** [58+rd] *)
  | Ret  (** [C3] *)
  | Ret_imm of int  (** [C2 iw] *)
  | Call_rel of int32  (** [E8 cd] — relative to next insn *)
  | Call_rm of operand  (** [FF /2] — indirect call *)
  | Jmp_rel of int32  (** [E9 cd] *)
  | Jmp_rel8 of int  (** [EB cb] *)
  | Jmp_rm of operand  (** [FF /4] — indirect jump *)
  | Jcc of Cond.t * int32  (** [0F 80+cc cd] *)
  | Jcc8 of Cond.t * int  (** [70+cc cb] *)
  | Setcc of Cond.t * Reg.r8  (** [0F 90+cc /r], register form *)
  | Movzx_r_r8 of Reg.t * Reg.r8  (** [0F B6 /r], register form *)
  | Xchg_rm_r of operand * Reg.t  (** [87 /r] *)
  | Int of int  (** [CD ib] — software interrupt *)
  | Nop  (** [90] *)
  | Hlt  (** [F4] *)
[@@deriving eq, ord, show]

val mem_abs : int32 -> mem
(** Absolute address [\[disp32\]]. *)

val mem_base : ?disp:int32 -> Reg.t -> mem
(** [\[base + disp\]]. *)

val mem_index : ?disp:int32 -> base:Reg.t -> index:Reg.t -> scale -> mem
(** [\[base + index*scale + disp\]].  Raises [Invalid_argument] if the
    index is ESP (unencodable). *)

val is_free_branch : t -> bool
(** The paper's "free branch": an instruction usable as the tail of a
    code-reuse gadget — returns, indirect calls and indirect jumps. *)

val is_control_flow : t -> bool
(** Any instruction that alters sequential control flow (branches, calls,
    returns, software interrupts, halt). *)

val is_terminator : t -> bool
(** Ends a basic block: unconditional transfers, returns, halt (but not
    calls, which fall through). *)

val writes_memory : t -> bool
(** Conservative: does the instruction write to a [Mem] operand or push to
    the stack? *)

val pp : Format.formatter -> t -> unit
(** AT&T-flavoured assembly-like rendering for diagnostics, e.g.
    [mov %esp, %esp], [lea 0x4(%esi), %edi]. *)

val to_string : t -> string
