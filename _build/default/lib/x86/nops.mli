(** NOP candidate instructions — Table 1 of the paper.

    Seven single- and two-byte instructions that preserve the entire
    processor state (registers, memory, {e and} flags).  The second byte
    of each two-byte candidate was chosen so that, decoded on its own, it
    is useless to an attacker (a privileged [IN], a segment prefix, or the
    obsolete [AAS]).

    The two [XCHG]-based candidates are architecturally perfect NOPs but
    lock the memory bus on real implementations, so — exactly as in the
    paper — they are excluded by default and can be enabled
    explicitly. *)

type candidate = {
  insn : Insn.t;  (** the instruction itself *)
  encoding : string;  (** its byte encoding *)
  second_byte_decoding : string option;
      (** what the second byte decodes to on its own, for the two-byte
          candidates ([None] for single-byte [NOP]) — the "Second Byte
          Decoding" column of Table 1 *)
  locks_bus : bool;  (** true for the XCHG-based candidates *)
}

val all : candidate list
(** All seven candidates, in Table 1 order. *)

val default : Insn.t array
(** The five candidates used by the insertion pass by default (no
    XCHG). *)

val with_xchg : Insn.t array
(** All seven, for the compile-time option the paper mentions. *)

val is_candidate : Insn.t -> bool
(** Membership in the seven-candidate set; used by the Survivor
    normalization step, which must strip {e potentially inserted} NOPs. *)

val strip : Insn.t list -> Insn.t list
(** Remove every candidate NOP from an instruction sequence (the Survivor
    normalization of §5.2). *)

val pp_table : Format.formatter -> unit -> unit
(** Render Table 1. *)
