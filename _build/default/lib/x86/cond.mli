(** x86 condition codes, as used by [Jcc]/[SETcc].

    The constructor order matches the hardware encoding (the low nibble of
    the [0F 8x]/[0F 9x] opcodes and of the short [7x] jumps). *)

type t =
  | O  (** overflow *)
  | NO  (** not overflow *)
  | B  (** below (unsigned <) *)
  | AE  (** above or equal (unsigned >=) *)
  | E  (** equal *)
  | NE  (** not equal *)
  | BE  (** below or equal (unsigned <=) *)
  | A  (** above (unsigned >) *)
  | S  (** sign *)
  | NS  (** not sign *)
  | P  (** parity *)
  | NP  (** not parity *)
  | L  (** less (signed <) *)
  | GE  (** greater or equal (signed >=) *)
  | LE  (** less or equal (signed <=) *)
  | G  (** greater (signed >) *)
[@@deriving eq, ord, show]

val encode : t -> int
(** 4-bit hardware encoding. *)

val decode : int -> t
(** Inverse of {!encode}; raises [Invalid_argument] outside 0-15. *)

val negate : t -> t
(** Logical negation ([E] <-> [NE], etc.) — flips the low encoding bit,
    exactly as the hardware does. *)

val name : t -> string
(** Mnemonic suffix, e.g. ["e"], ["ne"], ["le"]. *)
