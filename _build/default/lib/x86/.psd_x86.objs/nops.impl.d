lib/x86/nops.pp.ml: Array Char Encode Format Insn List Option Printf Reg String
