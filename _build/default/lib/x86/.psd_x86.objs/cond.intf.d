lib/x86/cond.pp.mli: Ppx_deriving_runtime
