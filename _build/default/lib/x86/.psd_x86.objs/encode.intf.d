lib/x86/encode.pp.mli: Buffer Insn
