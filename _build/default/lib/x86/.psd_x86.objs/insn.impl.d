lib/x86/insn.pp.ml: Cond Format Ppx_deriving_runtime Reg
