lib/x86/decode.pp.mli: Format Insn
