lib/x86/nops.pp.mli: Format Insn
