lib/x86/encode.pp.ml: Buffer Char Cond Insn Int32 List Reg
