lib/x86/reg.pp.mli: Ppx_deriving_runtime
