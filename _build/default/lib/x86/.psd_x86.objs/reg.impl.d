lib/x86/reg.pp.ml: Ppx_deriving_runtime Printf
