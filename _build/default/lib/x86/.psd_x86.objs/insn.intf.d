lib/x86/insn.pp.mli: Cond Format Ppx_deriving_runtime Reg
