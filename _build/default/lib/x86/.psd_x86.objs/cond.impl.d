lib/x86/cond.pp.ml: Ppx_deriving_runtime Printf
