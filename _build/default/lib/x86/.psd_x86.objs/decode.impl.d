lib/x86/decode.pp.ml: Char Cond Format Insn Int32 List Option Printf Reg String
