bench/main.ml: Array Exp_ablation Exp_figure4 Exp_heuristic Exp_micro Exp_php Exp_table1 Exp_table2 Exp_table3 Format List String Suite Sys Unix
