bench/exp_figure4.ml: Driver Format List Printf Sim Stats Suite Workloads
