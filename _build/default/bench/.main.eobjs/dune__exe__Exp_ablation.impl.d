bench/exp_ablation.ml: Config Driver Finder Format Heuristic Link List Sim Stats Suite Survivor Workloads
