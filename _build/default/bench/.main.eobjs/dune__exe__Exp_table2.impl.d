bench/exp_table2.ml: Finder Format Link List Stats Suite Survivor Workloads
