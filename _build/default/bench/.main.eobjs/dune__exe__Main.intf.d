bench/main.mli:
