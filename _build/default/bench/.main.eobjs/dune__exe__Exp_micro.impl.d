bench/exp_micro.ml: Analyze Attack Bechamel Benchmark Config Driver Format Hashtbl Instance Link Measure Population Staged Suite Survivor Test Time Toolkit Workloads
