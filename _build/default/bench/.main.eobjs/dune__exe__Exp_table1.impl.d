bench/exp_table1.ml: Format Nops Suite
