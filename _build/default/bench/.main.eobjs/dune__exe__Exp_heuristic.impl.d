bench/exp_heuristic.ml: Format Heuristic Int64 List Profile Suite Workload Workloads
