bench/exp_php.ml: Attack Config Driver Finder Format Link List Phpvm String Suite Survivor Workload Workloads
