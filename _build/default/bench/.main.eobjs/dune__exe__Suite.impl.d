bench/suite.ml: Config Driver Format Hashtbl Link List Profile String Workload
