bench/exp_table3.ml: Format List Population Printf Suite Workload Workloads
