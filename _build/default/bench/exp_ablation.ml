(* Ablations over the design choices DESIGN.md calls out:

   1. heuristic shape  — linear vs logarithmic pNOP(x) at 10-50%
                         (the paper argues log; here is the measured gap);
   2. normalization scope — program-wide x_max (the paper) vs
                         per-function x_max;
   3. NOP candidate set — enabling the bus-locking XCHG candidates, which
                         the paper excludes for performance.

   Run on a subset of benchmarks; each cell is the ref-input overhead
   averaged over versions. *)

let subset = [ "429.mcf"; "433.milc"; "456.hmmer"; "482.sphinx3"; "470.lbm" ]

let overhead p config =
  let w = p.Suite.workload in
  let base = Driver.run_image p.Suite.baseline ~args:w.ref_args in
  let cycles =
    List.init !Suite.perf_versions (fun v ->
        let r = Suite.run_version p config v ~args:w.ref_args in
        if r.Sim.output <> base.Sim.output then
          failwith ("ablation: output mismatch in " ^ w.name);
        r.Sim.cycles)
  in
  Suite.pct ((Stats.mean cycles /. base.Sim.cycles) -. 1.0)

let variants =
  [
    ("log 10-50 (paper)", Config.profiled ~pmin:0.10 ~pmax:0.50 ());
    ( "linear 10-50",
      Config.profiled ~shape:Heuristic.Linear ~pmin:0.10 ~pmax:0.50 () );
    ( "per-function xmax",
      Config.profiled ~scope:`Function ~pmin:0.10 ~pmax:0.50 () );
    ( "p50 + XCHG NOPs",
      { (Config.uniform 0.50) with Config.use_xchg = true } );
    ("p50 (no XCHG)", Config.uniform 0.50);
    ( "p0-30 + bb-shift",
      { (Config.profiled ~pmin:0.0 ~pmax:0.30 ()) with Config.bb_shift = true }
    );
    ("p0-30", Config.profiled ~pmin:0.0 ~pmax:0.30 ());
  ]

(* Security side of the §6 extension.  Whole-section survivor counts are
   dominated by the fixed runtime, so this measures exactly the residue
   §6 is about: gadgets surviving in USER code, which concentrate at the
   start of the binary where NOP displacement has not yet accumulated.
   The victim has a hot first function (profile-guided insertion leaves
   it almost untouched), the worst case for plain NOP insertion. *)
let hot_prefix_victim =
  {|
  global int buf[256];
  // The first function in the binary, called once per loop iteration:
  // every block of it is maximally hot, so profile-guided insertion
  // leaves it untouched (pNOP = pmin = 0) — and it contains 50011
  // (0xC35B), whose encoding hides a "pop ebx; ret" gadget.
  int mix(int a) { return (a ^ 50011) * 31 + (a >> 3); }
  int work(int n) {
    int acc = 1;
    for (int i = 0; i < n; i = i + 1) acc = acc + mix(acc + i);
    return acc;
  }
  int main(int n) { buf[0] = work(n); print_int(buf[0]); return 0; }
|}

let shift_security () =
  Format.printf
    "@.Basic-block shifting (paper 6): user-code gadgets surviving at \
     p0-30, hot-prefix victim, %d versions@."
    Suite.security_population;
  Suite.hr Format.std_formatter;
  let compiled = Driver.compile ~name:"hot-prefix" hot_prefix_victim in
  let profile = Driver.train compiled ~args:[ 4000l ] in
  let baseline = Driver.link_baseline compiled in
  let original = baseline.Link.text in
  let user_survivors config =
    let images =
      Driver.population compiled ~config ~profile ~n:Suite.security_population
    in
    Stats.mean
      (List.map
         (fun (img : Link.image) ->
           let offsets =
             Survivor.surviving_offsets ~original ~diversified:img.Link.text ()
           in
           float_of_int
             (List.length
                (List.filter (fun o -> o >= baseline.Link.user_start) offsets)))
         images)
  in
  let user_baseline =
    List.length
      (List.filter
         (fun (g : Finder.t) -> g.offset >= baseline.Link.user_start)
         (Finder.scan original))
  in
  let p030 = Config.profiled ~pmin:0.0 ~pmax:0.30 () in
  Format.printf "user-code gadgets in the baseline:      %d@." user_baseline;
  Format.printf "surviving, p0-30:                       %.2f@."
    (user_survivors p030);
  Format.printf "surviving, p0-30 + basic-block shift:   %.2f@."
    (user_survivors { p030 with Config.bb_shift = true })

let run () =
  Format.printf "@.Ablations: heuristic shape, xmax scope, XCHG candidates@.";
  Suite.hr Format.std_formatter;
  Format.printf "%-20s" "Variant";
  List.iter (fun b -> Format.printf "%13s" b) subset;
  Format.printf "@.";
  List.iter
    (fun (vname, config) ->
      Format.printf "%-20s" vname;
      List.iter
        (fun bname ->
          let p = Suite.prepared (Workloads.find bname) in
          Format.printf "%12.2f%%" (overhead p config))
        subset;
      Format.printf "@.")
    variants;
  Format.printf
    "(XCHG NOPs lock the bus; the blow-up above is why Table 1's XCHG rows \
     are disabled by default)@.";
  shift_security ()
