(* Table 1: the NOP candidate instructions, their encodings and the
   decoding of their second bytes. *)

let run () =
  Format.printf "@.Table 1: NOP insertion candidate instructions@.";
  Suite.hr Format.std_formatter;
  Nops.pp_table Format.std_formatter ();
  Format.printf
    "(default insertion set excludes the XCHG candidates: they lock the \
     memory bus)@."
