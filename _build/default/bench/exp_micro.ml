(* Bechamel microbenchmarks: the kernel underneath each regenerated table
   or figure, measured in isolation.  One Test.make per experiment. *)

open Bechamel
open Toolkit

let prepare_once () =
  let w = Workloads.find "429.mcf" in
  Suite.prepared w

let tests () =
  let p = prepare_once () in
  let w = p.Suite.workload in
  let original = p.Suite.baseline.Link.text in
  let config = Config.profiled ~pmin:0.0 ~pmax:0.30 () in
  let diversified =
    let img, _ =
      Driver.diversify p.Suite.compiled ~config ~profile:p.Suite.profile
        ~version:0
    in
    img.Link.text
  in
  let population = Suite.texts_of_population p config 5 in
  [
    (* Figure 3 pipeline: full compilation of one benchmark. *)
    Test.make ~name:"figure3.compile-O2"
      (Staged.stage (fun () ->
           ignore (Driver.compile ~name:w.name w.source)));
    (* §3.1: one profiling (training) run. *)
    Test.make ~name:"sec3.profile-train"
      (Staged.stage (fun () ->
           ignore (Driver.train p.compiled ~args:w.train_args)));
    (* Algorithm 1: diversify + link one version. *)
    Test.make ~name:"alg1.diversify-link"
      (Staged.stage (fun () ->
           ignore
             (Driver.diversify p.compiled ~config ~profile:p.profile
                ~version:1)));
    (* Figure 4: simulate the ref input of one binary. *)
    Test.make ~name:"figure4.simulate-ref"
      (Staged.stage (fun () ->
           ignore (Driver.run_image p.baseline ~args:w.ref_args)));
    (* Table 2: one Survivor comparison. *)
    Test.make ~name:"table2.survivor-compare"
      (Staged.stage (fun () ->
           ignore (Survivor.compare_sections ~original ~diversified ())));
    (* Table 3: population analysis over 5 versions. *)
    Test.make ~name:"table3.population-analyze"
      (Staged.stage (fun () ->
           ignore (Population.analyze ~thresholds:[ 2; 3 ] population)));
    (* §5.2: one full gadget scan + attack verdict. *)
    Test.make ~name:"sec52.ropgadget-attack"
      (Staged.stage (fun () ->
           ignore (Attack.attack Attack.Ropgadget original)));
  ]

let run () =
  Format.printf "@.Microbenchmarks (Bechamel, monotonic clock)@.";
  Suite.hr Format.std_formatter;
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let clock = Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:100 ~quota:(Time.second 0.5) ~stabilize:false ()
  in
  let raw =
    Benchmark.all cfg [ clock ]
      (Test.make_grouped ~name:"psd" ~fmt:"%s %s" (tests ()))
  in
  let results = Analyze.all ols clock raw in
  (* One line per test: nanoseconds per run. *)
  Hashtbl.iter
    (fun name ols_result ->
      match Analyze.OLS.estimates ols_result with
      | Some [ ns ] -> Format.printf "%-34s %12.0f ns/run@." name ns
      | _ -> Format.printf "%-34s (no estimate)@." name)
    results
