(* §5.2 concrete-attack study.  The paper takes a network-facing
   interpreter (PHP 5.3.16), verifies that two gadget scanners (ROPgadget,
   microgadgets) can assemble an attack against the undiversified binary,
   then shows that on 25 diversified versions (pNOP = 0-30%, one
   population per training profile) the surviving gadgets no longer
   provide the required operations.

   Our interpreter is the phpvm workload; the seven profiles are the
   Benchmarks-Game analogues. *)

let scanners = [ Attack.Ropgadget; Attack.Microgadgets ]

let pp_verdict prefix (v : Attack.verdict) =
  Format.printf "  %s%-14s feasible=%-5b gadget classes:" prefix
    (Attack.scanner_name v.scanner)
    v.feasible;
  List.iter
    (fun (c, n) ->
      Format.printf " %s=%d" (Attack.show_gadget_class c) n)
    (List.sort compare v.classes_found);
  if v.missing <> [] then begin
    Format.printf "  missing:";
    List.iter
      (fun c -> Format.printf " %s" (Attack.show_gadget_class c))
      v.missing
  end;
  Format.printf "@."

let run () =
  Format.printf "@.Concrete ROP attack against the interpreter (paper 5.2)@.";
  Suite.hr Format.std_formatter;
  let w = Workloads.phpvm in
  let compiled = Driver.compile ~name:w.Workload.name w.source in
  let baseline = Driver.link_baseline compiled in
  (* Step 1: the undiversified binary must be attackable by both
     scanners. *)
  Format.printf "undiversified %s (%d bytes of .text):@." w.name
    (String.length baseline.Link.text);
  List.iter
    (fun s -> pp_verdict "" (Attack.attack s baseline.Link.text))
    scanners;
  (* Step 2: for each training profile, build 25 diversified versions at
     the weakest setting (p0-30) and re-run both scanners on the gadgets
     that survived diversification. *)
  let config = Config.profiled ~pmin:0.0 ~pmax:0.30 () in
  let attackable = ref 0 in
  let total = ref 0 in
  List.iter
    (fun (prof : Phpvm.profile_program) ->
      let profile =
        Driver.train compiled ~args:[ prof.prog_id; prof.train_n ]
      in
      let versions =
        Driver.population compiled ~config ~profile
          ~n:Suite.security_population
      in
      let feasible_count = ref 0 in
      List.iter
        (fun (img : Link.image) ->
          incr total;
          let offsets =
            Survivor.surviving_offsets ~original:baseline.Link.text
              ~diversified:img.Link.text ()
          in
          (* Restrict each scanner to gadgets still present at their
             original offsets, then ask for attack feasibility. *)
          List.iter
            (fun scanner ->
              let gadgets =
                List.filter
                  (fun (g : Finder.t) -> List.mem g.offset offsets)
                  (Attack.scan scanner baseline.Link.text)
              in
              let v = Attack.attack_on_gadgets scanner gadgets in
              if v.Attack.feasible then incr feasible_count)
            scanners)
        versions;
      if !feasible_count > 0 then incr attackable;
      Format.printf
        "profile %-14s %2d/%d versions attackable (surviving-gadget sets)@."
        prof.prog_name !feasible_count
        (Suite.security_population * List.length scanners))
    Workloads.php_profiles;
  Format.printf
    "@.=> %d/%d profiles produced any attackable diversified binary@."
    !attackable 7
