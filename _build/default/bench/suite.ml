(* Shared plumbing for the evaluation harness: compile-and-profile each
   workload once, cache the result, and provide the paper's parameters. *)

type prepared = {
  workload : Workload.t;
  compiled : Driver.compiled;
  profile : Profile.t;
  baseline : Link.image;
}

let prepare (w : Workload.t) =
  let compiled = Driver.compile ~name:w.name w.source in
  let profile = Driver.train compiled ~args:w.train_args in
  let baseline = Driver.link_baseline compiled in
  { workload = w; compiled; profile; baseline }

let cache : (string, prepared) Hashtbl.t = Hashtbl.create 32

let prepared w =
  match Hashtbl.find_opt cache w.Workload.name with
  | Some p -> p
  | None ->
      let p = prepare w in
      Hashtbl.replace cache w.Workload.name p;
      p

let configs = Config.paper_configs
let config_names = List.map fst configs

(* The paper builds 25 versions for the security tables and 5 for the
   performance figure (3 runs each; our simulator is deterministic, so
   re-running a version is pointless and we run each once). *)
let security_population = 25
let perf_versions = ref 3

let run_version p config version ~args =
  let image, _ =
    Driver.diversify p.compiled ~config ~profile:p.profile ~version
  in
  Driver.run_image image ~args

let texts_of_population p config n =
  List.map
    (fun (img : Link.image) -> img.Link.text)
    (Driver.population p.compiled ~config ~profile:p.profile ~n)

let pct x = x *. 100.0

let hr ppf = Format.fprintf ppf "%s@." (String.make 78 '-')
