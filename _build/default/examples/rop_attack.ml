(* A concrete return-oriented attack, executed in the simulator — and
   defeated by diversification.

     dune exec examples/rop_attack.exe

   The victim program contains the constant 50011 (= 0xC35B).  Encoded
   into a MOV immediate, those bytes are "5B C3" — "pop ebx ; ret" — a
   classic load-register gadget hiding inside an instruction the
   programmer wrote (exactly the phenomenon of paper Figure 2).

   The attacker, holding a copy of the shipped binary, builds a chain
   that (1) enters at the hidden gadget, (2) pops the desired exit status
   into EBX, and (3) returns into the tail of libc's exit() — the
   "mov eax, 1 ; int 0x80" sequence — hijacking the process.

   Against NOP-diversified versions the same offsets decode differently,
   and the chain crashes. *)

let victim_source =
  {|
  global int secret;
  global int requests[256];

  int check(int key) {
    // 50011 = 0xC35B: the constant whose encoding hides "pop ebx; ret"
    if (key == 50011) return 1;
    return 0;
  }

  // The server's actual work: a hot request-processing loop.  The
  // authentication check above is cold by comparison, which is exactly
  // where the profile-guided pass diversifies most aggressively.
  int process(int n) {
    int acc = 0;
    for (int i = 0; i < n; i = i + 1) {
      requests[i & 255] = (i * 1103515245 + 12345) >> 16;
      acc = acc + (requests[i & 255] & 1023);
    }
    return acc;
  }

  int main(int key) {
    secret = 42;
    int busy = process(5000);
    if (check(key)) { print_int(secret); return busy & 7; }
    put_char('n'); put_char('o'); put_char(10);
    return 1;
  }
|}

let find_hidden_gadget (image : Link.image) =
  let gadgets = Finder.scan image.Link.text in
  List.find_opt
    (fun (g : Finder.t) ->
      g.offset >= image.Link.user_start
      &&
      match g.insns with
      | [ Insn.Pop_r Reg.EBX; Insn.Ret ] -> true
      | _ -> false)
    gadgets

let exit_syscall_offset (image : Link.image) =
  (* Skip exit()'s first instruction (mov ebx, [esp+4]) to reach the
     "mov eax, 1 ; int 0x80" tail — EBX stays attacker-controlled. *)
  let exit_off = Link.symbol_offset image "exit" in
  let first_len =
    match Decode.insn ~pos:exit_off image.Link.text with
    | Some (_, len) -> len
    | None -> failwith "cannot decode exit()"
  in
  exit_off + first_len

let attack (image : Link.image) ~gadget_offset =
  (* Chain layout (top of stack first): the value popped into EBX, then
     the address the gadget's RET transfers to. *)
  let va off = Int32.add image.Link.text_base (Int32.of_int off) in
  let chain = [ 99l (* exit status the attacker wants *);
                va (exit_syscall_offset image) ] in
  Sim.run_at ~fuel:100_000L image ~start_offset:gadget_offset
    ~stack_image:chain

let () =
  let compiled = Driver.compile ~name:"victim" victim_source in
  let baseline = Driver.link_baseline compiled in

  (* Normal behaviour. *)
  let normal = Driver.run_image baseline ~args:[ 50011l ] in
  Format.printf "victim(50011) prints %S, exits %ld@."
    (String.trim normal.Sim.output)
    normal.Sim.status;

  (* The attacker scans the shipped binary. *)
  let gadget =
    match find_hidden_gadget baseline with
    | Some g -> g
    | None -> failwith "expected the hidden pop ebx; ret gadget"
  in
  Format.printf "@.hidden gadget found at text offset 0x%x: %a@."
    gadget.Finder.offset Finder.pp gadget;

  (* The attack against the undiversified binary: full control. *)
  (match attack baseline ~gadget_offset:gadget.Finder.offset with
  | r ->
      Format.printf
        "attack on baseline: process exited with attacker-chosen status %ld@."
        r.Sim.status
  | exception Sim.Fault m -> Format.printf "attack on baseline faulted: %s@." m);

  (* The same attack against diversified versions. *)
  let profile = Driver.train compiled ~args:[ 50011l ] in
  let try_attacks ~label config =
    Format.printf "@.same chain against versions diversified with %s:@." label;
    let survived = ref 0 in
    List.iter
      (fun version ->
        let image, _ = Driver.diversify compiled ~config ~profile ~version in
        (* Functionality is intact... *)
        let ok = Driver.run_image image ~args:[ 50011l ] in
        assert (ok.Sim.output = normal.Sim.output);
        (* ...but the attacker's offsets are stale. *)
        match attack image ~gadget_offset:gadget.Finder.offset with
        | r when r.Sim.status = 99l ->
            incr survived;
            Format.printf "  version %d: ATTACK SUCCEEDED@." version
        | r ->
            Format.printf "  version %d: attack failed (status %ld, not 99)@."
              version r.Sim.status
        | exception Sim.Fault m ->
            Format.printf "  version %d: attack crashed (%s)@." version m)
      (List.init 10 Fun.id);
    Format.printf "attack survival: %d of 10 versions@." !survived
  in
  let p030 = Config.profiled ~pmin:0.0 ~pmax:0.30 () in
  try_attacks ~label:"p0-30" p030;
  (* The victim's gadget sits near the start of its function, where plain
     NOP insertion has accumulated little displacement (the weakness
     paper §6 points out).  Its proposed fix — a jumped-over dummy block
     prepended to every function — displaces even offset zero. *)
  try_attacks ~label:"p0-30 + basic-block shifting"
    { p030 with Config.bb_shift = true }
