examples/rop_attack.mli:
