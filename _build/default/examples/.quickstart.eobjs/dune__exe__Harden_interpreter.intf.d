examples/harden_interpreter.mli:
