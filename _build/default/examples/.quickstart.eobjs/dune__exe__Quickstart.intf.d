examples/quickstart.mli:
