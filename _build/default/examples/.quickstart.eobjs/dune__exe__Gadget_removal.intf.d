examples/gadget_removal.mli:
