examples/rop_attack.ml: Config Decode Driver Finder Format Fun Insn Int32 Link List Reg Sim String
