examples/gadget_removal.ml: Decode Encode Finder Format Insn List Reg String Survivor
