examples/harden_interpreter.ml: Attack Config Driver Finder Format Link List Nop_insert Phpvm Sim String Survivor Workload Workloads
