examples/quickstart.ml: Config Driver Format Ir Link List Nop_insert Profile Sim String
