(* Hardening a language runtime — the paper's PHP case study in miniature.

     dune exec examples/harden_interpreter.exe

   The "network-facing application" is a bytecode interpreter (phpvm).
   There is no canonical training input for an interpreter, so — like the
   paper — we profile it on several scripts with different opcode mixes
   and check that every resulting profile yields diversified binaries
   that (a) still run everything correctly, (b) cost almost nothing, and
   (c) no longer expose an attackable gadget set. *)

let () =
  let w = Workloads.phpvm in
  let compiled = Driver.compile ~name:w.Workload.name w.source in
  let baseline = Driver.link_baseline compiled in

  Format.printf "interpreter: %d bytes of .text@."
    (String.length baseline.Link.text);

  (* The undiversified interpreter is attackable. *)
  let v = Attack.attack Attack.Ropgadget baseline.Link.text in
  Format.printf "undiversified: ROP attack feasible = %b@." v.Attack.feasible;

  let config = Config.profiled ~pmin:0.0 ~pmax:0.30 () in
  List.iter
    (fun (prof : Phpvm.profile_program) ->
      let train_args = [ prof.Phpvm.prog_id; prof.train_n ] in
      let profile = Driver.train compiled ~args:train_args in
      let image, stats =
        Driver.diversify compiled ~config ~profile ~version:0
      in
      (* Correctness on a different script than the one profiled. *)
      let other = List.nth Workloads.php_profiles 2 in
      let check_args = [ other.Phpvm.prog_id; other.train_n ] in
      let expect = Driver.run_image baseline ~args:check_args in
      let got = Driver.run_image image ~args:check_args in
      assert (expect.Sim.output = got.Sim.output);
      (* Overhead on the profiled script's ref input. *)
      let ref_args = [ prof.Phpvm.prog_id; prof.ref_n ] in
      let base_run = Driver.run_image baseline ~args:ref_args in
      let div_run = Driver.run_image image ~args:ref_args in
      let overhead =
        100.0 *. ((div_run.Sim.cycles /. base_run.Sim.cycles) -. 1.0)
      in
      (* Security: the surviving gadget set must not support an attack. *)
      let offsets =
        Survivor.surviving_offsets ~original:baseline.Link.text
          ~diversified:image.Link.text ()
      in
      let surviving_gadgets =
        List.filter
          (fun (g : Finder.t) -> List.mem g.Finder.offset offsets)
          (Attack.scan Attack.Ropgadget baseline.Link.text)
      in
      let verdict = Attack.attack_on_gadgets Attack.Ropgadget surviving_gadgets in
      Format.printf
        "profile %-14s +%4d NOPs  overhead %+5.2f%%  surviving gadgets %3d  \
         attackable %b@."
        prof.prog_name stats.Nop_insert.nops_inserted overhead
        (List.length surviving_gadgets)
        verdict.Attack.feasible)
    Workloads.php_profiles
