(* Quickstart: the full pipeline on one small program.

     dune exec examples/quickstart.exe

   Compiles a MiniC program, profiles it on a training input, builds
   three diversified versions under the paper's best configuration
   (pNOP = 0-30%, logarithmic heuristic), and shows that the versions
   (a) behave identically and (b) have different code layouts. *)

let source =
  {|
  global int table[64];

  int mix(int x) { return (x * 2654435 + 97) % 1000; }

  int main(int n) {
    int acc = 0;
    for (int i = 0; i < n; i = i + 1) {
      table[i & 63] = mix(i);
      acc = acc + table[i & 63];
    }
    print_int(acc);
    return acc & 127;
  }
|}

let () =
  (* 1. Compile at -O2. *)
  let compiled = Driver.compile ~name:"quickstart" source in
  Format.printf "compiled %d IR functions@."
    (List.length compiled.Driver.modul.Ir.funcs);

  (* 2. Train: run the instrumented program on a small input. *)
  let profile = Driver.train compiled ~args:[ 100l ] in
  Format.printf "profile: hottest basic block ran %Ld times@."
    (Profile.max_count profile);

  (* 3. Baseline (undiversified) build and run. *)
  let baseline = Driver.link_baseline compiled in
  let base_run = Driver.run_image baseline ~args:[ 5000l ] in
  Format.printf "baseline: %d text bytes, output %S, %.0f cycles@."
    (String.length baseline.Link.text)
    (String.trim base_run.Sim.output)
    base_run.Sim.cycles;

  (* 4. Three diversified versions at pNOP = 0-30%%. *)
  let config = Config.profiled ~pmin:0.0 ~pmax:0.30 () in
  List.iter
    (fun version ->
      let image, stats = Driver.diversify compiled ~config ~profile ~version in
      let r = Driver.run_image image ~args:[ 5000l ] in
      assert (r.Sim.output = base_run.Sim.output);
      assert (r.Sim.status = base_run.Sim.status);
      let overhead =
        100.0 *. ((r.Sim.cycles /. base_run.Sim.cycles) -. 1.0)
      in
      Format.printf
        "version %d: +%d NOPs (%d bytes), same output, overhead %+.2f%%@."
        version stats.Nop_insert.nops_inserted stats.Nop_insert.bytes_added
        overhead)
    [ 0; 1; 2 ];

  (* 5. The versions really are different binaries. *)
  let texts =
    List.map
      (fun v ->
        (fst (Driver.diversify compiled ~config ~profile ~version:v)).Link.text)
      [ 0; 1; 2 ]
  in
  Format.printf "distinct .text sections: %d of 3@."
    (List.length (List.sort_uniq compare texts))
