(* Figure 2, live: how NOP insertion displaces instructions and destroys
   hidden gadgets.

     dune exec examples/gadget_removal.exe

   The paper's example stream "89 11 01 C3" is the two instructions
   "mov [ecx], edx ; add ebx, eax" — but decoded one byte in, it is
   "adc [ecx], eax ; ret": a ROP gadget the programmer never wrote.
   Inserting a NOP in front displaces the bytes so the hidden decoding
   disappears. *)

let show_stream title bytes =
  Format.printf "@.%s (%d bytes):@." title (String.length bytes);
  Format.printf "  intended decoding:@.";
  List.iter
    (fun (i, off) -> Format.printf "    +%d: %a@." off Insn.pp i)
    (Decode.sequence bytes);
  Format.printf "  gadget scan (all offsets):@.";
  let gadgets = Finder.scan bytes in
  if gadgets = [] then Format.printf "    (none)@."
  else
    List.iter (fun g -> Format.printf "    %a@." Finder.pp g) gadgets

let () =
  let open Insn in
  let original =
    Encode.program
      [
        Mov_rm_r (Mem (mem_base Reg.ECX), Reg.EDX); (* 89 11 *)
        Alu_rm_r (Add, Reg Reg.EBX, Reg.EAX); (* 01 C3 *)
      ]
  in
  show_stream "original stream (paper Figure 2)" original;

  (* Diversified: one NOP prepended — every later byte shifts by one. *)
  let diversified =
    Encode.program
      [
        Nop;
        Mov_rm_r (Mem (mem_base Reg.ECX), Reg.EDX);
        Alu_rm_r (Add, Reg Reg.EBX, Reg.EAX);
      ]
  in
  show_stream "after NOP insertion" diversified;

  let outcome =
    Survivor.compare_sections ~original ~diversified:original ()
  in
  Format.printf "@.survivor vs itself: %d of %d (sanity)@."
    outcome.Survivor.surviving outcome.Survivor.baseline_gadgets;
  let outcome =
    Survivor.compare_sections ~original ~diversified ()
  in
  Format.printf "survivor vs diversified: %d of %d gadgets remain@."
    outcome.Survivor.surviving outcome.Survivor.baseline_gadgets
