(* Tests for the profiling machinery: block counts, serialization, and the
   optimal edge-counter placement with flow reconstruction. *)

let compile src = Driver.compile ~name:"prof-test" src

let loop_src =
  {|
  int work(int n) {
    int acc = 0;
    for (int i = 0; i < n; i = i + 1) {
      if (i % 2 == 0) acc = acc + i;
      else acc = acc - 1;
    }
    return acc;
  }
  int main(int n) {
    int total = 0;
    for (int r = 0; r < 3; r = r + 1) total = total + work(n);
    return total;
  }
  |}

let test_collect_counts () =
  let c = compile loop_src in
  let profile = Driver.train c ~args:[ 10l ] in
  Alcotest.(check bool) "profile not empty" false (Profile.is_empty profile);
  (* work's loop body blocks run 3 * 10 times in total across both arms;
     the maximum block count must be at least the loop condition count. *)
  Alcotest.(check bool)
    "max count at least 30" true
    (Profile.max_count profile >= 30L);
  Alcotest.(check int64) "unknown block is cold" 0L
    (Profile.block_count profile ~func:"work" 999)

let test_merge_and_many () =
  let c = compile loop_src in
  let p1 = Driver.train c ~args:[ 5l ] in
  let p2 = Driver.train c ~args:[ 7l ] in
  let merged = Profile.merge p1 p2 in
  let both = Driver.train_many c ~args_list:[ [ 5l ]; [ 7l ] ] in
  Alcotest.(check string) "merge equals accumulate" (Profile.to_string merged)
    (Profile.to_string both);
  Alcotest.(check bool)
    "merged max grows" true
    (Profile.max_count merged >= Profile.max_count p1)

let test_serialization_roundtrip () =
  let c = compile loop_src in
  let p = Driver.train c ~args:[ 9l ] in
  let p' = Profile.of_string (Profile.to_string p) in
  Alcotest.(check string) "roundtrip" (Profile.to_string p) (Profile.to_string p')

let test_serialization_errors () =
  (match Profile.of_string "bad line here extra" with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected failure on malformed line");
  match Profile.of_string "f notanint 3" with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected failure on bad number"

let test_median_nonzero () =
  let counts = Hashtbl.create 8 in
  Hashtbl.replace counts ("f", 0) 1L;
  Hashtbl.replace counts ("f", 1) 100L;
  Hashtbl.replace counts ("f", 2) 10L;
  Hashtbl.replace counts ("f", 3) 0L;
  let p = Profile.of_block_counts counts in
  Alcotest.(check (float 1e-9)) "median skips zeros" 10.0 (Profile.median_nonzero p)

(* ------------------------------------------------------------------ *)
(* Spanning-tree counter placement. *)

(* Measured edge counts for one function from an interpreter run,
   extended with the virtual exit edges. *)
let measured_edges (c : Driver.compiled) fname (r : Interp.result) =
  let f = Ir.find_func c.modul fname in
  let entry = (List.hd f.blocks).Ir.label in
  let count (s, d) =
    if s = Spanning.exit_label then
      Option.value (Hashtbl.find_opt r.counts.calls fname) ~default:0L
    else if d = Spanning.exit_label then
      (* A returning block exits once per execution. *)
      Option.value (Hashtbl.find_opt r.counts.blocks (fname, s)) ~default:0L
    else
      Option.value (Hashtbl.find_opt r.counts.edges (fname, s, d)) ~default:0L
  in
  ignore entry;
  count

let check_reconstruction src args fname =
  let c = compile src in
  let r = Driver.run_ir c ~args in
  let f = Ir.find_func c.modul fname in
  let count = measured_edges c fname r in
  let placement = Spanning.place ~weights:count f in
  (* The instrumented program only measures the non-tree edges; the rest
     must be recoverable exactly. *)
  let reconstructed = Spanning.reconstruct placement ~measured:count in
  List.iter
    (fun (e, v) ->
      let expected = count e in
      if v <> expected then
        Alcotest.failf "%s: edge (%d,%d): reconstructed %Ld, measured %Ld"
          fname (fst e) (snd e) v expected)
    reconstructed;
  (* Block counts derived from edges match the interpreter's. *)
  let blocks = Spanning.block_counts_of_edges f reconstructed in
  List.iter
    (fun (l, v) ->
      let expected =
        Option.value (Hashtbl.find_opt r.counts.blocks (fname, l)) ~default:0L
      in
      if v <> expected then
        Alcotest.failf "%s: block L%d: derived %Ld, measured %Ld" fname l v
          expected)
    blocks

let test_reconstruct_loop () = check_reconstruction loop_src [ 10l ] "work"
let test_reconstruct_main () = check_reconstruction loop_src [ 10l ] "main"

let test_reconstruct_branchy () =
  check_reconstruction
    {|
    int f(int n) {
      int acc = 0;
      for (int i = 0; i < n; i = i + 1) {
        if (i % 3 == 0) { if (i % 2 == 0) acc = acc + 2; else acc = acc - 1; }
        else { while (acc > 100) acc = acc / 2; acc = acc + i; }
      }
      return acc;
    }
    int main(int n) { return f(n * 7); }
    |}
    [ 13l ] "f"

let test_reconstruct_early_return () =
  check_reconstruction
    {|
    int f(int n) {
      if (n < 0) return 0 - 1;
      if (n == 0) return 0;
      int s = 0;
      for (int i = 0; i < n; i = i + 1) s = s + i;
      return s;
    }
    int main(int n) { return f(n) + f(0 - n) + f(0); }
    |}
    [ 6l ] "f"

let test_placement_structure () =
  let c = compile loop_src in
  let f = Ir.find_func c.modul "work" in
  let p = Spanning.place f in
  let n_nodes =
    List.length
      (List.sort_uniq compare
         (List.concat_map (fun (a, b) -> [ a; b ]) p.Spanning.edges))
  in
  (* A spanning tree has |V| - 1 edges; counters live on the rest. *)
  Alcotest.(check int) "tree size" (n_nodes - 1) (List.length p.Spanning.tree);
  Alcotest.(check int) "partition"
    (List.length p.Spanning.edges)
    (List.length p.Spanning.tree + List.length p.Spanning.instrumented);
  (* Fewer counters than edges: instrumentation is cheaper than naive
     per-edge counting. *)
  Alcotest.(check bool) "saves counters" true
    (List.length p.Spanning.instrumented < List.length p.Spanning.edges)

let test_max_spanning_prefers_hot () =
  let c = compile loop_src in
  let r = Driver.run_ir c ~args:[ 50l ] in
  let f = Ir.find_func c.modul "work" in
  let count = measured_edges c "work" r in
  let p = Spanning.place ~weights:count f in
  (* The hottest edge must be in the tree (uninstrumented): that is the
     entire point of the maximum spanning tree. *)
  let hottest =
    List.fold_left
      (fun best e -> if count e > count best then e else best)
      (List.hd p.Spanning.edges) p.Spanning.edges
  in
  Alcotest.(check bool) "hottest edge uninstrumented" true
    (List.mem hottest p.Spanning.tree);
  (* Total instrumented weight <= total tree weight. *)
  let sum es = List.fold_left (fun a e -> Int64.add a (count e)) 0L es in
  Alcotest.(check bool) "counter weight minimized" true
    (sum p.Spanning.instrumented <= sum p.Spanning.tree)

let suite =
  [
    ( "profile.counts",
      [
        Alcotest.test_case "collect" `Quick test_collect_counts;
        Alcotest.test_case "merge" `Quick test_merge_and_many;
        Alcotest.test_case "serialization roundtrip" `Quick
          test_serialization_roundtrip;
        Alcotest.test_case "serialization errors" `Quick
          test_serialization_errors;
        Alcotest.test_case "median nonzero" `Quick test_median_nonzero;
      ] );
    ( "profile.spanning",
      [
        Alcotest.test_case "reconstruct loop func" `Quick test_reconstruct_loop;
        Alcotest.test_case "reconstruct main" `Quick test_reconstruct_main;
        Alcotest.test_case "reconstruct branchy" `Quick
          test_reconstruct_branchy;
        Alcotest.test_case "reconstruct early returns" `Quick
          test_reconstruct_early_return;
        Alcotest.test_case "placement structure" `Quick
          test_placement_structure;
        Alcotest.test_case "max tree prefers hot edges" `Quick
          test_max_spanning_prefers_hot;
      ] );
  ]
