(* End-to-end frontend tests: MiniC source -> IR -> reference interpreter. *)

let run ?(args = []) src =
  let m = Minic.compile_exn src in
  Interp.run m ~entry:"main" ~args

let ret ?(args = []) src = (run ~args src).Interp.ret
let out ?(args = []) src = (run ~args src).Interp.output

let check_ret msg expected ?(args = []) src =
  Alcotest.(check int32) msg expected (ret ~args src)

let check_error msg fragment src =
  match Minic.compile src with
  | Ok _ -> Alcotest.fail (msg ^ ": expected a frontend error")
  | Error e ->
      let contains s sub =
        let n = String.length sub in
        let rec at i =
          i + n <= String.length s && (String.sub s i n = sub || at (i + 1))
        in
        at 0
      in
      if not (contains e.message fragment) then
        Alcotest.fail
          (Printf.sprintf "%s: error %S does not mention %S" msg e.message
             fragment)

(* ---------------- expressions and statements ---------------- *)

let test_arith () =
  check_ret "add" 7l "int main() { return 3 + 4; }";
  check_ret "precedence" 14l "int main() { return 2 + 3 * 4; }";
  check_ret "parens" 20l "int main() { return (2 + 3) * 4; }";
  check_ret "sub assoc" (-4l) "int main() { return 1 - 2 - 3; }";
  check_ret "div" 3l "int main() { return 10 / 3; }";
  check_ret "rem" 1l "int main() { return 10 % 3; }";
  check_ret "neg div" (-3l) "int main() { return -10 / 3; }";
  check_ret "neg rem" (-1l) "int main() { return -10 % 3; }";
  check_ret "unary minus" (-5l) "int main() { return -5; }";
  check_ret "bnot" (-1l) "int main() { return ~0; }";
  check_ret "lnot true" 0l "int main() { return !1; }";
  check_ret "lnot false" 1l "int main() { return !0; }"

let test_bitwise () =
  check_ret "and" 8l "int main() { return 12 & 10; }";
  check_ret "or" 14l "int main() { return 12 | 10; }";
  check_ret "xor" 6l "int main() { return 12 ^ 10; }";
  check_ret "shl" 40l "int main() { return 5 << 3; }";
  check_ret "sar" (-2l) "int main() { return -8 >> 2; }";
  check_ret "sar positive" 2l "int main() { return 8 >> 2; }"

let test_comparisons () =
  check_ret "lt true" 1l "int main() { return 2 < 3; }";
  check_ret "lt false" 0l "int main() { return 3 < 2; }";
  check_ret "le" 1l "int main() { return 3 <= 3; }";
  check_ret "gt" 1l "int main() { return 4 > 3; }";
  check_ret "ge" 0l "int main() { return 2 >= 3; }";
  check_ret "eq" 1l "int main() { return 5 == 5; }";
  check_ret "ne" 1l "int main() { return 5 != 4; }";
  check_ret "signed compare" 1l "int main() { return -1 < 0; }"

let test_wraparound () =
  check_ret "int32 wrap add" Int32.min_int
    "int main() { return 2147483647 + 1; }";
  check_ret "mul wrap" (Int32.mul 100000l 100000l)
    "int main() { return 100000 * 100000; }"

let test_short_circuit () =
  (* The right operand must not run when the left decides: a side
     effecting call would change the output. *)
  let src =
    {|
    global int hits;
    int bump() { hits = hits + 1; return 1; }
    int main() {
      int a = 0 && bump();
      int b = 1 || bump();
      print_int(hits);
      return a + b;
    }
    |}
  in
  Alcotest.(check string) "no side effects" "0\n" (out src);
  check_ret "values" 1l src;
  check_ret "and both" 1l "int main() { return 2 && 3; }";
  check_ret "or second" 1l "int main() { return 0 || 7; }";
  check_ret "or both zero" 0l "int main() { return 0 || 0; }"

let test_if_else () =
  check_ret "then" 1l "int main() { if (5 > 3) return 1; return 2; }";
  check_ret "else" 2l
    "int main() { if (5 < 3) return 1; else return 2; }";
  check_ret "dangling else" 3l
    "int main() { if (1) if (0) return 2; else return 3; return 4; }";
  check_ret "nested" 42l
    {|
    int main() {
      int x = 10;
      if (x > 5) { if (x > 8) return 42; else return 1; }
      return 0;
    }
    |}

let test_loops () =
  check_ret "while sum" 55l
    {|
    int main() {
      int i = 1; int sum = 0;
      while (i <= 10) { sum = sum + i; i = i + 1; }
      return sum;
    }
    |};
  check_ret "for sum" 55l
    {|
    int main() {
      int sum = 0;
      for (int i = 1; i <= 10; i = i + 1) sum = sum + i;
      return sum;
    }
    |};
  check_ret "break" 5l
    {|
    int main() {
      int i = 0;
      while (1) { if (i == 5) break; i = i + 1; }
      return i;
    }
    |};
  check_ret "continue" 25l
    {|
    int main() {
      int sum = 0;
      for (int i = 0; i < 10; i = i + 1) {
        if (i % 2 == 0) continue;
        sum = sum + i;
      }
      return sum;
    }
    |};
  check_ret "nested loops" 100l
    {|
    int main() {
      int c = 0;
      for (int i = 0; i < 10; i = i + 1)
        for (int j = 0; j < 10; j = j + 1)
          c = c + 1;
      return c;
    }
    |}

let test_functions () =
  check_ret "call" 7l
    "int add(int a, int b) { return a + b; } int main() { return add(3, 4); }";
  check_ret "recursion fib" 55l
    {|
    int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
    int main() { return fib(10); }
    |};
  check_ret "mutual recursion" 1l
    {|
    int is_even(int n) { if (n == 0) return 1; return is_odd(n - 1); }
    int is_odd(int n) { if (n == 0) return 0; return is_even(n - 1); }
    int main() { return is_even(10); }
    |};
  check_ret "implicit return zero" 0l "int main() { int x = 5; x = x + 1; }"

let test_arrays () =
  check_ret "local array" 6l
    {|
    int main() {
      int a[3];
      a[0] = 1; a[1] = 2; a[2] = 3;
      return a[0] + a[1] + a[2];
    }
    |};
  check_ret "global array" 10l
    {|
    global int a[4];
    int main() {
      for (int i = 0; i < 4; i = i + 1) a[i] = i + 1;
      return a[0] + a[1] + a[2] + a[3];
    }
    |};
  check_ret "global init" 60l
    {|
    global int table[4] = {10, 20, 30};
    int main() { return table[0] + table[1] + table[2] + table[3]; }
    |};
  check_ret "global scalar" 5l
    "global int g; int main() { g = 5; return g; }";
  check_ret "array aliasing across calls" 99l
    {|
    global int buf[8];
    int set(int i, int v) { buf[i] = v; return 0; }
    int main() { set(3, 99); return buf[3]; }
    |}

let test_scoping () =
  check_ret "shadowing" 1l
    {|
    int main() {
      int x = 1;
      { int x = 2; x = x + 1; }
      return x;
    }
    |};
  check_ret "for scope" 10l
    {|
    int main() {
      int i = 10;
      for (int i = 0; i < 3; i = i + 1) { }
      return i;
    }
    |}

let test_builtins () =
  Alcotest.(check string) "print_int" "42\n-7\n"
    (out "int main() { print_int(42); print_int(-7); return 0; }");
  Alcotest.(check string) "put_char" "Hi"
    (out "int main() { put_char('H'); put_char('i'); return 0; }");
  check_ret "exit" 3l "int main() { exit(3); return 0; }"

let test_args () =
  check_ret "main args" 30l ~args:[ 10l; 20l ]
    "int main(int a, int b) { return a + b; }"

let test_char_literals () =
  check_ret "char" 65l "int main() { return 'A'; }";
  check_ret "newline escape" 10l "int main() { return '\\n'; }"

let test_comments () =
  check_ret "comments" 3l
    {|
    // line comment
    int main() { /* block
                    comment */ return 3; }
    |}

(* ---------------- traps ---------------- *)

let check_traps msg src =
  match run src with
  | exception Interp.Trap _ -> ()
  | _ -> Alcotest.fail (msg ^ ": expected a trap")

let test_traps () =
  check_traps "div by zero" "int main() { int z = 0; return 1 / z; }";
  check_traps "rem by zero" "int main() { int z = 0; return 1 % z; }";
  check_traps "oob store"
    "int main() { int a[2]; a[-100000000] = 1; return 0; }";
  check_traps "stack overflow" "int f(int n) { return f(n + 1); } int main() { return f(0); }"

let test_fuel () =
  let m = Minic.compile_exn "int main() { while (1) { } return 0; }" in
  match Interp.run ~fuel:1000L m ~entry:"main" ~args:[] with
  | exception Interp.Trap _ -> ()
  | _ -> Alcotest.fail "expected fuel exhaustion"

(* ---------------- frontend errors ---------------- *)

let test_sema_errors () =
  check_error "undeclared" "undeclared" "int main() { return x; }";
  check_error "redeclaration" "redeclaration"
    "int main() { int x = 1; int x = 2; return x; }";
  check_error "array as scalar" "used as a scalar"
    "int main() { int a[2]; return a; }";
  check_error "scalar indexed" "cannot be indexed"
    "int main() { int x = 1; return x[0]; }";
  check_error "unknown function" "undeclared function"
    "int main() { return nope(1); }";
  check_error "arity" "expects 1 argument"
    "int main() { print_int(1, 2); return 0; }";
  check_error "break outside loop" "outside a loop"
    "int main() { break; return 0; }";
  check_error "duplicate function" "duplicate"
    "int f() { return 1; } int f() { return 2; } int main() { return 0; }";
  check_error "builtin shadow" "shadows a builtin"
    "int print_int(int x) { return x; } int main() { return 0; }";
  check_error "scope leak" "undeclared"
    "int main() { if (1) int x = 1; return x; }";
  check_error "duplicate param" "duplicate parameter"
    "int f(int a, int a) { return a; } int main() { return 0; }"

let test_parse_errors () =
  check_error "missing semi" "expected" "int main() { return 1 }";
  check_error "missing paren" "expected" "int main( { return 1; }";
  check_error "bad toplevel" "expected declaration" "return 1;";
  check_error "bad char" "unexpected character" "int main() { return 1 @ 2; }"

(* ---------------- interp counts (profiling oracle) ---------------- *)

let test_block_counts () =
  let m =
    Minic.compile_exn
      {|
      int main() {
        int sum = 0;
        for (int i = 0; i < 7; i = i + 1) sum = sum + i;
        return sum;
      }
      |}
  in
  let r = Interp.run m ~entry:"main" ~args:[] in
  (* The loop body must execute exactly 7 times; find its count. *)
  let body_count =
    Hashtbl.fold
      (fun (_, _) v acc -> if v = 7L then acc + 1 else acc)
      r.Interp.counts.blocks 0
  in
  Alcotest.(check bool) "some block ran exactly 7 times" true (body_count >= 1);
  (* Edge counts are conserved: for the loop-condition block, in = out. *)
  let edges = r.Interp.counts.edges in
  let into = Hashtbl.create 8 and outof = Hashtbl.create 8 in
  Hashtbl.iter
    (fun (f, s, d) v ->
      Hashtbl.replace into (f, d)
        (Int64.add v (Option.value (Hashtbl.find_opt into (f, d)) ~default:0L));
      Hashtbl.replace outof (f, s)
        (Int64.add v (Option.value (Hashtbl.find_opt outof (f, s)) ~default:0L)))
    edges;
  Hashtbl.iter
    (fun (f, l) blocks_count ->
      let inflow = Option.value (Hashtbl.find_opt into (f, l)) ~default:0L in
      let is_entry = l = 0 in
      if not is_entry then
        Alcotest.(check int64)
          (Printf.sprintf "inflow of L%d equals executions" l)
          blocks_count inflow)
    r.Interp.counts.blocks

let suite =
  [
    ( "front.exec",
      [
        Alcotest.test_case "arithmetic" `Quick test_arith;
        Alcotest.test_case "bitwise" `Quick test_bitwise;
        Alcotest.test_case "comparisons" `Quick test_comparisons;
        Alcotest.test_case "int32 wraparound" `Quick test_wraparound;
        Alcotest.test_case "short circuit" `Quick test_short_circuit;
        Alcotest.test_case "if/else" `Quick test_if_else;
        Alcotest.test_case "loops" `Quick test_loops;
        Alcotest.test_case "functions" `Quick test_functions;
        Alcotest.test_case "arrays" `Quick test_arrays;
        Alcotest.test_case "scoping" `Quick test_scoping;
        Alcotest.test_case "builtins" `Quick test_builtins;
        Alcotest.test_case "main args" `Quick test_args;
        Alcotest.test_case "char literals" `Quick test_char_literals;
        Alcotest.test_case "comments" `Quick test_comments;
      ] );
    ( "front.errors",
      [
        Alcotest.test_case "traps" `Quick test_traps;
        Alcotest.test_case "fuel" `Quick test_fuel;
        Alcotest.test_case "sema errors" `Quick test_sema_errors;
        Alcotest.test_case "parse errors" `Quick test_parse_errors;
      ] );
    ( "front.profile-oracle",
      [ Alcotest.test_case "block/edge counts" `Quick test_block_counts ] );
  ]
