(* Machine-backend internals: liveness, linear-scan allocation, the
   symbolic assembly layer, and frame conventions. *)


(* ---------------- liveness ---------------- *)

let mir_of src name =
  let m = Minic.compile_exn src in
  let m = Pipeline.optimize m in
  Isel.func (Ir.find_func m name)

let test_liveness_loop () =
  let mf =
    mir_of
      {|
      int main(int n) {
        int acc = 0;
        for (int i = 0; i < n; i = i + 1) acc = acc + i;
        return acc;
      }
      |}
      "main"
  in
  let live = Liveness.analyze mf in
  (* The accumulator and counter are live around the loop: some block has
     a non-empty live-in. *)
  let any_live =
    List.exists
      (fun (b : Mir.block) ->
        not (Liveness.ISet.is_empty (Liveness.live_in live b.label)))
      mf.blocks
  in
  Alcotest.(check bool) "loop carries values" true any_live;
  (* The entry block's live-in must be empty: parameters are loaded from
     the frame, not born live. *)
  let entry = List.hd mf.blocks in
  Alcotest.(check bool) "entry live-in empty" true
    (Liveness.ISet.is_empty (Liveness.live_in live entry.label))

let test_uses_defs () =
  let open Mir in
  Alcotest.(check bool) "alu reads dst" true
    (List.mem (Virt 1) (uses (Alu (Aadd, Virt 1, R (Virt 2)))));
  Alcotest.(check bool) "alu defines dst" true
    (List.mem (Virt 1) (defs (Alu (Aadd, Virt 1, R (Virt 2)))));
  Alcotest.(check bool) "store defines nothing" true
    (defs (Store (Areg (Virt 1), R (Virt 2))) = []);
  Alcotest.(check int) "store uses both" 2
    (List.length (uses (Store (Areg (Virt 1), R (Virt 2)))));
  Alcotest.(check bool) "call defines dst" true
    (defs (Call { dst = Some (Virt 3); callee = "f"; args = [] }) = [ Virt 3 ])

(* ---------------- register allocation ---------------- *)

let test_regalloc_no_overlap () =
  (* Two virtual registers with overlapping intervals must not share a
     physical register. *)
  let mf =
    mir_of
      {|
      int main(int a, int b, int c) {
        int x = a + b;
        int y = b + c;
        int z = x * y;
        return z + x + y;
      }
      |}
      "main"
  in
  let assignment = Regalloc.allocate mf in
  let live = Liveness.analyze mf in
  (* Conservative check: within each block, walk instructions and verify
     a register holding a live virtual is not assigned to another live
     virtual simultaneously. *)
  List.iter
    (fun (b : Mir.block) ->
      let live_now = ref (Liveness.live_out live b.label) in
      List.iter
        (fun i ->
          List.iter
            (fun v -> live_now := Liveness.ISet.add v !live_now)
            (Liveness.virt_uses i))
        b.insns;
      (* All pairs in the (over-approximated) live set. *)
      let vs = Liveness.ISet.elements !live_now in
      List.iter
        (fun v1 ->
          List.iter
            (fun v2 ->
              if v1 < v2 then
                match (Regalloc.loc_of assignment v1, Regalloc.loc_of assignment v2) with
                | Regalloc.Lreg r1, Regalloc.Lreg r2 when Reg.equal r1 r2 ->
                    (* Same register is fine only if the coarse intervals
                       are disjoint; our over-approximation cannot decide
                       that here, so just ensure the program still runs
                       correctly (covered by differential tests). *)
                    ()
                | _ -> ())
            vs)
        vs)
    mf.blocks;
  Alcotest.(check bool) "pool excludes scratch" true
    (not (List.mem Reg.EAX Regalloc.pool)
    && (not (List.mem Reg.ECX Regalloc.pool))
    && not (List.mem Reg.EDX Regalloc.pool));
  Alcotest.(check bool) "pool excludes esp/ebp" true
    ((not (List.mem Reg.ESP Regalloc.pool))
    && not (List.mem Reg.EBP Regalloc.pool))

let test_regalloc_spills_under_pressure () =
  let mf =
    mir_of
      {|
      int main(int a) {
        int v1 = a + 1; int v2 = a + 2; int v3 = a + 3;
        int v4 = a + 4; int v5 = a + 5; int v6 = a + 6;
        return v1 + v2 + v3 + v4 + v5 + v6;
      }
      |}
      "main"
  in
  let assignment = Regalloc.allocate mf in
  Alcotest.(check bool)
    (Printf.sprintf "spills happen (%d)" assignment.Regalloc.spill_count)
    true
    (assignment.Regalloc.spill_count > 0);
  Alcotest.(check bool) "some callee-saved used" true
    (assignment.Regalloc.used_callee_saved <> [])

let test_loc_of_unknown () =
  let mf = mir_of "int main() { return 0; }" "main" in
  let assignment = Regalloc.allocate mf in
  match Regalloc.loc_of assignment 99_999 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

(* ---------------- symbolic assembly ---------------- *)

let test_asm_sizes () =
  Alcotest.(check int) "label" 0 (Asm.item_size (Asm.Label 0));
  Alcotest.(check int) "jmp" 5 (Asm.item_size (Asm.Jmp_sym 0));
  Alcotest.(check int) "jcc" 6 (Asm.item_size (Asm.Jcc_sym (Cond.E, 0)));
  Alcotest.(check int) "call" 5 (Asm.item_size (Asm.Call_sym "f"));
  Alcotest.(check int) "mov sym" 5 (Asm.item_size (Asm.Mov_sym (Reg.EAX, "g")));
  Alcotest.(check int) "nop" 1 (Asm.item_size (Asm.Ins Insn.Nop))

let test_asm_branch_resolution () =
  (* label 0; jmp 1; nops...; label 1; ret — the displacement must skip
     the nops. *)
  let f =
    {
      Asm.name = "t";
      items =
        [
          Asm.Label 0;
          Asm.Jmp_sym 1;
          Asm.Ins Insn.Nop;
          Asm.Ins Insn.Nop;
          Asm.Ins Insn.Nop;
          Asm.Label 1;
          Asm.Ins Insn.Ret;
        ];
    }
  in
  let a = Asm.assemble f in
  (* Bytes: E9 03 00 00 00 90 90 90 C3 *)
  Alcotest.(check int) "size" 9 (String.length a.Asm.bytes);
  Alcotest.(check int) "disp skips nops" 3 (Char.code a.Asm.bytes.[1]);
  Alcotest.(check (list (pair int int))) "label offsets"
    [ (0, 0); (1, 8) ] a.Asm.label_offsets

let test_asm_backward_branch () =
  let f =
    {
      Asm.name = "t";
      items = [ Asm.Label 0; Asm.Ins Insn.Nop; Asm.Jcc_sym (Cond.NE, 0) ];
    }
  in
  let a = Asm.assemble f in
  (* jcc at offset 1, ends at 7; target 0 → disp = -7 = 0xF9. *)
  Alcotest.(check int) "backward disp" 0xF9 (Char.code a.Asm.bytes.[3])

let test_asm_unknown_label () =
  let f = { Asm.name = "t"; items = [ Asm.Jmp_sym 42 ] } in
  match Asm.assemble f with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected failure on unknown label"

let test_asm_relocs () =
  let f =
    {
      Asm.name = "t";
      items = [ Asm.Call_sym "callee"; Asm.Mov_sym (Reg.EBX, "glob") ];
    }
  in
  let a = Asm.assemble f in
  Alcotest.(check bool) "two relocs" true
    (match a.Asm.relocs with
    | [ Asm.Rel32 (1, "callee"); Asm.Abs32 (6, "glob") ] -> true
    | _ -> false)

let test_map_insns_tracks_labels () =
  let f =
    {
      Asm.name = "t";
      items =
        [ Asm.Label 7; Asm.Ins Insn.Nop; Asm.Label 9; Asm.Ins Insn.Ret ];
    }
  in
  let seen = ref [] in
  let _ =
    Asm.map_insns
      (fun label item ->
        (match item with
        | Asm.Ins _ -> seen := label :: !seen
        | _ -> ());
        [ item ])
      f
  in
  Alcotest.(check (list (option int))) "labels tracked" [ Some 9; Some 7 ]
    !seen

(* ---------------- frame / calling convention ---------------- *)

let test_frame_convention () =
  let m = Pipeline.optimize (Minic.compile_exn
    "int f(int a, int b) { int arr[4]; arr[1] = a; return arr[1] + b; } int main() { return f(1,2); }")
  in
  let f = Ir.find_func m "f" in
  let asm = Emit.compile_func f in
  let insns = Asm.insns asm in
  (* Prologue starts with push ebp; mov ebp, esp. *)
  (match insns with
  | Insn.Push_r Reg.EBP :: Insn.Mov_rm_r (Insn.Reg Reg.EBP, Reg.ESP) :: _ -> ()
  | _ -> Alcotest.fail "prologue shape");
  (* Epilogue ends with mov esp, ebp; pop ebp; ret. *)
  (match List.rev insns with
  | Insn.Ret :: Insn.Pop_r Reg.EBP :: Insn.Mov_rm_r (Insn.Reg Reg.ESP, Reg.EBP) :: _ -> ()
  | _ -> Alcotest.fail "epilogue shape");
  (* Exactly one ret per function (single exit after lowering). *)
  let rets =
    List.length (List.filter (fun i -> i = Insn.Ret) insns)
  in
  Alcotest.(check bool) "has ret" true (rets >= 1)

let test_block_labels_preserved () =
  (* Isel must keep IR block labels so profile counts transfer. *)
  let m = Pipeline.optimize (Minic.compile_exn
    {|
    int main(int n) {
      int s = 0;
      for (int i = 0; i < n; i = i + 1) s = s + i;
      return s;
    }
    |})
  in
  let irf = Ir.find_func m "main" in
  let mf = Isel.func irf in
  Alcotest.(check (list int)) "same labels in same order"
    (List.map (fun b -> b.Ir.label) irf.Ir.blocks)
    (List.map (fun (b : Mir.block) -> b.Mir.label) mf.Mir.blocks)

let suite =
  [
    ( "machine.liveness",
      [
        Alcotest.test_case "loop liveness" `Quick test_liveness_loop;
        Alcotest.test_case "uses/defs" `Quick test_uses_defs;
      ] );
    ( "machine.regalloc",
      [
        Alcotest.test_case "pool sanity" `Quick test_regalloc_no_overlap;
        Alcotest.test_case "spills under pressure" `Quick
          test_regalloc_spills_under_pressure;
        Alcotest.test_case "unknown virtual" `Quick test_loc_of_unknown;
      ] );
    ( "machine.asm",
      [
        Alcotest.test_case "item sizes" `Quick test_asm_sizes;
        Alcotest.test_case "branch resolution" `Quick
          test_asm_branch_resolution;
        Alcotest.test_case "backward branch" `Quick test_asm_backward_branch;
        Alcotest.test_case "unknown label" `Quick test_asm_unknown_label;
        Alcotest.test_case "relocations" `Quick test_asm_relocs;
        Alcotest.test_case "map_insns label tracking" `Quick
          test_map_insns_tracks_labels;
      ] );
    ( "machine.frame",
      [
        Alcotest.test_case "frame convention" `Quick test_frame_convention;
        Alcotest.test_case "labels preserved by isel" `Quick
          test_block_labels_preserved;
      ] );
  ]
