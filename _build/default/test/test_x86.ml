
let hex s =
  String.concat " "
    (List.init (String.length s) (fun i -> Printf.sprintf "%02X" (Char.code s.[i])))

let check_enc msg expected insn =
  Alcotest.(check string) msg expected (hex (Encode.insn insn))

let insn_testable = Alcotest.testable Insn.pp Insn.equal

(* ------------------------------------------------------------------ *)
(* Table 1: the NOP candidates must have the exact byte encodings the
   paper lists, and the declared second-byte decodings. *)

let test_table1_encodings () =
  let expected =
    [ "90"; "89 E4"; "89 ED"; "8D 36"; "8D 3F"; "87 E4"; "87 ED" ]
  in
  List.iter2
    (fun e (c : Nops.candidate) ->
      Alcotest.(check string) (Insn.to_string c.insn) e (hex c.encoding))
    expected Nops.all

let test_table1_default_excludes_xchg () =
  Alcotest.(check int) "five default candidates" 5 (Array.length Nops.default);
  Array.iter
    (fun i ->
      match i with
      | Insn.Xchg_rm_r _ -> Alcotest.fail "XCHG must be excluded by default"
      | _ -> ())
    Nops.default;
  Alcotest.(check int) "seven with xchg" 7 (Array.length Nops.with_xchg)

let test_table1_candidates_roundtrip () =
  List.iter
    (fun (c : Nops.candidate) ->
      match Decode.insn c.encoding with
      | Some (i, len) ->
          Alcotest.check insn_testable "decodes back" c.insn i;
          Alcotest.(check int) "full length" (String.length c.encoding) len
      | None -> Alcotest.fail "candidate must decode")
    Nops.all

let test_nop_strip () =
  let open Insn in
  let body = [ Push_r Reg.EAX; Nop; Mov_rm_r (Reg Reg.ESP, Reg.ESP); Ret ] in
  Alcotest.(check int) "strips both" 2 (List.length (Nops.strip body));
  Alcotest.(check bool)
    "is_candidate lea esi" true
    (Nops.is_candidate (Lea (Reg.ESI, mem_base Reg.ESI)));
  Alcotest.(check bool)
    "plain lea not candidate" false
    (Nops.is_candidate (Lea (Reg.ESI, mem_base ~disp:4l Reg.ESI)))

(* ------------------------------------------------------------------ *)
(* Known encodings, byte for byte against the Intel SDM. *)

let test_known_encodings () =
  let open Insn in
  let open Reg in
  check_enc "ret" "C3" Ret;
  check_enc "ret 8" "C2 08 00" (Ret_imm 8);
  check_enc "push eax" "50" (Push_r EAX);
  check_enc "pop edi" "5F" (Pop_r EDI);
  check_enc "push imm" "68 78 56 34 12" (Push_imm 0x12345678l);
  check_enc "mov eax, 1" "B8 01 00 00 00" (Mov_r_imm (EAX, 1l));
  check_enc "mov edx, -1" "BA FF FF FF FF" (Mov_r_imm (EDX, -1l));
  check_enc "mov ecx, ebx (89)" "89 D9" (Mov_rm_r (Reg ECX, EBX));
  check_enc "mov ecx, ebx (8B)" "8B CB" (Mov_r_rm (ECX, Reg EBX));
  check_enc "add eax, ebx" "01 D8" (Alu_rm_r (Add, Reg EAX, EBX));
  check_enc "sub eax, ebx" "29 D8" (Alu_rm_r (Sub, Reg EAX, EBX));
  check_enc "xor eax, eax" "31 C0" (Alu_rm_r (Xor, Reg EAX, EAX));
  check_enc "cmp eax, [ebx]" "3B 03" (Alu_r_rm (Cmp, EAX, Mem (mem_base EBX)));
  check_enc "add eax, 5 (imm8)" "83 C0 05" (Alu_rm_imm (Add, Reg EAX, 5l));
  check_enc "add eax, 0x100 (imm32)" "81 C0 00 01 00 00"
    (Alu_rm_imm (Add, Reg EAX, 0x100l));
  check_enc "sub esp, 8" "83 EC 08" (Alu_rm_imm (Sub, Reg ESP, 8l));
  check_enc "test eax, eax" "85 C0" (Test_rm_r (Reg EAX, EAX));
  check_enc "inc eax" "40" (Inc_r EAX);
  check_enc "dec ebx" "4B" (Dec_r EBX);
  check_enc "neg eax" "F7 D8" (Neg (Reg EAX));
  check_enc "not ecx" "F7 D1" (Not (Reg ECX));
  check_enc "imul eax, ebx" "0F AF C3" (Imul_r_rm (EAX, Reg EBX));
  check_enc "idiv ebx" "F7 FB" (Idiv (Reg EBX));
  check_enc "mul ebx" "F7 E3" (Mul (Reg EBX));
  check_enc "cdq" "99" Cdq;
  check_enc "shl eax, 4" "C1 E0 04" (Shift_imm (Shl, Reg EAX, 4));
  check_enc "sar edx, 1" "C1 FA 01" (Shift_imm (Sar, Reg EDX, 1));
  check_enc "shr ebx, cl" "D3 EB" (Shift_cl (Shr, Reg EBX));
  check_enc "call +0" "E8 00 00 00 00" (Call_rel 0l);
  check_enc "jmp -5" "E9 FB FF FF FF" (Jmp_rel (-5l));
  check_enc "jmp short +2" "EB 02" (Jmp_rel8 2);
  check_enc "je +16" "0F 84 10 00 00 00" (Jcc (Cond.E, 16l));
  check_enc "jne short -2" "75 FE" (Jcc8 (Cond.NE, -2));
  check_enc "sete al" "0F 94 C0" (Setcc (Cond.E, AL));
  check_enc "setl bl" "0F 9C C3" (Setcc (Cond.L, BL));
  check_enc "movzx eax, al" "0F B6 C0" (Movzx_r_r8 (EAX, AL));
  check_enc "call *eax" "FF D0" (Call_rm (Reg EAX));
  check_enc "jmp *edx" "FF E2" (Jmp_rm (Reg EDX));
  check_enc "int 0x80" "CD 80" (Int 0x80);
  check_enc "hlt" "F4" Hlt;
  check_enc "nop" "90" Nop

let test_mem_encodings () =
  let open Insn in
  let open Reg in
  (* [ebx]: mod=00. *)
  check_enc "mov eax, [ebx]" "8B 03" (Mov_r_rm (EAX, Mem (mem_base EBX)));
  (* [ebx+8]: disp8. *)
  check_enc "mov eax, [ebx+8]" "8B 43 08"
    (Mov_r_rm (EAX, Mem (mem_base ~disp:8l EBX)));
  (* [ebx+0x100]: disp32. *)
  check_enc "mov eax, [ebx+0x100]" "8B 83 00 01 00 00"
    (Mov_r_rm (EAX, Mem (mem_base ~disp:0x100l EBX)));
  (* [ebp]: EBP base forces a displacement byte. *)
  check_enc "mov eax, [ebp]" "8B 45 00" (Mov_r_rm (EAX, Mem (mem_base EBP)));
  check_enc "mov eax, [ebp-4]" "8B 45 FC"
    (Mov_r_rm (EAX, Mem (mem_base ~disp:(-4l) EBP)));
  (* [esp]: ESP base forces SIB. *)
  check_enc "mov eax, [esp]" "8B 04 24" (Mov_r_rm (EAX, Mem (mem_base ESP)));
  check_enc "mov eax, [esp+4]" "8B 44 24 04"
    (Mov_r_rm (EAX, Mem (mem_base ~disp:4l ESP)));
  (* Absolute. *)
  check_enc "mov eax, [0x1234]" "8B 05 34 12 00 00"
    (Mov_r_rm (EAX, Mem (mem_abs 0x1234l)));
  (* Base + index*scale. *)
  check_enc "mov eax, [ebx+esi*4]" "8B 04 B3"
    (Mov_r_rm (EAX, Mem (mem_index ~base:EBX ~index:ESI S4)));
  check_enc "mov eax, [ebx+esi*4+8]" "8B 44 B3 08"
    (Mov_r_rm (EAX, Mem (mem_index ~disp:8l ~base:EBX ~index:ESI S4)));
  (* Index without base. *)
  check_enc "mov eax, [esi*2+0x10]" "8B 04 75 10 00 00 00"
    (Mov_r_rm
       (EAX, Mem { base = None; index = Some (ESI, S2); disp = 0x10l }));
  (* lea with EBP base and index. *)
  check_enc "lea eax, [ebp+ecx*1-8]" "8D 44 0D F8"
    (Lea (EAX, mem_index ~disp:(-8l) ~base:EBP ~index:ECX S1))

let test_esp_index_rejected () =
  Alcotest.check_raises "mem_index rejects ESP"
    (Invalid_argument "Insn.mem_index: ESP cannot be an index register")
    (fun () ->
      ignore (Insn.mem_index ~base:Reg.EAX ~index:Reg.ESP Insn.S1));
  Alcotest.check_raises "encoder rejects ESP index"
    (Invalid_argument "Encode: ESP cannot be an index register") (fun () ->
      ignore
        (Encode.insn
           (Insn.Mov_r_rm
              ( Reg.EAX,
                Insn.Mem
                  {
                    base = Some Reg.EAX;
                    index = Some (Reg.ESP, Insn.S1);
                    disp = 0l;
                  } ))))

(* ------------------------------------------------------------------ *)
(* Decoding. *)

let bytes_of_hex s =
  let b = Buffer.create 16 in
  String.split_on_char ' ' s
  |> List.iter (fun tok ->
         if tok <> "" then Buffer.add_char b (Char.chr (int_of_string ("0x" ^ tok))));
  Buffer.contents b

let check_dec msg hexstr expected =
  match Decode.insn (bytes_of_hex hexstr) with
  | Some (i, len) ->
      Alcotest.check insn_testable msg expected i;
      Alcotest.(check int) (msg ^ " length")
        (String.length (bytes_of_hex hexstr))
        len
  | None -> Alcotest.fail (msg ^ ": failed to decode")

let test_known_decodings () =
  let open Insn in
  let open Reg in
  check_dec "ret" "C3" Ret;
  check_dec "mov esp, esp" "89 E4" (Mov_rm_r (Reg ESP, ESP));
  check_dec "lea esi, [esi]" "8D 36" (Lea (ESI, mem_base ESI));
  check_dec "pop ecx" "59" (Pop_r ECX);
  check_dec "adc [ecx], eax" "11 01" (Alu_rm_r (Adc, Mem (mem_base ECX), EAX));
  check_dec "mov [ecx], edx" "89 11" (Mov_rm_r (Mem (mem_base ECX), EDX));
  check_dec "add ebx, eax" "01 C3" (Alu_rm_r (Add, Reg EBX, EAX));
  check_dec "rol-like bytes are invalid in our subset" "90" Nop

let test_decode_invalid () =
  let none hexstr =
    Alcotest.(check bool)
      (hexstr ^ " undecodable") true
      (Decode.insn (bytes_of_hex hexstr) = None)
  in
  none "FF D8" (* FF /3 — not call/jmp *);
  none "C7 C8 01 00 00 00" (* C7 /1 invalid *);
  none "F7 C0" (* F7 /0 (test imm) not in subset *);
  none "C1 C0 01" (* C1 /0 (rol) not in subset *);
  none "0F 05" (* syscall — not in 32-bit subset *);
  none "8D C0" (* lea with register operand *);
  none "06" (* push es — not in subset *);
  none "C1 E0 20" (* shift count 32 out of range *);
  none "E8 00 00" (* truncated rel32 *);
  none "8B" (* truncated modrm *);
  none "8B 84" (* truncated sib *);
  Alcotest.(check bool) "empty" true (Decode.insn "" = None);
  Alcotest.(check bool) "pos past end" true (Decode.insn ~pos:10 "\x90" = None)

let test_decode_sequence () =
  let open Insn in
  let prog =
    [ Push_r Reg.EBP; Mov_rm_r (Reg Reg.EBP, Reg.ESP); Pop_r Reg.EBP; Ret ]
  in
  let bytes = Encode.program prog in
  let decoded = List.map snd (Decode.all bytes) in
  Alcotest.(check (list insn_testable)) "roundtrip program" prog decoded

let test_decode_sequence_stops_at_bad () =
  let bytes = Encode.insn Insn.Ret ^ "\x06" ^ Encode.insn Insn.Nop in
  Alcotest.(check int) "stops at bad byte" 1 (List.length (Decode.all bytes))

let test_decode_max () =
  let bytes = Encode.program [ Insn.Nop; Insn.Nop; Insn.Nop ] in
  Alcotest.(check int) "max limits" 2 (List.length (Decode.sequence ~max:2 bytes))

(* Paper Figure 2: decoding the same bytes at a one-byte offset turns
   "mov [ecx], edx ; add ebx, eax" into "adc [ecx], eax ; ret" — the
   hidden gadget. *)
let test_figure2_overlapping_decode () =
  let open Insn in
  let bytes = bytes_of_hex "89 11 01 C3" in
  (match Decode.sequence bytes with
  | [ (Mov_rm_r _, 0); (Alu_rm_r (Add, Reg Reg.EBX, Reg.EAX), 2) ] -> ()
  | _ -> Alcotest.fail "intended stream decodes as mov;add");
  match Decode.sequence ~pos:1 bytes with
  | [ (Alu_rm_r (Adc, Mem _, Reg.EAX), 1); (Ret, 3) ] -> ()
  | _ -> Alcotest.fail "offset stream decodes as adc;ret (hidden gadget)"

(* ------------------------------------------------------------------ *)
(* Classification. *)

let test_classification () =
  let open Insn in
  Alcotest.(check bool) "ret is free branch" true (is_free_branch Ret);
  Alcotest.(check bool) "call *eax is free branch" true
    (is_free_branch (Call_rm (Reg Reg.EAX)));
  Alcotest.(check bool) "jmp *[eax] is free branch" true
    (is_free_branch (Jmp_rm (Mem (mem_base Reg.EAX))));
  Alcotest.(check bool) "direct call is not free" false
    (is_free_branch (Call_rel 0l));
  Alcotest.(check bool) "direct jmp is not free" false
    (is_free_branch (Jmp_rel 0l));
  Alcotest.(check bool) "jcc is control flow" true
    (is_control_flow (Jcc (Cond.E, 0l)));
  Alcotest.(check bool) "jcc is not terminator" false
    (is_terminator (Jcc (Cond.E, 0l)));
  Alcotest.(check bool) "jmp is terminator" true (is_terminator (Jmp_rel 0l));
  Alcotest.(check bool) "call is not terminator" false
    (is_terminator (Call_rel 0l));
  Alcotest.(check bool) "push writes memory" true (writes_memory (Push_r Reg.EAX));
  Alcotest.(check bool) "store writes memory" true
    (writes_memory (Mov_rm_r (Mem (mem_base Reg.EBX), Reg.EAX)));
  Alcotest.(check bool) "load does not write" false
    (writes_memory (Mov_r_rm (Reg.EAX, Mem (mem_base Reg.EBX))))

let test_cond_negate () =
  List.iter
    (fun c ->
      Alcotest.(check bool) "double negation" true
        (Cond.equal c (Cond.negate (Cond.negate c)));
      Alcotest.(check bool) "negation differs" false
        (Cond.equal c (Cond.negate c)))
    [ Cond.O; Cond.B; Cond.E; Cond.NE; Cond.L; Cond.GE; Cond.LE; Cond.G ]

let test_reg_encodings () =
  List.iteri
    (fun i r ->
      Alcotest.(check int) (Reg.name r) i (Reg.encode r);
      Alcotest.(check bool) "decode inverse" true
        (Reg.equal r (Reg.decode i)))
    Reg.all

(* ------------------------------------------------------------------ *)
(* Property: decode is a left inverse of encode for every instruction. *)

let gen_reg = QCheck.Gen.oneofl Reg.all
let gen_reg8 = QCheck.Gen.oneofl [ Reg.AL; Reg.CL; Reg.DL; Reg.BL ]
let gen_cond = QCheck.Gen.map Cond.decode (QCheck.Gen.int_bound 15)
let gen_imm32 = QCheck.Gen.map Int32.of_int (QCheck.Gen.int_range (-0x40000000) 0x3FFFFFFF)

let gen_mem =
  let open QCheck.Gen in
  let gen_index =
    oneofl (List.filter (fun r -> not (Reg.equal r Reg.ESP)) Reg.all)
  in
  let* base = opt gen_reg in
  let* index =
    match base with
    | None -> opt (pair gen_index (oneofl Insn.[ S1; S2; S4; S8 ]))
    | Some _ -> opt (pair gen_index (oneofl Insn.[ S1; S2; S4; S8 ]))
  in
  let* disp = gen_imm32 in
  return { Insn.base; index; disp }

let gen_operand =
  QCheck.Gen.oneof
    [
      QCheck.Gen.map (fun r -> Insn.Reg r) gen_reg;
      QCheck.Gen.map (fun m -> Insn.Mem m) gen_mem;
    ]

let gen_insn =
  let open QCheck.Gen in
  let open Insn in
  let gen_alu = oneofl [ Add; Or; Adc; Sbb; And; Sub; Xor; Cmp ] in
  let gen_shift = oneofl [ Shl; Shr; Sar ] in
  oneof
    [
      map2 (fun o r -> Mov_rm_r (o, r)) gen_operand gen_reg;
      map2 (fun r o -> Mov_r_rm (r, o)) gen_reg gen_operand;
      map2 (fun r i -> Mov_r_imm (r, i)) gen_reg gen_imm32;
      map2 (fun o i -> Mov_rm_imm (o, i)) gen_operand gen_imm32;
      map3 (fun a o r -> Alu_rm_r (a, o, r)) gen_alu gen_operand gen_reg;
      map3 (fun a r o -> Alu_r_rm (a, r, o)) gen_alu gen_reg gen_operand;
      map3 (fun a o i -> Alu_rm_imm (a, o, i)) gen_alu gen_operand gen_imm32;
      map2 (fun o r -> Test_rm_r (o, r)) gen_operand gen_reg;
      map2 (fun r m -> Lea (r, m)) gen_reg gen_mem;
      map (fun r -> Inc_r r) gen_reg;
      map (fun r -> Dec_r r) gen_reg;
      map (fun o -> Neg o) gen_operand;
      map (fun o -> Not o) gen_operand;
      map2 (fun r o -> Imul_r_rm (r, o)) gen_reg gen_operand;
      map (fun o -> Mul o) gen_operand;
      map (fun o -> Idiv o) gen_operand;
      return Cdq;
      map3 (fun s o n -> Shift_imm (s, o, n)) gen_shift gen_operand (int_bound 31);
      map2 (fun s o -> Shift_cl (s, o)) gen_shift gen_operand;
      map (fun r -> Push_r r) gen_reg;
      map (fun i -> Push_imm i) gen_imm32;
      map (fun r -> Pop_r r) gen_reg;
      return Ret;
      map (fun n -> Ret_imm n) (int_bound 0xFFFF);
      map (fun d -> Call_rel d) gen_imm32;
      map (fun o -> Call_rm o) gen_operand;
      map (fun d -> Jmp_rel d) gen_imm32;
      map (fun d -> Jmp_rel8 d) (int_range (-128) 127);
      map (fun o -> Jmp_rm o) gen_operand;
      map2 (fun c d -> Jcc (c, d)) gen_cond gen_imm32;
      map2 (fun c d -> Jcc8 (c, d)) gen_cond (int_range (-128) 127);
      map2 (fun c r -> Setcc (c, r)) gen_cond gen_reg8;
      map2 (fun r r8 -> Movzx_r_r8 (r, r8)) gen_reg gen_reg8;
      map2 (fun o r -> Xchg_rm_r (o, r)) gen_operand gen_reg;
      map (fun n -> Int n) (int_bound 0xFF);
      return Nop;
      return Hlt;
    ]

let arb_insn = QCheck.make ~print:Insn.to_string gen_insn

let prop_roundtrip =
  QCheck.Test.make ~name:"decode (encode i) = i" ~count:2000 arb_insn (fun i ->
      let bytes = Encode.insn i in
      match Decode.insn bytes with
      | Some (j, len) -> Insn.equal i j && len = String.length bytes
      | None -> false)

let prop_length_consistent =
  QCheck.Test.make ~name:"Encode.length agrees with Encode.insn" ~count:500
    arb_insn (fun i -> Encode.length i = String.length (Encode.insn i))

let prop_decode_never_raises =
  QCheck.Test.make ~name:"decode never raises on random bytes" ~count:2000
    QCheck.(string_of_size (Gen.int_bound 16))
    (fun s ->
      match Decode.insn s with
      | Some (_, len) -> len > 0 && len <= String.length s
      | None -> true)

let prop_program_concat =
  QCheck.Test.make ~name:"program = concat of insn encodings" ~count:200
    QCheck.(list_of_size (Gen.int_bound 10) arb_insn)
    (fun insns ->
      Encode.program insns = String.concat "" (List.map Encode.insn insns))

let suite =
  [
    ( "x86.table1",
      [
        Alcotest.test_case "encodings" `Quick test_table1_encodings;
        Alcotest.test_case "default excludes XCHG" `Quick
          test_table1_default_excludes_xchg;
        Alcotest.test_case "candidates roundtrip" `Quick
          test_table1_candidates_roundtrip;
        Alcotest.test_case "strip" `Quick test_nop_strip;
      ] );
    ( "x86.encode",
      [
        Alcotest.test_case "known encodings" `Quick test_known_encodings;
        Alcotest.test_case "memory operands" `Quick test_mem_encodings;
        Alcotest.test_case "ESP index rejected" `Quick test_esp_index_rejected;
      ] );
    ( "x86.decode",
      [
        Alcotest.test_case "known decodings" `Quick test_known_decodings;
        Alcotest.test_case "invalid bytes" `Quick test_decode_invalid;
        Alcotest.test_case "sequence roundtrip" `Quick test_decode_sequence;
        Alcotest.test_case "sequence stops at bad" `Quick
          test_decode_sequence_stops_at_bad;
        Alcotest.test_case "sequence max" `Quick test_decode_max;
        Alcotest.test_case "figure 2 overlapping decode" `Quick
          test_figure2_overlapping_decode;
      ] );
    ( "x86.classify",
      [
        Alcotest.test_case "free branches etc." `Quick test_classification;
        Alcotest.test_case "cond negate" `Quick test_cond_negate;
        Alcotest.test_case "reg encodings" `Quick test_reg_encodings;
      ] );
    ( "x86.properties",
      List.map QCheck_alcotest.to_alcotest
        [
          prop_roundtrip;
          prop_length_consistent;
          prop_decode_never_raises;
          prop_program_concat;
        ] );
  ]
