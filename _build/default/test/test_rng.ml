
let test_determinism () =
  let a = Rng.create 42L and b = Rng.create 42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.next_int64 a) (Rng.next_int64 b)
  done

let test_distinct_seeds () =
  let a = Rng.create 1L and b = Rng.create 2L in
  let eq = ref 0 in
  for _ = 1 to 100 do
    if Rng.next_int64 a = Rng.next_int64 b then incr eq
  done;
  Alcotest.(check bool) "streams differ" true (!eq < 5)

let test_copy_independent () =
  let a = Rng.create 7L in
  let _ = Rng.next_int64 a in
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues stream" (Rng.next_int64 a)
    (Rng.next_int64 b)

let test_split_independent () =
  let a = Rng.create 7L in
  let b = Rng.split a in
  let eq = ref 0 in
  for _ = 1 to 100 do
    if Rng.next_int64 a = Rng.next_int64 b then incr eq
  done;
  Alcotest.(check bool) "split stream differs" true (!eq < 5)

let test_of_labels_stable () =
  let a = Rng.of_labels 1L [ "bench"; "cfg"; "3" ] in
  let b = Rng.of_labels 1L [ "bench"; "cfg"; "3" ] in
  Alcotest.(check int64) "stable derivation" (Rng.next_int64 a)
    (Rng.next_int64 b)

let test_of_labels_separator () =
  let a = Rng.of_labels 1L [ "ab"; "c" ] in
  let b = Rng.of_labels 1L [ "a"; "bc" ] in
  Alcotest.(check bool) "label boundary matters" true
    (Rng.next_int64 a <> Rng.next_int64 b)

let test_int_bounds () =
  let r = Rng.create 99L in
  for _ = 1 to 1000 do
    let v = Rng.int r 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done

let test_int_uniform () =
  (* Chi-squared-ish sanity: each of 8 buckets gets its fair share. *)
  let r = Rng.create 123L in
  let counts = Array.make 8 0 in
  let n = 80_000 in
  for _ = 1 to n do
    let v = Rng.int r 8 in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iter
    (fun c ->
      Alcotest.(check bool)
        "bucket within 5% of expectation" true
        (abs (c - (n / 8)) < n / 8 / 20))
    counts

let test_float_bounds () =
  let r = Rng.create 5L in
  for _ = 1 to 1000 do
    let v = Rng.float r 3.0 in
    Alcotest.(check bool) "in range" true (v >= 0.0 && v < 3.0)
  done

let test_bernoulli_extremes () =
  let r = Rng.create 5L in
  Alcotest.(check bool) "p=0 never" false (Rng.bernoulli r 0.0);
  Alcotest.(check bool) "p=1 always" true (Rng.bernoulli r 1.0);
  Alcotest.(check bool) "p<0 clamps" false (Rng.bernoulli r (-1.0));
  Alcotest.(check bool) "p>1 clamps" true (Rng.bernoulli r 2.0)

let test_bernoulli_rate () =
  let r = Rng.create 11L in
  let hits = ref 0 in
  let n = 50_000 in
  for _ = 1 to n do
    if Rng.bernoulli r 0.3 then incr hits
  done;
  let rate = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool) "rate near 0.3" true (abs_float (rate -. 0.3) < 0.01)

let test_choose () =
  let r = Rng.create 3L in
  let arr = [| 10; 20; 30 |] in
  for _ = 1 to 100 do
    Alcotest.(check bool) "member" true (Array.mem (Rng.choose r arr) arr)
  done;
  Alcotest.check_raises "empty raises"
    (Invalid_argument "Rng.choose: empty array") (fun () ->
      ignore (Rng.choose r [||]))

let test_shuffle_permutation () =
  let r = Rng.create 17L in
  let arr = Array.init 50 Fun.id in
  Rng.shuffle r arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 Fun.id) sorted

let suite =
  [
    ( "rng",
      [
        Alcotest.test_case "determinism" `Quick test_determinism;
        Alcotest.test_case "distinct seeds" `Quick test_distinct_seeds;
        Alcotest.test_case "copy" `Quick test_copy_independent;
        Alcotest.test_case "split" `Quick test_split_independent;
        Alcotest.test_case "of_labels stable" `Quick test_of_labels_stable;
        Alcotest.test_case "of_labels separator" `Quick
          test_of_labels_separator;
        Alcotest.test_case "int bounds" `Quick test_int_bounds;
        Alcotest.test_case "int uniform" `Quick test_int_uniform;
        Alcotest.test_case "float bounds" `Quick test_float_bounds;
        Alcotest.test_case "bernoulli extremes" `Quick test_bernoulli_extremes;
        Alcotest.test_case "bernoulli rate" `Quick test_bernoulli_rate;
        Alcotest.test_case "choose" `Quick test_choose;
        Alcotest.test_case "shuffle" `Quick test_shuffle_permutation;
      ] );
  ]
