(* Gadget discovery, the Survivor algorithm, population analysis, and the
   attack-feasibility checker. *)

let bytes_of_hex s =
  let b = Buffer.create 16 in
  String.split_on_char ' ' s
  |> List.iter (fun tok ->
         if tok <> "" then
           Buffer.add_char b (Char.chr (int_of_string ("0x" ^ tok))));
  Buffer.contents b

(* ---------------- finder ---------------- *)

let test_finder_simple_ret () =
  (* pop ecx ; ret *)
  let text = bytes_of_hex "59 C3" in
  let gadgets = Finder.scan text in
  Alcotest.(check bool) "found pop;ret" true
    (List.exists
       (fun (g : Finder.t) ->
         g.offset = 0 && g.insns = [ Insn.Pop_r Reg.ECX; Insn.Ret ])
       gadgets);
  (* The bare RET at offset 1 is also a gadget. *)
  Alcotest.(check bool) "found bare ret" true
    (List.exists (fun (g : Finder.t) -> g.offset = 1) gadgets)

let test_finder_figure2 () =
  (* Paper Figure 2: "89 11 01 C3" hides "adc [ecx], eax ; ret" at
     offset 1, inside "mov [ecx], edx ; add ebx, eax". *)
  let text = bytes_of_hex "89 11 01 C3" in
  let gadgets = Finder.scan text in
  Alcotest.(check bool) "hidden gadget at offset 1" true
    (List.exists
       (fun (g : Finder.t) ->
         g.offset = 1
         &&
         match g.insns with
         | [ Insn.Alu_rm_r (Insn.Adc, Insn.Mem _, Reg.EAX); Insn.Ret ] -> true
         | _ -> false)
       gadgets)

let test_finder_rejects_control_flow () =
  (* jmp +0 ; ret — the direct jump may not appear inside a gadget, so
     offset 0 is not a gadget start (offset 5, the ret, is). *)
  let text = Encode.program [ Insn.Jmp_rel 0l; Insn.Ret ] in
  let gadgets = Finder.scan text in
  Alcotest.(check bool) "no gadget across a jmp" true
    (not (List.exists (fun (g : Finder.t) -> g.offset = 0) gadgets))

let test_finder_free_branches () =
  List.iter
    (fun (hex, expect) ->
      let sites = Finder.free_branch_sites (bytes_of_hex hex) in
      Alcotest.(check bool)
        (Printf.sprintf "%s -> %b" hex expect)
        expect
        (List.exists (fun (o, _) -> o = 0) sites))
    [
      ("C3", true) (* ret *);
      ("C2 08 00", true) (* ret 8 *);
      ("FF D0", true) (* call *eax *);
      ("FF E2", true) (* jmp *edx *);
      ("E9 00 00 00 00", false) (* direct jmp *);
      ("E8 00 00 00 00", false) (* direct call *);
      ("90", false);
    ]

let test_finder_respects_depth () =
  (* Eight one-byte instructions then ret; with max_insns = 5 the start
     at offset 0 would need 9 instructions, so it is not a gadget. *)
  let text =
    Encode.program
      [
        Insn.Inc_r Reg.EAX; Insn.Inc_r Reg.EAX; Insn.Inc_r Reg.EAX;
        Insn.Inc_r Reg.EAX; Insn.Inc_r Reg.EAX; Insn.Inc_r Reg.EAX;
        Insn.Inc_r Reg.EAX; Insn.Inc_r Reg.EAX; Insn.Ret;
      ]
  in
  let gadgets = Finder.scan text in
  Alcotest.(check bool) "offset 0 too deep" true
    (not (List.exists (fun (g : Finder.t) -> g.offset = 0) gadgets));
  Alcotest.(check bool) "offset 4 within depth" true
    (List.exists (fun (g : Finder.t) -> g.offset = 4) gadgets)

(* ---------------- survivor ---------------- *)

let test_survivor_identical () =
  let text = Encode.program [ Insn.Pop_r Reg.EAX; Insn.Ret; Insn.Nop; Insn.Ret ] in
  let o = Survivor.compare_sections ~original:text ~diversified:text () in
  Alcotest.(check int) "all survive in identical sections"
    o.Survivor.baseline_gadgets o.Survivor.surviving

let test_survivor_nop_normalization () =
  (* Diversified version has a NOP inserted inside the gadget: the
     sequences differ byte-wise but normalize to the same gadget. *)
  let original = Encode.program [ Insn.Pop_r Reg.EAX; Insn.Ret ] in
  let diversified =
    Encode.program [ Insn.Pop_r Reg.EAX; Insn.Nop; Insn.Ret ]
  in
  let o = Survivor.compare_sections ~original ~diversified () in
  Alcotest.(check bool) "gadget at offset 0 survives normalization" true
    (List.mem 0 (Survivor.surviving_offsets ~original ~diversified ()))
    |> ignore;
  Alcotest.(check bool) "survives" true (o.Survivor.surviving >= 1)

let test_survivor_displacement_kills () =
  (* A NOP inserted before the gadget displaces it; at the original
     offset the diversified bytes now decode differently. *)
  let original =
    Encode.program [ Insn.Mov_r_imm (Reg.EBX, 7l); Insn.Pop_r Reg.EAX; Insn.Ret ]
  in
  let diversified =
    Encode.program
      [ Insn.Nop; Insn.Mov_r_imm (Reg.EBX, 7l); Insn.Pop_r Reg.EAX; Insn.Ret ]
  in
  let offsets = Survivor.surviving_offsets ~original ~diversified () in
  (* The pop;ret gadget started at offset 5 in the original; at offset 5
     of the diversified section sits the middle of mov's immediate. *)
  Alcotest.(check bool) "displaced gadget dead" true (not (List.mem 5 offsets))

let test_survivor_monotone_in_probability () =
  (* End to end: higher insertion probability kills at least roughly as
     many gadgets.  Uses a real compiled program. *)
  let c =
    Driver.compile ~name:"surv"
      {|
      global int t[64];
      int f(int x) { t[x & 63] = x; return t[(x * 7) & 63]; }
      int main(int n) {
        int acc = 0;
        for (int i = 0; i < n; i = i + 1) acc = acc + f(i + acc);
        return acc;
      }
      |}
  in
  let profile = Driver.train c ~args:[ 20l ] in
  let baseline = Driver.link_baseline c in
  let surv p =
    let image, _ =
      Driver.diversify c ~config:(Config.uniform p) ~profile ~version:0
    in
    (Survivor.compare_sections ~original:baseline.Link.text
       ~diversified:image.Link.text ())
      .Survivor.surviving
  in
  let s0 = surv 0.0 in
  let s50 = surv 0.5 in
  let baseline_count = Finder.count baseline.Link.text in
  Alcotest.(check int) "p=0 keeps everything" baseline_count s0;
  Alcotest.(check bool)
    (Printf.sprintf "p=50%% kills most user gadgets (%d -> %d)" s0 s50)
    true (s50 < s0)

(* ---------------- population ---------------- *)

let test_population_thresholds () =
  let a = Encode.program [ Insn.Pop_r Reg.EAX; Insn.Ret ] in
  let b = Encode.program [ Insn.Pop_r Reg.EAX; Insn.Ret ] in
  let c = Encode.program [ Insn.Pop_r Reg.ECX; Insn.Ret ] in
  let r = Population.analyze ~thresholds:[ 1; 2; 3 ] [ a; b; c ] in
  let get k = List.assoc k r.Population.at_least in
  Alcotest.(check int) "population" 3 r.Population.population;
  (* a and b share both gadgets (pop eax;ret at 0, ret at 1); c shares
     only the ret at offset 1. *)
  Alcotest.(check int) "in >=3: just the shared ret" 1 (get 3);
  Alcotest.(check int) "in >=2: shared ret + pop eax;ret" 2 (get 2);
  Alcotest.(check bool) "monotone" true (get 1 >= get 2 && get 2 >= get 3)

(* ---------------- attack ---------------- *)

let test_classify () =
  let open Insn in
  let check msg expected insns =
    Alcotest.(check bool) msg true
      (List.mem expected (Attack.classify insns))
  in
  check "pop is load-const" Attack.Load_const [ Pop_r Reg.EAX; Ret ];
  check "store is mem-write" Attack.Mem_write
    [ Mov_rm_r (Mem (mem_base Reg.EBX), Reg.EAX); Ret ];
  check "load is mem-read" Attack.Mem_read
    [ Mov_r_rm (Reg.EAX, Mem (mem_base Reg.EBX)); Ret ];
  check "add is arith" Attack.Arith [ Alu_rm_r (Add, Reg Reg.EAX, Reg.EBX); Ret ];
  check "int 0x80 is syscall" Attack.Syscall [ Int 0x80; Ret ];
  check "pop esp is pivot" Attack.Stack_pivot [ Pop_r Reg.ESP; Ret ];
  Alcotest.(check (list (Alcotest.testable Attack.pp_gadget_class ( = ))))
    "cmp classifies as nothing" []
    (Attack.classify [ Alu_rm_r (Cmp, Reg Reg.EAX, Reg.EBX); Ret ]);
  Alcotest.(check (list (Alcotest.testable Attack.pp_gadget_class ( = ))))
    "bare ret classifies as nothing" []
    (Attack.classify [ Ret ])

let test_attack_feasible_on_rich_section () =
  (* A section that deliberately provides every required class. *)
  let open Insn in
  let text =
    Encode.program
      [
        Pop_r Reg.EAX; Ret;
        Mov_rm_r (Mem (mem_base Reg.EBX), Reg.EAX); Ret;
        Alu_rm_r (Add, Reg Reg.EAX, Reg.EBX); Ret;
        Int 0x80; Ret;
      ]
  in
  let v = Attack.attack Attack.Ropgadget text in
  Alcotest.(check bool) "feasible" true v.Attack.feasible;
  Alcotest.(check int) "nothing missing" 0 (List.length v.Attack.missing)

let test_attack_infeasible_without_syscall () =
  let open Insn in
  let text =
    Encode.program
      [
        Pop_r Reg.EAX; Ret;
        Mov_rm_r (Mem (mem_base Reg.EBX), Reg.EAX); Ret;
        Alu_rm_r (Add, Reg Reg.EAX, Reg.EBX); Ret;
      ]
  in
  let v = Attack.attack Attack.Ropgadget text in
  Alcotest.(check bool) "infeasible" false v.Attack.feasible;
  Alcotest.(check bool) "missing syscall" true
    (List.mem Attack.Syscall v.Attack.missing)

let test_microgadgets_are_short () =
  let open Insn in
  let text =
    Encode.program
      [ Pop_r Reg.EAX; Ret; Mov_r_imm (Reg.EBX, 0x11223344l); Ret ]
  in
  let micro = Attack.scan Attack.Microgadgets text in
  List.iter
    (fun (g : Finder.t) ->
      Alcotest.(check bool) "short" true (String.length g.bytes <= 4))
    micro;
  Alcotest.(check bool) "found pop;ret" true
    (List.exists (fun (g : Finder.t) -> g.offset = 0) micro)

let suite =
  [
    ( "gadget.finder",
      [
        Alcotest.test_case "pop;ret" `Quick test_finder_simple_ret;
        Alcotest.test_case "figure 2 hidden gadget" `Quick test_finder_figure2;
        Alcotest.test_case "rejects control flow" `Quick
          test_finder_rejects_control_flow;
        Alcotest.test_case "free branch kinds" `Quick
          test_finder_free_branches;
        Alcotest.test_case "depth limit" `Quick test_finder_respects_depth;
      ] );
    ( "gadget.survivor",
      [
        Alcotest.test_case "identical sections" `Quick test_survivor_identical;
        Alcotest.test_case "NOP normalization" `Quick
          test_survivor_nop_normalization;
        Alcotest.test_case "displacement kills" `Quick
          test_survivor_displacement_kills;
        Alcotest.test_case "monotone in probability" `Quick
          test_survivor_monotone_in_probability;
      ] );
    ( "gadget.population",
      [ Alcotest.test_case "thresholds" `Quick test_population_thresholds ] );
    ( "gadget.attack",
      [
        Alcotest.test_case "classification" `Quick test_classify;
        Alcotest.test_case "feasible section" `Quick
          test_attack_feasible_on_rich_section;
        Alcotest.test_case "missing syscall" `Quick
          test_attack_infeasible_without_syscall;
        Alcotest.test_case "microgadgets short" `Quick
          test_microgadgets_are_short;
      ] );
  ]
