(* Differential testing of the machine backend: for each program, the CPU
   simulator running the linked binary must produce exactly the output and
   exit status of the reference IR interpreter. *)

let compile ?opt src = Driver.compile ?opt ~name:"test" src

let check_same ?(args = []) msg src =
  let c = compile src in
  let ir = Driver.run_ir c ~args in
  let image = Driver.link_baseline c in
  let native = Driver.run_image image ~args in
  Alcotest.(check string) (msg ^ ": output") ir.Interp.output native.Sim.output;
  Alcotest.(check int32) (msg ^ ": status") ir.Interp.ret native.Sim.status

let test_basic () =
  check_same "constant" "int main() { return 42; }";
  check_same "arith"
    "int main() { return (3 + 4) * 5 - 6 / 2 + (7 % 3) << 1; }";
  check_same "negative" "int main() { return -7; }";
  check_same "bitops" "int main() { return (12 & 10) | (5 ^ 3); }";
  check_same "shifts" "int main() { int x = -64; return (x >> 3) + (1 << 10); }";
  check_same "compare chain"
    "int main() { return (1 < 2) + (2 <= 2) + (3 > 2) + (2 >= 3) + (1 == 1) + (1 != 1); }"

let test_control () =
  check_same "if" "int main() { if (3 > 2) return 1; else return 2; }";
  check_same "loop sum"
    {|
    int main() {
      int sum = 0;
      for (int i = 0; i < 100; i = i + 1) sum = sum + i;
      return sum;
    }
    |};
  check_same "while with break/continue"
    {|
    int main() {
      int i = 0; int acc = 0;
      while (1) {
        i = i + 1;
        if (i > 20) break;
        if (i % 3 == 0) continue;
        acc = acc + i;
      }
      return acc;
    }
    |};
  check_same "short circuit"
    {|
    global int hits;
    int bump() { hits = hits + 1; return 1; }
    int main() {
      int a = 0 && bump();
      int b = 1 || bump();
      int c = 1 && bump();
      return hits * 10 + a + b + c;
    }
    |}

let test_functions () =
  check_same "fib"
    {|
    int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
    int main() { return fib(15); }
    |};
  check_same "many args"
    {|
    int f(int a, int b, int c, int d, int e) { return a - b + c - d + e; }
    int main() { return f(1, 2, 3, 4, 5); }
    |};
  check_same "mutual recursion"
    {|
    int odd(int n) { if (n == 0) return 0; return even(n - 1); }
    int even(int n) { if (n == 0) return 1; return odd(n - 1); }
    int main() { return even(9) * 10 + odd(9); }
    |}

let test_memory () =
  check_same "local array"
    {|
    int main() {
      int a[10];
      for (int i = 0; i < 10; i = i + 1) a[i] = i * i;
      int s = 0;
      for (int i = 0; i < 10; i = i + 1) s = s + a[i];
      return s;
    }
    |};
  check_same "global array and scalar"
    {|
    global int total;
    global int data[16] = {5, 3, 8, 1};
    int main() {
      data[4] = 10;
      for (int i = 0; i < 16; i = i + 1) total = total + data[i];
      return total;
    }
    |};
  check_same "array via helper"
    {|
    global int buf[32];
    int fill(int n, int v) {
      for (int i = 0; i < n; i = i + 1) buf[i] = v + i;
      return n;
    }
    int main() { fill(8, 100); return buf[0] + buf[7]; }
    |}

let test_output () =
  check_same "print_int values"
    {|
    int main() {
      print_int(0);
      print_int(1);
      print_int(-1);
      print_int(42);
      print_int(-2147483647 - 1);
      print_int(2147483647);
      return 0;
    }
    |};
  check_same "put_char"
    {|
    int main() {
      put_char('O'); put_char('K'); put_char('\n');
      return 0;
    }
    |};
  check_same "exit status" "int main() { exit(7); return 1; }"

let test_args () =
  check_same "args" ~args:[ 6l; 7l ] "int main(int a, int b) { return a * b; }";
  check_same "arg order" ~args:[ 1l; 2l; 3l ]
    "int main(int a, int b, int c) { return a * 100 + b * 10 + c; }"

let test_division_behaviour () =
  check_same "division values"
    {|
    int main() {
      print_int(10 / 3); print_int(-10 / 3); print_int(10 / -3);
      print_int(10 % 3); print_int(-10 % 3); print_int(10 % -3);
      return 0;
    }
    |}

let test_o0_matches_o2 () =
  let src =
    {|
    global int g[8];
    int helper(int x) { return x * 3 + g[x & 7]; }
    int main() {
      int acc = 0;
      for (int i = 0; i < 20; i = i + 1) { g[i & 7] = i; acc = acc + helper(i); }
      return acc;
    }
    |}
  in
  let r0 = Driver.run_ir (compile ~opt:Pipeline.O0 src) ~args:[] in
  let r2 = Driver.run_ir (compile ~opt:Pipeline.O2 src) ~args:[] in
  Alcotest.(check int32) "same result at O0 and O2" r0.Interp.ret r2.Interp.ret;
  let n0 = Driver.run_image (Driver.link_baseline (compile ~opt:Pipeline.O0 src)) ~args:[] in
  let n2 = Driver.run_image (Driver.link_baseline (compile ~opt:Pipeline.O2 src)) ~args:[] in
  Alcotest.(check int32) "same native result at O0 and O2" n0.Sim.status n2.Sim.status;
  Alcotest.(check int32) "IR and native agree" r2.Interp.ret n2.Sim.status

let test_spills () =
  (* More live values than allocatable registers: forces spilling. *)
  check_same "register pressure"
    {|
    int main() {
      int a = 1; int b = 2; int c = 3; int d = 4; int e = 5;
      int f = 6; int g = 7; int h = 8; int i = 9; int j = 10;
      int k = a + b; int l = c + d; int m = e + f; int n = g + h;
      int o = i + j;
      return a + b * 2 + c * 3 + d * 4 + e * 5 + f * 6 + g * 7 + h * 8
           + i * 9 + j * 10 + k + l + m + n + o;
    }
    |}

let test_native_faults () =
  let run src =
    let c = compile src in
    Driver.run_image (Driver.link_baseline c) ~args:[]
  in
  (match run "int main() { int z = 0; return 1 / z; }" with
  | exception Sim.Fault _ -> ()
  | _ -> Alcotest.fail "expected division fault");
  match run "int main() { int a[2]; a[-100000000] = 1; return 0; }" with
  | exception Sim.Fault _ -> ()
  | _ -> Alcotest.fail "expected out-of-bounds fault"

(* ------------------------------------------------------------------ *)
(* Random differential testing: generated straight-line arithmetic over a
   handful of variables, compared between interpreter and simulator. *)

let gen_program =
  let open QCheck.Gen in
  let var_names = [| "a"; "b"; "c"; "d" |] in
  let rec gen_expr depth =
    if depth = 0 then
      oneof
        [
          map (fun v -> string_of_int v) (int_range (-100) 100);
          map (fun i -> var_names.(i)) (int_bound 3);
        ]
    else
      let sub = gen_expr (depth - 1) in
      oneof
        [
          map (fun v -> string_of_int v) (int_range (-100) 100);
          map (fun i -> var_names.(i)) (int_bound 3);
          (let* op = oneofl [ "+"; "-"; "*"; "&"; "|"; "^" ] in
           let* l = sub in
           let* r = sub in
           return (Printf.sprintf "(%s %s %s)" l op r));
          (let* op = oneofl [ "<"; "<="; ">"; ">="; "=="; "!=" ] in
           let* l = sub in
           let* r = sub in
           return (Printf.sprintf "(%s %s %s)" l op r));
        ]
  in
  let* stmts =
    list_size (int_range 1 6)
      (let* v = map (fun i -> var_names.(i)) (int_bound 3) in
       let* e = gen_expr 3 in
       return (Printf.sprintf "%s = %s;" v e))
  in
  let* ret = gen_expr 3 in
  return
    (Printf.sprintf
       "int main() { int a = 1; int b = 2; int c = 3; int d = 4; %s return %s; }"
       (String.concat " " stmts) ret)

let prop_differential =
  QCheck.Test.make ~name:"simulator matches interpreter on random programs"
    ~count:150
    (QCheck.make ~print:Fun.id gen_program)
    (fun src ->
      let c = compile src in
      let ir = Driver.run_ir c ~args:[] in
      let native = Driver.run_image (Driver.link_baseline c) ~args:[] in
      Int32.equal ir.Interp.ret native.Sim.status)

let suite =
  [
    ( "backend.differential",
      [
        Alcotest.test_case "basic expressions" `Quick test_basic;
        Alcotest.test_case "control flow" `Quick test_control;
        Alcotest.test_case "functions" `Quick test_functions;
        Alcotest.test_case "memory" `Quick test_memory;
        Alcotest.test_case "output builtins" `Quick test_output;
        Alcotest.test_case "program arguments" `Quick test_args;
        Alcotest.test_case "signed division" `Quick test_division_behaviour;
        Alcotest.test_case "O0 vs O2" `Quick test_o0_matches_o2;
        Alcotest.test_case "register pressure" `Quick test_spills;
        Alcotest.test_case "native faults" `Quick test_native_faults;
      ] );
    ( "backend.random",
      [ QCheck_alcotest.to_alcotest prop_differential ] );
  ]
