(* Linker layout/relocation tests and simulator-level tests that drive
   hand-written machine code (flags, stack, syscalls, W^X). *)

let compile src = Driver.compile ~name:"ls-test" src

(* ---------------- linker ---------------- *)

let test_layout_runtime_first () =
  let c = compile "int main() { return 0; }" in
  let image = Driver.link_baseline c in
  let off name = Link.symbol_offset image name in
  Alcotest.(check int) "entry stub first" 0 (off Libc.start_symbol);
  List.iter
    (fun (name, o) ->
      if name <> "main" then
        Alcotest.(check bool)
          (name ^ " before user code")
          true
          (o < image.Link.user_start || name = "main"))
    image.Link.symbols;
  Alcotest.(check bool) "main in user region" true
    (off "main" >= image.Link.user_start)

let test_globals_layout () =
  let c =
    compile
      "global int a[4]; global int b; int main() { a[0] = 1; b = 2; return 0; }"
  in
  let image = Driver.link_baseline c in
  let addr n = List.assoc n image.Link.globals in
  (* __argv is first, then the program globals in declaration order. *)
  Alcotest.(check int32) "__argv at the base" Link.data_base
    (addr Libc.argv_symbol);
  Alcotest.(check int32) "a follows argv"
    (Int32.add Link.data_base (Int32.of_int (4 * Libc.argv_words)))
    (addr "a");
  Alcotest.(check int32) "b follows a" (Int32.add (addr "a") 16l) (addr "b")

let test_duplicate_symbol_rejected () =
  let c = compile "int wmemcpy(int a) { return a; } int main() { return 0; }" in
  match Driver.link_baseline c with
  | exception Failure m ->
      Alcotest.(check bool) "mentions duplicate" true
        (String.length m > 0)
  | _ -> Alcotest.fail "expected duplicate-symbol failure"

let test_missing_main_rejected () =
  match Link.link ~funcs:[] ~globals:[] ~main_arity:0 with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected missing-main failure"

let test_call_relocation () =
  (* Verify a cross-function call displacement byte-exactly: decode the
     call in main and check it lands on the callee. *)
  let c =
    compile "int callee() { return 7; } int main() { return callee(); }"
  in
  let image = Driver.link_baseline c in
  let main_off = Link.symbol_offset image "main" in
  let callee_off = Link.symbol_offset image "callee" in
  (* Find the first E8 call inside main and compute its target. *)
  let rec find pos =
    if pos >= String.length image.Link.text then None
    else
      match Decode.insn ~pos image.Link.text with
      | Some (Insn.Call_rel d, len) -> Some (pos + len + Int32.to_int d)
      | Some (_, len) -> find (pos + len)
      | None -> None
  in
  match find main_off with
  | Some target -> Alcotest.(check int) "call target" callee_off target
  | None -> Alcotest.fail "no call found in main"

let test_save_load_roundtrip () =
  let c = compile "int main(int x) { print_int(x); return x; }" in
  let image = Driver.link_baseline c in
  let path = Filename.temp_file "psd" ".bin" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Link.save image path;
      let loaded = Link.load path in
      Alcotest.(check string) "text preserved" image.Link.text loaded.Link.text;
      Alcotest.(check int) "entry preserved" image.Link.entry loaded.Link.entry;
      let r = Driver.run_image loaded ~args:[ 9l ] in
      Alcotest.(check string) "still runs" "9\n" r.Sim.output)

let test_load_bad_magic () =
  let path = Filename.temp_file "psd" ".bin" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "NOTANIMAGE";
      close_out oc;
      match Link.load path with
      | exception Failure _ -> ()
      | _ -> Alcotest.fail "expected bad-magic failure")

(* ---------------- simulator on hand-written code ---------------- *)

(* Run a raw instruction sequence as "main". *)
let run_raw insns ~args =
  let f =
    { Asm.name = "main"; items = Asm.Label 0 :: List.map (fun i -> Asm.Ins i) insns }
  in
  let image = Link.link ~funcs:[ f ] ~globals:[] ~main_arity:(List.length args) in
  Sim.run image ~args

let esp_mem d = Insn.Mem (Insn.mem_base ~disp:d Reg.ESP)

let test_unsigned_conditions () =
  (* -1 compared to 1: signed less, unsigned greater. *)
  let open Insn in
  let r =
    run_raw ~args:[]
      [
        Mov_r_imm (Reg.EAX, -1l);
        Alu_rm_imm (Cmp, Reg Reg.EAX, 1l);
        Setcc (Cond.L, Reg.AL);
        Movzx_r_r8 (Reg.EBX, Reg.AL);
        Mov_r_imm (Reg.EAX, -1l);
        Alu_rm_imm (Cmp, Reg Reg.EAX, 1l);
        Setcc (Cond.A, Reg.CL);
        Movzx_r_r8 (Reg.ECX, Reg.CL);
        (* result = signed*10 + unsigned *)
        Imul_r_rm (Reg.EBX, Reg Reg.EBX);
        Mov_rm_r (Reg Reg.EAX, Reg.EBX);
        Shift_imm (Shl, Reg Reg.EAX, 1);
        Shift_imm (Shl, Reg Reg.EBX, 3);
        Alu_rm_r (Add, Reg Reg.EAX, Reg.EBX);
        Alu_rm_r (Add, Reg Reg.EAX, Reg.ECX);
        Ret;
      ]
  in
  (* signed-less = 1, unsigned-above = 1: 1*10 + 1 = 11. *)
  Alcotest.(check int32) "L and A" 11l r.Sim.status

let test_overflow_flag () =
  let open Insn in
  (* INT_MAX + 1 overflows: OF set, so JO taken. *)
  let f =
    {
      Asm.name = "main";
      items =
        [
          Asm.Label 0;
          Asm.Ins (Mov_r_imm (Reg.EAX, Int32.max_int));
          Asm.Ins (Alu_rm_imm (Add, Reg Reg.EAX, 1l));
          Asm.Jcc_sym (Cond.O, 1);
          Asm.Ins (Mov_r_imm (Reg.EAX, 0l));
          Asm.Ins Ret;
          Asm.Label 1;
          Asm.Ins (Mov_r_imm (Reg.EAX, 1l));
          Asm.Ins Ret;
        ];
    }
  in
  let image = Link.link ~funcs:[ f ] ~globals:[] ~main_arity:0 in
  let r = Sim.run image ~args:[] in
  Alcotest.(check int32) "overflow detected" 1l r.Sim.status

let test_push_pop_stack () =
  let open Insn in
  let r =
    run_raw ~args:[]
      [
        Push_imm 11l;
        Push_imm 22l;
        Pop_r Reg.EAX;
        Pop_r Reg.EBX;
        (* eax=22, ebx=11: return eax - ebx *)
        Alu_rm_r (Sub, Reg Reg.EAX, Reg.EBX);
        Ret;
      ]
  in
  Alcotest.(check int32) "lifo order" 11l r.Sim.status

let test_arg_access () =
  let open Insn in
  let r =
    run_raw ~args:[ 5l; 7l ]
      [ Mov_r_rm (Reg.EAX, esp_mem 8l); Ret ]
  in
  (* [esp+4] = arg0, [esp+8] = arg1 on entry to main. *)
  Alcotest.(check int32) "second argument" 7l r.Sim.status

let test_wx_fetch_from_data_faults () =
  let open Insn in
  match
    run_raw ~args:[]
      [ Mov_r_imm (Reg.EAX, Link.data_base); Jmp_rm (Reg Reg.EAX) ]
  with
  | exception Sim.Fault _ -> ()
  | _ -> Alcotest.fail "jumping into data must fault (W^X)"

let test_store_to_text_faults () =
  let open Insn in
  match
    run_raw ~args:[]
      [
        Mov_r_imm (Reg.EAX, Link.text_base);
        Mov_rm_imm (Mem (Insn.mem_base Reg.EAX), 0l);
        Ret;
      ]
  with
  | exception Sim.Fault _ -> ()
  | _ -> Alcotest.fail "writing text addresses must fault (W^X)"

let test_unknown_syscall_faults () =
  let open Insn in
  match
    run_raw ~args:[] [ Mov_r_imm (Reg.EAX, 77l); Int 0x80; Ret ]
  with
  | exception Sim.Fault _ -> ()
  | _ -> Alcotest.fail "unknown syscall must fault"

let test_run_at_stack_image () =
  (* run_at with an attacker stack: begin at a ret and let it pop the
     address of the exit stub's syscall tail. *)
  let c = compile "int main() { return 5; }" in
  let image = Driver.link_baseline c in
  (* a bare RET somewhere: use the one at the end of put_char. *)
  let ret_off =
    let rec find pos =
      match Decode.insn ~pos image.Link.text with
      | Some (Insn.Ret, _) -> pos
      | Some (_, len) -> find (pos + len)
      | None -> find (pos + 1)
    in
    find 0
  in
  let exit_off = Link.symbol_offset image "exit" in
  (* Skip exit's first insn so EBX (our payload) becomes the status. *)
  let skip =
    match Decode.insn ~pos:exit_off image.Link.text with
    | Some (_, len) -> len
    | None -> 0
  in
  let r =
    Sim.run_at image ~start_offset:ret_off
      ~stack_image:
        [ Int32.add image.Link.text_base (Int32.of_int (exit_off + skip)) ]
      ~fuel:10_000L
  in
  (* EBX was 0 at start; exit(EBX). *)
  Alcotest.(check int32) "ret-to-exit chain ran" 0l r.Sim.status

let test_icache_counts_misses () =
  let c =
    compile
      {|
      int main(int n) {
        int s = 0;
        for (int i = 0; i < n; i = i + 1) s = s + i;
        return s & 127;
      }
      |}
  in
  let image = Driver.link_baseline c in
  let r1 = Driver.run_image image ~args:[ 10l ] in
  let r2 = Driver.run_image image ~args:[ 10000l ] in
  Alcotest.(check bool) "some compulsory misses" true
    (r1.Sim.icache_misses > 0L);
  (* The loop fits in the cache: longer runs add almost no misses. *)
  Alcotest.(check bool) "hot loop hits" true
    (Int64.sub r2.Sim.icache_misses r1.Sim.icache_misses < 16L)

let suite =
  [
    ( "link.layout",
      [
        Alcotest.test_case "runtime first" `Quick test_layout_runtime_first;
        Alcotest.test_case "globals layout" `Quick test_globals_layout;
        Alcotest.test_case "duplicate symbol" `Quick
          test_duplicate_symbol_rejected;
        Alcotest.test_case "missing main" `Quick test_missing_main_rejected;
        Alcotest.test_case "call relocation" `Quick test_call_relocation;
        Alcotest.test_case "save/load roundtrip" `Quick
          test_save_load_roundtrip;
        Alcotest.test_case "bad magic" `Quick test_load_bad_magic;
      ] );
    ( "sim.machine-state",
      [
        Alcotest.test_case "unsigned conditions" `Quick
          test_unsigned_conditions;
        Alcotest.test_case "overflow flag" `Quick test_overflow_flag;
        Alcotest.test_case "push/pop" `Quick test_push_pop_stack;
        Alcotest.test_case "argument access" `Quick test_arg_access;
        Alcotest.test_case "W^X fetch" `Quick test_wx_fetch_from_data_faults;
        Alcotest.test_case "W^X store" `Quick test_store_to_text_faults;
        Alcotest.test_case "unknown syscall" `Quick
          test_unknown_syscall_faults;
        Alcotest.test_case "run_at stack image" `Quick
          test_run_at_stack_image;
        Alcotest.test_case "icache" `Quick test_icache_counts_misses;
      ] );
  ]
