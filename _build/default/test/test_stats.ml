
let feq = Alcotest.float 1e-9

let test_mean () =
  Alcotest.check feq "mean" 2.0 (Stats.mean [ 1.0; 2.0; 3.0 ]);
  Alcotest.(check bool) "empty is nan" true (Float.is_nan (Stats.mean []))

let test_geomean () =
  Alcotest.check feq "geomean" 2.0 (Stats.geomean [ 1.0; 2.0; 4.0 ]);
  Alcotest.check feq "singleton" 5.0 (Stats.geomean [ 5.0 ]);
  Alcotest.check_raises "non-positive raises"
    (Invalid_argument "Stats.geomean: non-positive value") (fun () ->
      ignore (Stats.geomean [ 1.0; 0.0 ]))

let test_median () =
  Alcotest.check feq "odd" 2.0 (Stats.median [ 3.0; 1.0; 2.0 ]);
  Alcotest.check feq "even" 2.5 (Stats.median [ 4.0; 1.0; 2.0; 3.0 ]);
  Alcotest.(check bool) "empty is nan" true (Float.is_nan (Stats.median []))

let test_percentile () =
  let xs = [ 1.0; 2.0; 3.0; 4.0; 5.0 ] in
  Alcotest.check feq "p0" 1.0 (Stats.percentile 0.0 xs);
  Alcotest.check feq "p50" 3.0 (Stats.percentile 50.0 xs);
  Alcotest.check feq "p100" 5.0 (Stats.percentile 100.0 xs);
  Alcotest.check feq "p25 interpolates" 2.0 (Stats.percentile 25.0 xs);
  Alcotest.check feq "singleton" 7.0 (Stats.percentile 90.0 [ 7.0 ])

let test_stddev () =
  Alcotest.check feq "known value" 2.0
    (Stats.stddev [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ] *. sqrt (7.0 /. 8.0));
  Alcotest.check feq "short list" 0.0 (Stats.stddev [ 42.0 ])

let test_min_max () =
  let lo, hi = Stats.min_max [ 3.0; -1.0; 7.0 ] in
  Alcotest.check feq "min" (-1.0) lo;
  Alcotest.check feq "max" 7.0 hi

let test_histogram () =
  let h = Stats.histogram ~bins:2 [ 0.0; 1.0; 2.0; 3.0 ] in
  Alcotest.(check int) "two bins" 2 (Array.length h);
  let _, _, c0 = h.(0) and _, _, c1 = h.(1) in
  Alcotest.(check int) "total preserved" 4 (c0 + c1);
  Alcotest.(check int) "low bin" 2 c0

let test_histogram_constant () =
  (* All-equal input must not divide by zero. *)
  let h = Stats.histogram ~bins:3 [ 5.0; 5.0; 5.0 ] in
  let total = Array.fold_left (fun acc (_, _, c) -> acc + c) 0 h in
  Alcotest.(check int) "total preserved" 3 total

let suite =
  [
    ( "stats",
      [
        Alcotest.test_case "mean" `Quick test_mean;
        Alcotest.test_case "geomean" `Quick test_geomean;
        Alcotest.test_case "median" `Quick test_median;
        Alcotest.test_case "percentile" `Quick test_percentile;
        Alcotest.test_case "stddev" `Quick test_stddev;
        Alcotest.test_case "min_max" `Quick test_min_max;
        Alcotest.test_case "histogram" `Quick test_histogram;
        Alcotest.test_case "histogram constant" `Quick test_histogram_constant;
      ] );
  ]
