test/main.ml: Alcotest List Test_backend Test_core Test_front Test_gadget Test_link_sim Test_machine Test_opt Test_profile Test_rng Test_stats Test_workloads Test_x86
