test/test_link_sim.ml: Alcotest Asm Cond Decode Driver Filename Fun Insn Int32 Int64 Libc Link List Reg Sim String Sys
