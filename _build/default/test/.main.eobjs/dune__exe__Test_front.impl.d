test/test_front.ml: Alcotest Hashtbl Int32 Int64 Interp Minic Option Printf String
