test/test_machine.ml: Alcotest Asm Char Cond Emit Insn Ir Isel List Liveness Minic Mir Pipeline Printf Reg Regalloc String
