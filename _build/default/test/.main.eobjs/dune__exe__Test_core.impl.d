test/test_core.ml: Alcotest Asm Config Driver Finder Float Heuristic Insn Int64 Link List Nop_insert Printf QCheck QCheck_alcotest Rng Sim String Survivor
