test/test_backend.ml: Alcotest Array Driver Fun Int32 Interp Pipeline Printf QCheck QCheck_alcotest Sim String
