test/test_profile.ml: Alcotest Driver Hashtbl Int64 Interp Ir List Option Profile Spanning
