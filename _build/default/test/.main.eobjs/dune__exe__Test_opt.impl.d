test/test_opt.ml: Alcotest Builder Constfold Copyprop Cse Dce Ir List Minic Pipeline Simplify_cfg String Verify
