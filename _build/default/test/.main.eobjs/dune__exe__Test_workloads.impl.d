test/test_workloads.ml: Alcotest Config Driver Interp List Phpvm Profile Sim String Workload Workloads
