test/main.mli:
