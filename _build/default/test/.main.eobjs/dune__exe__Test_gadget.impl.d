test/test_gadget.ml: Alcotest Attack Buffer Char Config Driver Encode Finder Insn Link List Population Printf Reg String Survivor
