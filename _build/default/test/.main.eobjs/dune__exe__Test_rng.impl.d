test/test_rng.ml: Alcotest Array Fun Rng
