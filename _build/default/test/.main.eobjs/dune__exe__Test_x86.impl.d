test/test_x86.ml: Alcotest Array Buffer Char Cond Decode Encode Gen Insn Int32 List Nops Printf QCheck QCheck_alcotest Reg String
