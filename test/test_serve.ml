(* The variant-serving stack: wire-protocol error taxonomy (bad magic,
   version skew, truncation, corruption, oversized claims — each with
   its precise message), the incremental reader under adversarial
   chunking, and the daemon end to end over a real socket: overload
   shedding on a bounded queue, queue-timeout shedding, error-path
   containment (a poisoned frame doesn't take the connection, an
   oversized claim does), and the property the whole subsystem rests
   on — concurrent clients at any worker count get digests
   byte-identical to a serial in-process build. *)

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let check_fails ~matching what f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Failure" what
  | exception Failure msg ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: %S mentions %S" what msg matching)
        true
        (contains ~needle:matching msg)

(* ---- protocol framing ---- *)

let strip_prefix wire = String.sub wire 4 (String.length wire - 4)

let sample_request =
  Sproto.Build
    {
      Sproto.id = 7;
      workload = "429.mcf";
      config = "p0-30";
      versions = (3, 12);
      want_images = false;
    }

let test_roundtrip () =
  let framed = strip_prefix (Sproto.encode_request sample_request) in
  Alcotest.(check bool)
    "request round-trips" true
    (Sproto.request_of_frame ~src:"test" framed = sample_request);
  let resp = Sproto.Shed { id = 9; reason = "queue full" } in
  let framed = strip_prefix (Sproto.encode_response resp) in
  Alcotest.(check bool)
    "response round-trips" true
    (Sproto.response_of_frame ~src:"test" framed = resp)

let test_error_taxonomy () =
  let good = strip_prefix (Sproto.encode_request sample_request) in
  check_fails ~matching:"magic" "bad magic" (fun () ->
      Sproto.request_of_frame ~src:"peer"
        ("XXXXXX" ^ String.sub good 6 (String.length good - 6)));
  check_fails ~matching:"truncated" "truncated" (fun () ->
      Sproto.request_of_frame ~src:"peer" (String.sub good 0 8));
  (let skewed = Bytes.of_string good in
   (* the u32 version field sits right after the 6-byte magic *)
   Bytes.set skewed 6 '\xEE';
   check_fails ~matching:"version" "version skew" (fun () ->
       Sproto.request_of_frame ~src:"peer" (Bytes.to_string skewed)));
  (let corrupt = Bytes.of_string good in
   let mid = 10 + ((Bytes.length corrupt - 10) / 2) in
   Bytes.set corrupt mid
     (Char.chr (Char.code (Bytes.get corrupt mid) lxor 0xFF));
   check_fails ~matching:"corrupt" "corrupt payload" (fun () ->
       Sproto.request_of_frame ~src:"peer" (Bytes.to_string corrupt)));
  (* The src shows up in the message, naming the peer. *)
  (match Sproto.request_of_frame ~src:"client-42" (String.sub good 0 8) with
  | _ -> Alcotest.fail "expected Failure"
  | exception Failure msg ->
      Alcotest.(check bool) "names the peer" true (contains ~needle:"client-42" msg))

let test_reader_chunked () =
  (* Two messages, delivered one byte at a time, come out intact and in
     order — the daemon's select loop never sees aligned frames. *)
  let wire =
    Sproto.encode_request sample_request
    ^ Sproto.encode_request (Sproto.Stats { id = 2 })
  in
  let r = Sproto.reader ~src:"chunked" () in
  let got = ref [] in
  String.iter
    (fun c ->
      Sproto.feed r (Bytes.make 1 c) 1;
      match Sproto.next_frame r with
      | Some framed -> got := Sproto.request_of_frame ~src:"chunked" framed :: !got
      | None -> ())
    wire;
  Alcotest.(check bool)
    "both frames decoded" true
    (List.rev !got = [ sample_request; Sproto.Stats { id = 2 } ])

let test_reader_oversized () =
  (* A length claim over the cap is rejected from the prefix alone —
     nothing gets buffered. *)
  let r = Sproto.reader ~max_frame:1024 ~src:"hostile" () in
  let claim = Bytes.create 4 in
  Bytes.set_int32_le claim 0 0x10_0000l (* 1 MiB > 1 KiB cap *);
  Sproto.feed r claim 4;
  check_fails ~matching:"oversized" "oversized claim" (fun () ->
      Sproto.next_frame r)

(* ---- the daemon over a real socket ---- *)

let socket_path tag =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "psd-test-%s-%d.sock" tag (Unix.getpid ()))

(* Fork a daemon configured by [cfg_of]; returns (addr, pid).  The
   child serves until Shutdown (or the kill in [stop]). *)
let start_daemon ~tag cfg_of =
  let path = socket_path tag in
  let addr = Sdaemon.Unix_sock path in
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
      let code =
        try
          Sdaemon.run (cfg_of (Sdaemon.default_cfg addr));
          0
        with _ -> 1
      in
      Unix._exit code
  | pid -> (addr, pid)

let stop_daemon pid =
  (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
  ignore (Unix.waitpid [] pid)

let with_daemon ~tag cfg_of f =
  let addr, pid = start_daemon ~tag cfg_of in
  Fun.protect ~finally:(fun () -> stop_daemon pid) (fun () -> f addr)

let build ~id ?(versions = (0, 1)) () =
  {
    Sproto.id;
    workload = "429.mcf";
    config = "p0-30";
    versions;
    want_images = false;
  }

let read_response ~src fd =
  match Sproto.read_frame ~src fd with
  | Some framed -> Sproto.response_of_frame ~src framed
  | None -> Alcotest.failf "%s: connection closed before reply" src

let test_queue_overflow_shed () =
  (* queue_cap 1: three Builds pipelined in one write mean the first is
     admitted and the other two arrive against a full queue — they must
     be shed with their ids echoed, and the first must still build. *)
  with_daemon ~tag:"shed"
    (fun cfg -> { cfg with Sdaemon.queue_cap = 1; batch = 1 })
    (fun addr ->
      let fd = Sclient.connect addr in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          Sproto.write_all fd
            (String.concat ""
               (List.map
                  (fun id -> Sproto.encode_request (Sproto.Build (build ~id ())))
                  [ 1; 2; 3 ]));
          let replies =
            List.init 3 (fun _ -> read_response ~src:"shed-test" fd)
          in
          let shed_ids =
            List.filter_map
              (function Sproto.Shed { id; reason } ->
                  Alcotest.(check bool) "reason says queue full" true
                    (contains ~needle:"queue full" reason);
                  Some id
                | _ -> None)
              replies
          and built_ids =
            List.filter_map
              (function Sproto.Built { id; variants; _ } ->
                  Alcotest.(check int) "built both versions" 2
                    (List.length variants);
                  Some id
                | _ -> None)
              replies
          in
          Alcotest.(check (list int)) "requests 2 and 3 shed" [ 2; 3 ]
            (List.sort compare shed_ids);
          Alcotest.(check (list int)) "request 1 built" [ 1 ] built_ids))

let test_queue_timeout_shed () =
  (* batch 1 and a 5 ms queue timeout: a wide request monopolizes the
     first batch for far longer than 5 ms (it compiles and trains the
     workload first), so the request queued behind it goes stale and
     must be shed as timed out. *)
  with_daemon ~tag:"timeout"
    (fun cfg -> { cfg with Sdaemon.batch = 1; timeout_s = 0.005 })
    (fun addr ->
      let fd = Sclient.connect addr in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          Sproto.write_all fd
            (Sproto.encode_request
               (Sproto.Build (build ~id:1 ~versions:(0, 199) ()))
            ^ Sproto.encode_request (Sproto.Build (build ~id:2 ())));
          let r1 = read_response ~src:"timeout-test" fd in
          let r2 = read_response ~src:"timeout-test" fd in
          (match r1 with
          | Sproto.Built { id = 1; variants; _ } ->
              Alcotest.(check int) "wide request built" 200
                (List.length variants)
          | r -> Alcotest.failf "reply 1: unexpected %d" (Sproto.response_id r));
          match r2 with
          | Sproto.Shed { id = 2; reason } ->
              Alcotest.(check bool) "reason says timed out" true
                (contains ~needle:"timed out" reason)
          | r -> Alcotest.failf "reply 2: unexpected %d" (Sproto.response_id r)))

let test_error_paths_on_socket () =
  with_daemon ~tag:"errors" Fun.id (fun addr ->
      (* A corrupt frame (valid length prefix) answers Error_reply and
         leaves the connection usable: the next, valid request on the
         same connection still builds. *)
      let fd = Sclient.connect addr in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          let wire = Sproto.encode_request (Sproto.Build (build ~id:4 ())) in
          let poisoned = Bytes.of_string wire in
          let last = Bytes.length poisoned - 1 in
          Bytes.set poisoned last
            (Char.chr (Char.code (Bytes.get poisoned last) lxor 0xFF));
          Sproto.write_all fd (Bytes.to_string poisoned);
          (match read_response ~src:"errors-test" fd with
          | Sproto.Error_reply { message; _ } ->
              Alcotest.(check bool) "corrupt named" true
                (contains ~needle:"corrupt" message)
          | r -> Alcotest.failf "unexpected reply %d" (Sproto.response_id r));
          Sproto.write_all fd wire;
          match read_response ~src:"errors-test" fd with
          | Sproto.Built { id = 4; _ } -> ()
          | r -> Alcotest.failf "unexpected reply %d" (Sproto.response_id r));
      (* A bad workload or config or version range answers Error_reply
         naming the problem. *)
      let fd = Sclient.connect addr in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          (match
             Sclient.rpc fd
               (Sproto.Build
                  { (build ~id:5 ()) with Sproto.workload = "999.nonesuch" })
           with
          | Sproto.Error_reply { id = 5; message } ->
              Alcotest.(check bool) "names the workload" true
                (contains ~needle:"999.nonesuch" message)
          | r -> Alcotest.failf "unexpected reply %d" (Sproto.response_id r));
          (match
             Sclient.rpc fd
               (Sproto.Build
                  { (build ~id:6 ()) with Sproto.config = "bogus-config" })
           with
          | Sproto.Error_reply { id = 6; _ } -> ()
          | r -> Alcotest.failf "unexpected reply %d" (Sproto.response_id r));
          match
            Sclient.rpc fd
              (Sproto.Build { (build ~id:7 ()) with Sproto.versions = (5, 1) })
          with
          | Sproto.Error_reply { id = 7; message } ->
              Alcotest.(check bool) "names the range" true
                (contains ~needle:"version range" message)
          | r -> Alcotest.failf "unexpected reply %d" (Sproto.response_id r));
      (* An oversized length claim poisons the stream: Error_reply, then
         the daemon closes the connection. *)
      let fd = Sclient.connect addr in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          let claim = Bytes.create 4 in
          Bytes.set_int32_le claim 0 0x7000_0000l;
          Sproto.write_all fd (Bytes.to_string claim);
          (match read_response ~src:"oversize-test" fd with
          | Sproto.Error_reply { message; _ } ->
              Alcotest.(check bool) "oversized named" true
                (contains ~needle:"oversized" message)
          | r -> Alcotest.failf "unexpected reply %d" (Sproto.response_id r));
          match Sproto.read_frame ~src:"oversize-test" fd with
          | None -> () (* clean EOF: the daemon closed us *)
          | Some _ -> Alcotest.fail "expected the daemon to close the stream"))

let test_concurrent_digest_identity () =
  (* Two client processes hammer one -j 2 daemon with overlapping
     version windows; every digest either returns must equal the serial
     in-process oracle's.  Children report through their exit status. *)
  with_daemon ~tag:"concurrent"
    (fun cfg -> { cfg with Sdaemon.jobs = Pool.Jobs 2 })
    (fun addr ->
      let reqs offset =
        List.init 3 (fun i ->
            build ~id:(offset + i) ~versions:(i * 2, (i * 2) + 4) ())
      in
      let spawn offset =
        flush stdout;
        flush stderr;
        match Unix.fork () with
        | 0 ->
            let code =
              try
                let fd = Sclient.connect addr in
                let r = Sclient.replay ~verify:true fd (reqs offset) in
                Unix.close fd;
                if
                  r.Sclient.digest_mismatches = 0
                  && r.Sclient.built = 3
                  && r.Sclient.errors = 0
                then 0
                else 1
              with _ -> 1
            in
            Unix._exit code
        | pid -> pid
      in
      let pids = [ spawn 100; spawn 200 ] in
      List.iter
        (fun pid ->
          match Unix.waitpid [] pid with
          | _, Unix.WEXITED 0 -> ()
          | _ -> Alcotest.fail "client process saw a mismatch or error")
        pids)

let suite =
  [
    ( "serve.proto",
      [
        Alcotest.test_case "roundtrip" `Quick test_roundtrip;
        Alcotest.test_case "error taxonomy" `Quick test_error_taxonomy;
        Alcotest.test_case "chunked reader" `Quick test_reader_chunked;
        Alcotest.test_case "oversized claim" `Quick test_reader_oversized;
      ] );
    ( "serve.daemon",
      [
        Alcotest.test_case "queue overflow sheds" `Quick
          test_queue_overflow_shed;
        Alcotest.test_case "queue timeout sheds" `Quick
          test_queue_timeout_shed;
        Alcotest.test_case "error paths" `Quick test_error_paths_on_socket;
        Alcotest.test_case "concurrent digest identity" `Quick
          test_concurrent_digest_identity;
      ] );
  ]
