(* Observability-layer tests: the monotonic clock, the tracer, the
   metrics registry, and — the load-bearing property — that runtime
   profiles are a lossless decomposition of the simulator's whole-run
   counters (per-function sums equal Sim.result totals, per-block sums
   equal per-function totals) across workloads and configurations.  All
   JSON sinks are round-tripped through the independent Minijson
   parser. *)

let parses name s =
  match Minijson.parse s with
  | v -> v
  | exception Minijson.Bad msg ->
      Alcotest.failf "%s: ill-formed JSON (%s): %s" name msg
        (String.sub s 0 (min 200 (String.length s)))

(* ------------------------------------------------------------------ *)
(* Clock. *)

let test_clock_monotonic () =
  let prev = ref (Clock.now_s ()) in
  for _ = 1 to 10_000 do
    let t = Clock.now_s () in
    if t < !prev then Alcotest.failf "clock went backwards: %f < %f" t !prev;
    prev := t
  done;
  Alcotest.(check bool) "elapsed non-negative" true (Clock.elapsed_s 0.0 >= 0.0)

(* ------------------------------------------------------------------ *)
(* Trace. *)

let test_trace_disabled_is_noop () =
  Trace.reset ();
  let s = Trace.begin_span "dead" in
  Trace.end_span s;
  Trace.instant "dead too";
  Trace.with_span "dead three" (fun () -> ());
  Alcotest.(check int) "no events collected" 0 (Trace.event_count ())

let test_trace_export () =
  Trace.reset ();
  Trace.start ();
  Trace.with_span "outer" ~args:[ ("k", "v\"quoted\"") ] (fun () ->
      Trace.with_span "inner" (fun () -> ignore (Sys.opaque_identity 42));
      Trace.instant "marker" ~args:[ ("n", "1") ]);
  (* An exception must still close the span. *)
  (try Trace.with_span "raises" (fun () -> failwith "boom")
   with Failure _ -> ());
  Trace.stop ();
  Alcotest.(check int) "four events" 4 (Trace.event_count ());
  let json = parses "trace" (Trace.export_json ()) in
  let events = Minijson.(to_list (member "traceEvents" json)) in
  Alcotest.(check int) "traceEvents length" 4 (List.length events);
  let names = List.map Minijson.(fun e -> to_str (member "name" e)) events in
  List.iter
    (fun expected ->
      Alcotest.(check bool) ("event " ^ expected) true
        (List.mem expected names))
    [ "outer"; "inner"; "marker"; "raises" ];
  (* Spans close in LIFO order, so "inner" precedes "outer" in the
     chronological-by-end event list; check both timestamps are sane. *)
  List.iter
    (fun e ->
      let ts = Minijson.(to_num (member "ts" e)) in
      Alcotest.(check bool) "ts >= 0" true (ts >= 0.0))
    events;
  Trace.reset ()

(* ------------------------------------------------------------------ *)
(* Metrics. *)

let test_metrics_counters () =
  Metrics.reset ();
  let c = Metrics.counter "test.counter" in
  Metrics.incr c;
  Metrics.incr ~by:41L c;
  Alcotest.(check int64) "counter accumulates" 42L (Metrics.counter_value c);
  Alcotest.(check bool) "find-or-create returns same counter" true
    (Metrics.counter_value (Metrics.counter "test.counter") = 42L);
  let h = Metrics.histogram "test.hist" in
  List.iter (fun v -> Metrics.observe h (float_of_int v)) [ 5; 1; 3; 2; 4 ];
  Alcotest.(check int) "histogram count" 5 (Metrics.histogram_count h);
  let json = parses "metrics" (Metrics.dump_json ()) in
  let counter_v =
    Minijson.(to_num (member "test.counter" (member "counters" json)))
  in
  Alcotest.(check (float 0.0)) "counter in dump" 42.0 counter_v;
  let hist = Minijson.(member "test.hist" (member "histograms" json)) in
  Alcotest.(check (float 0.0)) "hist sum" 15.0
    Minijson.(to_num (member "sum" hist));
  Alcotest.(check (float 0.0)) "hist min" 1.0
    Minijson.(to_num (member "min" hist));
  Alcotest.(check (float 0.0)) "hist max" 5.0
    Minijson.(to_num (member "max" hist));
  Alcotest.(check (float 0.0)) "hist p50" 3.0
    Minijson.(to_num (member "p50" hist));
  Metrics.reset ();
  Alcotest.(check int64) "reset zeroes" 0L (Metrics.counter_value c);
  Alcotest.(check int) "reset empties" 0 (Metrics.histogram_count h)

let test_driver_cache_metrics () =
  Metrics.reset ();
  Driver.clear_caches ();
  let src = "int main(int x) { return x + 1; }" in
  let _ = Driver.compile_cached ~name:"cache-metric-test" src in
  let _ = Driver.compile_cached ~name:"cache-metric-test" src in
  let _ = Driver.compile_cached ~name:"cache-metric-test" src in
  Alcotest.(check int64) "one miss" 1L
    (Metrics.counter_value (Metrics.counter "driver.compile_cache.miss"));
  Alcotest.(check int64) "two hits" 2L
    (Metrics.counter_value (Metrics.counter "driver.compile_cache.hit"))

(* ------------------------------------------------------------------ *)
(* JSON sinks round-trip through the independent parser. *)

let test_cctx_json_well_formed () =
  let c =
    Driver.compile ~name:"json \"test\"\nprogram"
      "int main(int x) { int i; int s; s = 0; for (i = 0; i < x; i = i + 1) \
       { s = s + i; } return s; }"
  in
  let json = parses "Cctx.to_json" (Cctx.to_json c.Driver.cctx) in
  let summary = Minijson.(to_list (member "summary" json)) in
  Alcotest.(check bool) "has summary rows" true (List.length summary > 0);
  let runs = Minijson.(to_list (member "runs" json)) in
  Alcotest.(check bool) "has run rows" true (List.length runs > 0)

(* ------------------------------------------------------------------ *)
(* Runtime profiles: lossless decomposition of the run counters. *)

let check_profile_sums ~what image (r : Sim.result) =
  let prof = Simprof.of_result image r in
  Alcotest.(check int64)
    (what ^ ": function insns sum to instructions")
    r.Sim.instructions prof.Simprof.total_insns;
  Alcotest.(check int64)
    (what ^ ": function nops sum to nops_retired")
    r.Sim.nops_retired prof.Simprof.total_nops;
  let rel_close a b =
    Float.abs (a -. b) <= 1e-6 *. Float.max 1.0 (Float.max (Float.abs a) (Float.abs b))
  in
  Alcotest.(check bool)
    (what ^ ": function cycles sum to cycles")
    true
    (rel_close r.Sim.cycles prof.Simprof.total_cycles);
  (* Per-block rows decompose each function row exactly. *)
  List.iter
    (fun (row : Simprof.func_row) ->
      let bi =
        List.fold_left
          (fun acc (b : Simprof.block_row) -> Int64.add acc b.Simprof.b_insns)
          0L row.Simprof.blocks
      in
      let bn =
        List.fold_left
          (fun acc (b : Simprof.block_row) -> Int64.add acc b.Simprof.b_nops)
          0L row.Simprof.blocks
      in
      Alcotest.(check int64)
        (what ^ ": " ^ row.Simprof.fname ^ " block insns sum")
        row.Simprof.insns bi;
      Alcotest.(check int64)
        (what ^ ": " ^ row.Simprof.fname ^ " block nops sum")
        row.Simprof.nops bn)
    prof.Simprof.rows;
  (* And the JSON export is well-formed. *)
  let json = parses (what ^ " Simprof.to_json") (Simprof.to_json prof) in
  Alcotest.(check string)
    (what ^ ": schema")
    "psd-sim-profile/1"
    Minijson.(to_str (member "schema" json))

let test_profile_sums_across_configs () =
  let configs =
    [
      ("baseline", None);
      ("p50", List.assoc_opt "p50" Config.paper_configs);
      ("p0-30", List.assoc_opt "p0-30" Config.paper_configs);
      ("uniform:0.8+xchg", Some { (Config.uniform 0.8) with use_xchg = true });
    ]
  in
  List.iter
    (fun wname ->
      let w = Workloads.find wname in
      let c = Driver.compile_cached ~name:w.Workload.name w.Workload.source in
      let profile = Driver.train_cached c ~args:w.Workload.train_args in
      List.iter
        (fun (cname, config) ->
          let what = w.Workload.name ^ "/" ^ cname in
          let image =
            match config with
            | None -> Driver.link_baseline_cached c
            | Some config ->
                fst (Driver.diversify c ~config ~profile ~version:1)
          in
          let r =
            Driver.run_image image ~profile:true ~args:w.Workload.train_args
          in
          Alcotest.(check bool)
            (what ^ ": profile present")
            true
            (r.Sim.exec_profile <> None);
          check_profile_sums ~what image r)
        configs)
    [ "429.mcf"; "470.lbm"; "462.libquantum" ]

let test_unprofiled_run_has_no_profile () =
  let w = Workloads.find "429.mcf" in
  let c = Driver.compile_cached ~name:w.Workload.name w.Workload.source in
  let image = Driver.link_baseline_cached c in
  let r = Driver.run_image image ~args:w.Workload.train_args in
  Alcotest.(check bool) "no profile by default" true
    (r.Sim.exec_profile = None);
  match Simprof.of_result image r with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "Simprof.of_result should reject unprofiled runs"

let suite =
  [
    ( "obs",
      [
        Alcotest.test_case "clock is monotonic" `Quick test_clock_monotonic;
        Alcotest.test_case "disabled trace is a no-op" `Quick
          test_trace_disabled_is_noop;
        Alcotest.test_case "trace export round-trips" `Quick test_trace_export;
        Alcotest.test_case "metrics counters and histograms" `Quick
          test_metrics_counters;
        Alcotest.test_case "driver cache hit/miss metrics" `Quick
          test_driver_cache_metrics;
        Alcotest.test_case "Cctx.to_json is well-formed" `Quick
          test_cctx_json_well_formed;
        Alcotest.test_case "runtime profile sums (workloads x configs)" `Slow
          test_profile_sums_across_configs;
        Alcotest.test_case "unprofiled run has no profile" `Quick
          test_unprofiled_run_has_no_profile;
      ] );
  ]
