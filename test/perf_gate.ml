(* The CI perf-regression gate.

   Checks against bench reports (BENCH*.json):

   1. Determinism: the report produced with --jobs auto must be
      byte-identical to the one produced with --jobs 1.  Any drift means
      the pool leaked scheduling into an artifact.
   2. Regression: per config, the median overhead_pct across workloads
      must stay within a tolerance of the committed baseline snapshot —
      max(0.05 percentage points, tolerance% of the baseline value,
      default 2%).  The simulator is deterministic, so the medians are
      machine-independent and a drift is a code change, not noise.
      Schema/2 reports additionally carry the baseline binary's
      sampled-profiling overhead at the default period
      (baseline.sampling_overhead_pct); its median is gated the same
      way, so the production-profiling cost cannot creep past its
      committed baseline unnoticed.
   3. Engine speedup (with --speedup): the sim-speedup report's geomean
      block-vs-interp wall-clock speedup must stay at or above the
      baseline's min_block_speedup key.  Wall clock is machine-dependent
      where the modeled medians are not, so this one is a *floor*, not a
      drift band: the committed floor carries enough headroom for
      machine variance, and only a structural slowdown of the block
      engine (or a structural speedup of the oracle) can cross it.

   4. Serve warm-path ratio (with --serve): the serve report's
      warm-over-cold variants/sec ratio at -j 1 must stay at or above
      the baseline's min_warm_variants_per_sec_ratio key.  Like the
      engine speedup this is a wall-clock *floor* with headroom, not a
      drift band: if the daemon's warm path stops being warm (a cache
      key regression, an eviction storm), the ratio collapses toward 1
      and crosses it.

   Modes:

     perf_gate --serial S.json --parallel P.json --baseline B.json
               [--speedup SP.json] [--serve SV.json] [--tolerance-pct T]
               [--inject-slowdown-pct P]
     perf_gate --write-baseline --serial S.json [--speedup SP.json]
               [--serve SV.json] -o B.json

   --inject-slowdown-pct scales the measured medians (and divides the
   measured speedup and serve ratio) before comparing — the gate's own
   CI self-test proves a 10% slowdown, a 30%-slower block engine and a
   50%-slower warm serve path are caught.
   --write-baseline regenerates the snapshot after an intentional
   performance change (see DESIGN.md for the policy); the speedup floor
   is written with 20% headroom below the measured geomean, the serve
   ratio floor with 50% headroom below the measured ratio (cold/warm
   wall clocks vary more across machines than their quotient's
   structure suggests). *)

let usage () =
  prerr_endline
    "usage: perf_gate --serial S.json --parallel P.json --baseline B.json\n\
    \                 [--speedup SP.json] [--serve SV.json] [--tolerance-pct \
     T]\n\
    \                 [--inject-slowdown-pct P]\n\
    \       perf_gate --write-baseline --serial S.json [--speedup SP.json] \
     [--serve SV.json] -o B.json";
  exit 2

let read_file path =
  try In_channel.with_open_bin path In_channel.input_all
  with Sys_error msg ->
    Printf.eprintf "perf_gate: %s\n" msg;
    exit 2

let median = function
  | [] -> 0.0
  | xs ->
      let a = Array.of_list xs in
      Array.sort compare a;
      let n = Array.length a in
      if n mod 2 = 1 then a.(n / 2)
      else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.0

(* config name -> median overhead_pct across the report's workloads, in
   first-appearance order. *)
let medians_of_report json =
  let order = ref [] in
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun w ->
      List.iter
        (fun c ->
          let name = Minijson.(to_str (member "config" c)) in
          let o = Minijson.(to_num (member "overhead_pct" c)) in
          if not (Hashtbl.mem tbl name) then order := name :: !order;
          Hashtbl.replace tbl name
            (o :: Option.value (Hashtbl.find_opt tbl name) ~default:[]))
        Minijson.(to_list (member "configs" w)))
    Minijson.(to_list (member "workloads" json));
  List.rev_map (fun name -> (name, median (Hashtbl.find tbl name))) !order

(* Median across workloads of the undiversified baseline's
   sampled-profiling overhead — [None] for schema/1 reports that predate
   the field. *)
let sampling_median_of_report json =
  let vals =
    List.filter_map
      (fun w ->
        match
          Minijson.(to_num (member "sampling_overhead_pct" (member "baseline" w)))
        with
        | v -> Some v
        | exception Minijson.Bad _ -> None)
      Minijson.(to_list (member "workloads" json))
  in
  match vals with [] -> None | vs -> Some (median vs)

let parse_report path text =
  match Minijson.parse text with
  | json -> json
  | exception Minijson.Bad msg ->
      Printf.printf "FAIL %s is not valid JSON: %s\n" path msg;
      exit 1

(* geomean_speedup of a sim-speedup report (BENCH_PR8.json). *)
let speedup_of_report json =
  match Minijson.(to_num (member "geomean_speedup" json)) with
  | v -> v
  | exception Minijson.Bad msg ->
      Printf.printf "FAIL speedup report: %s\n" msg;
      exit 1

(* warm_cold_ratio of a serve report (BENCH_PR9.json). *)
let serve_ratio_of_report json =
  match Minijson.(to_num (member "warm_cold_ratio" json)) with
  | v -> v
  | exception Minijson.Bad msg ->
      Printf.printf "FAIL serve report: %s\n" msg;
      exit 1

let write_baseline ~out ~sampling ~speedup ~serve medians =
  let oc = open_out out in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc "{\n  \"schema\": \"psd-perf-gate-baseline/1\",\n";
      (match sampling with
      | None -> ()
      | Some s ->
          Printf.fprintf oc "  \"median_sampling_overhead_pct\": %.6f,\n" s);
      (match speedup with
      | None -> ()
      | Some g ->
          (* The floor, not the measurement: 20% headroom under the
             measured geomean absorbs machine-to-machine wall-clock
             variance. *)
          Printf.fprintf oc "  \"min_block_speedup\": %.1f,\n" (0.8 *. g));
      (match serve with
      | None -> ()
      | Some r ->
          (* 50% headroom: the cold and warm wall clocks are both
             machine-dependent, so their ratio gets the widest band. *)
          Printf.fprintf oc "  \"min_warm_variants_per_sec_ratio\": %.1f,\n"
            (Float.max 1.1 (0.5 *. r)));
      output_string oc "  \"median_overhead_pct\": {\n";
      List.iteri
        (fun i (name, m) ->
          Printf.fprintf oc "    %S: %.6f%s\n" name m
            (if i = List.length medians - 1 then "" else ","))
        medians;
      output_string oc "  }\n}\n");
  Printf.printf "baseline written to %s (%d configs)\n" out
    (List.length medians)

let () =
  let serial = ref None
  and parallel = ref None
  and baseline = ref None
  and speedup_file = ref None
  and serve_file = ref None
  and out = ref None
  and tolerance = ref 2.0
  and inject = ref 0.0
  and write_mode = ref false in
  let rec parse = function
    | [] -> ()
    | "--serial" :: v :: rest ->
        serial := Some v;
        parse rest
    | "--parallel" :: v :: rest ->
        parallel := Some v;
        parse rest
    | "--baseline" :: v :: rest ->
        baseline := Some v;
        parse rest
    | "--speedup" :: v :: rest ->
        speedup_file := Some v;
        parse rest
    | "--serve" :: v :: rest ->
        serve_file := Some v;
        parse rest
    | "-o" :: v :: rest ->
        out := Some v;
        parse rest
    | "--tolerance-pct" :: v :: rest ->
        (match float_of_string_opt v with
        | Some t when t > 0.0 -> tolerance := t
        | _ -> usage ());
        parse rest
    | "--inject-slowdown-pct" :: v :: rest ->
        (match float_of_string_opt v with
        | Some p -> inject := p
        | None -> usage ());
        parse rest
    | "--write-baseline" :: rest ->
        write_mode := true;
        parse rest
    | _ -> usage ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  let serial_path = match !serial with Some p -> p | None -> usage () in
  let serial_text = read_file serial_path in
  let serial_json = parse_report serial_path serial_text in
  let scale m = m *. (1.0 +. (!inject /. 100.0)) in
  let medians =
    List.map (fun (name, m) -> (name, scale m)) (medians_of_report serial_json)
  in
  let sampling = Option.map scale (sampling_median_of_report serial_json) in
  (* An injected slowdown of the block engine *divides* its speedup. *)
  let speedup =
    Option.map
      (fun path ->
        speedup_of_report (parse_report path (read_file path))
        /. (1.0 +. (!inject /. 100.0)))
      !speedup_file
  in
  (* So does an injected slowdown of the serve daemon's warm path. *)
  let serve =
    Option.map
      (fun path ->
        serve_ratio_of_report (parse_report path (read_file path))
        /. (1.0 +. (!inject /. 100.0)))
      !serve_file
  in
  if !write_mode then begin
    match !out with
    | Some out -> write_baseline ~out ~sampling ~speedup ~serve medians
    | None -> usage ()
  end
  else begin
    let parallel_path = match !parallel with Some p -> p | None -> usage () in
    let baseline_path = match !baseline with Some p -> p | None -> usage () in
    let failed = ref false in
    let fail fmt = Printf.ksprintf (fun s -> failed := true; print_string ("FAIL " ^ s ^ "\n")) fmt in
    (* Check 1: parallel report byte-identical to serial. *)
    let parallel_text = read_file parallel_path in
    ignore (parse_report parallel_path parallel_text);
    if String.equal serial_text parallel_text then
      Printf.printf "ok   parallel report byte-identical to serial (%d bytes)\n"
        (String.length serial_text)
    else
      fail "parallel report %s differs from serial %s — pool nondeterminism"
        parallel_path serial_path;
    (* Check 2: per-config median overheads within tolerance of the
       committed baseline. *)
    let base_json = parse_report baseline_path (read_file baseline_path) in
    let base =
      match Minijson.member "median_overhead_pct" base_json with
      | Minijson.Obj kvs ->
          List.map (function
            | (k, Minijson.Num v) -> (k, v)
            | (k, _) ->
                Printf.printf "FAIL baseline %s: %s is not a number\n"
                  baseline_path k;
                exit 1)
            kvs
      | _ | (exception Minijson.Bad _) ->
          Printf.printf "FAIL baseline %s: missing median_overhead_pct\n"
            baseline_path;
          exit 1
    in
    List.iter
      (fun (name, m) ->
        match List.assoc_opt name base with
        | None -> fail "config %s measured but absent from baseline" name
        | Some b ->
            let allowed = Float.max 0.05 (!tolerance /. 100.0 *. Float.abs b) in
            let drift = Float.abs (m -. b) in
            if drift <= allowed then
              Printf.printf
                "ok   %-12s median overhead %+.3f%% (baseline %+.3f%%, drift \
                 %.3fpp <= %.3fpp)\n"
                name m b drift allowed
            else
              fail
                "%s median overhead %+.3f%% drifted %.3fpp from baseline \
                 %+.3f%% (allowed %.3fpp)"
                name m drift b allowed)
      medians;
    List.iter
      (fun (name, _) ->
        if not (List.mem_assoc name medians) then
          fail "config %s in baseline but missing from report" name)
      base;
    (* Check 3 (schema/2 reports): the baseline binary's median
       sampled-profiling overhead at the default period, gated exactly
       like the per-config overheads. *)
    (match sampling with
    | None -> ()
    | Some s -> (
        match
          Minijson.(to_num (member "median_sampling_overhead_pct" base_json))
        with
        | b ->
            let allowed =
              Float.max 0.05 (!tolerance /. 100.0 *. Float.abs b)
            in
            let drift = Float.abs (s -. b) in
            if drift <= allowed then
              Printf.printf
                "ok   %-12s median overhead %+.3f%% (baseline %+.3f%%, drift \
                 %.3fpp <= %.3fpp)\n"
                "sampling" s b drift allowed
            else
              fail
                "sampling median overhead %+.3f%% drifted %.3fpp from \
                 baseline %+.3f%% (allowed %.3fpp)"
                s drift b allowed
        | exception Minijson.Bad _ ->
            fail
              "sampled-profiling overhead measured but \
               median_sampling_overhead_pct absent from baseline %s"
              baseline_path));
    (* Check 4 (with --speedup): the block engine's geomean wall-clock
       speedup over the interpreter oracle must stay above the floor. *)
    (match speedup with
    | None -> ()
    | Some g -> (
        match Minijson.(to_num (member "min_block_speedup" base_json)) with
        | floor ->
            if g >= floor then
              Printf.printf
                "ok   block engine geomean speedup %.1fx >= floor %.1fx\n" g
                floor
            else
              fail
                "block engine geomean speedup %.1fx fell below the %.1fx \
                 floor"
                g floor
        | exception Minijson.Bad _ ->
            fail "speedup measured but min_block_speedup absent from baseline %s"
              baseline_path));
    (* Check 5 (with --serve): the daemon's warm-over-cold throughput
       ratio must stay above the floor — below it, the warm path is no
       longer warm. *)
    (match serve with
    | None -> ()
    | Some r -> (
        match
          Minijson.(to_num (member "min_warm_variants_per_sec_ratio" base_json))
        with
        | floor ->
            if r >= floor then
              Printf.printf
                "ok   serve warm/cold throughput ratio %.1fx >= floor %.1fx\n"
                r floor
            else
              fail
                "serve warm/cold throughput ratio %.1fx fell below the %.1fx \
                 floor"
                r floor
        | exception Minijson.Bad _ ->
            fail
              "serve ratio measured but min_warm_variants_per_sec_ratio \
               absent from baseline %s"
              baseline_path));
    if !failed then begin
      print_endline
        "perf gate FAILED — if the change is intentional, regenerate \
         test/perf_baseline.json with --write-baseline (see DESIGN.md)";
      exit 1
    end
    else print_endline "perf gate passed"
  end
