(* Tests for the paper's contribution: the pNOP heuristic (§3.1) and the
   NOP-insertion pass (Algorithm 1). *)

let feq = Alcotest.float 1e-9

(* ------------------------------------------------------------------ *)
(* Heuristic. *)

let test_linear_formula () =
  (* p(x) = pmax - (pmax-pmin) * x/xmax *)
  Alcotest.check feq "x=0 gives pmax" 0.5
    (Heuristic.pnop Linear ~pmin:0.1 ~pmax:0.5 ~count:0L ~max_count:100L);
  Alcotest.check feq "x=xmax gives pmin" 0.1
    (Heuristic.pnop Linear ~pmin:0.1 ~pmax:0.5 ~count:100L ~max_count:100L);
  Alcotest.check feq "midpoint" 0.3
    (Heuristic.pnop Linear ~pmin:0.1 ~pmax:0.5 ~count:50L ~max_count:100L)

let test_log_formula () =
  Alcotest.check feq "x=0 gives pmax" 0.5
    (Heuristic.pnop Logarithmic ~pmin:0.1 ~pmax:0.5 ~count:0L ~max_count:100L);
  Alcotest.check feq "x=xmax gives pmin" 0.1
    (Heuristic.pnop Logarithmic ~pmin:0.1 ~pmax:0.5 ~count:100L
       ~max_count:100L);
  let expected =
    0.5 -. (0.4 *. (log 11.0 /. log 101.0))
  in
  Alcotest.check feq "x=10 of 100" expected
    (Heuristic.pnop Logarithmic ~pmin:0.1 ~pmax:0.5 ~count:10L ~max_count:100L)

let test_paper_astar_example () =
  (* §3.1: count 117,635 of max 2e9 in range 10-50% gives roughly 30%. *)
  let p = Heuristic.paper_astar_example () in
  Alcotest.(check bool)
    (Printf.sprintf "astar example ~0.30 (got %.4f)" p)
    true
    (p > 0.27 && p < 0.33)

let test_no_profile_is_cold () =
  Alcotest.check feq "no data at all" 0.3
    (Heuristic.pnop Logarithmic ~pmin:0.0 ~pmax:0.3 ~count:0L ~max_count:0L)

let test_invalid_range () =
  Alcotest.check_raises "pmin > pmax"
    (Invalid_argument "Heuristic.pnop: invalid range [0.5, 0.1]") (fun () ->
      ignore
        (Heuristic.pnop Linear ~pmin:0.5 ~pmax:0.1 ~count:0L ~max_count:1L))

let prop_bounds =
  QCheck.Test.make ~name:"pnop stays within [pmin, pmax]" ~count:1000
    QCheck.(
      triple (float_bound_inclusive 1.0) (float_bound_inclusive 1.0)
        (pair (map Int64.of_int (int_bound 1_000_000))
           (map Int64.of_int (int_bound 1_000_000))))
    (fun (a, b, (x, xmax)) ->
      let pmin = Float.min a b and pmax = Float.max a b in
      let xmax = Int64.max xmax 1L in
      let x = Int64.min x xmax in
      List.for_all
        (fun shape ->
          let p = Heuristic.pnop shape ~pmin ~pmax ~count:x ~max_count:xmax in
          p >= pmin -. 1e-12 && p <= pmax +. 1e-12)
        [ Heuristic.Linear; Heuristic.Logarithmic ])

let prop_monotone =
  QCheck.Test.make ~name:"hotter blocks never get more NOPs" ~count:500
    QCheck.(
      pair
        (map Int64.of_int (int_bound 1_000_000))
        (map Int64.of_int (int_bound 1_000_000)))
    (fun (a, b) ->
      let x1 = Int64.min a b and x2 = Int64.max a b in
      let xmax = Int64.max x2 1L in
      List.for_all
        (fun shape ->
          Heuristic.pnop shape ~pmin:0.1 ~pmax:0.5 ~count:x1 ~max_count:xmax
          >= Heuristic.pnop shape ~pmin:0.1 ~pmax:0.5 ~count:x2 ~max_count:xmax
             -. 1e-12)
        [ Heuristic.Linear; Heuristic.Logarithmic ])

let prop_log_spreads =
  (* log(1+x)/log(1+xmax) >= x/xmax on [0,xmax], so the log heuristic
     assigns probabilities at or below linear — it treats mid-range counts
     as hotter, avoiding the polarization the paper describes. *)
  QCheck.Test.make ~name:"log heuristic <= linear heuristic" ~count:500
    QCheck.(
      pair
        (map Int64.of_int (int_bound 1_000_000))
        (map Int64.of_int (int_range 1 1_000_000)))
    (fun (x, xmax) ->
      let x = Int64.min x xmax in
      Heuristic.pnop Logarithmic ~pmin:0.1 ~pmax:0.5 ~count:x ~max_count:xmax
      <= Heuristic.pnop Linear ~pmin:0.1 ~pmax:0.5 ~count:x ~max_count:xmax
         +. 1e-12)

(* ------------------------------------------------------------------ *)
(* NOP insertion. *)

let hot_loop_src =
  {|
  global int sink;
  int main(int n) {
    int acc = 0;
    for (int i = 0; i < n; i = i + 1) acc = acc + i * 3 - (acc >> 5);
    sink = acc;
    if (n < 0) { sink = 0 - 1; print_int(sink); put_char('!'); exit(2); }
    return acc;
  }
  |}

let compile src = Driver.compile ~name:"core-test" src

let test_off_is_identity () =
  let c = compile hot_loop_src in
  let profile = Driver.train c ~args:[ 5l ] in
  let image, stats =
    Driver.diversify c ~config:Config.off ~profile ~version:0
  in
  let baseline = Driver.link_baseline c in
  Alcotest.(check string) "same text" baseline.Link.text image.Link.text;
  Alcotest.(check int) "no NOPs" 0 stats.Nop_insert.nops_inserted

let test_semantics_preserved () =
  (* The crucial property: every configuration and version computes the
     same thing as the baseline. *)
  let c = compile hot_loop_src in
  let profile = Driver.train c ~args:[ 50l ] in
  let baseline = Driver.run_image (Driver.link_baseline c) ~args:[ 200l ] in
  List.iter
    (fun (cname, config) ->
      List.iter
        (fun version ->
          let image, _ = Driver.diversify c ~config ~profile ~version in
          let r = Driver.run_image image ~args:[ 200l ] in
          Alcotest.(check int32)
            (Printf.sprintf "%s v%d status" cname version)
            baseline.Sim.status r.Sim.status;
          Alcotest.(check string)
            (Printf.sprintf "%s v%d output" cname version)
            baseline.Sim.output r.Sim.output)
        [ 0; 1; 2 ])
    Config.paper_configs

let test_deterministic_versions () =
  let c = compile hot_loop_src in
  let profile = Driver.train c ~args:[ 10l ] in
  let config = Config.uniform 0.5 in
  let a, _ = Driver.diversify c ~config ~profile ~version:3 in
  let b, _ = Driver.diversify c ~config ~profile ~version:3 in
  Alcotest.(check string) "same version same bytes" a.Link.text b.Link.text;
  let c2, _ = Driver.diversify c ~config ~profile ~version:4 in
  Alcotest.(check bool) "different versions differ" true
    (a.Link.text <> c2.Link.text)

let test_insertion_rate () =
  let c = compile hot_loop_src in
  let profile = Driver.train c ~args:[ 10l ] in
  let config = Config.uniform 0.5 in
  let _, stats = Driver.diversify c ~config ~profile ~version:0 in
  let rate =
    float_of_int stats.Nop_insert.nops_inserted
    /. float_of_int stats.Nop_insert.insns_seen
  in
  Alcotest.(check bool)
    (Printf.sprintf "rate %.3f near 0.5" rate)
    true
    (abs_float (rate -. 0.5) < 0.08);
  let _, s0 = Driver.diversify c ~config:(Config.uniform 0.0) ~profile ~version:0 in
  Alcotest.(check int) "p=0 inserts nothing" 0 s0.Nop_insert.nops_inserted;
  let _, s1 = Driver.diversify c ~config:(Config.uniform 1.0) ~profile ~version:0 in
  Alcotest.(check int) "p=1 inserts everywhere" s1.Nop_insert.insns_seen
    s1.Nop_insert.nops_inserted

let test_profile_guided_dynamic_nops () =
  (* With a strongly skewed profile, the profile-guided range [0,30%] must
     execute far fewer NOPs than uniform 30%, despite inserting NOPs
     liberally in cold code. *)
  let c = compile hot_loop_src in
  let profile = Driver.train c ~args:[ 2000l ] in
  let run config =
    let image, _ = Driver.diversify c ~config ~profile ~version:1 in
    Driver.run_image image ~args:[ 2000l ]
  in
  let uniform = run (Config.uniform 0.30) in
  let guided = run (Config.profiled ~pmin:0.0 ~pmax:0.30 ()) in
  Alcotest.(check bool)
    (Printf.sprintf "guided executes far fewer NOPs (%Ld vs %Ld)"
       guided.Sim.nops_retired uniform.Sim.nops_retired)
    true
    (Int64.to_float guided.Sim.nops_retired
    < 0.25 *. Int64.to_float uniform.Sim.nops_retired);
  Alcotest.(check int32) "same result" uniform.Sim.status guided.Sim.status

let test_libc_untouched () =
  let c = compile hot_loop_src in
  let profile = Driver.train c ~args:[ 10l ] in
  let baseline = Driver.link_baseline c in
  let image, _ =
    Driver.diversify c ~config:(Config.uniform 0.5) ~profile ~version:0
  in
  Alcotest.(check int) "runtime block at same offset" baseline.Link.user_start
    image.Link.user_start;
  Alcotest.(check string) "runtime bytes identical"
    (String.sub baseline.Link.text 0 baseline.Link.user_start)
    (String.sub image.Link.text 0 image.Link.user_start)

let test_inserted_are_candidates () =
  (* Every inserted instruction must be a Table-1 candidate, and with
     use_xchg=false never an XCHG. *)
  let c = compile hot_loop_src in
  let profile = Driver.train c ~args:[ 10l ] in
  let config = Config.uniform 1.0 in
  let rng = Rng.create 7L in
  List.iter
    (fun f ->
      let f', _ = Nop_insert.run ~config ~profile ~rng f in
      let orig = Asm.insns f in
      let div = Asm.insns f' in
      (* With p=1 every item gets a preceding NOP.  Symbolic items
         (branches, calls, address loads) receive one too but do not
         appear in [Asm.insns], so the concrete stream holds the original
         instructions, one NOP each, plus one NOP per symbolic item. *)
      let n_sym =
        List.length
          (List.filter
             (function
               | Asm.Jmp_sym _ | Asm.Jcc_sym _ | Asm.Call_sym _
               | Asm.Mov_sym _ ->
                   true
               | _ -> false)
             f.Asm.items)
      in
      Alcotest.(check int) "doubled instruction count"
        ((2 * List.length orig) + n_sym)
        (List.length div);
      List.iter
        (fun i ->
          match i with
          | Insn.Xchg_rm_r _ -> Alcotest.fail "XCHG inserted despite default"
          | _ -> ())
        div)
    c.Driver.asm

let test_bb_shift () =
  (* The §6 extension: every function gets a jumped-over sled, semantics
     are preserved, and even a p=0 build is displaced. *)
  let c = compile hot_loop_src in
  let profile = Driver.train c ~args:[ 50l ] in
  let base = Driver.run_image (Driver.link_baseline c) ~args:[ 100l ] in
  let config = { (Config.uniform 0.0) with Config.bb_shift = true } in
  let image, stats = Driver.diversify c ~config ~profile ~version:0 in
  let r = Driver.run_image image ~args:[ 100l ] in
  Alcotest.(check string) "output preserved" base.Sim.output r.Sim.output;
  Alcotest.(check int) "no NOPs inserted at p=0" 0 stats.Nop_insert.nops_inserted;
  Alcotest.(check bool) "but bytes were added" true
    (stats.Nop_insert.bytes_added > 0);
  (* Gadgets shift even at p=0: the whole function is displaced. *)
  let baseline = Driver.link_baseline c in
  let outcome =
    Survivor.compare_sections ~original:baseline.Link.text
      ~diversified:image.Link.text ()
  in
  let libc_gadgets =
    List.length
      (List.filter
         (fun (g : Finder.t) -> g.offset < baseline.Link.user_start)
         (Finder.scan baseline.Link.text))
  in
  Alcotest.(check bool)
    (Printf.sprintf "user gadgets displaced (%d survive, %d in libc)"
       outcome.Survivor.surviving libc_gadgets)
    true
    (outcome.Survivor.surviving <= libc_gadgets + 2);
  Alcotest.(check string) "config name reflects shift" "p0+shift"
    (Config.name config)

let test_population () =
  let c = compile hot_loop_src in
  let profile = Driver.train c ~args:[ 10l ] in
  let images =
    Driver.population c ~config:(Config.uniform 0.5) ~profile ~n:5
  in
  Alcotest.(check int) "five versions" 5 (List.length images);
  let texts = List.map (fun (i : Link.image) -> i.Link.text) images in
  let distinct = List.sort_uniq compare texts in
  Alcotest.(check int) "all distinct" 5 (List.length distinct)

let test_config_names () =
  Alcotest.(check (list string)) "paper configuration names"
    [ "p50"; "p30"; "p25-50"; "p10-50"; "p0-30" ]
    (List.map fst Config.paper_configs);
  List.iter
    (fun (n, c) -> Alcotest.(check string) "name roundtrip" n (Config.name c))
    Config.paper_configs

let test_config_name_injective () =
  (* Distinct configurations must have distinct names: the name feeds
     Rng.of_labels in Driver.diversify, so a collision would also make
     their diversified populations identical. *)
  let base = Config.profiled ~pmin:0.0 ~pmax:0.30 () in
  let fn = Config.profiled ~scope:`Function ~pmin:0.0 ~pmax:0.30 () in
  Alcotest.(check string) "scope suffix" "p0-30-fn" (Config.name fn);
  Alcotest.(check string) "xchg suffix" "p0-30+xchg"
    (Config.name { base with Config.use_xchg = true });
  Alcotest.(check string) "all suffixes" "p0-30-fn+xchg+shift"
    (Config.name { fn with Config.use_xchg = true; bb_shift = true });
  Alcotest.(check string) "uniform xchg" "p50+xchg"
    (Config.name { (Config.uniform 0.5) with Config.use_xchg = true });
  (* and therefore distinct configs draw from distinct RNG streams *)
  let c = compile hot_loop_src in
  let profile = Driver.train c ~args:[ 10l ] in
  let img_base, _ = Driver.diversify c ~config:base ~profile ~version:0 in
  let img_fn, _ = Driver.diversify c ~config:fn ~profile ~version:0 in
  Alcotest.(check bool) "different configs, different binaries" true
    (img_base.Link.text <> img_fn.Link.text)

let suite =
  [
    ( "core.heuristic",
      [
        Alcotest.test_case "linear formula" `Quick test_linear_formula;
        Alcotest.test_case "log formula" `Quick test_log_formula;
        Alcotest.test_case "paper astar example" `Quick
          test_paper_astar_example;
        Alcotest.test_case "missing profile is cold" `Quick
          test_no_profile_is_cold;
        Alcotest.test_case "invalid range" `Quick test_invalid_range;
        QCheck_alcotest.to_alcotest prop_bounds;
        QCheck_alcotest.to_alcotest prop_monotone;
        QCheck_alcotest.to_alcotest prop_log_spreads;
      ] );
    ( "core.nop-insertion",
      [
        Alcotest.test_case "off is identity" `Quick test_off_is_identity;
        Alcotest.test_case "semantics preserved" `Quick
          test_semantics_preserved;
        Alcotest.test_case "deterministic versions" `Quick
          test_deterministic_versions;
        Alcotest.test_case "insertion rate" `Quick test_insertion_rate;
        Alcotest.test_case "profile-guided dynamic NOPs" `Quick
          test_profile_guided_dynamic_nops;
        Alcotest.test_case "runtime untouched" `Quick test_libc_untouched;
        Alcotest.test_case "inserted are candidates" `Quick
          test_inserted_are_candidates;
        Alcotest.test_case "basic-block shifting" `Quick test_bb_shift;
        Alcotest.test_case "population" `Quick test_population;
        Alcotest.test_case "config names" `Quick test_config_names;
        Alcotest.test_case "config names injective" `Quick
          test_config_name_injective;
      ] );
  ]
