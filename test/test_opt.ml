(* Unit tests for the optimizer passes, on hand-built IR.  The
   end-to-end guarantee (O0 and O2 agree) lives in test_backend; these
   check that each pass actually performs its transformation. *)

(* Build a one-block function: instrs then a return. *)
let func_of ?(params = 0) instrs term =
  let b = Builder.create ~name:"f" ~n_params:params in
  (* Reserve the temps the caller references. *)
  let rec bump_to n = if Builder.fresh_temp b < n then bump_to n else () in
  bump_to 63;
  List.iter (Builder.emit b) instrs;
  Builder.terminate b term;
  Builder.finish b

let instrs_of (f : Ir.func) = List.concat_map (fun b -> b.Ir.instrs) f.blocks

let test_constfold_arith () =
  let f =
    func_of
      [ Ir.Bin (Ir.Add, 100, Ir.Const 2l, Ir.Const 3l) ]
      (Ir.Ret (Some (Ir.Temp 100)))
  in
  ignore (Constfold.run f);
  match instrs_of f with
  | [ Ir.Copy (100, Ir.Const 5l) ] -> ()
  | is ->
      Alcotest.failf "expected folded copy, got %d instrs: %s" (List.length is)
        (String.concat "; " (List.map Ir.show_instr is))

let test_constfold_identities () =
  let cases =
    [
      (Ir.Bin (Ir.Add, 100, Ir.Temp 0, Ir.Const 0l), Ir.Copy (100, Ir.Temp 0));
      (Ir.Bin (Ir.Mul, 100, Ir.Temp 0, Ir.Const 1l), Ir.Copy (100, Ir.Temp 0));
      (Ir.Bin (Ir.Mul, 100, Ir.Temp 0, Ir.Const 0l), Ir.Copy (100, Ir.Const 0l));
      (Ir.Bin (Ir.Xor, 100, Ir.Temp 0, Ir.Temp 0), Ir.Copy (100, Ir.Const 0l));
      (Ir.Bin (Ir.Sub, 100, Ir.Temp 0, Ir.Temp 0), Ir.Copy (100, Ir.Const 0l));
      (Ir.Bin (Ir.Shl, 100, Ir.Temp 0, Ir.Const 0l), Ir.Copy (100, Ir.Temp 0));
    ]
  in
  List.iter
    (fun (before, after) ->
      let f = func_of ~params:1 [ before ] (Ir.Ret (Some (Ir.Temp 100))) in
      ignore (Constfold.run f);
      match instrs_of f with
      | [ got ] ->
          Alcotest.(check bool)
            (Ir.show_instr before ^ " simplifies")
            true (Ir.equal_instr got after)
      | _ -> Alcotest.fail "unexpected shape")
    cases

let test_constfold_keeps_div_by_zero () =
  (* Division by a zero constant must stay: it traps at runtime. *)
  let f =
    func_of
      [ Ir.Bin (Ir.Div, 100, Ir.Const 1l, Ir.Const 0l) ]
      (Ir.Ret (Some (Ir.Temp 100)))
  in
  ignore (Constfold.run f);
  match instrs_of f with
  | [ Ir.Bin (Ir.Div, _, _, _) ] -> ()
  | _ -> Alcotest.fail "div by zero constant must not fold"

let test_constfold_branch () =
  let b = Builder.create ~name:"f" ~n_params:0 in
  let l1 = Builder.fresh_label b in
  let l2 = Builder.fresh_label b in
  Builder.terminate b (Ir.Cbr (Ir.Lt, Ir.Const 1l, Ir.Const 2l, l1, l2));
  Builder.start_block b l1;
  Builder.terminate b (Ir.Ret (Some (Ir.Const 1l)));
  Builder.start_block b l2;
  Builder.terminate b (Ir.Ret (Some (Ir.Const 2l)));
  let f = Builder.finish b in
  ignore (Constfold.run f);
  match (List.hd f.blocks).Ir.term with
  | Ir.Jmp l when l = l1 -> ()
  | t -> Alcotest.failf "expected jmp L%d, got %s" l1 (Ir.show_terminator t)

let test_copyprop_chain () =
  let f =
    func_of ~params:1
      [
        Ir.Copy (100, Ir.Temp 0);
        Ir.Copy (101, Ir.Temp 100);
        Ir.Bin (Ir.Add, 102, Ir.Temp 101, Ir.Temp 100);
      ]
      (Ir.Ret (Some (Ir.Temp 102)))
  in
  ignore (Copyprop.run f);
  match instrs_of f with
  | [ _; _; Ir.Bin (Ir.Add, 102, Ir.Temp 0, Ir.Temp 0) ] -> ()
  | is ->
      Alcotest.failf "copies not propagated: %s"
        (String.concat "; " (List.map Ir.show_instr is))

let test_copyprop_kill_on_redef () =
  (* After t0 is redefined, earlier copies of it must not propagate. *)
  let f =
    func_of ~params:1
      [
        Ir.Copy (100, Ir.Temp 0);
        Ir.Bin (Ir.Add, 0, Ir.Temp 0, Ir.Const 1l);
        Ir.Copy (101, Ir.Temp 100);
      ]
      (Ir.Ret (Some (Ir.Temp 101)))
  in
  ignore (Copyprop.run f);
  match instrs_of f with
  | [ _; _; Ir.Copy (101, src) ] ->
      (* must NOT have become Temp 0 (stale); Temp 100 is correct *)
      Alcotest.(check bool) "not stale" true (src <> Ir.Temp 0)
  | _ -> Alcotest.fail "unexpected shape"

let test_cse_basic () =
  let f =
    func_of ~params:2
      [
        Ir.Bin (Ir.Add, 100, Ir.Temp 0, Ir.Temp 1);
        Ir.Bin (Ir.Add, 101, Ir.Temp 0, Ir.Temp 1);
      ]
      (Ir.Ret (Some (Ir.Temp 101)))
  in
  ignore (Cse.run f);
  match instrs_of f with
  | [ Ir.Bin _; Ir.Copy (101, Ir.Temp 100) ] -> ()
  | is ->
      Alcotest.failf "expected CSE copy: %s"
        (String.concat "; " (List.map Ir.show_instr is))

let test_cse_load_killed_by_store () =
  let f =
    func_of ~params:2
      [
        Ir.Load (100, Ir.Temp 0);
        Ir.Store (Ir.Temp 1, Ir.Const 9l);
        Ir.Load (101, Ir.Temp 0);
      ]
      (Ir.Ret (Some (Ir.Temp 101)))
  in
  ignore (Cse.run f);
  match instrs_of f with
  | [ Ir.Load _; Ir.Store _; Ir.Load _ ] -> ()
  | _ -> Alcotest.fail "load across store must not be reused"

let test_cse_self_reference () =
  (* t0 = t0 + 1 must not make "t0 + 1" available afterwards. *)
  let f =
    func_of ~params:1
      [
        Ir.Bin (Ir.Add, 0, Ir.Temp 0, Ir.Const 1l);
        Ir.Bin (Ir.Add, 100, Ir.Temp 0, Ir.Const 1l);
      ]
      (Ir.Ret (Some (Ir.Temp 100)))
  in
  ignore (Cse.run f);
  match instrs_of f with
  | [ Ir.Bin _; Ir.Bin _ ] -> ()
  | is ->
      Alcotest.failf "unsound CSE of self-referential expression: %s"
        (String.concat "; " (List.map Ir.show_instr is))

let test_dce_removes_dead_chain () =
  let f =
    func_of ~params:1
      [
        Ir.Bin (Ir.Add, 100, Ir.Temp 0, Ir.Const 1l);
        Ir.Bin (Ir.Mul, 101, Ir.Temp 100, Ir.Const 2l);
        (* 101 never used *)
        Ir.Bin (Ir.Add, 102, Ir.Temp 0, Ir.Const 3l);
      ]
      (Ir.Ret (Some (Ir.Temp 102)))
  in
  ignore (Dce.run f);
  Alcotest.(check int) "only the live instr remains" 1
    (List.length (instrs_of f))

let test_dce_keeps_side_effects () =
  let f =
    func_of ~params:1
      [
        Ir.Store (Ir.Temp 0, Ir.Const 1l);
        Ir.Call (Some 100, "print_int", [ Ir.Const 2l ]);
      ]
      (Ir.Ret None)
  in
  ignore (Dce.run f);
  match instrs_of f with
  | [ Ir.Store _; Ir.Call (None, "print_int", _) ] ->
      (* the unused call result is dropped, the call itself kept *)
      ()
  | is ->
      Alcotest.failf "side effects mishandled: %s"
        (String.concat "; " (List.map Ir.show_instr is))

let test_simplify_unreachable () =
  let b = Builder.create ~name:"f" ~n_params:0 in
  let dead = Builder.fresh_label b in
  Builder.terminate b (Ir.Ret (Some (Ir.Const 1l)));
  Builder.start_block b dead;
  Builder.terminate b (Ir.Ret (Some (Ir.Const 2l)));
  let f = Builder.finish b in
  ignore (Simplify_cfg.run f);
  Alcotest.(check int) "dead block removed" 1 (List.length f.Ir.blocks)

let test_simplify_jump_threading () =
  let b = Builder.create ~name:"f" ~n_params:0 in
  let mid = Builder.fresh_label b in
  let final = Builder.fresh_label b in
  Builder.terminate b (Ir.Jmp mid);
  Builder.start_block b mid;
  Builder.terminate b (Ir.Jmp final);
  Builder.start_block b final;
  Builder.terminate b (Ir.Ret (Some (Ir.Const 7l)));
  let f = Builder.finish b in
  ignore (Simplify_cfg.run f);
  (* Everything merges into the entry block. *)
  Alcotest.(check int) "merged to one block" 1 (List.length f.Ir.blocks);
  match (List.hd f.Ir.blocks).Ir.term with
  | Ir.Ret (Some (Ir.Const 7l)) -> ()
  | t -> Alcotest.failf "unexpected terminator %s" (Ir.show_terminator t)

let test_simplify_keeps_infinite_loop () =
  let b = Builder.create ~name:"f" ~n_params:0 in
  let loop = Builder.fresh_label b in
  Builder.terminate b (Ir.Jmp loop);
  Builder.start_block b loop;
  Builder.terminate b (Ir.Jmp loop);
  let f = Builder.finish b in
  ignore (Simplify_cfg.run f);
  (* Must terminate and keep a well-formed self loop. *)
  Verify.check_exn { Ir.funcs = [ f ]; globals = [] }

let test_pipeline_fixpoint_terminates () =
  let src =
    {|
    int main(int n) {
      int a = 1 * n + 0;
      int b = a ^ a;
      int c = (n + n) - (n + n);
      if (1 < 2) return a + b + c;
      return 99;
    }
    |}
  in
  let m = Minic.compile_exn src in
  let m = Pipeline.optimize m in
  (* The branch folds away: a single block remains in main. *)
  let main = Ir.find_func m "main" in
  Alcotest.(check int) "one block after folding" 1 (List.length main.Ir.blocks)

let test_levels () =
  Alcotest.(check bool) "O2 parses" true (Pipeline.level_of_string "O2" = Some Pipeline.O2);
  Alcotest.(check bool) "bad level" true (Pipeline.level_of_string "O9" = None);
  Alcotest.(check string) "name" "O1" (Pipeline.level_name Pipeline.O1)

(* ---- the pass manager: descriptions, parsing, instrumentation ---- *)

let test_registry () =
  Alcotest.(check (list string))
    "standard pass order"
    [ "simplify-cfg"; "constfold"; "copyprop"; "cse"; "dce" ]
    Pipeline.pass_names;
  List.iter
    (fun n ->
      match Pipeline.find_pass n with
      | Some p -> Alcotest.(check string) "find_pass" n p.Pass.name
      | None -> Alcotest.failf "pass %s not found" n)
    Pipeline.pass_names;
  Alcotest.(check bool) "unknown pass" true (Pipeline.find_pass "sroa" = None)

let test_descr_roundtrip () =
  List.iter
    (fun s ->
      match Pipeline.descr_of_string s with
      | Error e -> Alcotest.failf "parse %S: %s" s e
      | Ok d -> (
          let s' = Pipeline.descr_to_string d in
          match Pipeline.descr_of_string s' with
          | Ok d' ->
              Alcotest.(check bool)
                (Printf.sprintf "%S round-trips via %S" s s')
                true (Pipeline.descr_equal d d')
          | Error e -> Alcotest.failf "re-parse %S: %s" s' e))
    [
      "";
      "dce";
      "simplify-cfg,constfold,copyprop,cse,dce";
      "cse,dce@3";
      "constfold@1";
      " constfold , dce ";
    ];
  (* every level's pipeline survives the string form too *)
  List.iter
    (fun l ->
      let d = Pipeline.of_level l in
      match Pipeline.descr_of_string (Pipeline.descr_to_string d) with
      | Ok d' ->
          Alcotest.(check bool)
            (Pipeline.level_name l ^ " round-trips")
            true (Pipeline.descr_equal d d')
      | Error e -> Alcotest.failf "level %s: %s" (Pipeline.level_name l) e)
    [ Pipeline.O0; Pipeline.O1; Pipeline.O2 ]

let test_descr_errors () =
  (match Pipeline.descr_of_string "no-such-pass" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown pass accepted");
  match Pipeline.descr_of_string "dce@x" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad round bound accepted"

let opt_demo_src =
  {|
  global int g[8];
  int helper(int x) { return x * 3 + g[x & 7]; }
  int main() {
    int acc = 0;
    for (int i = 0; i < 20; i = i + 1) { g[i & 7] = i; acc = acc + helper(i); }
    return acc;
  }
  |}

let test_custom_pipeline_matches_o2 () =
  (* The full standard sequence spelled out as a --passes string must
     behave exactly like the built-in O2 pipeline. *)
  let m2 = Pipeline.optimize (Minic.compile_exn opt_demo_src) in
  let d =
    match Pipeline.descr_of_string "simplify-cfg,constfold,copyprop,cse,dce" with
    | Ok d -> d
    | Error e -> Alcotest.fail e
  in
  let mc = Pipeline.run ~verify_each:true d (Minic.compile_exn opt_demo_src) in
  let r2 = Interp.run m2 ~entry:"main" ~args:[] in
  let rc = Interp.run mc ~entry:"main" ~args:[] in
  Alcotest.(check int32) "same result" r2.Interp.ret rc.Interp.ret;
  Alcotest.(check int) "same optimized size"
    (List.fold_left (fun n f -> n + Pipeline.ir_size f) 0 m2.Ir.funcs)
    (List.fold_left (fun n f -> n + Pipeline.ir_size f) 0 mc.Ir.funcs)

let test_pass_stats_accounting () =
  (* Per-stage stats record work actually performed, so a function served
     by the artifact store leaves no machine rows — compile cold. *)
  Store.clear ();
  let c = Driver.compile ~name:"stats-test" opt_demo_src in
  let stats = Cctx.stats c.Driver.cctx in
  let ir_stats =
    List.filter
      (fun (s : Cctx.stat) -> s.Cctx.stage = "ir" && s.Cctx.pass <> "verify")
      stats
  in
  List.iter
    (fun (f : Ir.func) ->
      let fs =
        List.filter (fun (s : Cctx.stat) -> s.Cctx.func = f.Ir.name) ir_stats
      in
      match fs with
      | [] -> Alcotest.failf "no ir stats recorded for %s" f.Ir.name
      | first :: _ ->
          let last = List.nth fs (List.length fs - 1) in
          (* consecutive runs chain: each starts from the previous size *)
          ignore
            (List.fold_left
               (fun prev (s : Cctx.stat) ->
                 (match prev with
                 | Some p ->
                     Alcotest.(check int)
                       (f.Ir.name ^ ": runs chain")
                       p s.Cctx.items_before
                 | None -> ());
                 Some s.Cctx.items_after)
               None fs);
          (* deltas telescope: initial size + sum of deltas = final size *)
          let sum_delta =
            List.fold_left
              (fun acc (s : Cctx.stat) ->
                acc + (s.Cctx.items_after - s.Cctx.items_before))
              0 fs
          in
          Alcotest.(check int)
            (f.Ir.name ^ ": deltas sum to final size")
            (last.Cctx.items_after - first.Cctx.items_before)
            sum_delta;
          (* and the recorded final size is the function's actual size *)
          Alcotest.(check int)
            (f.Ir.name ^ ": final size matches the module")
            (Pipeline.ir_size f) last.Cctx.items_after)
    c.Driver.modul.Ir.funcs;
  (* machine stages recorded once per function, with emitted bytes *)
  let emits =
    List.filter
      (fun (s : Cctx.stat) -> s.Cctx.stage = "machine" && s.Cctx.pass = "emit")
      stats
  in
  Alcotest.(check int) "one emit record per function"
    (List.length c.Driver.modul.Ir.funcs)
    (List.length emits);
  List.iter
    (fun (s : Cctx.stat) ->
      Alcotest.(check bool) "emitted bytes positive" true (s.Cctx.bytes > 0))
    emits;
  (* the emitted bytes in the table account for the whole user text *)
  let total_emitted =
    List.fold_left (fun acc (s : Cctx.stat) -> acc + s.Cctx.bytes) 0 emits
  in
  Alcotest.(check int) "emit bytes = assembled function sizes"
    (List.fold_left (fun acc f -> acc + Asm.func_size f) 0 c.Driver.asm)
    total_emitted

let test_verify_each_catches_breakage () =
  (* A deliberately broken "pass" must be caught immediately and named. *)
  let rogue =
    {
      Pass.name = "dce";
      (* reuse a registered name: the report must still surface *)
      descr = "breaks the function";
      run =
        (fun f ->
          (match f.Ir.blocks with
          | b :: _ -> b.Ir.term <- Ir.Jmp 424242
          | [] -> ());
          true);
    }
  in
  let d = { Pipeline.passes = [ rogue ]; max_rounds = 1 } in
  let m = Minic.compile_exn "int main() { return 1; }" in
  match Pipeline.run ~verify_each:true d m with
  | exception Failure msg ->
      Alcotest.(check bool) "names the pass" true
        (String.length msg > 0
        && String.sub msg 0 (String.length "IR verification failed")
           = "IR verification failed")
  | _ -> Alcotest.fail "broken IR not caught"

let suite =
  [
    ( "opt.constfold",
      [
        Alcotest.test_case "arith" `Quick test_constfold_arith;
        Alcotest.test_case "identities" `Quick test_constfold_identities;
        Alcotest.test_case "div by zero kept" `Quick
          test_constfold_keeps_div_by_zero;
        Alcotest.test_case "branch folding" `Quick test_constfold_branch;
      ] );
    ( "opt.copyprop",
      [
        Alcotest.test_case "chains" `Quick test_copyprop_chain;
        Alcotest.test_case "kill on redefinition" `Quick
          test_copyprop_kill_on_redef;
      ] );
    ( "opt.cse",
      [
        Alcotest.test_case "basic" `Quick test_cse_basic;
        Alcotest.test_case "store kills loads" `Quick
          test_cse_load_killed_by_store;
        Alcotest.test_case "self reference" `Quick test_cse_self_reference;
      ] );
    ( "opt.dce",
      [
        Alcotest.test_case "dead chain" `Quick test_dce_removes_dead_chain;
        Alcotest.test_case "side effects kept" `Quick
          test_dce_keeps_side_effects;
      ] );
    ( "opt.simplify-cfg",
      [
        Alcotest.test_case "unreachable" `Quick test_simplify_unreachable;
        Alcotest.test_case "jump threading" `Quick
          test_simplify_jump_threading;
        Alcotest.test_case "infinite loop" `Quick
          test_simplify_keeps_infinite_loop;
      ] );
    ( "opt.pipeline",
      [
        Alcotest.test_case "fixpoint" `Quick test_pipeline_fixpoint_terminates;
        Alcotest.test_case "levels" `Quick test_levels;
      ] );
    ( "opt.pass-manager",
      [
        Alcotest.test_case "registry" `Quick test_registry;
        Alcotest.test_case "descr round-trip" `Quick test_descr_roundtrip;
        Alcotest.test_case "descr errors" `Quick test_descr_errors;
        Alcotest.test_case "custom pipeline = O2" `Quick
          test_custom_pipeline_matches_o2;
        Alcotest.test_case "pass-stat accounting" `Quick
          test_pass_stats_accounting;
        Alcotest.test_case "verify-each catches breakage" `Quick
          test_verify_each_catches_breakage;
      ] );
  ]
