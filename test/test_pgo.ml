(* The production-profiling loop: sampled-profile merge algebra, the
   PSDPROF on-disk format's error paths, and sampled-vs-exact agreement
   through NOP-aware back-mapping — on diversified binaries, for every
   workload. *)

(* ---------------- helpers ---------------- *)

let with_temp f =
  let path = Filename.temp_file "psd_prof" ".psdprof" in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc s)

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  nl = 0
  ||
  let rec at i =
    i + nl <= hl && (String.sub haystack i nl = needle || at (i + 1))
  in
  at 0

let expect_failure ~substring f =
  match f () with
  | exception Failure m ->
      Alcotest.(check bool)
        (Printf.sprintf "failure %S mentions %S" m substring)
        true (contains m substring)
  | _ -> Alcotest.fail ("expected Failure mentioning " ^ substring)

(* Deterministic pseudo-random recordings (an LCG, so the properties are
   reproducible without a seed knob). *)
let state = ref 0x2545F4914F6CDD1DL

let rnd () =
  state := Int64.add (Int64.mul !state 6364136223846793005L) 1442695040888963407L;
  Int64.to_float (Int64.shift_right_logical !state 11) /. 9.007199254740992e15

let gen_sprof tag =
  let rows = Hashtbl.create 16 in
  let nrows = 3 + int_of_float (rnd () *. 12.0) in
  for i = 0 to nrows - 1 do
    let key = (Printf.sprintf "f%d" (i mod 5), i mod 7) in
    let mass = 1.0 +. (rnd () *. 1.0e6) in
    Hashtbl.replace rows key
      (mass +. Option.value (Hashtbl.find_opt rows key) ~default:0.0)
  done;
  {
    Sprof.sources =
      [
        {
          Sprof.image_digest = "d" ^ tag;
          config = "p25-50";
          seed = 7L;
          workload = "w" ^ tag;
          period = 1000.0;
          samples = Int64.of_float (rnd () *. 1.0e4);
          weight = 1.0;
        };
      ];
    rows;
    runtime_mass = rnd () *. 100.0;
    unknown_mass = rnd () *. 10.0;
  }

let sorted_rows (t : Sprof.t) =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.Sprof.rows []
  |> List.sort compare

let close a b =
  Float.abs (a -. b) <= 1e-6 *. Float.max 1.0 (Float.max (Float.abs a) (Float.abs b))

let check_rows_equal what a b =
  let ra = sorted_rows a and rb = sorted_rows b in
  Alcotest.(check int) (what ^ ": row count") (List.length ra) (List.length rb);
  List.iter2
    (fun (ka, va) (kb, vb) ->
      Alcotest.(check bool) (what ^ ": same keys") true (ka = kb);
      Alcotest.(check bool) (what ^ ": same mass") true (close va vb))
    ra rb;
  Alcotest.(check bool)
    (what ^ ": runtime mass") true
    (close a.Sprof.runtime_mass b.Sprof.runtime_mass);
  Alcotest.(check bool)
    (what ^ ": unknown mass") true
    (close a.Sprof.unknown_mass b.Sprof.unknown_mass)

(* ---------------- merge algebra ---------------- *)

let test_merge_commutative () =
  for i = 0 to 19 do
    let a = gen_sprof (Printf.sprintf "a%d" i)
    and b = gen_sprof (Printf.sprintf "b%d" i) in
    check_rows_equal "a+b = b+a" (Sprof.merge a b) (Sprof.merge b a)
  done

let test_merge_associative () =
  for i = 0 to 19 do
    let a = gen_sprof (Printf.sprintf "a%d" i)
    and b = gen_sprof (Printf.sprintf "b%d" i)
    and c = gen_sprof (Printf.sprintf "c%d" i) in
    check_rows_equal "(a+b)+c = a+(b+c)"
      (Sprof.merge (Sprof.merge a b) c)
      (Sprof.merge a (Sprof.merge b c))
  done

let test_merge_empty_identity () =
  Alcotest.(check bool) "empty is empty" true (Sprof.is_empty Sprof.empty);
  for i = 0 to 9 do
    let a = gen_sprof (Printf.sprintf "i%d" i) in
    check_rows_equal "empty + a = a" (Sprof.merge Sprof.empty a) a;
    check_rows_equal "a + empty = a" (Sprof.merge a Sprof.empty) a;
    Alcotest.(check bool)
      "identity keeps provenance" true
      ((Sprof.merge Sprof.empty a).Sprof.sources = a.Sprof.sources)
  done

let test_merge_weighted () =
  let a = gen_sprof "w" in
  let doubled = Sprof.merge ~weight:2.0 Sprof.empty a in
  Alcotest.(check bool)
    "weight scales total mass" true
    (close (Sprof.total_mass doubled) (2.0 *. Sprof.total_mass a));
  (match doubled.Sprof.sources with
  | [ s ] ->
      Alcotest.(check bool) "weight recorded in provenance" true
        (close s.Sprof.weight 2.0)
  | _ -> Alcotest.fail "expected one source");
  (match Sprof.merge ~weight:(-1.0) a a with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative weight must be rejected");
  (* The exact-profile merge obeys the same algebra (int64 counts, so
     equality is exact). *)
  let counts tag =
    let h = Hashtbl.create 8 in
    for i = 0 to 7 do
      Hashtbl.replace h (tag, i) (Int64.of_int ((i + 1) * 100))
    done;
    Profile.of_block_counts h
  in
  let p = counts "p" and q = counts "q" in
  let assoc t = List.sort compare (Profile.fold (fun k v acc -> (k, v) :: acc) t []) in
  Alcotest.(check bool) "Profile.merge commutative" true
    (assoc (Profile.merge p q) = assoc (Profile.merge q p));
  Alcotest.(check bool) "Profile.empty identity" true
    (assoc (Profile.merge Profile.empty p) = assoc p);
  Alcotest.(check bool) "Profile.merge weight scales" true
    (assoc (Profile.merge ~weight:3.0 Profile.empty p)
    = List.map (fun (k, v) -> (k, Int64.mul 3L v)) (assoc p));
  match Profile.merge ~weight:(-0.5) p q with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "Profile.merge negative weight must be rejected"

(* ---------------- PSDPROF framing ---------------- *)

let test_save_load_roundtrip () =
  let a = gen_sprof "rt" in
  with_temp (fun path ->
      Sprof.save a path;
      let loaded = Sprof.load path in
      check_rows_equal "round-trip" a loaded;
      Alcotest.(check bool) "provenance round-trips" true
        (a.Sprof.sources = loaded.Sprof.sources);
      (* Saving equal contents is byte-stable (rows are written sorted). *)
      let first = read_file path in
      Sprof.save loaded path;
      Alcotest.(check string) "byte-stable" first (read_file path))

let test_load_bad_magic () =
  with_temp (fun path ->
      write_file path "NOTAPROFILE-PADDING-PADDING-PADDING-PADDING";
      expect_failure ~substring:"magic" (fun () -> Sprof.load path))

let test_load_truncated () =
  let a = gen_sprof "tr" in
  with_temp (fun path ->
      Sprof.save a path;
      let contents = read_file path in
      write_file path (String.sub contents 0 (String.length contents / 2));
      expect_failure ~substring:"" (fun () -> Sprof.load path);
      (* A cut just past the 7-byte magic is reported as truncation. *)
      write_file path (String.sub contents 0 8);
      expect_failure ~substring:"truncated" (fun () -> Sprof.load path))

let test_load_corrupted () =
  let a = gen_sprof "co" in
  with_temp (fun path ->
      Sprof.save a path;
      let contents = Bytes.of_string (read_file path) in
      let pos = Bytes.length contents / 2 in
      Bytes.set contents pos
        (Char.chr (Char.code (Bytes.get contents pos) lxor 0xFF));
      write_file path (Bytes.to_string contents);
      expect_failure ~substring:"corrupt" (fun () -> Sprof.load path))

let test_load_version_skew () =
  with_temp (fun path ->
      Frame.write ~magic:"PSDPROF" ~version:99
        ~payload:(Marshal.to_string (gen_sprof "v") [])
        path;
      expect_failure ~substring:"version" (fun () -> Sprof.load path))

let test_load_bad_payload () =
  with_temp (fun path ->
      Frame.write ~magic:"PSDPROF" ~version:1 ~payload:"not a marshaled record"
        path;
      expect_failure ~substring:"bad payload" (fun () -> Sprof.load path))

let test_load_wrong_kind () =
  (* An object file is a valid frame of the wrong kind. *)
  with_temp (fun path ->
      let c = Driver.compile ~name:"wrong-kind" "int main() { return 1; }" in
      Objfile.save
        {
          Objfile.uname = "wrong-kind";
          funcs = c.Driver.objects;
          globals = c.Driver.modul.Ir.globals;
        }
        path;
      expect_failure ~substring:"magic" (fun () -> Sprof.load path))

(* ---------------- sampled vs exact, through diversification ------- *)

let overlap_floor = 90.0

(* The exact comparator in the same units as sampling: per-block cycle
   attribution from a simulated run's exec profile, aggregated through
   the same layout tables the sampler back-maps through. *)
let exact_cycle_profile image (r : Sim.result) =
  let prof = Simprof.of_result image r in
  let counts = Hashtbl.create 64 in
  List.iter
    (fun (f : Simprof.func_row) ->
      if not f.Simprof.in_runtime then
        List.iter
          (fun (b : Simprof.block_row) ->
            if b.Simprof.b_cycles >= 1.0 then
              Hashtbl.replace counts
                (f.Simprof.fname, b.Simprof.label)
                (Int64.of_float b.Simprof.b_cycles))
          f.Simprof.blocks)
    prof.Simprof.rows;
  Profile.of_block_counts counts

(* Sampled profiles of diversified binaries, back-mapped through the
   diversified image's own layout tables, must agree with the same run's
   exact cycle attribution on hot-set identity: >= 90% weighted hot-set
   overlap at small periods, across workloads x configs x versions. *)
let test_sampled_vs_exact_hot_set () =
  let workloads = [ "429.mcf"; "470.lbm"; "456.hmmer" ] in
  let configs = [ "p25-50"; "p0-30" ] in
  List.iter
    (fun wname ->
      let w = Workloads.find wname in
      let c = Driver.compile_cached ~name:w.Workload.name w.Workload.source in
      let train = Driver.train c ~args:w.Workload.train_args in
      List.iter
        (fun cname ->
          let config = List.assoc cname Config.paper_configs in
          List.iter
            (fun version ->
              let image, _ =
                Driver.diversify_linked c ~config ~profile:train ~version
              in
              (* One run, profiled both ways. *)
              let r =
                Driver.run_image ~profile:true ~sample_period:101 image
                  ~args:w.Workload.train_args
              in
              let sp =
                Sprof.of_run ~image ~config:cname
                  ~workload:w.Workload.name r
              in
              let samples =
                (Option.get r.Sim.sample_profile).Sim.samples_taken
              in
              Alcotest.(check bool)
                (Printf.sprintf "%s/%s v%d sampled something" wname cname
                   version)
                true
                (Int64.compare samples 0L > 0 && Sprof.total_mass sp > 0.0);
              let exact = exact_cycle_profile image r in
              let s = Sprof.staleness ~fresh:exact sp in
              Alcotest.(check bool)
                (Printf.sprintf "%s/%s v%d hot overlap %.1f%% >= %.0f%%" wname
                   cname version s.Sprof.hot_overlap_pct overlap_floor)
                true
                (s.Sprof.hot_overlap_pct >= overlap_floor))
            [ 0; 1 ])
        configs)
    workloads

(* The round trip on the full suite: for each of the 19 workloads, a
   sampled profile recorded on a diversified binary agrees with the
   baseline (undiversified) binary's exact cycle profile on hot-block
   identity — block labels survive diversification, so the comparison is
   cross-variant by construction. *)
let test_roundtrip_all_workloads () =
  let config = List.assoc "p25-50" Config.paper_configs in
  List.iter
    (fun (w : Workload.t) ->
      let c = Driver.compile_cached ~name:w.Workload.name w.Workload.source in
      let train = Driver.train c ~args:w.Workload.train_args in
      let baseline = Driver.link_baseline_cached c in
      let rb =
        Driver.run_image ~profile:true baseline ~args:w.Workload.train_args
      in
      let exact = exact_cycle_profile baseline rb in
      let image, _ =
        Driver.diversify_linked c ~config ~profile:train ~version:0
      in
      let sp, _ =
        Driver.record_profile ~sample_period:211 ~config:"p25-50" image
          ~workload:w.Workload.name ~args:w.Workload.train_args
      in
      let s = Sprof.staleness ~fresh:exact sp in
      Alcotest.(check bool)
        (Printf.sprintf "%s hot overlap %.1f%% >= %.0f%% (coverage %.1f%%)"
           w.Workload.name s.Sprof.hot_overlap_pct overlap_floor
           s.Sprof.coverage_pct)
        true
        (s.Sprof.hot_overlap_pct >= overlap_floor);
      Alcotest.(check bool)
        (w.Workload.name ^ " covers some blocks")
        true
        (s.Sprof.coverage_pct > 0.0))
    Workloads.all

let suite =
  [
    ( "pgo",
      [
        Alcotest.test_case "merge commutative" `Quick test_merge_commutative;
        Alcotest.test_case "merge associative" `Quick test_merge_associative;
        Alcotest.test_case "merge empty identity" `Quick
          test_merge_empty_identity;
        Alcotest.test_case "merge weighted" `Quick test_merge_weighted;
        Alcotest.test_case "psdprof round-trip" `Quick test_save_load_roundtrip;
        Alcotest.test_case "psdprof bad magic" `Quick test_load_bad_magic;
        Alcotest.test_case "psdprof truncated" `Quick test_load_truncated;
        Alcotest.test_case "psdprof corrupted" `Quick test_load_corrupted;
        Alcotest.test_case "psdprof version skew" `Quick test_load_version_skew;
        Alcotest.test_case "psdprof bad payload" `Quick test_load_bad_payload;
        Alcotest.test_case "psdprof wrong kind" `Quick test_load_wrong_kind;
        Alcotest.test_case "sampled vs exact hot set (workloads x configs)"
          `Slow test_sampled_vs_exact_hot_set;
        Alcotest.test_case "diversified round-trip (19 workloads)" `Slow
          test_roundtrip_all_workloads;
      ] );
  ]
