(* CI serve smoke: the variant-serving daemon end to end, asserted.

   Fork one daemon (cold caches, -j 2), replay a seeded 8-request trace
   twice from this process, and hold the daemon to its contract:

     - every digest equals the serial in-process oracle's (checked on
       the second pass, with image payloads decoded and re-hashed);
     - the second (warm) pass reports exactly zero lowering runs;
     - warm digests are byte-identical to cold digests;
     - nothing is shed and nothing errors at this load.

   Exits 1 (failing the CI job) on any violation, and writes the
   replay/shard statistics as a JSON artifact for upload. *)

let failures = ref 0

let check what ok detail =
  Printf.printf "%s %s%s\n"
    (if ok then "ok  " else "FAIL")
    what
    (if detail = "" then "" else ": " ^ detail);
  if not ok then incr failures

let () =
  let out = ref "BENCH_serve_smoke.json" in
  let workloads = ref "429.mcf,470.lbm" in
  let specs =
    [
      ("--out", Arg.Set_string out, "FILE  write replay statistics JSON");
      ("--workloads", Arg.Set_string workloads, "NAMES  trace workload pool");
    ]
  in
  Arg.parse specs
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "serve_smoke [--out FILE] [--workloads NAMES]";

  let socket =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "psd-serve-smoke-%d.sock" (Unix.getpid ()))
  in
  let addr = Sdaemon.Unix_sock socket in
  flush stdout;
  let pid =
    match Unix.fork () with
    | 0 ->
        let code =
          try
            Driver.clear_caches ();
            Sdaemon.run
              { (Sdaemon.default_cfg addr) with Sdaemon.jobs = Pool.Jobs 2 };
            0
          with _ -> 1
        in
        Unix._exit code
    | pid -> pid
  in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
      ignore (Unix.waitpid [] pid))
    (fun () ->
      let reqs =
        Sclient.trace ~seed:2026L
          ~workloads:
            (List.filter
               (fun s -> s <> "")
               (List.map String.trim (String.split_on_char ',' !workloads)))
          ~config:"p0-30" ~requests:8 ~versions_per_request:5
          ~version_space:40 ~want_images:true
      in
      let fd = Sclient.connect ~retry_for:20.0 addr in
      let cold_digests = ref [] in
      let cold =
        Sclient.replay
          ~on_built:(fun b ->
            List.iter
              (fun (v : Sproto.variant) ->
                cold_digests := v.Sproto.digest :: !cold_digests)
              b.Sproto.variants)
          fd reqs
      in
      let warm_digests = ref [] in
      let warm =
        Sclient.replay ~verify:true
          ~on_built:(fun b ->
            List.iter
              (fun (v : Sproto.variant) ->
                warm_digests := v.Sproto.digest :: !warm_digests)
              b.Sproto.variants)
          fd reqs
      in
      let stats = Sclient.stats fd in
      Sclient.shutdown fd;
      Unix.close fd;

      Printf.printf "serve smoke: %d requests x2, %d variants per pass\n"
        cold.Sclient.requests cold.Sclient.variants;
      check "all cold requests built"
        (cold.Sclient.built = List.length reqs
        && cold.Sclient.shed = 0 && cold.Sclient.errors = 0)
        (Printf.sprintf "built %d, shed %d, errors %d" cold.Sclient.built
           cold.Sclient.shed cold.Sclient.errors);
      check "cold pass lowered something" (cold.Sclient.lowering_runs > 0)
        (string_of_int cold.Sclient.lowering_runs);
      check "warm pass lowered nothing" (warm.Sclient.lowering_runs = 0)
        (string_of_int warm.Sclient.lowering_runs);
      check "warm digests byte-identical to cold"
        (!cold_digests = !warm_digests)
        "";
      check "digests match the serial oracle"
        (warm.Sclient.digest_mismatches = 0)
        (Printf.sprintf "%d mismatch(es)" warm.Sclient.digest_mismatches);
      let shards_used =
        List.length
          (List.filter
             (fun (s : Store.shard_stats) -> s.Store.entries > 0)
             stats.Sproto.shards)
      in
      check "store sharded across > 1 shard" (shards_used > 1)
        (string_of_int shards_used);

      let j =
        Jsonw.Obj
          [
            ("schema", Jsonw.Str "psd-serve-smoke/1");
            ("workloads", Jsonw.Str !workloads);
            ("requests", Jsonw.int cold.Sclient.requests);
            ( "cold",
              Jsonw.Obj
                [
                  ("wall_s", Jsonw.Float cold.Sclient.wall_s);
                  ("variants", Jsonw.int cold.Sclient.variants);
                  ("lowering_runs", Jsonw.int cold.Sclient.lowering_runs);
                ] );
            ( "warm",
              Jsonw.Obj
                [
                  ("wall_s", Jsonw.Float warm.Sclient.wall_s);
                  ("variants", Jsonw.int warm.Sclient.variants);
                  ("lowering_runs", Jsonw.int warm.Sclient.lowering_runs);
                ] );
            ("digest_mismatches", Jsonw.int warm.Sclient.digest_mismatches);
            ("shards_used", Jsonw.int shards_used);
            ( "daemon",
              Jsonw.Obj
                [
                  ("requests", Jsonw.Int stats.Sproto.requests);
                  ("built_variants", Jsonw.Int stats.Sproto.built_variants);
                  ("shed", Jsonw.Int stats.Sproto.shed);
                  ("errors", Jsonw.Int stats.Sproto.errors);
                ] );
            ("ok", Jsonw.Bool (!failures = 0));
          ]
      in
      let oc = open_out !out in
      Jsonw.to_channel oc j;
      output_char oc '\n';
      close_out oc;
      Printf.printf "serve smoke stats written to %s\n" !out;
      if !failures > 0 then exit 1)
