(* Every workload must compile, run on its training input, and behave
   identically under the reference interpreter and the CPU simulator.
   (The heavier ref inputs are exercised by the benchmark harness.) *)

let check_workload (w : Workload.t) () =
  let c = Driver.compile ~name:w.name w.source in
  let ir = Driver.run_ir c ~args:w.train_args in
  let image = Driver.link_baseline c in
  let native = Driver.run_image image ~args:w.train_args in
  Alcotest.(check string) "output matches" ir.Interp.output native.Sim.output;
  Alcotest.(check int32) "status matches" ir.Interp.ret native.Sim.status;
  (* A training run must actually exercise hot code: the profile needs a
     skewed distribution for the paper's technique to matter. *)
  let profile = Profile.of_block_counts ir.Interp.counts.blocks in
  Alcotest.(check bool) "profile has hot blocks" true
    (Profile.max_count profile > 50L);
  (* Every workload prints something (its checksum). *)
  Alcotest.(check bool) "produces output" true
    (String.length ir.Interp.output > 0)

let check_distinct_inputs (w : Workload.t) () =
  (* train and ref must be different workloads (different size or seed) —
     profiling on the measurement input would be cheating. *)
  Alcotest.(check bool) "train <> ref" true (w.train_args <> w.ref_args)

let check_diversified_still_correct (w : Workload.t) () =
  let c = Driver.compile ~name:w.name w.source in
  let profile = Driver.train c ~args:w.train_args in
  let base = Driver.run_image (Driver.link_baseline c) ~args:w.train_args in
  let config = Config.profiled ~pmin:0.0 ~pmax:0.30 () in
  let image, _ = Driver.diversify c ~config ~profile ~version:0 in
  let r = Driver.run_image image ~args:w.train_args in
  Alcotest.(check string) "diversified output" base.Sim.output r.Sim.output

let php_program_cases =
  List.map
    (fun (p : Phpvm.profile_program) ->
      Alcotest.test_case p.prog_name `Quick (fun () ->
          let w = Workloads.phpvm in
          let c = Driver.compile ~name:w.name w.source in
          let args = [ p.prog_id; p.train_n ] in
          let ir = Driver.run_ir c ~args in
          let native = Driver.run_image (Driver.link_baseline c) ~args in
          Alcotest.(check string) "output" ir.Interp.output native.Sim.output;
          (* The VM must do real work: its step counter is printed as the
             second number. *)
          match String.split_on_char '\n' (String.trim ir.Interp.output) with
          | [ _checksum; steps ] ->
              Alcotest.(check bool) "enough VM steps" true
                (int_of_string steps > 500)
          | _ -> Alcotest.fail "unexpected phpvm output shape"))
    Workloads.php_profiles

let check_opt_differential (w : Workload.t) () =
  (* Optimization must preserve behaviour on every suite program: O0 and
     O2 (the latter with per-pass IR verification on) must produce
     identical simulator output and exit codes, and the standard
     sequence spelled out as a --passes pipeline must reproduce the
     default O2 binary bit for bit. *)
  let c0 = Driver.compile ~opt:Pipeline.O0 ~name:w.name w.source in
  let c2 = Driver.compile ~verify_each:true ~name:w.name w.source in
  let custom =
    match
      Pipeline.descr_of_string "simplify-cfg,constfold,copyprop,cse,dce"
    with
    | Ok d -> d
    | Error e -> Alcotest.fail e
  in
  let cp =
    Driver.compile ~passes:custom ~verify_each:true ~name:w.name w.source
  in
  let r0 = Driver.run_image (Driver.link_baseline c0) ~args:w.train_args in
  let r2 = Driver.run_image (Driver.link_baseline c2) ~args:w.train_args in
  Alcotest.(check string) "O0/O2 simulator output" r0.Sim.output r2.Sim.output;
  Alcotest.(check int32) "O0/O2 exit status" r0.Sim.status r2.Sim.status;
  Alcotest.(check bool) "custom pipeline reproduces the O2 binary" true
    ((Driver.link_baseline cp).Link.text
    = (Driver.link_baseline c2).Link.text)

let test_find () =
  Alcotest.(check string) "full name" "473.astar"
    (Workloads.find "473.astar").Workload.name;
  Alcotest.(check string) "suffix" "473.astar"
    (Workloads.find "astar").Workload.name;
  Alcotest.(check int) "nineteen benchmarks" 19 (List.length Workloads.all);
  match Workloads.find "no-such-benchmark" with
  | exception Not_found -> ()
  | _ -> Alcotest.fail "expected Not_found"

let suite =
  [
    ( "workloads.train",
      List.map
        (fun (w : Workload.t) ->
          Alcotest.test_case w.name `Quick (check_workload w))
        Workloads.all );
    ( "workloads.inputs",
      List.map
        (fun (w : Workload.t) ->
          Alcotest.test_case w.name `Quick (check_distinct_inputs w))
        Workloads.all );
    ( "workloads.diversified",
      List.map
        (fun (w : Workload.t) ->
          Alcotest.test_case w.name `Quick (check_diversified_still_correct w))
        (* the three cheapest cover the property without slowing the suite *)
        [ Workloads.find "mcf"; Workloads.find "lbm"; Workloads.find "astar" ] );
    ( "workloads.opt-differential",
      List.map
        (fun (w : Workload.t) ->
          Alcotest.test_case w.name `Quick (check_opt_differential w))
        Workloads.all );
    ("workloads.phpvm", php_program_cases);
    ("workloads.registry", [ Alcotest.test_case "find" `Quick test_find ]);
  ]
