(* The block-cached engine's differential test wall.

   The block engine (Bsim) re-implements the simulator's semantics for
   speed, so every observable it produces is checked against the
   fetch-decode interpreter — the oracle — over:

   - the full workload grid: 19 workloads × (baseline + 5 paper configs
     × 3 seeds), each run with the execution-profile hook on and cycle
     sampling at a deliberately odd period (101), comparing status,
     output, retired instructions and NOPs, icache misses, cycles bit
     for bit, all three exec_profile arrays, the sample_profile, and
     the back-mapped Sprof recording byte for byte;
   - trap parity: every corpus regression program at O0 and O2 under
     both engines — same fault message, and the same partial counters
     (cycles included) at the faulting instruction;
   - the fuel limit: both engines fault at exactly the same retired
     instruction, with identical partial tuples;
   - gadget entry (run_at): both engines agree from arbitrary text
     offsets, where execution never saw a function prologue;
   - the decode memo: owned by the shared block cache, physically one
     array across repeated runs of the same image. *)

let sample_period = 101
let seeds = [ 0; 1; 2 ]

(* ---------------- full-tuple equality ---------------- *)

let bits = Int64.bits_of_float

let check_floats_equal what a b =
  if bits a <> bits b then
    Alcotest.failf "%s: %h vs %h (not bit-identical)" what a b

let check_float_array what (a : float array) (b : float array) =
  Alcotest.(check int) (what ^ " length") (Array.length a) (Array.length b);
  Array.iteri
    (fun i x -> check_floats_equal (Printf.sprintf "%s.(%d)" what i) x b.(i))
    a

let check_exec_profile what (a : Sim.exec_profile option)
    (b : Sim.exec_profile option) =
  match (a, b) with
  | None, None -> ()
  | Some a, Some b ->
      Alcotest.(check bool)
        (what ^ " insn_counts") true
        (a.Sim.insn_counts = b.Sim.insn_counts);
      Alcotest.(check bool)
        (what ^ " nop_counts") true
        (a.Sim.nop_counts = b.Sim.nop_counts);
      check_float_array (what ^ " cycle_counts") a.Sim.cycle_counts
        b.Sim.cycle_counts
  | _ -> Alcotest.failf "%s: exec_profile presence differs" what

let check_sample_profile what (a : Sim.sample_profile option)
    (b : Sim.sample_profile option) =
  match (a, b) with
  | None, None -> ()
  | Some a, Some b ->
      check_floats_equal (what ^ " period") a.Sim.period b.Sim.period;
      Alcotest.(check bool)
        (what ^ " sample_counts") true
        (a.Sim.sample_counts = b.Sim.sample_counts);
      Alcotest.(check int64)
        (what ^ " samples_taken") a.Sim.samples_taken b.Sim.samples_taken;
      check_floats_equal
        (what ^ " sample_overhead_cycles")
        a.Sim.sample_overhead_cycles b.Sim.sample_overhead_cycles
  | _ -> Alcotest.failf "%s: sample_profile presence differs" what

(* Interp result [i] vs block result [b]: everything must match. *)
let check_results_equal what (i : Sim.result) (b : Sim.result) =
  Alcotest.(check int32) (what ^ " status") i.Sim.status b.Sim.status;
  Alcotest.(check string) (what ^ " output") i.Sim.output b.Sim.output;
  Alcotest.(check int64)
    (what ^ " instructions") i.Sim.instructions b.Sim.instructions;
  Alcotest.(check int64)
    (what ^ " nops_retired") i.Sim.nops_retired b.Sim.nops_retired;
  Alcotest.(check int64)
    (what ^ " icache_misses") i.Sim.icache_misses b.Sim.icache_misses;
  check_floats_equal (what ^ " cycles") i.Sim.cycles b.Sim.cycles;
  check_exec_profile (what ^ " exec_profile") i.Sim.exec_profile
    b.Sim.exec_profile;
  check_sample_profile (what ^ " sample_profile") i.Sim.sample_profile
    b.Sim.sample_profile

let check_outcomes_equal what (i : Sim.outcome) (b : Sim.outcome) =
  match (i, b) with
  | Sim.Finished ri, Sim.Finished rb -> check_results_equal what ri rb
  | Sim.Faulted fi, Sim.Faulted fb ->
      Alcotest.(check string)
        (what ^ " fault message") fi.fault_msg fb.fault_msg;
      check_results_equal (what ^ " partial") fi.partial fb.partial
  | Sim.Finished _, Sim.Faulted f ->
      Alcotest.failf "%s: block engine faulted (%s), interp finished" what
        f.fault_msg
  | Sim.Faulted f, Sim.Finished _ ->
      Alcotest.failf "%s: interp faulted (%s), block engine finished" what
        f.fault_msg

(* ---------------- the workload equivalence grid ---------------- *)

let prepared (w : Workload.t) =
  let c = Driver.compile_cached ~name:w.Workload.name w.Workload.source in
  (c, Driver.link_baseline_cached c)

let test_workload_grid (w : Workload.t) () =
  let c, baseline = prepared w in
  let profile = Driver.train_cached c ~args:w.Workload.train_args in
  let images =
    ("baseline", baseline)
    :: List.concat_map
         (fun (cname, config) ->
           List.map
             (fun version ->
               ( Printf.sprintf "%s/v%d" cname version,
                 fst (Driver.diversify_linked c ~config ~profile ~version) ))
             seeds)
         Config.paper_configs
  in
  List.iter
    (fun (label, image) ->
      let what = w.Workload.name ^ "/" ^ label in
      let run engine =
        Sim.run ~engine ~profile:true ~sample_period image
          ~args:w.Workload.train_args
      in
      let ri = run Sim.Interp in
      let rb = run Sim.Block in
      check_results_equal what ri rb;
      (* The production recording built from each run must also be
         byte-identical — the whole PGO loop sits on top of it. *)
      let sprof r =
        Sprof.to_json (Sprof.of_run ~image ~workload:w.Workload.name r)
      in
      Alcotest.(check string) (what ^ " sprof json") (sprof ri) (sprof rb))
    images

(* ---------------- trap parity over the corpus ---------------- *)

let corpus_dir () =
  if Sys.file_exists "corpus" then "corpus" else Filename.concat "test" "corpus"

let corpus_files () =
  Sys.readdir (corpus_dir ())
  |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".mc")
  |> List.sort compare

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let trap_fuel = 3_000_000L

let test_corpus_trap_parity () =
  let faulted = ref 0 in
  List.iter
    (fun file ->
      let src = read_file (Filename.concat (corpus_dir ()) file) in
      let args = Fuzz.parse_args_header src in
      List.iter
        (fun level ->
          let c = Driver.compile ~opt:level ~name:file src in
          let image = Driver.link_baseline c in
          let run engine =
            Sim.run_outcome ~engine ~fuel:trap_fuel ~profile:true image ~args
          in
          let oi = run Sim.Interp in
          let ob = run Sim.Block in
          (match oi with Sim.Faulted _ -> incr faulted | _ -> ());
          check_outcomes_equal
            (Printf.sprintf "%s@%s" file (Oracle.level_name level))
            oi ob)
        [ Pipeline.O0; Pipeline.O2 ])
    (corpus_files ());
  (* The point of the corpus is that several of these *do* trap
     mid-block — make sure the parity check above actually exercised
     the fault path. *)
  Alcotest.(check bool)
    (Printf.sprintf "corpus exercised faults (%d)" !faulted)
    true (!faulted >= 4)

(* ---------------- fuel exhaustion fires at the same point -------- *)

let test_fuel_exhaustion_parity () =
  let w = Workloads.find "470.lbm" in
  let _, baseline = prepared w in
  let full =
    Sim.run ~engine:Sim.Interp baseline ~args:w.Workload.train_args
  in
  let fuel = Int64.div full.Sim.instructions 2L in
  let run engine =
    Sim.run_outcome ~engine ~fuel ~profile:true baseline
      ~args:w.Workload.train_args
  in
  let oi = run Sim.Interp in
  let ob = run Sim.Block in
  check_outcomes_equal "fuel exhaustion" oi ob;
  match oi with
  | Sim.Faulted { fault_msg; partial } ->
      Alcotest.(check string) "fuel fault message" "fuel exhausted" fault_msg;
      (* The fault fires while retiring instruction fuel+1: the counter
         has already been bumped past the limit, the instruction's own
         cost has not been charged. *)
      Alcotest.(check int64)
        "fault at exactly fuel+1 retired" (Int64.add fuel 1L)
        partial.Sim.instructions
  | Sim.Finished _ -> Alcotest.fail "expected fuel exhaustion"

(* ---------------- gadget entry: run_at parity ---------------- *)

let test_run_at_parity () =
  let w = Workloads.find "429.mcf" in
  let _, baseline = prepared w in
  let tlen = String.length baseline.Link.text in
  (* A spread of entry offsets across .text — mostly instruction
     middles, exactly the off-manifold entries ROP uses.  Fuel-bounded:
     an entry that reaches the main loop would otherwise run the whole
     program twice per offset. *)
  let offsets = List.init 64 (fun i -> i * (tlen - 1) / 63) in
  List.iter
    (fun start_offset ->
      let run engine =
        Sim.run_at_outcome ~engine ~fuel:50_000L
          ~stack_image:[ 0x20l; 0x40l; 0x60l ] baseline ~start_offset
      in
      check_outcomes_equal
        (Printf.sprintf "run_at offset %d" start_offset)
        (run Sim.Interp) (run Sim.Block))
    offsets

(* ---------------- decode memo ownership ---------------- *)

let test_decode_memo_shared () =
  let w = Workloads.find "470.lbm" in
  let _, baseline = prepared w in
  let d1 = Bsim.decoded (Bsim.cache_for baseline Timing.default) in
  let d2 = Bsim.decoded (Bsim.cache_for baseline Timing.default) in
  Alcotest.(check bool) "decode memo physically shared" true (d1 == d2);
  (* And a fresh run through the public API keeps using it (no per-run
     rebuild): the cache is keyed on text digest, so re-linking the same
     program still hits. *)
  let (_ : Sim.result) =
    Sim.run ~engine:Sim.Interp baseline ~args:w.Workload.train_args
  in
  let d3 = Bsim.decoded (Bsim.cache_for baseline Timing.default) in
  Alcotest.(check bool) "still the same array after a run" true (d1 == d3)

(* ---------------- determinism of the block engine ---------------- *)

let test_block_rerun_deterministic () =
  let w = Workloads.find "473.astar" in
  let _, baseline = prepared w in
  let run () =
    Sim.run ~engine:Sim.Block ~profile:true ~sample_period baseline
      ~args:w.Workload.train_args
  in
  check_results_equal "block re-run" (run ()) (run ())

let suite =
  [
    ( "sim_engine.traps",
      [
        Alcotest.test_case "corpus trap parity" `Quick
          test_corpus_trap_parity;
        Alcotest.test_case "fuel exhaustion parity" `Quick
          test_fuel_exhaustion_parity;
        Alcotest.test_case "run_at parity" `Quick test_run_at_parity;
        Alcotest.test_case "decode memo shared" `Quick
          test_decode_memo_shared;
        Alcotest.test_case "block re-run deterministic" `Quick
          test_block_rerun_deterministic;
      ] );
    ( "sim_engine.grid",
      List.map
        (fun (w : Workload.t) ->
          Alcotest.test_case w.Workload.name `Slow (test_workload_grid w))
        Workloads.all );
  ]
