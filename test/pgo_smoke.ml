(* CI PGO smoke: the production profiling loop end to end on two
   workloads.  Diversify, record sampled profiles of the diversified
   binary on both inputs, persist them in the PSDPROF on-disk format,
   reload and merge the recordings, retrain, re-diversify — then assert
   the loop is at a fixed point: a recording of the retrained binary
   does not materially drift from its own training profile, so the
   drift gate keeps it and the redeployed image is byte-identical.
   Exits 1 (failing the CI job) on any violation, and leaves the
   .psdprof recordings plus a JSON summary behind as CI artifacts. *)

let counter name = Metrics.counter_value (Metrics.counter name)
let failures = ref 0

let check what ok =
  Printf.printf "%s %s\n" (if ok then "ok  " else "FAIL") what;
  if not ok then incr failures

let smoke_config = "p25-50"

let run_workload ~profile_dir wname =
  let w = Workloads.find wname in
  let c = Driver.compile_cached ~name:w.Workload.name w.Workload.source in
  let fresh = Driver.train c ~args:w.Workload.train_args in
  let config = List.assoc smoke_config Config.paper_configs in
  let diversify profile =
    fst (Driver.diversify_linked c ~config ~profile ~version:0)
  in
  let record image args =
    fst
      (Driver.record_profile ~config:smoke_config image
         ~workload:w.Workload.name ~args)
  in
  (* Deploy, record production profiles on both inputs, persist them. *)
  let image0 = diversify fresh in
  let path tag = Filename.concat profile_dir (wname ^ "." ^ tag ^ ".psdprof") in
  Sprof.save (record image0 w.Workload.train_args) (path "train");
  Sprof.save (record image0 w.Workload.ref_args) (path "ref");
  (* Reload from disk and merge — the full format round-trip. *)
  let merged = Sprof.merge (Sprof.load (path "train")) (Sprof.load (path "ref")) in
  check
    (wname ^ ": merged recording has sampled mass")
    (Sprof.total_mass merged > 0.0 && List.length merged.Sprof.sources = 2);
  (* Retrain and re-diversify from the sampled profile. *)
  let profile = Driver.train_from_profile ~fresh c merged in
  let image1 = diversify profile in
  let baseline = Driver.link_baseline_cached c in
  let r_base = Driver.run_image baseline ~args:w.Workload.ref_args in
  let r1 = Driver.run_image image1 ~args:w.Workload.ref_args in
  check
    (wname ^ ": retrained binary output matches baseline")
    (r1.Sim.output = r_base.Sim.output);
  (* One more turn of the loop: the retrained binary's own recording
     must not materially drift from its training profile, so the drift
     gate keeps it and the loop is at a byte-level fixed point. *)
  let kept0 = counter "pgo.retrain.kept" in
  let merged1 =
    Sprof.merge (record image1 w.Workload.train_args)
      (record image1 w.Workload.ref_args)
  in
  let profile1 = Driver.train_from_profile ~previous:profile c merged1 in
  let image2 = diversify profile1 in
  check
    (wname ^ ": drift gate kept the deployed profile")
    (Int64.sub (counter "pgo.retrain.kept") kept0 = 1L);
  check
    (wname ^ ": loop at byte-level fixed point")
    (String.equal image2.Link.text image1.Link.text);
  let s = Sprof.staleness ~fresh merged in
  Printf.printf "     %s: %Ld samples, %d rows, coverage %.1f%%, hot overlap \
                 %.1f%%\n"
    wname
    (List.fold_left
       (fun acc (src : Sprof.source) -> Int64.add acc src.Sprof.samples)
       0L merged.Sprof.sources)
    (Hashtbl.length merged.Sprof.rows)
    s.Sprof.coverage_pct s.Sprof.hot_overlap_pct;
  Jsonw.Obj
    [
      ("workload", Jsonw.Str wname);
      ("config", Jsonw.Str smoke_config);
      ("rows", Jsonw.int (Hashtbl.length merged.Sprof.rows));
      ("coverage_pct", Jsonw.Float s.Sprof.coverage_pct);
      ("hot_overlap_pct", Jsonw.Float s.Sprof.hot_overlap_pct);
      ("mean_drift_pct", Jsonw.Float s.Sprof.mean_drift_pct);
      ("fixed_point", Jsonw.Bool (String.equal image2.Link.text image1.Link.text));
    ]

let () =
  let out = ref "pgo_smoke.json" in
  let profile_dir = ref "." in
  let specs =
    [
      ("--out", Arg.Set_string out, "FILE  write the JSON summary");
      ( "--profile-dir",
        Arg.Set_string profile_dir,
        "DIR  where to leave the .psdprof recordings" );
    ]
  in
  Arg.parse specs
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "pgo_smoke [--out FILE] [--profile-dir DIR]";
  let rows =
    List.map (run_workload ~profile_dir:!profile_dir) [ "429.mcf"; "470.lbm" ]
  in
  let j =
    Jsonw.Obj
      [
        ("schema", Jsonw.Str "psd-pgo-smoke/1");
        ("sample_period", Jsonw.int Sim.default_sample_period);
        ("workloads", Jsonw.List rows);
        ("ok", Jsonw.Bool (!failures = 0));
      ]
  in
  let oc = open_out !out in
  Jsonw.to_channel oc j;
  output_char oc '\n';
  close_out oc;
  Printf.printf "pgo smoke summary written to %s\n" !out;
  if !failures > 0 then exit 1
