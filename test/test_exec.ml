(* The parallel pool: result ordering, failure containment, timeout
   kill, worker-crash containment, nested-use rejection — and the two
   determinism properties the whole subsystem exists to uphold: a
   parallel fuzz campaign equals the serial one byte-for-byte, and
   metrics merged from k workers equal a single-process run. *)

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let outcome_label = function
  | Pool.Done _ -> "done"
  | Pool.Failed _ -> "failed"
  | Pool.Crashed _ -> "crashed"
  | Pool.Timed_out -> "timed-out"

let labels outcomes = List.map outcome_label outcomes

let test_ordering () =
  (* Results come back in task order no matter which worker ran what. *)
  let tasks =
    List.init 17 (fun i () ->
        (* skew the per-task cost so strides finish out of phase *)
        let spin = ref 0 in
        for _ = 1 to (17 - i) * 10_000 do Stdlib.incr spin done;
        i * i)
  in
  let expect = List.init 17 (fun i -> Pool.Done (i * i)) in
  List.iter
    (fun jobs ->
      let got = Pool.run ~jobs tasks in
      Alcotest.(check bool)
        (Printf.sprintf "ordered at -j %s" (Pool.jobs_to_string jobs))
        true (got = expect))
    [ Pool.Jobs 1; Pool.Jobs 3; Pool.Jobs 4 ]

let test_failure_containment () =
  (* A raising task is a Failed result for that task alone. *)
  let tasks =
    List.init 6 (fun i () -> if i = 2 then failwith "task 2 blew up" else i)
  in
  let got = Pool.run ~jobs:(Pool.Jobs 2) tasks in
  Alcotest.(check (list string))
    "one failure, rest done"
    [ "done"; "done"; "failed"; "done"; "done"; "done" ]
    (labels got);
  match List.nth got 2 with
  | Pool.Failed msg ->
      Alcotest.(check bool) "failure message kept" true
        (contains ~needle:"task 2 blew up" msg)
  | _ -> Alcotest.fail "expected Failed"

let test_timeout () =
  if not Sys.unix then () (* kill-based timeouts are a unix feature *)
  else begin
    let deadline = Unix.gettimeofday () +. 20.0 in
    let tasks =
      [
        (fun () -> "quick");
        (fun () ->
          (* Allocation-heavy spin so the worker's SIGALRM lands;
             self-bounding so a broken timeout cannot hang the suite. *)
          while Unix.gettimeofday () < deadline do
            ignore (Sys.opaque_identity (ref 0))
          done;
          "slow");
        (fun () -> "quick2");
      ]
    in
    let got = Pool.run ~timeout_s:0.4 ~jobs:(Pool.Jobs 2) tasks in
    Alcotest.(check (list string))
      "slow task timed out" [ "done"; "timed-out"; "done" ] (labels got)
  end

let test_crash_containment () =
  if not Sys.unix then ()
  else begin
    (* Task 1 SIGKILLs its own worker.  Its stride-mates (3 and 5 at
       -j 2) must still complete on the replacement worker. *)
    let tasks =
      List.init 6 (fun i () ->
          if i = 1 then Unix.kill (Unix.getpid ()) Sys.sigkill;
          i + 100)
    in
    let got = Pool.run ~jobs:(Pool.Jobs 2) tasks in
    Alcotest.(check (list string))
      "crash contained to one task"
      [ "done"; "crashed"; "done"; "done"; "done"; "done" ]
      (labels got);
    Alcotest.(check bool)
      "stride-mates of the crashed task survived" true
      (List.nth got 3 = Pool.Done 103 && List.nth got 5 = Pool.Done 105)
  end

let test_nested_rejection () =
  (* Inside a task, Pool.run must be rejected — on every backend. *)
  List.iter
    (fun jobs ->
      let got =
        Pool.run ~jobs
          [
            (fun () -> Pool.run ~jobs:(Pool.Jobs 2) [ (fun () -> 0) ]);
            (fun () -> [ Pool.Done 1 ]);
          ]
      in
      (match List.hd got with
      | Pool.Failed msg ->
          Alcotest.(check bool)
            "nested rejection message" true (contains ~needle:"nested" msg)
      | o -> Alcotest.fail ("expected Failed, got " ^ outcome_label o));
      Alcotest.(check bool)
        "sibling task unaffected" true
        (List.nth got 1 = Pool.Done [ Pool.Done 1 ]))
    [ Pool.Jobs 1; Pool.Jobs 2 ];
  (* ... and a direct nested call (not via a task) raises. *)
  let direct =
    Pool.run ~jobs:(Pool.Jobs 1)
      [ (fun () -> (try ignore (Pool.run [ (fun () -> 0) ]); false with Pool.Nested -> true)) ]
  in
  match direct with
  | [ Pool.Done _ ] -> ()
  | _ -> Alcotest.fail "direct nested call should be caught as Nested"

(* ---- fuzz-campaign parity: Pool.run over the oracle at -j 4 equals
   the serial run byte-for-byte on 50 seeded programs ---- *)

let test_fuzz_parity () =
  let campaign jobs =
    Fuzz.run ~jobs ~shrink:true ~seed:77L ~count:50
      ~levels:[ Pipeline.O0; Pipeline.O2 ]
      ~versions:1 ()
  in
  let serial = campaign (Pool.Jobs 1) in
  let parallel = campaign (Pool.Jobs 4) in
  Alcotest.(check bool)
    "campaign records identical" true (serial = parallel);
  Alcotest.(check bool)
    "reproducers byte-identical" true
    (List.map Fuzz.reproducer serial.Fuzz.findings
    = List.map Fuzz.reproducer parallel.Fuzz.findings)

(* ---- metrics-merge property: counters/histograms merged back from k
   workers equal the single-process run over the same task set, on the
   telemetry measurement for 2 workloads ---- *)

let test_metrics_merge () =
  let ws = [ Workloads.find "429.mcf"; Workloads.find "470.lbm" ] in
  let configs = Config.paper_configs in
  (* Build the grid's tasks against pre-prepared artifacts, exactly like
     the bench suite: prepare in the parent, measure in the pool. *)
  let prepared =
    List.map
      (fun (w : Workload.t) ->
        let c = Driver.compile_cached ~name:w.name w.source in
        (w, c, Driver.train_cached c ~args:w.train_args))
      ws
  in
  let tasks =
    List.concat_map
      (fun (w, c, profile) ->
        List.map
          (fun (_, config) () ->
            let image, _ = Driver.diversify c ~config ~profile ~version:0 in
            (Driver.run_image image ~args:w.Workload.train_args).Sim.status)
          configs)
      prepared
  in
  let dump_under jobs =
    Metrics.reset ();
    let outcomes = Pool.run ~jobs tasks in
    List.iter
      (function
        | Pool.Done _ -> ()
        | o -> Alcotest.fail ("grid cell " ^ outcome_label o))
      outcomes;
    Metrics.dump_json ()
  in
  let serial = dump_under (Pool.Jobs 1) in
  let merged = dump_under (Pool.Jobs 3) in
  Metrics.reset ();
  Alcotest.(check string) "merged registry equals serial" serial merged

let test_snapshot_delta_merge () =
  (* Unit-level: delta captures exactly what happened after the base
     snapshot, and merge adds it back. *)
  Metrics.reset ();
  let c = Metrics.counter "exec.test.counter" in
  let h = Metrics.histogram "exec.test.hist" in
  Metrics.incr ~by:5L c;
  Metrics.observe h 1.0;
  let base = Metrics.snapshot () in
  Metrics.incr ~by:2L c;
  Metrics.observe h 2.0;
  Metrics.observe h 3.0;
  let d = Metrics.delta ~since:base in
  let after = Metrics.dump_json () in
  Metrics.merge d;
  Alcotest.(check int) "histogram grew by the delta" 5 (Metrics.histogram_count h);
  Alcotest.(check int64) "counter doubled its delta" 9L (Metrics.counter_value c);
  ignore after;
  Metrics.reset ()

let suite =
  [
    ( "exec",
      [
        Alcotest.test_case "pool result ordering" `Quick test_ordering;
        Alcotest.test_case "task failure containment" `Quick
          test_failure_containment;
        Alcotest.test_case "per-task timeout kill" `Quick test_timeout;
        Alcotest.test_case "worker-crash containment" `Quick
          test_crash_containment;
        Alcotest.test_case "nested-use rejection" `Quick test_nested_rejection;
        Alcotest.test_case "snapshot/delta/merge" `Quick
          test_snapshot_delta_merge;
        Alcotest.test_case "fuzz parallel == serial (50 programs)" `Slow
          test_fuzz_parity;
        Alcotest.test_case "metrics merge == single process" `Slow
          test_metrics_merge;
      ] );
  ]
