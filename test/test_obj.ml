(* The separate-compilation layer: object-format framing and round-trips,
   linker error paths, the content-addressed store's rebuild guarantees,
   and the equivalence suite pinning the object pipeline byte-identical
   to the seed whole-program linker across every workload × config ×
   seed. *)

let counter name = Metrics.counter_value (Metrics.counter name)

let compile ?(name = "obj-test") src = Driver.compile ~name src

let unit_of (c : Driver.compiled) =
  {
    Objfile.uname = c.Driver.name;
    funcs = c.Driver.objects;
    globals = c.Driver.modul.Ir.globals;
  }

let with_temp f =
  let path = Filename.temp_file "psd_obj" ".o" in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc s)

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  nl = 0
  ||
  let rec at i = i + nl <= hl && (String.sub haystack i nl = needle || at (i + 1)) in
  at 0

let expect_failure ~substring f =
  match f () with
  | exception Failure m ->
      Alcotest.(check bool)
        (Printf.sprintf "failure %S mentions %S" m substring)
        true (contains m substring)
  | _ -> Alcotest.fail ("expected Failure mentioning " ^ substring)

(* ---------------- object format ---------------- *)

let test_unit_roundtrip () =
  let c =
    compile
      "global int g[3]; int f(int x) { g[0] = x; return x * 2; } \
       int main(int n) { return f(n) + g[0]; }"
  in
  let unit = unit_of c in
  with_temp (fun path ->
      Objfile.save unit path;
      let loaded = Objfile.load path in
      Alcotest.(check bool) "unit round-trips structurally" true (unit = loaded);
      (* Linking the loaded objects reproduces the baseline image. *)
      let relinked =
        Link.link_objects ~objects:loaded.Objfile.funcs
          ~globals:loaded.Objfile.globals ()
      in
      let baseline = Driver.link_baseline c in
      Alcotest.(check string)
        "relinked text identical" baseline.Link.text relinked.Link.text;
      Alcotest.(check bool)
        "symbols identical" true
        (baseline.Link.symbols = relinked.Link.symbols))

let test_object_bad_magic () =
  with_temp (fun path ->
      write_file path "NOTANOBJECTFILE-PADDING-PADDING-PADDING";
      expect_failure ~substring:"magic" (fun () -> Objfile.load path))

let test_object_truncated () =
  let c = compile "int main() { return 1; }" in
  with_temp (fun path ->
      Objfile.save (unit_of c) path;
      let contents = read_file path in
      write_file path (String.sub contents 0 (String.length contents / 2));
      expect_failure ~substring:"" (fun () -> Objfile.load path);
      (* A cut below even the header is reported as truncation. *)
      write_file path (String.sub contents 0 9);
      expect_failure ~substring:"truncated" (fun () -> Objfile.load path))

let test_object_corrupted () =
  let c = compile "int main() { return 2; }" in
  with_temp (fun path ->
      Objfile.save (unit_of c) path;
      let contents = Bytes.of_string (read_file path) in
      (* Flip one payload byte: the digest trailer must catch it. *)
      let pos = Bytes.length contents / 2 in
      Bytes.set contents pos
        (Char.chr (Char.code (Bytes.get contents pos) lxor 0xFF));
      write_file path (Bytes.to_string contents);
      expect_failure ~substring:"corrupt" (fun () -> Objfile.load path))

let test_object_version_mismatch () =
  let c = compile "int main() { return 3; }" in
  with_temp (fun path ->
      let unit = unit_of c in
      Frame.write ~magic:"PSDOBJCT"
        ~version:(Objfile.format_version + 1)
        ~payload:(Marshal.to_string unit []) path;
      expect_failure ~substring:"version" (fun () -> Objfile.load path))

let test_image_truncated_and_corrupted () =
  let c = compile "int main() { return 4; }" in
  let image = Driver.link_baseline c in
  with_temp (fun path ->
      Link.save image path;
      let contents = read_file path in
      write_file path (String.sub contents 0 (String.length contents - 5));
      expect_failure ~substring:"" (fun () -> Link.load path);
      let bytes = Bytes.of_string contents in
      let pos = Bytes.length bytes / 2 in
      Bytes.set bytes pos (Char.chr (Char.code (Bytes.get bytes pos) lxor 0x55));
      write_file path (Bytes.to_string bytes);
      expect_failure ~substring:"corrupt" (fun () -> Link.load path))

(* Object round-trip is an identity property under the fuzz generator's
   programs: save→load preserves every field and every relink. *)
let test_roundtrip_fuzz_property () =
  for index = 0 to 19 do
    let p = Gen.generate ~seed:77L ~index in
    let c = Driver.compile ~name:p.Gen.name p.Gen.source in
    let unit = unit_of c in
    with_temp (fun path ->
        Objfile.save unit path;
        let loaded = Objfile.load path in
        if unit <> loaded then
          Alcotest.failf "round-trip changed unit for %s" p.Gen.name;
        let relinked =
          Link.link_objects ~objects:loaded.Objfile.funcs
            ~globals:loaded.Objfile.globals ()
        in
        let baseline = Driver.link_baseline c in
        if baseline.Link.text <> relinked.Link.text then
          Alcotest.failf "relink diverged for %s" p.Gen.name)
  done

(* ---------------- linker error paths ---------------- *)

let objects_of src =
  let c = compile src in
  (c, c.Driver.objects)

let test_duplicate_symbol_named () =
  let _, a = objects_of "int f(int x) { return x; } int main() { return f(1); }" in
  let dup = List.filter (fun o -> o.Objfile.sym = "f") a in
  expect_failure ~substring:"duplicate symbol f" (fun () ->
      Link.link_objects ~objects:(a @ dup) ~globals:[] ())

let test_unresolved_function_named () =
  let c, objs =
    objects_of "int f(int x) { return x; } int main() { return f(1); }"
  in
  (* Drop f's object: main's call relocation cannot resolve. *)
  let without_f = List.filter (fun o -> o.Objfile.sym <> "f") objs in
  expect_failure ~substring:"undefined function f" (fun () ->
      Link.link_objects ~objects:without_f ~globals:c.Driver.modul.Ir.globals ())

let test_unresolved_global_named () =
  let c, objs =
    objects_of "global int gv[2]; int main() { gv[0] = 1; return gv[0]; }"
  in
  ignore c;
  expect_failure ~substring:"undefined global gv" (fun () ->
      Link.link_objects ~objects:objs ~globals:[] ())

let test_main_arity_mismatch_named () =
  let _, objs = objects_of "int main(int a, int b) { return a + b; }" in
  expect_failure ~substring:"main arity mismatch" (fun () ->
      Link.link_objects ~expect_main_arity:1 ~objects:objs ~globals:[] ())

let test_missing_main_named () =
  let c = compile "int f(int x) { return x; } int main() { return f(0); }" in
  let without_main =
    List.filter (fun o -> o.Objfile.sym <> "main") c.Driver.objects
  in
  expect_failure ~substring:"no main" (fun () ->
      Link.link_objects ~objects:without_main ~globals:[] ())

(* ---------------- the content-addressed store ---------------- *)

let test_warm_recompile_skips_lowering () =
  let src =
    "int sq(int x) { return x * x; } int tw(int x) { return x + x; } \
     int main(int n) { return sq(n) + tw(n); }"
  in
  let _ = Driver.compile ~name:"warm-a" src in
  let isel0 = counter "machine.isel.runs" in
  let hits0 = counter "obj.store.hit" in
  let c2 = Driver.compile ~name:"warm-b" src in
  Alcotest.(check int)
    "no function re-lowered" 0
    (Int64.to_int (Int64.sub (counter "machine.isel.runs") isel0));
  Alcotest.(check int)
    "every function a store hit" 3
    (Int64.to_int (Int64.sub (counter "obj.store.hit") hits0));
  (* The cached objects still link and run. *)
  let image = Driver.link_baseline c2 in
  let r = Driver.run_image image ~args:[ 5l ] in
  Alcotest.(check int32) "still correct" 35l r.Sim.status

let test_warm_population_zero_lowering () =
  let src =
    "int acc(int x) { return x * 7; } int main(int n) { return acc(n) & 63; }"
  in
  let _ = Driver.compile ~name:"warm-pop" src in
  Driver.clear_caches ~store:false ();
  let isel0 = counter "machine.isel.runs" in
  let live0 = counter "machine.liveness.runs" in
  let ra0 = counter "machine.regalloc.runs" in
  let c = Driver.compile ~name:"warm-pop" src in
  let config = List.assoc "p0-30" Config.paper_configs in
  let imgs =
    Driver.population c ~config ~profile:Profile.empty ~n:5
  in
  Alcotest.(check int) "population built" 5 (List.length imgs);
  Alcotest.(check int)
    "zero isel runs" 0
    (Int64.to_int (Int64.sub (counter "machine.isel.runs") isel0));
  Alcotest.(check int)
    "zero liveness runs" 0
    (Int64.to_int (Int64.sub (counter "machine.liveness.runs") live0));
  Alcotest.(check int)
    "zero regalloc runs" 0
    (Int64.to_int (Int64.sub (counter "machine.regalloc.runs") ra0))

let test_perturb_one_function_relowers_one () =
  let part body =
    "int stable(int x) { return x * 3; } int tweaked(int y) { " ^ body
    ^ " } int main(int n) { return stable(n) + tweaked(n); }"
  in
  let _ = Driver.compile ~name:"incr-a" (part "return y + 4;") in
  let isel0 = counter "machine.isel.runs" in
  let hits0 = counter "obj.store.hit" in
  let _ = Driver.compile ~name:"incr-b" (part "return y + 5;") in
  Alcotest.(check int)
    "exactly one function re-lowered" 1
    (Int64.to_int (Int64.sub (counter "machine.isel.runs") isel0));
  Alcotest.(check int)
    "the other two hit the store" 2
    (Int64.to_int (Int64.sub (counter "obj.store.hit") hits0))

let test_store_eviction () =
  let saved = Store.get_capacity () in
  Fun.protect
    ~finally:(fun () ->
      Store.set_capacity saved;
      Store.clear ())
    (fun () ->
      Store.clear ();
      (* Eviction is per shard, so pin the LRU behaviour on keys that
         provably share a shard: capacity = 2 entries per shard, three
         same-shard keys, the least recently *used* one must go. *)
      Store.set_capacity (2 * Store.shard_count);
      let key sym =
        Store.key ~ir_digest:sym ~pipeline:"-" ~config:"-" ~seed:0L
      in
      let same_shard =
        let target = Store.shard_of_key (key "s0") in
        let rec collect acc i =
          if List.length acc = 3 then List.rev acc
          else
            let sym = Printf.sprintf "s%d" i in
            collect
              (if Store.shard_of_key (key sym) = target then sym :: acc
               else acc)
              (i + 1)
        in
        collect [] 0
      in
      let a, b, c =
        match same_shard with
        | [ a; b; c ] -> (a, b, c)
        | _ -> assert false
      in
      let dummy sym =
        Objfile.of_asm ~arity:0
          { Asm.name = sym; items = [ Asm.Label 0; Asm.Ins Insn.Ret ] }
      in
      let put sym =
        ignore
          (Store.find_or_lower ~ir_digest:sym ~pipeline:"-" ~config:"-"
             ~seed:0L (fun () -> dummy sym))
      in
      let ev0 = counter "obj.store.evict" in
      put a;
      put b;
      ignore (Store.lookup (key a)) (* touch a: b becomes the shard's LRU *);
      put c;
      Alcotest.(check int) "shard bounded at its capacity" 2 (Store.length ());
      Alcotest.(check int)
        "one eviction counted" 1
        (Int64.to_int (Int64.sub (counter "obj.store.evict") ev0));
      Alcotest.(check bool)
        "LRU victim gone" true
        (Store.lookup (key b) = None);
      Alcotest.(check bool)
        "recently-used entry kept" true
        (Store.lookup (key a) <> None);
      Alcotest.(check bool)
        "newest entry kept" true
        (Store.lookup (key c) <> None))

(* ---------------- equivalence suite ---------------- *)

(* The acceptance bar of the refactor: the object pipeline produces the
   same bytes as the seed whole-program pipeline for every workload ×
   paper config × seed (version), baseline included.  [link_whole] is
   the seed implementation kept verbatim as the oracle. *)
let check_image_equal ~what (whole : Link.image) (obj : Link.image) =
  Alcotest.(check string)
    (what ^ ": .text digest")
    (Digest.to_hex (Digest.string whole.Link.text))
    (Digest.to_hex (Digest.string obj.Link.text));
  Alcotest.(check bool) (what ^ ": symbols") true
    (whole.Link.symbols = obj.Link.symbols);
  Alcotest.(check bool) (what ^ ": block offsets") true
    (whole.Link.block_offsets = obj.Link.block_offsets);
  Alcotest.(check int) (what ^ ": entry") whole.Link.entry obj.Link.entry;
  Alcotest.(check int)
    (what ^ ": user_start") whole.Link.user_start obj.Link.user_start;
  Alcotest.(check bool) (what ^ ": globals") true
    (whole.Link.globals = obj.Link.globals);
  Alcotest.(check bool) (what ^ ": data_init") true
    (whole.Link.data_init = obj.Link.data_init);
  Alcotest.(check int)
    (what ^ ": main_arity") whole.Link.main_arity obj.Link.main_arity

let seeds = [ 0; 1; 2 ]

let test_workload_equivalence (w : Workload.t) () =
  let c = Driver.compile_cached ~name:w.Workload.name w.Workload.source in
  let globals = c.Driver.modul.Ir.globals in
  let baseline_whole =
    Link.link_whole ~funcs:c.Driver.asm ~globals ~main_arity:c.Driver.main_arity
  in
  check_image_equal ~what:(w.Workload.name ^ "/baseline") baseline_whole
    (Driver.link_baseline c);
  List.iter
    (fun (_, config) ->
      let cname = Config.name config in
      List.iter
        (fun version ->
          (* Seed whole-program pipeline: same RNG derivation as the
             driver, NOP insertion over the whole program, monolithic
             link. *)
          let rng =
            Rng.of_labels config.Config.seed
              [ c.Driver.name; cname; string_of_int version ]
          in
          let funcs, _ =
            Nop_insert.run_program ~config ~profile:Profile.empty ~rng
              c.Driver.asm
          in
          let whole =
            Link.link_whole ~funcs ~globals ~main_arity:c.Driver.main_arity
          in
          let obj_img, _ =
            Driver.diversify_linked c ~config ~profile:Profile.empty ~version
          in
          check_image_equal
            ~what:
              (Printf.sprintf "%s/%s/v%d" w.Workload.name cname version)
            whole obj_img)
        seeds)
    Config.paper_configs

let suite =
  [
    ( "obj.format",
      [
        Alcotest.test_case "unit round-trip" `Quick test_unit_roundtrip;
        Alcotest.test_case "bad magic" `Quick test_object_bad_magic;
        Alcotest.test_case "truncated" `Quick test_object_truncated;
        Alcotest.test_case "corrupted" `Quick test_object_corrupted;
        Alcotest.test_case "version mismatch" `Quick
          test_object_version_mismatch;
        Alcotest.test_case "image truncated/corrupted" `Quick
          test_image_truncated_and_corrupted;
        Alcotest.test_case "fuzz round-trip identity" `Slow
          test_roundtrip_fuzz_property;
      ] );
    ( "obj.linker-errors",
      [
        Alcotest.test_case "duplicate symbol named" `Quick
          test_duplicate_symbol_named;
        Alcotest.test_case "unresolved function named" `Quick
          test_unresolved_function_named;
        Alcotest.test_case "unresolved global named" `Quick
          test_unresolved_global_named;
        Alcotest.test_case "main arity mismatch named" `Quick
          test_main_arity_mismatch_named;
        Alcotest.test_case "missing main" `Quick test_missing_main_named;
      ] );
    ( "obj.store",
      [
        Alcotest.test_case "warm recompile skips lowering" `Quick
          test_warm_recompile_skips_lowering;
        Alcotest.test_case "warm population zero lowering" `Quick
          test_warm_population_zero_lowering;
        Alcotest.test_case "perturb one function" `Quick
          test_perturb_one_function_relowers_one;
        Alcotest.test_case "LRU eviction" `Quick test_store_eviction;
      ] );
    ( "obj.equivalence",
      List.map
        (fun (w : Workload.t) ->
          Alcotest.test_case w.Workload.name `Slow
            (test_workload_equivalence w))
        Workloads.all );
  ]
