(* Tests for the differential fuzzer: the decision tape, the generator's
   determinism and well-formedness, the multi-oracle harness on the
   regression corpus, the workload diversification property, and the
   shrinker's accept-only-if-still-failing discipline. *)

(* A reduced oracle matrix for the 200-program smoke suite: two levels,
   one uniform and one profile-guided config, one diversified version.
   The CI fuzz job runs the full matrix; here the point is a fast,
   deterministic sweep on every `dune runtest`. *)
let smoke_levels = [ Pipeline.O0; Pipeline.O2 ]

let smoke_configs =
  List.filter
    (fun (name, _) -> List.mem name [ "p50"; "p0-30" ])
    Config.paper_configs

let smoke_check p =
  Oracle.check ~levels:smoke_levels ~configs:smoke_configs ~versions:1 p

(* ------------------------------------------------------------------ *)
(* Tape. *)

let test_tape_fresh () =
  let rng = Rng.of_labels 1L [ "tape-test" ] in
  let t = Tape.fresh rng in
  for _ = 1 to 100 do
    let v = Tape.draw t 7 in
    Alcotest.(check bool) "in bound" true (v >= 0 && v < 7)
  done;
  Alcotest.(check int) "length counts draws" 100 (Tape.length t);
  Alcotest.(check int) "recorded matches" 100 (Array.length (Tape.recorded t))

let test_tape_replay () =
  let t = Tape.replay [| 5; 100; -3 |] in
  Alcotest.(check int) "verbatim when in bound" 5 (Tape.draw t 10);
  Alcotest.(check int) "clamped by mod" 0 (Tape.draw t 10);
  Alcotest.(check int) "negative becomes 0" 0 (Tape.draw t 10);
  Alcotest.(check int) "past the end is 0" 0 (Tape.draw t 10);
  Alcotest.(check (array int)) "recorded canonicalizes" [| 5; 0; 0; 0 |]
    (Tape.recorded t);
  match Tape.draw t 0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "draw with bound 0 must reject"

(* ------------------------------------------------------------------ *)
(* Generator. *)

let test_gen_deterministic () =
  let a = Gen.generate ~seed:3L ~index:17 in
  let b = Gen.generate ~seed:3L ~index:17 in
  Alcotest.(check string) "same source" a.Gen.source b.Gen.source;
  Alcotest.(check (list int32)) "same args" a.Gen.args b.Gen.args;
  Alcotest.(check (array int)) "same trace" a.Gen.trace b.Gen.trace;
  let c = Gen.generate ~seed:3L ~index:18 in
  Alcotest.(check bool) "different index differs" false
    (String.equal a.Gen.source c.Gen.source)

let test_gen_trace_roundtrip () =
  for index = 0 to 19 do
    let p = Gen.generate ~seed:11L ~index in
    let q = Gen.of_trace ~seed:11L ~index ~trace:p.Gen.trace in
    Alcotest.(check string)
      (Printf.sprintf "roundtrip source %d" index)
      p.Gen.source q.Gen.source;
    Alcotest.(check (list int32))
      (Printf.sprintf "roundtrip args %d" index)
      p.Gen.args q.Gen.args
  done

let test_gen_adversarial_traces () =
  (* Any trace must yield a program the frontend accepts — the shrinker
     depends on it.  Zeros, truncations, and large values alike. *)
  let traces =
    [
      [||];
      [| 0 |];
      Array.make 500 0;
      Array.make 500 1000000;
      Array.init 300 (fun i -> i * 7);
      Array.init 300 (fun i -> 299 - i);
    ]
  in
  List.iteri
    (fun k trace ->
      let p = Gen.of_trace ~seed:1L ~index:k ~trace in
      match Driver.compile ~opt:Pipeline.O0 ~name:p.Gen.name p.Gen.source with
      | _ -> ()
      | exception Failure msg ->
          Alcotest.failf "trace %d produced a rejected program: %s\n%s" k msg
            p.Gen.source)
    traces

(* The deterministic smoke suite: 200 generated programs through the
   reduced oracle matrix, zero divergences expected. *)
let test_smoke_200 () =
  let runs = ref 0 in
  for index = 0 to 199 do
    let p = Gen.generate ~seed:1L ~index in
    let r = smoke_check p in
    runs := !runs + r.Oracle.runs;
    match r.Oracle.divergence with
    | None -> ()
    | Some d ->
        Alcotest.failf "index %d: %s vs %s — %s\n%s" index d.Oracle.left
          d.Oracle.right d.Oracle.detail p.Gen.source
  done;
  Alcotest.(check bool) "ran the matrix" true (!runs >= 200 * 8)

(* ------------------------------------------------------------------ *)
(* Corpus replay: every shrunk regression program must agree across the
   full oracle matrix (trap cases included — trapped/trapped agrees). *)

(* `dune runtest` runs in the test build directory, `dune exec
   test/main.exe` in the project root — accept both. *)
let corpus_dir () =
  if Sys.file_exists "corpus" then "corpus" else Filename.concat "test" "corpus"

let corpus_files () =
  Sys.readdir (corpus_dir ())
  |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".mc")
  |> List.sort compare

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_corpus () =
  let files = corpus_files () in
  Alcotest.(check bool)
    (Printf.sprintf "corpus has programs (%d)" (List.length files))
    true
    (List.length files >= 10);
  List.iter
    (fun file ->
      let src = read_file (Filename.concat (corpus_dir ()) file) in
      let args = Fuzz.parse_args_header src in
      let p = Gen.of_source ~name:file ~args src in
      let r = Oracle.check p in
      match r.Oracle.divergence with
      | None -> ()
      | Some d ->
          Alcotest.failf "%s: %s vs %s — %s" file d.Oracle.left d.Oracle.right
            d.Oracle.detail)
    files

(* The corpus must keep exercising each trap class. *)
let test_corpus_trap_classes () =
  let classes = Hashtbl.create 4 in
  List.iter
    (fun file ->
      let src = read_file (Filename.concat (corpus_dir ()) file) in
      let args = Fuzz.parse_args_header src in
      let c = Driver.compile ~opt:Pipeline.O0 ~name:file src in
      match Interp.run ~fuel:300_000L c.Driver.modul ~entry:"main" ~args with
      | _ -> ()
      | exception Interp.Trap msg ->
          Hashtbl.replace classes (Oracle.classify msg) ())
    (corpus_files ());
  List.iter
    (fun cls ->
      Alcotest.(check bool)
        ("corpus covers trap class " ^ Oracle.trap_class_name cls)
        true (Hashtbl.mem classes cls))
    [ Oracle.Div; Oracle.Mem; Oracle.Resource ]

(* ------------------------------------------------------------------ *)
(* Oracle internals. *)

let test_classify () =
  let check msg cls = Alcotest.(check string) msg
      (Oracle.trap_class_name cls)
      (Oracle.trap_class_name (Oracle.classify msg))
  in
  check "division error in f (1 / 0)" Oracle.Div;
  check "division by zero" Oracle.Div;
  check "division overflow" Oracle.Div;
  check "load out of bounds: 0x10" Oracle.Mem;
  check "unaligned store at 0x3" Oracle.Mem;
  check "fuel exhausted after 42 steps" Oracle.Resource;
  check "call stack overflow in f" Oracle.Resource;
  check "stack overflow in f" Oracle.Resource;
  check "unknown builtin putsch/1" Oracle.Other

(* The interpreter's memory layout must mirror the linked image's:
   same argv reservation at the data base (the trap-parity fix). *)
let test_argv_parity () =
  Alcotest.(check int) "Interp.argv_words = Libc.argv_words" Libc.argv_words
    Interp.argv_words

(* ------------------------------------------------------------------ *)
(* Workload property: every suite program, under every paper config and
   three independent seeds, behaves identically to its baseline. *)

let test_workloads_diversified () =
  List.iter
    (fun (w : Workload.t) ->
      let c = Driver.compile_cached ~name:w.Workload.name w.Workload.source in
      let args = w.Workload.train_args in
      let baseline = Driver.run_image (Driver.link_baseline_cached c) ~args in
      let profile = Driver.train_cached c ~args in
      List.iter
        (fun (cname, config) ->
          for version = 1 to 3 do
            let image, _ = Driver.diversify c ~config ~profile ~version in
            let r = Driver.run_image image ~args in
            Alcotest.(check int32)
              (Printf.sprintf "%s/%s/v%d status" w.Workload.name cname version)
              baseline.Sim.status r.Sim.status;
            Alcotest.(check string)
              (Printf.sprintf "%s/%s/v%d output" w.Workload.name cname version)
              baseline.Sim.output r.Sim.output
          done)
        Config.paper_configs)
    Workloads.all

(* ------------------------------------------------------------------ *)
(* Fuzz runner helpers. *)

let test_parse_args_header () =
  Alcotest.(check (list int32)) "args parsed" [ 3l; -5l; 0l ]
    (Fuzz.parse_args_header "// hello\n// args: 3 -5 0\nint main() {}\n");
  Alcotest.(check (list int32)) "no header" []
    (Fuzz.parse_args_header "int main() {}\n")

let fake_divergence p =
  {
    Oracle.program = p;
    runs = 0;
    skips = [];
    divergence =
      Some
        {
          Oracle.left = "interp@O0";
          right = "sim@O0";
          left_outcome = Oracle.Halted { ret = 0l; output = "" };
          right_outcome = Oracle.Halted { ret = 1l; output = "" };
          detail = "synthetic";
        };
  }

let test_reproducer_format () =
  let p = Gen.generate ~seed:9L ~index:4 in
  let f = { Fuzz.report = fake_divergence p; shrunk = None } in
  let text = Fuzz.reproducer f in
  let again = Fuzz.reproducer f in
  Alcotest.(check string) "byte-identical" text again;
  Alcotest.(check (list int32)) "args header replays" p.Gen.args
    (Fuzz.parse_args_header text);
  (* The reproducer is itself valid MiniC. *)
  match Driver.compile ~opt:Pipeline.O0 ~name:"repro" text with
  | _ -> ()
  | exception Failure msg -> Alcotest.failf "reproducer rejected: %s" msg

(* ------------------------------------------------------------------ *)
(* Shrinker. *)

let test_shrink_requires_divergence () =
  let p = Gen.generate ~seed:2L ~index:0 in
  let r = { Oracle.program = p; runs = 0; skips = []; divergence = None } in
  match Shrink.shrink p r with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "shrink must reject a report with no divergence"

let test_shrink_keeps_only_failing () =
  (* A synthetic divergence on a program that does not actually diverge:
     no edit can reproduce it, so the shrinker must return the original
     unchanged after spending its budget. *)
  let p = Gen.generate ~seed:2L ~index:1 in
  let r = fake_divergence p in
  let s =
    Shrink.shrink ~levels:[ Pipeline.O0 ] ~configs:[] ~versions:0
      ~max_attempts:6 p r
  in
  Alcotest.(check string) "original kept" p.Gen.source s.Shrink.shrunk.Gen.source;
  Alcotest.(check bool) "budget was spent" true (s.Shrink.attempts > 0)

let test_shrink_corpus_noop () =
  let src = "// args: 0\nint main(int a) { return 5 / a; }\n" in
  let p = Gen.of_source ~name:"corpus" ~args:[ 0l ] src in
  let r = fake_divergence p in
  let s = Shrink.shrink ~max_attempts:3 p r in
  Alcotest.(check int) "empty trace: no attempts" 0 s.Shrink.attempts;
  Alcotest.(check string) "unchanged" src s.Shrink.shrunk.Gen.source

(* ------------------------------------------------------------------ *)

let suite =
  [
    ( "fuzz.tape",
      [
        Alcotest.test_case "fresh draws" `Quick test_tape_fresh;
        Alcotest.test_case "replay clamps and pads" `Quick test_tape_replay;
      ] );
    ( "fuzz.gen",
      [
        Alcotest.test_case "deterministic" `Quick test_gen_deterministic;
        Alcotest.test_case "trace roundtrip" `Quick test_gen_trace_roundtrip;
        Alcotest.test_case "adversarial traces compile" `Quick
          test_gen_adversarial_traces;
      ] );
    ( "fuzz.oracle",
      [
        Alcotest.test_case "trap classification" `Quick test_classify;
        Alcotest.test_case "argv layout parity" `Quick test_argv_parity;
        Alcotest.test_case "corpus replays clean" `Slow test_corpus;
        Alcotest.test_case "corpus covers trap classes" `Quick
          test_corpus_trap_classes;
        Alcotest.test_case "200-program smoke" `Slow test_smoke_200;
      ] );
    ( "fuzz.workloads",
      [
        Alcotest.test_case "diversified outputs identical" `Slow
          test_workloads_diversified;
      ] );
    ( "fuzz.runner",
      [
        Alcotest.test_case "args header" `Quick test_parse_args_header;
        Alcotest.test_case "reproducer format" `Quick test_reproducer_format;
        Alcotest.test_case "shrink needs divergence" `Quick
          test_shrink_requires_divergence;
        Alcotest.test_case "shrink keeps only failing" `Quick
          test_shrink_keeps_only_failing;
        Alcotest.test_case "shrink is noop on corpus" `Quick
          test_shrink_corpus_noop;
      ] );
  ]
