(* A minimal, strict JSON parser — test-side only.  The observability
   sinks (Cctx.to_json, Metrics.dump_json, Trace.export_json,
   Simprof.to_json) claim to emit well-formed JSON; round-tripping their
   output through an independent parser is what keeps them honest. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Bad of string

let parse (s : string) : t =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (Printf.sprintf "%s at %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail ("bad literal " ^ word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      if c = '"' then Buffer.contents b
      else if c = '\\' then begin
        (if !pos >= n then fail "unterminated escape");
        let e = s.[!pos] in
        advance ();
        (match e with
        | '"' -> Buffer.add_char b '"'
        | '\\' -> Buffer.add_char b '\\'
        | '/' -> Buffer.add_char b '/'
        | 'b' -> Buffer.add_char b '\b'
        | 'f' -> Buffer.add_char b '\012'
        | 'n' -> Buffer.add_char b '\n'
        | 'r' -> Buffer.add_char b '\r'
        | 't' -> Buffer.add_char b '\t'
        | 'u' ->
            if !pos + 4 > n then fail "truncated \\u escape";
            let hex = String.sub s !pos 4 in
            pos := !pos + 4;
            let code =
              try int_of_string ("0x" ^ hex)
              with _ -> fail "bad \\u escape"
            in
            (* Keep it simple: store the code point as UTF-8-ish bytes;
               the sinks only escape control characters, all < 0x80. *)
            if code < 0x80 then Buffer.add_char b (Char.chr code)
            else Buffer.add_string b (Printf.sprintf "\\u%04x" code)
        | _ -> fail "bad escape");
        go ()
      end
      else if Char.code c < 0x20 then fail "raw control character in string"
      else begin
        Buffer.add_char b c;
        go ()
      end
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let numchar = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && numchar s.[!pos] do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    match float_of_string_opt tok with
    | Some f -> Num f
    | None -> fail ("bad number " ^ tok)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((k, v) :: acc)
            | Some '}' ->
                advance ();
                Obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          members []
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements (v :: acc)
            | Some ']' ->
                advance ();
                Arr (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          elements []
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let parse_exn = parse

(* Navigation helpers for assertions. *)
let member key = function
  | Obj kvs -> (
      match List.assoc_opt key kvs with
      | Some v -> v
      | None -> raise (Bad ("missing member " ^ key)))
  | _ -> raise (Bad "member: not an object")

let to_list = function Arr l -> l | _ -> raise (Bad "not an array")
let to_num = function Num f -> f | _ -> raise (Bad "not a number")
let to_str = function Str s -> s | _ -> raise (Bad "not a string")
