(* CI rebuild smoke: the incremental-build guarantee, end to end.

   Compile 429.mcf cold, then perturb exactly one function body (the
   checksum mask in [main]) and recompile.  The content-addressed store
   must serve every unchanged function, so the metrics registry has to
   show exactly one machine.isel.runs increment and nfuncs-1 store hits.
   Exits 1 (failing the CI job) on any violation, and writes the store
   statistics as a JSON artifact for upload. *)

let counter name = Metrics.counter_value (Metrics.counter name)

let replace ~anchor ~by s =
  let al = String.length anchor in
  let rec find i =
    if i + al > String.length s then
      failwith (Printf.sprintf "anchor %S not found in workload source" anchor)
    else if String.sub s i al = anchor then i
    else find (i + 1)
  in
  let i = find 0 in
  String.sub s 0 i ^ by ^ String.sub s (i + al) (String.length s - i - al)

let failures = ref 0

let check what ~expect actual =
  let ok = expect = actual in
  Printf.printf "%s %s: expected %d, got %d\n"
    (if ok then "ok  " else "FAIL")
    what expect actual;
  if not ok then incr failures

let () =
  let out = ref "store-stats.json" in
  let specs =
    [ ("--out", Arg.Set_string out, "FILE  write store statistics JSON") ]
  in
  Arg.parse specs
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "incremental_smoke [--out FILE]";

  let w = List.find (fun w -> w.Workload.name = "429.mcf") Workloads.all in
  let c0 = Driver.compile ~name:w.Workload.name w.Workload.source in
  let nfuncs = List.length c0.Driver.objects in
  let r0 =
    Driver.run_image (Driver.link_baseline c0) ~args:w.Workload.ref_args
  in

  (* One-function perturbation: the program-level memos are not involved
     (plain [compile]), only the function store carries state across. *)
  let perturbed =
    replace ~anchor:"checksum & 127" ~by:"checksum & 126" w.Workload.source
  in
  let isel0 = counter "machine.isel.runs" in
  let hits0 = counter "obj.store.hit" in
  let miss0 = counter "obj.store.miss" in
  let c1 = Driver.compile ~name:w.Workload.name perturbed in
  let isel = Int64.to_int (Int64.sub (counter "machine.isel.runs") isel0) in
  let hits = Int64.to_int (Int64.sub (counter "obj.store.hit") hits0) in
  let misses = Int64.to_int (Int64.sub (counter "obj.store.miss") miss0) in

  Printf.printf "429.mcf: %d functions, baseline status %ld\n" nfuncs
    r0.Sim.status;
  check "functions re-lowered after 1-function edit" ~expect:1 isel;
  check "store hits (unchanged functions)" ~expect:(nfuncs - 1) hits;
  check "store misses (edited function)" ~expect:1 misses;

  (* The perturbed build is a real program, not just a cache exercise. *)
  let r1 =
    Driver.run_image (Driver.link_baseline c1) ~args:w.Workload.ref_args
  in
  check "perturbed binary still terminates"
    ~expect:(Int32.to_int (Int32.logand r0.Sim.status 126l))
    (Int32.to_int r1.Sim.status);

  let j =
    Jsonw.Obj
      [
        ("schema", Jsonw.Str "psd-incremental-smoke/1");
        ("workload", Jsonw.Str w.Workload.name);
        ("functions", Jsonw.int nfuncs);
        ( "rebuild",
          Jsonw.Obj
            [
              ("isel_runs", Jsonw.int isel);
              ("store_hits", Jsonw.int hits);
              ("store_misses", Jsonw.int misses);
            ] );
        ( "store",
          Jsonw.Obj
            [
              ("entries", Jsonw.int (Store.length ()));
              ("capacity", Jsonw.int (Store.get_capacity ()));
              ("hit_total", Jsonw.Int (counter "obj.store.hit"));
              ("miss_total", Jsonw.Int (counter "obj.store.miss"));
              ("evict_total", Jsonw.Int (counter "obj.store.evict"));
            ] );
        ("ok", Jsonw.Bool (!failures = 0));
      ]
  in
  let oc = open_out !out in
  Jsonw.to_channel oc j;
  output_char oc '\n';
  close_out oc;
  Printf.printf "store stats written to %s\n" !out;
  if !failures > 0 then exit 1
