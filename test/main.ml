let () =
  Alcotest.run "psd"
    (List.concat [ Test_rng.suite; Test_stats.suite; Test_x86.suite; Test_front.suite; Test_backend.suite; Test_profile.suite; Test_core.suite; Test_gadget.suite; Test_workloads.suite; Test_opt.suite; Test_machine.suite; Test_link_sim.suite; Test_sim_engine.suite; Test_obj.suite; Test_obs.suite; Test_pgo.suite; Test_fuzz.suite; Test_exec.suite; Test_serve.suite ])
