(** A plain mutual-exclusion lock.

    The observability registries ({!Metrics}, {!Trace}) are global mutable
    state; under the pool's [Domain]-based backend several domains record
    into them concurrently, so every mutation goes through one of these.
    On OCaml 4.14 (no domains) the lock is still real but never contended;
    its uncontended cost is a few nanoseconds, far below the cost of the
    instrumented operations themselves. *)

type t

val create : unit -> t

val protect : t -> (unit -> 'a) -> 'a
(** [protect t f] runs [f] holding [t]; the lock is released even if [f]
    raises. *)
