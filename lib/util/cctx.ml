type stat = {
  stage : string;
  pass : string;
  func : string;
  time_s : float;
  items_before : int;
  items_after : int;
  bytes : int;
  changed : bool;
}

type agg = {
  a_stage : string;
  a_pass : string;
  runs : int;
  changed_runs : int;
  total_s : float;
  delta : int;
  total_bytes : int;
}

type t = {
  cname : string;
  cverify_each : bool;
  mutable recorded : stat list;  (* reverse chronological *)
}

let create ?(verify_each = false) cname =
  { cname; cverify_each = verify_each; recorded = [] }

let name t = t.cname
let verify_each t = t.cverify_each

let timed f =
  (* Monotonic: a stepped system clock cannot make a stage time negative. *)
  let t0 = Clock.now_s () in
  let r = f () in
  (r, Clock.elapsed_s t0)

let record t s = t.recorded <- s :: t.recorded
let stats t = List.rev t.recorded

let aggregate t =
  (* Association list keyed by (stage, pass), kept in first-seen order. *)
  let order = ref [] in
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun s ->
      let key = (s.stage, s.pass) in
      let a =
        match Hashtbl.find_opt tbl key with
        | Some a -> a
        | None ->
            order := key :: !order;
            {
              a_stage = s.stage;
              a_pass = s.pass;
              runs = 0;
              changed_runs = 0;
              total_s = 0.0;
              delta = 0;
              total_bytes = 0;
            }
      in
      Hashtbl.replace tbl key
        {
          a with
          runs = a.runs + 1;
          changed_runs = (a.changed_runs + if s.changed then 1 else 0);
          total_s = a.total_s +. s.time_s;
          delta = a.delta + (s.items_after - s.items_before);
          total_bytes = a.total_bytes + s.bytes;
        })
    (stats t);
  List.rev_map (fun key -> Hashtbl.find tbl key) !order

let pp_table ppf t =
  let aggs = aggregate t in
  Format.fprintf ppf "pass statistics for %s@." t.cname;
  Format.fprintf ppf "%-10s %-14s %5s %5s %9s %7s %8s@." "stage" "pass" "runs"
    "chg" "time(ms)" "delta" "bytes";
  Format.fprintf ppf "%s@." (String.make 64 '-');
  List.iter
    (fun a ->
      Format.fprintf ppf "%-10s %-14s %5d %5d %9.3f %7d %8d@." a.a_stage
        a.a_pass a.runs a.changed_runs (a.total_s *. 1000.0) a.delta
        a.total_bytes)
    aggs;
  Format.fprintf ppf "%s@." (String.make 64 '-');
  let tot f = List.fold_left (fun acc a -> acc + f a) 0 aggs in
  Format.fprintf ppf "%-10s %-14s %5d %5d %9.3f %7d %8d@." "total" ""
    (tot (fun a -> a.runs))
    (tot (fun a -> a.changed_runs))
    (List.fold_left (fun acc a -> acc +. a.total_s) 0.0 aggs *. 1000.0)
    (tot (fun a -> a.delta))
    (tot (fun a -> a.total_bytes))

let json_escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json t =
  let b = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "{\"program\":\"%s\",\"summary\":[" (json_escape t.cname);
  List.iteri
    (fun i a ->
      if i > 0 then add ",";
      add
        "{\"stage\":\"%s\",\"pass\":\"%s\",\"runs\":%d,\"changed_runs\":%d,\"time_s\":%.6f,\"delta\":%d,\"bytes\":%d}"
        (json_escape a.a_stage) (json_escape a.a_pass) a.runs a.changed_runs
        a.total_s a.delta a.total_bytes)
    (aggregate t);
  add "],\"runs\":[";
  List.iteri
    (fun i s ->
      if i > 0 then add ",";
      add
        "{\"stage\":\"%s\",\"pass\":\"%s\",\"func\":\"%s\",\"time_s\":%.6f,\"before\":%d,\"after\":%d,\"bytes\":%d,\"changed\":%b}"
        (json_escape s.stage) (json_escape s.pass) (json_escape s.func)
        s.time_s s.items_before s.items_after s.bytes s.changed)
    (stats t);
  add "]}";
  Buffer.contents b
