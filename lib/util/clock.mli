(** A monotonic process clock.

    The stdlib offers no monotonic wall clock, so this module
    monotonicizes [Unix.gettimeofday]: {!now_s} never goes backwards even
    if the system clock is stepped (NTP adjustment, manual change).  All
    instrumentation — {!Cctx.timed}, the {!Trace} spans, metric
    timestamps — reads time through here, so recorded durations can never
    be negative. *)

val now_s : unit -> float
(** Seconds since the process started, non-decreasing.  Successive calls
    [t1 = now_s (); t2 = now_s ()] always satisfy [t2 >= t1]. *)

val elapsed_s : float -> float
(** [elapsed_s t0] is [now_s () -. t0], clamped to be non-negative. *)
