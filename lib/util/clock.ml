(* Monotonicized wall clock.  [Unix.gettimeofday] can step backwards
   under clock adjustment; we clamp to the largest value seen so far, so
   the reading is non-decreasing within the process. *)

let start = Unix.gettimeofday ()
let last = ref 0.0

let now_s () =
  let t = Unix.gettimeofday () -. start in
  if t > !last then last := t;
  !last

let elapsed_s t0 = Float.max 0.0 (now_s () -. t0)
