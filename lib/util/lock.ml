type t = Mutex.t

let create = Mutex.create

(* Not [Mutex.protect]: that arrived in OCaml 5.1 and this must build on
   4.14 (where [Mutex] comes from threads.posix). *)
let protect t f =
  Mutex.lock t;
  match f () with
  | v ->
      Mutex.unlock t;
      v
  | exception e ->
      Mutex.unlock t;
      raise e
