(** The compilation context: per-stage instrumentation threaded through
    the whole compiler.

    One [Cctx.t] accompanies a program from source to binary.  Every pass
    and lowering stage records a {!stat} — wall time, a size before/after
    pair in the stage's natural unit (IR instructions, MIR instructions,
    assembly items), emitted bytes where meaningful, and whether the run
    changed anything.  The records are raw (one per pass {e run}, so a
    fixpoint pipeline contributes one record per iteration); {!aggregate}
    folds them into the per-pass table the [--pass-stats] flag prints.

    The context itself knows nothing about IR or machine code — stages
    describe themselves with strings — so it can live below every layer
    of the compiler and be threaded through all of them. *)

type stat = {
  stage : string;
      (** pipeline layer: ["front"], ["ir"], ["machine"], ["link"] or
          ["diversify"] *)
  pass : string;  (** pass or stage name, e.g. ["constfold"], ["regalloc"] *)
  func : string;  (** function the run applied to; ["*"] for whole-module *)
  time_s : float;  (** wall-clock seconds for this run *)
  items_before : int;  (** size before, in the stage's unit *)
  items_after : int;  (** size after, in the stage's unit *)
  bytes : int;  (** emitted or added machine bytes; [0] when meaningless *)
  changed : bool;
}

type agg = {
  a_stage : string;
  a_pass : string;
  runs : int;  (** number of recorded runs (fixpoint iterations included) *)
  changed_runs : int;  (** runs that reported a change *)
  total_s : float;
  delta : int;  (** summed [items_after - items_before] *)
  total_bytes : int;
}

type t

val create : ?verify_each:bool -> string -> t
(** [create name] makes an empty context for program [name].
    [verify_each] records the caller's intent to re-verify the IR after
    every pass; the pass manager consults it via {!verify_each}. *)

val name : t -> string
val verify_each : t -> bool

val timed : (unit -> 'a) -> 'a * float
(** Run a thunk and measure its wall time on the monotonic {!Clock}, so
    the result is never negative even if the system clock steps. *)

val record : t -> stat -> unit

val stats : t -> stat list
(** All recorded stats, in chronological order. *)

val aggregate : t -> agg list
(** Per-(stage, pass) totals, in first-recorded order. *)

val pp_table : Format.formatter -> t -> unit
(** The [--pass-stats] table: one row per pass with run count, total
    time, summed size delta and emitted bytes. *)

val to_json : t -> string
(** The same data as a JSON object: program name, the aggregate table
    and the raw per-run records. *)
