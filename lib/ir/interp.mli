(** Reference interpreter for IR modules.

    This is the ground-truth semantics of the system: the x86 backend is
    correct when the simulator's observable behaviour (return value and
    output) matches this interpreter's.  It is also the profiling oracle —
    it counts every basic-block execution and every CFG-edge traversal, so
    the profile machinery and the optimal-counter-placement reconstruction
    can be validated against exact counts.

    Memory model: one flat 32-bit byte-addressed space.  An
    {!argv_words}-word argument area sits at the fixed data base (the
    image's [__argv]), then globals in declaration order; stack slots are
    carved from a downward-growing stack at the top.  Word accesses must
    be 4-aligned.  This mirrors the machine backend's layout exactly —
    same global addresses, same bounds, same argv contents — so address
    arithmetic, and in particular which accesses trap, behaves
    identically (see the trap-parity notes in DESIGN.md). *)

type counts = {
  blocks : (string * Ir.label, int64) Hashtbl.t;
      (** executions of each basic block, keyed by (function, label) *)
  edges : (string * Ir.label * Ir.label, int64) Hashtbl.t;
      (** traversals of each CFG edge *)
  calls : (string, int64) Hashtbl.t;  (** invocations per function *)
}

type result = {
  ret : int32;  (** return value of the entry function (or exit code) *)
  output : string;  (** everything written by print builtins *)
  steps : int64;  (** IR instructions + terminators executed *)
  counts : counts;
}

exception Trap of string
(** Runtime error: division by zero, out-of-bounds or unaligned access,
    unknown callee, call-stack overflow, or fuel exhaustion. *)

val argv_words : int
(** Words reserved for the argument area at the bottom of the data space
    — must equal [Libc.argv_words] (pinned by a test; psd_ir cannot
    depend on psd_link). *)

val run :
  ?fuel:int64 -> ?mem_words:int -> Ir.modul -> entry:string ->
  args:int32 list -> result
(** [run m ~entry ~args] executes [entry] with [args].  [fuel] bounds the
    step count (default [2^40]); exceeding it raises {!Trap}.
    [mem_words] sizes the address space (default 1 Mi words = 4 MiB).
    Raises [Invalid_argument] if [args] exceeds {!argv_words} (the
    simulator rejects the same programs). *)
