type counts = {
  blocks : (string * Ir.label, int64) Hashtbl.t;
  edges : (string * Ir.label * Ir.label, int64) Hashtbl.t;
  calls : (string, int64) Hashtbl.t;
}

type result = { ret : int32; output : string; steps : int64; counts : counts }

exception Trap of string

exception Program_exit of int32
(* Raised by the [exit] builtin to unwind the interpreter. *)

let trap fmt = Format.kasprintf (fun s -> raise (Trap s)) fmt

let bump tbl key =
  let old = Option.value (Hashtbl.find_opt tbl key) ~default:0L in
  Hashtbl.replace tbl key (Int64.add old 1L)

(* The base byte address of the global area; below it is unmapped so that
   null-ish pointers trap, as on a real OS. *)
let globals_base = 0x1000

(* The linked image places the __argv array (Libc.argv_words = 8 words)
   at the bottom of the data space, before the program's own globals.
   Reserve and populate the same 8 words here so both executions agree on
   every global's absolute address and on the contents of the argv area —
   without this, an access that is out of bounds relative to one layout
   can be silently in bounds relative to the other.  (psd_ir cannot
   depend on psd_link, so the constant is duplicated; a test pins the two
   together.) *)
let argv_words = 8

type state = {
  modul : Ir.modul;
  mem : int32 array; (* word-indexed *)
  mem_bytes : int;
  global_addrs : (string, int) Hashtbl.t;
  out : Buffer.t;
  counts : counts;
  mutable sp : int; (* byte address of the stack top *)
  mutable depth : int; (* current call depth *)
  mutable steps : int64;
  fuel : int64;
}

(* Bounds recursion even for frames with no stack slots; a real machine
   would exhaust its stack on the return addresses alone. *)
let max_call_depth = 10_000

let step st =
  st.steps <- Int64.add st.steps 1L;
  if st.steps > st.fuel then trap "fuel exhausted after %Ld steps" st.steps

let load st addr =
  let a = Int32.to_int addr land 0xFFFFFFFF in
  if a land 3 <> 0 then trap "unaligned load at 0x%x" a;
  if a < globals_base || a >= st.mem_bytes then trap "load out of bounds: 0x%x" a;
  st.mem.(a lsr 2)

let store st addr v =
  let a = Int32.to_int addr land 0xFFFFFFFF in
  if a land 3 <> 0 then trap "unaligned store at 0x%x" a;
  if a < globals_base || a >= st.mem_bytes then
    trap "store out of bounds: 0x%x" a;
  st.mem.(a lsr 2) <- v

let builtin st name args =
  match (name, args) with
  | "print_int", [ v ] ->
      Buffer.add_string st.out (Int32.to_string v);
      Buffer.add_char st.out '\n';
      0l
  | "put_char", [ v ] ->
      Buffer.add_char st.out (Char.chr (Int32.to_int v land 0xFF));
      0l
  | "exit", [ v ] -> raise (Program_exit v)
  | _ -> trap "unknown builtin %s/%d" name (List.length args)

let rec call st fname (args : int32 list) =
  bump st.counts.calls fname;
  st.depth <- st.depth + 1;
  if st.depth > max_call_depth then begin
    st.depth <- st.depth - 1;
    trap "call stack overflow in %s" fname
  end;
  Fun.protect ~finally:(fun () -> st.depth <- st.depth - 1) @@ fun () ->
  match List.find_opt (fun f -> String.equal f.Ir.name fname) st.modul.funcs with
  | None -> builtin st fname args
  | Some f ->
      if List.length args <> List.length f.params then
        trap "%s called with %d args (expected %d)" fname (List.length args)
        (List.length f.params);
      let temps = Array.make (max f.next_temp 1) 0l in
      List.iteri (fun i v -> temps.(i) <- v) args;
      (* Allocate this frame's stack slots, 4-aligned, stack grows down. *)
      let saved_sp = st.sp in
      let slot_addrs = Hashtbl.create 4 in
      List.iter
        (fun (s : Ir.slot) ->
          st.sp <- st.sp - (4 * s.Ir.size_words);
          if st.sp <= 0 then trap "stack overflow in %s" fname;
          Hashtbl.replace slot_addrs s.Ir.slot_id st.sp)
        f.slots;
      let ev temps = function
        | Ir.Temp t -> temps.(t)
        | Ir.Const c -> c
      in
      let entry =
        match f.blocks with
        | b :: _ -> b
        | [] -> trap "%s has no blocks" fname
      in
      let ret = ref 0l in
      (try
         let rec exec_block (b : Ir.block) =
           bump st.counts.blocks (fname, b.label);
           List.iter (exec_instr temps) b.instrs;
           step st;
           match b.term with
           | Ir.Ret None -> ret := 0l
           | Ir.Ret (Some o) -> ret := ev temps o
           | Ir.Jmp l -> goto b.label l
           | Ir.Cbr (rel, a, c, l1, l2) ->
               if Ir.eval_relop rel (ev temps a) (ev temps c) then
                 goto b.label l1
               else goto b.label l2
           | Ir.Cbr_nz (a, l1, l2) ->
               if ev temps a <> 0l then goto b.label l1 else goto b.label l2
         and goto src dst =
           bump st.counts.edges (fname, src, dst);
           exec_block (Ir.find_block f dst)
         and exec_instr temps i =
           step st;
           match i with
           | Ir.Bin (op, t, a, b) -> (
               let va = ev temps a and vb = ev temps b in
               match Ir.eval_binop op va vb with
               | Some v -> temps.(t) <- v
               | None -> (
                   match op with
                   | Ir.Div | Ir.Rem ->
                       trap "division error in %s (%ld %s %ld)" fname va
                         (Ir.binop_name op) vb
                   | Ir.Shl | Ir.Shr | Ir.Sar ->
                       (* The hardware masks shift counts to 5 bits;
                          match it. *)
                       let masked = Int32.logand vb 31l in
                       temps.(t) <-
                         Option.get (Ir.eval_binop op va masked)
                   | _ -> assert false))
           | Ir.Neg (t, a) -> temps.(t) <- Int32.neg (ev temps a)
           | Ir.Not (t, a) -> temps.(t) <- Int32.lognot (ev temps a)
           | Ir.Cmp (rel, t, a, b) ->
               temps.(t) <-
                 (if Ir.eval_relop rel (ev temps a) (ev temps b) then 1l else 0l)
           | Ir.Copy (t, a) -> temps.(t) <- ev temps a
           | Ir.Load (t, a) -> temps.(t) <- load st (ev temps a)
           | Ir.Store (a, v) -> store st (ev temps a) (ev temps v)
           | Ir.Global_addr (t, g) -> (
               match Hashtbl.find_opt st.global_addrs g with
               | Some a -> temps.(t) <- Int32.of_int a
               | None -> trap "unknown global %s" g)
           | Ir.Stack_addr (t, s) -> (
               match Hashtbl.find_opt slot_addrs s with
               | Some a -> temps.(t) <- Int32.of_int a
               | None -> trap "unknown slot %d in %s" s fname)
           | Ir.Call (dst, callee, cargs) ->
               let vals = List.map (ev temps) cargs in
               let v = call st callee vals in
               Option.iter (fun t -> temps.(t) <- v) dst
         in
         exec_block entry
       with e ->
         st.sp <- saved_sp;
         raise e);
      st.sp <- saved_sp;
      !ret

let run ?(fuel = Int64.shift_left 1L 40) ?(mem_words = 1 lsl 20) modul ~entry
    ~args =
  if List.length args > argv_words then
    invalid_arg "Interp.run: too many arguments";
  let counts =
    {
      blocks = Hashtbl.create 64;
      edges = Hashtbl.create 64;
      calls = Hashtbl.create 16;
    }
  in
  let st =
    {
      modul;
      mem = Array.make mem_words 0l;
      mem_bytes = mem_words * 4;
      global_addrs = Hashtbl.create 16;
      out = Buffer.create 256;
      counts;
      sp = mem_words * 4;
      depth = 0;
      steps = 0L;
      fuel;
    }
  in
  (* Mirror the machine image's data layout: the argv area first (holding
     the entry arguments, exactly as the simulator writes them before
     execution), then the globals in declaration order, with
     initializers copied in. *)
  List.iteri (fun i v -> st.mem.((globals_base lsr 2) + i) <- v) args;
  let next = ref (globals_base + (4 * argv_words)) in
  List.iter
    (fun (g : Ir.global) ->
      Hashtbl.replace st.global_addrs g.gname !next;
      (match g.init with
      | Some a ->
          Array.iteri (fun i v -> st.mem.((!next lsr 2) + i) <- v) a
      | None -> ());
      next := !next + (4 * g.size_words))
    modul.globals;
  if !next > st.mem_bytes then trap "globals exceed memory";
  let ret =
    try call st entry args with Program_exit code -> code
  in
  { ret; output = Buffer.contents st.out; steps = st.steps; counts }
