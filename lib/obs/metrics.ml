type counter = { cname : string; mutable count : int64 }
type histogram = { hname : string; mutable values : float list; mutable n : int }

let counters : (string, counter) Hashtbl.t = Hashtbl.create 32
let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 32

(* Guards every registry mutation and consistent multi-value reads; see
   Lock's doc comment for why the registry needs one. *)
let lock = Lock.create ()

let counter name =
  Lock.protect lock (fun () ->
      match Hashtbl.find_opt counters name with
      | Some c -> c
      | None ->
          let c = { cname = name; count = 0L } in
          Hashtbl.replace counters name c;
          c)

let incr ?(by = 1L) c =
  Lock.protect lock (fun () -> c.count <- Int64.add c.count by)

let counter_value c = c.count

let histogram name =
  Lock.protect lock (fun () ->
      match Hashtbl.find_opt histograms name with
      | Some h -> h
      | None ->
          let h = { hname = name; values = []; n = 0 } in
          Hashtbl.replace histograms name h;
          h)

let observe h v =
  Lock.protect lock (fun () ->
      h.values <- v :: h.values;
      h.n <- h.n + 1)

let histogram_count h = h.n
let histogram_values h = List.rev h.values

let reset () =
  Lock.protect lock (fun () ->
      Hashtbl.iter (fun _ c -> c.count <- 0L) counters;
      Hashtbl.iter
        (fun _ h ->
          h.values <- [];
          h.n <- 0)
        histograms)

(* ---- snapshots: what a pool worker ships back to the parent ---- *)

type snapshot = {
  s_counters : (string * int64) list;
  s_histograms : (string * float list) list;
      (* each value list is newest-first, like [histogram.values] *)
}

let snapshot () =
  Lock.protect lock (fun () ->
      {
        s_counters =
          Hashtbl.fold (fun k c acc -> (k, c.count) :: acc) counters [];
        s_histograms =
          (* The values list is immutable and only ever prepended to, so
             capturing the head is O(1) per histogram. *)
          Hashtbl.fold (fun k h acc -> (k, h.values) :: acc) histograms [];
      })

let rec take n l =
  if n <= 0 then [] else match l with [] -> [] | x :: tl -> x :: take (n - 1) tl

let delta ~since =
  Lock.protect lock (fun () ->
      let base_c = since.s_counters and base_h = since.s_histograms in
      let s_counters =
        Hashtbl.fold
          (fun k c acc ->
            let base =
              Option.value (List.assoc_opt k base_c) ~default:0L
            in
            let d = Int64.sub c.count base in
            if Int64.equal d 0L then acc else (k, d) :: acc)
          counters []
      in
      let s_histograms =
        Hashtbl.fold
          (fun k h acc ->
            let base_n =
              match List.assoc_opt k base_h with
              | Some vs -> List.length vs
              | None -> 0
            in
            (* New observations are exactly the prefix the base has not
               seen (prepend-only list, no reset in between). *)
            match take (h.n - base_n) h.values with
            | [] -> acc
            | fresh -> (k, fresh) :: acc)
          histograms []
      in
      { s_counters; s_histograms })

let merge s =
  (* [counter]/[histogram]/[incr]/[observe] each take the lock
     themselves; merging is not atomic as a whole, which is fine — the
     only concurrent readers are other merges and dumps, and totals are
     commutative. *)
  List.iter (fun (k, d) -> incr ~by:d (counter k)) s.s_counters;
  List.iter
    (fun (k, vs) ->
      let h = histogram k in
      List.iter (fun v -> observe h v) vs)
    s.s_histograms

(* ---- dumping ---- *)

let quantile sorted q =
  (* Nearest-rank on a sorted array; [q] in [0,1]. *)
  let n = Array.length sorted in
  if n = 0 then 0.0
  else sorted.(min (n - 1) (int_of_float (ceil (q *. float_of_int n)) - 1 |> max 0))

let hist_summary values =
  let a = Array.of_list values in
  Array.sort compare a;
  let n = Array.length a in
  let sum = Array.fold_left ( +. ) 0.0 a in
  Jsonw.Obj
    [
      ("count", Jsonw.int n);
      ("sum", Jsonw.Float sum);
      ("min", Jsonw.Float (if n = 0 then 0.0 else a.(0)));
      ("max", Jsonw.Float (if n = 0 then 0.0 else a.(n - 1)));
      ("mean", Jsonw.Float (if n = 0 then 0.0 else sum /. float_of_int n));
      ("p50", Jsonw.Float (quantile a 0.50));
      ("p90", Jsonw.Float (quantile a 0.90));
      ("p99", Jsonw.Float (quantile a 0.99));
    ]

let sorted_bindings tbl =
  List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) tbl [])

let dump () =
  (* Capture a consistent view under the lock, render outside it. *)
  let cs, hs =
    Lock.protect lock (fun () ->
        ( List.map
            (fun k -> (k, (Hashtbl.find counters k).count))
            (sorted_bindings counters),
          List.map
            (fun k -> (k, (Hashtbl.find histograms k).values))
            (sorted_bindings histograms) ))
  in
  Jsonw.Obj
    [
      ("counters", Jsonw.Obj (List.map (fun (k, v) -> (k, Jsonw.Int v)) cs));
      ( "histograms",
        Jsonw.Obj (List.map (fun (k, vs) -> (k, hist_summary vs)) hs) );
    ]

let dump_json () = Jsonw.to_string (dump ())
