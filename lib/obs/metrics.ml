type counter = { cname : string; mutable count : int64 }
type histogram = { hname : string; mutable values : float list; mutable n : int }

let counters : (string, counter) Hashtbl.t = Hashtbl.create 32
let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 32

let counter name =
  match Hashtbl.find_opt counters name with
  | Some c -> c
  | None ->
      let c = { cname = name; count = 0L } in
      Hashtbl.replace counters name c;
      c

let incr ?(by = 1L) c = c.count <- Int64.add c.count by
let counter_value c = c.count

let histogram name =
  match Hashtbl.find_opt histograms name with
  | Some h -> h
  | None ->
      let h = { hname = name; values = []; n = 0 } in
      Hashtbl.replace histograms name h;
      h

let observe h v =
  h.values <- v :: h.values;
  h.n <- h.n + 1

let histogram_count h = h.n

let reset () =
  Hashtbl.iter (fun _ c -> c.count <- 0L) counters;
  Hashtbl.iter
    (fun _ h ->
      h.values <- [];
      h.n <- 0)
    histograms

let quantile sorted q =
  (* Nearest-rank on a sorted array; [q] in [0,1]. *)
  let n = Array.length sorted in
  if n = 0 then 0.0
  else sorted.(min (n - 1) (int_of_float (ceil (q *. float_of_int n)) - 1 |> max 0))

let hist_summary h =
  let a = Array.of_list h.values in
  Array.sort compare a;
  let n = Array.length a in
  let sum = Array.fold_left ( +. ) 0.0 a in
  Jsonw.Obj
    [
      ("count", Jsonw.int n);
      ("sum", Jsonw.Float sum);
      ("min", Jsonw.Float (if n = 0 then 0.0 else a.(0)));
      ("max", Jsonw.Float (if n = 0 then 0.0 else a.(n - 1)));
      ("mean", Jsonw.Float (if n = 0 then 0.0 else sum /. float_of_int n));
      ("p50", Jsonw.Float (quantile a 0.50));
      ("p90", Jsonw.Float (quantile a 0.90));
      ("p99", Jsonw.Float (quantile a 0.99));
    ]

let sorted_bindings tbl =
  List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) tbl [])

let dump () =
  Jsonw.Obj
    [
      ( "counters",
        Jsonw.Obj
          (List.map
             (fun k -> (k, Jsonw.Int (Hashtbl.find counters k).count))
             (sorted_bindings counters)) );
      ( "histograms",
        Jsonw.Obj
          (List.map
             (fun k -> (k, hist_summary (Hashtbl.find histograms k)))
             (sorted_bindings histograms)) );
    ]

let dump_json () = Jsonw.to_string (dump ())
