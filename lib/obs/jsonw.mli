(** A minimal JSON writer.

    The observability sinks (trace export, metrics dump, runtime-profile
    export, bench telemetry) all emit JSON; building the value as a tree
    and serializing it here guarantees well-formed output — escaping,
    separators and non-finite floats are handled in exactly one place —
    instead of each sink string-concatenating its own. *)

type t =
  | Null
  | Bool of bool
  | Int of int64
  | Float of float  (** non-finite values serialize as [null] *)
  | Str of string
  | List of t list
  | Obj of (string * t) list

val int : int -> t
(** [Int] of a native [int]. *)

val escape : string -> string
(** JSON string-escape (no surrounding quotes). *)

val to_string : t -> string
(** Compact serialization (no insignificant whitespace). *)

val to_channel : out_channel -> t -> unit
