(** A process-wide metrics registry: named counters and histograms.

    Instrumentation points across the toolchain (driver cache hits and
    misses, simulator faults and cache misses, NOP bytes per
    configuration) register by name on first use and accumulate for the
    life of the process; {!dump_json} is the single machine-readable sink
    — the bench suite writes it into [BENCH_PR2.json], the
    perf-trajectory record every future PR appends to.

    Names are dotted paths ([driver.compile_cache.hit],
    [sim.icache_misses]).  Output is sorted by name, so dumps are stable
    across runs. *)

type counter
type histogram

val counter : string -> counter
(** Find-or-create the counter named [name]. *)

val incr : ?by:int64 -> counter -> unit
(** Add [by] (default 1). *)

val counter_value : counter -> int64

val histogram : string -> histogram
(** Find-or-create the histogram named [name]. *)

val observe : histogram -> float -> unit

val histogram_count : histogram -> int

val histogram_values : histogram -> float list
(** Every recorded observation, oldest first — for callers (tests, the
    bench experiments) that need the raw series, not the summary. *)

val reset : unit -> unit
(** Zero every counter and empty every histogram (the registry itself —
    names — survives).  The bench suite resets between runs so a dump
    covers exactly one invocation. *)

(** {2 Snapshots}

    What makes the registry merge-safe under the {!Pool}'s process
    workers: a worker captures a {!snapshot} when it starts a task,
    computes the {!delta} once the task finishes, and ships the delta to
    the parent, which {!merge}s it in.  Counters add; histogram
    observations append.  Because every per-task delta is disjoint, the
    merged registry equals what a single-process run over the same tasks
    would have produced — a property the test suite checks. *)

type snapshot

val snapshot : unit -> snapshot
(** The registry's current contents, as plain marshalable data.  O(number
    of names): histogram value lists are immutable and shared, not
    copied. *)

val delta : since:snapshot -> snapshot
(** Everything recorded after [since] was taken: counter increments and
    fresh histogram observations.  Only valid if {!reset} has not run in
    between. *)

val merge : snapshot -> unit
(** Add a (delta) snapshot into the registry: counters by addition,
    histogram values by observation.  Registers any names not yet
    present. *)

val dump : unit -> Jsonw.t
(** The registry as a JSON value:
    [{"counters": {name: n, ...},
      "histograms": {name: {count, sum, min, max, mean, p50, p90, p99}}}] *)

val dump_json : unit -> string
(** [Jsonw.to_string (dump ())]. *)
