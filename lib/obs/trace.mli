(** A span-based tracer for the whole toolchain.

    One global tracer collects begin/end spans (nestable, with string
    key/value attributes) and instant events, timestamped on the
    monotonic {!Clock}.  The driver opens a span around every pipeline
    stage (compile → train → diversify → link → simulate) and the bench
    harness around every experiment; [minicc --trace=FILE] and
    [bench --trace=FILE] export the collected events in Chrome
    trace-event JSON (load it in [chrome://tracing] or Perfetto).

    Tracing is {e disabled} by default and near-zero cost while disabled:
    {!begin_span}/{!end_span}/{!instant} test one boolean and return.
    The tracer is deliberately global — spans are opened many layers
    apart (driver, pass manager, simulator, bench runner) and threading a
    handle through every signature would dwarf the feature. *)

type span
(** An open span, returned by {!begin_span} and consumed by {!end_span}.
    While the tracer is disabled, spans are inert placeholders. *)

val enabled : unit -> bool

val start : unit -> unit
(** Enable collection, dropping any previously collected events. *)

val stop : unit -> unit
(** Disable collection.  Collected events are kept for {!export_json}. *)

val reset : unit -> unit
(** Disable and drop everything. *)

val begin_span : ?cat:string -> ?args:(string * string) list -> string -> span
(** Open a span named [name] with optional category and attributes. *)

val end_span : ?args:(string * string) list -> span -> unit
(** Close a span; [args] are merged with those given at {!begin_span}. *)

val with_span :
  ?cat:string -> ?args:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f] inside a span; the span is closed even if
    [f] raises. *)

val instant : ?cat:string -> ?args:(string * string) list -> string -> unit
(** A zero-duration marker event. *)

val event_count : unit -> int
(** Number of collected events (completed spans + instants). *)

(** {2 Cross-process stitching}

    The {!Pool}'s forked workers inherit the tracer state (enabled flag
    and time origin), so spans they record are on the parent's timeline.
    A worker takes a {!mark} when it picks up a task, ships
    {!since}[ mark] back with the task's result, and the parent
    {!absorb}s the events under the worker's id — [--trace] output then
    shows one track ([tid]) per worker. *)

type events
(** A batch of collected events; plain marshalable data. *)

val mark : unit -> int
(** The current collected-event count, to pass to {!since} later. *)

val since : int -> events
(** The events collected after {!mark} returned the given count. *)

val absorb : ?tid:int -> events -> unit
(** Append a batch recorded elsewhere, re-tagged with thread id [tid]
    (default 1; pool workers use [2 + worker slot]).  Dropped when the
    tracer is disabled. *)

val export_json : unit -> string
(** The collected events as a Chrome trace-event JSON object
    ([{"traceEvents": [...]}]), timestamps in microseconds. *)

val write : string -> unit
(** [write file] saves {!export_json} to [file]. *)
