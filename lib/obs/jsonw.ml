type t =
  | Null
  | Bool of bool
  | Int of int64
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let int i = Int (Int64.of_int i)

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let float_repr f =
  if not (Float.is_finite f) then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else
    (* Shortest representation that round-trips. *)
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let rec write b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Int i -> Buffer.add_string b (Int64.to_string i)
  | Float f -> Buffer.add_string b (float_repr f)
  | Str s ->
      Buffer.add_char b '"';
      Buffer.add_string b (escape s);
      Buffer.add_char b '"'
  | List l ->
      Buffer.add_char b '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char b ',';
          write b v)
        l;
      Buffer.add_char b ']'
  | Obj fields ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_char b '"';
          Buffer.add_string b (escape k);
          Buffer.add_string b "\":";
          write b v)
        fields;
      Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 1024 in
  write b v;
  Buffer.contents b

let to_channel oc v = output_string oc (to_string v)
