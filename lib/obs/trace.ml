type event = {
  name : string;
  cat : string;
  ph : [ `Complete | `Instant ];
  tid : int;  (* 1 = the main process; pool workers get 2, 3, ... *)
  ts_us : float;  (* start, microseconds since trace start *)
  dur_us : float;  (* 0 for instants *)
  args : (string * string) list;
}

type span = { sname : string; scat : string; st0 : float; sargs : (string * string) list; live : bool }

type events = event list  (* newest-first, like the collected buffer *)

let on = ref false
let t0 = ref 0.0
let events : event list ref = ref []  (* reverse chronological *)
let n_events = ref 0

(* Guards the collected-event buffer (the [Domain] pool backend records
   spans from several domains at once).  [on]/[t0] are read unlocked: a
   racy read of [on] only means a span near the enable/disable edge may
   be kept or dropped, which start/stop semantics allow anyway. *)
let lock = Lock.create ()

let enabled () = !on

let start () =
  Lock.protect lock (fun () ->
      events := [];
      n_events := 0;
      t0 := Clock.now_s ();
      on := true)

let stop () = on := false

let reset () =
  Lock.protect lock (fun () ->
      on := false;
      events := [];
      n_events := 0)

let us_since_start () = (Clock.now_s () -. !t0) *. 1e6

let push e =
  Lock.protect lock (fun () ->
      events := e :: !events;
      incr n_events)

let dead_span = { sname = ""; scat = ""; st0 = 0.0; sargs = []; live = false }

let begin_span ?(cat = "") ?(args = []) name =
  if not !on then dead_span
  else { sname = name; scat = cat; st0 = us_since_start (); sargs = args; live = true }

let end_span ?(args = []) s =
  if !on && s.live then
    push
      {
        name = s.sname;
        cat = s.scat;
        ph = `Complete;
        tid = 1;
        ts_us = s.st0;
        dur_us = Float.max 0.0 (us_since_start () -. s.st0);
        args = s.sargs @ args;
      }

let with_span ?cat ?args name f =
  if not !on then f ()
  else
    let s = begin_span ?cat ?args name in
    Fun.protect ~finally:(fun () -> end_span s) f

let instant ?(cat = "") ?(args = []) name =
  if !on then
    push
      {
        name;
        cat;
        ph = `Instant;
        tid = 1;
        ts_us = us_since_start ();
        dur_us = 0.0;
        args;
      }

let event_count () = !n_events

(* ---- cross-process stitching (see Pool) ----
   A forked worker inherits [on], [t0] and the monotonic clock state, so
   its timestamps stay on the parent's timeline; the parent re-tags the
   shipped events with the worker's id so Perfetto renders one track per
   worker. *)

let mark () = !n_events

let since m =
  Lock.protect lock (fun () ->
      let fresh = !n_events - m in
      let rec take n l =
        if n <= 0 then []
        else match l with [] -> [] | x :: tl -> x :: take (n - 1) tl
      in
      take fresh !events)

let absorb ?(tid = 1) evs =
  if !on then
    (* [evs] is newest-first; push oldest-first so the buffer stays in
       reverse chronological order. *)
    List.iter (fun e -> push { e with tid }) (List.rev evs)

let event_json (e : event) =
  let base =
    [
      ("name", Jsonw.Str e.name);
      ("cat", Jsonw.Str (if e.cat = "" then "psd" else e.cat));
      ("pid", Jsonw.int 1);
      ("tid", Jsonw.int e.tid);
      ("ts", Jsonw.Float e.ts_us);
    ]
  in
  let phase =
    match e.ph with
    | `Complete -> [ ("ph", Jsonw.Str "X"); ("dur", Jsonw.Float e.dur_us) ]
    | `Instant -> [ ("ph", Jsonw.Str "i"); ("s", Jsonw.Str "t") ]
  in
  let args =
    match e.args with
    | [] -> []
    | kvs -> [ ("args", Jsonw.Obj (List.map (fun (k, v) -> (k, Jsonw.Str v)) kvs)) ]
  in
  Jsonw.Obj (base @ phase @ args)

let export_json () =
  Jsonw.to_string
    (Jsonw.Obj
       [
         ("traceEvents", Jsonw.List (List.rev_map event_json !events));
         ("displayTimeUnit", Jsonw.Str "ms");
       ])

let write file =
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (export_json ()))
