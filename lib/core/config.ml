type strategy =
  | Off
  | Uniform of float
  | Profiled of {
      pmin : float;
      pmax : float;
      shape : Heuristic.shape;
      scope : [ `Program | `Function ];
    }

type t = { strategy : strategy; use_xchg : bool; bb_shift : bool; seed : int64 }

let off = { strategy = Off; use_xchg = false; bb_shift = false; seed = 0L }

let uniform ?(seed = 0L) p =
  if p < 0.0 || p > 1.0 then invalid_arg "Config.uniform: p outside [0,1]";
  { strategy = Uniform p; use_xchg = false; bb_shift = false; seed }

let profiled ?(seed = 0L) ?(shape = Heuristic.Logarithmic) ?(scope = `Program)
    ~pmin ~pmax () =
  if pmin < 0.0 || pmax > 1.0 || pmin > pmax then
    invalid_arg "Config.profiled: invalid range";
  { strategy = Profiled { pmin; pmax; shape; scope }; use_xchg = false; bb_shift = false; seed }

let paper_configs =
  [
    ("p50", uniform 0.50);
    ("p30", uniform 0.30);
    ("p25-50", profiled ~pmin:0.25 ~pmax:0.50 ());
    ("p10-50", profiled ~pmin:0.10 ~pmax:0.50 ());
    ("p0-30", profiled ~pmin:0.0 ~pmax:0.30 ());
  ]

let pct p = int_of_float ((p *. 100.0) +. 0.5)

(* Every field that changes behaviour must appear in the name: the name
   keys reports AND derives the RNG stream (Rng.of_labels in
   Driver.diversify), so two distinct configs sharing a name would also
   share their randomness. *)
let name t =
  (match t.strategy with
  | Off -> "baseline"
  | Uniform p -> Printf.sprintf "p%d" (pct p)
  | Profiled { pmin; pmax; shape; scope } ->
      Printf.sprintf "p%d-%d%s%s" (pct pmin) (pct pmax)
        (match shape with Heuristic.Linear -> "-lin" | Heuristic.Logarithmic -> "")
        (match scope with `Function -> "-fn" | `Program -> ""))
  ^ (if t.use_xchg then "+xchg" else "")
  ^ if t.bb_shift then "+shift" else ""

(* The one config grammar every entry point shares: minicc's --config,
   the serve protocol's request field, and the bench harness all resolve
   specs here, so a daemon and its clients can never disagree about what
   a name means. *)
let of_spec spec =
  match List.assoc_opt spec paper_configs with
  | Some c -> Ok c
  | None -> (
      if spec = "off" || spec = "baseline" then Ok off
      else
        match String.split_on_char ':' spec with
        | [ "uniform"; p ] -> (
            match float_of_string_opt p with
            | Some p when p >= 0.0 && p <= 1.0 -> Ok (uniform p)
            | _ -> Error (Printf.sprintf "uniform: bad probability %S" p))
        | [ "range"; lo; hi ] -> (
            match (float_of_string_opt lo, float_of_string_opt hi) with
            | Some pmin, Some pmax
              when pmin >= 0.0 && pmax <= 1.0 && pmin <= pmax ->
                Ok (profiled ~pmin ~pmax ())
            | _ -> Error (Printf.sprintf "range: bad bounds %S:%S" lo hi))
        | _ ->
            Error
              (Printf.sprintf
                 "unknown config %S (use p50 p30 p25-50 p10-50 p0-30, off, \
                  uniform:P or range:LO:HI)"
                 spec))
