(** The end-to-end diversifying compiler, as a staged driver.

    Ties the whole system together the way the paper's modified LLVM
    does: MiniC source → IR → optimization pipeline ([-O2] by default,
    or any {!Pipeline.descr}) → instruction selection → liveness →
    register allocation → symbolic assembly → {b NOP insertion} → layout
    and linking against the fixed runtime.

    Every stage runs through the {!Cctx.t} carried by the compiled
    program: the frontend, each IR pass run (with its fixpoint
    iterations), each machine-lowering stage, linking, and the
    NOP-insertion pass itself — which registers under the ["diversify"]
    stage, immediately before layout, exactly where the paper places it
    (§4).  [compiled.cctx] is therefore a complete per-stage account of
    where compile time and code size went.

    The profiling round-trip mirrors §3.1: compile once, run the program
    on a training input under the instrumented (reference) interpreter,
    and feed the collected block counts to subsequent diversified
    builds. *)

type compiled = {
  name : string;  (** program name (seed label and reporting key) *)
  modul : Ir.modul;  (** the optimized IR *)
  objects : Objfile.func_obj list;
      (** one relocatable object per user function, in definition order —
          lowered through the content-addressed {!Store}, so a function
          whose (IR digest, pipeline) was lowered before is a store hit
          and skips isel/liveness/regalloc/emit entirely *)
  asm : Asm.func list;
      (** undiversified user functions (the objects' symbolic streams) *)
  main_arity : int;
  cctx : Cctx.t;  (** per-stage instrumentation for this compilation *)
  pipeline : Pipeline.descr;  (** the pass pipeline that was run *)
  cache_key : string;  (** identity under {!compile_cached} *)
}

val compile :
  ?opt:Pipeline.level ->
  ?passes:Pipeline.descr ->
  ?verify_each:bool ->
  name:string ->
  string ->
  compiled
(** Compile MiniC source.  [passes] selects an explicit pipeline and
    overrides [opt] (default [-O2]).  With [verify_each], the IR is
    re-verified after every pass run, not only after the pipeline.
    Raises [Failure] on frontend errors, verification failures, or if
    [main] is missing. *)

val compile_cached :
  ?opt:Pipeline.level ->
  ?passes:Pipeline.descr ->
  ?verify_each:bool ->
  name:string ->
  string ->
  compiled
(** Like {!compile}, memoized on (name, source digest, pipeline,
    [verify_each]).  The evaluation harness compiles each workload many
    times across experiments; this is its shared artifact cache. *)

val train : compiled -> args:int32 list -> Profile.t
(** One profiling run on a training input. *)

val train_cached : compiled -> args:int32 list -> Profile.t
(** Like {!train}, memoized on the compilation's cache key and [args]. *)

val train_many : compiled -> args_list:int32 list list -> Profile.t
(** Accumulated profile over several training inputs. *)

val link_baseline : compiled -> Link.image
(** The undiversified binary. *)

val link_baseline_cached : compiled -> Link.image
(** Like {!link_baseline}, memoized on the compilation's cache key. *)

val clear_caches : ?store:bool -> unit -> unit
(** Drop every memoized artifact (compilations, profiles, baselines) and,
    unless [~store:false], the content-addressed function store too.
    [~store:false] is the incremental-build scenario: the program-level
    memos go cold but per-function lowering artifacts survive. *)

val diversify :
  compiled ->
  config:Config.t ->
  profile:Profile.t ->
  version:int ->
  Link.image * Nop_insert.stats
(** Build one diversified version.  The RNG stream is derived from
    (config seed, program name, config name, version), so the same triple
    always reproduces the same binary and distinct versions are
    independent.  Records a ["diversify"/"nop-insert"] stat into the
    compilation context. *)

val diversify_linked :
  compiled ->
  config:Config.t ->
  profile:Profile.t ->
  version:int ->
  Link.image * Nop_insert.stats
(** {!diversify} through the separate-compilation path: NOP-insert each
    function, wrap the results as relocatable objects, and
    {!Link.link_objects} them against the memoized runtime objects.
    Byte-identical to {!diversify} (same RNG stream, same layout) — the
    equivalence suite pins this — but performs {e only} NOP insertion
    and the relink: lowering always comes from {!compiled.objects}. *)

val population :
  compiled ->
  config:Config.t ->
  profile:Profile.t ->
  n:int ->
  Link.image list
(** [n] independent versions (the paper builds 25 for Tables 2 and 3),
    built through {!diversify_linked} — a warm population build performs
    zero isel/liveness/regalloc stage runs. *)

val run_ir : compiled -> args:int32 list -> Interp.result
(** Execute the optimized IR under the reference interpreter. *)

val run_image :
  ?fuel:int64 ->
  ?profile:bool ->
  ?sample_period:int ->
  ?engine:Sim.engine ->
  Link.image ->
  args:int32 list ->
  Sim.result
(** Execute a linked binary under the CPU simulator.  [profile] collects
    the per-offset runtime {!Sim.exec_profile} (see {!Simprof});
    [sample_period] additionally records a cycle-sampled
    {!Sim.sample_profile} (see {!Sprof}); [engine] selects the execution
    engine (default: the block-cached engine; [Interp] is the oracle). *)

val record_profile :
  ?fuel:int64 ->
  ?sample_period:int ->
  ?config:string ->
  ?seed:int64 ->
  Link.image ->
  workload:string ->
  args:int32 list ->
  Sprof.t * Sim.result
(** One production-style profiling run: execute the (possibly
    diversified) binary with cycle sampling on (default period
    {!Sim.default_sample_period}) and back-map the samples into a
    {!Sprof.t} recording.  [config]/[seed] label the provenance with the
    diversification that produced the image. *)

val train_from_profile :
  ?fresh:Profile.t -> ?previous:Profile.t -> compiled -> Sprof.t -> Profile.t
(** The production side of the §3.1 loop: derive the training profile
    for {!diversify} from a recorded (loaded, merged, possibly stale,
    possibly cross-variant) sampled profile instead of an instrumented
    interpreter run — {!Sprof.to_profile} with telemetry.  When [fresh]
    is given (an exact training profile of the same program), exports
    staleness telemetry through {!Obs.Metrics}: histograms
    [pgo.staleness.coverage_pct], [pgo.staleness.hot_overlap_pct],
    [pgo.staleness.mean_drift_pct] and [pgo.staleness.max_drift_pct].
    When [previous] is given (the profile the running binary was trained
    on), applies retrain-on-drift hysteresis: if the recording has not
    {!Sprof.materially_drifted} from [previous], returns [previous]
    unchanged (counter [pgo.retrain.kept]) so the loop redeploys nothing
    on sampling noise; otherwise returns the freshly quantized profile
    (counter [pgo.retrain.applied]). *)
