type compiled = {
  name : string;
  modul : Ir.modul;
  objects : Objfile.func_obj list;
  asm : Asm.func list;
  main_arity : int;
  cctx : Cctx.t;
  pipeline : Pipeline.descr;
  cache_key : string;
}

let modul_size (m : Ir.modul) =
  List.fold_left (fun n f -> n + Pipeline.ir_size f) 0 m.Ir.funcs

let cache_key_of ~descr ~verify_each ~name src =
  Printf.sprintf "%s|%s|%b|%s" name
    (Pipeline.descr_to_string descr)
    verify_each
    (Digest.to_hex (Digest.string src))

(* ---- separate compilation: per-function lowering through the
   content-addressed artifact store ---- *)

let ir_digest_of (irf : Ir.func) =
  Digest.to_hex (Digest.string (Format.asprintf "%a" Ir.pp_func irf))

(* Lower one optimized function to a relocatable object, reusing a
   stored artifact when the function's full provenance (IR digest ×
   pipeline × object-format version; config "-"/seed 0 — lowering is
   diversification-independent) has been lowered before.  Only a miss
   runs isel/liveness/regalloc/emit (and thus records machine-stage
   cctx stats and bumps the machine.<stage>.runs counters). *)
let lower_func ~cctx ~descr (irf : Ir.func) =
  let ir_digest = ir_digest_of irf in
  let pipeline = Pipeline.descr_to_string descr in
  Store.find_or_lower ~ir_digest ~pipeline ~config:"-" ~seed:0L (fun () ->
      let asm = Stages.func ~cctx irf in
      Objfile.of_asm ~ir_digest ~pipeline ~arity:(List.length irf.Ir.params)
        asm)

let lower_modul ~cctx ~descr (m : Ir.modul) =
  List.map (lower_func ~cctx ~descr) m.Ir.funcs

let compile ?(opt = Pipeline.O2) ?passes ?(verify_each = false) ~name src =
  let descr =
    match passes with Some d -> d | None -> Pipeline.of_level opt
  in
  Trace.with_span "compile"
    ~args:
      [ ("program", name); ("pipeline", Pipeline.descr_to_string descr) ]
    (fun () ->
      let cctx = Cctx.create ~verify_each name in
      let modul, dt =
        Trace.with_span "front" ~args:[ ("program", name) ] (fun () ->
            Cctx.timed (fun () -> Minic.compile_exn src))
      in
      Cctx.record cctx
        {
          Cctx.stage = "front";
          pass = "parse+lower";
          func = "*";
          time_s = dt;
          items_before = 0;
          items_after = modul_size modul;
          bytes = 0;
          changed = true;
        };
      let modul =
        Trace.with_span "ir-pipeline" ~args:[ ("program", name) ] (fun () ->
            Pipeline.run ~cctx ~verify_each descr modul)
      in
      let (), dt = Cctx.timed (fun () -> Verify.check_exn modul) in
      Cctx.record cctx
        {
          Cctx.stage = "ir";
          pass = "verify";
          func = "*";
          time_s = dt;
          items_before = modul_size modul;
          items_after = modul_size modul;
          bytes = 0;
          changed = false;
        };
      let main =
        match Ir.find_func modul "main" with
        | f -> f
        | exception Not_found ->
            failwith ("Driver.compile: " ^ name ^ " has no main")
      in
      let objects =
        Trace.with_span "machine" ~args:[ ("program", name) ] (fun () ->
            lower_modul ~cctx ~descr modul)
      in
      {
        name;
        modul;
        objects;
        asm = List.map (fun (o : Objfile.func_obj) -> o.Objfile.asm) objects;
        main_arity = List.length main.params;
        cctx;
        pipeline = descr;
        cache_key = cache_key_of ~descr ~verify_each ~name src;
      })

(* ---- shared artifact caches (the evaluation harness recompiles each
   workload across many experiments; everything keys off cache_key) ---- *)

let compile_cache : (string, compiled) Hashtbl.t = Hashtbl.create 32
let profile_cache : (string, Profile.t) Hashtbl.t = Hashtbl.create 32
let baseline_cache : (string, Link.image) Hashtbl.t = Hashtbl.create 32

let clear_caches ?(store = true) () =
  Hashtbl.reset compile_cache;
  Hashtbl.reset profile_cache;
  Hashtbl.reset baseline_cache;
  if store then Store.clear ()

let memo ~metric tbl key build =
  (* Every lookup lands in the metrics registry as a hit or a miss, so a
     bench dump shows exactly how much recompilation the caches saved. *)
  match Hashtbl.find_opt tbl key with
  | Some v ->
      Metrics.incr (Metrics.counter (metric ^ ".hit"));
      v
  | None ->
      Metrics.incr (Metrics.counter (metric ^ ".miss"));
      let v = build () in
      Hashtbl.replace tbl key v;
      v

let compile_cached ?(opt = Pipeline.O2) ?passes ?(verify_each = false) ~name
    src =
  let descr =
    match passes with Some d -> d | None -> Pipeline.of_level opt
  in
  let key = cache_key_of ~descr ~verify_each ~name src in
  memo ~metric:"driver.compile_cache" compile_cache key (fun () ->
      compile ~opt ?passes ~verify_each ~name src)

let train c ~args =
  Trace.with_span "train" ~args:[ ("program", c.name) ] (fun () ->
      Profile.collect c.modul ~entry:"main" ~args)

let train_many c ~args_list =
  Trace.with_span "train" ~args:[ ("program", c.name) ] (fun () ->
      Profile.collect_many c.modul ~entry:"main" ~args_list)

let train_cached c ~args =
  let key =
    c.cache_key ^ "|" ^ String.concat "," (List.map Int32.to_string args)
  in
  memo ~metric:"driver.profile_cache" profile_cache key (fun () ->
      train c ~args)

let link_baseline c =
  let image, dt =
    Trace.with_span "link" ~args:[ ("program", c.name) ] (fun () ->
        Cctx.timed (fun () ->
            Link.link_objects ~expect_main_arity:c.main_arity
              ~objects:c.objects ~globals:c.modul.globals ()))
  in
  Cctx.record c.cctx
    {
      Cctx.stage = "link";
      pass = "layout";
      func = "*";
      time_s = dt;
      items_before = List.length c.asm;
      items_after = List.length image.Link.symbols;
      bytes = String.length image.Link.text;
      changed = true;
    };
  image

let link_baseline_cached c =
  memo ~metric:"driver.baseline_cache" baseline_cache c.cache_key (fun () ->
      link_baseline c)

(* The shared diversification front half: one NOP-insertion pass over
   the whole program under the (config seed, program, config, version)
   RNG stream, with cctx/metrics accounting.  Both link paths consume
   its output, so their RNG streams — and therefore their images — are
   identical by construction. *)
let diversify_funcs c ~config ~profile ~version =
  let cname = Config.name config in
  let rng =
    Rng.of_labels config.Config.seed [ c.name; cname; string_of_int version ]
  in
  let (funcs, stats), dt =
    Cctx.timed (fun () -> Nop_insert.run_program ~config ~profile ~rng c.asm)
  in
  Cctx.record c.cctx
    {
      Cctx.stage = "diversify";
      pass = "nop-insert";
      func = "*";
      time_s = dt;
      items_before = stats.Nop_insert.insns_seen;
      items_after =
        stats.Nop_insert.insns_seen + stats.Nop_insert.nops_inserted;
      bytes = stats.Nop_insert.bytes_added;
      changed = stats.Nop_insert.nops_inserted > 0;
    };
  Metrics.incr
    ~by:(Int64.of_int stats.Nop_insert.nops_inserted)
    (Metrics.counter ("diversify.nops_inserted." ^ cname));
  Metrics.observe
    (Metrics.histogram ("diversify.nop_bytes." ^ cname))
    (float_of_int stats.Nop_insert.bytes_added);
  (funcs, stats)

let diversify c ~config ~profile ~version =
  let cname = Config.name config in
  Trace.with_span "diversify"
    ~args:
      [ ("program", c.name); ("config", cname);
        ("version", string_of_int version) ]
    (fun () ->
      let funcs, stats = diversify_funcs c ~config ~profile ~version in
      ( Link.link ~funcs ~globals:c.modul.globals ~main_arity:c.main_arity,
        stats ))

let diversify_linked c ~config ~profile ~version =
  let cname = Config.name config in
  Trace.with_span "diversify"
    ~args:
      [ ("program", c.name); ("config", cname);
        ("version", string_of_int version) ]
    (fun () ->
      let funcs, stats = diversify_funcs c ~config ~profile ~version in
      (* Re-wrap each diversified function as an object carrying its
         undiversified provenance, and compose with the memoized runtime
         objects: only NOP insertion and the relink ran — no
         isel/liveness/regalloc — which is the whole point of the
         separate-compilation pipeline. *)
      let objects =
        List.map2
          (fun (o : Objfile.func_obj) f ->
            Objfile.of_asm ~ir_digest:o.Objfile.meta.Objfile.ir_digest
              ~pipeline:o.Objfile.meta.Objfile.pipeline
              ~arity:o.Objfile.meta.Objfile.arity f)
          c.objects funcs
      in
      let image =
        Link.link_objects ~expect_main_arity:c.main_arity
          ~runtime:(Link.runtime_objects ~main_arity:c.main_arity)
          ~objects ~globals:c.modul.globals ()
      in
      (image, stats))

let population c ~config ~profile ~n =
  List.init n (fun version ->
      fst (diversify_linked c ~config ~profile ~version))

let run_ir c ~args = Interp.run c.modul ~entry:"main" ~args

let run_image ?fuel ?profile ?sample_period ?engine image ~args =
  Trace.with_span "simulate" (fun () ->
      Sim.run ?fuel ?profile ?sample_period ?engine image ~args)

let record_profile ?fuel ?(sample_period = Sim.default_sample_period) ?config
    ?seed image ~workload ~args =
  let r =
    Trace.with_span "record-profile"
      ~args:[ ("workload", workload) ]
      (fun () -> Sim.run ?fuel ~sample_period image ~args)
  in
  (Sprof.of_run ~image ?config ?seed ~workload r, r)

let train_from_profile ?fresh ?previous c (sp : Sprof.t) =
  Trace.with_span "train-from-profile"
    ~args:[ ("program", c.name) ]
    (fun () ->
      Metrics.incr (Metrics.counter "driver.train_from_profile");
      (match fresh with
      | None -> ()
      | Some fresh ->
          let s = Sprof.staleness ~fresh sp in
          Metrics.observe
            (Metrics.histogram "pgo.staleness.coverage_pct")
            s.coverage_pct;
          Metrics.observe
            (Metrics.histogram "pgo.staleness.hot_overlap_pct")
            s.hot_overlap_pct;
          Metrics.observe
            (Metrics.histogram "pgo.staleness.mean_drift_pct")
            s.mean_drift_pct;
          Metrics.observe
            (Metrics.histogram "pgo.staleness.max_drift_pct")
            s.max_drift_pct);
      match previous with
      | Some prev when not (Sprof.materially_drifted ~previous:prev sp) ->
          Metrics.incr (Metrics.counter "pgo.retrain.kept");
          prev
      | _ ->
          Metrics.incr (Metrics.counter "pgo.retrain.applied");
          Sprof.to_profile sp)
