(** Diversification configuration.

    Mirrors the parameter sets evaluated in the paper: uniform
    probabilities (pNOP = 50%, 30%) and profile-guided ranges
    (25–50%, 10–50%, 0–30%) under the logarithmic heuristic. *)

type strategy =
  | Off  (** no diversification — the baseline binary *)
  | Uniform of float  (** one pNOP for every instruction (Algorithm 1) *)
  | Profiled of {
      pmin : float;
      pmax : float;
      shape : Heuristic.shape;
      scope : [ `Program | `Function ];
          (** whether x_max is the program-wide or per-function maximum
              (the paper uses the program-wide maximum) *)
    }

type t = {
  strategy : strategy;
  use_xchg : bool;  (** enable the two bus-locking XCHG candidates *)
  bb_shift : bool;
      (** the paper's §6 extension: prepend a jumped-over dummy block of
          random size to every function, compensating for the low
          displacement NOP insertion achieves near the start of the
          binary *)
  seed : int64;  (** base seed; combined with program/version labels *)
}

val off : t
val uniform : ?seed:int64 -> float -> t

val profiled :
  ?seed:int64 -> ?shape:Heuristic.shape -> ?scope:[ `Program | `Function ] ->
  pmin:float -> pmax:float -> unit -> t

val paper_configs : (string * t) list
(** The five configurations of Figure 4 / Tables 2–3, in paper order:
    ["p50"], ["p30"], ["p25-50"], ["p10-50"], ["p0-30"]. *)

val of_spec : string -> (t, string) result
(** Resolve a configuration spec: a paper-config name (["p0-30"]),
    ["off"]/["baseline"], ["uniform:P"], or ["range:LO:HI"].  The one
    grammar shared by [minicc --config], the serve protocol and the
    bench harness.  The error names the offending spec. *)

val name : t -> string
(** Short display name, e.g. "p10-50".  Injective over behaviour-relevant
    fields: per-function scope appends ["-fn"], the XCHG candidates
    ["+xchg"], basic-block shifting ["+shift"], the linear heuristic
    ["-lin"] — the name seeds the per-version RNG stream (see
    {!Driver.diversify}), so distinct configs must never collide. *)
