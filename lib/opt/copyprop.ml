(* The environment maps a temp to the operand it currently equals.  An
   entry is killed when its key or its source temp is redefined. *)

let run (f : Ir.func) =
  let changed = ref false in
  let prop_block (b : Ir.block) =
    let env : (Ir.temp, Ir.operand) Hashtbl.t = Hashtbl.create 16 in
    let subst op =
      match op with
      | Ir.Temp t -> (
          match Hashtbl.find_opt env t with
          | Some o ->
              changed := true;
              o
          | None -> op)
      | Ir.Const _ -> op
    in
    let kill t =
      Hashtbl.remove env t;
      (* Drop any entry whose source is t. *)
      let stale =
        Hashtbl.fold
          (fun k v acc ->
            match v with Ir.Temp s when s = t -> k :: acc | _ -> acc)
          env []
      in
      List.iter (Hashtbl.remove env) stale
    in
    let rewrite (i : Ir.instr) : Ir.instr =
      let i' =
        match i with
        | Ir.Bin (op, d, a, b) -> Ir.Bin (op, d, subst a, subst b)
        | Ir.Neg (d, a) -> Ir.Neg (d, subst a)
        | Ir.Not (d, a) -> Ir.Not (d, subst a)
        | Ir.Cmp (r, d, a, b) -> Ir.Cmp (r, d, subst a, subst b)
        | Ir.Copy (d, a) -> Ir.Copy (d, subst a)
        | Ir.Load (d, a) -> Ir.Load (d, subst a)
        | Ir.Store (a, v) -> Ir.Store (subst a, subst v)
        | Ir.Global_addr _ | Ir.Stack_addr _ -> i
        | Ir.Call (d, f, args) -> Ir.Call (d, f, List.map subst args)
      in
      (match Ir.def_temp i' with
      | Some d -> (
          kill d;
          match i' with
          | Ir.Copy (_, (Ir.Const _ as src)) -> Hashtbl.replace env d src
          | Ir.Copy (_, (Ir.Temp s as src)) when s <> d ->
              Hashtbl.replace env d src
          | _ -> ())
      | None -> ());
      i'
    in
    b.Ir.instrs <- List.map rewrite b.Ir.instrs;
    b.Ir.term <-
      (match b.Ir.term with
      | Ir.Ret (Some o) -> Ir.Ret (Some (subst o))
      | Ir.Ret None | Ir.Jmp _ -> b.Ir.term
      | Ir.Cbr (r, a, c, l1, l2) -> Ir.Cbr (r, subst a, subst c, l1, l2)
      | Ir.Cbr_nz (a, l1, l2) -> Ir.Cbr_nz (subst a, l1, l2))
  in
  List.iter prop_block f.blocks;
  !changed

let pass =
  {
    Pass.name = "copyprop";
    descr = "block-local copy and constant propagation";
    run;
  }
