(* The expression key abstracts the defined temp away so two instructions
   computing the same value compare equal. *)
type key =
  | Kbin of Ir.binop * Ir.operand * Ir.operand
  | Kneg of Ir.operand
  | Knot of Ir.operand
  | Kcmp of Ir.relop * Ir.operand * Ir.operand
  | Kload of Ir.operand
  | Kgaddr of string
  | Ksaddr of int

let key_of (i : Ir.instr) : key option =
  match i with
  | Ir.Bin (op, _, a, b) -> Some (Kbin (op, a, b))
  | Ir.Neg (_, a) -> Some (Kneg a)
  | Ir.Not (_, a) -> Some (Knot a)
  | Ir.Cmp (r, _, a, b) -> Some (Kcmp (r, a, b))
  | Ir.Load (_, a) -> Some (Kload a)
  | Ir.Global_addr (_, g) -> Some (Kgaddr g)
  | Ir.Stack_addr (_, s) -> Some (Ksaddr s)
  | Ir.Copy _ | Ir.Store _ | Ir.Call _ -> None

let key_operands = function
  | Kbin (_, a, b) | Kcmp (_, a, b) -> [ a; b ]
  | Kneg a | Knot a | Kload a -> [ a ]
  | Kgaddr _ | Ksaddr _ -> []

let is_load = function Kload _ -> true | _ -> false

let run (f : Ir.func) =
  let changed = ref false in
  let cse_block (b : Ir.block) =
    (* available: expression key -> temp currently holding its value *)
    let available : (key, Ir.temp) Hashtbl.t = Hashtbl.create 16 in
    let kill_temp t =
      let stale =
        Hashtbl.fold
          (fun k v acc ->
            let mentions =
              v = t
              || List.exists
                   (function Ir.Temp u -> u = t | Ir.Const _ -> false)
                   (key_operands k)
            in
            if mentions then k :: acc else acc)
          available []
      in
      List.iter (Hashtbl.remove available) stale
    in
    let kill_loads () =
      let stale =
        Hashtbl.fold
          (fun k _ acc -> if is_load k then k :: acc else acc)
          available []
      in
      List.iter (Hashtbl.remove available) stale
    in
    let rewrite (i : Ir.instr) : Ir.instr =
      match key_of i with
      | Some k -> (
          match (Hashtbl.find_opt available k, Ir.def_temp i) with
          | Some prev, Some d ->
              changed := true;
              kill_temp d;
              (* The copy re-establishes availability only if d itself is
                 not an operand of the expression. *)
              Ir.Copy (d, Ir.Temp prev)
          | None, Some d ->
              kill_temp d;
              (* Do not record expressions that consume their own result
                 (e.g. [t <- t + 1]): after the redefinition the key no
                 longer describes the stored value. *)
              let self_referential =
                List.exists
                  (function Ir.Temp u -> u = d | Ir.Const _ -> false)
                  (key_operands k)
              in
              if not self_referential then Hashtbl.replace available k d;
              i
          | _, None -> i)
      | None ->
          (match i with
          | Ir.Store _ -> kill_loads ()
          | Ir.Call _ ->
              (* A call may read and write memory. *)
              kill_loads ()
          | _ -> ());
          (match Ir.def_temp i with Some d -> kill_temp d | None -> ());
          i
    in
    b.Ir.instrs <- List.map rewrite b.Ir.instrs
  in
  List.iter cse_block f.blocks;
  !changed

let pass =
  {
    Pass.name = "cse";
    descr = "block-local common-subexpression elimination";
    run;
  }
