(** Block-local common-subexpression elimination.

    Within one block, a pure computation that repeats an earlier one with
    identical operands is rewritten into a copy of the earlier result.
    Loads participate until the next store or call (either could change
    memory).  Availability is killed when any operand temp — or the
    defining temp itself — is redefined. *)

val run : Ir.func -> bool
(** Returns [true] if anything changed. *)

val pass : Pass.t
(** This transformation as a registered, first-class pass. *)
