(** Constant folding and algebraic simplification.

    Folds pure instructions whose operands are constants, applies identity
    rules ([x+0], [x*1], [x*0], [x&0], [x|0], [x^x], shifts by 0), and
    folds conditional branches with decidable conditions into jumps.
    Division by a zero constant is {e not} folded — the trap must remain a
    runtime event, exactly as in a production compiler. *)

val run : Ir.func -> bool
(** Returns [true] if anything changed. *)

val pass : Pass.t
(** This transformation as a registered, first-class pass. *)
