(** Dead-code elimination.

    Removes pure instructions whose defined temp is never used anywhere in
    the function (instruction operands or terminators).  Stores and calls
    are never removed.  Iterates internally to a fixpoint, so chains of
    dead computations disappear in one call. *)

val run : Ir.func -> bool
(** Returns [true] if anything changed. *)

val pass : Pass.t
(** This transformation as a registered, first-class pass. *)
