type t = { name : string; descr : string; run : Ir.func -> bool }
