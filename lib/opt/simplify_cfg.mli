(** Control-flow-graph cleanup.

    Four rewrites, iterated to a fixpoint:
    {ul
    {- unreachable-block removal;}
    {- jump threading — a branch to an empty block that only jumps on is
       retargeted past it;}
    {- conditional branches with equal arms become jumps;}
    {- straight-line merging — a block whose only successor has it as its
       only predecessor absorbs that successor.}}

    The entry block always keeps its position and label. *)

val run : Ir.func -> bool
(** Returns [true] if anything changed. *)

val pass : Pass.t
(** This transformation as a registered, first-class pass. *)
