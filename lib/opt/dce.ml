let used_temps (f : Ir.func) =
  let used = Hashtbl.create 64 in
  let use = function
    | Ir.Temp t -> Hashtbl.replace used t ()
    | Ir.Const _ -> ()
  in
  List.iter
    (fun b ->
      List.iter (fun i -> List.iter use (Ir.instr_uses i)) b.Ir.instrs;
      List.iter use (Ir.term_uses b.Ir.term))
    f.blocks;
  used

let sweep_once (f : Ir.func) =
  let used = used_temps f in
  let changed = ref false in
  List.iter
    (fun b ->
      b.Ir.instrs <-
        List.filter
          (fun i ->
            let self_copy =
              match i with
              | Ir.Copy (t, Ir.Temp s) -> t = s
              | _ -> false
            in
            let dead =
              self_copy
              || (not (Ir.has_side_effect i))
                 &&
                 match Ir.def_temp i with
                 | Some t -> not (Hashtbl.mem used t)
                 | None -> false
            in
            if dead then changed := true;
            not dead)
          b.Ir.instrs)
    f.blocks;
  (* A call whose result is unused keeps its side effects but can drop the
     destination, which in turn may let other defs die. *)
  List.iter
    (fun b ->
      b.Ir.instrs <-
        List.map
          (function
            | Ir.Call (Some t, callee, args) when not (Hashtbl.mem used t) ->
                changed := true;
                Ir.Call (None, callee, args)
            | i -> i)
          b.Ir.instrs)
    f.blocks;
  !changed

let run f =
  let changed = ref false in
  while sweep_once f do
    changed := true
  done;
  !changed

let pass = { Pass.name = "dce"; descr = "dead-code elimination"; run }
