(** First-class IR optimization passes.

    A pass is a name, a one-line description, and an in-place rewrite of
    one function that reports whether it changed anything.  Making passes
    values (rather than a hardwired call sequence) is what lets the
    pipeline be described as data: parsed from a [--passes] string,
    reordered, ablated ("O2 minus CSE"), and instrumented per run by the
    pass manager.

    Every pass module exports its own [pass] value; {!Pipeline.registry}
    collects them. *)

type t = {
  name : string;  (** registry key, e.g. ["constfold"] — no commas *)
  descr : string;  (** one-line description for [--help] and docs *)
  run : Ir.func -> bool;  (** rewrite in place; [true] if anything changed *)
}
