(* Retarget a branch through chains of trivial forwarding blocks
   (no instructions, unconditional jump).  Cycles of empty blocks
   (e.g. "while(1);") are left alone. *)
let thread_target f start =
  let rec follow l seen =
    if List.mem l seen then l
    else
      match Ir.find_block f l with
      | { Ir.instrs = []; term = Ir.Jmp next; _ } -> follow next (l :: seen)
      | _ -> l
      | exception Not_found -> l
  in
  follow start []

let run (f : Ir.func) =
  let changed = ref false in
  let continue_ = ref true in
  while !continue_ do
    continue_ := false;
    (* 1. Collapse equal-armed conditionals; 2. thread jumps. *)
    List.iter
      (fun b ->
        let term' =
          match b.Ir.term with
          | Ir.Cbr (_, _, _, l1, l2) when l1 = l2 -> Ir.Jmp l1
          | Ir.Cbr_nz (_, l1, l2) when l1 = l2 -> Ir.Jmp l1
          | t -> t
        in
        let term'' = Ir.map_term_labels (thread_target f) term' in
        if term'' <> b.Ir.term then begin
          b.Ir.term <- term'';
          changed := true;
          continue_ := true
        end)
      f.blocks;
    (* 3. Remove unreachable blocks. *)
    let cfg = Cfg.of_func f in
    let reachable, unreachable =
      List.partition (fun b -> Cfg.reachable cfg b.Ir.label) f.blocks
    in
    if unreachable <> [] then begin
      f.blocks <- reachable;
      changed := true;
      continue_ := true
    end;
    (* 4. Merge straight-line pairs. *)
    let cfg = Cfg.of_func f in
    let merged = ref false in
    List.iter
      (fun b ->
        if not !merged then
          match b.Ir.term with
          | Ir.Jmp next
            when next <> b.Ir.label
                 && next <> Cfg.entry cfg
                 && Cfg.preds cfg next = [ b.Ir.label ] -> (
              match Ir.find_block f next with
              | nb ->
                  b.Ir.instrs <- b.Ir.instrs @ nb.Ir.instrs;
                  b.Ir.term <- nb.Ir.term;
                  f.blocks <-
                    List.filter (fun x -> x.Ir.label <> next) f.blocks;
                  merged := true;
                  changed := true;
                  continue_ := true
              | exception Not_found -> ())
          | _ -> ())
      f.blocks
  done;
  !changed

let pass =
  {
    Pass.name = "simplify-cfg";
    descr = "CFG cleanup: unreachable blocks, jump threading, merging";
    run;
  }
