(** Block-local copy and constant propagation.

    Within one basic block, a use of [t] after [t <- c] (constant) or
    [t <- s] (copy) is replaced by [c]/[s], as long as neither side has
    been redefined in between.  Restricting to a single block keeps the
    analysis trivially sound in this non-SSA IR; the CFG simplifier's
    block merging extends its reach across former block boundaries. *)

val run : Ir.func -> bool
(** Returns [true] if anything changed. *)

val pass : Pass.t
(** This transformation as a registered, first-class pass. *)
