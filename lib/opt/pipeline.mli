(** The pass manager.

    A pipeline is described by data — a {!descr}: the list of
    {!Pass.t} values to run, iterated to a fixpoint bounded by
    [max_rounds].  Descriptions parse from strings and round-trip
    ({!descr_of_string} / {!descr_to_string}), so paper configurations
    and ablations ("O2 minus CSE") are one-line invocations of the
    [minicc --passes] flag.

    {!run} executes a description over a module, optionally recording one
    {!Cctx.stat} per pass run (wall time, IR size delta) into a
    compilation context, and optionally re-verifying every function after
    every pass ([verify_each]) rather than only once at the end — a
    malformed function is reported against the pass that broke it. *)

type level = O0 | O1 | O2
(** [O0]: no optimization.  [O1]: one round of the standard sequence.
    [O2]: iterate the standard sequence to fixpoint (bounded). *)

val level_of_string : string -> level option
val level_name : level -> string

val registry : Pass.t list
(** Every known IR pass, in standard [-O2] order: CFG simplification,
    constant folding, copy propagation, CSE, DCE. *)

val find_pass : string -> Pass.t option
val pass_names : string list

type descr = {
  passes : Pass.t list;  (** run in order, repeatedly *)
  max_rounds : int;  (** fixpoint bound; [1] = single round, [0] = nothing *)
}

val default_rounds : int
(** Fixpoint bound used when a description doesn't specify one (10 —
    far beyond what real inputs need, but guarantees termination even if
    a pass pair were to oscillate). *)

val of_level : level -> descr

val descr_to_string : descr -> string
(** Comma-separated pass names, with an [@N] suffix when [max_rounds]
    differs from {!default_rounds} — e.g. ["simplify-cfg,constfold@1"].
    The empty pipeline prints as [""]. *)

val descr_of_string : string -> (descr, string) result
(** Inverse of {!descr_to_string}; also the [--passes] argument syntax.
    Unknown pass names and malformed [@N] suffixes are reported in the
    error string.  [descr_of_string (descr_to_string d) = Ok d]. *)

val descr_equal : descr -> descr -> bool
(** Structural equality (pass names and round bound). *)

val ir_size : Ir.func -> int
(** Instruction count plus one per block terminator — the unit the
    per-pass size deltas are measured in. *)

val run : ?cctx:Cctx.t -> ?verify_each:bool -> descr -> Ir.modul -> Ir.modul
(** Run the description over every function, in place.  With [cctx],
    each pass run records a ["ir"]-stage stat.  With [verify_each],
    every function is re-checked ({!Verify.check_func}) after every pass
    run and a [Failure] names the offending pass. *)

val optimize_func : ?level:level -> Ir.func -> unit
(** Optimize one function in place (default [O2]). *)

val optimize : ?level:level -> ?check:bool -> Ir.modul -> Ir.modul
(** Optimize every function in place and return the module.  With
    [check] (default [true]), re-verifies the module after optimizing and
    raises [Failure] if a pass broke structural invariants. *)
