let changed = ref false

let mark x =
  changed := true;
  x

(* Algebraic identities on one known operand.  Only rewrites that are
   valid for every value of the unknown side. *)
let simplify_bin op dst a b =
  let open Ir in
  match (op, a, b) with
  | Add, x, Const 0l | Add, Const 0l, x -> Some (Copy (dst, x))
  | Sub, x, Const 0l -> Some (Copy (dst, x))
  | Mul, x, Const 1l | Mul, Const 1l, x -> Some (Copy (dst, x))
  | Mul, _, Const 0l | Mul, Const 0l, _ -> Some (Copy (dst, Const 0l))
  | Div, x, Const 1l -> Some (Copy (dst, x))
  | And, _, Const 0l | And, Const 0l, _ -> Some (Copy (dst, Const 0l))
  | And, x, Const -1l | And, Const -1l, x -> Some (Copy (dst, x))
  | Or, x, Const 0l | Or, Const 0l, x -> Some (Copy (dst, x))
  | Or, _, Const -1l | Or, Const -1l, _ -> Some (Copy (dst, Const (-1l)))
  | Xor, x, Const 0l | Xor, Const 0l, x -> Some (Copy (dst, x))
  | Xor, Temp x, Temp y when x = y -> Some (Copy (dst, Const 0l))
  | Sub, Temp x, Temp y when x = y -> Some (Copy (dst, Const 0l))
  | (Shl | Shr | Sar), x, Const 0l -> Some (Copy (dst, x))
  | _ -> None

let fold_instr (i : Ir.instr) : Ir.instr =
  match i with
  | Ir.Bin (op, dst, Const a, Const b) -> (
      match Ir.eval_binop op a b with
      | Some v -> mark (Ir.Copy (dst, Const v))
      | None -> i (* runtime trap or masked shift: leave it *))
  | Ir.Bin (op, dst, a, b) -> (
      match simplify_bin op dst a b with Some i' -> mark i' | None -> i)
  | Ir.Cmp (rel, dst, Const a, Const b) ->
      mark (Ir.Copy (dst, Const (if Ir.eval_relop rel a b then 1l else 0l)))
  | Ir.Cmp (rel, dst, Temp x, Temp y) when x = y ->
      let v =
        match rel with
        | Ir.Eq | Ir.Le | Ir.Ge -> 1l
        | Ir.Ne | Ir.Lt | Ir.Gt -> 0l
      in
      mark (Ir.Copy (dst, Const v))
  | Ir.Neg (dst, Const a) -> mark (Ir.Copy (dst, Const (Int32.neg a)))
  | Ir.Not (dst, Const a) -> mark (Ir.Copy (dst, Const (Int32.lognot a)))
  | _ -> i

let fold_term (t : Ir.terminator) : Ir.terminator =
  match t with
  | Ir.Cbr (rel, Const a, Const b, l1, l2) ->
      mark (Ir.Jmp (if Ir.eval_relop rel a b then l1 else l2))
  | Ir.Cbr_nz (Const v, l1, l2) -> mark (Ir.Jmp (if v <> 0l then l1 else l2))
  | Ir.Cbr (_, _, _, l1, l2) when l1 = l2 -> mark (Ir.Jmp l1)
  | Ir.Cbr_nz (_, l1, l2) when l1 = l2 -> mark (Ir.Jmp l1)
  | _ -> t

let run (f : Ir.func) =
  changed := false;
  List.iter
    (fun b ->
      b.Ir.instrs <- List.map fold_instr b.Ir.instrs;
      b.Ir.term <- fold_term b.Ir.term)
    f.blocks;
  !changed

let pass =
  {
    Pass.name = "constfold";
    descr = "constant folding, algebraic identities, branch folding";
    run;
  }
