type level = O0 | O1 | O2

let level_of_string = function
  | "O0" | "o0" | "0" -> Some O0
  | "O1" | "o1" | "1" -> Some O1
  | "O2" | "o2" | "2" -> Some O2
  | _ -> None

let level_name = function O0 -> "O0" | O1 -> "O1" | O2 -> "O2"

(* Order matters mildly: folding exposes copies, copies expose common
   subexpressions, CSE exposes dead code, and a cleaner CFG feeds the
   next round. *)
let registry : Pass.t list =
  [ Simplify_cfg.pass; Constfold.pass; Copyprop.pass; Cse.pass; Dce.pass ]

let find_pass name =
  List.find_opt (fun (p : Pass.t) -> String.equal p.name name) registry

let pass_names = List.map (fun (p : Pass.t) -> p.Pass.name) registry

type descr = { passes : Pass.t list; max_rounds : int }

(* Fixpoint bound: optimization must terminate even if a pass pair were to
   oscillate; ten rounds is far beyond what real inputs need. *)
let default_rounds = 10

let of_level = function
  | O0 -> { passes = []; max_rounds = 0 }
  | O1 -> { passes = registry; max_rounds = 1 }
  | O2 -> { passes = registry; max_rounds = default_rounds }

let descr_to_string d =
  let names =
    String.concat "," (List.map (fun (p : Pass.t) -> p.Pass.name) d.passes)
  in
  if d.max_rounds = default_rounds then names
  else Printf.sprintf "%s@%d" names d.max_rounds

let descr_of_string s =
  let s = String.trim s in
  let body, rounds =
    match String.index_opt s '@' with
    | None -> (Ok s, default_rounds)
    | Some i -> (
        let suffix = String.sub s (i + 1) (String.length s - i - 1) in
        match int_of_string_opt suffix with
        | Some r when r >= 0 -> (Ok (String.sub s 0 i), r)
        | _ ->
            ( Error (Printf.sprintf "bad round bound %S (want @N, N >= 0)" suffix),
              0 ))
  in
  match body with
  | Error e -> Error e
  | Ok body -> (
      let names =
        if String.trim body = "" then []
        else List.map String.trim (String.split_on_char ',' body)
      in
      let rec resolve acc = function
        | [] -> Ok (List.rev acc)
        | n :: rest -> (
            match find_pass n with
            | Some p -> resolve (p :: acc) rest
            | None ->
                Error
                  (Printf.sprintf "unknown pass %S (known: %s)" n
                     (String.concat ", " pass_names)))
      in
      match resolve [] names with
      | Error e -> Error e
      | Ok passes -> Ok { passes; max_rounds = rounds })

let descr_equal a b =
  a.max_rounds = b.max_rounds
  && List.length a.passes = List.length b.passes
  && List.for_all2
       (fun (p : Pass.t) (q : Pass.t) -> String.equal p.name q.name)
       a.passes b.passes

let ir_size (f : Ir.func) =
  List.fold_left
    (fun n (b : Ir.block) -> n + 1 + List.length b.Ir.instrs)
    0 f.blocks

let verify_func ~known_funcs ~pass (f : Ir.func) =
  match Verify.check_func ~known_funcs f with
  | [] -> ()
  | errs ->
      failwith
        (Printf.sprintf "IR verification failed after pass %s:\n%s" pass
           (String.concat "\n"
              (List.map
                 (fun (e : Verify.error) ->
                   Printf.sprintf "  %s: %s" e.func e.message)
                 errs)))

let run_pass ?cctx ~verify_each ~known_funcs (p : Pass.t) (f : Ir.func) =
  let before = ir_size f in
  let changed, dt = Cctx.timed (fun () -> p.run f) in
  (match cctx with
  | Some c ->
      Cctx.record c
        {
          Cctx.stage = "ir";
          pass = p.name;
          func = f.Ir.name;
          time_s = dt;
          items_before = before;
          items_after = ir_size f;
          bytes = 0;
          changed;
        }
  | None -> ());
  if verify_each then verify_func ~known_funcs ~pass:p.name f;
  changed

let run_func ?cctx ~verify_each ~known_funcs d (f : Ir.func) =
  let round () =
    List.fold_left
      (fun acc p -> run_pass ?cctx ~verify_each ~known_funcs p f || acc)
      false d.passes
  in
  let n = ref 0 in
  while !n < d.max_rounds && round () do
    incr n
  done

let known_funcs_of (m : Ir.modul) =
  Verify.builtin_arity
  @ List.map (fun (f : Ir.func) -> (f.Ir.name, List.length f.params)) m.funcs

let run ?cctx ?(verify_each = false) d (m : Ir.modul) =
  let known_funcs = if verify_each then known_funcs_of m else [] in
  List.iter (run_func ?cctx ~verify_each ~known_funcs d) m.funcs;
  m

let optimize_func ?(level = O2) (f : Ir.func) =
  run_func ~verify_each:false ~known_funcs:[] (of_level level) f

let optimize ?(level = O2) ?(check = true) (m : Ir.modul) =
  let m = run (of_level level) m in
  if check then Verify.check_exn m;
  m
