type meta = { ir_digest : string; pipeline : string; arity : int }

type func_obj = {
  sym : string;
  code : string;
  relocs : Asm.reloc list;
  labels : (Ir.label * int) list;
  asm : Asm.func;
  meta : meta;
}

type t = { uname : string; funcs : func_obj list; globals : Ir.global list }

(* Bumped whenever the marshalled layout of [t] (or anything reachable
   from it: Asm.func, Insn.t, Ir.global) changes.  Also folded into every
   {!Store} key, so a format bump invalidates cached artifacts instead of
   resurrecting stale ones. *)
let format_version = 1

let no_digest = "-"

let of_asm ?(ir_digest = no_digest) ?(pipeline = no_digest) ~arity
    (f : Asm.func) =
  let a = Asm.assemble f in
  {
    sym = f.Asm.name;
    code = a.Asm.bytes;
    relocs = a.Asm.relocs;
    labels = a.Asm.label_offsets;
    asm = f;
    meta = { ir_digest; pipeline; arity };
  }

let code_size o = String.length o.code

let find_opt unit sym = List.find_opt (fun o -> o.sym = sym) unit.funcs

let magic = "PSDOBJCT"

let save unit path =
  Frame.write ~magic ~version:format_version
    ~payload:(Marshal.to_string unit []) path

let load path =
  let payload = Frame.read ~magic ~version:format_version ~what:"PSD object" path in
  match (Marshal.from_string payload 0 : t) with
  | unit -> unit
  | exception _ -> failwith (path ^ ": corrupt PSD object file (bad payload)")
