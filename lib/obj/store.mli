(** The content-addressed function-level artifact store.

    Maps the full provenance of a lowered function — optimized-IR digest
    × pipeline description × diversification config × seed × object
    {!Objfile.format_version} — to its relocatable object, so rebuilding
    a program (or a 1,000-variant population) re-runs
    isel/liveness/regalloc/emit only for functions whose key actually
    changed; everything else is a store hit and the build reduces to NOP
    insertion plus relink.  Undiversified lowering uses the neutral
    config ["-"]/seed [0]: lowering is diversification-independent, so
    every config shares one artifact per function.

    Process-wide, bounded, and {b sharded}: keys hash onto
    {!shard_count} independent shards, each guarded by its own mutex
    with its own LRU clock, so concurrent lookups (the serve daemon's
    request handlers, a domains-backend pool) contend only when their
    keys collide on a shard.  Shard choice is a pure function of the
    key — the same run distributes and evicts identically every time.
    Least-recently-used entries are evicted per shard once the shard's
    share of {!get_capacity} is reached.  Every operation lands in
    {!Metrics} as [obj.store.hit], [obj.store.miss] or
    [obj.store.evict] (which the incremental bench and the CI
    rebuild-smoke assert on), and per-shard tallies are available
    through {!stats} for the serve daemon's observability endpoint. *)

val shard_count : int
(** Number of shards (fixed). *)

val key :
  ir_digest:string -> pipeline:string -> config:string -> seed:int64 -> string
(** The store key; folds in {!Objfile.format_version} so a format bump
    invalidates rather than resurrects. *)

val shard_of_key : string -> int
(** Which shard a key lives on — deterministic; exposed so tests can
    construct same-shard key sets to pin LRU behaviour. *)

val lookup : string -> Objfile.func_obj option
(** Counted as a hit or a miss. *)

val insert : string -> Objfile.func_obj -> unit
(** No-op if the key is already present; evicts the shard's LRU entry
    (counted) when the shard is at capacity. *)

val find_or_lower :
  ir_digest:string ->
  pipeline:string ->
  config:string ->
  seed:int64 ->
  (unit -> Objfile.func_obj) ->
  Objfile.func_obj
(** Look up, or run the thunk and memoize its result. *)

val length : unit -> int
(** Total entries across every shard. *)

val get_capacity : unit -> int

val set_capacity : int -> unit
(** Store-wide capacity, divided evenly over the shards (rounded up, so
    each shard holds at least one entry).  Shrinks evict immediately.
    Raises [Invalid_argument] on [n < 1]. *)

type shard_stats = { entries : int; hits : int; misses : int; evicts : int }

val stats : unit -> shard_stats list
(** Per-shard occupancy and hit/miss/evict tallies since the last
    {!clear}, in shard order — the serve daemon's stats endpoint. *)

val clear : unit -> unit
(** Drop every entry and zero the per-shard tallies (counters in
    {!Metrics} are untouched). *)
