(** The content-addressed function-level artifact store.

    Maps the full provenance of a lowered function — optimized-IR digest
    × pipeline description × diversification config × seed × object
    {!Objfile.format_version} — to its relocatable object, so rebuilding
    a program (or a 25-variant population) re-runs
    isel/liveness/regalloc/emit only for functions whose key actually
    changed; everything else is a store hit and the build reduces to NOP
    insertion plus relink.  Undiversified lowering uses the neutral
    config ["-"]/seed [0]: lowering is diversification-independent, so
    every config shares one artifact per function.

    Process-wide and bounded: least-recently-used entries are evicted
    once {!get_capacity} is reached.  Every operation lands in
    {!Metrics} as [obj.store.hit], [obj.store.miss] or
    [obj.store.evict], which is what the incremental bench and the CI
    rebuild-smoke assert on. *)

val key :
  ir_digest:string -> pipeline:string -> config:string -> seed:int64 -> string
(** The store key; folds in {!Objfile.format_version} so a format bump
    invalidates rather than resurrects. *)

val lookup : string -> Objfile.func_obj option
(** Counted as a hit or a miss. *)

val insert : string -> Objfile.func_obj -> unit
(** No-op if the key is already present; evicts the LRU entry (counted)
    when at capacity. *)

val find_or_lower :
  ir_digest:string ->
  pipeline:string ->
  config:string ->
  seed:int64 ->
  (unit -> Objfile.func_obj) ->
  Objfile.func_obj
(** Look up, or run the thunk and memoize its result. *)

val length : unit -> int
val get_capacity : unit -> int

val set_capacity : int -> unit
(** Shrinks evict immediately.  Raises [Invalid_argument] on [n < 1]. *)

val clear : unit -> unit
(** Drop every entry (counters in {!Metrics} are untouched). *)
