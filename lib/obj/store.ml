(* Content-addressed function-artifact store.  Keys are the full
   provenance of a lowered function; values are relocatable objects.

   Sharded: keys hash onto [shard_count] independent shards, each with
   its own table, LRU clock and mutex.  The population/bench grids sweep
   many configs over the same 19 workloads and must hold the working set
   without growing with the number of experiment cells (bounded LRU);
   the serve daemon additionally hits the store from concurrent request
   handlers, which must not serialize on one table or one lock — each
   request's keys spread over the shards, and two handlers contend only
   when their keys land on the same shard.

   Eviction is per shard: the capacity is divided evenly and each shard
   evicts its own least-recently-used entry at its own bound.  Shard
   choice is a pure function of the key, so every run distributes (and
   therefore evicts) identically — no artifact depends on timing. *)

let shard_count = 16
let default_capacity = 8192

type entry = { obj : Objfile.func_obj; mutable last_use : int }

type shard = {
  lock : Lock.t;
  tbl : (string, entry) Hashtbl.t;
  mutable tick : int;
  (* plain per-shard tallies (not Metrics): the serve daemon's stats
     endpoint reports them per shard without flooding the global
     registry with [shard_count] counter names *)
  mutable hits : int;
  mutable misses : int;
  mutable evicts : int;
}

let shards =
  Array.init shard_count (fun _ ->
      {
        lock = Lock.create ();
        tbl = Hashtbl.create 64;
        tick = 0;
        hits = 0;
        misses = 0;
        evicts = 0;
      })

(* Per-shard capacity: the store-wide bound divided evenly, rounded up
   so the total never undershoots the requested capacity. *)
let capacity = ref default_capacity
let shard_capacity () = max 1 ((!capacity + shard_count - 1) / shard_count)

let key ~ir_digest ~pipeline ~config ~seed =
  Printf.sprintf "v%d|%s|%s|%s|%Ld" Objfile.format_version ir_digest pipeline
    config seed

let shard_of_key k = Hashtbl.hash k mod shard_count
let shard_of k = shards.(shard_of_key k)

let lookup k =
  let s = shard_of k in
  Lock.protect s.lock (fun () ->
      s.tick <- s.tick + 1;
      match Hashtbl.find_opt s.tbl k with
      | Some e ->
          e.last_use <- s.tick;
          s.hits <- s.hits + 1;
          Metrics.incr (Metrics.counter "obj.store.hit");
          Some e.obj
      | None ->
          s.misses <- s.misses + 1;
          Metrics.incr (Metrics.counter "obj.store.miss");
          None)

(* Caller holds the shard lock. *)
let evict_lru s =
  let victim =
    Hashtbl.fold
      (fun k e acc ->
        match acc with
        | Some (_, best) when best <= e.last_use -> acc
        | _ -> Some (k, e.last_use))
      s.tbl None
  in
  match victim with
  | Some (k, _) ->
      Hashtbl.remove s.tbl k;
      s.evicts <- s.evicts + 1;
      Metrics.incr (Metrics.counter "obj.store.evict")
  | None -> ()

let insert k obj =
  let s = shard_of k in
  Lock.protect s.lock (fun () ->
      s.tick <- s.tick + 1;
      if not (Hashtbl.mem s.tbl k) then begin
        if Hashtbl.length s.tbl >= shard_capacity () then evict_lru s;
        Hashtbl.replace s.tbl k { obj; last_use = s.tick }
      end)

let length () =
  Array.fold_left
    (fun n s -> n + Lock.protect s.lock (fun () -> Hashtbl.length s.tbl))
    0 shards

let set_capacity n =
  if n < 1 then invalid_arg "Store.set_capacity";
  capacity := n;
  Array.iter
    (fun s ->
      Lock.protect s.lock (fun () ->
          while Hashtbl.length s.tbl > shard_capacity () do
            evict_lru s
          done))
    shards

let get_capacity () = !capacity

let clear () =
  Array.iter
    (fun s ->
      Lock.protect s.lock (fun () ->
          Hashtbl.reset s.tbl;
          s.tick <- 0;
          s.hits <- 0;
          s.misses <- 0;
          s.evicts <- 0))
    shards

type shard_stats = { entries : int; hits : int; misses : int; evicts : int }

let stats () =
  Array.to_list
    (Array.map
       (fun s ->
         Lock.protect s.lock (fun () ->
             {
               entries = Hashtbl.length s.tbl;
               hits = s.hits;
               misses = s.misses;
               evicts = s.evicts;
             }))
       shards)

let find_or_lower ~ir_digest ~pipeline ~config ~seed lower =
  let k = key ~ir_digest ~pipeline ~config ~seed in
  match lookup k with
  | Some o -> o
  | None ->
      let o = lower () in
      insert k o;
      o
