(* Content-addressed function-artifact store.  Keys are the full
   provenance of a lowered function; values are relocatable objects.
   Bounded LRU: the population/bench grids sweep many configs over the
   same 19 workloads, and the store must hold the working set without
   growing with the number of experiment cells. *)

let default_capacity = 8192
let capacity = ref default_capacity

type entry = { obj : Objfile.func_obj; mutable last_use : int }

let tbl : (string, entry) Hashtbl.t = Hashtbl.create 256
let tick = ref 0

let key ~ir_digest ~pipeline ~config ~seed =
  Printf.sprintf "v%d|%s|%s|%s|%Ld" Objfile.format_version ir_digest pipeline
    config seed

let lookup k =
  incr tick;
  match Hashtbl.find_opt tbl k with
  | Some e ->
      e.last_use <- !tick;
      Metrics.incr (Metrics.counter "obj.store.hit");
      Some e.obj
  | None ->
      Metrics.incr (Metrics.counter "obj.store.miss");
      None

let evict_lru () =
  let victim =
    Hashtbl.fold
      (fun k e acc ->
        match acc with
        | Some (_, best) when best <= e.last_use -> acc
        | _ -> Some (k, e.last_use))
      tbl None
  in
  match victim with
  | Some (k, _) ->
      Hashtbl.remove tbl k;
      Metrics.incr (Metrics.counter "obj.store.evict")
  | None -> ()

let insert k obj =
  incr tick;
  if not (Hashtbl.mem tbl k) then begin
    if Hashtbl.length tbl >= !capacity then evict_lru ();
    Hashtbl.replace tbl k { obj; last_use = !tick }
  end

let length () = Hashtbl.length tbl

let set_capacity n =
  if n < 1 then invalid_arg "Store.set_capacity";
  capacity := n;
  while Hashtbl.length tbl > !capacity do
    evict_lru ()
  done

let get_capacity () = !capacity

let clear () =
  Hashtbl.reset tbl;
  tick := 0

let find_or_lower ~ir_digest ~pipeline ~config ~seed lower =
  let k = key ~ir_digest ~pipeline ~config ~seed in
  match lookup k with
  | Some o -> o
  | None ->
      let o = lower () in
      insert k o;
      o
