(** Relocatable objects: per-function machine code before layout.

    This is the separate-compilation boundary the paper's toolchain has
    and our whole-program pipeline lacked: lowering emits one
    {!func_obj} per function — assembled bytes with {e unresolved}
    [Rel32] (call displacement) and [Abs32] (global address)
    relocations, a block-offset table, and provenance metadata — and the
    linker ({!Link.link_objects}) composes objects into an executable
    image without ever re-running instruction selection or register
    allocation.

    A {!t} is a compilation unit: the objects of one source file plus
    its global declarations, serializable with {!save}/{!load} inside a
    versioned, digest-checked {!Frame}. *)

type meta = {
  ir_digest : string;
      (** hex digest of the optimized IR the code was lowered from
          ([of_asm]'s default ["-"] marks hand-built or runtime objects
          that have no IR identity) *)
  pipeline : string;  (** {!Pipeline.descr_to_string} of the build *)
  arity : int;  (** formal parameter count (drives crt0 for [main]) *)
}

type func_obj = {
  sym : string;  (** defined symbol (the function name) *)
  code : string;  (** machine code; relocation sites hold zeros *)
  relocs : Asm.reloc list;  (** unresolved [Rel32]/[Abs32] sites *)
  labels : (Ir.label * int) list;
      (** block-offset table, function-relative — becomes the image's
          [block_offsets] after layout *)
  asm : Asm.func;
      (** the symbolic pre-layout stream: what NOP insertion diversifies
          and what re-assembly after diversification consumes *)
  meta : meta;
}

type t = {
  uname : string;  (** unit name (source file or program label) *)
  funcs : func_obj list;  (** in definition order *)
  globals : Ir.global list;
}

val format_version : int
(** Object-format version: checked by {!load}, folded into every
    {!Store} key so a bump invalidates cached artifacts. *)

val no_digest : string
(** The ["-"] placeholder digest of non-content-addressed objects. *)

val of_asm :
  ?ir_digest:string -> ?pipeline:string -> arity:int -> Asm.func -> func_obj
(** Assemble one symbolic function into a relocatable object. *)

val code_size : func_obj -> int
val find_opt : t -> string -> func_obj option

val save : t -> string -> unit
(** Write a unit ([magic | version | payload | digest], see {!Frame}). *)

val load : string -> t
(** Inverse of {!save}.  Raises [Failure] on bad magic, a version
    mismatch, truncation or corruption. *)
