(** Versioned, digest-checked framing for binary artifacts.

    Layout: [magic | version (u32 LE) | payload | MD5(payload)].  The
    object format ({!Objfile}), the linked-image format ({!Link.save}),
    the profile-recording format ({!Sprof.save}) and the serve daemon's
    socket protocol all use this container, so every decoder
    distinguishes "not this kind of artifact", "produced by an
    incompatible build" and "truncated or corrupted" with a precise
    [Failure]. *)

val to_string : magic:string -> version:int -> payload:string -> string
(** [to_string ~magic ~version ~payload] is the framed byte string. *)

val of_string :
  magic:string -> version:int -> what:string -> src:string -> string -> string
(** [of_string ~magic ~version ~what ~src s] decodes a framed byte
    string back to its payload.  Raises [Failure] — naming [src] (a
    path, or a peer description for socket frames) and [what] (e.g.
    ["PSD object file"], ["serve request"]) — on bad magic, version
    mismatch, truncation, or a digest mismatch. *)

val write : magic:string -> version:int -> payload:string -> string -> unit
(** [write ~magic ~version ~payload path] frames [payload] and writes it
    to [path]. *)

val read : magic:string -> version:int -> what:string -> string -> string
(** [read ~magic ~version ~what path] returns the payload.  Raises
    [Failure] — naming [path] and [what ^ " file"] — exactly as
    {!of_string} does. *)
