(** Versioned, digest-checked file framing for binary artifacts.

    Layout: [magic | version (u32 LE) | payload | MD5(payload)].  Both
    the object format ({!Objfile}) and the linked-image format
    ({!Link.save}) use this container, so every loader distinguishes
    "not this kind of file", "produced by an incompatible build" and
    "truncated or corrupted" with a precise [Failure]. *)

val write : magic:string -> version:int -> payload:string -> string -> unit
(** [write ~magic ~version ~payload path] frames [payload] and writes it
    to [path]. *)

val read : magic:string -> version:int -> what:string -> string -> string
(** [read ~magic ~version ~what path] returns the payload.  Raises
    [Failure] — naming [path] and [what] (e.g. ["PSD object"]) — on bad
    magic, version mismatch, truncation, or a digest mismatch. *)
