(* The container every binary artifact (object units, linked images,
   profile recordings, serve-protocol messages) is wrapped in: a fixed
   magic, an explicit format-version field, the payload, and an MD5
   digest trailer over the payload.  A stale, truncated or bit-flipped
   artifact fails with a clear [Failure] naming the source and the
   problem, never with a Marshal segfault or silent garbage.

   The string codecs ([to_string]/[of_string]) are the primitive; the
   file functions wrap them.  The serve daemon frames every socket
   message the same way, so a corrupted request fails with exactly the
   same taxonomy of errors as a corrupted object file. *)

let digest_len = 16
let version_len = 4

let header_len magic = String.length magic + version_len

let put_u32 buf v =
  Buffer.add_char buf (Char.chr (v land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 16) land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 24) land 0xFF))

let get_u32 s pos =
  Char.code s.[pos]
  lor (Char.code s.[pos + 1] lsl 8)
  lor (Char.code s.[pos + 2] lsl 16)
  lor (Char.code s.[pos + 3] lsl 24)

let to_string ~magic ~version ~payload =
  let buf =
    Buffer.create (header_len magic + String.length payload + digest_len)
  in
  Buffer.add_string buf magic;
  put_u32 buf version;
  Buffer.add_string buf payload;
  Buffer.add_string buf (Digest.string payload);
  Buffer.contents buf

let of_string ~magic ~version ~what ~src contents =
  let mlen = String.length magic in
  if String.length contents < mlen || String.sub contents 0 mlen <> magic then
    failwith (Printf.sprintf "%s: not a %s (bad magic)" src what);
  if String.length contents < header_len magic + digest_len then
    failwith (Printf.sprintf "%s: truncated %s" src what);
  let file_version = get_u32 contents mlen in
  if file_version <> version then
    failwith
      (Printf.sprintf "%s: %s format version %d, this build reads version %d"
         src what file_version version);
  let payload_len = String.length contents - header_len magic - digest_len in
  let payload = String.sub contents (header_len magic) payload_len in
  let trailer = String.sub contents (header_len magic + payload_len) digest_len in
  if not (String.equal (Digest.string payload) trailer) then
    failwith (Printf.sprintf "%s: corrupt %s (payload digest mismatch)" src what);
  payload

let write ~magic ~version ~payload path =
  let framed = to_string ~magic ~version ~payload in
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc framed)

let read ~magic ~version ~what path =
  let contents =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  of_string ~magic ~version ~what:(what ^ " file") ~src:path contents
