type source = {
  image_digest : string;
  config : string;
  seed : int64;
  workload : string;
  period : float;
  samples : int64;
  weight : float;
}

type t = {
  sources : source list;
  rows : (string * Ir.label, float) Hashtbl.t;
  runtime_mass : float;
  unknown_mass : float;
}

let empty =
  { sources = []; rows = Hashtbl.create 1; runtime_mass = 0.0;
    unknown_mass = 0.0 }

let is_empty t = Hashtbl.length t.rows = 0
let total_mass t = Hashtbl.fold (fun _ v acc -> acc +. v) t.rows 0.0
let image_digest (image : Link.image) = Digest.to_hex (Digest.string image.text)

let add_mass rows k m =
  let old = Option.value (Hashtbl.find_opt rows k) ~default:0.0 in
  Hashtbl.replace rows k (old +. m)

let of_run ~(image : Link.image) ?(config = "") ?(seed = 0L) ~workload
    (r : Sim.result) =
  match r.sample_profile with
  | None -> invalid_arg "Sprof.of_run: run was not sampled"
  | Some sp ->
      let locate = Simprof.locator image in
      let rows = Hashtbl.create 64 in
      let runtime_mass = ref 0.0 and unknown_mass = ref 0.0 in
      Array.iteri
        (fun off c ->
          if Int64.compare c 0L > 0 then begin
            (* Each sample stands for one period's worth of cycles. *)
            let mass = Int64.to_float c *. sp.period in
            let fname, label, in_runtime = locate off in
            if String.equal fname "?" then unknown_mass := !unknown_mass +. mass
            else if in_runtime then runtime_mass := !runtime_mass +. mass
            else add_mass rows (fname, label) mass
          end)
        sp.sample_counts;
      {
        sources =
          [
            {
              image_digest = image_digest image;
              config;
              seed;
              workload;
              period = sp.period;
              samples = sp.samples_taken;
              weight = 1.0;
            };
          ];
        rows;
        runtime_mass = !runtime_mass;
        unknown_mass = !unknown_mass;
      }

let merge ?(weight = 1.0) a b =
  if weight < 0.0 then invalid_arg "Sprof.merge: negative weight";
  let rows = Hashtbl.copy a.rows in
  Hashtbl.iter (fun k v -> add_mass rows k (weight *. v)) b.rows;
  {
    sources =
      a.sources
      @ List.map (fun s -> { s with weight = s.weight *. weight }) b.sources;
    rows;
    runtime_mass = a.runtime_mass +. (weight *. b.runtime_mass);
    unknown_mass = a.unknown_mass +. (weight *. b.unknown_mass);
  }

(* Quantize to power-of-four buckets after normalizing the hottest row
   to 2^20.  11 buckets span the whole dynamic range, so the derived
   pNOPs move in coarse steps: the sub-bucket sampling noise that layout
   changes between loop iterations induce cannot change the retrained
   binary, which is what lets the diversify → sample → retrain →
   re-diversify loop reach a byte-level fixed point.  Fresh exact
   profiles are never quantized — only the sampled production path pays
   this resolution loss. *)
let quantum = 1_048_576.0 (* 2^20 *)
let bucket_bits = 2.0 (* power-of-four buckets *)

let to_profile t =
  let mx = Hashtbl.fold (fun _ v acc -> Float.max v acc) t.rows 0.0 in
  if mx <= 0.0 then Profile.empty
  else begin
    let counts = Hashtbl.create (Hashtbl.length t.rows) in
    Hashtbl.iter
      (fun k v ->
        if v > 0.0 then begin
          let scaled = v /. mx *. quantum in
          let bucket =
            bucket_bits
            *. Float.max 0.0 (Float.round (Float.log2 scaled /. bucket_bits))
          in
          Hashtbl.replace counts k (Int64.of_float (Float.pow 2.0 bucket))
        end)
      t.rows;
    Profile.of_block_counts counts
  end

type staleness = {
  coverage_pct : float;
  hot_overlap_pct : float;
  mean_drift_pct : float;
  max_drift_pct : float;
}

(* The smallest prefix of rows (mass descending) covering 90% of the
   total — the "hot set" of telemetry and the paper's hot/cold split. *)
let hot_set rows_assoc =
  let total = List.fold_left (fun acc (_, m) -> acc +. m) 0.0 rows_assoc in
  let sorted =
    List.sort
      (fun (ka, ma) (kb, mb) ->
        match compare mb ma with 0 -> compare ka kb | c -> c)
      rows_assoc
  in
  let tbl = Hashtbl.create 16 in
  let rec take cum = function
    | [] -> ()
    | (k, m) :: rest ->
        if cum < 0.9 *. total then begin
          Hashtbl.replace tbl k ();
          take (cum +. m) rest
        end
  in
  take 0.0 sorted;
  tbl

let func_shares rows_assoc =
  let total = List.fold_left (fun acc (_, m) -> acc +. m) 0.0 rows_assoc in
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun ((f, _), m) ->
      let old = Option.value (Hashtbl.find_opt tbl f) ~default:0.0 in
      Hashtbl.replace tbl f (old +. m))
    rows_assoc;
  if total > 0.0 then
    Hashtbl.filter_map_inplace (fun _ m -> Some (100.0 *. m /. total)) tbl;
  tbl

let staleness ~fresh t =
  let fresh_assoc =
    Profile.fold
      (fun k v acc ->
        if Int64.compare v 0L > 0 then (k, Int64.to_float v) :: acc else acc)
      fresh []
  in
  let samp_assoc = Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.rows [] in
  if fresh_assoc = [] || samp_assoc = [] then
    { coverage_pct = 0.0; hot_overlap_pct = 0.0; mean_drift_pct = 0.0;
      max_drift_pct = 0.0 }
  else begin
    let covered =
      List.fold_left
        (fun acc (k, _) -> if Hashtbl.mem t.rows k then acc + 1 else acc)
        0 fresh_assoc
    in
    let coverage_pct =
      100.0 *. float_of_int covered /. float_of_int (List.length fresh_assoc)
    in
    let fresh_hot = hot_set fresh_assoc and samp_hot = hot_set samp_assoc in
    let fresh_total =
      List.fold_left (fun acc (_, m) -> acc +. m) 0.0 fresh_assoc
    in
    let hot_mass, shared_mass =
      List.fold_left
        (fun (hm, sm) (k, m) ->
          if Hashtbl.mem fresh_hot k then
            (hm +. m, if Hashtbl.mem samp_hot k then sm +. m else sm)
          else (hm, sm))
        (0.0, 0.0) fresh_assoc
    in
    let hot_overlap_pct =
      if hot_mass > 0.0 then 100.0 *. shared_mass /. hot_mass
      else if fresh_total > 0.0 then 0.0
      else 0.0
    in
    let fresh_shares = func_shares fresh_assoc in
    let samp_shares = func_shares samp_assoc in
    let funcs = Hashtbl.create 16 in
    Hashtbl.iter (fun f _ -> Hashtbl.replace funcs f ()) fresh_shares;
    Hashtbl.iter (fun f _ -> Hashtbl.replace funcs f ()) samp_shares;
    let drifts =
      Hashtbl.fold
        (fun f () acc ->
          let a = Option.value (Hashtbl.find_opt fresh_shares f) ~default:0.0 in
          let b = Option.value (Hashtbl.find_opt samp_shares f) ~default:0.0 in
          Float.abs (a -. b) :: acc)
        funcs []
    in
    let n = List.length drifts in
    let mean_drift_pct =
      if n = 0 then 0.0
      else List.fold_left ( +. ) 0.0 drifts /. float_of_int n
    in
    let max_drift_pct = List.fold_left Float.max 0.0 drifts in
    { coverage_pct; hot_overlap_pct; mean_drift_pct; max_drift_pct }
  end

(* Retrain-on-drift hysteresis: sparse sampling makes the cold tail of a
   recording churn between runs (a block catching one sample or none),
   so a loop that redeploys on every recording never settles.  The hot
   set is what overhead fidelity needs, and it is stable — so a new
   recording only justifies retraining when its weighted hot-set overlap
   with the profile currently deployed drops below this threshold. *)
let drift_threshold_pct = 90.0

let materially_drifted ~previous t =
  let s = staleness ~fresh:previous t in
  Profile.is_empty previous || is_empty t
  || s.hot_overlap_pct < drift_threshold_pct

(* On-disk format: the same Frame container as objects and images.  Rows
   are written as a sorted assoc list so equal contents produce equal
   bytes regardless of hash-table history. *)
let magic = "PSDPROF"
let format_version = 1

type disk = {
  d_sources : source list;
  d_rows : ((string * Ir.label) * float) list;
  d_runtime : float;
  d_unknown : float;
}

let save t path =
  let d_rows =
    List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.rows [])
  in
  let disk =
    { d_sources = t.sources; d_rows; d_runtime = t.runtime_mass;
      d_unknown = t.unknown_mass }
  in
  Frame.write ~magic ~version:format_version
    ~payload:(Marshal.to_string disk []) path

let load path =
  let payload =
    Frame.read ~magic ~version:format_version ~what:"PSD profile" path
  in
  match (Marshal.from_string payload 0 : disk) with
  | d ->
      let rows = Hashtbl.create (max 1 (List.length d.d_rows)) in
      List.iter (fun (k, v) -> Hashtbl.replace rows k v) d.d_rows;
      { sources = d.d_sources; rows; runtime_mass = d.d_runtime;
        unknown_mass = d.d_unknown }
  | exception _ -> failwith (path ^ ": corrupt PSD profile file (bad payload)")

let sorted_rows t =
  List.sort
    (fun (ka, ma) (kb, mb) ->
      match compare mb ma with 0 -> compare ka kb | c -> c)
    (Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.rows [])

let truncate ?top rows =
  match top with
  | None -> rows
  | Some n -> List.filteri (fun i _ -> i < max 0 n) rows

let pct part total = if total > 0.0 then 100.0 *. part /. total else 0.0

let pp ?top ppf t =
  let total = total_mass t in
  let samples =
    List.fold_left (fun acc s -> Int64.add acc s.samples) 0L t.sources
  in
  Format.fprintf ppf
    "sampled profile: %d recording(s), %Ld samples, %.0f cycles of user \
     mass (runtime %.0f, unmapped %.0f)@."
    (List.length t.sources) samples total t.runtime_mass t.unknown_mass;
  List.iter
    (fun s ->
      Format.fprintf ppf
        "  source: image=%s config=%s seed=%Ld workload=%s period=%.0f \
         samples=%Ld weight=%g@."
        (String.sub s.image_digest 0 12)
        (if s.config = "" then "-" else s.config)
        s.seed s.workload s.period s.samples s.weight)
    t.sources;
  let rows = sorted_rows t in
  (match top with
  | Some n when n < List.length rows ->
      Format.fprintf ppf "showing top %d of %d rows@." n (List.length rows)
  | _ -> ());
  Format.fprintf ppf "%14s %7s %7s  %s@." "mass" "flat%" "sum%"
    "function:block";
  let cum = ref 0.0 in
  List.iter
    (fun ((f, l), m) ->
      cum := !cum +. m;
      Format.fprintf ppf "%14.0f %6.2f%% %6.2f%%  %s:%d@." m (pct m total)
        (pct !cum total) f l)
    (truncate ?top rows)

let pp_staleness ppf s =
  Format.fprintf ppf
    "coverage: %.1f%% of fresh blocks sampled@.hot-set overlap: %.1f%% \
     (weighted, 90%% hot sets)@.per-function drift: mean %.2fpp, max %.2fpp@."
    s.coverage_pct s.hot_overlap_pct s.mean_drift_pct s.max_drift_pct

let source_json s =
  Jsonw.Obj
    [
      ("image", Jsonw.Str s.image_digest);
      ("config", Jsonw.Str s.config);
      ("seed", Jsonw.Int s.seed);
      ("workload", Jsonw.Str s.workload);
      ("period", Jsonw.Float s.period);
      ("samples", Jsonw.Int s.samples);
      ("weight", Jsonw.Float s.weight);
    ]

let dump ?top t =
  let total = total_mass t in
  let rows = sorted_rows t in
  let cum = ref 0.0 in
  let row_json ((f, l), m) =
    cum := !cum +. m;
    Jsonw.Obj
      [
        ("function", Jsonw.Str f);
        ("label", Jsonw.int l);
        ("mass", Jsonw.Float m);
        ("flat_pct", Jsonw.Float (pct m total));
        ("sum_pct", Jsonw.Float (pct !cum total));
      ]
  in
  Jsonw.Obj
    [
      ("schema", Jsonw.Str "psd-sampled-profile/1");
      ("sources", Jsonw.List (List.map source_json t.sources));
      ( "total",
        Jsonw.Obj
          [
            ("mass", Jsonw.Float total);
            ("runtime_mass", Jsonw.Float t.runtime_mass);
            ("unknown_mass", Jsonw.Float t.unknown_mass);
            ("rows", Jsonw.int (List.length rows));
          ] );
      ("rows", Jsonw.List (List.map row_json (truncate ?top rows)));
    ]

let to_json ?top t = Jsonw.to_string (dump ?top t)
