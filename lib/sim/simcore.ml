(* Types and faults shared by the two execution engines: the reference
   interpreter ([Sim]'s original loop, kept as the differential oracle)
   and the block-cached engine ([Bsim]).  Both must produce these exact
   records byte for byte — the equivalence suite compares them field by
   field, cycles included. *)

type exec_profile = {
  insn_counts : int64 array;
  nop_counts : int64 array;
  cycle_counts : float array;
}

type sample_profile = {
  period : float;
  sample_counts : int64 array;
  samples_taken : int64;
  sample_overhead_cycles : float;
}

let default_sample_period = 1000

type result = {
  status : int32;
  output : string;
  instructions : int64;
  nops_retired : int64;
  cycles : float;
  icache_misses : int64;
  exec_profile : exec_profile option;
  sample_profile : sample_profile option;
}

type outcome =
  | Finished of result
  | Faulted of { fault_msg : string; partial : result }

exception Fault of string

let fault fmt =
  Format.kasprintf
    (fun s ->
      Metrics.incr (Metrics.counter "sim.faults");
      raise (Fault s))
    fmt
