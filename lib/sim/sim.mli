(** The machine-code CPU simulator.

    Decodes and executes the linked image's [.text] against a separate
    data address space (W⊕X by construction: instruction fetch reads only
    text, loads/stores reach only data, and an indirect branch into data
    traps).  Arithmetic flags are modeled precisely enough for every
    condition our code generator and library use.

    Syscalls ([INT 0x80]): EAX=1 exits with status EBX; EAX=4 writes the
    low byte of EBX to the output buffer.

    Two engines execute the same machine: the [Block] engine (default)
    runs from a pre-decoded block cache ({!Bsim}: decode-once/
    execute-many, flattened per-insn costs, native-int machine state),
    and [Interp] is the original fetch-decode-execute interpreter, kept
    as the trusted differential oracle.  Their observables — cycles (bit
    for bit), fault messages, profiles, sampled recordings — are
    byte-identical; the equivalence suite and the fuzz oracle lattice
    enforce it.  The decode memo is owned by the shared block cache, so
    repeated runs of one image decode each offset once under either
    engine. *)

type exec_profile = Simcore.exec_profile = {
  insn_counts : int64 array;
      (** per text offset: instructions retired from that offset *)
  nop_counts : int64 array;
      (** per text offset: how many of those were Table-1 NOP candidates *)
  cycle_counts : float array;
      (** per text offset: modeled cycles charged there, icache miss
          penalties included *)
}
(** A runtime execution profile, indexed by text offset (the arrays have
    one slot per byte of [.text]; only instruction-start offsets are
    nonzero).  {!Simprof} maps it back through the image's layout symbols
    to per-function and per-block attributions. *)

type sample_profile = Simcore.sample_profile = {
  period : float;  (** cycles between samples, as configured *)
  sample_counts : int64 array;
      (** per text offset: PC samples attributed there *)
  samples_taken : int64;
  sample_overhead_cycles : float;
      (** modeled profiling cost: {!Timing.model.sample_cost} per sample,
          already included in the run's [cycles] *)
}
(** A cheap cycle-sampled runtime profile, the production-side
    counterpart of the exact {!exec_profile}: every [period]-th retired
    cycle records the current PC, exactly like a perf-style sampling
    interrupt.  {!Sprof} maps it back through the image layout to
    (function, block) rows, diversified binaries included. *)

val default_sample_period : int
(** The deployment default (1000 cycles): cheap enough to leave on in
    production (~1% modeled overhead), dense enough that one ref-input
    run recovers the hot set.  The CI perf gate pins the overhead at
    this period. *)

type result = Simcore.result = {
  status : int32;  (** exit status (main's return value) *)
  output : string;
  instructions : int64;  (** retired instructions *)
  nops_retired : int64;  (** how many were Table-1 NOP candidates *)
  cycles : float;  (** modeled time *)
  icache_misses : int64;
  exec_profile : exec_profile option;
      (** present iff the run was started with [~profile:true] *)
  sample_profile : sample_profile option;
      (** present iff the run was started with [~sample_period] *)
}

type outcome = Simcore.outcome =
  | Finished of result
  | Faulted of { fault_msg : string; partial : result }
      (** The run trapped; [partial] carries the machine counters at the
          faulting instruction (cycles, retired instructions, output so
          far) — both engines must agree on all of them, which the
          trap-parity tests pin. *)

exception Fault of string
(** Machine fault: undecodable bytes at EIP, data access out of bounds or
    unaligned, division error, control transfer outside text, stack
    overflow, or fuel exhaustion. *)

type engine =
  | Interp  (** the seed interpreter — the differential oracle *)
  | Block  (** the block-cached engine (default) *)

val default_engine : engine
val engine_name : engine -> string

val engine_of_string : string -> engine option
(** ["interp"] / ["block"]. *)

val run :
  ?model:Timing.model ->
  ?fuel:int64 ->
  ?profile:bool ->
  ?sample_period:int ->
  ?engine:engine ->
  Link.image ->
  args:int32 list ->
  result
(** Execute from the image's entry stub until the exit syscall.  [args]
    are written to the [__argv] array before execution (they are the
    arguments of [main]); at most {!Libc.argv_words} are allowed.
    Default [fuel] is [2^40] instructions.  [profile] (default [false])
    collects a per-offset {!exec_profile}; the hook costs three array
    writes per retired instruction when on and one [option] test when
    off.  [sample_period] (off by default) additionally records a PC
    sample every that many retired cycles into a {!sample_profile},
    charging {!Timing.model.sample_cost} cycles per sample to the run —
    production-style profiling with a modeled overhead.  [engine]
    selects the execution engine (default [Block]); results are
    byte-identical either way.  Raises [Invalid_argument] if
    [sample_period <= 0]. *)

val run_outcome :
  ?model:Timing.model ->
  ?fuel:int64 ->
  ?profile:bool ->
  ?sample_period:int ->
  ?engine:engine ->
  Link.image ->
  args:int32 list ->
  outcome
(** Like {!run}, but a trap returns [Faulted] carrying the partial
    counters at the faulting instruction instead of raising — the
    trap-parity tests compare these across engines.  Successful-run
    metrics are recorded exactly as {!run} does; faulted runs bump only
    [sim.faults], matching {!run}'s behavior. *)

val run_at :
  ?model:Timing.model ->
  ?fuel:int64 ->
  ?profile:bool ->
  ?stack_image:int32 list ->
  ?engine:engine ->
  Link.image ->
  start_offset:int ->
  result
(** Begin execution at an arbitrary text offset with an optional
    attacker-controlled stack image (values placed on the stack top,
    first element at ESP — the ROP-chain entry point used by the attack
    experiments).  Execution ends at the exit syscall, at [Hlt], or on a
    fault. *)

val run_at_outcome :
  ?model:Timing.model ->
  ?fuel:int64 ->
  ?profile:bool ->
  ?stack_image:int32 list ->
  ?engine:engine ->
  Link.image ->
  start_offset:int ->
  outcome
(** {!run_at}, trap-as-value. *)
