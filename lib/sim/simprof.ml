type block_row = {
  label : Ir.label;
  b_insns : int64;
  b_nops : int64;
  b_cycles : float;
}

type func_row = {
  fname : string;
  offset : int;
  in_runtime : bool;
  insns : int64;
  nops : int64;
  cycles : float;
  blocks : block_row list;
}

type t = {
  rows : func_row list;
  total_insns : int64;
  total_nops : int64;
  total_cycles : float;
}

(* Greatest entry of [a] (sorted ascending by first component) whose
   offset is <= [off]; [None] if all are greater. *)
let floor_find a off =
  let n = Array.length a in
  let rec go lo hi best =
    if lo > hi then best
    else
      let mid = (lo + hi) / 2 in
      let o, _ = a.(mid) in
      if o <= off then go (mid + 1) hi (Some a.(mid)) else go lo (mid - 1) best
  in
  go 0 (n - 1) None

(* The image's layout, as binary-searchable tables: symbols sorted by
   offset, and each function's block-offset table. *)
let layout_tables (image : Link.image) =
  let syms =
    let a = Array.of_list image.symbols in
    Array.sort (fun (_, a) (_, b) -> compare a b) a;
    Array.map (fun (name, off) -> (off, name)) a
  in
  let blocks_of =
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun (fname, blocks) ->
        let a = Array.of_list (List.map (fun (l, o) -> (o, l)) blocks) in
        Array.sort compare a;
        Hashtbl.replace tbl fname a)
      image.block_offsets;
    tbl
  in
  (syms, blocks_of)

let of_exec (image : Link.image) (p : Sim.exec_profile) =
  let syms, blocks_of = layout_tables image in
  (* One accumulator per function, block table inside. *)
  let accs = Hashtbl.create 16 in
  let func_of_offset off =
    match floor_find syms off with
    | Some (fo, fname) -> (fo, fname)
    | None -> (0, "?")  (* unreachable: offset 0 is the entry stub *)
  in
  let n = Array.length p.insn_counts in
  for off = 0 to n - 1 do
    let c = p.insn_counts.(off) in
    if Int64.compare c 0L > 0 then begin
      let fo, fname = func_of_offset off in
      let facc =
        match Hashtbl.find_opt accs fname with
        | Some a -> a
        | None ->
            let a = (ref 0L, ref 0L, ref 0.0, Hashtbl.create 8, fo) in
            Hashtbl.replace accs fname a;
            a
      in
      let fi, fn, fc, blocks, _ = facc in
      fi := Int64.add !fi c;
      fn := Int64.add !fn p.nop_counts.(off);
      fc := !fc +. p.cycle_counts.(off);
      let label =
        match Hashtbl.find_opt blocks_of fname with
        | None -> -1
        | Some a -> (
            match floor_find a off with Some (_, l) -> l | None -> -1)
      in
      let bi, bn, bc =
        match Hashtbl.find_opt blocks label with
        | Some b -> b
        | None ->
            let b = (ref 0L, ref 0L, ref 0.0) in
            Hashtbl.replace blocks label b;
            b
      in
      bi := Int64.add !bi c;
      bn := Int64.add !bn p.nop_counts.(off);
      bc := !bc +. p.cycle_counts.(off)
    end
  done;
  let rows =
    Hashtbl.fold
      (fun fname (fi, fn, fc, blocks, fo) acc ->
        let block_rows =
          Hashtbl.fold
            (fun label (bi, bn, bc) acc ->
              { label; b_insns = !bi; b_nops = !bn; b_cycles = !bc } :: acc)
            blocks []
        in
        (* Count descending, label ascending on ties: labels are unique
           within a function, so the order is total and dumps diff
           cleanly across runs and -j levels. *)
        let block_rows =
          List.sort
            (fun a b ->
              match Int64.compare b.b_insns a.b_insns with
              | 0 -> compare a.label b.label
              | c -> c)
            block_rows
        in
        {
          fname;
          offset = fo;
          in_runtime = fo < image.user_start;
          insns = !fi;
          nops = !fn;
          cycles = !fc;
          blocks = block_rows;
        }
        :: acc)
      accs []
  in
  (* Count descending, text offset ascending on ties: offsets are unique
     per function, so the row order is total. *)
  let rows =
    List.sort
      (fun a b ->
        match Int64.compare b.insns a.insns with
        | 0 -> compare a.offset b.offset
        | c -> c)
      rows
  in
  {
    rows;
    total_insns =
      List.fold_left (fun acc r -> Int64.add acc r.insns) 0L rows;
    total_nops = List.fold_left (fun acc r -> Int64.add acc r.nops) 0L rows;
    total_cycles = List.fold_left (fun acc r -> acc +. r.cycles) 0.0 rows;
  }

let of_result image (r : Sim.result) =
  match r.exec_profile with
  | Some p -> of_exec image p
  | None -> invalid_arg "Simprof.of_result: run was not profiled"

let find t fname = List.find_opt (fun r -> r.fname = fname) t.rows

let locator (image : Link.image) =
  let syms, blocks_of = layout_tables image in
  fun off ->
    let fname =
      match floor_find syms off with Some (_, f) -> f | None -> "?"
    in
    let label =
      match Hashtbl.find_opt blocks_of fname with
      | None -> -1
      | Some a -> (
          match floor_find a off with Some (_, l) -> l | None -> -1)
    in
    (fname, label, off < image.user_start)

let pct part total =
  if Int64.compare total 0L = 0 then 0.0
  else 100.0 *. Int64.to_float part /. Int64.to_float total

let truncate_rows ?top rows =
  match top with
  | None -> rows
  | Some n -> List.filteri (fun i _ -> i < max 0 n) rows

let pp_flat ?top ppf t =
  Format.fprintf ppf
    "runtime profile: %Ld instructions, %Ld candidate NOPs (%.3f%%), %.0f \
     cycles@."
    t.total_insns t.total_nops
    (pct t.total_nops t.total_insns)
    t.total_cycles;
  (match top with
  | Some n when n < List.length t.rows ->
      Format.fprintf ppf "showing top %d of %d functions@." n
        (List.length t.rows)
  | _ -> ());
  Format.fprintf ppf "%12s %7s %7s %10s %7s %12s  %s@." "insns" "flat%" "sum%"
    "nops" "nop%" "cycles" "function";
  let cum = ref 0L in
  List.iter
    (fun r ->
      cum := Int64.add !cum r.insns;
      Format.fprintf ppf "%12Ld %6.2f%% %6.2f%% %10Ld %6.2f%% %12.0f  %s%s@."
        r.insns
        (pct r.insns t.total_insns)
        (pct !cum t.total_insns)
        r.nops (pct r.nops r.insns) r.cycles r.fname
        (if r.in_runtime then " [runtime]" else ""))
    (truncate_rows ?top t.rows)

let block_json (b : block_row) =
  Jsonw.Obj
    [
      ("label", Jsonw.int b.label);
      ("insns", Jsonw.Int b.b_insns);
      ("nops", Jsonw.Int b.b_nops);
      ("cycles", Jsonw.Float b.b_cycles);
    ]

let row_json ~total ~cum (r : func_row) =
  Jsonw.Obj
    [
      ("function", Jsonw.Str r.fname);
      ("offset", Jsonw.int r.offset);
      ("runtime", Jsonw.Bool r.in_runtime);
      ("insns", Jsonw.Int r.insns);
      ("flat_pct", Jsonw.Float (pct r.insns total));
      ("sum_pct", Jsonw.Float (pct cum total));
      ("nops", Jsonw.Int r.nops);
      ("cycles", Jsonw.Float r.cycles);
      ("blocks", Jsonw.List (List.map block_json r.blocks));
    ]

let dump ?top t =
  let rows =
    let cum = ref 0L in
    List.map
      (fun r ->
        cum := Int64.add !cum r.insns;
        row_json ~total:t.total_insns ~cum:!cum r)
      (truncate_rows ?top t.rows)
  in
  Jsonw.Obj
    [
      ("schema", Jsonw.Str "psd-sim-profile/1");
      ( "total",
        Jsonw.Obj
          [
            ("insns", Jsonw.Int t.total_insns);
            ("nops", Jsonw.Int t.total_nops);
            ("cycles", Jsonw.Float t.total_cycles);
            ("functions", Jsonw.int (List.length t.rows));
          ] );
      ("functions", Jsonw.List rows);
    ]

let to_json ?top t = Jsonw.to_string (dump ?top t)
