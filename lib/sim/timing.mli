(** The CPU cost model.

    We cannot run on the paper's Xeon 5150, so the simulator charges an
    in-order cost per retired instruction plus an instruction-cache
    penalty.  The parameters encode the two mechanisms by which NOP
    insertion costs time on real hardware:

    {ul
    {- {b retire bandwidth}: a NOP is architecturally free but still
       occupies fetch/decode/retire slots.  Modern x86 retires several
       NOPs per cycle, hence the fractional {!field:nop_cost};}
    {- {b code growth}: inserted bytes push hot loops across more I-cache
       lines, modeled by a direct-mapped I-cache with a miss penalty;}
    {- {b bus locking}: the two XCHG-based NOP candidates lock the memory
       bus (the reason the paper excludes them by default), so they get a
       separate, much larger cost.}} *)

type model = {
  alu_cost : float;  (** register ALU / mov / lea / push / pop *)
  load_cost : float;  (** memory read (L1 hit) *)
  store_cost : float;
  mul_cost : float;
  div_cost : float;
  branch_cost : float;  (** conditional or unconditional jump *)
  call_cost : float;  (** call and ret *)
  syscall_cost : float;
  nop_cost : float;  (** any Table-1 candidate except XCHG *)
  xchg_nop_cost : float;  (** the bus-locking XCHG candidates *)
  icache_lines : int;  (** direct-mapped line count *)
  icache_line_bytes : int;
  icache_miss_penalty : float;
  sample_cost : float;
      (** cycles charged per PC sample when cycle-sampled profiling is on
          ({!Sim.run} [~sample_period]) — the modeled price of the timer
          interrupt, so sampled production runs carry a deterministic,
          gateable profiling overhead *)
}

val default : model
(** Calibrated so that naive pNOP=50% insertion lands in the single-digit
    percent overhead range the paper reports for SPEC. *)

val insn_cost : model -> Insn.t -> float
(** Base cost of one instruction (no cache effects).  NOP candidates are
    recognized structurally via {!Nops.is_candidate}. *)
