(* The block-cached execution engine.

   The reference interpreter in [Sim] re-derives everything per retired
   instruction: it re-matches the decoded instruction, recomputes its
   [Timing] cost, re-tests NOP candidacy (a deep structural comparison
   against the Table-1 list), divides to find icache lines, and carries
   all machine state in boxed [int32]/[int64]/[float] fields.  This
   engine pays those costs once per text offset instead of once per
   retired instruction: [.text] is pre-decoded into a cache of parallel
   per-offset arrays — a compiled closure, the flattened cost-model
   value, the NOP bit, the icache line/tag pair(s) — seeded from the
   image's block-offset tables and swept over every remaining offset so
   [run_at] gadget entry points are covered too.  Execution is then an
   array walk: fetch becomes two array reads, and the register file and
   data memory are untagged native-[int] arrays (sign-extended 32-bit
   canonical form), so the hot loop allocates nothing.

   The cache is keyed on (text digest, timing model) and shared across
   runs in a small LRU — population grids and the PGO loop run the same
   image thousands of times and pay decode once.  The interpreter
   borrows the cache's decode memo as well, so even oracle runs stop
   rebuilding per-run decode arrays.

   Everything observable must be *byte-identical* to the interpreter:
   same [Fault] messages raised after the same retired instructions,
   same modeled cycle float (every float addition happens in the same
   order — per-insn cost, each icache miss penalty separately, sample
   costs), same profile and sampled-recording arrays.  The equivalence
   suite and the fuzz oracle lattice compare the full tuple. *)

open Simcore

let data_base_i = Int32.to_int Link.data_base
let stack_top_i = Int32.to_int Link.stack_top
let text_base_i = Int32.to_int Link.text_base

(* Sign-extend the low 32 bits: registers and memory words live as
   canonical sign-extended 32-bit values in native ints (OCaml ints are
   63-bit, so 32-bit wrap-around is a shift pair instead of a box). *)
let[@inline] sext32 x = (x lsl 31) asr 31

type st = {
  regs : int array; (* indexed by Reg.encode; canonical sext32 form *)
  mutable zf : bool;
  mutable sf : bool;
  mutable of_ : bool;
  mutable cf : bool;
  mutable pf : bool;
  mem : int array; (* data space, word-indexed, up to stack_top *)
  tlen : int; (* String.length text *)
  mutable eip : int; (* text offset *)
  out : Buffer.t;
  itags : int array; (* icache tag per line *)
  cy : float array; (* cy.(0) = modeled cycles; a float array write
                       stays unboxed, a mutable float field would not *)
  mutable insns : int;
  mutable nops : int;
  mutable misses : int;
  mutable running : bool;
  mutable status : int; (* canonical sext32 form *)
  fuel : int;
  prof : bprof option;
  samp : bsamp option;
}

and bprof = {
  p_insn : int array;
  p_nop : int array;
  p_cyc : float array;
}

and bsamp = {
  sp : float; (* cycles between samples *)
  s_counts : int array;
  mutable s_taken : int;
  s_nf : float array; (* 0 = next sample threshold, 1 = overhead cycles *)
}

(* ------------------------------------------------------------------ *)
(* Machine helpers — each mirrors its [Sim] counterpart exactly,
   including fault message and check order.                            *)

let mem_rd st va =
  let a = va land 0xFFFFFFFF in
  if a land 3 <> 0 then fault "unaligned load at 0x%x" a;
  if a < data_base_i || a >= stack_top_i then fault "load out of bounds: 0x%x" a;
  Array.unsafe_get st.mem (a lsr 2)

let mem_wr st va v =
  let a = va land 0xFFFFFFFF in
  if a land 3 <> 0 then fault "unaligned store at 0x%x" a;
  if a < data_base_i || a >= stack_top_i then
    fault "store out of bounds: 0x%x" a;
  Array.unsafe_set st.mem (a lsr 2) v

(* Parity of the low byte, tabulated. *)
let ptab =
  Array.init 256 (fun b ->
      let rec bits n acc =
        if n = 0 then acc else bits (n lsr 1) (acc + (n land 1))
      in
      bits b 0 land 1 = 0)

let[@inline] set_logic_flags st res =
  st.zf <- res = 0;
  st.sf <- res < 0;
  st.of_ <- false;
  st.cf <- false;
  st.pf <- Array.unsafe_get ptab (res land 0xFF)

let[@inline] set_sub_flags st a b =
  let res = sext32 (a - b) in
  st.zf <- res = 0;
  st.sf <- res < 0;
  st.cf <- a land 0xFFFFFFFF < b land 0xFFFFFFFF;
  st.of_ <- a lxor b < 0 && a lxor res < 0;
  st.pf <- Array.unsafe_get ptab (res land 0xFF);
  res

let[@inline] set_add_flags st a b =
  let res = sext32 (a + b) in
  st.zf <- res = 0;
  st.sf <- res < 0;
  st.cf <- res land 0xFFFFFFFF < a land 0xFFFFFFFF;
  st.of_ <- a lxor b >= 0 && a lxor res < 0;
  st.pf <- Array.unsafe_get ptab (res land 0xFF);
  res

let compile_cond (c : Cond.t) : st -> bool =
  match c with
  | Cond.O -> fun st -> st.of_
  | Cond.NO -> fun st -> not st.of_
  | Cond.B -> fun st -> st.cf
  | Cond.AE -> fun st -> not st.cf
  | Cond.E -> fun st -> st.zf
  | Cond.NE -> fun st -> not st.zf
  | Cond.BE -> fun st -> st.cf || st.zf
  | Cond.A -> fun st -> not (st.cf || st.zf)
  | Cond.S -> fun st -> st.sf
  | Cond.NS -> fun st -> not st.sf
  | Cond.P -> fun st -> st.pf
  | Cond.NP -> fun st -> not st.pf
  | Cond.L -> fun st -> st.sf <> st.of_
  | Cond.GE -> fun st -> st.sf = st.of_
  | Cond.LE -> fun st -> st.zf || st.sf <> st.of_
  | Cond.G -> fun st -> (not st.zf) && st.sf = st.of_

let push st v =
  let esp = sext32 (Array.unsafe_get st.regs 4 - 4) in
  Array.unsafe_set st.regs 4 esp;
  mem_wr st esp v

let pop st =
  let esp = Array.unsafe_get st.regs 4 in
  let v = mem_rd st esp in
  Array.unsafe_set st.regs 4 (sext32 (esp + 4));
  v

let jump_to_va st va =
  let off = sext32 (va - text_base_i) in
  if off < 0 || off >= st.tlen then
    fault "control transfer outside text: 0x%lx" (Int32.of_int va);
  st.eip <- off

(* ------------------------------------------------------------------ *)
(* The closure compiler: one [st -> unit] per decoded offset.  Operand
   accessors, ALU flag routines, condition tests and static branch
   targets are all resolved here, at decode time.                      *)

let rd_reg r =
  let k = Reg.encode r in
  fun st -> Array.unsafe_get st.regs k

let wr_reg r =
  let k = Reg.encode r in
  fun st v -> Array.unsafe_set st.regs k v

let scale_int = function Insn.S1 -> 1 | Insn.S2 -> 2 | Insn.S4 -> 4 | Insn.S8 -> 8

let compile_ea ({ base; index; disp } : Insn.mem) : st -> int =
  let d = Int32.to_int disp in
  match (base, index) with
  | None, None -> fun _ -> d
  | Some b, None ->
      let kb = Reg.encode b in
      fun st -> sext32 (Array.unsafe_get st.regs kb + d)
  | Some b, Some (x, s) ->
      let kb = Reg.encode b and kx = Reg.encode x and m = scale_int s in
      fun st ->
        sext32
          (Array.unsafe_get st.regs kb + (Array.unsafe_get st.regs kx * m) + d)
  | None, Some (x, s) ->
      let kx = Reg.encode x and m = scale_int s in
      fun st -> sext32 ((Array.unsafe_get st.regs kx * m) + d)

let rd_op : Insn.operand -> st -> int = function
  | Insn.Reg r -> rd_reg r
  | Insn.Mem m ->
      let ea = compile_ea m in
      fun st -> mem_rd st (ea st)

let wr_op : Insn.operand -> st -> int -> unit = function
  | Insn.Reg r -> wr_reg r
  | Insn.Mem m ->
      let ea = compile_ea m in
      fun st v -> mem_wr st (ea st) v

(* [Some f]: compute result + flags.  [None]: flags only (Cmp). *)
let alu_compute : Insn.alu -> (st -> int -> int -> int) option = function
  | Insn.Add -> Some (fun st a b -> set_add_flags st a b)
  | Insn.Or ->
      Some
        (fun st a b ->
          let r = a lor b in
          set_logic_flags st r;
          r)
  | Insn.Adc ->
      Some
        (fun st a b ->
          let c = if st.cf then 1 else 0 in
          set_add_flags st a (sext32 (b + c)))
  | Insn.Sbb ->
      Some
        (fun st a b ->
          let c = if st.cf then 1 else 0 in
          set_sub_flags st a (sext32 (b + c)))
  | Insn.And ->
      Some
        (fun st a b ->
          let r = a land b in
          set_logic_flags st r;
          r)
  | Insn.Sub -> Some (fun st a b -> set_sub_flags st a b)
  | Insn.Xor ->
      Some
        (fun st a b ->
          let r = a lxor b in
          set_logic_flags st r;
          r)
  | Insn.Cmp -> None

let compile_shift (sh : Insn.shift) : int -> int -> int =
  match sh with
  | Insn.Shl -> fun v n -> sext32 (v lsl n)
  | Insn.Shr -> fun v n -> sext32 ((v land 0xFFFFFFFF) lsr n)
  | Insn.Sar -> fun v n -> v asr n

let syscall st =
  match Array.unsafe_get st.regs 0 (* EAX *) with
  | 1 ->
      st.running <- false;
      st.status <- Array.unsafe_get st.regs 3 (* EBX *)
  | 4 -> Buffer.add_char st.out (Char.chr (Array.unsafe_get st.regs 3 land 0xFF))
  | n -> fault "unknown syscall %d" n

let compile ~tlen ~off ~len (i : Insn.t) : st -> unit =
  let next = off + len in
  match i with
  | Insn.Mov_rm_r (dst, src) ->
      let wr = wr_op dst and rs = rd_reg src in
      fun st ->
        st.eip <- next;
        wr st (rs st)
  | Insn.Mov_r_rm (dst, src) ->
      let wd = wr_reg dst and rd = rd_op src in
      fun st ->
        st.eip <- next;
        wd st (rd st)
  | Insn.Mov_r_imm (dst, imm) ->
      let wd = wr_reg dst and v = Int32.to_int imm in
      fun st ->
        st.eip <- next;
        wd st v
  | Insn.Mov_rm_imm (dst, imm) ->
      let wr = wr_op dst and v = Int32.to_int imm in
      fun st ->
        st.eip <- next;
        wr st v
  | Insn.Alu_rm_r (op, dst, src) -> (
      let rd = rd_op dst and wr = wr_op dst and rs = rd_reg src in
      match alu_compute op with
      | Some f ->
          fun st ->
            st.eip <- next;
            let a = rd st and b = rs st in
            wr st (f st a b)
      | None ->
          fun st ->
            st.eip <- next;
            let a = rd st and b = rs st in
            ignore (set_sub_flags st a b))
  | Insn.Alu_r_rm (op, dst, src) -> (
      let rdst = rd_reg dst and wdst = wr_reg dst and rs = rd_op src in
      match alu_compute op with
      | Some f ->
          fun st ->
            st.eip <- next;
            let a = rdst st and b = rs st in
            wdst st (f st a b)
      | None ->
          fun st ->
            st.eip <- next;
            let a = rdst st and b = rs st in
            ignore (set_sub_flags st a b))
  | Insn.Alu_rm_imm (op, dst, imm) -> (
      let rd = rd_op dst and wr = wr_op dst and b = Int32.to_int imm in
      match alu_compute op with
      | Some f ->
          fun st ->
            st.eip <- next;
            let a = rd st in
            wr st (f st a b)
      | None ->
          fun st ->
            st.eip <- next;
            let a = rd st in
            ignore (set_sub_flags st a b))
  | Insn.Test_rm_r (dst, src) ->
      let rd = rd_op dst and rs = rd_reg src in
      fun st ->
        st.eip <- next;
        set_logic_flags st (rd st land rs st)
  | Insn.Lea (dst, m) ->
      let wd = wr_reg dst and ea = compile_ea m in
      fun st ->
        st.eip <- next;
        wd st (ea st)
  | Insn.Inc_r r ->
      let rr = rd_reg r and wr = wr_reg r in
      fun st ->
        st.eip <- next;
        (* INC preserves CF. *)
        let cf = st.cf in
        wr st (set_add_flags st (rr st) 1);
        st.cf <- cf
  | Insn.Dec_r r ->
      let rr = rd_reg r and wr = wr_reg r in
      fun st ->
        st.eip <- next;
        let cf = st.cf in
        wr st (set_sub_flags st (rr st) 1);
        st.cf <- cf
  | Insn.Neg o ->
      let rd = rd_op o and wr = wr_op o in
      fun st ->
        st.eip <- next;
        let v = rd st in
        let r = set_sub_flags st 0 v in
        st.cf <- v <> 0;
        wr st r
  | Insn.Not o ->
      let rd = rd_op o and wr = wr_op o in
      fun st ->
        st.eip <- next;
        wr st (lnot (rd st))
  | Insn.Imul_r_rm (dst, src) ->
      let rdst = rd_reg dst and wdst = wr_reg dst and rs = rd_op src in
      fun st ->
        st.eip <- next;
        (* native product wraps mod 2^63, which preserves the low 32
           bits, so sext32 of it is the exact 32-bit wrap *)
        wdst st (sext32 (rdst st * rs st))
  | Insn.Mul o ->
      let rd = rd_op o in
      fun st ->
        st.eip <- next;
        let a =
          Int64.logand (Int64.of_int (Array.unsafe_get st.regs 0)) 0xFFFFFFFFL
        in
        let b = Int64.logand (Int64.of_int (rd st)) 0xFFFFFFFFL in
        let p = Int64.mul a b in
        Array.unsafe_set st.regs 0 (sext32 (Int64.to_int p));
        Array.unsafe_set st.regs 2
          (sext32 (Int64.to_int (Int64.shift_right_logical p 32)))
  | Insn.Idiv o ->
      let rd = rd_op o in
      fun st ->
        st.eip <- next;
        let divisor = Int64.of_int (rd st) in
        if Int64.equal divisor 0L then fault "division by zero";
        let dividend =
          Int64.logor
            (Int64.shift_left (Int64.of_int (Array.unsafe_get st.regs 2)) 32)
            (Int64.logand
               (Int64.of_int (Array.unsafe_get st.regs 0))
               0xFFFFFFFFL)
        in
        let q = Int64.div dividend divisor in
        if Int64.compare q 0x7FFFFFFFL > 0 || Int64.compare q (-0x80000000L) < 0
        then fault "division overflow";
        Array.unsafe_set st.regs 0 (Int64.to_int q);
        Array.unsafe_set st.regs 2 (Int64.to_int (Int64.rem dividend divisor))
  | Insn.Cdq ->
      fun st ->
        st.eip <- next;
        Array.unsafe_set st.regs 2
          (if Array.unsafe_get st.regs 0 < 0 then -1 else 0)
  | Insn.Shift_imm (sh, o, n) ->
      let rd = rd_op o and wr = wr_op o in
      let n = n land 31 in
      if n = 0 then fun st ->
        st.eip <- next;
        (* shift by 0: value unchanged, flags untouched *)
        wr st (rd st)
      else
        let f = compile_shift sh in
        fun st ->
          st.eip <- next;
          let r = f (rd st) n in
          set_logic_flags st r;
          wr st r
  | Insn.Shift_cl (sh, o) ->
      let rd = rd_op o and wr = wr_op o and f = compile_shift sh in
      fun st ->
        st.eip <- next;
        let v = rd st in
        let n = Array.unsafe_get st.regs 1 (* ECX *) land 31 in
        let r = f v n in
        if n <> 0 then set_logic_flags st r;
        wr st r
  | Insn.Push_r r ->
      let rr = rd_reg r in
      fun st ->
        st.eip <- next;
        push st (rr st)
  | Insn.Push_imm imm ->
      let v = Int32.to_int imm in
      fun st ->
        st.eip <- next;
        push st v
  | Insn.Pop_r r ->
      let wr = wr_reg r in
      fun st ->
        st.eip <- next;
        wr st (pop st)
  | Insn.Ret ->
      fun st ->
        st.eip <- next;
        jump_to_va st (pop st)
  | Insn.Ret_imm n ->
      fun st ->
        st.eip <- next;
        let va = pop st in
        Array.unsafe_set st.regs 4
          (sext32 (Array.unsafe_get st.regs 4 + n));
        jump_to_va st va
  | Insn.Call_rel d ->
      let target = next + Int32.to_int d in
      let ret_va = sext32 (text_base_i + next) in
      if target < 0 || target >= tlen then fun st -> (
        st.eip <- next;
        push st ret_va;
        fault "call outside text")
      else fun st ->
        push st ret_va;
        st.eip <- target
  | Insn.Call_rm o ->
      let rd = rd_op o in
      let ret_va = sext32 (text_base_i + next) in
      fun st ->
        st.eip <- next;
        push st ret_va;
        jump_to_va st (rd st)
  | Insn.Jmp_rel d ->
      let target = next + Int32.to_int d in
      if target < 0 || target >= tlen then fun st -> (
        st.eip <- next;
        fault "jump outside text")
      else fun st -> st.eip <- target
  | Insn.Jmp_rel8 d ->
      let target = next + d in
      if target < 0 || target >= tlen then fun st -> (
        st.eip <- next;
        fault "jump outside text")
      else fun st -> st.eip <- target
  | Insn.Jmp_rm o ->
      let rd = rd_op o in
      fun st ->
        st.eip <- next;
        jump_to_va st (rd st)
  | Insn.Jcc (c, d) ->
      let cond = compile_cond c in
      let target = next + Int32.to_int d in
      if target < 0 || target >= tlen then fun st -> (
        st.eip <- next;
        if cond st then fault "jump outside text")
      else fun st -> st.eip <- (if cond st then target else next)
  | Insn.Jcc8 (c, d) ->
      let cond = compile_cond c in
      let target = next + d in
      if target < 0 || target >= tlen then fun st -> (
        st.eip <- next;
        if cond st then fault "jump outside text")
      else fun st -> st.eip <- (if cond st then target else next)
  | Insn.Setcc (c, r8) ->
      let cond = compile_cond c in
      let r32 = Reg.of_r8 r8 in
      let rr = rd_reg r32 and wr = wr_reg r32 in
      fun st ->
        st.eip <- next;
        let old = rr st in
        let bit = if cond st then 1 else 0 in
        wr st ((old land lnot 0xFF) lor bit)
  | Insn.Movzx_r_r8 (dst, src8) ->
      let rs = rd_reg (Reg.of_r8 src8) and wd = wr_reg dst in
      fun st ->
        st.eip <- next;
        wd st (rs st land 0xFF)
  | Insn.Xchg_rm_r (o, r) ->
      let rd = rd_op o and wr = wr_op o and rr = rd_reg r and wrr = wr_reg r in
      fun st ->
        st.eip <- next;
        let a = rd st and b = rr st in
        wr st b;
        wrr st a
  | Insn.Int 0x80 ->
      fun st ->
        st.eip <- next;
        syscall st
  | Insn.Int n ->
      fun st ->
        st.eip <- next;
        fault "unhandled interrupt 0x%x" n
  | Insn.Nop -> fun st -> st.eip <- next
  | Insn.Hlt ->
      fun st ->
        st.eip <- next;
        st.running <- false;
        st.status <- Array.unsafe_get st.regs 0

(* ------------------------------------------------------------------ *)
(* The block cache: parallel per-offset arrays over [.text].           *)

type cache = {
  text : string;
  model : Timing.model;
  decoded : (Insn.t * int) option array; (* shared with the interpreter *)
  ops : (st -> unit) array;
  costs : float array; (* flattened Timing.insn_cost per offset *)
  cflags : int array; (* 0 = undecodable; else (len lsl 1) lor nop_bit *)
  line1 : int array; (* icache line of the first instruction byte *)
  tag1 : int array;
  line2 : int array; (* line of the last byte iff it differs, else -1 *)
  tag2 : int array;
  mutable last_use : int; (* LRU clock for the global cache *)
}

let dummy_op : st -> unit = fun _ -> assert false

let build (image : Link.image) (model : Timing.model) : cache =
  let text = image.text in
  let tlen = String.length text in
  let n = max 1 tlen in
  let decoded = Array.make n None in
  let ops = Array.make n dummy_op in
  let costs = Array.make n 0.0 in
  let cflags = Array.make n 0 in
  let line1 = Array.make n 0
  and tag1 = Array.make n 0
  and line2 = Array.make n (-1)
  and tag2 = Array.make n 0 in
  let lb = model.Timing.icache_line_bytes
  and lines = model.Timing.icache_lines in
  let install off i ilen =
    decoded.(off) <- Some (i, ilen);
    ops.(off) <- compile ~tlen ~off ~len:ilen i;
    costs.(off) <- Timing.insn_cost model i;
    let va = text_base_i + off in
    let t1 = va / lb in
    line1.(off) <- t1 mod lines;
    tag1.(off) <- t1;
    let t2 = (va + ilen - 1) / lb in
    if t2 <> t1 then begin
      line2.(off) <- t2 mod lines;
      tag2.(off) <- t2
    end;
    cflags.(off) <- (ilen lsl 1) lor (if Nops.is_candidate i then 1 else 0)
  in
  (* Seed decoding from the image's layout tables — entry stub, symbol
     starts and every basic-block start — following straight-line
     fall-through to the block terminator; this covers all offsets
     normal execution can reach. *)
  let seed_from start =
    let off = ref start in
    let continue = ref true in
    while !continue && !off >= 0 && !off < tlen && cflags.(!off) = 0 do
      match Decode.insn ~pos:!off text with
      | None -> continue := false
      | Some (i, ilen) ->
          install !off i ilen;
          if Insn.is_terminator i then continue := false
          else off := !off + ilen
    done
  in
  seed_from image.entry;
  seed_from image.user_start;
  List.iter (fun (_, o) -> seed_from o) image.symbols;
  List.iter
    (fun (_, blocks) -> List.iter (fun (_, o) -> seed_from o) blocks)
    image.block_offsets;
  (* Sweep the remaining offsets so [run_at] — gadget-style entry at an
     arbitrary, possibly misaligned offset — also finds its entries
     pre-compiled.  Offsets left at 0 are genuinely undecodable and
     fault on fetch, exactly like the interpreter. *)
  for off = 0 to tlen - 1 do
    if cflags.(off) = 0 then
      match Decode.insn ~pos:off text with
      | None -> ()
      | Some (i, ilen) -> install off i ilen
  done;
  {
    text;
    model;
    decoded;
    ops;
    costs;
    cflags;
    line1;
    tag1;
    line2;
    tag2;
    last_use = 0;
  }

(* The global cache, keyed on (text digest, timing model) and guarded by
   a lock so the opt-in domain pool backend shares it safely.  No
   metrics are emitted here on purpose: hit/miss totals depend on which
   worker process ran which task, and the perf gate byte-compares merged
   telemetry across -j levels. *)

let cache_capacity = 32
let cache_lock = Lock.create ()
let caches : (string * Timing.model, cache) Hashtbl.t = Hashtbl.create 16
let cache_tick = ref 0

let cache_for (image : Link.image) (model : Timing.model) : cache =
  let key = (Digest.string image.text, model) in
  Lock.protect cache_lock (fun () ->
      incr cache_tick;
      match Hashtbl.find_opt caches key with
      | Some c ->
          c.last_use <- !cache_tick;
          c
      | None ->
          let c = build image model in
          c.last_use <- !cache_tick;
          if Hashtbl.length caches >= cache_capacity then begin
            let victim =
              Hashtbl.fold
                (fun k c acc ->
                  match acc with
                  | Some (_, best) when best.last_use <= c.last_use -> acc
                  | _ -> Some (k, c))
                caches None
            in
            match victim with
            | Some (k, _) -> Hashtbl.remove caches k
            | None -> ()
          end;
          Hashtbl.add caches key c;
          c)

let decoded c = c.decoded

(* ------------------------------------------------------------------ *)
(* Execution.                                                          *)

let exec_loop (cache : cache) (st : st) =
  let ops = cache.ops
  and costs = cache.costs
  and cflags = cache.cflags
  and line1 = cache.line1
  and tag1 = cache.tag1
  and line2 = cache.line2
  and tag2 = cache.tag2 in
  let tlen = st.tlen in
  let itags = st.itags and cy = st.cy in
  let pen : float = cache.model.Timing.icache_miss_penalty in
  let sample_cost : float = cache.model.Timing.sample_cost in
  let fuel = st.fuel in
  while st.running do
    let off = st.eip in
    if off < 0 || off >= tlen then
      fault "instruction fetch outside text at offset %d" off;
    let fl = Array.unsafe_get cflags off in
    if fl = 0 then fault "undecodable bytes at text offset 0x%x" off;
    let c0 = Array.unsafe_get cy 0 in
    (* icache: first-byte line, then the last-byte line iff distinct —
       two separate penalty additions, matching the interpreter's float
       addition order exactly *)
    let l1 = Array.unsafe_get line1 off in
    let t1 = Array.unsafe_get tag1 off in
    if Array.unsafe_get itags l1 <> t1 then begin
      Array.unsafe_set itags l1 t1;
      st.misses <- st.misses + 1;
      Array.unsafe_set cy 0 (Array.unsafe_get cy 0 +. pen)
    end;
    let l2 = Array.unsafe_get line2 off in
    if l2 >= 0 then begin
      let t2 = Array.unsafe_get tag2 off in
      if Array.unsafe_get itags l2 <> t2 then begin
        Array.unsafe_set itags l2 t2;
        st.misses <- st.misses + 1;
        Array.unsafe_set cy 0 (Array.unsafe_get cy 0 +. pen)
      end
    end;
    let n = st.insns + 1 in
    st.insns <- n;
    if n > fuel then fault "fuel exhausted";
    if fl land 1 <> 0 then st.nops <- st.nops + 1;
    Array.unsafe_set cy 0 (Array.unsafe_get cy 0 +. Array.unsafe_get costs off);
    (match st.prof with
    | None -> ()
    | Some p ->
        Array.unsafe_set p.p_insn off (Array.unsafe_get p.p_insn off + 1);
        if fl land 1 <> 0 then
          Array.unsafe_set p.p_nop off (Array.unsafe_get p.p_nop off + 1);
        Array.unsafe_set p.p_cyc off
          (Array.unsafe_get p.p_cyc off +. (Array.unsafe_get cy 0 -. c0)));
    (match st.samp with
    | None -> ()
    | Some s ->
        let cyc = Array.unsafe_get cy 0 in
        let nf = s.s_nf in
        if cyc >= Array.unsafe_get nf 0 then begin
          let due = 1 + int_of_float ((cyc -. Array.unsafe_get nf 0) /. s.sp) in
          Array.unsafe_set s.s_counts off
            (Array.unsafe_get s.s_counts off + due);
          s.s_taken <- s.s_taken + due;
          Array.unsafe_set nf 0
            (Array.unsafe_get nf 0 +. (float_of_int due *. s.sp));
          let cost = float_of_int due *. sample_cost in
          Array.unsafe_set nf 1 (Array.unsafe_get nf 1 +. cost);
          Array.unsafe_set cy 0 (cyc +. cost)
        end);
    (Array.unsafe_get ops off) st
  done

let make_state ?(profile = false) ?sample_period ~fuel (image : Link.image)
    (model : Timing.model) : st =
  let n = max 1 (String.length image.text) in
  let prof =
    if not profile then None
    else
      Some
        {
          p_insn = Array.make n 0;
          p_nop = Array.make n 0;
          p_cyc = Array.make n 0.0;
        }
  in
  let samp =
    match sample_period with
    | None -> None
    | Some p when p <= 0 -> invalid_arg "Sim: sample_period must be positive"
    | Some p ->
        let pf = float_of_int p in
        Some { sp = pf; s_counts = Array.make n 0; s_taken = 0; s_nf = [| pf; 0.0 |] }
  in
  let fuel =
    if Int64.compare fuel (Int64.of_int max_int) >= 0 then max_int
    else Int64.to_int fuel
  in
  {
    regs = Array.make 8 0;
    zf = false;
    sf = false;
    of_ = false;
    cf = false;
    pf = false;
    mem = Array.make (stack_top_i / 4) 0;
    tlen = String.length image.text;
    eip = image.entry;
    out = Buffer.create 256;
    itags = Array.make model.Timing.icache_lines (-1);
    cy = [| 0.0 |];
    insns = 0;
    nops = 0;
    misses = 0;
    running = true;
    status = 0;
    fuel;
    prof;
    samp;
  }

let init_data st (image : Link.image) =
  List.iter
    (fun (addr, words) ->
      let base = Int32.to_int addr lsr 2 in
      Array.iteri (fun i v -> st.mem.(base + i) <- Int32.to_int v) words)
    image.data_init

let finish ~record st : result =
  if record then begin
    Metrics.incr (Metrics.counter "sim.runs");
    Metrics.incr ~by:(Int64.of_int st.insns) (Metrics.counter "sim.instructions");
    Metrics.incr ~by:(Int64.of_int st.nops) (Metrics.counter "sim.nops_retired");
    Metrics.incr ~by:(Int64.of_int st.misses)
      (Metrics.counter "sim.icache_misses")
  end;
  let cycles = st.cy.(0) in
  let sample_profile =
    match st.samp with
    | None -> None
    | Some s ->
        let overhead = s.s_nf.(1) in
        if record then begin
          Metrics.incr (Metrics.counter "sim.sampled_runs");
          Metrics.incr
            ~by:(Int64.of_int s.s_taken)
            (Metrics.counter "sim.samples");
          let base = cycles -. overhead in
          if base > 0.0 then
            Metrics.observe
              (Metrics.histogram "sim.sample_overhead_pct")
              (100.0 *. overhead /. base)
        end;
        Some
          {
            period = s.sp;
            sample_counts = Array.map Int64.of_int s.s_counts;
            samples_taken = Int64.of_int s.s_taken;
            sample_overhead_cycles = overhead;
          }
  in
  let exec_profile =
    match st.prof with
    | None -> None
    | Some p ->
        Some
          {
            insn_counts = Array.map Int64.of_int p.p_insn;
            nop_counts = Array.map Int64.of_int p.p_nop;
            cycle_counts = Array.copy p.p_cyc;
          }
  in
  {
    status = Int32.of_int st.status;
    output = Buffer.contents st.out;
    instructions = Int64.of_int st.insns;
    nops_retired = Int64.of_int st.nops;
    cycles;
    icache_misses = Int64.of_int st.misses;
    exec_profile;
    sample_profile;
  }

let exec_to_outcome cache st : outcome =
  match exec_loop cache st with
  | () -> Finished (finish ~record:true st)
  | exception Fault msg ->
      Faulted { fault_msg = msg; partial = finish ~record:false st }

(* Argument validation lives in [Sim.run], the single dispatch point for
   both engines. *)
let run_outcome ?(model = Timing.default) ~fuel ?profile ?sample_period
    (image : Link.image) ~args : outcome =
  let cache = cache_for image model in
  let st = make_state ?profile ?sample_period ~fuel image model in
  init_data st image;
  let argv = Int32.to_int (Link.argv_address image) lsr 2 in
  List.iteri (fun i v -> st.mem.(argv + i) <- Int32.to_int v) args;
  st.regs.(Reg.encode Reg.ESP) <- stack_top_i - 16;
  exec_to_outcome cache st

let run_at_outcome ?(model = Timing.default) ~fuel ?profile
    ?(stack_image = []) (image : Link.image) ~start_offset : outcome =
  let cache = cache_for image model in
  let st = make_state ?profile ~fuel image model in
  init_data st image;
  let esp = stack_top_i - (16 + (4 * List.length stack_image)) in
  st.regs.(Reg.encode Reg.ESP) <- esp;
  List.iteri
    (fun i v -> st.mem.((esp lsr 2) + i) <- Int32.to_int v)
    stack_image;
  st.eip <- start_offset;
  exec_to_outcome cache st
