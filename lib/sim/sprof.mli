(** Sampled production profiles: recorded, persisted, merged, replayed.

    The production half of the PGO loop.  {!Sim.sample_profile} gives PC
    samples by text offset on whatever binary actually ran — including a
    {e diversified} one; this module back-maps them through the image's
    layout tables ({!Simprof.locator}) to (function, block) rows, so the
    attribution is NOP-aware by construction: the diversified image's
    [block_offsets] describe the diversified layout, and block labels
    survive diversification.  A profile of variant A can therefore
    retrain variant B.

    Recordings carry provenance (image digest, diversification config
    and seed, workload, sample period, sample count, merge weight) and
    persist in the PSDPROF on-disk format — the same {!Frame} container
    as objects and images, so loads distinguish wrong-kind, wrong-
    version, truncated and corrupted files precisely.

    {!to_profile} converts the sampled mass into a training
    {!Profile.t} for {!Driver.diversify}.  Counts are quantized to
    power-of-four buckets so the closed loop (diversify → sample →
    retrain → re-diversify) is insensitive to sub-bucket sampling noise
    and can reach a byte-level fixed point; {!staleness} quantifies how
    far a (possibly stale, possibly cross-variant) sampled profile sits
    from a fresh exact training profile. *)

type source = {
  image_digest : string;  (** MD5 hex of the profiled image's [.text] *)
  config : string;  (** diversification config name, [""] if baseline *)
  seed : int64;  (** diversification seed, [0L] if none *)
  workload : string;
  period : float;  (** cycles between samples *)
  samples : int64;
  weight : float;  (** cumulative merge weight applied to this source *)
}
(** Provenance of one recording.  Merging concatenates source lists, so
    a merged profile remembers every run that went into it. *)

type t = {
  sources : source list;  (** in merge order *)
  rows : (string * Ir.label, float) Hashtbl.t;
      (** weighted sampled cycle mass per user (function, block) *)
  runtime_mass : float;  (** mass landing in the fixed runtime or stub *)
  unknown_mass : float;  (** mass at offsets outside any symbol *)
}

val empty : t
val is_empty : t -> bool

val total_mass : t -> float
(** Sum of the user-row masses (runtime and unknown mass excluded). *)

val image_digest : Link.image -> string
(** MD5 hex of the image's [.text] — the identity recordings carry. *)

val of_run :
  image:Link.image ->
  ?config:string ->
  ?seed:int64 ->
  workload:string ->
  Sim.result ->
  t
(** Back-map one sampled run.  Each sample contributes [period] cycles
    of mass at its back-mapped (function, block).  [image] must be the
    binary the run executed — its layout tables are what make the
    attribution correct under diversification.  Raises
    [Invalid_argument] if the run was not started with
    [~sample_period]. *)

val merge : ?weight:float -> t -> t -> t
(** Pointwise sum of row masses; the second profile's mass (and its
    sources' recorded weights) are scaled by [weight] (default 1) — the
    cross-run weighting for fleets where some recordings should count
    for more.  Raises [Invalid_argument] on a negative weight. *)

val to_profile : t -> Profile.t
(** The training profile {!Driver.diversify} consumes.  Masses are
    normalized so the hottest row maps to [2^20], then rounded to the
    nearest power of four (minimum 1: any sampled block counts as warm).
    The coarse buckets make the profile — and hence the retrained
    binary — insensitive to sub-bucket sampling noise, which is what
    lets the closed PGO loop reach a fixed point. *)

type staleness = {
  coverage_pct : float;
      (** % of the fresh profile's executed blocks that were sampled *)
  hot_overlap_pct : float;
      (** weighted overlap of the two 90%-mass hot sets, weighted by the
          fresh profile's shares *)
  mean_drift_pct : float;
      (** mean |per-function share difference|, percentage points *)
  max_drift_pct : float;  (** largest per-function share difference *)
}

val staleness : fresh:Profile.t -> t -> staleness
(** How far this sampled profile sits from a fresh exact training
    profile — the telemetry {!Driver.train_from_profile} exports.  An
    empty side yields zeros rather than NaNs. *)

val drift_threshold_pct : float
(** Hot-set overlap below which a recording counts as materially
    drifted (90%). *)

val materially_drifted : previous:Profile.t -> t -> bool
(** Has production behaviour drifted from the profile the deployed
    binary was trained on?  True when the recording's weighted hot-set
    overlap against [previous] falls below {!drift_threshold_pct} (or
    either side is empty).  Sparse sampling makes the cold tail of a
    recording churn run-to-run; gating retraining on hot-set drift is
    what lets the closed PGO loop reach a fixed point instead of
    redeploying on noise. *)

val save : t -> string -> unit
(** Write in the PSDPROF format: {!Frame} magic ["PSDPROF"], version 1,
    marshaled payload with rows in sorted order (byte-stable for equal
    contents). *)

val load : string -> t
(** Raises [Failure] — naming the path — on bad magic, version skew,
    truncation, or corruption, like every other PSD loader. *)

val pp : ?top:int -> Format.formatter -> t -> unit
(** Provenance lines, then a flat (function, block) mass table sorted by
    (mass descending, key ascending) with flat and cumulative
    percentages.  [top] truncates to the N hottest rows. *)

val pp_staleness : Format.formatter -> staleness -> unit

val dump : ?top:int -> t -> Jsonw.t
(** Machine-readable form ([psd-sampled-profile/1]). *)

val to_json : ?top:int -> t -> string
