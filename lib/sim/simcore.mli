(** Result types and the fault exception shared by both execution
    engines (the reference interpreter in {!Sim} and the block-cached
    engine in {!Bsim}).  {!Sim} re-exports all of these with type
    equations, so client code never needs this module directly. *)

type exec_profile = {
  insn_counts : int64 array;
  nop_counts : int64 array;
  cycle_counts : float array;
}

type sample_profile = {
  period : float;
  sample_counts : int64 array;
  samples_taken : int64;
  sample_overhead_cycles : float;
}

val default_sample_period : int

type result = {
  status : int32;
  output : string;
  instructions : int64;
  nops_retired : int64;
  cycles : float;
  icache_misses : int64;
  exec_profile : exec_profile option;
  sample_profile : sample_profile option;
}

type outcome =
  | Finished of result
  | Faulted of { fault_msg : string; partial : result }
      (** The run trapped mid-flight; [partial] carries the machine
          counters (cycles, retired instructions, output so far) at the
          faulting instruction — what the trap-parity tests pin. *)

exception Fault of string

val fault : ('a, Format.formatter, unit, 'b) format4 -> 'a
(** Format a fault message, bump the [sim.faults] counter, and raise
    {!Fault}. *)
