(* The simulator front door: one validated entry point, two execution
   engines.

   [Interp] is the seed fetch-decode-execute interpreter, kept verbatim
   below as the trusted differential oracle (the same pattern as
   [Link.link_whole] vs [Link.link_objects]).  [Block] is the
   block-cached engine in [Bsim]: decode-once/execute-many over
   pre-compiled per-offset entries, byte-identical observables, roughly
   an order of magnitude faster — and the default.  The decode memo is
   owned by the block cache and shared with the interpreter, so repeated
   runs of one image pay decode cost once regardless of engine. *)

type exec_profile = Simcore.exec_profile = {
  insn_counts : int64 array;
  nop_counts : int64 array;
  cycle_counts : float array;
}

type sample_profile = Simcore.sample_profile = {
  period : float;
  sample_counts : int64 array;
  samples_taken : int64;
  sample_overhead_cycles : float;
}

let default_sample_period = Simcore.default_sample_period

type result = Simcore.result = {
  status : int32;
  output : string;
  instructions : int64;
  nops_retired : int64;
  cycles : float;
  icache_misses : int64;
  exec_profile : exec_profile option;
  sample_profile : sample_profile option;
}

type outcome = Simcore.outcome =
  | Finished of result
  | Faulted of { fault_msg : string; partial : result }

exception Fault = Simcore.Fault

let fault fmt = Simcore.fault fmt

type engine = Interp | Block

let default_engine = Block
let engine_name = function Interp -> "interp" | Block -> "block"

let engine_of_string = function
  | "interp" -> Some Interp
  | "block" -> Some Block
  | _ -> None

type state = {
  regs : int32 array; (* indexed by Reg.encode *)
  mutable zf : bool;
  mutable sf : bool;
  mutable of_ : bool;
  mutable cf : bool;
  mutable pf : bool;
  mem : int32 array; (* data space, word-indexed, up to stack_top *)
  text : string;
  mutable eip : int; (* text offset *)
  decoded : (Insn.t * int) option array;
      (* decode memo, owned by the block cache and shared across runs *)
  out : Buffer.t;
  model : Timing.model;
  icache_tags : int array;
  mutable instructions : int64;
  mutable nops : int64;
  mutable misses : int64;
  mutable cycles : float;
  mutable running : bool;
  mutable status : int32;
  fuel : int64;
  prof : exec_profile option;  (* per-text-offset execution counters *)
  samp : sample_state option;  (* cycle-sampled PC recording *)
}

and sample_state = {
  s_period : float;  (* cycles between samples *)
  s_counts : int64 array;  (* per text offset: samples landing there *)
  mutable s_taken : int64;
  mutable s_next : float;  (* cycle threshold of the next sample *)
  mutable s_overhead : float;  (* cycles charged for taking samples *)
}

let data_base_i = Int32.to_int Link.data_base
let stack_top_i = Int32.to_int Link.stack_top
let text_base_i = Int32.to_int Link.text_base

let reg_get st r = st.regs.(Reg.encode r)
let reg_set st r v = st.regs.(Reg.encode r) <- v

let mem_read st (addr : int32) =
  let a = Int32.to_int addr land 0xFFFFFFFF in
  if a land 3 <> 0 then fault "unaligned load at 0x%x" a;
  if a < data_base_i || a >= stack_top_i then fault "load out of bounds: 0x%x" a;
  st.mem.(a lsr 2)

let mem_write st (addr : int32) v =
  let a = Int32.to_int addr land 0xFFFFFFFF in
  if a land 3 <> 0 then fault "unaligned store at 0x%x" a;
  if a < data_base_i || a >= stack_top_i then
    fault "store out of bounds: 0x%x" a;
  st.mem.(a lsr 2) <- v

let scale_int = function Insn.S1 -> 1l | Insn.S2 -> 2l | Insn.S4 -> 4l | Insn.S8 -> 8l

let effective_addr st ({ base; index; disp } : Insn.mem) =
  let b = match base with Some r -> reg_get st r | None -> 0l in
  let i =
    match index with
    | Some (r, s) -> Int32.mul (reg_get st r) (scale_int s)
    | None -> 0l
  in
  Int32.add (Int32.add b i) disp

let operand_read st = function
  | Insn.Reg r -> reg_get st r
  | Insn.Mem m -> mem_read st (effective_addr st m)

let operand_write st op v =
  match op with
  | Insn.Reg r -> reg_set st r v
  | Insn.Mem m -> mem_write st (effective_addr st m) v

let parity8 (v : int32) =
  let b = Int32.to_int v land 0xFF in
  let rec bits n acc = if n = 0 then acc else bits (n lsr 1) (acc + (n land 1)) in
  bits b 0 land 1 = 0

let set_logic_flags st res =
  st.zf <- Int32.equal res 0l;
  st.sf <- Int32.compare res 0l < 0;
  st.of_ <- false;
  st.cf <- false;
  st.pf <- parity8 res

let unsigned_lt (a : int32) (b : int32) =
  (* Compare as unsigned 32-bit. *)
  Int32.unsigned_compare a b < 0

let set_sub_flags st a b =
  let res = Int32.sub a b in
  st.zf <- Int32.equal res 0l;
  st.sf <- Int32.compare res 0l < 0;
  st.cf <- unsigned_lt a b;
  st.of_ <-
    Int32.compare (Int32.logxor a b) 0l < 0
    && Int32.compare (Int32.logxor a res) 0l < 0;
  st.pf <- parity8 res;
  res

let set_add_flags st a b =
  let res = Int32.add a b in
  st.zf <- Int32.equal res 0l;
  st.sf <- Int32.compare res 0l < 0;
  st.cf <- unsigned_lt res a;
  st.of_ <-
    Int32.compare (Int32.logxor a b) 0l >= 0
    && Int32.compare (Int32.logxor a res) 0l < 0;
  st.pf <- parity8 res;
  res

let cond_holds st (c : Cond.t) =
  match c with
  | Cond.O -> st.of_
  | Cond.NO -> not st.of_
  | Cond.B -> st.cf
  | Cond.AE -> not st.cf
  | Cond.E -> st.zf
  | Cond.NE -> not st.zf
  | Cond.BE -> st.cf || st.zf
  | Cond.A -> not (st.cf || st.zf)
  | Cond.S -> st.sf
  | Cond.NS -> not st.sf
  | Cond.P -> st.pf
  | Cond.NP -> not st.pf
  | Cond.L -> st.sf <> st.of_
  | Cond.GE -> st.sf = st.of_
  | Cond.LE -> st.zf || st.sf <> st.of_
  | Cond.G -> (not st.zf) && st.sf = st.of_

let alu_exec st (op : Insn.alu) a b =
  match op with
  | Insn.Add -> Some (set_add_flags st a b)
  | Insn.Or ->
      let r = Int32.logor a b in
      set_logic_flags st r;
      Some r
  | Insn.Adc ->
      let c = if st.cf then 1l else 0l in
      Some (set_add_flags st a (Int32.add b c))
  | Insn.Sbb ->
      let c = if st.cf then 1l else 0l in
      Some (set_sub_flags st a (Int32.add b c))
  | Insn.And ->
      let r = Int32.logand a b in
      set_logic_flags st r;
      Some r
  | Insn.Sub -> Some (set_sub_flags st a b)
  | Insn.Xor ->
      let r = Int32.logxor a b in
      set_logic_flags st r;
      Some r
  | Insn.Cmp ->
      ignore (set_sub_flags st a b);
      None

let push st v =
  let esp = Int32.sub (reg_get st Reg.ESP) 4l in
  reg_set st Reg.ESP esp;
  mem_write st esp v

let pop st =
  let esp = reg_get st Reg.ESP in
  let v = mem_read st esp in
  reg_set st Reg.ESP (Int32.add esp 4l);
  v

let jump_to_va st (va : int32) =
  let off = Int32.to_int (Int32.sub va Link.text_base) in
  if off < 0 || off >= String.length st.text then
    fault "control transfer outside text: 0x%lx" va;
  st.eip <- off

let syscall st =
  match Int32.to_int st.regs.(Reg.encode Reg.EAX) with
  | 1 ->
      st.running <- false;
      st.status <- reg_get st Reg.EBX
  | 4 ->
      Buffer.add_char st.out
        (Char.chr (Int32.to_int (reg_get st Reg.EBX) land 0xFF))
  | n -> fault "unknown syscall %d" n

let fetch st =
  let pos = st.eip in
  if pos < 0 || pos >= String.length st.text then
    fault "instruction fetch outside text at offset %d" pos;
  match st.decoded.(pos) with
  | Some d -> d
  | None -> (
      match Decode.insn ~pos st.text with
      | Some d ->
          st.decoded.(pos) <- Some d;
          d
      | None -> fault "undecodable bytes at text offset 0x%x" pos)

let icache_access st len =
  let va = text_base_i + st.eip in
  let lb = st.model.icache_line_bytes in
  let check addr =
    let line = addr / lb mod st.model.icache_lines in
    let tag = addr / lb in
    if st.icache_tags.(line) <> tag then begin
      st.icache_tags.(line) <- tag;
      st.misses <- Int64.add st.misses 1L;
      st.cycles <- st.cycles +. st.model.icache_miss_penalty
    end
  in
  check va;
  let last = va + len - 1 in
  if last / lb <> va / lb then check last

let exec_insn st (i : Insn.t) len =
  let next = st.eip + len in
  st.eip <- next;
  match i with
  | Insn.Mov_rm_r (dst, src) -> operand_write st dst (reg_get st src)
  | Insn.Mov_r_rm (dst, src) -> reg_set st dst (operand_read st src)
  | Insn.Mov_r_imm (dst, imm) -> reg_set st dst imm
  | Insn.Mov_rm_imm (dst, imm) -> operand_write st dst imm
  | Insn.Alu_rm_r (op, dst, src) -> (
      let a = operand_read st dst and b = reg_get st src in
      match alu_exec st op a b with
      | Some r -> operand_write st dst r
      | None -> ())
  | Insn.Alu_r_rm (op, dst, src) -> (
      let a = reg_get st dst and b = operand_read st src in
      match alu_exec st op a b with
      | Some r -> reg_set st dst r
      | None -> ())
  | Insn.Alu_rm_imm (op, dst, imm) -> (
      let a = operand_read st dst in
      match alu_exec st op a imm with
      | Some r -> operand_write st dst r
      | None -> ())
  | Insn.Test_rm_r (dst, src) ->
      set_logic_flags st (Int32.logand (operand_read st dst) (reg_get st src))
  | Insn.Lea (dst, m) -> reg_set st dst (effective_addr st m)
  | Insn.Inc_r r ->
      (* INC preserves CF. *)
      let cf = st.cf in
      reg_set st r (set_add_flags st (reg_get st r) 1l);
      st.cf <- cf
  | Insn.Dec_r r ->
      let cf = st.cf in
      reg_set st r (set_sub_flags st (reg_get st r) 1l);
      st.cf <- cf
  | Insn.Neg o ->
      let v = operand_read st o in
      let r = set_sub_flags st 0l v in
      st.cf <- not (Int32.equal v 0l);
      operand_write st o r
  | Insn.Not o -> operand_write st o (Int32.lognot (operand_read st o))
  | Insn.Imul_r_rm (dst, src) ->
      let r = Int32.mul (reg_get st dst) (operand_read st src) in
      reg_set st dst r
  | Insn.Mul o ->
      let a = Int64.logand (Int64.of_int32 (reg_get st Reg.EAX)) 0xFFFFFFFFL in
      let b = Int64.logand (Int64.of_int32 (operand_read st o)) 0xFFFFFFFFL in
      let p = Int64.mul a b in
      reg_set st Reg.EAX (Int64.to_int32 p);
      reg_set st Reg.EDX (Int64.to_int32 (Int64.shift_right_logical p 32))
  | Insn.Idiv o ->
      let divisor = Int64.of_int32 (operand_read st o) in
      if Int64.equal divisor 0L then fault "division by zero";
      let dividend =
        Int64.logor
          (Int64.shift_left (Int64.of_int32 (reg_get st Reg.EDX)) 32)
          (Int64.logand (Int64.of_int32 (reg_get st Reg.EAX)) 0xFFFFFFFFL)
      in
      let q = Int64.div dividend divisor in
      if Int64.compare q 0x7FFFFFFFL > 0 || Int64.compare q (-0x80000000L) < 0
      then fault "division overflow";
      reg_set st Reg.EAX (Int64.to_int32 q);
      reg_set st Reg.EDX (Int64.to_int32 (Int64.rem dividend divisor))
  | Insn.Cdq ->
      reg_set st Reg.EDX
        (if Int32.compare (reg_get st Reg.EAX) 0l < 0 then -1l else 0l)
  | Insn.Shift_imm (sh, o, n) ->
      let v = operand_read st o in
      let n = n land 31 in
      let r =
        match sh with
        | Insn.Shl -> Int32.shift_left v n
        | Insn.Shr -> Int32.shift_right_logical v n
        | Insn.Sar -> Int32.shift_right v n
      in
      if n <> 0 then set_logic_flags st r;
      operand_write st o r
  | Insn.Shift_cl (sh, o) ->
      let v = operand_read st o in
      let n = Int32.to_int (reg_get st Reg.ECX) land 31 in
      let r =
        match sh with
        | Insn.Shl -> Int32.shift_left v n
        | Insn.Shr -> Int32.shift_right_logical v n
        | Insn.Sar -> Int32.shift_right v n
      in
      if n <> 0 then set_logic_flags st r;
      operand_write st o r
  | Insn.Push_r r -> push st (reg_get st r)
  | Insn.Push_imm imm -> push st imm
  | Insn.Pop_r r -> reg_set st r (pop st)
  | Insn.Ret -> jump_to_va st (pop st)
  | Insn.Ret_imm n ->
      let va = pop st in
      reg_set st Reg.ESP (Int32.add (reg_get st Reg.ESP) (Int32.of_int n));
      jump_to_va st va
  | Insn.Call_rel d ->
      push st (Int32.add Link.text_base (Int32.of_int next));
      let target = next + Int32.to_int d in
      if target < 0 || target >= String.length st.text then
        fault "call outside text";
      st.eip <- target
  | Insn.Call_rm o ->
      push st (Int32.add Link.text_base (Int32.of_int next));
      jump_to_va st (operand_read st o)
  | Insn.Jmp_rel d ->
      let target = next + Int32.to_int d in
      if target < 0 || target >= String.length st.text then
        fault "jump outside text";
      st.eip <- target
  | Insn.Jmp_rel8 d ->
      let target = next + d in
      if target < 0 || target >= String.length st.text then
        fault "jump outside text";
      st.eip <- target
  | Insn.Jmp_rm o -> jump_to_va st (operand_read st o)
  | Insn.Jcc (c, d) ->
      if cond_holds st c then begin
        let target = next + Int32.to_int d in
        if target < 0 || target >= String.length st.text then
          fault "jump outside text";
        st.eip <- target
      end
  | Insn.Jcc8 (c, d) ->
      if cond_holds st c then begin
        let target = next + d in
        if target < 0 || target >= String.length st.text then
          fault "jump outside text";
        st.eip <- target
      end
  | Insn.Setcc (c, r8) ->
      let r32 = Reg.of_r8 r8 in
      let old = reg_get st r32 in
      let bit = if cond_holds st c then 1l else 0l in
      reg_set st r32 (Int32.logor (Int32.logand old 0xFFFFFF00l) bit)
  | Insn.Movzx_r_r8 (dst, src8) ->
      let v = Int32.logand (reg_get st (Reg.of_r8 src8)) 0xFFl in
      reg_set st dst v
  | Insn.Xchg_rm_r (o, r) ->
      let a = operand_read st o and b = reg_get st r in
      operand_write st o b;
      reg_set st r a
  | Insn.Int 0x80 -> syscall st
  | Insn.Int n -> fault "unhandled interrupt 0x%x" n
  | Insn.Nop -> ()
  | Insn.Hlt ->
      st.running <- false;
      st.status <- reg_get st Reg.EAX

let step st =
  let off = st.eip in
  let c0 = st.cycles in
  let i, len = fetch st in
  icache_access st len;
  st.instructions <- Int64.add st.instructions 1L;
  if st.instructions > st.fuel then fault "fuel exhausted";
  let is_nop = Nops.is_candidate i in
  if is_nop then st.nops <- Int64.add st.nops 1L;
  st.cycles <- st.cycles +. Timing.insn_cost st.model i;
  (match st.prof with
  | None -> ()
  | Some p ->
      (* Attribute the retired instruction, candidate-NOP status and the
         cycles charged during this step (base cost plus any icache miss
         penalty) to the fetched offset. *)
      p.insn_counts.(off) <- Int64.add p.insn_counts.(off) 1L;
      if is_nop then p.nop_counts.(off) <- Int64.add p.nop_counts.(off) 1L;
      p.cycle_counts.(off) <- p.cycle_counts.(off) +. (st.cycles -. c0));
  (match st.samp with
  | None -> ()
  | Some s ->
      (* Every [s_period]-th retired cycle records the PC of the
         instruction retiring when the threshold is crossed — the
         simulator's model of a perf-style cycle-sampling interrupt.
         The number of samples due is computed before the sampling cost
         itself is charged, so a period smaller than the per-sample cost
         cannot re-trigger within the same step. *)
      if st.cycles >= s.s_next then begin
        let due =
          1 + int_of_float ((st.cycles -. s.s_next) /. s.s_period)
        in
        s.s_counts.(off) <- Int64.add s.s_counts.(off) (Int64.of_int due);
        s.s_taken <- Int64.add s.s_taken (Int64.of_int due);
        s.s_next <- s.s_next +. (float_of_int due *. s.s_period);
        let cost = float_of_int due *. st.model.sample_cost in
        s.s_overhead <- s.s_overhead +. cost;
        st.cycles <- st.cycles +. cost
      end);
  exec_insn st i len

let make_state ?(model = Timing.default) ?(profile = false) ?sample_period
    ~fuel (image : Link.image) =
  let prof =
    if not profile then None
    else
      let n = max 1 (String.length image.text) in
      Some
        {
          insn_counts = Array.make n 0L;
          nop_counts = Array.make n 0L;
          cycle_counts = Array.make n 0.0;
        }
  in
  let samp =
    match sample_period with
    | None -> None
    | Some p when p <= 0 ->
        invalid_arg "Sim: sample_period must be positive"
    | Some p ->
        Some
          {
            s_period = float_of_int p;
            s_counts = Array.make (max 1 (String.length image.text)) 0L;
            s_taken = 0L;
            s_next = float_of_int p;
            s_overhead = 0.0;
          }
  in
  {
    regs = Array.make 8 0l;
    zf = false;
    sf = false;
    of_ = false;
    cf = false;
    pf = false;
    mem = Array.make (stack_top_i / 4) 0l;
    text = image.text;
    eip = image.entry;
    (* The decode memo belongs to the (shared, LRU'd) block cache:
       repeated runs of one image — population grids, the PGO loop —
       decode each offset once, whichever engine executes. *)
    decoded = Bsim.decoded (Bsim.cache_for image model);
    out = Buffer.create 256;
    model;
    icache_tags = Array.make model.icache_lines (-1);
    instructions = 0L;
    nops = 0L;
    misses = 0L;
    cycles = 0.0;
    running = true;
    status = 0l;
    fuel;
    prof;
    samp;
  }

let init_data st (image : Link.image) =
  List.iter
    (fun (addr, words) ->
      let base = Int32.to_int addr lsr 2 in
      Array.iteri (fun i v -> st.mem.(base + i) <- v) words)
    image.data_init

let finish ~record st =
  if record then begin
    Metrics.incr (Metrics.counter "sim.runs");
    Metrics.incr ~by:st.instructions (Metrics.counter "sim.instructions");
    Metrics.incr ~by:st.nops (Metrics.counter "sim.nops_retired");
    Metrics.incr ~by:st.misses (Metrics.counter "sim.icache_misses")
  end;
  let sample_profile =
    match st.samp with
    | None -> None
    | Some s ->
        if record then begin
          Metrics.incr (Metrics.counter "sim.sampled_runs");
          Metrics.incr ~by:s.s_taken (Metrics.counter "sim.samples");
          let base = st.cycles -. s.s_overhead in
          if base > 0.0 then
            Metrics.observe
              (Metrics.histogram "sim.sample_overhead_pct")
              (100.0 *. s.s_overhead /. base)
        end;
        Some
          {
            period = s.s_period;
            sample_counts = s.s_counts;
            samples_taken = s.s_taken;
            sample_overhead_cycles = s.s_overhead;
          }
  in
  {
    status = st.status;
    output = Buffer.contents st.out;
    instructions = st.instructions;
    nops_retired = st.nops;
    cycles = st.cycles;
    icache_misses = st.misses;
    exec_profile = st.prof;
    sample_profile;
  }

let interp_exec st : outcome =
  match
    while st.running do
      step st
    done
  with
  | () -> Finished (finish ~record:true st)
  | exception Fault msg ->
      Faulted { fault_msg = msg; partial = finish ~record:false st }

let default_fuel = Int64.shift_left 1L 40

let run_outcome ?model ?(fuel = default_fuel) ?profile ?sample_period
    ?(engine = Block) (image : Link.image) ~args =
  if List.length args > Libc.argv_words then
    invalid_arg "Sim.run: too many arguments";
  if List.length args <> image.main_arity then
    invalid_arg
      (Printf.sprintf "Sim.run: main expects %d args, got %d" image.main_arity
         (List.length args));
  (match sample_period with
  | Some p when p <= 0 -> invalid_arg "Sim: sample_period must be positive"
  | _ -> ());
  match engine with
  | Block -> Bsim.run_outcome ?model ~fuel ?profile ?sample_period image ~args
  | Interp ->
      let st = make_state ?model ?profile ?sample_period ~fuel image in
      init_data st image;
      (* Write the arguments where the entry stub looks for them. *)
      let argv = Int32.to_int (Link.argv_address image) lsr 2 in
      List.iteri (fun i v -> st.mem.(argv + i) <- v) args;
      reg_set st Reg.ESP (Int32.sub Link.stack_top 16l);
      interp_exec st

let run ?model ?fuel ?profile ?sample_period ?engine (image : Link.image)
    ~args =
  match run_outcome ?model ?fuel ?profile ?sample_period ?engine image ~args
  with
  | Finished r -> r
  | Faulted { fault_msg; _ } -> raise (Fault fault_msg)

let run_at_outcome ?model ?(fuel = default_fuel) ?profile ?stack_image
    ?(engine = Block) (image : Link.image) ~start_offset =
  if start_offset < 0 || start_offset >= String.length image.text then
    invalid_arg "Sim.run_at: start offset outside text";
  match engine with
  | Block ->
      Bsim.run_at_outcome ?model ~fuel ?profile ?stack_image image
        ~start_offset
  | Interp ->
      let stack_image = Option.value stack_image ~default:[] in
      let st = make_state ?model ?profile ~fuel image in
      init_data st image;
      let esp =
        Int32.sub Link.stack_top
          (Int32.of_int (16 + (4 * List.length stack_image)))
      in
      reg_set st Reg.ESP esp;
      List.iteri
        (fun i v -> st.mem.((Int32.to_int esp lsr 2) + i) <- v)
        stack_image;
      st.eip <- start_offset;
      interp_exec st

let run_at ?model ?fuel ?profile ?stack_image ?engine (image : Link.image)
    ~start_offset =
  match
    run_at_outcome ?model ?fuel ?profile ?stack_image ?engine image
      ~start_offset
  with
  | Finished r -> r
  | Faulted { fault_msg; _ } -> raise (Fault fault_msg)
