type model = {
  alu_cost : float;
  load_cost : float;
  store_cost : float;
  mul_cost : float;
  div_cost : float;
  branch_cost : float;
  call_cost : float;
  syscall_cost : float;
  nop_cost : float;
  xchg_nop_cost : float;
  icache_lines : int;
  icache_line_bytes : int;
  icache_miss_penalty : float;
  sample_cost : float;
}

let default =
  {
    alu_cost = 1.0;
    load_cost = 2.0;
    store_cost = 2.0;
    mul_cost = 3.0;
    div_cost = 20.0;
    branch_cost = 1.5;
    call_cost = 3.0;
    syscall_cost = 50.0;
    (* ~3 NOPs retire per cycle on the Core microarchitecture. *)
    nop_cost = 0.34;
    (* XCHG locks the bus: tens of cycles (Intel SDM, the paper's [16]). *)
    xchg_nop_cost = 18.0;
    icache_lines = 512;
    (* 512 x 64 B = 32 KiB *)
    icache_line_bytes = 64;
    icache_miss_penalty = 12.0;
    (* Taking one PC sample costs roughly a timer interrupt plus a
       counter store — charged to the sampled run only, so production
       profiling has a modeled, gateable overhead. *)
    sample_cost = 10.0;
  }

let has_mem_operand (op : Insn.operand) =
  match op with Insn.Mem _ -> true | Insn.Reg _ -> false

let insn_cost m (i : Insn.t) =
  if Nops.is_candidate i then
    match i with Insn.Xchg_rm_r _ -> m.xchg_nop_cost | _ -> m.nop_cost
  else
    match i with
    | Insn.Nop -> m.nop_cost
    | Insn.Mov_r_rm (_, src) -> if has_mem_operand src then m.load_cost else m.alu_cost
    | Insn.Mov_rm_r (dst, _) | Insn.Mov_rm_imm (dst, _) ->
        if has_mem_operand dst then m.store_cost else m.alu_cost
    | Insn.Mov_r_imm _ | Insn.Lea _ -> m.alu_cost
    | Insn.Alu_rm_r (_, dst, _) | Insn.Alu_rm_imm (_, dst, _) ->
        if has_mem_operand dst then m.load_cost +. m.store_cost else m.alu_cost
    | Insn.Alu_r_rm (_, _, src) ->
        if has_mem_operand src then m.load_cost else m.alu_cost
    | Insn.Test_rm_r (dst, _) ->
        if has_mem_operand dst then m.load_cost else m.alu_cost
    | Insn.Inc_r _ | Insn.Dec_r _ | Insn.Cdq | Insn.Setcc _ | Insn.Movzx_r_r8 _
      ->
        m.alu_cost
    | Insn.Neg o | Insn.Not o ->
        if has_mem_operand o then m.load_cost +. m.store_cost else m.alu_cost
    | Insn.Imul_r_rm (_, src) ->
        m.mul_cost +. if has_mem_operand src then m.load_cost else 0.0
    | Insn.Mul o | Insn.Idiv o ->
        m.div_cost +. if has_mem_operand o then m.load_cost else 0.0
    | Insn.Shift_imm (_, o, _) | Insn.Shift_cl (_, o) ->
        if has_mem_operand o then m.load_cost +. m.store_cost else m.alu_cost
    | Insn.Push_r _ | Insn.Push_imm _ | Insn.Pop_r _ -> m.alu_cost +. 0.5
    | Insn.Ret | Insn.Ret_imm _ -> m.call_cost
    | Insn.Call_rel _ | Insn.Call_rm _ -> m.call_cost
    | Insn.Jmp_rel _ | Insn.Jmp_rel8 _ | Insn.Jmp_rm _ -> m.branch_cost
    | Insn.Jcc _ | Insn.Jcc8 _ -> m.branch_cost
    | Insn.Xchg_rm_r _ -> m.xchg_nop_cost
    | Insn.Int _ -> m.syscall_cost
    | Insn.Hlt -> m.alu_cost
