(** The block-cached execution engine (the fast path behind
    {!Sim.run}'s [Block] engine).

    [.text] is pre-decoded once into a cache of per-offset entries — a
    compiled closure, the flattened {!Timing} cost, the NOP-candidacy
    bit and precomputed icache line/tag pairs — seeded from the image's
    block-offset tables and swept over every remaining offset (so
    {!Sim.run_at} gadget entries are covered).  Caches are keyed on
    (text digest, timing model) and kept in a small process-wide LRU, so
    population grids and the PGO loop decode each image once.

    Every observable — cycles (bit for bit: float additions happen in
    the interpreter's exact order), fault messages and the retired
    counts at the faulting instruction, [exec_profile] and
    [sample_profile] arrays — is byte-identical to the reference
    interpreter.  Use {!Sim.run} rather than this module directly; it
    owns argument validation and engine dispatch. *)

type cache

val cache_for : Link.image -> Timing.model -> cache
(** The (possibly shared) block cache for an image under a timing
    model.  Cheap on a cache hit: a text digest plus a table lookup. *)

val decoded : cache -> (Insn.t * int) option array
(** The cache's decode memo — one [(insn, length)] per decodable text
    offset.  The interpreter borrows this array instead of rebuilding a
    per-run memo; physical equality across calls witnesses the
    decode-once guarantee. *)

val run_outcome :
  ?model:Timing.model ->
  fuel:int64 ->
  ?profile:bool ->
  ?sample_period:int ->
  Link.image ->
  args:int32 list ->
  Simcore.outcome
(** Execute from the entry stub.  Arguments must already be validated
    ({!Sim.run} does this). *)

val run_at_outcome :
  ?model:Timing.model ->
  fuel:int64 ->
  ?profile:bool ->
  ?stack_image:int32 list ->
  Link.image ->
  start_offset:int ->
  Simcore.outcome
(** Execute from an arbitrary text offset with an optional stack image
    (the ROP entry point; see {!Sim.run_at}). *)
