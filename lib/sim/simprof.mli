(** Runtime profiles: simulator execution counts mapped back to symbols.

    {!Sim.exec_profile} is indexed by raw text offset; this module folds
    it through the image's layout symbols ({!Link.image.symbols} and
    {!Link.image.block_offsets}) into per-function and per-basic-block
    attributions of retired instructions, retired candidate NOPs and
    modeled cycles — the runtime-side mirror of the §3.1 training
    profiles, and the measurement the paper's "overhead lands in cold
    code" claim (§3.2, Fig. 4) needs.

    The flat table ({!pp_flat}) is pprof-style: functions sorted by
    retired instructions, with flat and cumulative percentages and a
    per-function NOP density.  {!to_json} is the machine-readable form
    [minicc run --sim-profile=json] prints and the bench telemetry
    experiment consumes. *)

type block_row = {
  label : Ir.label;  (** [-1] for bytes before the first block label *)
  b_insns : int64;
  b_nops : int64;
  b_cycles : float;
}

type func_row = {
  fname : string;
  offset : int;  (** function start, text offset *)
  in_runtime : bool;  (** part of the fixed (undiversified) runtime *)
  insns : int64;
  nops : int64;
  cycles : float;
  blocks : block_row list;
      (** sorted by ([b_insns] descending, [label] ascending) — a total
          order, so dumps are byte-stable across runs and [-j] levels *)
}

type t = {
  rows : func_row list;
      (** sorted by ([insns] descending, [offset] ascending) — offsets
          are unique, so the order is total and dumps diff cleanly *)
  total_insns : int64;
  total_nops : int64;
  total_cycles : float;
}

val of_exec : Link.image -> Sim.exec_profile -> t
(** Attribute every counted offset to the function (and block) whose
    range contains it.  The row totals sum exactly to the whole-run
    counters of the {!Sim.result} the profile came from. *)

val of_result : Link.image -> Sim.result -> t
(** [of_exec] on the result's profile.  Raises [Invalid_argument] if the
    run was not started with [~profile:true]. *)

val find : t -> string -> func_row option
(** Row of a function, if it executed at all. *)

val locator : Link.image -> int -> string * Ir.label * bool
(** [locator image] precomputes the image's layout tables and returns a
    total function from text offset to (function, block label,
    in-runtime).  Offsets before the first block label of their function
    map to label [-1]; offsets outside any symbol map to ["?"].  This is
    the back-mapping primitive {!Sprof} uses to attribute PC samples
    taken on a {e diversified} binary: the image's [block_offsets]
    describe the diversified layout, so the mapping is NOP-aware by
    construction. *)

val pp_flat : ?top:int -> Format.formatter -> t -> unit
(** The pprof-style flat table (flat and cumulative percentages per
    function).  [top] truncates to the N hottest functions. *)

val dump : ?top:int -> t -> Jsonw.t
(** Rows carry [flat_pct]/[sum_pct] so truncated dumps remain
    self-describing; [total.functions] records the untruncated count. *)

val to_json : ?top:int -> t -> string
