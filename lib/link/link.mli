(** The linker: relocatable objects to an executable image.

    Layout rule: the fixed runtime objects — the entry stub and the
    library functions — come first, at fixed offsets (undiversified,
    like the real crt0/libc objects the paper blames for its
    surviving-gadget floor), then the user objects in input order.
    After layout, the two relocation kinds are patched: [Rel32] call
    displacements and [Abs32] global data addresses.

    {!link_objects} is the real linker; {!link} is the symbolic-assembly
    convenience that wraps each function into an object first; and
    {!link_whole} is the seed whole-program implementation, kept as the
    differential oracle the equivalence suite pins the object path
    against, byte for byte.

    The data address space is separate from text (Harvard-style in the
    simulator, matching W⊕X): globals start at {!data_base}, the stack
    grows down from {!stack_top}. *)

type image = {
  text : string;  (** the final .text bytes *)
  text_base : int32;  (** virtual address of the first text byte *)
  symbols : (string * int) list;  (** function -> text offset *)
  entry : int;  (** text offset of the entry stub *)
  user_start : int;  (** text offset where (diversifiable) user code begins *)
  block_offsets : (string * (Ir.label * int) list) list;
      (** function -> (block label, absolute text offset) — the layout
          map {!Simprof} uses to attribute executed offsets back to basic
          blocks (and thus to the §3.1 training profile's keys) *)
  globals : (string * int32) list;  (** global -> absolute data address *)
  data_init : (int32 * int32 array) list;  (** address -> initial words *)
  main_arity : int;
}

val text_base : int32
(** 0x08048000, the classic Linux fixed load address the paper cites. *)

val data_base : int32
val stack_top : int32
val argv_address : image -> int32
(** Where the simulator must write the program arguments. *)

val runtime_objects : main_arity:int -> Objfile.func_obj list
(** The fixed runtime — crt0 built for [main_arity], then the library
    functions in link order — as relocatable objects.  Memoized per
    arity: every variant of every program composes the {e same} runtime
    objects. *)

val link_objects :
  ?expect_main_arity:int ->
  ?runtime:Objfile.func_obj list ->
  objects:Objfile.func_obj list ->
  globals:Ir.global list ->
  unit ->
  image
(** Link relocatable objects into an image.  [objects] must define
    ["main"]; its arity is read from the object's metadata and drives
    the crt0 stub ([runtime] defaults to {!runtime_objects} for that
    arity).  With [expect_main_arity], a differing object arity is a
    linker error.  Raises [Failure] — always naming the offending
    symbol — on a missing [main], a duplicate symbol, an unresolved
    function or global reference, or a [main]-arity mismatch. *)

val link :
  funcs:Asm.func list -> globals:Ir.global list -> main_arity:int -> image
(** Wrap each symbolic function into an object ({!Objfile.of_asm}) and
    {!link_objects} them.  [funcs] must contain a function named
    ["main"] with [main_arity] parameters.  Raises [Failure] on
    unresolved or duplicate symbols. *)

val link_whole :
  funcs:Asm.func list -> globals:Ir.global list -> main_arity:int -> image
(** The seed whole-program linker, kept verbatim as the reference the
    object pipeline is differentially tested against.  Produces images
    byte-identical to {!link}. *)

val symbol_offset : image -> string -> int
(** Text offset of a function.  Raises [Failure] if absent. *)

val user_text : image -> string
(** The slice of [.text] holding user code only — what the diversifying
    transformations actually changed.  (Survivor runs on the whole
    section; this accessor supports libc-vs-user breakdowns.) *)

val format_version : int
(** Image-file format version (see {!Frame}); bumped whenever the
    marshalled [image] layout changes. *)

val to_bytes : image -> string
(** The image in its framed on-disk representation: magic,
    format-version field, marshalled payload and a payload-digest
    trailer ({!Frame.to_string}).  What {!save} writes, and what the
    serve protocol ships — a client can dump the bytes to a file and
    {!load} them. *)

val of_bytes : src:string -> string -> image
(** Inverse of {!to_bytes}; [src] names the origin (a path, a network
    peer) in errors.  Raises [Failure] on bad magic, a format-version
    mismatch, truncation or corruption. *)

val save : image -> string -> unit
(** Write {!to_bytes} to a file. *)

val load : string -> image
(** Inverse of {!save}.  Raises [Failure] on bad magic, a format-version
    mismatch, or a truncated or corrupted file. *)
