(** The linker: symbolic assembly functions to an executable image.

    Layout: the entry stub and the library functions first, at fixed
    offsets (undiversified, like the real crt0/libc objects the paper
    blames for its surviving-gadget floor), then the user's functions in
    order.  After layout, the two relocation kinds are patched: [Rel32]
    call displacements and [Abs32] global data addresses.

    The data address space is separate from text (Harvard-style in the
    simulator, matching W⊕X): globals start at {!data_base}, the stack
    grows down from {!stack_top}. *)

type image = {
  text : string;  (** the final .text bytes *)
  text_base : int32;  (** virtual address of the first text byte *)
  symbols : (string * int) list;  (** function -> text offset *)
  entry : int;  (** text offset of the entry stub *)
  user_start : int;  (** text offset where (diversifiable) user code begins *)
  block_offsets : (string * (Ir.label * int) list) list;
      (** function -> (block label, absolute text offset) — the layout
          map {!Simprof} uses to attribute executed offsets back to basic
          blocks (and thus to the §3.1 training profile's keys) *)
  globals : (string * int32) list;  (** global -> absolute data address *)
  data_init : (int32 * int32 array) list;  (** address -> initial words *)
  main_arity : int;
}

val text_base : int32
(** 0x08048000, the classic Linux fixed load address the paper cites. *)

val data_base : int32
val stack_top : int32
val argv_address : image -> int32
(** Where the simulator must write the program arguments. *)

val link : funcs:Asm.func list -> globals:Ir.global list -> main_arity:int -> image
(** Link user functions (already diversified or not) against the runtime.
    [funcs] must contain a function named ["main"] with [main_arity]
    parameters.  Raises [Failure] on unresolved or duplicate symbols. *)

val symbol_offset : image -> string -> int
(** Text offset of a function.  Raises [Failure] if absent. *)

val user_text : image -> string
(** The slice of [.text] holding user code only — what the diversifying
    transformations actually changed.  (Survivor runs on the whole
    section; this accessor supports libc-vs-user breakdowns.) *)

val save : image -> string -> unit
(** Write an image to a file (the CLI's binary format: a magic header
    followed by a marshalled record). *)

val load : string -> image
(** Inverse of {!save}.  Raises [Failure] on bad magic or a truncated
    file. *)
