type image = {
  text : string;
  text_base : int32;
  symbols : (string * int) list;
  entry : int;
  user_start : int;
  block_offsets : (string * (Ir.label * int) list) list;
  globals : (string * int32) list;
  data_init : (int32 * int32 array) list;
  main_arity : int;
}

let text_base = 0x08048000l
let data_base = 0x1000l
let stack_top = 0x400000l (* 4 MiB *)

let argv_address image =
  match List.assoc_opt Libc.argv_symbol image.globals with
  | Some a -> a
  | None -> failwith "Link.argv_address: __argv missing"

let patch32 text pos (v : int32) =
  Bytes.set text pos (Char.chr (Int32.to_int v land 0xFF));
  Bytes.set text (pos + 1)
    (Char.chr (Int32.to_int (Int32.shift_right_logical v 8) land 0xFF));
  Bytes.set text (pos + 2)
    (Char.chr (Int32.to_int (Int32.shift_right_logical v 16) land 0xFF));
  Bytes.set text (pos + 3)
    (Char.chr (Int32.to_int (Int32.shift_right_logical v 24) land 0xFF))

(* Data-space layout, shared by both linkers: __argv first, then the
   program's globals in declaration order. *)
let layout_globals globals =
  let globals_with_argv =
    { Ir.gname = Libc.argv_symbol; size_words = Libc.argv_words; init = None }
    :: globals
  in
  let global_addrs, data_init =
    let next = ref data_base in
    List.fold_left
      (fun (addrs, inits) (g : Ir.global) ->
        let addr = !next in
        next := Int32.add !next (Int32.of_int (4 * g.size_words));
        let inits =
          match g.init with Some a -> (addr, a) :: inits | None -> inits
        in
        ((g.gname, addr) :: addrs, inits))
      ([], []) globals_with_argv
  in
  (List.rev global_addrs, data_init)

(* ---- the object linker ---- *)

(* The fixed runtime — crt0 for [main_arity] plus the library — as
   relocatable objects, memoized per arity: every link of every variant
   composes the same undiversified runtime objects, exactly as the
   paper's binaries reuse the stock crt0/libc objects. *)
let runtime_table : (int, Objfile.func_obj list) Hashtbl.t = Hashtbl.create 4

let runtime_objects ~main_arity =
  match Hashtbl.find_opt runtime_table main_arity with
  | Some objs -> objs
  | None ->
      let objs =
        List.map
          (fun (f : Asm.func) ->
            Objfile.of_asm
              ~arity:(if f.Asm.name = Libc.start_symbol then main_arity else 0)
              f)
          (Libc.start ~main:"main" ~main_arity :: Libc.funcs)
      in
      Hashtbl.replace runtime_table main_arity objs;
      objs

let link_objects ?expect_main_arity ?runtime ~objects ~globals () =
  let main_arity =
    match List.find_opt (fun o -> o.Objfile.sym = "main") objects with
    | None -> failwith "Link.link: no main function"
    | Some o -> o.Objfile.meta.Objfile.arity
  in
  (match expect_main_arity with
  | Some e when e <> main_arity ->
      failwith
        (Printf.sprintf
           "Link.link: main arity mismatch: object main takes %d argument(s), \
            %d expected"
           main_arity e)
  | _ -> ());
  let runtime =
    match runtime with Some r -> r | None -> runtime_objects ~main_arity
  in
  (* Layout rule: fixed runtime objects first, at their fixed offsets,
     then the user objects in input order. *)
  let all = runtime @ objects in
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (o : Objfile.func_obj) ->
      if Hashtbl.mem seen o.Objfile.sym then
        failwith ("Link.link: duplicate symbol " ^ o.Objfile.sym);
      Hashtbl.replace seen o.Objfile.sym ())
    all;
  let global_addrs, data_init = layout_globals globals in
  let offsets = Hashtbl.create 16 in
  let total =
    List.fold_left
      (fun off (o : Objfile.func_obj) ->
        Hashtbl.replace offsets o.Objfile.sym off;
        off + Objfile.code_size o)
      0 all
  in
  let user_start =
    List.fold_left (fun off o -> off + Objfile.code_size o) 0 runtime
  in
  let text = Bytes.create total in
  List.iter
    (fun (o : Objfile.func_obj) ->
      let base = Hashtbl.find offsets o.Objfile.sym in
      Bytes.blit_string o.Objfile.code 0 text base (Objfile.code_size o);
      List.iter
        (fun reloc ->
          match reloc with
          | Asm.Rel32 (site, sym) -> (
              match Hashtbl.find_opt offsets sym with
              | Some target ->
                  (* rel32 is relative to the end of the 4-byte field. *)
                  patch32 text (base + site)
                    (Int32.of_int (target - (base + site + 4)))
              | None ->
                  failwith
                    (Printf.sprintf "Link.link: %s: undefined function %s"
                       o.Objfile.sym sym))
          | Asm.Abs32 (site, sym) -> (
              match List.assoc_opt sym global_addrs with
              | Some addr -> patch32 text (base + site) addr
              | None ->
                  failwith
                    (Printf.sprintf "Link.link: %s: undefined global %s"
                       o.Objfile.sym sym)))
        o.Objfile.relocs)
    all;
  let entry =
    match Hashtbl.find_opt offsets Libc.start_symbol with
    | Some e -> e
    | None -> failwith "Link.link: entry stub missing from runtime objects"
  in
  let symbols =
    List.map
      (fun (o : Objfile.func_obj) ->
        (o.Objfile.sym, Hashtbl.find offsets o.Objfile.sym))
      all
  in
  let block_offsets =
    (* Absolute text offset of every basic-block label, per function —
       the layout map that lets runtime profiles attribute executed
       offsets back to blocks. *)
    List.map
      (fun (o : Objfile.func_obj) ->
        let base = Hashtbl.find offsets o.Objfile.sym in
        (o.Objfile.sym, List.map (fun (l, p) -> (l, base + p)) o.Objfile.labels))
      all
  in
  {
    text = Bytes.to_string text;
    text_base;
    symbols;
    entry;
    user_start;
    block_offsets;
    globals = global_addrs;
    data_init;
    main_arity;
  }

let link ~funcs ~globals ~main_arity =
  if not (List.exists (fun (f : Asm.func) -> f.name = "main") funcs) then
    failwith "Link.link: no main function";
  let objects =
    List.map
      (fun (f : Asm.func) ->
        Objfile.of_asm ~arity:(if f.Asm.name = "main" then main_arity else 0) f)
      funcs
  in
  link_objects ~expect_main_arity:main_arity ~objects ~globals ()

(* ---- the seed whole-program linker, kept verbatim as the differential
   oracle: the equivalence suite pins the object linker byte-identical
   to this one across every workload × config × seed. ---- *)

let link_whole ~funcs ~globals ~main_arity =
  if not (List.exists (fun (f : Asm.func) -> f.name = "main") funcs) then
    failwith "Link.link: no main function";
  let all_funcs = (Libc.start ~main:"main" ~main_arity :: Libc.funcs) @ funcs in
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (f : Asm.func) ->
      if Hashtbl.mem seen f.name then
        failwith ("Link.link: duplicate symbol " ^ f.name);
      Hashtbl.replace seen f.name ())
    all_funcs;
  let global_addrs, data_init = layout_globals globals in
  (* Assemble every function and lay text out sequentially. *)
  let assembled = List.map (fun f -> (f, Asm.assemble f)) all_funcs in
  let offsets = Hashtbl.create 16 in
  let total =
    List.fold_left
      (fun off ((f : Asm.func), (a : Asm.assembled)) ->
        Hashtbl.replace offsets f.name off;
        off + String.length a.bytes)
      0 assembled
  in
  let text = Bytes.create total in
  List.iter
    (fun ((f : Asm.func), (a : Asm.assembled)) ->
      let base = Hashtbl.find offsets f.name in
      Bytes.blit_string a.bytes 0 text base (String.length a.bytes);
      List.iter
        (fun reloc ->
          match reloc with
          | Asm.Rel32 (site, sym) -> (
              match Hashtbl.find_opt offsets sym with
              | Some target ->
                  patch32 text (base + site)
                    (Int32.of_int (target - (base + site + 4)))
              | None ->
                  failwith
                    (Printf.sprintf "Link.link: %s: undefined function %s"
                       f.name sym))
          | Asm.Abs32 (site, sym) -> (
              match List.assoc_opt sym global_addrs with
              | Some addr -> patch32 text (base + site) addr
              | None ->
                  failwith
                    (Printf.sprintf "Link.link: %s: undefined global %s"
                       f.name sym)))
        a.relocs)
    assembled;
  let symbols =
    List.map
      (fun ((f : Asm.func), _) -> (f.name, Hashtbl.find offsets f.name))
      assembled
  in
  let block_offsets =
    List.map
      (fun ((f : Asm.func), (a : Asm.assembled)) ->
        let base = Hashtbl.find offsets f.name in
        (f.name, List.map (fun (l, o) -> (l, base + o)) a.label_offsets))
      assembled
  in
  let user_start =
    match funcs with
    | [] -> total
    | f :: _ -> Hashtbl.find offsets f.Asm.name
  in
  {
    text = Bytes.to_string text;
    text_base;
    symbols;
    entry = Hashtbl.find offsets Libc.start_symbol;
    user_start;
    block_offsets;
    globals = global_addrs;
    data_init;
    main_arity;
  }

let symbol_offset image name =
  match List.assoc_opt name image.symbols with
  | Some o -> o
  | None -> failwith ("Link.symbol_offset: unknown symbol " ^ name)

let user_text image =
  String.sub image.text image.user_start
    (String.length image.text - image.user_start)

(* Image-file framing: a fixed magic plus an explicit version field and
   a payload digest trailer (see {!Frame}).  Version 3 succeeds the two
   bare-magic generations (PSDIMG01/02); their loads now fail with "not
   a PSD image file" rather than feeding stale bytes to Marshal. *)
let magic = "PSDIMAGE"
let format_version = 3

let to_bytes image =
  Frame.to_string ~magic ~version:format_version
    ~payload:(Marshal.to_string image [])

let of_bytes ~src framed =
  let payload =
    Frame.of_string ~magic ~version:format_version ~what:"PSD image" ~src
      framed
  in
  match (Marshal.from_string payload 0 : image) with
  | image -> image
  | exception _ -> failwith (src ^ ": corrupt PSD image (bad payload)")

let save image path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_bytes image))

let load path =
  let contents =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  of_bytes ~src:path contents
