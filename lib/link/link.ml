type image = {
  text : string;
  text_base : int32;
  symbols : (string * int) list;
  entry : int;
  user_start : int;
  block_offsets : (string * (Ir.label * int) list) list;
  globals : (string * int32) list;
  data_init : (int32 * int32 array) list;
  main_arity : int;
}

let text_base = 0x08048000l
let data_base = 0x1000l
let stack_top = 0x400000l (* 4 MiB *)

let argv_address image =
  match List.assoc_opt Libc.argv_symbol image.globals with
  | Some a -> a
  | None -> failwith "Link.argv_address: __argv missing"

let link ~funcs ~globals ~main_arity =
  if not (List.exists (fun (f : Asm.func) -> f.name = "main") funcs) then
    failwith "Link.link: no main function";
  let all_funcs = (Libc.start ~main:"main" ~main_arity :: Libc.funcs) @ funcs in
  (* Duplicate detection across user and library symbols. *)
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (f : Asm.func) ->
      if Hashtbl.mem seen f.name then
        failwith ("Link.link: duplicate symbol " ^ f.name);
      Hashtbl.replace seen f.name ())
    all_funcs;
  (* Lay out the data space: __argv first, then the program's globals. *)
  let globals_with_argv =
    { Ir.gname = Libc.argv_symbol; size_words = Libc.argv_words; init = None }
    :: globals
  in
  let global_addrs, data_init =
    let next = ref data_base in
    List.fold_left
      (fun (addrs, inits) (g : Ir.global) ->
        let addr = !next in
        next := Int32.add !next (Int32.of_int (4 * g.size_words));
        let inits =
          match g.init with Some a -> (addr, a) :: inits | None -> inits
        in
        ((g.gname, addr) :: addrs, inits))
      ([], []) globals_with_argv
  in
  let global_addrs = List.rev global_addrs in
  (* Assemble every function and lay text out sequentially. *)
  let assembled = List.map (fun f -> (f, Asm.assemble f)) all_funcs in
  let offsets = Hashtbl.create 16 in
  let total =
    List.fold_left
      (fun off ((f : Asm.func), (a : Asm.assembled)) ->
        Hashtbl.replace offsets f.name off;
        off + String.length a.bytes)
      0 assembled
  in
  let text = Bytes.create total in
  let patch32 pos (v : int32) =
    Bytes.set text pos (Char.chr (Int32.to_int v land 0xFF));
    Bytes.set text (pos + 1)
      (Char.chr (Int32.to_int (Int32.shift_right_logical v 8) land 0xFF));
    Bytes.set text (pos + 2)
      (Char.chr (Int32.to_int (Int32.shift_right_logical v 16) land 0xFF));
    Bytes.set text (pos + 3)
      (Char.chr (Int32.to_int (Int32.shift_right_logical v 24) land 0xFF))
  in
  List.iter
    (fun ((f : Asm.func), (a : Asm.assembled)) ->
      let base = Hashtbl.find offsets f.name in
      Bytes.blit_string a.bytes 0 text base (String.length a.bytes);
      List.iter
        (fun reloc ->
          match reloc with
          | Asm.Rel32 (site, sym) -> (
              match Hashtbl.find_opt offsets sym with
              | Some target ->
                  (* rel32 is relative to the end of the 4-byte field. *)
                  patch32 (base + site)
                    (Int32.of_int (target - (base + site + 4)))
              | None ->
                  failwith
                    (Printf.sprintf "Link.link: %s: undefined function %s"
                       f.name sym))
          | Asm.Abs32 (site, sym) -> (
              match List.assoc_opt sym global_addrs with
              | Some addr -> patch32 (base + site) addr
              | None ->
                  failwith
                    (Printf.sprintf "Link.link: %s: undefined global %s"
                       f.name sym)))
        a.relocs)
    assembled;
  let symbols =
    List.map
      (fun ((f : Asm.func), _) -> (f.name, Hashtbl.find offsets f.name))
      assembled
  in
  let block_offsets =
    (* Absolute text offset of every basic-block label, per function —
       the layout map that lets runtime profiles attribute executed
       offsets back to blocks. *)
    List.map
      (fun ((f : Asm.func), (a : Asm.assembled)) ->
        let base = Hashtbl.find offsets f.name in
        (f.name, List.map (fun (l, o) -> (l, base + o)) a.label_offsets))
      assembled
  in
  let user_start =
    (* The first user function follows the fixed runtime block. *)
    match funcs with
    | [] -> total
    | f :: _ -> Hashtbl.find offsets f.Asm.name
  in
  {
    text = Bytes.to_string text;
    text_base;
    symbols;
    entry = Hashtbl.find offsets Libc.start_symbol;
    user_start;
    block_offsets;
    globals = global_addrs;
    data_init;
    main_arity;
  }

let symbol_offset image name =
  match List.assoc_opt name image.symbols with
  | Some o -> o
  | None -> failwith ("Link.symbol_offset: unknown symbol " ^ name)

let user_text image =
  String.sub image.text image.user_start
    (String.length image.text - image.user_start)

(* Bumped (01 -> 02) when [block_offsets] joined the image record: the
   marshalled layout changed, and the magic is what turns a stale file
   into a clean error instead of garbage. *)
let magic = "PSDIMG02"

let save image path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc magic;
      Marshal.to_channel oc image [])

let load path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let header = really_input_string ic (String.length magic) in
      if not (String.equal header magic) then
        failwith (path ^ ": not a PSD image file");
      match (Marshal.from_channel ic : image) with
      | image -> image
      | exception (End_of_file | Failure _) ->
          failwith (path ^ ": truncated or corrupt image"))
