(** Execution profiles: per-basic-block execution counts.

    A profile maps (function, block label) to the number of times that
    block executed during the training run.  The paper (§3.1) derives
    these from per-edge counters; {!Spanning} implements that counter
    placement and reconstruction, and {!collect} produces the same data
    via the reference interpreter (the two are cross-validated by the test
    suite). *)

type t

val empty : t
val of_block_counts : (string * Ir.label, int64) Hashtbl.t -> t

val collect :
  ?fuel:int64 -> Ir.modul -> entry:string -> args:int32 list -> t
(** Run the instrumented program on a training input and collect block
    counts — the profiling run of the paper's §3.1. *)

val collect_many :
  ?fuel:int64 -> Ir.modul -> entry:string -> args_list:int32 list list -> t
(** Accumulate over several training inputs (the PHP experiment profiles
    seven different workloads). *)

val block_count : t -> func:string -> Ir.label -> int64
(** 0 for blocks never seen — missing profile data means cold. *)

val max_count : t -> int64
(** The largest block count in the whole program ([x_max] in the paper's
    formula). *)

val max_count_func : t -> string -> int64
(** The largest count within one function. *)

val merge : ?weight:float -> t -> t -> t
(** Pointwise sum.  [weight] (default 1) scales the {e second} profile's
    counts before adding — the cross-run weighting the sampled-profile
    pipeline uses when some recordings should count for more (longer
    runs, more trusted workloads).  Scaled counts are rounded to the
    nearest integer; entries that round to zero are dropped (below the
    profile's resolution).  Raises [Invalid_argument] on a negative
    weight. *)

val fold : (string * Ir.label -> int64 -> 'a -> 'a) -> t -> 'a -> 'a
(** Fold over every (function, block) count, in unspecified order. *)

val is_empty : t -> bool

val to_string : t -> string
(** Textual serialization, stable across runs ("llvmprof.out" analogue). *)

val of_string : string -> t
(** Inverse of {!to_string}.  Raises [Failure] on malformed input. *)

val median_nonzero : t -> float
(** Median of the non-zero block counts — used to reproduce the paper's
    473.astar discussion (median ≪ max motivates the log heuristic). *)
