type t = { counts : (string * Ir.label, int64) Hashtbl.t }

let empty = { counts = Hashtbl.create 1 }
let of_block_counts counts = { counts = Hashtbl.copy counts }

let collect ?fuel m ~entry ~args =
  let r = Interp.run ?fuel m ~entry ~args in
  of_block_counts r.Interp.counts.blocks

let merge ?(weight = 1.0) a b =
  if weight < 0.0 then invalid_arg "Profile.merge: negative weight";
  let scale v =
    if weight = 1.0 then v
    else Int64.of_float (Float.round (weight *. Int64.to_float v))
  in
  let counts = Hashtbl.copy a.counts in
  Hashtbl.iter
    (fun k v ->
      let v = scale v in
      if Int64.compare v 0L > 0 then
        let old = Option.value (Hashtbl.find_opt counts k) ~default:0L in
        Hashtbl.replace counts k (Int64.add old v))
    b.counts;
  { counts }

let fold f t acc = Hashtbl.fold (fun k v acc -> f k v acc) t.counts acc

let collect_many ?fuel m ~entry ~args_list =
  List.fold_left
    (fun acc args -> merge acc (collect ?fuel m ~entry ~args))
    empty args_list

let block_count t ~func label =
  Option.value (Hashtbl.find_opt t.counts (func, label)) ~default:0L

let max_count t = Hashtbl.fold (fun _ v acc -> max v acc) t.counts 0L

let max_count_func t fname =
  Hashtbl.fold
    (fun (f, _) v acc -> if String.equal f fname then max v acc else acc)
    t.counts 0L

let is_empty t = Hashtbl.length t.counts = 0

let to_string t =
  let entries =
    Hashtbl.fold (fun (f, l) v acc -> (f, l, v) :: acc) t.counts []
  in
  let sorted = List.sort compare entries in
  String.concat ""
    (List.map (fun (f, l, v) -> Printf.sprintf "%s %d %Ld\n" f l v) sorted)

let of_string s =
  let counts = Hashtbl.create 64 in
  String.split_on_char '\n' s
  |> List.iter (fun line ->
         if String.trim line <> "" then
           match String.split_on_char ' ' (String.trim line) with
           | [ f; l; v ] -> (
               match (int_of_string_opt l, Int64.of_string_opt v) with
               | Some l, Some v -> Hashtbl.replace counts (f, l) v
               | _ -> failwith ("Profile.of_string: bad line: " ^ line))
           | _ -> failwith ("Profile.of_string: bad line: " ^ line));
  { counts }

let median_nonzero t =
  let xs =
    Hashtbl.fold
      (fun _ v acc -> if v > 0L then Int64.to_float v :: acc else acc)
      t.counts []
  in
  Stats.median xs
