let ir_size (f : Ir.func) =
  List.fold_left
    (fun n (b : Ir.block) -> n + 1 + List.length b.Ir.instrs)
    0 f.blocks

let mir_size (f : Mir.func) =
  List.fold_left
    (fun n (b : Mir.block) -> n + 1 + List.length b.Mir.insns)
    0 f.blocks

let record cctx ~pass ~func ~before ~after ~bytes ~changed dt =
  match cctx with
  | None -> ()
  | Some c ->
      Cctx.record c
        {
          Cctx.stage = "machine";
          pass;
          func;
          time_s = dt;
          items_before = before;
          items_after = after;
          bytes;
          changed;
        }

(* Process-wide stage-run counters: the store-backed driver's warm-build
   guarantee ("a warm rebuild runs zero isel/liveness/regalloc") is
   asserted on these, so they count every run whether or not a cctx is
   attached. *)
let count_stage pass =
  Metrics.incr (Metrics.counter ("machine." ^ pass ^ ".runs"))

let func ?cctx (irf : Ir.func) : Asm.func =
  let name = irf.Ir.name in
  let irn = ir_size irf in
  count_stage "isel";
  let mf, dt = Cctx.timed (fun () -> Isel.func irf) in
  let mirn = mir_size mf in
  record cctx ~pass:"isel" ~func:name ~before:irn ~after:mirn ~bytes:0
    ~changed:true dt;
  count_stage "liveness";
  let live, dt = Cctx.timed (fun () -> Liveness.analyze mf) in
  record cctx ~pass:"liveness" ~func:name ~before:mirn ~after:mirn ~bytes:0
    ~changed:false dt;
  count_stage "regalloc";
  let assignment, dt = Cctx.timed (fun () -> Regalloc.allocate ~live mf) in
  record cctx ~pass:"regalloc" ~func:name ~before:mirn
    ~after:(mirn + assignment.Regalloc.spill_count)
    ~bytes:0 ~changed:false dt;
  count_stage "emit";
  let asm, dt = Cctx.timed (fun () -> Emit.func mf assignment) in
  record cctx ~pass:"emit" ~func:name ~before:mirn
    ~after:(List.length asm.Asm.items)
    ~bytes:(Asm.func_size asm) ~changed:true dt;
  asm

let modul ?cctx (m : Ir.modul) = List.map (func ?cctx) m.funcs
