let ir_size (f : Ir.func) =
  List.fold_left
    (fun n (b : Ir.block) -> n + 1 + List.length b.Ir.instrs)
    0 f.blocks

let mir_size (f : Mir.func) =
  List.fold_left
    (fun n (b : Mir.block) -> n + 1 + List.length b.Mir.insns)
    0 f.blocks

let record cctx ~pass ~func ~before ~after ~bytes ~changed dt =
  match cctx with
  | None -> ()
  | Some c ->
      Cctx.record c
        {
          Cctx.stage = "machine";
          pass;
          func;
          time_s = dt;
          items_before = before;
          items_after = after;
          bytes;
          changed;
        }

let func ?cctx (irf : Ir.func) : Asm.func =
  let name = irf.Ir.name in
  let irn = ir_size irf in
  let mf, dt = Cctx.timed (fun () -> Isel.func irf) in
  let mirn = mir_size mf in
  record cctx ~pass:"isel" ~func:name ~before:irn ~after:mirn ~bytes:0
    ~changed:true dt;
  let live, dt = Cctx.timed (fun () -> Liveness.analyze mf) in
  record cctx ~pass:"liveness" ~func:name ~before:mirn ~after:mirn ~bytes:0
    ~changed:false dt;
  let assignment, dt = Cctx.timed (fun () -> Regalloc.allocate ~live mf) in
  record cctx ~pass:"regalloc" ~func:name ~before:mirn
    ~after:(mirn + assignment.Regalloc.spill_count)
    ~bytes:0 ~changed:false dt;
  let asm, dt = Cctx.timed (fun () -> Emit.func mf assignment) in
  record cctx ~pass:"emit" ~func:name ~before:mirn
    ~after:(List.length asm.Asm.items)
    ~bytes:(Asm.func_size asm) ~changed:true dt;
  asm

let modul ?cctx (m : Ir.modul) = List.map (func ?cctx) m.funcs
