(** The machine-level lowering pipeline as explicit, instrumented stages.

    Instruction selection, liveness analysis, register allocation and
    expansion to symbolic assembly — the same work {!Emit.compile_func}
    performs — but each stage timed and recorded into an optional
    compilation context, under the ["machine"] stage label:

    - ["isel"]: IR size in, MIR size out;
    - ["liveness"]: MIR size (no rewrite);
    - ["regalloc"]: spill count reported as the size delta;
    - ["emit"]: MIR size in, assembly-item count out, with the encoded
      byte size of the function in the [bytes] field.

    The staged driver ({!Driver.compile}) lowers every function through
    this module.  Each stage run also bumps a process-wide
    [machine.<stage>.runs] counter in {!Metrics} — the counters the
    artifact store's warm-rebuild guarantees are asserted on. *)

val func : ?cctx:Cctx.t -> Ir.func -> Asm.func
(** Lower one optimized IR function to symbolic assembly. *)

val modul : ?cctx:Cctx.t -> Ir.modul -> Asm.func list
(** Lower every function of a module, in order. *)
