(** Linear-scan register allocation (Poletto & Sarkar, TOPLAS 1999).

    Virtual registers are assigned from the callee-saved pool
    (EBX, ESI, EDI); everything else spills to frame slots.  EAX, ECX and
    EDX are reserved as expansion scratch for {!Emit} (division, shift
    counts, memory-to-memory moves), which is what lets every spilled
    operand be handled without a second allocation round.

    Live intervals are the conventional coarse ones: one interval per
    virtual register spanning its first definition to its last use (block
    live-out extends an interval to the end of that block). *)

type loc = Lreg of Reg.t | Lspill of int  (** spill index, frame-resolved *)

type assignment = {
  locs : (int, loc) Hashtbl.t;  (** virtual register -> location *)
  used_callee_saved : Reg.t list;  (** which of the pool actually used *)
  spill_count : int;
}

val pool : Reg.t list
(** The allocatable registers, in preference order. *)

val allocate : ?live:Liveness.t -> Mir.func -> assignment
(** [live] supplies a precomputed liveness analysis (the staged driver
    times that stage separately); omitted, it is computed here. *)

val loc_of : assignment -> int -> loc
(** Location of a virtual register.  Raises [Invalid_argument] for an
    unknown register (one never defined or used). *)
