type loc = Lreg of Reg.t | Lspill of int

type assignment = {
  locs : (int, loc) Hashtbl.t;
  used_callee_saved : Reg.t list;
  spill_count : int;
}

let pool = [ Reg.EBX; Reg.ESI; Reg.EDI ]

type interval = { vreg : int; start : int; stop : int }

(* Number every instruction (and terminator) in layout order and build one
   coarse interval per virtual register. *)
let intervals ~live (f : Mir.func) =
  let first = Hashtbl.create 64 and last = Hashtbl.create 64 in
  let touch v pos =
    if not (Hashtbl.mem first v) then Hashtbl.replace first v pos;
    let old = Option.value (Hashtbl.find_opt last v) ~default:pos in
    Hashtbl.replace last v (max old pos)
  in
  let pos = ref 0 in
  List.iter
    (fun (b : Mir.block) ->
      let block_start = !pos in
      List.iter
        (fun i ->
          List.iter (fun v -> touch v !pos) (Liveness.virt_uses i);
          List.iter (fun v -> touch v !pos) (Liveness.virt_defs i);
          incr pos)
        b.insns;
      List.iter (fun v -> touch v !pos) (Liveness.term_virt_uses b.term);
      let block_end = !pos in
      incr pos;
      (* Anything live across this block's boundaries spans it whole. *)
      Liveness.ISet.iter
        (fun v ->
          touch v block_start;
          touch v block_end)
        (Liveness.live_out live b.label);
      Liveness.ISet.iter (fun v -> touch v block_start)
        (Liveness.live_in live b.label))
    f.blocks;
  let ivs =
    Hashtbl.fold
      (fun v start acc ->
        { vreg = v; start; stop = Hashtbl.find last v } :: acc)
      first []
  in
  List.sort (fun a b -> compare (a.start, a.vreg) (b.start, b.vreg)) ivs

let allocate ?live (f : Mir.func) =
  let live =
    match live with Some l -> l | None -> Liveness.analyze f
  in
  let ivs = intervals ~live f in
  let locs = Hashtbl.create 64 in
  let free = ref pool in
  let active = ref ([] : (interval * Reg.t) list) in
  let used = ref [] in
  let spills = ref 0 in
  let spill_slot () =
    let s = !spills in
    incr spills;
    Lspill s
  in
  let expire current =
    let still, done_ =
      List.partition (fun (iv, _) -> iv.stop >= current.start) !active
    in
    List.iter (fun (_, r) -> free := r :: !free) done_;
    active := still
  in
  List.iter
    (fun iv ->
      expire iv;
      match !free with
      | r :: rest ->
          free := rest;
          if not (List.mem r !used) then used := r :: !used;
          Hashtbl.replace locs iv.vreg (Lreg r);
          active := (iv, r) :: !active
      | [] ->
          (* Spill the interval that ends furthest away — it blocks the
             register for longest. *)
          let furthest =
            List.fold_left
              (fun (best : (interval * Reg.t) option) (cand, r) ->
                match best with
                | Some (b, _) when b.stop >= cand.stop -> best
                | _ -> Some (cand, r))
              None !active
          in
          (match furthest with
          | Some (victim, r) when victim.stop > iv.stop ->
              (* Steal the victim's register. *)
              Hashtbl.replace locs victim.vreg (spill_slot ());
              Hashtbl.replace locs iv.vreg (Lreg r);
              active :=
                (iv, r) :: List.filter (fun (a, _) -> a != victim) !active
          | _ -> Hashtbl.replace locs iv.vreg (spill_slot ())))
    ivs;
  {
    locs;
    used_callee_saved = List.filter (fun r -> List.mem r !used) pool;
    spill_count = !spills;
  }

let loc_of a v =
  match Hashtbl.find_opt a.locs v with
  | Some l -> l
  | None ->
      invalid_arg (Printf.sprintf "Regalloc.loc_of: unknown virtual v%d" v)
