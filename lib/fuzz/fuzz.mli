(** Fuzzing campaigns: generate → {!Oracle.check} → {!Shrink.shrink}.

    Fully deterministic in the campaign seed: the same [seed] and [count]
    produce the same programs, the same verdicts, and byte-identical
    reproducers.  Campaign accounting lands in the {!Metrics} registry
    under [fuzz.*] ([fuzz.programs], [fuzz.runs], [fuzz.skips],
    [fuzz.divergences], [fuzz.shrink.attempts], and the
    [fuzz.ir.*]/[fuzz.term.*] opcode-coverage counters). *)

type finding = {
  report : Oracle.report;  (** the original diverging program's report *)
  shrunk : Shrink.result option;  (** present when shrinking was enabled *)
}

type campaign = {
  seed : int64;
  count : int;
  checked : int;  (** programs actually checked *)
  runs : int;  (** total oracle executions, shrinking included *)
  skips : int;  (** documented-asymmetry skips encountered *)
  findings : finding list;  (** divergences, in discovery order *)
  errors : (int * string) list;
      (** harness-side task failures (crashed or timed-out pool workers),
          by program index; empty on a healthy run *)
}

val run :
  ?levels:Pipeline.level list ->
  ?configs:(string * Config.t) list ->
  ?versions:int ->
  ?shrink:bool ->
  ?out_dir:string ->
  ?log:(string -> unit) ->
  ?jobs:Pool.jobs ->
  seed:int64 ->
  count:int ->
  unit ->
  campaign
(** Run a campaign of [count] programs.  Divergences are shrunk (unless
    [shrink:false]) and, with [out_dir], written there as
    [<name>.repro.mc] reproducer files (the directory is created if
    missing).  [log] receives human-readable progress lines.

    [jobs] (default serial) fans the generate→oracle grid out on the
    {!Pool}; each program is one task seeded by (campaign seed, index),
    so the campaign — verdicts, shrunk traces, reproducer bytes — is
    identical at every [-j].  Shrinking and file output always happen in
    the parent, in index order. *)

val reproducer : finding -> string
(** Self-contained reproducer: header comments carrying the seed tuple,
    arguments and divergence, followed by the (shrunk, if available)
    MiniC source.  Valid MiniC. *)

val parse_args_header : string -> int32 list
(** Recover main's arguments from a reproducer's or corpus file's
    ["// args: ..."] line; [[]] if the line is absent.  Raises [Failure]
    on a malformed value. *)

val record_coverage : Driver.compiled -> unit
(** Tally the program's IR opcodes into the [fuzz.ir.*] / [fuzz.term.*]
    Metrics counters — the bench experiment's generator-coverage
    measure. *)
