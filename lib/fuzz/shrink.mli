(** Greedy delta debugging over the generator's decision trace.

    Shrinks a diverging program by editing the {!Tape} trace that
    produced it — chunk deletion (coarse to fine) and pointwise value
    reduction toward 0 — regenerating through {!Gen.of_trace} and keeping
    an edit iff {!Oracle.check} still reports a divergence.  Every edited
    trace yields a well-formed program (the tape clamps and pads), and
    choice 0 is the generator's simplest alternative, so trace minimality
    translates to source minimality.  Fully deterministic. *)

type result = {
  original : Gen.t;
  shrunk : Gen.t;
  report : Oracle.report;  (** oracle report for the shrunk program *)
  attempts : int;  (** oracle evaluations spent *)
}

val shrink :
  ?levels:Pipeline.level list ->
  ?configs:(string * Config.t) list ->
  ?versions:int ->
  ?max_attempts:int ->
  Gen.t ->
  Oracle.report ->
  result
(** [shrink p report] minimizes [p], whose [report] must contain a
    divergence ([Invalid_argument] otherwise).  The oracle options are
    passed through to re-checks and should match the ones that produced
    [report].  [max_attempts] (default 400) bounds oracle evaluations.
    Corpus programs (empty trace) are returned unshrunk. *)
