(* Greedy delta debugging over the generator's decision trace.

   Rather than editing MiniC text (which would need its own parser-aware
   reducers and could produce ill-formed programs), we shrink the *trace*
   that produced the program: delete chunks and reduce individual
   decisions toward 0, then regenerate through {!Gen.of_trace}.  Because
   the tape clamps out-of-range values and pads with zeros, every edited
   trace is a valid program, and because choice 0 is the generator's
   simplest alternative everywhere, trace minimality translates to source
   minimality.  An edit is kept iff the oracle still reports a
   divergence. *)

type result = {
  original : Gen.t;
  shrunk : Gen.t;
  report : Oracle.report;  (** oracle report for the shrunk program *)
  attempts : int;  (** oracle evaluations spent *)
}

let delete_chunk t start len =
  Array.append (Array.sub t 0 start)
    (Array.sub t (start + len) (Array.length t - start - len))

let shrink ?levels ?configs ?versions ?(max_attempts = 400) (p0 : Gen.t)
    (r0 : Oracle.report) =
  (match r0.Oracle.divergence with
  | None -> invalid_arg "Shrink.shrink: report has no divergence"
  | Some _ -> ());
  let attempts = ref 0 in
  let best_p = ref p0 and best_r = ref r0 in
  let try_accept trace =
    if !attempts >= max_attempts then false
    else begin
      incr attempts;
      let p = Gen.of_trace ~seed:p0.Gen.seed ~index:p0.Gen.index ~trace in
      (* Regenerating can reproduce the current best (clamping is not
         injective); skip the oracle when nothing changed. *)
      if String.equal p.Gen.source (!best_p).Gen.source then false
      else
        let r = Oracle.check ?levels ?configs ?versions p in
        match r.Oracle.divergence with
        | Some _ ->
            best_p := p;
            best_r := r;
            true
        | None -> false
    end
  in
  let budget_left () = !attempts < max_attempts in
  (* One greedy pass: chunk deletion from coarse to fine, then pointwise
     value reduction.  Returns whether anything was accepted. *)
  let pass () =
    let changed = ref false in
    let size = ref (max 1 (Array.length (!best_p).Gen.trace / 2)) in
    while !size >= 1 && budget_left () do
      let pos = ref 0 in
      while !pos < Array.length (!best_p).Gen.trace && budget_left () do
        let t = (!best_p).Gen.trace in
        let len = min !size (Array.length t - !pos) in
        if len > 0 && try_accept (delete_chunk t !pos len) then
          (* The suffix shifted into place — retry at the same position. *)
          changed := true
        else pos := !pos + !size
      done;
      size := !size / 2
    done;
    let i = ref 0 in
    while !i < Array.length (!best_p).Gen.trace && budget_left () do
      let t = (!best_p).Gen.trace in
      let v = t.(!i) in
      if v > 0 then begin
        let try_value nv =
          let t' = Array.copy t in
          t'.(!i) <- nv;
          try_accept t'
        in
        if try_value 0 || (v > 1 && try_value (v / 2)) || try_value (v - 1)
        then changed := true
      end;
      incr i
    done;
    !changed
  in
  if Array.length p0.Gen.trace > 0 then
    while pass () && budget_left () do
      ()
    done;
  { original = p0; shrunk = !best_p; report = !best_r; attempts = !attempts }
