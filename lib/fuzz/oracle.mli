(** Multi-oracle differential harness.

    Runs one MiniC program under every oracle in the equivalence lattice
    (interp ⊑ sim ⊑ block-sim ⊑ diversified — see DESIGN.md) at every
    requested optimization level, and checks:

    - at a fixed level, the interpreter, the baseline binary under the
      simulator, and every diversified binary observe the same behaviour
      (return value, printed output, trap/no-trap);
    - every machine image (baseline and diversified) executes under both
      simulator engines — the fetch-decode interpreter and the
      block-cached engine — which must agree on the full observable
      tuple: status, output, retired instructions and NOPs, icache
      misses, cycles bit for bit, the per-offset execution profile, and
      on a trap the fault message and every partial counter.  Engine
      disagreement is always a divergence, never a skip;
    - across levels, halting behaviours agree (optimization may delete
      dead trapping code, so a trap on one level against a halt on
      another is allowed);
    - on every halting interpreter run, block counts reconstructed from
      spanning-tree edge counters equal the interpreter's exact counts.

    Documented asymmetries are {e skips}, not divergences: a one-sided
    {!constructor:Resource} trap (the interpreter budgets IR steps and
    call frames, the simulator instructions and stack bytes — the limits
    cannot coincide), and differing trap classes when both sides trap
    (runaway recursion is a call-depth trap in the interpreter but a
    stack-memory fault in the machine). *)

type trap_class = Div | Mem | Resource | Other

val trap_class_name : trap_class -> string

val classify : string -> trap_class
(** Classify a trap/fault message from {!Interp.Trap} or {!Sim.Fault}. *)

type outcome =
  | Halted of { ret : int32; output : string }
  | Trapped of { cls : trap_class; msg : string }

val outcome_to_string : outcome -> string

type divergence = {
  left : string;  (** oracle label, e.g. ["interp\@O2"] *)
  right : string;  (** e.g. ["sim\@O2/p10-50/v1"] *)
  left_outcome : outcome;
  right_outcome : outcome;
  detail : string;
}

type report = {
  program : Gen.t;
  runs : int;  (** executions actually performed *)
  skips : (string * string) list;  (** (oracle pair, documented reason) *)
  divergence : divergence option;  (** the first divergence, if any *)
}

val check :
  ?levels:Pipeline.level list ->
  ?configs:(string * Config.t) list ->
  ?versions:int ->
  Gen.t ->
  report
(** Run the full oracle matrix over one program: [levels] (default
    O0/O1/O2) × (interpreter + baseline + [configs] (default the five
    paper configs) × [versions] (default 3) diversified builds).  Stops
    at the first divergence.  Deterministic: the diversification streams
    are derived from (config seed, program name, config name, version),
    never from ambient state. *)

val level_name : Pipeline.level -> string
