type t = {
  name : string;
  seed : int64;
  index : int;
  source : string;
  args : int32 list;
  trace : int array;
}

(* ------------------------------------------------------------------ *)
(* Generation context.  Scoping is tracked exactly as Sema checks it:
   [scalars] are assignable variables, [ro] are readable-only names
   (loop counters and recursion-depth parameters — assigning one could
   break the termination argument), [arrays] are indexable names with
   their (power-of-two) sizes.  Every name comes from one program-wide
   counter, so shadowing and redeclaration are impossible by
   construction. *)

type loop_ctx = No_loop | For_loop | While_loop

type ctx = {
  tape : Tape.t;
  buf : Buffer.t;
  mutable indent : int;
  mutable fresh : int;
  mutable callees : (string * int * bool) list;
      (* callable from here: name, user arity, recursive (takes a leading
         depth argument) *)
  mutable scalars : string list;
  mutable ro : string list;
  mutable arrays : (string * int) list;
  mutable self : (string * string * int) option;
      (* inside a recursive function: (name, depth parameter, user arity) *)
  mutable loop : loop_ctx;
}

let draw ctx n = Tape.draw ctx.tape n

let fresh ctx prefix =
  let n = ctx.fresh in
  ctx.fresh <- n + 1;
  Printf.sprintf "%s%d" prefix n

let line ctx fmt =
  Printf.ksprintf
    (fun s ->
      Buffer.add_string ctx.buf (String.make (2 * ctx.indent) ' ');
      Buffer.add_string ctx.buf s;
      Buffer.add_char ctx.buf '\n')
    fmt

(* Array sizes are powers of two so that [e & (size - 1)] is an in-bounds
   index for every value of [e]: in-bounds accesses are the generator's
   invariant (out-of-bounds ones are hazards, produced only far outside
   the 4 MiB address space where interpreter and simulator agree — see
   the trap-parity notes in DESIGN.md). *)
let array_sizes = [| 4; 8; 16 |]

let interesting =
  [|
    0l; 1l; 2l; 3l; 4l; 5l; 7l; 8l; 15l; 16l; 31l; 32l; 63l; 100l; 255l;
    256l; 1000l; 4096l; 65535l; 1000000l; Int32.max_int; Int32.min_int;
    -1l; -2l; -8l; -100l;
  |]

let lit (v : int32) =
  if Int32.equal v Int32.min_int then "(0 - 2147483647 - 1)"
  else if Int32.compare v 0l < 0 then
    Printf.sprintf "(0 - %ld)" (Int32.neg v)
  else Int32.to_string v

let pick ctx l = List.nth l (draw ctx (List.length l))

let readable ctx = ctx.scalars @ ctx.ro

(* ------------------------------------------------------------------ *)
(* Expressions.  Choice 0 is a constant and constant 0 is interesting.(0),
   so an all-zero tape bottoms out immediately. *)

let arith_ops = [| "+"; "-"; "*"; "&"; "|"; "^"; "<<"; ">>" |]
let rel_ops = [| "=="; "!="; "<"; "<="; ">"; ">=" |]
let div_consts = [| "2"; "3"; "5"; "7"; "16"; "100" |]

let rec expr ctx depth =
  let choices = if depth <= 0 then 2 else 10 in
  match draw ctx choices with
  | 0 -> lit interesting.(draw ctx (Array.length interesting))
  | 1 -> (
      match readable ctx with
      | [] -> lit interesting.(draw ctx (Array.length interesting))
      | l -> pick ctx l)
  | 2 -> (
      match ctx.arrays with
      | [] -> expr ctx 0
      | l ->
          let a, size = pick ctx l in
          Printf.sprintf "%s[(%s) & %d]" a (expr ctx (depth - 1)) (size - 1))
  | 3 | 4 ->
      let op = arith_ops.(draw ctx (Array.length arith_ops)) in
      Printf.sprintf "(%s %s %s)" (expr ctx (depth - 1)) op
        (expr ctx (depth - 1))
  | 5 ->
      (* Division and remainder with a guaranteed non-zero, non-minus-one
         divisor: negative dividends, truncation and sign edge cases are
         exercised without trapping.  Trapping division is a hazard. *)
      let op = if draw ctx 2 = 0 then "/" else "%" in
      let divisor =
        if draw ctx 2 = 0 then
          Printf.sprintf "((%s & 15) + 1)" (expr ctx (depth - 1))
        else div_consts.(draw ctx (Array.length div_consts))
      in
      Printf.sprintf "(%s %s %s)" (expr ctx (depth - 1)) op divisor
  | 6 ->
      let op = rel_ops.(draw ctx (Array.length rel_ops)) in
      Printf.sprintf "(%s %s %s)" (expr ctx (depth - 1)) op
        (expr ctx (depth - 1))
  | 7 -> (
      match draw ctx 3 with
      | 0 ->
          Printf.sprintf "(%s && %s)" (expr ctx (depth - 1))
            (expr ctx (depth - 1))
      | 1 ->
          Printf.sprintf "(%s || %s)" (expr ctx (depth - 1))
            (expr ctx (depth - 1))
      | _ -> Printf.sprintf "(!%s)" (expr ctx (depth - 1)))
  | 8 ->
      if draw ctx 2 = 0 then Printf.sprintf "(-%s)" (expr ctx (depth - 1))
      else Printf.sprintf "(~%s)" (expr ctx (depth - 1))
  | _ -> (
      match call ctx depth with
      | Some c -> c
      | None -> expr ctx (depth - 1))

(* A call to an earlier function, or to the enclosing recursive function.
   Recursion terminates because a self-call always passes [depth - 1] and
   every recursive body opens with an [if (depth < 1) return ...;]
   guard; calls from the outside pass a small constant. *)
and call ctx depth =
  let self =
    match ctx.self with Some s -> [ s ] | None -> []
  in
  let n_ext = List.length ctx.callees and n_self = List.length self in
  if n_ext + n_self = 0 then None
  else
    let i = draw ctx (n_ext + n_self) in
    if i < n_ext then begin
      let name, uarity, isrec = List.nth ctx.callees i in
      let args = List.init uarity (fun _ -> expr ctx (depth - 1)) in
      let args =
        if isrec then string_of_int (draw ctx 5) :: args else args
      in
      Some (Printf.sprintf "%s(%s)" name (String.concat ", " args))
    end
    else
      let name, dparam, uarity = List.hd self in
      let uargs = List.init uarity (fun _ -> expr ctx (depth - 1)) in
      Some
        (Printf.sprintf "%s((%s - 1), %s)" name dparam
           (String.concat ", " uargs))

(* ------------------------------------------------------------------ *)
(* Statements.  Every loop has a constant trip bound and a counter no
   statement may assign (it is in [ro]), so all loops terminate;
   [continue] is emitted only inside [for] bodies, where the step still
   runs (C semantics) — inside a generated [while] it would skip the
   manual counter increment. *)

(* Stack arrays must be filled before anything can read them: in the
   machine, a fresh frame's slots hold whatever an earlier call left on
   the stack, while the interpreter carves slots from untouched memory —
   an uninitialized read is exactly the kind of underspecified behaviour
   differential testing must not generate (found by this fuzzer's own
   first campaign). *)
let decl_array ctx =
  let name = fresh ctx "a" in
  let size = array_sizes.(draw ctx (Array.length array_sizes)) in
  let z = fresh ctx "z" in
  line ctx "int %s[%d];" name size;
  line ctx "for (int %s = 0; %s < %d; %s = %s + 1) %s[%s] = 0;" z z size z z
    name z;
  ctx.arrays <- (name, size) :: ctx.arrays

let rec stmt ctx depth =
  let choices = if depth <= 0 then 5 else 9 in
  match draw ctx choices with
  | 0 ->
      let name = fresh ctx "x" in
      line ctx "int %s = %s;" name (expr ctx 2);
      ctx.scalars <- name :: ctx.scalars
  | 1 -> (
      match ctx.scalars with
      | [] ->
          let name = fresh ctx "x" in
          line ctx "int %s = %s;" name (expr ctx 2);
          ctx.scalars <- name :: ctx.scalars
      | l -> line ctx "%s = %s;" (pick ctx l) (expr ctx 2))
  | 2 -> (
      match ctx.arrays with
      | [] -> decl_array ctx
      | l ->
          let a, size = pick ctx l in
          line ctx "%s[(%s) & %d] = %s;" a (expr ctx 1) (size - 1)
            (expr ctx 2))
  | 3 ->
      if draw ctx 2 = 0 then line ctx "print_int(%s);" (expr ctx 2)
      else line ctx "put_char(((%s) & 63) + 32);" (expr ctx 1)
  | 4 -> (
      match call ctx 2 with
      | Some c -> line ctx "%s;" c
      | None -> line ctx "print_int(%s);" (expr ctx 1))
  | 5 ->
      line ctx "if (%s) {" (expr ctx 2);
      scoped_block ctx (depth - 1);
      if draw ctx 2 = 1 then begin
        line ctx "} else {";
        scoped_block ctx (depth - 1)
      end;
      line ctx "}"
  | 6 ->
      let ctr = fresh ctx "i" in
      (* Small constant trip bounds: loops nest and multiply through
         helper calls, and the oracle runs every program ~50 times — the
         bound caps total dynamic work, not expressiveness. *)
      let bound = 1 + draw ctx 4 in
      let saved = (ctx.scalars, ctx.ro, ctx.arrays, ctx.loop) in
      ctx.ro <- ctr :: ctx.ro;
      ctx.loop <- For_loop;
      line ctx "for (int %s = 0; %s < %d; %s = %s + 1) {" ctr ctr bound ctr
        ctr;
      block_body ctx (depth - 1);
      line ctx "}";
      let s, r, a, lp = saved in
      ctx.scalars <- s;
      ctx.ro <- r;
      ctx.arrays <- a;
      ctx.loop <- lp
  | 7 ->
      let ctr = fresh ctx "w" in
      (* Small constant trip bounds: loops nest and multiply through
         helper calls, and the oracle runs every program ~50 times — the
         bound caps total dynamic work, not expressiveness. *)
      let bound = 1 + draw ctx 4 in
      line ctx "int %s = 0;" ctr;
      ctx.ro <- ctr :: ctx.ro;
      let saved = (ctx.scalars, ctx.ro, ctx.arrays, ctx.loop) in
      ctx.loop <- While_loop;
      line ctx "while (%s < %d) {" ctr bound;
      ctx.indent <- ctx.indent + 1;
      let inner = (ctx.scalars, ctx.ro, ctx.arrays) in
      let budget = 1 + draw ctx 3 in
      for _ = 1 to budget do
        stmt ctx (depth - 1)
      done;
      let s3, r3, a3 = inner in
      ctx.scalars <- s3;
      ctx.ro <- r3;
      ctx.arrays <- a3;
      line ctx "%s = %s + 1;" ctr ctr;
      ctx.indent <- ctx.indent - 1;
      line ctx "}";
      let s, r, a, lp = saved in
      ctx.scalars <- s;
      ctx.ro <- r;
      ctx.arrays <- a;
      ctx.loop <- lp
  | _ -> (
      (* Early exit from the innermost loop; guarded so the loop still
         makes progress on other iterations. *)
      match ctx.loop with
      | No_loop -> line ctx "print_int(%s);" (expr ctx 1)
      | For_loop ->
          let kw = if draw ctx 2 = 0 then "break" else "continue" in
          line ctx "if (%s) %s;" (expr ctx 1) kw
      | While_loop -> line ctx "if (%s) break;" (expr ctx 1))

and scoped_block ctx depth =
  ctx.indent <- ctx.indent + 1;
  let saved = (ctx.scalars, ctx.ro, ctx.arrays) in
  let budget = 1 + draw ctx 3 in
  for _ = 1 to budget do
    stmt ctx depth
  done;
  let s, r, a = saved in
  ctx.scalars <- s;
  ctx.ro <- r;
  ctx.arrays <- a;
  ctx.indent <- ctx.indent - 1

and block_body ctx depth =
  ctx.indent <- ctx.indent + 1;
  let saved = (ctx.scalars, ctx.ro, ctx.arrays) in
  let budget = 1 + draw ctx 3 in
  for _ = 1 to budget do
    stmt ctx depth
  done;
  let s, r, a = saved in
  ctx.scalars <- s;
  ctx.ro <- r;
  ctx.arrays <- a;
  ctx.indent <- ctx.indent - 1

(* ------------------------------------------------------------------ *)
(* Hazards: constructs that may legitimately trap.  Drawn first so the
   very front of the tape decides the program's shape.  Each hazard is
   designed so the interpreter and the simulator reach the *same*
   trap/no-trap verdict (see trap parity in DESIGN.md): divisions trap on
   the same operands, out-of-bounds accesses overshoot the entire 4 MiB
   address space (where both memory models are unmapped), and runaway
   recursion exhausts the interpreter's call-depth budget and the
   simulator's machine stack. *)

type hazard = H_none | H_div | H_rem | H_oob_read | H_oob_write | H_recurse

let draw_hazard ctx =
  if draw ctx 8 <> 7 then H_none
  else
    match draw ctx 5 with
    | 0 -> H_div
    | 1 -> H_rem
    | 2 -> H_oob_read
    | 3 -> H_oob_write
    | _ -> H_recurse

let hazard_globals ctx = function
  | H_oob_read | H_oob_write ->
      line ctx "global int hzg[4];";
      [ ("hzg", 4) ]
  | _ -> []

let hazard_funcs ctx = function
  | H_recurse ->
      (* The local array makes each machine frame fat, so the simulator
         runs out of stack after a few thousand frames instead of half a
         million; the interpreter hits its call-depth bound first.  Both
         executions trap. *)
      line ctx "int runaway(int x) {";
      line ctx "  int pad[64];";
      line ctx "  pad[x & 63] = x;";
      line ctx "  return runaway(x + 1) + pad[0];";
      line ctx "}";
      line ctx ""
  | _ -> ()

let hazard_stmt ctx = function
  | H_none -> ()
  | H_div ->
      let name = fresh ctx "hz" in
      line ctx "int %s = (%s) / (%s);" name (expr ctx 2) (expr ctx 2);
      line ctx "print_int(%s);" name
  | H_rem ->
      let name = fresh ctx "hz" in
      line ctx "int %s = (%s) %% (%s);" name (expr ctx 2) (expr ctx 2);
      line ctx "print_int(%s);" name
  | H_oob_read ->
      line ctx "print_int(hzg[2000000 + ((%s) & 65535)]);" (expr ctx 1)
  | H_oob_write ->
      line ctx "hzg[0 - (4096 + ((%s) & 1023))] = 7;" (expr ctx 1)
  | H_recurse -> line ctx "print_int(runaway(0));"

(* ------------------------------------------------------------------ *)
(* Top-level program shape. *)

let gen_globals ctx =
  let n = draw ctx 4 in
  let globals = ref [] in
  for _ = 1 to n do
    let name = fresh ctx "g" in
    match draw ctx 3 with
    | 0 ->
        line ctx "global int %s;" name;
        globals := `Scalar name :: !globals
    | 1 ->
        let size = array_sizes.(draw ctx (Array.length array_sizes)) in
        line ctx "global int %s[%d];" name size;
        globals := `Array (name, size) :: !globals
    | _ ->
        let size = array_sizes.(draw ctx (Array.length array_sizes)) in
        let n_init = 1 + draw ctx size in
        let vals =
          List.init n_init (fun _ -> string_of_int (draw ctx 256))
        in
        line ctx "global int %s[%d] = {%s};" name size
          (String.concat ", " vals);
        globals := `Array (name, size) :: !globals
  done;
  List.rev !globals

(* Reset per-function scope state: globals are visible everywhere. *)
let enter_function ctx globals ~params ~ro =
  ctx.scalars <-
    params
    @ List.filter_map (function `Scalar g -> Some g | _ -> None) globals;
  ctx.ro <- ro;
  ctx.arrays <-
    List.filter_map (function `Array ga -> Some ga | _ -> None) globals;
  ctx.loop <- No_loop

let gen_helper ctx globals i =
  let name = Printf.sprintf "f%d" i in
  let recursive = draw ctx 4 = 3 in
  let uarity = 1 + draw ctx 2 in
  let params = List.init uarity (fun _ -> fresh ctx "p") in
  if recursive then begin
    let dparam = fresh ctx "d" in
    line ctx "int %s(int %s, %s) {" name dparam
      (String.concat ", " (List.map (fun p -> "int " ^ p) params));
    ctx.indent <- ctx.indent + 1;
    enter_function ctx globals ~params ~ro:[ dparam ];
    (* Base case first: no self-calls are reachable at depth < 1. *)
    ctx.self <- None;
    line ctx "if (%s < 1) {" dparam;
    ctx.indent <- ctx.indent + 1;
    line ctx "return %s;" (expr ctx 2);
    ctx.indent <- ctx.indent - 1;
    line ctx "}";
    ctx.self <- Some (name, dparam, uarity);
    let budget = 1 + draw ctx 4 in
    for _ = 1 to budget do
      stmt ctx 2
    done;
    line ctx "return %s;" (expr ctx 2);
    ctx.self <- None;
    ctx.indent <- ctx.indent - 1;
    line ctx "}";
    line ctx ""
  end
  else begin
    line ctx "int %s(%s) {" name
      (String.concat ", " (List.map (fun p -> "int " ^ p) params));
    ctx.indent <- ctx.indent + 1;
    enter_function ctx globals ~params ~ro:[];
    let budget = 1 + draw ctx 4 in
    for _ = 1 to budget do
      stmt ctx 2
    done;
    line ctx "return %s;" (expr ctx 2);
    ctx.indent <- ctx.indent - 1;
    line ctx "}";
    line ctx ""
  end;
  ctx.callees <- ctx.callees @ [ (name, uarity, recursive) ];
  ()

let gen_main ctx globals hazard =
  let arity = 1 + draw ctx 2 in
  let params = List.init arity (fun _ -> fresh ctx "m") in
  line ctx "int main(%s) {"
    (String.concat ", " (List.map (fun p -> "int " ^ p) params));
  ctx.indent <- ctx.indent + 1;
  enter_function ctx globals ~params ~ro:[];
  let budget = 3 + draw ctx 5 in
  for _ = 1 to budget do
    stmt ctx 2
  done;
  hazard_stmt ctx hazard;
  (* Checksum epilogue: observe every global so stores anywhere in the
     program reach the output. *)
  List.iter
    (function
      | `Scalar g -> line ctx "print_int(%s);" g
      | `Array (g, size) ->
          line ctx "print_int(%s[0] + %s[%d] + %s[%d]);" g g (size / 2) g
            (size - 1))
    globals;
  line ctx "return (%s) & 127;" (expr ctx 2);
  ctx.indent <- ctx.indent - 1;
  line ctx "}";
  arity

let draw_args ctx arity =
  List.init arity (fun _ ->
      let v = draw ctx 201 in
      Int32.of_int (if v <= 100 then v else 100 - v))

let build tape =
  let ctx =
    {
      tape;
      buf = Buffer.create 1024;
      indent = 0;
      fresh = 0;
      callees = [];
      scalars = [];
      ro = [];
      arrays = [];
      self = None;
      loop = No_loop;
    }
  in
  let hazard = draw_hazard ctx in
  let globals = gen_globals ctx in
  let hz_globals = hazard_globals ctx hazard in
  let globals =
    globals @ List.map (fun ga -> `Array ga) hz_globals
  in
  if globals <> [] then line ctx "";
  hazard_funcs ctx hazard;
  (* [runaway] is reachable only through the hazard statement, never from
     generated expression calls — [ctx.callees] does not list it. *)
  let n_helpers = draw ctx 3 in
  for i = 0 to n_helpers - 1 do
    gen_helper ctx globals i
  done;
  let arity = gen_main ctx globals hazard in
  let args = draw_args ctx arity in
  (Buffer.contents ctx.buf, args)

let generate ~seed ~index =
  let rng = Rng.of_labels seed [ "fuzz"; string_of_int index ] in
  let tape = Tape.fresh rng in
  let source, args = build tape in
  {
    name = Printf.sprintf "fuzz-s%Ld-i%d" seed index;
    seed;
    index;
    source;
    args;
    trace = Tape.recorded tape;
  }

let of_trace ~seed ~index ~trace =
  let tape = Tape.replay trace in
  let source, args = build tape in
  {
    name = Printf.sprintf "fuzz-s%Ld-i%d" seed index;
    seed;
    index;
    source;
    args;
    trace = Tape.recorded tape;
  }

let of_source ~name ~args source =
  { name; seed = 0L; index = -1; source; args; trace = [||] }
