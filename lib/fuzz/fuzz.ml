(* Fuzzing campaign runner: generate → oracle → (optionally) shrink,
   with Metrics accounting and reproducer rendering.  Everything here is
   deterministic in the campaign seed: the same seed and count produce
   the same programs, the same verdicts, and byte-identical
   reproducers. *)

type finding = {
  report : Oracle.report;  (** the original diverging program's report *)
  shrunk : Shrink.result option;  (** present when shrinking was enabled *)
}

type campaign = {
  seed : int64;
  count : int;
  checked : int;  (** programs actually checked *)
  runs : int;  (** total oracle executions *)
  skips : int;  (** documented-asymmetry skips encountered *)
  findings : finding list;  (** divergences, in discovery order *)
  errors : (int * string) list;
      (** harness-side task failures (crashed or timed-out pool workers),
          by program index — distinct from findings, which are
          divergences the oracle actually judged *)
}

let m_programs = Metrics.counter "fuzz.programs"
let m_runs = Metrics.counter "fuzz.runs"
let m_skips = Metrics.counter "fuzz.skips"
let m_divergences = Metrics.counter "fuzz.divergences"
let m_shrink_attempts = Metrics.counter "fuzz.shrink.attempts"

(* ------------------------------------------------------------------ *)
(* Reproducers.  A reproducer is a self-contained MiniC file: the header
   comments carry the seed tuple, the arguments, and the divergence, so
   replaying needs nothing but the file (see [parse_args_header]). *)

let instr_op = function
  | Ir.Bin (op, _, _, _) -> "bin." ^ Ir.binop_name op
  | Ir.Neg _ -> "neg"
  | Ir.Not _ -> "not"
  | Ir.Cmp (op, _, _, _) -> "cmp." ^ Ir.relop_name op
  | Ir.Copy _ -> "copy"
  | Ir.Load _ -> "load"
  | Ir.Store _ -> "store"
  | Ir.Global_addr _ -> "global_addr"
  | Ir.Stack_addr _ -> "stack_addr"
  | Ir.Call _ -> "call"

let term_op = function
  | Ir.Ret _ -> "ret"
  | Ir.Jmp _ -> "jmp"
  | Ir.Cbr _ -> "cbr"
  | Ir.Cbr_nz _ -> "cbr_nz"

(* IR-opcode coverage of one program, tallied into the Metrics registry
   under [fuzz.ir.*] / [fuzz.term.*] — the bench experiment's measure of
   how much of the instruction set the generator exercises. *)
let record_coverage (c : Driver.compiled) =
  List.iter
    (fun (f : Ir.func) ->
      List.iter
        (fun (b : Ir.block) ->
          List.iter
            (fun i -> Metrics.incr (Metrics.counter ("fuzz.ir." ^ instr_op i)))
            b.Ir.instrs;
          Metrics.incr (Metrics.counter ("fuzz.term." ^ term_op b.Ir.term)))
        f.Ir.blocks)
    c.Driver.modul.Ir.funcs

let args_to_string args =
  String.concat " " (List.map Int32.to_string args)

let reproducer_header (p : Gen.t) (d : Oracle.divergence) =
  let b = Buffer.create 256 in
  Buffer.add_string b "// fuzz reproducer\n";
  Buffer.add_string b
    (Printf.sprintf "// seed=%Ld index=%d\n" p.Gen.seed p.Gen.index);
  Buffer.add_string b (Printf.sprintf "// args: %s\n" (args_to_string p.Gen.args));
  Buffer.add_string b
    (Printf.sprintf "// divergence: %s vs %s\n" d.Oracle.left d.Oracle.right);
  Buffer.add_string b
    (Printf.sprintf "//   left:  %s\n"
       (Oracle.outcome_to_string d.Oracle.left_outcome));
  Buffer.add_string b
    (Printf.sprintf "//   right: %s\n"
       (Oracle.outcome_to_string d.Oracle.right_outcome));
  Buffer.add_string b (Printf.sprintf "//   detail: %s\n" d.Oracle.detail);
  Buffer.contents b

let reproducer (f : finding) =
  let p, d =
    match f.shrunk with
    | Some s -> (
        ( s.Shrink.shrunk,
          match s.Shrink.report.Oracle.divergence with
          | Some d -> d
          | None -> assert false ))
    | None -> (
        ( f.report.Oracle.program,
          match f.report.Oracle.divergence with
          | Some d -> d
          | None -> invalid_arg "Fuzz.reproducer: no divergence" ))
  in
  reproducer_header p d ^ p.Gen.source

(* [parse_args_header src] recovers the main arguments from a
   reproducer's (or corpus file's) "// args: ..." line; a program without
   one takes no arguments. *)
let parse_args_header src =
  let prefix = "// args:" in
  let lines = String.split_on_char '\n' src in
  match
    List.find_opt
      (fun l ->
        String.length l >= String.length prefix
        && String.equal (String.sub l 0 (String.length prefix)) prefix)
      lines
  with
  | None -> []
  | Some l ->
      String.sub l (String.length prefix)
        (String.length l - String.length prefix)
      |> String.split_on_char ' '
      |> List.filter (fun s -> not (String.equal s ""))
      |> List.map (fun s ->
             match Int32.of_string_opt s with
             | Some v -> v
             | None -> failwith ("bad args header value: " ^ s))

(* ------------------------------------------------------------------ *)

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

let ensure_dir dir = if not (Sys.file_exists dir) then Sys.mkdir dir 0o755

(* The campaign: the generate→oracle grid runs on the pool (each program
   is one task, seeded by (campaign seed, index) — parallel and serial
   runs produce identical verdicts), while everything order- or
   filesystem-sensitive — shrinking, logging, reproducer files, the
   campaign record — happens in the parent, walking results in index
   order.  [~jobs:(Jobs 1)] (the default) takes the pool's in-process
   serial path, so it IS the reference semantics, not a second code
   path. *)
let run ?levels ?configs ?versions ?(shrink = true) ?out_dir
    ?(log = fun _ -> ()) ?(jobs = Pool.Jobs 1) ~seed ~count () =
  (match out_dir with Some d -> ensure_dir d | None -> ());
  let outcomes =
    Pool.run ~jobs
      (List.init count (fun index () ->
           let p = Gen.generate ~seed ~index in
           let r = Oracle.check ?levels ?configs ?versions p in
           Metrics.incr m_programs;
           Metrics.incr ~by:(Int64.of_int r.Oracle.runs) m_runs;
           Metrics.incr ~by:(Int64.of_int (List.length r.Oracle.skips)) m_skips;
           if r.Oracle.divergence <> None then Metrics.incr m_divergences;
           r))
  in
  let runs = ref 0 and skips = ref 0 and findings = ref [] in
  let checked = ref 0 and errors = ref [] in
  List.iteri
    (fun index outcome ->
      match outcome with
      | Pool.Done (r : Oracle.report) -> (
          incr checked;
          runs := !runs + r.Oracle.runs;
          skips := !skips + List.length r.Oracle.skips;
          match r.Oracle.divergence with
          | None -> ()
          | Some d ->
              let p = r.Oracle.program in
              log
                (Printf.sprintf "divergence at index %d: %s vs %s — %s" index
                   d.Oracle.left d.Oracle.right d.Oracle.detail);
              let shrunk =
                if shrink && Array.length p.Gen.trace > 0 then begin
                  let s = Shrink.shrink ?levels ?configs ?versions p r in
                  Metrics.incr
                    ~by:(Int64.of_int s.Shrink.attempts)
                    m_shrink_attempts;
                  runs := !runs + (s.Shrink.attempts * r.Oracle.runs);
                  log
                    (Printf.sprintf
                       "shrunk %d -> %d trace decisions (%d attempts)"
                       (Array.length p.Gen.trace)
                       (Array.length s.Shrink.shrunk.Gen.trace)
                       s.Shrink.attempts);
                  Some s
                end
                else None
              in
              let f = { report = r; shrunk } in
              findings := f :: !findings;
              (match out_dir with
              | Some dir ->
                  let path = Filename.concat dir (p.Gen.name ^ ".repro.mc") in
                  write_file path (reproducer f);
                  log ("reproducer written to " ^ path)
              | None -> ()))
      | o ->
          let msg = Pool.outcome_to_string o in
          log (Printf.sprintf "harness error at index %d: %s" index msg);
          errors := (index, msg) :: !errors)
    outcomes;
  {
    seed;
    count;
    checked = !checked;
    runs = !runs;
    skips = !skips;
    findings = List.rev !findings;
    errors = List.rev !errors;
  }
