(* Multi-oracle differential harness.

   One generated program is executed under every oracle in the lattice
   (DESIGN.md): the reference interpreter at the bottom, the simulator on
   the baseline binary above it — under *both* execution engines, the
   fetch-decode interpreter and the block-cached engine — and the
   diversified binaries at the top, each at every optimization level:
   interp ⊑ sim ⊑ block-sim ⊑ diversified.  Observable behaviour (return
   value, printed output, trap/no-trap) must agree up the lattice at a
   fixed level; across levels, halting behaviours must agree while
   optimization is allowed to delete trapping dead code.  The two
   engines run every machine image (baseline and diversified) and must
   agree on the *full* observable tuple — status, output, retired
   instructions and NOPs, icache misses, cycles bit for bit, the
   per-offset execution profile, and on a trap the fault message plus
   every partial counter — with no skips: engine disagreement of any
   kind is a divergence.  On top of the behavioural checks, every
   halting interpreter run is used to validate the edge profiling
   machinery: the counts reconstructed from spanning-tree edge counters
   must equal the interpreter's exact block counts. *)

type trap_class = Div | Mem | Resource | Other

let trap_class_name = function
  | Div -> "div"
  | Mem -> "mem"
  | Resource -> "resource"
  | Other -> "other"

(* Substring containment (no stdlib equivalent). *)
let contains msg needle =
  let nl = String.length needle and ml = String.length msg in
  let rec go i = i + nl <= ml && (String.sub msg i nl = needle || go (i + 1)) in
  go 0

let classify msg =
  if contains msg "division" then Div
  else if contains msg "out of bounds" || contains msg "unaligned" then Mem
  else if contains msg "fuel" || contains msg "stack overflow" then Resource
  else Other

type outcome =
  | Halted of { ret : int32; output : string }
  | Trapped of { cls : trap_class; msg : string }

let outcome_to_string = function
  | Halted { ret; output } ->
      Printf.sprintf "halted ret=%ld output=%S" ret output
  | Trapped { cls; msg } ->
      Printf.sprintf "trapped [%s] %s" (trap_class_name cls) msg

type divergence = {
  left : string;  (** oracle label, e.g. ["interp\@O2"] *)
  right : string;  (** e.g. ["sim\@O2/p10-50/v1"] *)
  left_outcome : outcome;
  right_outcome : outcome;
  detail : string;
}

type report = {
  program : Gen.t;
  runs : int;  (** executions actually performed *)
  skips : (string * string) list;  (** (oracle pair, documented reason) *)
  divergence : divergence option;  (** the first divergence, if any *)
}

(* Bounded fuel so that a generator bug producing a non-terminating
   program surfaces as a both-sided Resource trap instead of a hang, and
   so that the rare generated program whose loops multiply through call
   chains stays cheap: the oracle runs each program ~50 times, so fuel
   bounds the cost of the whole matrix.  The machine executes several
   instructions per IR step, so the simulator gets proportionally more
   (runaway-recursion hazards need ~0.6M instructions to exhaust the
   machine stack, well inside the budget).  Programs between the two
   limits surface as one-sided Resource traps, i.e. documented skips. *)
let interp_fuel = 300_000L
let sim_fuel = 3_000_000L

(* ------------------------------------------------------------------ *)
(* Pairwise comparison rules.  [exact] compares two oracles at the same
   optimization level, where behaviour must match bit for bit:
   - both halted: return value and output must be equal;
   - both trapped: agree.  The trap *classes* may differ — e.g. runaway
     recursion hits the interpreter's call-depth bound (resource) but
     exhausts the simulator's machine stack (memory);
   - one-sided trap: a divergence, except a one-sided Resource trap,
     which is a documented skip — the interpreter's fuel counts IR steps
     and its call depth counts frames, while the simulator counts
     instructions and stack bytes, so the limits cannot coincide. *)

type cmp = Agree | Skipped of string | Diverged of string

let exact a b =
  match (a, b) with
  | Halted x, Halted y ->
      if Int32.equal x.ret y.ret && String.equal x.output y.output then Agree
      else
        Diverged
          (Printf.sprintf "observable mismatch: ret %ld vs %ld, output %S vs %S"
             x.ret y.ret x.output y.output)
  | Trapped _, Trapped _ -> Agree
  | Halted _, Trapped { cls = Resource; msg }
  | Trapped { cls = Resource; msg }, Halted _ ->
      Skipped ("one-sided resource trap: " ^ msg)
  | Halted _, Trapped { msg; _ } -> Diverged ("right trapped, left halted: " ^ msg)
  | Trapped { msg; _ }, Halted _ -> Diverged ("left trapped, right halted: " ^ msg)

(* Across optimization levels only halting behaviour must be stable;
   optimization may legitimately delete dead trapping code (so trap vs
   halt is allowed in either direction — a weaker relation, hence a
   separate rule, not a special case of [exact]). *)
let cross_level a b =
  match (a, b) with
  | Halted x, Halted y ->
      if Int32.equal x.ret y.ret && String.equal x.output y.output then Agree
      else
        Diverged
          (Printf.sprintf
             "cross-level mismatch: ret %ld vs %ld, output %S vs %S" x.ret
             y.ret x.output y.output)
  | _ -> Agree

(* ------------------------------------------------------------------ *)
(* Oracle executions. *)

let run_interp (c : Driver.compiled) ~args =
  match Interp.run ~fuel:interp_fuel c.modul ~entry:"main" ~args with
  | r -> (Halted { ret = r.ret; output = r.output }, Some r)
  | exception Interp.Trap msg ->
      (Trapped { cls = classify msg; msg }, None)

let run_sim ~engine image ~args =
  match Sim.run_outcome ~fuel:sim_fuel ~profile:true ~engine image ~args with
  | Sim.Finished r -> (Halted { ret = r.status; output = r.output }, Sim.Finished r)
  | Sim.Faulted f ->
      ( Trapped { cls = classify f.fault_msg; msg = f.fault_msg },
        Sim.Faulted f )

(* Engine parity: the block-cached engine against the simulator's
   interpreter on the *same image* must agree on everything, not just the
   behavioural outcome — equal fuel in equal units, equal timing model,
   so there is no documented asymmetry to skip.  Cycles are compared bit
   for bit, and the per-offset execution profile element-wise. *)

let profile_mismatch (a : Sim.exec_profile) (b : Sim.exec_profile) =
  if a.Sim.insn_counts <> b.Sim.insn_counts then Some "exec_profile insn_counts"
  else if a.Sim.nop_counts <> b.Sim.nop_counts then
    Some "exec_profile nop_counts"
  else begin
    let n = Array.length a.Sim.cycle_counts in
    let bad = ref None in
    for i = 0 to n - 1 do
      if
        !bad = None
        && Int64.bits_of_float a.Sim.cycle_counts.(i)
           <> Int64.bits_of_float b.Sim.cycle_counts.(i)
      then bad := Some (Printf.sprintf "exec_profile cycles at offset %d" i)
    done;
    !bad
  end

let tuple_mismatch (a : Sim.result) (b : Sim.result) =
  let d fmt = Printf.ksprintf Option.some fmt in
  if a.Sim.status <> b.Sim.status then
    d "status %ld vs %ld" a.Sim.status b.Sim.status
  else if a.Sim.output <> b.Sim.output then
    d "output %S vs %S" a.Sim.output b.Sim.output
  else if a.Sim.instructions <> b.Sim.instructions then
    d "instructions %Ld vs %Ld" a.Sim.instructions b.Sim.instructions
  else if a.Sim.nops_retired <> b.Sim.nops_retired then
    d "nops_retired %Ld vs %Ld" a.Sim.nops_retired b.Sim.nops_retired
  else if a.Sim.icache_misses <> b.Sim.icache_misses then
    d "icache_misses %Ld vs %Ld" a.Sim.icache_misses b.Sim.icache_misses
  else if Int64.bits_of_float a.Sim.cycles <> Int64.bits_of_float b.Sim.cycles
  then d "cycles %h vs %h" a.Sim.cycles b.Sim.cycles
  else
    match (a.Sim.exec_profile, b.Sim.exec_profile) with
    | Some pa, Some pb -> profile_mismatch pa pb
    | None, None -> None
    | _ -> Some "exec_profile presence"

let engines_agree (a : Sim.outcome) (b : Sim.outcome) =
  match (a, b) with
  | Sim.Finished x, Sim.Finished y -> (
      match tuple_mismatch x y with
      | None -> Agree
      | Some m -> Diverged ("engine tuple mismatch: " ^ m))
  | Sim.Faulted x, Sim.Faulted y ->
      if x.fault_msg <> y.fault_msg then
        Diverged
          (Printf.sprintf "engine fault mismatch: %S vs %S" x.fault_msg
             y.fault_msg)
      else (
        match tuple_mismatch x.partial y.partial with
        | None -> Agree
        | Some m -> Diverged ("engine tuple mismatch at fault: " ^ m))
  | Sim.Finished _, Sim.Faulted f ->
      Diverged ("block engine trapped, sim interp halted: " ^ f.fault_msg)
  | Sim.Faulted f, Sim.Finished _ ->
      Diverged ("sim interp trapped, block engine halted: " ^ f.fault_msg)

(* ------------------------------------------------------------------ *)
(* Profile invariant: for every function, reconstructing edge counts from
   spanning-tree counter placement must reproduce the interpreter's exact
   measurements (§3.1's instrumentation scheme, validated on every fuzzed
   program rather than a handful of hand-written ones). *)

let measured_edges fname (r : Interp.result) (s, d) =
  if s = Spanning.exit_label then
    Option.value (Hashtbl.find_opt r.counts.calls fname) ~default:0L
  else if d = Spanning.exit_label then
    Option.value (Hashtbl.find_opt r.counts.blocks (fname, s)) ~default:0L
  else Option.value (Hashtbl.find_opt r.counts.edges (fname, s, d)) ~default:0L

let check_profile_invariant (c : Driver.compiled) (r : Interp.result) =
  let check_func (f : Ir.func) =
    let count = measured_edges f.Ir.name r in
    let placement = Spanning.place ~weights:count f in
    let reconstructed = Spanning.reconstruct placement ~measured:count in
    let edge_err =
      List.find_map
        (fun (e, v) ->
          let expected = count e in
          if Int64.equal v expected then None
          else
            Some
              (Printf.sprintf "%s: edge (%d,%d) reconstructed %Ld, measured %Ld"
                 f.Ir.name (fst e) (snd e) v expected))
        reconstructed
    in
    match edge_err with
    | Some _ as e -> e
    | None ->
        List.find_map
          (fun (l, v) ->
            let expected =
              Option.value
                (Hashtbl.find_opt r.counts.blocks (f.Ir.name, l))
                ~default:0L
            in
            if Int64.equal v expected then None
            else
              Some
                (Printf.sprintf "%s: block L%d derived %Ld, measured %Ld"
                   f.Ir.name l v expected))
          (Spanning.block_counts_of_edges f reconstructed)
  in
  List.find_map check_func c.modul.Ir.funcs

(* ------------------------------------------------------------------ *)

let levels_all = [ Pipeline.O0; Pipeline.O1; Pipeline.O2 ]

let level_name = function
  | Pipeline.O0 -> "O0"
  | Pipeline.O1 -> "O1"
  | Pipeline.O2 -> "O2"

exception Stop of divergence

let check ?(levels = levels_all) ?(configs = Config.paper_configs)
    ?(versions = 3) (p : Gen.t) =
  let runs = ref 0 in
  let skips = ref [] in
  let record_cmp ~left ~right a b = function
    | Agree -> ()
    | Skipped reason ->
        skips := (Printf.sprintf "%s vs %s" left right, reason) :: !skips
    | Diverged detail ->
        raise
          (Stop { left; right; left_outcome = a; right_outcome = b; detail })
  in
  let interp_outcomes = ref [] in
  let divergence =
    try
      List.iter
        (fun level ->
          let ln = level_name level in
          let c =
            try Driver.compile ~opt:level ~name:p.Gen.name p.Gen.source
            with Failure msg ->
              (* The generator's output must always compile; a frontend
                 rejection is itself a reportable bug. *)
              raise
                (Stop
                   {
                     left = "generator";
                     right = "frontend@" ^ ln;
                     left_outcome = Halted { ret = 0l; output = "" };
                     right_outcome = Trapped { cls = Other; msg };
                     detail = "generated program rejected: " ^ msg;
                   })
          in
          let args = p.Gen.args in
          incr runs;
          let oi, ir_result = run_interp c ~args in
          interp_outcomes := (ln, oi) :: !interp_outcomes;
          (* Profiling invariant, on every halting interpreter run. *)
          (match ir_result with
          | Some r -> (
              match check_profile_invariant c r with
              | None -> ()
              | Some detail ->
                  raise
                    (Stop
                       {
                         left = "interp@" ^ ln;
                         right = "spanning@" ^ ln;
                         left_outcome = oi;
                         right_outcome = oi;
                         detail = "profile reconstruction: " ^ detail;
                       }))
          | None -> ());
          let baseline = Driver.link_baseline c in
          incr runs;
          let os, rs = run_sim ~engine:Sim.Interp baseline ~args in
          record_cmp ~left:("interp@" ^ ln) ~right:("sim@" ^ ln) oi os
            (exact oi os);
          incr runs;
          let ob, rbk = run_sim ~engine:Sim.Block baseline ~args in
          record_cmp ~left:("sim@" ^ ln) ~right:("block-sim@" ^ ln) os ob
            (engines_agree rs rbk);
          (* Diversified variants must be observationally identical to
             the baseline binary at the same level, for every paper
             config and several independent seeds. *)
          let profile =
            match ir_result with
            | Some r -> Profile.of_block_counts r.counts.blocks
            | None -> Profile.empty
          in
          List.iter
            (fun (cname, config) ->
              for version = 1 to versions do
                let image, _stats =
                  Driver.diversify c ~config ~profile ~version
                in
                incr runs;
                let od, rd = run_sim ~engine:Sim.Interp image ~args in
                let right =
                  Printf.sprintf "sim@%s/%s/v%d" ln cname version
                in
                record_cmp ~left:("sim@" ^ ln) ~right os od (exact os od);
                incr runs;
                let _odb, rdb = run_sim ~engine:Sim.Block image ~args in
                record_cmp ~left:right
                  ~right:(Printf.sprintf "block-sim@%s/%s/v%d" ln cname version)
                  od _odb
                  (engines_agree rd rdb)
              done)
            configs)
        levels;
      (* Cross-level agreement of the reference semantics. *)
      (match !interp_outcomes with
      | (ln0, o0) :: rest ->
          List.iter
            (fun (ln, o) ->
              record_cmp ~left:("interp@" ^ ln0) ~right:("interp@" ^ ln) o0 o
                (cross_level o0 o))
            rest
      | [] -> ());
      None
    with Stop d -> Some d
  in
  { program = p; runs = !runs; skips = List.rev !skips; divergence }
