(* Multi-oracle differential harness.

   One generated program is executed under every oracle in the lattice
   (DESIGN.md): the reference interpreter at the bottom, the simulator on
   the baseline binary above it, and the diversified binaries at the top —
   each at every optimization level.  Observable behaviour (return value,
   printed output, trap/no-trap) must agree up the lattice at a fixed
   level; across levels, halting behaviours must agree while optimization
   is allowed to delete trapping dead code.  On top of the behavioural
   checks, every halting interpreter run is used to validate the edge
   profiling machinery: the counts reconstructed from spanning-tree edge
   counters must equal the interpreter's exact block counts. *)

type trap_class = Div | Mem | Resource | Other

let trap_class_name = function
  | Div -> "div"
  | Mem -> "mem"
  | Resource -> "resource"
  | Other -> "other"

(* Substring containment (no stdlib equivalent). *)
let contains msg needle =
  let nl = String.length needle and ml = String.length msg in
  let rec go i = i + nl <= ml && (String.sub msg i nl = needle || go (i + 1)) in
  go 0

let classify msg =
  if contains msg "division" then Div
  else if contains msg "out of bounds" || contains msg "unaligned" then Mem
  else if contains msg "fuel" || contains msg "stack overflow" then Resource
  else Other

type outcome =
  | Halted of { ret : int32; output : string }
  | Trapped of { cls : trap_class; msg : string }

let outcome_to_string = function
  | Halted { ret; output } ->
      Printf.sprintf "halted ret=%ld output=%S" ret output
  | Trapped { cls; msg } ->
      Printf.sprintf "trapped [%s] %s" (trap_class_name cls) msg

type divergence = {
  left : string;  (** oracle label, e.g. ["interp\@O2"] *)
  right : string;  (** e.g. ["sim\@O2/p10-50/v1"] *)
  left_outcome : outcome;
  right_outcome : outcome;
  detail : string;
}

type report = {
  program : Gen.t;
  runs : int;  (** executions actually performed *)
  skips : (string * string) list;  (** (oracle pair, documented reason) *)
  divergence : divergence option;  (** the first divergence, if any *)
}

(* Bounded fuel so that a generator bug producing a non-terminating
   program surfaces as a both-sided Resource trap instead of a hang, and
   so that the rare generated program whose loops multiply through call
   chains stays cheap: the oracle runs each program ~50 times, so fuel
   bounds the cost of the whole matrix.  The machine executes several
   instructions per IR step, so the simulator gets proportionally more
   (runaway-recursion hazards need ~0.6M instructions to exhaust the
   machine stack, well inside the budget).  Programs between the two
   limits surface as one-sided Resource traps, i.e. documented skips. *)
let interp_fuel = 300_000L
let sim_fuel = 3_000_000L

(* ------------------------------------------------------------------ *)
(* Pairwise comparison rules.  [exact] compares two oracles at the same
   optimization level, where behaviour must match bit for bit:
   - both halted: return value and output must be equal;
   - both trapped: agree.  The trap *classes* may differ — e.g. runaway
     recursion hits the interpreter's call-depth bound (resource) but
     exhausts the simulator's machine stack (memory);
   - one-sided trap: a divergence, except a one-sided Resource trap,
     which is a documented skip — the interpreter's fuel counts IR steps
     and its call depth counts frames, while the simulator counts
     instructions and stack bytes, so the limits cannot coincide. *)

type cmp = Agree | Skipped of string | Diverged of string

let exact a b =
  match (a, b) with
  | Halted x, Halted y ->
      if Int32.equal x.ret y.ret && String.equal x.output y.output then Agree
      else
        Diverged
          (Printf.sprintf "observable mismatch: ret %ld vs %ld, output %S vs %S"
             x.ret y.ret x.output y.output)
  | Trapped _, Trapped _ -> Agree
  | Halted _, Trapped { cls = Resource; msg }
  | Trapped { cls = Resource; msg }, Halted _ ->
      Skipped ("one-sided resource trap: " ^ msg)
  | Halted _, Trapped { msg; _ } -> Diverged ("right trapped, left halted: " ^ msg)
  | Trapped { msg; _ }, Halted _ -> Diverged ("left trapped, right halted: " ^ msg)

(* Across optimization levels only halting behaviour must be stable;
   optimization may legitimately delete dead trapping code (so trap vs
   halt is allowed in either direction — a weaker relation, hence a
   separate rule, not a special case of [exact]). *)
let cross_level a b =
  match (a, b) with
  | Halted x, Halted y ->
      if Int32.equal x.ret y.ret && String.equal x.output y.output then Agree
      else
        Diverged
          (Printf.sprintf
             "cross-level mismatch: ret %ld vs %ld, output %S vs %S" x.ret
             y.ret x.output y.output)
  | _ -> Agree

(* ------------------------------------------------------------------ *)
(* Oracle executions. *)

let run_interp (c : Driver.compiled) ~args =
  match Interp.run ~fuel:interp_fuel c.modul ~entry:"main" ~args with
  | r -> (Halted { ret = r.ret; output = r.output }, Some r)
  | exception Interp.Trap msg ->
      (Trapped { cls = classify msg; msg }, None)

let run_sim image ~args =
  match Sim.run ~fuel:sim_fuel image ~args with
  | r -> Halted { ret = r.status; output = r.output }
  | exception Sim.Fault msg -> Trapped { cls = classify msg; msg }

(* ------------------------------------------------------------------ *)
(* Profile invariant: for every function, reconstructing edge counts from
   spanning-tree counter placement must reproduce the interpreter's exact
   measurements (§3.1's instrumentation scheme, validated on every fuzzed
   program rather than a handful of hand-written ones). *)

let measured_edges fname (r : Interp.result) (s, d) =
  if s = Spanning.exit_label then
    Option.value (Hashtbl.find_opt r.counts.calls fname) ~default:0L
  else if d = Spanning.exit_label then
    Option.value (Hashtbl.find_opt r.counts.blocks (fname, s)) ~default:0L
  else Option.value (Hashtbl.find_opt r.counts.edges (fname, s, d)) ~default:0L

let check_profile_invariant (c : Driver.compiled) (r : Interp.result) =
  let check_func (f : Ir.func) =
    let count = measured_edges f.Ir.name r in
    let placement = Spanning.place ~weights:count f in
    let reconstructed = Spanning.reconstruct placement ~measured:count in
    let edge_err =
      List.find_map
        (fun (e, v) ->
          let expected = count e in
          if Int64.equal v expected then None
          else
            Some
              (Printf.sprintf "%s: edge (%d,%d) reconstructed %Ld, measured %Ld"
                 f.Ir.name (fst e) (snd e) v expected))
        reconstructed
    in
    match edge_err with
    | Some _ as e -> e
    | None ->
        List.find_map
          (fun (l, v) ->
            let expected =
              Option.value
                (Hashtbl.find_opt r.counts.blocks (f.Ir.name, l))
                ~default:0L
            in
            if Int64.equal v expected then None
            else
              Some
                (Printf.sprintf "%s: block L%d derived %Ld, measured %Ld"
                   f.Ir.name l v expected))
          (Spanning.block_counts_of_edges f reconstructed)
  in
  List.find_map check_func c.modul.Ir.funcs

(* ------------------------------------------------------------------ *)

let levels_all = [ Pipeline.O0; Pipeline.O1; Pipeline.O2 ]

let level_name = function
  | Pipeline.O0 -> "O0"
  | Pipeline.O1 -> "O1"
  | Pipeline.O2 -> "O2"

exception Stop of divergence

let check ?(levels = levels_all) ?(configs = Config.paper_configs)
    ?(versions = 3) (p : Gen.t) =
  let runs = ref 0 in
  let skips = ref [] in
  let record_cmp ~left ~right a b = function
    | Agree -> ()
    | Skipped reason ->
        skips := (Printf.sprintf "%s vs %s" left right, reason) :: !skips
    | Diverged detail ->
        raise
          (Stop { left; right; left_outcome = a; right_outcome = b; detail })
  in
  let interp_outcomes = ref [] in
  let divergence =
    try
      List.iter
        (fun level ->
          let ln = level_name level in
          let c =
            try Driver.compile ~opt:level ~name:p.Gen.name p.Gen.source
            with Failure msg ->
              (* The generator's output must always compile; a frontend
                 rejection is itself a reportable bug. *)
              raise
                (Stop
                   {
                     left = "generator";
                     right = "frontend@" ^ ln;
                     left_outcome = Halted { ret = 0l; output = "" };
                     right_outcome = Trapped { cls = Other; msg };
                     detail = "generated program rejected: " ^ msg;
                   })
          in
          let args = p.Gen.args in
          incr runs;
          let oi, ir_result = run_interp c ~args in
          interp_outcomes := (ln, oi) :: !interp_outcomes;
          (* Profiling invariant, on every halting interpreter run. *)
          (match ir_result with
          | Some r -> (
              match check_profile_invariant c r with
              | None -> ()
              | Some detail ->
                  raise
                    (Stop
                       {
                         left = "interp@" ^ ln;
                         right = "spanning@" ^ ln;
                         left_outcome = oi;
                         right_outcome = oi;
                         detail = "profile reconstruction: " ^ detail;
                       }))
          | None -> ());
          let baseline = Driver.link_baseline c in
          incr runs;
          let os = run_sim baseline ~args in
          record_cmp ~left:("interp@" ^ ln) ~right:("sim@" ^ ln) oi os
            (exact oi os);
          (* Diversified variants must be observationally identical to
             the baseline binary at the same level, for every paper
             config and several independent seeds. *)
          let profile =
            match ir_result with
            | Some r -> Profile.of_block_counts r.counts.blocks
            | None -> Profile.empty
          in
          List.iter
            (fun (cname, config) ->
              for version = 1 to versions do
                let image, _stats =
                  Driver.diversify c ~config ~profile ~version
                in
                incr runs;
                let od = run_sim image ~args in
                let right =
                  Printf.sprintf "sim@%s/%s/v%d" ln cname version
                in
                record_cmp ~left:("sim@" ^ ln) ~right os od (exact os od)
              done)
            configs)
        levels;
      (* Cross-level agreement of the reference semantics. *)
      (match !interp_outcomes with
      | (ln0, o0) :: rest ->
          List.iter
            (fun (ln, o) ->
              record_cmp ~left:("interp@" ^ ln0) ~right:("interp@" ^ ln) o0 o
                (cross_level o0 o))
            rest
      | [] -> ());
      None
    with Stop d -> Some d
  in
  { program = p; runs = !runs; skips = List.rev !skips; divergence }
