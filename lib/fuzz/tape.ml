type source = Fresh of Rng.t | Replay of int array

type t = {
  source : source;
  mutable rev : int list; (* effective draws, most recent first *)
  mutable pos : int;
}

let fresh rng = { source = Fresh rng; rev = []; pos = 0 }
let replay trace = { source = Replay trace; rev = []; pos = 0 }

let draw t bound =
  if bound <= 0 then invalid_arg "Tape.draw: bound must be positive";
  let v =
    match t.source with
    | Fresh rng -> Rng.int rng bound
    | Replay trace ->
        if t.pos < Array.length trace then begin
          (* Clamp a recorded value into the current bound: shrinker
             edits (and draws past the end, below) must always yield a
             valid decision, never an error. *)
          let raw = trace.(t.pos) in
          if raw < 0 then 0 else raw mod bound
        end
        else 0 (* past the end: the minimal choice *)
  in
  t.pos <- t.pos + 1;
  t.rev <- v :: t.rev;
  v

let length t = t.pos
let recorded t = Array.of_list (List.rev t.rev)
