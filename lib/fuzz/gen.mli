(** Seeded random MiniC program generator.

    Every generated program is well-typed (it satisfies [Sema.check]) and
    terminates under fuel: loops carry constant trip bounds with counters
    no statement may assign, helper functions form a DAG, and
    self-recursion is guarded by a strictly decreasing depth parameter
    with a base case emitted before any self-call is reachable.  The only
    constructs that may trap are explicit {e hazards} (raw division or
    remainder, far out-of-bounds accesses, runaway recursion), each built
    so the interpreter and the simulator reach the same trap/no-trap
    verdict — see the trap-parity notes in DESIGN.md.

    Generation is driven by a {!Tape}, so a program is a pure function of
    its decision trace: {!generate} and {!of_trace} with the recorded
    trace produce byte-identical source.  Choice [0] is always the
    simplest alternative, which is what makes {!Shrink} work. *)

type t = {
  name : string;  (** stable label, e.g. ["fuzz-s1-i42"] *)
  seed : int64;  (** fuzzing seed the program was derived from *)
  index : int;  (** index within the run (or [-1] for corpus programs) *)
  source : string;  (** MiniC source text *)
  args : int32 list;  (** arguments passed to [main] *)
  trace : int array;  (** effective decision trace (see {!Tape}) *)
}

val generate : seed:int64 -> index:int -> t
(** Generate program [index] of the run seeded by [seed].  Deterministic:
    same seed and index always yield the same program. *)

val of_trace : seed:int64 -> index:int -> trace:int array -> t
(** Rebuild a program from an (edited) decision trace.  Out-of-range
    decisions are clamped and missing ones default to the simplest
    choice, so every trace yields a valid program; [trace] in the result
    is the canonicalized effective trace. *)

val of_source : name:string -> args:int32 list -> string -> t
(** Wrap externally supplied MiniC source (e.g. a corpus regression file)
    for the oracle.  The trace is empty; such programs cannot shrink. *)
