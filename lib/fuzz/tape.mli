(** The generator's decision tape.

    Every random decision {!Gen} makes flows through one of these, so a
    generated program is a pure function of the sequence of drawn values.
    A [fresh] tape draws from the PRNG and records; a [replay] tape
    re-issues a recorded (possibly shrinker-edited) sequence, clamping
    each value into the bound it is drawn against and padding with zeros
    past the end.  Because the generator is written so that the choice
    [0] is always the {e simplest} alternative, truncating or zeroing the
    tape shrinks the program — this is the decision-trace delta debugging
    of {!Shrink}. *)

type t

val fresh : Rng.t -> t
(** Draw new decisions from the generator and record them. *)

val replay : int array -> t
(** Re-issue a recorded sequence.  Out-of-range values are clamped into
    the requested bound; draws past the end return 0.  The effective
    (clamped) values are re-recorded, so {!recorded} canonicalizes an
    edited tape. *)

val draw : t -> int -> int
(** [draw t bound] is the next decision, uniform in [\[0, bound)] on a
    fresh tape.  [bound] must be positive. *)

val length : t -> int
(** Decisions drawn so far. *)

val recorded : t -> int array
(** The effective decision sequence, in draw order. *)
