(** A deterministic parallel job pool.

    Every expensive loop in this reproduction is an embarrassingly
    parallel grid: bench cells (workload × config × version), Survivor
    population scans (per diversified version), fuzz campaigns (per
    generated program).  {!run} executes such a grid's tasks on worker
    processes and hands back the results {e in task order}, so a parallel
    run is byte-identical to the serial one — tasks draw their randomness
    from the existing per-(program, config, version) or per-(seed, index)
    RNG streams (see {!Rng.of_labels}), never from shared generator
    state, so no artifact depends on which worker ran which task, or
    when.

    Backends, behind this one interface:

    - [`Fork`] (default wherever [Unix.fork] exists): one child process
      per worker, task results marshalled back over a pipe.  Process
      isolation is what buys the hard guarantees: a task that dies — OOM,
      segfault in a C stub, [kill -9] — costs exactly that task
      ({!Crashed}); the pool reaps the worker, reassigns the rest of its
      share to a replacement, and carries on.  Per-task timeouts are
      enforced inside the worker by an interval timer and backstopped by
      the parent, which kills a wedged worker outright ({!Timed_out}).
    - [`Domain`] (OCaml 5.x, opt-in via [PSD_POOL_BACKEND=domains]):
      shared-memory domains pulling tasks off an atomic counter.  No
      fork/marshal cost, but no kill-based isolation either: timeouts are
      not enforceable and a crashing task takes the process down, so this
      backend is for trusted in-process workloads.  The {!Metrics} and
      {!Trace} registries take an internal lock, so concurrent recording
      is safe.
    - Serial: [jobs = 1] (or one task, or a 4.14 build forced to
      [domains]) runs tasks in-process in order — same code path the
      others are compared against.

    Worker telemetry is not lost: under [`Fork`], each task result
    travels with a {!Metrics} delta and the {!Trace} spans recorded while
    it ran; the parent merges the deltas and stitches the spans under a
    per-worker track id, so [--trace] and [--pass-stats] keep working
    under [-j].

    The pool does not nest: a task that itself calls {!run} gets a
    {!Failed} result (and a direct nested call raises {!Nested}) — grids
    parallelize at one level, chosen by the caller. *)

type jobs =
  | Auto  (** one worker per available core *)
  | Jobs of int  (** exactly n workers (clamped to at least 1) *)

val jobs_of_string : string -> (jobs, string) result
(** Parse a [-j]/[--jobs] argument: ["auto"] or a positive integer. *)

val jobs_to_string : jobs -> string

val auto_jobs : unit -> int
(** What [Auto] resolves to: the number of available cores (at least
    1). *)

type 'a outcome =
  | Done of 'a
  | Failed of string  (** the task raised; the exception's rendering *)
  | Crashed of string  (** the worker process died under the task *)
  | Timed_out  (** the task exceeded [timeout_s] *)

exception Nested
(** Raised by {!run} when called from inside a running task. *)

val run : ?timeout_s:float -> ?jobs:jobs -> (unit -> 'a) list -> 'a outcome list
(** [run tasks] executes the tasks and returns one outcome per task, in
    the order given (default [jobs] is [Auto]).  Task results cross a
    process boundary under the fork backend, so they must be plain data —
    no closures, no custom blocks; a task whose result cannot be
    marshalled fails with {!Failed}.  [timeout_s] bounds each task's wall
    time individually. *)

val map :
  ?timeout_s:float -> ?jobs:jobs -> ('a -> 'b) -> 'a list -> 'b outcome list
(** [map f items] is [run (List.map (fun x () -> f x) items)]. *)

val outcome_to_string : 'a outcome -> string
(** ["done"], or the failure rendering — for error reports. *)

val backend_name : unit -> string
(** Which backend a multi-worker {!run} would use right now — ["fork"],
    ["domains"] or ["serial"] — for reports. *)
